#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "util/rng.h"

/// \file chunked.h
/// Chunked, communication-free instance generation (KaGen discipline).
///
/// Every hard-distribution family the lower-bound sweeps run on can be
/// described as a *linear index space* — pair ranks for G(n,p), cell ranks
/// of the three side x side cross blocks for the tripartite mu
/// distribution, (hub, matching-slot) ranks for hub_matching, star/gadget
/// ranks for the Boolean-Matching reduction — plus a pure per-index rule
/// deciding which edges the index contributes. A chunk is a contiguous
/// range of that space, so player j can materialize *its own* O(m/k) edge
/// slice directly from `(spec, seed, chunk_id)` with no global graph ever
/// built and no communication: exactly the locality the paper's multiparty
/// model assumes of its players.
///
/// Chunk-count invariance (the load-bearing contract): edge randomness is
/// keyed to fixed *micro-blocks*, not to chunks. The index space is divided
/// into B blocks where B is a pure function of the spec (targeting
/// ~kTargetEdgesPerBlock expected edges each); block b is sampled from its
/// own derived stream `Rng(mix_hash(spec.signature(), seed, b))`; chunk c
/// of k covers the block range split_range(B, k, c). The union over chunks
/// therefore equals the union over blocks — an invariant of k — so the
/// k-chunk build is edge-multiset-identical (in fact sequence-identical,
/// concatenated in chunk order) to the monolithic k=1 build for ANY k.
/// tests/test_chunked.cpp and the CI baseline replay verify this.
///
/// The mu family keeps its blocks aligned to the three side^2 sub-spaces
/// (B = 3 * B1), so the k=3 chunking IS the canonical Alice (U x V1) /
/// Bob (U x V2) / Charlie (V1 x V2) split — partition = chunk, zero copies.
///
/// Purity: everything here is a pure function of (spec, seed, chunk_id,
/// num_chunks); no global state, no draws from caller streams. That extends
/// the PR 4 instance-cache determinism contract to per-chunk keys
/// (instance_cache.h gained `chunk_id`), keeping hit / rebuild / chunked /
/// monolithic builds indistinguishable.

namespace tft {

/// Generator families with a chunked decomposition.
enum class ChunkedFamily : std::uint32_t {
  kGnp = 1,           ///< G(n, p): pair ranks over [0, pair_count(n))
  kBipartiteGnp = 2,  ///< bipartite G(n/2, n-n/2, p): cell ranks
  kTripartiteMu = 3,  ///< Section 4.2.1 mu: 3 side^2 cross blocks, p = gamma/sqrt(side)
  kHubMatching = 4,   ///< Section 3.4.2: (hub, matching-slot) ranks, PRP matchings
  kBmReduction = 5,   ///< Theorem 4.16 Boolean-Matching graph: star + gadget ranks
  kEmbedGnpCore = 6,  ///< Lemma 4.17: dense G(core_n, p_core) core, rest isolated
};

/// A chunked generator instance description: with a seed, a pure recipe for
/// the whole edge multiset. `param`/`aux` are family-specific (see the
/// factories); `signature()` mixes every field, keying all derived streams.
struct ChunkedSpec {
  ChunkedFamily family = ChunkedFamily::kGnp;
  std::uint64_t n = 0;  ///< total vertices
  double param = 0.0;
  std::uint64_t aux = 0;

  [[nodiscard]] static ChunkedSpec gnp(std::uint64_t n, double p);
  [[nodiscard]] static ChunkedSpec bipartite_gnp(std::uint64_t n, double p);
  /// n = 3 * side; param = gamma.
  [[nodiscard]] static ChunkedSpec tripartite_mu(std::uint64_t side, double gamma);
  /// aux = hubs; each hub's matching over the non-hub vertices is a keyed
  /// shared permutation (evaluated pointwise, never materialized).
  [[nodiscard]] static ChunkedSpec hub_matching(std::uint64_t n, std::uint32_t hubs);
  /// n = 4 * pairs + 1; aux bit 0 = zero_case. x, the matching and w are all
  /// pure functions of (spec, seed), so Alice's stars and Bob's gadgets can
  /// be generated independently per chunk while satisfying the promise.
  [[nodiscard]] static ChunkedSpec bm_reduction(std::uint64_t pairs, bool zero_case);
  /// param = d_target, aux = bit pattern of p_core (embedding.h geometry:
  /// core_n = clamp(sqrt(n * d_target / p_core), 3, n)).
  [[nodiscard]] static ChunkedSpec embed_gnp_core(std::uint64_t n, double d_target,
                                                  double p_core);

  /// Family-derived quantities.
  [[nodiscard]] std::uint64_t mu_side() const noexcept { return n / 3; }
  [[nodiscard]] std::uint64_t bm_pairs() const noexcept { return (n - 1) / 4; }
  [[nodiscard]] bool bm_zero_case() const noexcept { return (aux & 1) != 0; }
  [[nodiscard]] std::uint64_t embed_core_n() const noexcept;

  /// Keyed identity of this spec; all per-block / per-hub / per-bit derived
  /// streams mix it in, so distinct specs never share randomness.
  [[nodiscard]] std::uint64_t signature() const noexcept;

  friend bool operator==(const ChunkedSpec&, const ChunkedSpec&) = default;
};

/// Contiguous subrange [lo, hi) of part i when [0, total) is divided into
/// `parts` near-equal parts (sizes differ by at most one; earlier parts get
/// the remainder).
struct IndexRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return hi - lo; }
};
[[nodiscard]] constexpr IndexRange split_range(std::uint64_t total, std::uint64_t parts,
                                               std::uint64_t i) noexcept {
  const std::uint64_t base = total / parts;
  const std::uint64_t rem = total % parts;
  const std::uint64_t lo = i * base + (i < rem ? i : rem);
  return {lo, lo + base + (i < rem ? 1 : 0)};
}

/// A keyed pseudorandom permutation of [0, domain): a 4-round Feistel
/// network over the smallest even-split bit width covering the domain, with
/// cycle-walking to stay inside it. Every player evaluates the same pure
/// function of (key, x), so shared random matchings (hub_matching, the BM
/// matching M) cost O(1) per evaluated point and zero communication.
class SharedPermutation {
 public:
  SharedPermutation(std::uint64_t key, std::uint64_t domain);

  [[nodiscard]] std::uint64_t domain() const noexcept { return domain_; }
  /// The image of x (x must be < domain()).
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept;

 private:
  std::uint64_t key_ = 0;
  std::uint64_t domain_ = 1;
  std::uint32_t half_bits_ = 1;
  std::uint64_t half_mask_ = 1;
};

/// Expected edges per micro-block the block layout targets. Blocks are the
/// unit of RNG keying *and* the finest chunk granularity: num_chunks beyond
/// the block count degrades gracefully (trailing chunks come out empty).
inline constexpr std::uint64_t kTargetEdgesPerBlock = 8192;

/// Number of micro-blocks B for this spec — a pure function of the spec
/// (never of num_chunks), which is what makes chunk unions k-invariant.
/// For kTripartiteMu this is always a multiple of 3 with blocks aligned to
/// the three cross sub-spaces.
[[nodiscard]] std::uint64_t chunk_block_count(const ChunkedSpec& spec);

/// Generate chunk `chunk_id` of `num_chunks`: the edge slice of blocks
/// [split_range(B, num_chunks, chunk_id)), in block order. Pure in all
/// arguments. Throws std::invalid_argument on a malformed spec or
/// chunk_id >= num_chunks.
[[nodiscard]] std::vector<Edge> generate_chunk(const ChunkedSpec& spec, std::uint64_t seed,
                                               std::uint64_t chunk_id,
                                               std::uint64_t num_chunks);

/// The number of edges generate_chunk would return, without materializing
/// them (same index walk into a counting sink).
[[nodiscard]] std::uint64_t count_chunk_edges(const ChunkedSpec& spec, std::uint64_t seed,
                                              std::uint64_t chunk_id,
                                              std::uint64_t num_chunks);

/// One player's CSR-free input: its chunk's edge slice over the common
/// vertex set. At n = 1e8 a Graph's CSR offsets alone cost 4 bytes/vertex
/// per player; protocols that only stream their edges (core/sim_low.h) take
/// slices instead, keeping per-player memory at O(m/k) + O(1).
struct EdgeSlice {
  std::size_t player_id = 0;
  std::size_t k = 1;
  Vertex n = 0;  ///< common vertex universe [0, n)
  std::vector<Edge> edges;

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return edges.capacity() * sizeof(Edge);
  }
};

/// Byte-size customization point (instance_cache.h ADL) so per-chunk slices
/// can be cached and LRU-evicted like any other sweep payload.
[[nodiscard]] inline std::size_t approx_bytes(const EdgeSlice& s) noexcept {
  return sizeof(s) + s.memory_bytes();
}

/// A chunked instance bound to (spec, seed, num_chunks): the facade the
/// layers above consume. Nothing is materialized at construction; every
/// accessor generates at most one chunk at a time.
class ChunkedView {
 public:
  ChunkedView(ChunkedSpec spec, std::uint64_t seed, std::uint64_t num_chunks);

  [[nodiscard]] const ChunkedSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_; }
  [[nodiscard]] Vertex n() const noexcept { return static_cast<Vertex>(spec_.n); }

  /// The edge slice of one chunk.
  [[nodiscard]] std::vector<Edge> chunk_edges(std::uint64_t chunk_id) const {
    return generate_chunk(spec_, seed_, chunk_id, chunks_);
  }

  /// Total edges across all chunks (streamed count, O(1) memory).
  [[nodiscard]] std::uint64_t count_edges() const;

  /// Stream every edge, chunk by chunk (one chunk resident at a time).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    for (std::uint64_t c = 0; c < chunks_; ++c) {
      for (const Edge& e : chunk_edges(c)) fn(e);
    }
  }

  /// The full union Graph — the monolithic equivalent, built with a
  /// two-pass exact reserve (count, then fill). This is the ground-truth /
  /// referee path; sweeps that need O(m/k) memory use build_slices instead.
  [[nodiscard]] Graph build_union() const;

  /// Partition = chunk: player j's input is exactly chunk j, as a Graph
  /// (full CSR) over the common vertex set. No partition pass, no RNG, no
  /// copy of a monolithic edge list.
  [[nodiscard]] std::vector<PlayerInput> build_players() const;

  /// Partition = chunk, CSR-free: player j holds only its edge slice.
  [[nodiscard]] std::vector<EdgeSlice> build_slices() const;

 private:
  ChunkedSpec spec_;
  std::uint64_t seed_ = 0;
  std::uint64_t chunks_ = 1;
};

/// Order-invariant fingerprint of an edge multiset (sum of a keyed hash per
/// edge, commutative by construction): equal multisets hash equal under any
/// generation order or chunking. The A/B identity harness and the CI
/// baseline replay compare chunked vs monolithic builds through this.
[[nodiscard]] std::uint64_t edge_multiset_hash(std::span<const Edge> edges) noexcept;

/// Fingerprint of a full chunked build at the given chunk count (streams,
/// never concatenates).
[[nodiscard]] std::uint64_t chunked_union_hash(const ChunkedSpec& spec, std::uint64_t seed,
                                               std::uint64_t num_chunks);

}  // namespace tft
