#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "graph/pair_sampling.h"
#include "util/arena.h"

namespace tft::gen {

namespace {

void shuffle_vertices(std::span<Vertex> vs, Rng& rng) {
  for (std::size_t i = vs.size(); i > 1; --i) std::swap(vs[i - 1], vs[rng.below(i)]);
}

/// Identity permutation staged in `arena` (shuffle buffers are transient:
/// growth churn stays inside reused arena blocks).
std::span<Vertex> arena_iota(Arena& arena, std::size_t count, Vertex first) {
  const std::span<Vertex> vs = arena.alloc<Vertex>(count);
  std::iota(vs.begin(), vs.end(), first);
  return vs;
}

}  // namespace

Graph gnp(Vertex n, double p, Rng& rng) {
  // Edge staging goes through the thread arena: the doubling growth of the
  // unpredictable-size edge list reuses warm blocks across calls, and the
  // vector handed to Graph is allocated once at its exact final size.
  ArenaScope scope;
  ArenaBuf<Edge> edges(scope.arena());
  // pair_count keeps the n*(n-1)/2 arithmetic in 64 bits: past n = 2^16 the
  // pair space no longer fits 32 bits, past n ~ 92682 it exceeds 2^32.
  const std::uint64_t total = pair_count(n);
  skip_sample(total, p, rng, [&](std::uint64_t idx) {
    const auto [u, v] = unrank_pair(idx, n);
    edges.emplace_back(u, v);
  });
  return Graph(n, edges.take());
}

Graph bipartite_gnp(Vertex n, double p, Rng& rng) {
  const Vertex a = n / 2;
  const Vertex b = n - a;
  ArenaScope scope;
  ArenaBuf<Edge> edges(scope.arena());
  skip_sample(static_cast<std::uint64_t>(a) * b, p, rng, [&](std::uint64_t idx) {
    const auto u = static_cast<Vertex>(idx / b);
    const auto v = static_cast<Vertex>(a + idx % b);
    edges.emplace_back(u, v);
  });
  return Graph(n, edges.take());
}

Graph complete_bipartite(Vertex a, Vertex b) {
  assert(static_cast<std::uint64_t>(a) + b <= std::numeric_limits<Vertex>::max());
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) edges.emplace_back(u, a + v);
  }
  return Graph(a + b, std::move(edges));
}

Graph random_tree(Vertex n, Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex v = 1; v < n; ++v) {
    edges.emplace_back(static_cast<Vertex>(rng.below(v)), v);
  }
  return Graph(n, std::move(edges));
}

Graph star(Vertex n) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph(n, std::move(edges));
}

Graph cycle(Vertex n) {
  std::vector<Edge> edges;
  if (n >= 3) {
    edges.reserve(n);
    for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
    edges.emplace_back(0, n - 1);
  } else if (n == 2) {
    edges.emplace_back(0, 1);
  }
  return Graph(n, std::move(edges));
}

Graph random_matching(Vertex n, Rng& rng) {
  ArenaScope scope;
  const std::span<Vertex> vs = arena_iota(scope.arena(), n, 0);
  shuffle_vertices(vs, rng);
  std::vector<Edge> edges;
  edges.reserve(n / 2);
  for (Vertex i = 0; i + 1 < n; i += 2) edges.emplace_back(vs[i], vs[i + 1]);
  return Graph(n, std::move(edges));
}

Graph c5_blowup(Vertex n) {
  const Vertex per = n / 5;
  if (per == 0) return Graph(n, {});
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(per) * per * 5);
  const auto cls = [&](Vertex c, Vertex i) { return static_cast<Vertex>(c * per + i); };
  for (Vertex c = 0; c < 5; ++c) {
    const Vertex nc = (c + 1) % 5;
    for (Vertex i = 0; i < per; ++i) {
      for (Vertex j = 0; j < per; ++j) edges.emplace_back(cls(c, i), cls(nc, j));
    }
  }
  return Graph(n, std::move(edges));
}

Graph planted_triangles(Vertex n, std::uint32_t t, Rng& rng) {
  if (static_cast<std::uint64_t>(t) * 3 > n) {
    throw std::invalid_argument("planted_triangles: need n >= 3t");
  }
  std::vector<Edge> edges;
  edges.reserve(3 * static_cast<std::size_t>(t) + (n - 3 * t) / 2);
  for (std::uint32_t i = 0; i < t; ++i) {
    const Vertex a = 3 * i;
    edges.emplace_back(a, a + 1);
    edges.emplace_back(a, a + 2);
    edges.emplace_back(a + 1, a + 2);
  }
  // Triangle-free noise: a random matching on the remaining vertices. A
  // matching cannot create triangles nor touch the planted ones.
  ArenaScope scope;
  const std::span<Vertex> rest = arena_iota(scope.arena(), n - 3 * t, static_cast<Vertex>(3 * t));
  shuffle_vertices(rest, rng);
  for (std::size_t i = 0; i + 1 < rest.size(); i += 2) {
    edges.emplace_back(rest[i], rest[i + 1]);
  }
  return Graph(n, std::move(edges));
}

Graph hub_matching(Vertex n, std::uint32_t hubs, Rng& rng) {
  if (hubs >= n) throw std::invalid_argument("hub_matching: hubs must be < n");
  std::vector<Edge> edges;
  ArenaScope scope;
  const std::span<Vertex> rest = arena_iota(scope.arena(), n - hubs, static_cast<Vertex>(hubs));
  const std::size_t pairs = rest.size() / 2;
  edges.reserve(static_cast<std::size_t>(hubs) * pairs * 3);
  for (Vertex h = 0; h < hubs; ++h) {
    shuffle_vertices(rest, rng);
    for (std::size_t i = 0; i + 1 < rest.size(); i += 2) {
      const Vertex a = rest[i];
      const Vertex b = rest[i + 1];
      edges.emplace_back(h, a);
      edges.emplace_back(h, b);
      edges.emplace_back(a, b);
    }
  }
  return Graph(n, std::move(edges));
}

Graph barabasi_albert(Vertex n, std::uint32_t edges_per_vertex, Rng& rng) {
  if (edges_per_vertex == 0) throw std::invalid_argument("barabasi_albert: m must be >= 1");
  ArenaScope scope;
  ArenaBuf<Edge> edges(scope.arena());
  // Repeated-endpoint list: picking a uniform element samples proportionally
  // to degree (each edge contributes both endpoints).
  ArenaBuf<Vertex> endpoints(scope.arena());
  ArenaBuf<Vertex> targets(scope.arena());  // reused (clear per vertex)
  const Vertex seed_clique = std::min<Vertex>(n, edges_per_vertex + 1);
  for (Vertex u = 0; u < seed_clique; ++u) {
    for (Vertex v = u + 1; v < seed_clique; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (Vertex v = seed_clique; v < n; ++v) {
    targets.clear();
    for (std::uint32_t e = 0; e < edges_per_vertex && !endpoints.empty(); ++e) {
      // Sample with rejection to keep targets distinct for this vertex.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const Vertex w = endpoints[rng.below(endpoints.size())];
        if (std::find(targets.begin(), targets.end(), w) == targets.end()) {
          targets.push_back(w);
          break;
        }
      }
    }
    for (const Vertex w : targets) {
      edges.emplace_back(v, w);
      endpoints.push_back(v);
      endpoints.push_back(w);
    }
  }
  return Graph(n, edges.take());
}

Graph chung_lu(Vertex n, double d_target, double beta, Rng& rng) {
  if (beta <= 2.0) throw std::invalid_argument("chung_lu: beta must be > 2");
  ArenaScope scope;
  // Weights w_i ~ (i+1)^{-1/(beta-1)}, normalized so sum w_i = n * d_target.
  const std::span<double> w = scope.arena().alloc<double>(n);
  double sum = 0.0;
  for (Vertex i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -1.0 / (beta - 1.0));
    sum += w[i];
  }
  const double scale = static_cast<double>(n) * d_target / sum;
  for (auto& x : w) x *= scale;
  const double total = static_cast<double>(n) * d_target;  // sum of weights

  // Miller-Hagberg sampling: weights are already sorted descending, so for
  // each row i we skip-sample columns j > i under the upper bound
  // p_bar = w_i * w_j0 / W (w is non-increasing) and thin by p_ij / p_bar.
  ArenaBuf<Edge> edges(scope.arena());
  for (Vertex i = 0; i + 1 < n; ++i) {
    Vertex j = i + 1;
    double p_bar = std::min(1.0, w[i] * w[j] / total);
    while (j < n && p_bar > 0.0) {
      if (p_bar < 1.0) {
        const double u = std::max(rng.uniform(), 1e-300);
        const double skip = std::floor(std::log(u) / std::log1p(-p_bar));
        j += static_cast<Vertex>(std::min(skip, static_cast<double>(n)));
      }
      if (j >= n) break;
      const double p_ij = std::min(1.0, w[i] * w[j] / total);
      if (rng.uniform() < p_ij / p_bar) edges.emplace_back(i, j);
      p_bar = p_ij;  // w non-increasing: p_ij is a valid bound for later j
      ++j;
    }
  }
  return Graph(n, edges.take());
}

Graph tripartite_mu(Vertex side, double gamma, Rng& rng) {
  assert(static_cast<std::uint64_t>(side) * 3 <= std::numeric_limits<Vertex>::max());
  const double p = gamma / std::sqrt(static_cast<double>(side));
  const Vertex n = 3 * side;
  ArenaScope scope;
  ArenaBuf<Edge> edges(scope.arena());
  const std::uint64_t block = static_cast<std::uint64_t>(side) * side;
  // U x V1
  skip_sample(block, p, rng, [&](std::uint64_t idx) {
    edges.emplace_back(static_cast<Vertex>(idx / side), static_cast<Vertex>(side + idx % side));
  });
  // U x V2
  skip_sample(block, p, rng, [&](std::uint64_t idx) {
    edges.emplace_back(static_cast<Vertex>(idx / side),
                       static_cast<Vertex>(2 * side + idx % side));
  });
  // V1 x V2
  skip_sample(block, p, rng, [&](std::uint64_t idx) {
    edges.emplace_back(static_cast<Vertex>(side + idx / side),
                       static_cast<Vertex>(2 * side + idx % side));
  });
  return Graph(n, edges.take());
}

Graph embed_with_isolated(const Graph& core, Vertex total_n) {
  if (total_n < core.n()) throw std::invalid_argument("embed_with_isolated: total_n < core.n()");
  std::vector<Edge> edges(core.edges().begin(), core.edges().end());
  return Graph(total_n, std::move(edges));
}

Graph disjoint_union(const Graph& h1, const Graph& h2) {
  std::vector<Edge> edges(h1.edges().begin(), h1.edges().end());
  edges.reserve(h1.num_edges() + h2.num_edges());
  const Vertex shift = h1.n();
  for (const Edge& e : h2.edges()) edges.emplace_back(e.u + shift, e.v + shift);
  return Graph(h1.n() + h2.n(), std::move(edges));
}

Graph overlay(const Graph& h1, const Graph& h2) {
  if (h1.n() != h2.n()) throw std::invalid_argument("overlay: vertex sets differ");
  std::vector<Edge> edges(h1.edges().begin(), h1.edges().end());
  edges.insert(edges.end(), h2.edges().begin(), h2.edges().end());
  return Graph(h1.n(), std::move(edges));
}

}  // namespace tft::gen
