#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>

#include "graph/graph.h"
#include "util/rng.h"

/// \file pair_sampling.h
/// Shared primitives for index-space edge sampling, used by both the legacy
/// sequential generators (graph/generators.cpp) and the chunked,
/// communication-free generator family (graph/chunked.h): linear ranking of
/// vertex pairs and geometric skip-sampling over an arbitrary index range.
///
/// The legacy generators draw one geometric gap per kept index from a single
/// sequential Rng stream; the chunked family draws the same gaps from
/// per-block streams over sub-ranges. Both call the same code so the
/// sampling math (and its committed-baseline bit patterns) lives in exactly
/// one place.

namespace tft {

/// Number of unordered pairs over [0, n): n*(n-1)/2 without overflow for
/// any 32-bit n (the product is evaluated in 64 bits; one factor is even).
[[nodiscard]] constexpr std::uint64_t pair_count(std::uint64_t n) noexcept {
  return n < 2 ? 0 : (n % 2 == 0 ? (n / 2) * (n - 1) : n * ((n - 1) / 2));
}

/// Map a linear index over the strict upper triangle of an n x n matrix to a
/// (row, col) pair with row < col. Inverse of
/// idx = r*n - r*(r+1)/2 + (c - r - 1).
[[nodiscard]] inline std::pair<Vertex, Vertex> unrank_pair(std::uint64_t idx, std::uint64_t n) {
  assert(idx < pair_count(n));
  // Solve for the row via the quadratic formula, then fix up the potential
  // floating-point off-by-one (the sqrt of a ~2^53 argument can land a row
  // early or late; the while loops walk at most a couple of steps).
  const double nd = static_cast<double>(n);
  double rd = std::floor(nd - 0.5 -
                         std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(idx)));
  auto r = static_cast<std::uint64_t>(std::max(0.0, rd));
  auto row_start = [&](std::uint64_t rr) { return rr * n - rr * (rr + 1) / 2; };
  while (r + 1 < n && row_start(r + 1) <= idx) ++r;
  while (r > 0 && row_start(r) > idx) --r;
  const std::uint64_t c = r + 1 + (idx - row_start(r));
  assert(c < n);
  return {static_cast<Vertex>(r), static_cast<Vertex>(c)};
}

/// Invoke fn(i) for each index i in [lo, hi) kept independently with
/// probability p, via geometric skip sampling — O(expected kept) time and
/// O(expected kept) draws from rng. For lo == 0 this reproduces the legacy
/// generators' draw sequence exactly.
template <typename Fn>
void skip_sample_range(std::uint64_t lo, std::uint64_t hi, double p, Rng& rng, Fn&& fn) {
  if (p <= 0.0 || hi <= lo) return;
  if (p >= 1.0) {
    for (std::uint64_t i = lo; i < hi; ++i) fn(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  double cursor = static_cast<double>(lo) - 1.0;
  for (;;) {
    // Geometric gap: floor(log(U) / log(1-p)).
    const double u = std::max(rng.uniform(), 1e-300);
    cursor += 1.0 + std::floor(std::log(u) / log1mp);
    if (cursor >= static_cast<double>(hi)) return;
    fn(static_cast<std::uint64_t>(cursor));
  }
}

/// Legacy entry point: sample over [0, total).
template <typename Fn>
void skip_sample(std::uint64_t total, double p, Rng& rng, Fn&& fn) {
  skip_sample_range(0, total, p, rng, std::forward<Fn>(fn));
}

}  // namespace tft
