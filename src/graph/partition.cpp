#include "graph/partition.h"

#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace tft {

std::vector<PlayerInput> partition_edges(const Graph& g, std::size_t k,
                                         const PartitionOptions& opts, Rng& rng) {
  if (k == 0) throw std::invalid_argument("partition_edges: k must be >= 1");
  if (opts.dup_factor < 1.0) throw std::invalid_argument("partition_edges: dup_factor < 1");
  if (opts.heavy_fraction < 0.0 || opts.heavy_fraction >= 1.0) {
    throw std::invalid_argument("partition_edges: heavy_fraction out of range");
  }

  std::vector<std::vector<Edge>> per_player(k);
  const double extra_p =
      (k > 1) ? (opts.dup_factor - 1.0) / static_cast<double>(k - 1) : 0.0;

  for (const Edge& e : g.edges()) {
    std::size_t owner;
    if (opts.heavy_fraction > 0.0 && rng.bernoulli(opts.heavy_fraction)) {
      owner = 0;
    } else if (opts.by_vertex) {
      owner = static_cast<std::size_t>(mix_hash(0x9a1fb7u, e.u) % k);
    } else {
      owner = static_cast<std::size_t>(rng.below(k));
    }
    per_player[owner].push_back(e);
    if (extra_p > 0.0) {
      for (std::size_t j = 0; j < k; ++j) {
        if (j != owner && rng.bernoulli(extra_p)) per_player[j].push_back(e);
      }
    }
  }

  std::vector<PlayerInput> players;
  players.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    players.push_back(PlayerInput{j, k, Graph(g.n(), std::move(per_player[j]))});
  }
  return players;
}

std::vector<PlayerInput> partition_random(const Graph& g, std::size_t k, Rng& rng) {
  return partition_edges(g, k, PartitionOptions{}, rng);
}

std::vector<PlayerInput> partition_duplicated(const Graph& g, std::size_t k, double dup_factor,
                                              Rng& rng) {
  PartitionOptions opts;
  opts.dup_factor = dup_factor;
  return partition_edges(g, k, opts, rng);
}

std::vector<PlayerInput> players_from_slices(Vertex n, std::vector<std::vector<Edge>> slices) {
  if (slices.empty()) throw std::invalid_argument("players_from_slices: need >= 1 slice");
  std::vector<PlayerInput> players;
  players.reserve(slices.size());
  for (std::size_t j = 0; j < slices.size(); ++j) {
    players.push_back(PlayerInput{j, slices.size(), Graph(n, std::move(slices[j]))});
  }
  return players;
}

Graph union_graph(const std::vector<PlayerInput>& players) {
  if (players.empty()) return Graph();
  std::vector<Edge> edges;
  for (const auto& p : players) {
    edges.insert(edges.end(), p.local.edges().begin(), p.local.edges().end());
  }
  return Graph(players.front().n(), std::move(edges));
}

bool is_duplication_free(const std::vector<PlayerInput>& players) {
  std::unordered_set<std::uint64_t> seen;
  for (const auto& p : players) {
    for (const Edge& e : p.local.edges()) {
      if (!seen.insert(e.key()).second) return false;
    }
  }
  return true;
}

}  // namespace tft
