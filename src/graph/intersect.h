#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "graph/graph.h"

/// \file intersect.h
/// Sorted-row intersection kernels with runtime CPU dispatch.
///
/// Triangle counting, finding, and packing all reduce to one primitive:
/// intersect two sorted neighbor rows (Huang–Pettie–Zhang treat set
/// intersection as *the* communication primitive; here it is the compute
/// primitive). This layer provides that primitive in three styles —
/// two-pointer/galloping merge, byte-mark probing, and bit-packed bitmap
/// probing — each with a scalar reference implementation (always compiled)
/// and an AVX2 implementation (compiled per-function via
/// `__attribute__((target("avx2")))`, so the rest of the binary needs no
/// `-mavx2`), selected at runtime from `cpu::features()`.
///
/// ## Bit-identity contract
///
/// Every implementation of a primitive returns *exactly* the same value on
/// the same input: counts are exact integers, and `merge_find`/`bitmap_find`
/// visit common elements in strictly ascending order in every variant, so
/// the first accepted candidate — and therefore every triangle, packing, and
/// downstream protocol decision — is identical across scalar/AVX2/bitset and
/// any thread count. `bench_kernels --kernel_rows=1` A/B-checks this on
/// every run (like the chunked `chunk_identity` rows); tests/test_intersect
/// property-checks it over the generator zoo with shrinking.
///
/// ## Variants
///
/// `Variant` names a *strategy* for the triangle kernels in triangles.cpp:
///   * kScalar — the seed algorithm (two-pointer merge + byte marks),
///     scalar code only. Baseline rows are pinned to this variant so
///     BENCH_baseline.json stays host-independent.
///   * kAvx2   — same mark-scratch structure, AVX2 gather/compare inner
///     loops. Resolves to kScalar when AVX2 is absent or compiled out.
///   * kBitset — bit-packed bitmap rows (1 bit/vertex: L1-resident at
///     n = 1e5 vs 100 KB of byte marks) probed 8 lanes at a time, plus
///     cache-blocked column tiling at large n so the hot slice stays
///     L2-resident. Works (scalar inner loops) even without AVX2.
///   * kAuto   — kBitset when AVX2 is available, else kScalar.
///
/// The selected variant is process-global (`set_variant`), read once per
/// kernel invocation. It is a performance knob only: outputs never change.

namespace tft::kernel {

enum class Variant : std::uint8_t { kAuto = 0, kScalar, kAvx2, kBitset };

/// Select the kernel strategy for subsequent triangle-kernel calls.
/// Call from a single thread between kernel invocations (bench/test knob).
void set_variant(Variant v) noexcept;
[[nodiscard]] Variant variant() noexcept;

/// The variant that will actually run: kAuto/kAvx2 fall back to
/// kScalar/kBitset depending on AVX2 availability. Never returns kAuto.
[[nodiscard]] Variant resolved_variant() noexcept;

[[nodiscard]] const char* to_string(Variant v) noexcept;
[[nodiscard]] std::optional<Variant> variant_from_name(std::string_view name) noexcept;

/// True iff the AVX2 kernel implementations are compiled in and usable.
[[nodiscard]] bool avx2_available() noexcept;

/// Candidate filter for the find primitives: return true to accept `w` (the
/// search stops and reports it), false to continue with the next common
/// element in ascending order. A null Accept accepts everything.
using Accept = bool (*)(void* ctx, Vertex w);

/// Resolved function-pointer table for one variant. `ops()` returns the
/// table for the current global variant; `ops_for()` lets benches A/B all
/// variants without mutating global state.
struct Ops {
  Variant strategy;  ///< kScalar, kAvx2, or kBitset — never kAuto

  /// |a ∩ b| over sorted unique rows. Uses galloping when sizes are skewed.
  std::uint64_t (*merge_count)(std::span<const Vertex> a, std::span<const Vertex> b);

  /// First common element of a and b (ascending) accepted by `accept`.
  bool (*merge_find)(std::span<const Vertex> a, std::span<const Vertex> b, Accept accept,
                     void* ctx, Vertex* out);

  /// Sum of marks[b[i]] over the candidate row. `marks` must be 0/1 bytes
  /// with >= 32 bytes of tail padding (use mark_bytes()). AVX2 path gathers
  /// by signed 32-bit index: caller guarantees ids < 2^31.
  std::uint64_t (*marks_count)(const std::uint8_t* marks, const Vertex* b, std::size_t len);

  /// Count candidates whose bit is set: bit index b[i] - base into `bits`
  /// (uint32 words, bit w -> bits[w>>5] >> (w&31)). Caller guarantees every
  /// b[i] >= base and b[i] - base within the bitmap.
  std::uint64_t (*bitmap_count)(const std::uint32_t* bits, const Vertex* b, std::size_t len,
                                Vertex base);

  /// First candidate (in row order == ascending) whose bit is set and that
  /// `accept` takes. Bit index is b[i] (no base; find paths are unblocked).
  bool (*bitmap_find)(const std::uint32_t* bits, const Vertex* b, std::size_t len,
                      Accept accept, void* ctx, Vertex* out);
};

[[nodiscard]] const Ops& ops() noexcept;           ///< table for resolved_variant()
[[nodiscard]] const Ops& ops_for(Variant v) noexcept;  ///< kAuto resolves first

/// ## Thread-local mark scratch (cap-and-reallocate)
///
/// Zero-initialized per-thread scratch for the mark/bitmap paths. Callers
/// must restore the zeros they set before returning the buffer (the seed
/// contract), so reuse never re-zeroes. Unlike the old `mark_scratch`,
/// capacity is *capped*: when a request is far below the retained capacity
/// (a one-off n = 1e8 call would otherwise pin ~100 MB per worker thread
/// forever), the buffer is reallocated down to the request size. The retain
/// threshold is tunable for tests.

/// Byte marks sized n + 32 (gather tail padding), all zero on return.
[[nodiscard]] std::uint8_t* mark_bytes(std::size_t n);

/// Bitmap words covering `nbits` bits (+1 guard word), all zero on return.
[[nodiscard]] std::uint32_t* mark_bits(std::size_t nbits);

/// Bytes currently held by this thread's mark scratch (both buffers).
[[nodiscard]] std::size_t thread_scratch_bytes() noexcept;

/// Free this thread's scratch outright.
void release_thread_scratch() noexcept;

/// Scratch capacity above max(request, retain) is released on the next
/// request. Default 8 MiB. Process-global; set from a single thread.
void set_scratch_retain_bytes(std::size_t bytes) noexcept;
[[nodiscard]] std::size_t scratch_retain_bytes() noexcept;

/// ## Cache blocking
///
/// Column-tile width for the blocked bitset count path, as log2(vertices
/// per tile). 0 = auto: blocking engages only when the full bitmap would
/// exceed ~1 MiB (n > 2^23) with 2^22-vertex tiles (512 KiB slices, inside
/// L2). Test knob: tiny values force the blocked path on small graphs.
void set_block_bits(std::uint32_t bits) noexcept;
[[nodiscard]] std::uint32_t block_bits() noexcept;

/// Oriented-CSR offsets are uint32_t: reject inputs whose edge count would
/// wrap them. Throws std::length_error when m >= UINT32_MAX.
void require_csr_offsets_fit(std::size_t m);

}  // namespace tft::kernel
