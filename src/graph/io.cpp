#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tft {

void write_graph(std::ostream& os, const Graph& g) {
  os << "n " << g.n() << " m " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
}

Graph read_graph(std::istream& is) {
  std::string line;
  // Find the header line, skipping comments/blank lines.
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    std::string tag_n, tag_m;
    if (!(hs >> tag_n >> n >> tag_m >> m) || tag_n != "n" || tag_m != "m") {
      throw std::runtime_error("read_graph: malformed header: " + line);
    }
    have_header = true;
    break;
  }
  if (!have_header) throw std::runtime_error("read_graph: missing header");

  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m && std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream es(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(es >> u >> v)) throw std::runtime_error("read_graph: malformed edge: " + line);
    if (u >= n || v >= n) throw std::runtime_error("read_graph: endpoint out of range: " + line);
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  if (edges.size() < m) throw std::runtime_error("read_graph: truncated edge list");
  return Graph(static_cast<Vertex>(n), std::move(edges));
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_graph: cannot open " + path);
  write_graph(os, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_graph: cannot open " + path);
  return read_graph(is);
}

}  // namespace tft
