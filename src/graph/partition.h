#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file partition.h
/// Splitting the input graph's edges among k players (Section 2).
///
/// Each player j receives an edge subset E_j; the logical OR of all inputs
/// is E. Duplication is allowed (the same edge may be handed to several
/// players), matching the paper's default model; the no-duplication variant
/// is a separate partitioner so the specialized protocol paths (Lemma 3.2,
/// Corollaries 3.25/3.27) can be exercised.

namespace tft {

/// One player's private input: its edge subset as a Graph over the common
/// vertex set, so local degrees d_j(v) and local adjacency are O(1)/O(log).
struct PlayerInput {
  std::size_t player_id = 0;
  std::size_t k = 1;
  Graph local;  ///< the subgraph (V, E_j)

  [[nodiscard]] Vertex n() const noexcept { return local.n(); }
  [[nodiscard]] std::uint32_t local_degree(Vertex v) const { return local.degree(v); }
  /// Average degree of this player's input, the paper's \bar{d}^j.
  [[nodiscard]] double local_average_degree() const noexcept { return local.average_degree(); }
};

/// How edges are distributed.
struct PartitionOptions {
  /// Expected number of copies of each edge (>= 1). 1.0 = partition (each
  /// edge to exactly one player). Values > 1 duplicate: each edge goes to
  /// one uniform player plus each other player independently with
  /// probability (dup_factor - 1) / (k - 1).
  double dup_factor = 1.0;
  /// If true, all edges incident to a vertex tend to land on the same
  /// player (vertex-locality skew; hash of min endpoint picks the owner).
  bool by_vertex = false;
  /// Fraction of edges forced onto player 0 (adversarial skew in [0,1)).
  double heavy_fraction = 0.0;
};

/// Split g's edges among k players.
[[nodiscard]] std::vector<PlayerInput> partition_edges(const Graph& g, std::size_t k,
                                                       const PartitionOptions& opts, Rng& rng);

/// Convenience: uniform random no-duplication partition.
[[nodiscard]] std::vector<PlayerInput> partition_random(const Graph& g, std::size_t k, Rng& rng);

/// Convenience: duplication with the given expected copy count.
[[nodiscard]] std::vector<PlayerInput> partition_duplicated(const Graph& g, std::size_t k,
                                                            double dup_factor, Rng& rng);

/// Zero-copy "partition = chunk" fast path for chunked generation
/// (graph/chunked.h): slice j becomes player j's input verbatim — no
/// partition pass, no randomness, no monolithic edge list. Each slice's
/// edge vector is moved straight into that player's Graph.
[[nodiscard]] std::vector<PlayerInput> players_from_slices(
    Vertex n, std::vector<std::vector<Edge>> slices);

/// Reassemble the union graph from the players' inputs (ground truth for
/// verification; protocols never call this).
[[nodiscard]] Graph union_graph(const std::vector<PlayerInput>& players);

/// True iff no edge appears in more than one player's input.
[[nodiscard]] bool is_duplication_free(const std::vector<PlayerInput>& players);

}  // namespace tft
