#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file generators.h
/// Workload generators: every graph family the paper's protocols and lower
/// bounds are exercised on.
///
/// Far-from-triangle-free families:
///   * planted_triangles     — t disjoint triangles plus triangle-free noise
///   * hub_matching          — the Section 3.4.2 adversarial instance:
///                             `hubs` high-degree vertices are the sources of
///                             Theta(n * hubs) edge-disjoint triangles
///   * gnp / tripartite_mu   — random graphs; mu is the Section 4.2.1 hard
///                             distribution (3 sides, p = gamma/sqrt(side))
/// Triangle-free families:
///   * bipartite_gnp, complete_bipartite, random_tree, star, even_cycle,
///     c5_blowup (dense triangle-free), random_matching
///
/// All generators are deterministic functions of their Rng.

namespace tft::gen {

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph gnp(Vertex n, double p, Rng& rng);

/// G(n, p) conditioned on being triangle-free is expensive; instead,
/// bipartite G(n/2, n/2, p) which is triangle-free by construction.
[[nodiscard]] Graph bipartite_gnp(Vertex n, double p, Rng& rng);

[[nodiscard]] Graph complete_bipartite(Vertex a, Vertex b);

/// Uniform random labelled tree (Prufer-free simple attachment): vertex i
/// attaches to a uniform earlier vertex. Triangle-free.
[[nodiscard]] Graph random_tree(Vertex n, Rng& rng);

[[nodiscard]] Graph star(Vertex n);

/// Cycle on n vertices; triangle-free iff n != 3 (use even n for safety).
[[nodiscard]] Graph cycle(Vertex n);

/// Perfect matching on n vertices (n even rounds down). Triangle-free,
/// average degree ~1 — the d = Theta(1) regime.
[[nodiscard]] Graph random_matching(Vertex n, Rng& rng);

/// Blow-up of C5 with n/5 vertices per class, classes joined completely
/// along the cycle. Dense and triangle-free.
[[nodiscard]] Graph c5_blowup(Vertex n);

/// t vertex-disjoint triangles on the first 3t vertices plus a triangle-free
/// noise matching on the remaining vertices. eps-far with
/// eps = t / |E| (every triangle needs a private deletion).
[[nodiscard]] Graph planted_triangles(Vertex n, std::uint32_t t, Rng& rng);

/// Section 3.4.2 adversarial family: `hubs` hub vertices of degree
/// Theta(n); every non-hub pair edge belongs to the private matching of one
/// hub, closing a triangle with it. Yields Theta(hubs * n) edge-disjoint
/// triangles while concentrating all of them on few sources — the family
/// that defeats naive uniform vertex sampling. Average degree ~ 3 * hubs.
[[nodiscard]] Graph hub_matching(Vertex n, std::uint32_t hubs, Rng& rng);

/// Barabasi-Albert preferential attachment: vertices arrive one at a time
/// and attach `edges_per_vertex` edges to existing vertices chosen
/// proportionally to their current degree. Heavy-tailed degrees, naturally
/// triangle-rich around early hubs; the second realistic workload family.
[[nodiscard]] Graph barabasi_albert(Vertex n, std::uint32_t edges_per_vertex, Rng& rng);

/// Chung-Lu power-law random graph: expected degree of vertex i is
/// proportional to (i+1)^{-1/(beta-1)}, scaled so the average degree is
/// ~ d_target. The social-network-shaped workload the paper's distributed
/// setting is motivated by (heavy-tailed degrees, triangles concentrated
/// around hubs). beta in (2, 3] is the usual regime.
[[nodiscard]] Graph chung_lu(Vertex n, double d_target, double beta, Rng& rng);

/// The hard distribution mu of Section 4.2.1: tripartite on
/// U, V1, V2 with |U| = |V1| = |V2| = side, each cross edge present iid with
/// probability gamma / sqrt(side). Total vertices 3 * side.
/// Vertex layout: U = [0, side), V1 = [side, 2*side), V2 = [2*side, 3*side).
[[nodiscard]] Graph tripartite_mu(Vertex side, double gamma, Rng& rng);

/// Lemma 4.17 embedding: relabel `core` onto the first core.n() vertices of
/// a graph with `total_n` vertices, leaving the rest isolated. Preserves
/// triangle structure exactly while lowering the average degree.
[[nodiscard]] Graph embed_with_isolated(const Graph& core, Vertex total_n);

/// Disjoint union: h2 shifted past h1's vertices.
[[nodiscard]] Graph disjoint_union(const Graph& h1, const Graph& h2);

/// Union on a common vertex set (logical OR of edge sets); both graphs must
/// have equal n.
[[nodiscard]] Graph overlay(const Graph& h1, const Graph& h2);

}  // namespace tft::gen
