#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file triangles.h
/// Exact triangle machinery: counting, detection, and greedy maximal
/// edge-disjoint triangle packings.
///
/// The packing is the library's certified lower bound on the distance to
/// triangle-freeness: a set of t edge-disjoint triangles forces at least t
/// edge deletions, so packing_size >= eps * |E| certifies eps-farness
/// (the notion used throughout the paper, Section 2).

namespace tft {

/// Exact number of triangles, by rank-ordered neighbor intersection.
/// O(sum_e min(deg(u), deg(v))) time.
[[nodiscard]] std::uint64_t count_triangles(const Graph& g);

/// Some triangle if one exists.
[[nodiscard]] std::optional<Triangle> find_triangle(const Graph& g);

[[nodiscard]] inline bool is_triangle_free(const Graph& g) { return !find_triangle(g).has_value(); }

/// For a vee (s-x, s-y) present in g, return the closing triangle if
/// {x, y} in E.
[[nodiscard]] std::optional<Triangle> close_vee(const Graph& g, const Vee& vee);

/// Greedy maximal edge-disjoint triangle packing, scanning edges in a random
/// order. Maximality implies the result is a 1/3-approximation of the
/// maximum packing; its size is a valid lower bound on the edit distance to
/// triangle-freeness.
[[nodiscard]] std::vector<Triangle> greedy_triangle_packing(const Graph& g, Rng& rng);

/// Lower bound on the number of edge removals needed to make g
/// triangle-free (via greedy packing).
[[nodiscard]] std::uint64_t distance_lower_bound(const Graph& g, Rng& rng);

/// Certifies eps-farness: true iff a greedy packing reaches
/// eps * |E| triangles. One-sided: `true` is always correct; `false` may be
/// conservative by at most the greedy factor 3.
[[nodiscard]] bool certify_eps_far(const Graph& g, double eps, Rng& rng);

/// All vees with the given source whose closing edge exists (i.e. the
/// triangles through `source`), up to `limit` of them. Used by tests of the
/// full-vertex machinery.
[[nodiscard]] std::vector<Triangle> triangles_through(const Graph& g, Vertex source,
                                                      std::size_t limit);

/// Maximum set of edge-disjoint triangles through `source` using only edges
/// adjacent to `source` for the vee (greedy on the closing structure).
/// Matches the "disjoint triangle-vees originating at v" quantity of
/// Definition 5; greedy matching on neighbor pairs.
[[nodiscard]] std::uint64_t disjoint_vees_at(const Graph& g, Vertex source);

}  // namespace tft
