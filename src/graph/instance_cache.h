#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "util/rng.h"

/// \file instance_cache.h
/// Deterministic memo for sweep instances (graph + player partition).
///
/// A min-budget sweep evaluates the same (seed, trial_index) instance at
/// every probed budget — a dozen probes times dozens of trials — and the
/// seed harnesses regenerated the graph and re-partitioned it for every
/// single protocol run. The cache generates each instance exactly once,
/// shares the immutable result across all protocols and budget probes of a
/// sweep, and evicts least-recently-used entries once a byte budget is
/// exceeded.
///
/// Determinism contract: the cached value is required to be a pure function
/// of its key (the builder must derive all randomness from the key, e.g. via
/// `derive_rng(key.seed, key.trial_index)`). Then a hit, a rebuild after
/// eviction, and a cache-off build are indistinguishable, so every sweep
/// output is byte-identical with the cache on or off, at any thread count
/// (tests/test_sweep.cpp locks this in).

namespace tft {

/// Cache key: everything an instance builder may draw on. `param_bits`
/// carries a real-valued generator parameter (gamma, d, ...) via its IEEE
/// bit pattern so lookups are exact. `chunk_id` extends the purity contract
/// to chunked generation (graph/chunked.h): a per-chunk slice is a pure
/// function of the key including its chunk, so hit, rebuild-after-eviction,
/// chunked and monolithic builds all stay indistinguishable. Monolithic
/// payloads leave it at 0, which hashes and compares exactly as before.
struct InstanceKey {
  std::uint64_t generator = 0;  ///< caller-chosen tag naming the builder
  std::uint64_t n = 0;
  std::uint64_t param_bits = 0;
  std::uint64_t k = 0;
  std::uint64_t seed = 0;
  std::uint64_t trial_index = 0;
  std::uint64_t chunk_id = 0;

  friend bool operator==(const InstanceKey&, const InstanceKey&) = default;

  [[nodiscard]] static std::uint64_t pack_param(double p) noexcept {
    return std::bit_cast<std::uint64_t>(p);
  }
};

struct InstanceKeyHash {
  [[nodiscard]] std::size_t operator()(const InstanceKey& key) const noexcept {
    return static_cast<std::size_t>(
        mix_hash(mix_hash(key.generator, key.n, key.param_bits),
                 mix_hash(key.k, key.seed, key.trial_index), key.chunk_id));
  }
};

/// Byte-size customization point for cached payloads; overloads are found by
/// ADL from the payload's namespace (tft types below, bench-local structs in
/// the bench files).
[[nodiscard]] inline std::size_t approx_bytes(const Graph& g) noexcept {
  return g.memory_bytes();
}
[[nodiscard]] inline std::size_t approx_bytes(const PlayerInput& p) noexcept {
  return sizeof(PlayerInput) + p.local.memory_bytes();
}
template <typename T>
[[nodiscard]] std::size_t approx_bytes(const std::vector<T>& v) noexcept {
  std::size_t total = sizeof(v) + (v.capacity() - v.size()) * sizeof(T);
  for (const T& x : v) total += approx_bytes(x);
  return total;
}

/// Global cache switch, default on; `--cache=0` in the bench harness flips
/// it for A/B runs. Off means get_or_build always invokes the builder.
void set_instance_caching(bool on) noexcept;
[[nodiscard]] bool instance_caching() noexcept;

class InstanceCache {
 public:
  /// `byte_budget` bounds the summed approx_bytes of retained entries;
  /// exceeding it evicts least-recently-used entries (live shared_ptrs held
  /// by callers stay valid — eviction only drops the cache's reference).
  explicit InstanceCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  /// Fetch the instance for `key`, invoking build() on a miss. build must be
  /// a pure function of `key` returning T by value. Thread-safe; concurrent
  /// misses on the same key may build twice (both results are identical by
  /// purity; the first insert wins and the loser's copy is dropped).
  template <typename T, typename Build>
  [[nodiscard]] std::shared_ptr<const T> get_or_build(const InstanceKey& key, Build&& build) {
    static_assert(std::is_same_v<std::decay_t<std::invoke_result_t<Build&>>, T>,
                  "build() must return the cached payload type");
    if (!instance_caching()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::make_shared<const T>(build());
    }
    if (auto hit = lookup(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return std::static_pointer_cast<const T>(std::move(hit));
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto value = std::make_shared<const T>(build());
    const std::size_t bytes = approx_bytes(*value);
    auto resident = insert(key, value, bytes);
    return std::static_pointer_cast<const T>(std::move(resident));
  }

  void set_byte_budget(std::size_t bytes);
  [[nodiscard]] std::size_t byte_budget() const noexcept { return byte_budget_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  ///< builds (including cache-off builds)
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< summed approx_bytes of retained entries
  };
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Drop every entry (live shared_ptrs stay valid).
  void clear();

  /// The process-wide cache the bench sweep layer uses (default budget
  /// 256 MiB; SweepContext re-sizes it from `--cache_mb`).
  [[nodiscard]] static InstanceCache& global();

 private:
  // Type-erased resident value: shared_ptr<const void> with the payload's
  // byte size remembered for budget accounting.
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<InstanceKey>::iterator lru_pos;
  };

  [[nodiscard]] std::shared_ptr<const void> lookup(const InstanceKey& key);
  [[nodiscard]] std::shared_ptr<const void> insert(const InstanceKey& key,
                                                   std::shared_ptr<const void> value,
                                                   std::size_t bytes);
  void evict_to_budget_locked();  // requires mutex_ held

  mutable std::mutex mutex_;
  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  std::unordered_map<InstanceKey, Entry, InstanceKeyHash> entries_;
  std::list<InstanceKey> lru_;  // front = most recently used
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace tft
