#include "graph/instance_cache.h"

#include "util/mem.h"

namespace tft {

namespace {
std::atomic<bool> g_caching{true};
}  // namespace

void set_instance_caching(bool on) noexcept { g_caching.store(on, std::memory_order_relaxed); }

bool instance_caching() noexcept { return g_caching.load(std::memory_order_relaxed); }

std::shared_ptr<const void> InstanceCache::lookup(const InstanceKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);  // bump to most recent
  return it->second.value;
}

std::shared_ptr<const void> InstanceCache::insert(const InstanceKey& key,
                                                  std::shared_ptr<const void> value,
                                                  std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent builder won the race; adopt its (identical) value and
    // drop ours.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{value, bytes, lru_.begin()});
  bytes_ += bytes;
  // The arena counter (util/mem.h) tracks resident instance bytes so sweeps
  // can report an allocator-level high-water next to peak RSS.
  arena_charge(bytes);
  evict_to_budget_locked();
  return value;
}

void InstanceCache::evict_to_budget_locked() {
  // Never evict the most-recent entry: a cache smaller than one instance
  // degrades to pass-through (the caller keeps its shared_ptr), not to
  // thrashing an empty map.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const InstanceKey victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    arena_release(it->second.bytes);
    entries_.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void InstanceCache::set_byte_budget(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  byte_budget_ = bytes;
  evict_to_budget_locked();
}

InstanceCache::Stats InstanceCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed), entries_.size(), bytes_};
}

void InstanceCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void InstanceCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  arena_release(bytes_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

InstanceCache& InstanceCache::global() {
  static InstanceCache cache(std::size_t{256} << 20);
  return cache;
}

}  // namespace tft
