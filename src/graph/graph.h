#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

/// \file graph.h
/// Immutable undirected graph with CSR adjacency.
///
/// The paper's general property-testing model (Section 2): simple undirected
/// graphs on n vertices, no degree bound, distance measured in edges relative
/// to |E|. `Graph` normalizes, deduplicates and sorts its edge list at
/// construction and provides O(log deg) membership queries.

namespace tft {

using Vertex = std::uint32_t;

/// An undirected edge, stored normalized (u < v).
struct Edge {
  Vertex u = 0;
  Vertex v = 0;

  Edge() = default;
  Edge(Vertex a, Vertex b) noexcept : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;

  /// Dense 64-bit key; usable as a hash/map key.
  [[nodiscard]] std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }
};

/// A triangle, stored with a < b < c.
struct Triangle {
  Vertex a = 0;
  Vertex b = 0;
  Vertex c = 0;

  Triangle() = default;
  Triangle(Vertex x, Vertex y, Vertex z) noexcept;

  [[nodiscard]] Edge e1() const noexcept { return {a, b}; }
  [[nodiscard]] Edge e2() const noexcept { return {a, c}; }
  [[nodiscard]] Edge e3() const noexcept { return {b, c}; }

  friend bool operator==(const Triangle&, const Triangle&) = default;
  friend auto operator<=>(const Triangle&, const Triangle&) = default;
};

/// A "triangle-vee" (Definition 2): two edges sharing a source vertex. The
/// vee {source-x, source-y} is a certified vee if {x, y} is also an edge.
struct Vee {
  Vertex source = 0;
  Vertex x = 0;
  Vertex y = 0;
};

class Graph {
 public:
  Graph() = default;

  /// Builds a graph on vertex set {0, ..., n-1}. Edges are normalized,
  /// deduplicated and self-loops dropped. Throws std::invalid_argument on an
  /// endpoint >= n.
  Graph(Vertex n, std::vector<Edge> edges);

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  // The accessors below sit on every kernel's innermost loop, so they index
  // unchecked; passing an out-of-range vertex or edge index is a caller bug
  // (debug builds assert).
  [[nodiscard]] const Edge& edge(std::size_t i) const noexcept {
    assert(i < edges_.size());
    return edges_[i];
  }

  [[nodiscard]] std::uint32_t degree(Vertex v) const noexcept {
    assert(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }
  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    assert(v < n_);
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;
  [[nodiscard]] bool has_edge(const Edge& e) const { return has_edge(e.u, e.v); }

  /// 2|E| / n; the paper's d. Zero for the empty graph.
  [[nodiscard]] double average_degree() const noexcept {
    return n_ == 0 ? 0.0 : 2.0 * static_cast<double>(edges_.size()) / static_cast<double>(n_);
  }

  /// Heap bytes backing this graph (edge list + CSR arrays); what the
  /// instance cache charges against its byte budget.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return edges_.capacity() * sizeof(Edge) + offsets_.capacity() * sizeof(std::uint32_t) +
           adj_.capacity() * sizeof(Vertex);
  }
  [[nodiscard]] Vertex max_degree() const noexcept;

  /// True if all three edges of t are present.
  [[nodiscard]] bool contains(const Triangle& t) const {
    return has_edge(t.e1()) && has_edge(t.e2()) && has_edge(t.e3());
  }
  /// True if both edges of the vee are present (the closing edge is not
  /// required; see Definition 2).
  [[nodiscard]] bool contains(const Vee& vee) const {
    return has_edge(vee.source, vee.x) && has_edge(vee.source, vee.y);
  }

 private:
  Vertex n_ = 0;
  std::vector<Edge> edges_;          // sorted, unique
  std::vector<std::uint32_t> offsets_;  // CSR row offsets, size n+1
  std::vector<Vertex> adj_;          // CSR columns, sorted per row
};

}  // namespace tft
