#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

/// \file io.h
/// Plain-text graph serialization so the examples and CLI can exchange
/// instances with external tooling.
///
/// Format (whitespace-separated):
///   line 1:  "n <num_vertices> m <num_edges>"
///   then one "u v" pair per edge (0-based vertex ids)
/// Lines starting with '#' are comments and ignored.

namespace tft {

/// Serialize to the text format.
void write_graph(std::ostream& os, const Graph& g);

/// Parse the text format. Throws std::runtime_error on malformed input
/// (bad header, endpoint out of range, truncated edge list).
[[nodiscard]] Graph read_graph(std::istream& is);

/// Convenience file wrappers.
void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace tft
