#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace tft {

Triangle::Triangle(Vertex x, Vertex y, Vertex z) noexcept : a(x), b(y), c(z) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
}

Graph::Graph(Vertex n, std::vector<Edge> edges) : n_(n), edges_(std::move(edges)) {
  // Drop self-loops, validate endpoints.
  std::erase_if(edges_, [](const Edge& e) { return e.u == e.v; });
  for (const Edge& e : edges_) {
    if (e.v >= n_) throw std::invalid_argument("Graph: edge endpoint out of range");
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // Build CSR (both directions).
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  adj_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adj_[cursor[e.u]++] = e.v;
    adj_[cursor[e.v]++] = e.u;
  }
  // Each row is sorted because edges_ is sorted by (u, v): row u receives v's
  // in increasing v order, and row v receives u's in increasing u order;
  // both insert orders are monotone, so rows come out sorted with no
  // per-row sort pass (tests/test_graph.cpp asserts this invariant).
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  // Search from the lower-degree endpoint.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

Vertex Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace tft
