#include "graph/chunked.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/pair_sampling.h"
#include "util/arena.h"

namespace tft {

namespace {

// Domain-separation salts for the streams derived from a spec signature.
constexpr std::uint64_t kSpecTag = 0x43484e4bULL;      // block-rng domain
constexpr std::uint64_t kHubPermSalt = 0x48554250ULL;  // per-hub matching PRP
constexpr std::uint64_t kBmPermSalt = 0x424d504dULL;   // the BM matching M
constexpr std::uint64_t kBmXSalt = 0x424d5858ULL;      // Alice's bit vector x
constexpr std::uint64_t kMultisetSalt = 0x4d534554ULL;

void validate(const ChunkedSpec& spec) {
  if (spec.n > std::numeric_limits<Vertex>::max()) {
    throw std::invalid_argument("ChunkedSpec: n exceeds the Vertex width");
  }
  switch (spec.family) {
    case ChunkedFamily::kGnp:
    case ChunkedFamily::kBipartiteGnp:
      break;
    case ChunkedFamily::kTripartiteMu:
      if (spec.n % 3 != 0) throw std::invalid_argument("ChunkedSpec: mu needs n = 3*side");
      break;
    case ChunkedFamily::kHubMatching:
      if (spec.aux >= spec.n) throw std::invalid_argument("ChunkedSpec: hubs must be < n");
      break;
    case ChunkedFamily::kBmReduction:
      if (spec.n == 0 || (spec.n - 1) % 4 != 0) {
        throw std::invalid_argument("ChunkedSpec: BM needs n = 4*pairs + 1");
      }
      break;
    case ChunkedFamily::kEmbedGnpCore: {
      const double p_core = std::bit_cast<double>(spec.aux);
      if (!(p_core > 0.0) || p_core > 1.0) {
        throw std::invalid_argument("ChunkedSpec: bad p_core");
      }
      break;
    }
    default:
      throw std::invalid_argument("ChunkedSpec: unknown family");
  }
}

/// Micro-block count for one index space of `total` indices contributing
/// `edges_per_index` expected edges each.
std::uint64_t blocks_for(std::uint64_t total, double edges_per_index) {
  if (total == 0) return 1;
  const double expected = static_cast<double>(total) * edges_per_index;
  const auto want = static_cast<std::uint64_t>(std::ceil(
      std::max(1.0, expected / static_cast<double>(kTargetEdgesPerBlock))));
  return std::min(total, std::max<std::uint64_t>(1, want));
}

/// The Rng for micro-block `block` of a (spec, seed) build.
Rng block_rng(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t block) {
  return Rng(mix_hash(spec.signature(), seed, block));
}

// --- per-family block emitters (sink(Edge) per produced edge) -------------

template <typename Sink>
void emit_gnp_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                    std::uint64_t blocks, Sink&& sink) {
  const IndexRange r = split_range(pair_count(spec.n), blocks, b);
  Rng rng = block_rng(spec, seed, b);
  skip_sample_range(r.lo, r.hi, spec.param, rng, [&](std::uint64_t idx) {
    const auto [u, v] = unrank_pair(idx, spec.n);
    sink(Edge{u, v});
  });
}

template <typename Sink>
void emit_bipartite_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                          std::uint64_t blocks, Sink&& sink) {
  const std::uint64_t a = spec.n / 2;
  const std::uint64_t cols = spec.n - a;
  const IndexRange r = split_range(a * cols, blocks, b);
  Rng rng = block_rng(spec, seed, b);
  skip_sample_range(r.lo, r.hi, spec.param, rng, [&](std::uint64_t idx) {
    sink(Edge{static_cast<Vertex>(idx / cols), static_cast<Vertex>(a + idx % cols)});
  });
}

template <typename Sink>
void emit_mu_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                   std::uint64_t blocks, Sink&& sink) {
  const std::uint64_t side = spec.mu_side();
  const std::uint64_t b1 = blocks / 3;
  const std::uint64_t space = b / b1;  // 0: U x V1, 1: U x V2, 2: V1 x V2
  const IndexRange r = split_range(side * side, b1, b % b1);
  const double p = spec.param / std::sqrt(static_cast<double>(side));
  Rng rng = block_rng(spec, seed, b);
  skip_sample_range(r.lo, r.hi, p, rng, [&](std::uint64_t idx) {
    const auto row = static_cast<Vertex>(idx / side);
    const auto col = static_cast<Vertex>(idx % side);
    const auto s = static_cast<Vertex>(side);
    switch (space) {
      case 0: sink(Edge{row, static_cast<Vertex>(s + col)}); break;
      case 1: sink(Edge{row, static_cast<Vertex>(2 * s + col)}); break;
      default: sink(Edge{static_cast<Vertex>(s + row), static_cast<Vertex>(2 * s + col)});
    }
  });
}

template <typename Sink>
void emit_hub_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                    std::uint64_t blocks, Sink&& sink) {
  const std::uint64_t hubs = spec.aux;
  const std::uint64_t rest = spec.n - hubs;
  const std::uint64_t slots = rest / 2;  // matching slots per hub
  const IndexRange r = split_range(hubs * slots, blocks, b);
  std::uint64_t cur_hub = ~std::uint64_t{0};
  SharedPermutation perm(0, 1);
  for (std::uint64_t i = r.lo; i < r.hi; ++i) {
    const std::uint64_t h = i / slots;
    if (h != cur_hub) {
      cur_hub = h;
      perm = SharedPermutation(mix_hash(spec.signature() ^ kHubPermSalt, seed, h), rest);
    }
    const std::uint64_t t = i % slots;
    const auto x = static_cast<Vertex>(hubs + perm(2 * t));
    const auto y = static_cast<Vertex>(hubs + perm(2 * t + 1));
    const auto hv = static_cast<Vertex>(h);
    sink(Edge{hv, x});
    sink(Edge{hv, y});
    sink(Edge{x, y});
  }
}

template <typename Sink>
void emit_bm_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                   std::uint64_t blocks, Sink&& sink) {
  const std::uint64_t pairs = spec.bm_pairs();
  const std::uint64_t two_p = 2 * pairs;
  const IndexRange r = split_range(3 * pairs, blocks, b);
  const auto x_bit = [&](std::uint64_t i) {
    return static_cast<std::uint32_t>(mix_hash(spec.signature() ^ kBmXSalt, seed, i) & 1);
  };
  const auto bm_v = [](std::uint64_t i, std::uint32_t bit) {
    return static_cast<Vertex>(1 + 2 * i + bit);
  };
  const SharedPermutation perm(mix_hash(spec.signature() ^ kBmPermSalt, seed, 0), two_p);
  for (std::uint64_t idx = r.lo; idx < r.hi; ++idx) {
    if (idx < two_p) {
      // Alice: the star edge {u, (i, x_i)}.
      sink(Edge{Vertex{0}, bm_v(idx, x_bit(idx))});
    } else {
      // Bob: gadget of matching edge j = {perm(2j), perm(2j+1)}, parallel
      // rungs when w_j = 0, crossed when w_j = 1. w is chosen so that
      // Mx ⊕ w is all-zeros (far case) or all-ones (triangle-free case).
      const std::uint64_t j = idx - two_p;
      const std::uint64_t j1 = perm(2 * j);
      const std::uint64_t j2 = perm(2 * j + 1);
      const std::uint32_t mx = x_bit(j1) ^ x_bit(j2);
      const std::uint32_t w = spec.bm_zero_case() ? mx : (mx ^ 1);
      sink(Edge{bm_v(j1, 0), bm_v(j2, w)});
      sink(Edge{bm_v(j1, 1), bm_v(j2, w ^ 1)});
    }
  }
}

template <typename Sink>
void emit_embed_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                      std::uint64_t blocks, Sink&& sink) {
  const std::uint64_t core_n = spec.embed_core_n();
  const double p_core = std::bit_cast<double>(spec.aux);
  const IndexRange r = split_range(pair_count(core_n), blocks, b);
  Rng rng = block_rng(spec, seed, b);
  skip_sample_range(r.lo, r.hi, p_core, rng, [&](std::uint64_t idx) {
    const auto [u, v] = unrank_pair(idx, core_n);
    sink(Edge{u, v});  // vertices [core_n, n) stay isolated
  });
}

template <typename Sink>
void visit_block(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t b,
                 std::uint64_t blocks, Sink&& sink) {
  switch (spec.family) {
    case ChunkedFamily::kGnp: emit_gnp_block(spec, seed, b, blocks, sink); break;
    case ChunkedFamily::kBipartiteGnp: emit_bipartite_block(spec, seed, b, blocks, sink); break;
    case ChunkedFamily::kTripartiteMu: emit_mu_block(spec, seed, b, blocks, sink); break;
    case ChunkedFamily::kHubMatching: emit_hub_block(spec, seed, b, blocks, sink); break;
    case ChunkedFamily::kBmReduction: emit_bm_block(spec, seed, b, blocks, sink); break;
    case ChunkedFamily::kEmbedGnpCore: emit_embed_block(spec, seed, b, blocks, sink); break;
  }
}

template <typename Sink>
void visit_chunk(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t chunk_id,
                 std::uint64_t num_chunks, Sink&& sink) {
  validate(spec);
  if (num_chunks == 0) throw std::invalid_argument("visit_chunk: num_chunks must be >= 1");
  if (chunk_id >= num_chunks) throw std::invalid_argument("visit_chunk: chunk_id out of range");
  const std::uint64_t blocks = chunk_block_count(spec);
  const IndexRange br = split_range(blocks, num_chunks, chunk_id);
  for (std::uint64_t b = br.lo; b < br.hi; ++b) visit_block(spec, seed, b, blocks, sink);
}

}  // namespace

ChunkedSpec ChunkedSpec::gnp(std::uint64_t n, double p) {
  return {ChunkedFamily::kGnp, n, p, 0};
}

ChunkedSpec ChunkedSpec::bipartite_gnp(std::uint64_t n, double p) {
  return {ChunkedFamily::kBipartiteGnp, n, p, 0};
}

ChunkedSpec ChunkedSpec::tripartite_mu(std::uint64_t side, double gamma) {
  return {ChunkedFamily::kTripartiteMu, 3 * side, gamma, 0};
}

ChunkedSpec ChunkedSpec::hub_matching(std::uint64_t n, std::uint32_t hubs) {
  return {ChunkedFamily::kHubMatching, n, 0.0, hubs};
}

ChunkedSpec ChunkedSpec::bm_reduction(std::uint64_t pairs, bool zero_case) {
  return {ChunkedFamily::kBmReduction, 4 * pairs + 1, 0.0, zero_case ? 1u : 0u};
}

ChunkedSpec ChunkedSpec::embed_gnp_core(std::uint64_t n, double d_target, double p_core) {
  return {ChunkedFamily::kEmbedGnpCore, n, d_target, std::bit_cast<std::uint64_t>(p_core)};
}

std::uint64_t ChunkedSpec::embed_core_n() const noexcept {
  // Same geometry as embed_dense_core (lower_bounds/embedding.cpp):
  // overall average degree = core_n^2 p / n  =>  core_n = sqrt(n d / p).
  const double p_core = std::bit_cast<double>(aux);
  const double np = std::sqrt(static_cast<double>(n) * param / p_core);
  return static_cast<std::uint64_t>(std::clamp(np, 3.0, static_cast<double>(n)));
}

std::uint64_t ChunkedSpec::signature() const noexcept {
  return mix_hash(mix_hash(kSpecTag, static_cast<std::uint64_t>(family), n),
                  std::bit_cast<std::uint64_t>(param), aux);
}

SharedPermutation::SharedPermutation(std::uint64_t key, std::uint64_t domain)
    : key_(key), domain_(domain) {
  if (domain == 0) throw std::invalid_argument("SharedPermutation: empty domain");
  const auto bits = static_cast<std::uint32_t>(std::max<int>(1, std::bit_width(domain - 1)));
  half_bits_ = std::max(1u, (bits + 1) / 2);
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
}

std::uint64_t SharedPermutation::operator()(std::uint64_t x) const noexcept {
  assert(x < domain_);
  // Cycle-walk: the Feistel network permutes [0, 2^(2*half_bits)), which
  // covers at most 4x the domain, so the expected walk length is < 4.
  std::uint64_t y = x;
  do {
    std::uint64_t l = y >> half_bits_;
    std::uint64_t r = y & half_mask_;
    for (std::uint64_t round = 0; round < 4; ++round) {
      const std::uint64_t f = mix_hash(key_, round, r) & half_mask_;
      const std::uint64_t nl = r;
      r = l ^ f;
      l = nl;
    }
    y = (l << half_bits_) | r;
  } while (y >= domain_);
  return y;
}

std::uint64_t chunk_block_count(const ChunkedSpec& spec) {
  validate(spec);
  switch (spec.family) {
    case ChunkedFamily::kGnp:
      return blocks_for(pair_count(spec.n), std::clamp(spec.param, 0.0, 1.0));
    case ChunkedFamily::kBipartiteGnp: {
      const std::uint64_t a = spec.n / 2;
      return blocks_for(a * (spec.n - a), std::clamp(spec.param, 0.0, 1.0));
    }
    case ChunkedFamily::kTripartiteMu: {
      const std::uint64_t side = spec.mu_side();
      const double p = side > 0 ? spec.param / std::sqrt(static_cast<double>(side)) : 0.0;
      // Blocks never straddle the three side^2 cross spaces, so a k=3
      // chunking is exactly the Alice/Bob/Charlie partition.
      return 3 * blocks_for(side * side, std::clamp(p, 0.0, 1.0));
    }
    case ChunkedFamily::kHubMatching:
      return blocks_for(spec.aux * ((spec.n - spec.aux) / 2), 3.0);
    case ChunkedFamily::kBmReduction:
      return blocks_for(3 * spec.bm_pairs(), 4.0 / 3.0);
    case ChunkedFamily::kEmbedGnpCore:
      return blocks_for(pair_count(spec.embed_core_n()),
                        std::clamp(std::bit_cast<double>(spec.aux), 0.0, 1.0));
  }
  return 1;
}

std::vector<Edge> generate_chunk(const ChunkedSpec& spec, std::uint64_t seed,
                                 std::uint64_t chunk_id, std::uint64_t num_chunks) {
  // Stage through the thread arena: the slice size is unknown up front, so
  // the doubling growth happens inside reused arena blocks and the returned
  // vector is allocated once at its exact final size (players hold O(m/k)
  // slices for a long time — slack capacity would be charged forever).
  ArenaScope scope;
  ArenaBuf<Edge> edges(scope.arena());
  visit_chunk(spec, seed, chunk_id, num_chunks, [&](const Edge& e) { edges.push_back(e); });
  return edges.take();
}

std::uint64_t count_chunk_edges(const ChunkedSpec& spec, std::uint64_t seed,
                                std::uint64_t chunk_id, std::uint64_t num_chunks) {
  std::uint64_t count = 0;
  visit_chunk(spec, seed, chunk_id, num_chunks, [&](const Edge&) { ++count; });
  return count;
}

ChunkedView::ChunkedView(ChunkedSpec spec, std::uint64_t seed, std::uint64_t num_chunks)
    : spec_(spec), seed_(seed), chunks_(num_chunks) {
  validate(spec_);
  if (chunks_ == 0) throw std::invalid_argument("ChunkedView: num_chunks must be >= 1");
}

std::uint64_t ChunkedView::count_edges() const {
  std::uint64_t total = 0;
  for (std::uint64_t c = 0; c < chunks_; ++c) {
    total += count_chunk_edges(spec_, seed_, c, chunks_);
  }
  return total;
}

Graph ChunkedView::build_union() const {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(count_edges()));
  for (std::uint64_t c = 0; c < chunks_; ++c) {
    visit_chunk(spec_, seed_, c, chunks_, [&](const Edge& e) { edges.push_back(e); });
  }
  return Graph(n(), std::move(edges));
}

std::vector<PlayerInput> ChunkedView::build_players() const {
  std::vector<PlayerInput> players;
  players.reserve(static_cast<std::size_t>(chunks_));
  for (std::uint64_t c = 0; c < chunks_; ++c) {
    players.push_back(PlayerInput{static_cast<std::size_t>(c),
                                  static_cast<std::size_t>(chunks_),
                                  Graph(n(), chunk_edges(c))});
  }
  return players;
}

std::vector<EdgeSlice> ChunkedView::build_slices() const {
  std::vector<EdgeSlice> slices;
  slices.reserve(static_cast<std::size_t>(chunks_));
  for (std::uint64_t c = 0; c < chunks_; ++c) {
    slices.push_back(EdgeSlice{static_cast<std::size_t>(c), static_cast<std::size_t>(chunks_),
                               n(), chunk_edges(c)});
  }
  return slices;
}

std::uint64_t edge_multiset_hash(std::span<const Edge> edges) noexcept {
  std::uint64_t h = 0;
  for (const Edge& e : edges) h += fmix64(e.key() ^ kMultisetSalt);
  return h;
}

std::uint64_t chunked_union_hash(const ChunkedSpec& spec, std::uint64_t seed,
                                 std::uint64_t num_chunks) {
  std::uint64_t h = 0;
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    visit_chunk(spec, seed, c, num_chunks,
                [&](const Edge& e) { h += fmix64(e.key() ^ kMultisetSalt); });
  }
  return h;
}

}  // namespace tft
