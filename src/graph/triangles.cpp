#include "graph/triangles.h"

#include <algorithm>
#include <numeric>

#include "util/parallel.h"

namespace tft {

namespace {

/// Out-neighbors of each vertex under degree orientation (edge points from
/// lower to higher (degree, id) rank), as a flat CSR: one offsets array and
/// one column array, no per-vertex vectors. Rows inherit the id-sorted
/// order of the graph's own CSR rows, so no comparison sort is needed.
struct OrientedCsr {
  std::vector<std::uint32_t> offsets;  // size n+1
  std::vector<Vertex> cols;            // size m, id-sorted per row

  [[nodiscard]] std::span<const Vertex> row(Vertex u) const noexcept {
    return {cols.data() + offsets[u], cols.data() + offsets[u + 1]};
  }
};

OrientedCsr orient(const Graph& g) {
  const std::size_t n = g.n();
  OrientedCsr csr;
  csr.offsets.assign(n + 1, 0);
  csr.cols.resize(g.num_edges());
  const auto lower = [&g](Vertex a, Vertex b) {
    const auto da = g.degree(a);
    const auto db = g.degree(b);
    return da != db ? da < db : a < b;
  };
  // Count pass (parallel, disjoint writes), serial prefix sum, fill pass
  // (parallel: each worker writes only its own rows' ranges).
  parallel_for(n, [&](std::size_t u) {
    std::uint32_t out = 0;
    for (const Vertex v : g.neighbors(static_cast<Vertex>(u))) {
      out += lower(static_cast<Vertex>(u), v) ? 1u : 0u;
    }
    csr.offsets[u + 1] = out;
  });
  for (std::size_t u = 0; u < n; ++u) csr.offsets[u + 1] += csr.offsets[u];
  parallel_for(n, [&](std::size_t u) {
    std::uint32_t w = csr.offsets[u];
    for (const Vertex v : g.neighbors(static_cast<Vertex>(u))) {
      if (lower(static_cast<Vertex>(u), v)) csr.cols[w++] = v;
    }
  });
  return csr;
}

/// Reusable per-thread scratch for mark-based intersections (one byte per
/// vertex: byte loads beat a bit-packed bitmap here — the scratch stays
/// cache-resident and the bitmap's shift/mask ALU work costs more than the
/// footprint saves). Zeroed between uses by the code that sets marks, so
/// repeated kernel calls allocate only on first use (or growth) per thread.
std::vector<std::uint8_t>& mark_scratch(std::size_t n) {
  thread_local std::vector<std::uint8_t> mark;
  if (mark.size() < n) mark.assign(n, 0);
  return mark;
}

/// Rows at least this long take the mark-scan path in count_triangles;
/// shorter rows use the two-pointer merge (marking cost would dominate).
constexpr std::size_t kMarkThreshold = 8;

std::uint64_t intersect_count(std::span<const Vertex> a, std::span<const Vertex> b) noexcept {
  std::uint64_t c = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++c;
      ++ia;
      ++ib;
    }
  }
  return c;
}

}  // namespace

std::uint64_t count_triangles(const Graph& g) {
  const OrientedCsr out = orient(g);
  // Integer sums are order-independent, and parallel_reduce folds chunk
  // partials in chunk order anyway, so the count is exact and identical at
  // any thread count.
  return parallel_reduce(
      g.n(), std::uint64_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint8_t>& mark = mark_scratch(g.n());
        const std::uint8_t* const marks = mark.data();
        std::uint64_t total = 0;
        for (std::size_t u = begin; u < end; ++u) {
          const auto row_u = out.row(static_cast<Vertex>(u));
          if (row_u.size() < 2) continue;
          if (row_u.size() < kMarkThreshold) {
            for (const Vertex v : row_u) total += intersect_count(row_u, out.row(v));
            continue;
          }
          // Mark N+(u) once, then scan each N+(v) against the marks: a
          // branch-free byte load per candidate instead of a mispredicting
          // merge step.
          for (const Vertex w : row_u) mark[w] = 1;
          for (const Vertex v : row_u) {
            const Vertex* w = out.cols.data() + out.offsets[v];
            const Vertex* const w_end = out.cols.data() + out.offsets[v + 1];
            std::uint64_t hits = 0;
            for (; w + 4 <= w_end; w += 4) {
              hits += static_cast<std::uint64_t>(marks[w[0]]) + marks[w[1]] + marks[w[2]] +
                      marks[w[3]];
            }
            for (; w != w_end; ++w) hits += marks[*w];
            total += hits;
          }
          for (const Vertex w : row_u) mark[w] = 0;
        }
        return total;
      },
      std::plus<>{});
}

std::optional<Triangle> find_triangle(const Graph& g) {
  // Serial: on triangle-rich inputs this exits almost immediately, and the
  // callers that need "some triangle" (referees, tests) want the cheap
  // first hit, not a parallel sweep.
  const OrientedCsr out = orient(g);
  for (Vertex u = 0; u < g.n(); ++u) {
    const auto row_u = out.row(u);
    for (const Vertex v : row_u) {
      const auto row_v = out.row(v);
      auto ia = row_u.begin();
      auto ib = row_v.begin();
      while (ia != row_u.end() && ib != row_v.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          return Triangle(u, v, *ia);
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Triangle> close_vee(const Graph& g, const Vee& vee) {
  if (!g.contains(vee)) return std::nullopt;
  if (!g.has_edge(vee.x, vee.y)) return std::nullopt;
  return Triangle(vee.source, vee.x, vee.y);
}

namespace {

/// Flat edge-index lookup over the graph's sorted edge list: edges_ is
/// sorted by (u, v), so the edges with first endpoint u form a contiguous
/// range and a binary search over the v's inside it resolves the index.
struct EdgeIndex {
  std::span<const Edge> edges;
  std::vector<std::uint32_t> row_start;  // first edge index with .u >= u

  explicit EdgeIndex(const Graph& g) : edges(g.edges()) {
    row_start.assign(static_cast<std::size_t>(g.n()) + 1, 0);
    for (const Edge& e : edges) ++row_start[e.u + 1];
    for (std::size_t u = 1; u < row_start.size(); ++u) row_start[u] += row_start[u - 1];
  }

  [[nodiscard]] std::size_t of(Vertex a, Vertex b) const noexcept {
    const Edge e(a, b);
    const auto* first = edges.data() + row_start[e.u];
    const auto* last = edges.data() + row_start[e.u + 1];
    const auto* it = std::lower_bound(first, last, e);
    return static_cast<std::size_t>(it - edges.data());
  }
};

/// One bit per edge index; the allocation-free replacement for the packing
/// loop's used-edge hash set.
class EdgeBitmap {
 public:
  explicit EdgeBitmap(std::size_t edges) : words_((edges + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) noexcept { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

std::vector<Triangle> greedy_triangle_packing(const Graph& g, Rng& rng) {
  std::vector<std::size_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher-Yates shuffle with our Rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  const EdgeIndex index(g);
  EdgeBitmap used(g.num_edges());

  std::vector<Triangle> packing;
  for (const std::size_t idx : order) {
    if (used.test(idx)) continue;
    const Edge e = g.edge(idx);
    // Search for a closing vertex w: common neighbors of u and v in id
    // order (the same candidate order as scanning N(u) and probing vs v),
    // via a two-pointer merge of the sorted rows.
    const Vertex u = e.u;
    const Vertex v = e.v;
    const auto nu = g.neighbors(u);
    const auto nv = g.neighbors(v);
    auto iu = nu.begin();
    auto iv = nv.begin();
    while (iu != nu.end() && iv != nv.end()) {
      if (*iu < *iv) {
        ++iu;
      } else if (*iv < *iu) {
        ++iv;
      } else {
        const Vertex w = *iu;
        const std::size_t uw = index.of(u, w);
        const std::size_t vw = index.of(v, w);
        if (!used.test(uw) && !used.test(vw)) {
          used.set(idx);
          used.set(uw);
          used.set(vw);
          packing.emplace_back(u, v, w);
          break;
        }
        ++iu;
        ++iv;
      }
    }
  }
  return packing;
}

std::uint64_t distance_lower_bound(const Graph& g, Rng& rng) {
  return greedy_triangle_packing(g, rng).size();
}

bool certify_eps_far(const Graph& g, double eps, Rng& rng) {
  const double need = eps * static_cast<double>(g.num_edges());
  return static_cast<double>(distance_lower_bound(g, rng)) >= need;
}

std::vector<Triangle> triangles_through(const Graph& g, Vertex source, std::size_t limit) {
  std::vector<Triangle> out;
  const auto ns = g.neighbors(source);
  for (std::size_t i = 0; i < ns.size() && out.size() < limit; ++i) {
    for (std::size_t j = i + 1; j < ns.size() && out.size() < limit; ++j) {
      if (g.has_edge(ns[i], ns[j])) out.emplace_back(source, ns[i], ns[j]);
    }
  }
  return out;
}

std::uint64_t disjoint_vees_at(const Graph& g, Vertex source) {
  // Greedy matching on the "closing" graph over N(source): vees from the
  // same source are disjoint iff their endpoint pairs are disjoint
  // (Section 3.2). Greedy maximal matching is a 1/2-approximation of the
  // maximum, which is enough for the full-vertex tests that consume this.
  //
  // For each unmatched x (in neighbor order), the first eligible partner is
  // the first unmatched common element of N(source) and N(x) — a sorted
  // two-pointer intersection with flat matched flags indexed by position in
  // N(source), instead of the former O(deg^2) probe loop with a hash set.
  const auto ns = g.neighbors(source);
  std::vector<std::uint8_t> matched(ns.size(), 0);
  std::uint64_t count = 0;
  for (std::size_t ix = 0; ix < ns.size(); ++ix) {
    if (matched[ix]) continue;
    const Vertex x = ns[ix];
    const auto nx = g.neighbors(x);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ns.size() && j < nx.size()) {
      if (ns[i] < nx[j]) {
        ++i;
      } else if (nx[j] < ns[i]) {
        ++j;
      } else {
        if (i != ix && !matched[i]) {
          matched[ix] = 1;
          matched[i] = 1;
          ++count;
          break;
        }
        ++i;
        ++j;
      }
    }
  }
  return count;
}

}  // namespace tft
