#include "graph/triangles.h"

#include <algorithm>
#include <numeric>

#include "graph/intersect.h"
#include "util/arena.h"
#include "util/parallel.h"

namespace tft {

namespace {

using kernel::Ops;
using kernel::Variant;

/// Out-neighbors of each vertex under degree orientation (edge points from
/// lower to higher (degree, id) rank), as a flat CSR: one offsets array and
/// one column array, no per-vertex vectors. Rows inherit the id-sorted
/// order of the graph's own CSR rows, so no comparison sort is needed.
/// Storage lives in the caller's ArenaScope: repeated kernel calls reuse the
/// same warm blocks instead of paying malloc + page faults per call.
struct OrientedCsr {
  std::span<std::uint32_t> offsets;  // size n+1
  std::span<Vertex> cols;            // size m, id-sorted per row

  [[nodiscard]] std::span<const Vertex> row(Vertex u) const noexcept {
    return {cols.data() + offsets[u], cols.data() + offsets[u + 1]};
  }
};

/// Orientation build for the SIMD strategies. Same output as the reference
/// passes below, arrived at faster: one sequentially-built (degree, id)
/// rank key per vertex replaces the two offset loads behind g.degree(v)
/// and makes the predicate a single branchless u64 compare; neighbor rank
/// loads are prefetched a few iterations ahead (the rank array is bigger
/// than L1 and the accesses are random); the fill pass stores through a
/// cmov-selected pointer instead of a 50%-mispredicting branch. The rank
/// scratch lives in a nested scope so it is released before the caller's
/// kernel loops run.
void orient_fast(const Graph& g, Arena& arena, OrientedCsr& csr) {
  const std::size_t n = g.n();
  ArenaScope scope(arena);
  const std::span<std::uint64_t> rank = scope.arena().alloc<std::uint64_t>(n);
  parallel_for(n, [&](std::size_t v) {
    rank[v] = (static_cast<std::uint64_t>(g.degree(static_cast<Vertex>(v))) << 32) | v;
  });
  constexpr std::size_t kLook = 16;
  parallel_for(n, [&](std::size_t u) {
    const auto row = g.neighbors(static_cast<Vertex>(u));
    const std::uint64_t ru = rank[u];
    std::uint32_t out = 0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j + kLook < row.size()) __builtin_prefetch(&rank[row[j + kLook]], 0, 3);
      out += ru < rank[row[j]] ? 1u : 0u;
    }
    csr.offsets[u + 1] = out;
  });
  for (std::size_t u = 0; u < n; ++u) csr.offsets[u + 1] += csr.offsets[u];
  parallel_for(n, [&](std::size_t u) {
    const auto row = g.neighbors(static_cast<Vertex>(u));
    const std::uint64_t ru = rank[u];
    std::uint32_t w = csr.offsets[u];
    // A plain always-store would spill one slot past the row's end on a
    // trailing discard — racing the worker filling the next row. Routing
    // rejects into a dummy keeps the store unconditional and safe.
    Vertex* const base = csr.cols.data();
    Vertex reject = 0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j + kLook < row.size()) __builtin_prefetch(&rank[row[j + kLook]], 0, 3);
      const Vertex v = row[j];
      const bool keep = ru < rank[v];
      *(keep ? base + w : &reject) = v;
      w += keep ? 1u : 0u;
    }
  });
}

OrientedCsr orient(const Graph& g, Arena& arena) {
  // offsets are 32-bit: refuse inputs that would silently wrap them.
  kernel::require_csr_offsets_fit(g.num_edges());
  const std::size_t n = g.n();
  OrientedCsr csr;
  csr.offsets = arena.alloc<std::uint32_t>(n + 1);
  csr.cols = arena.alloc<Vertex>(g.num_edges());
  csr.offsets[0] = 0;  // the count pass below writes indices 1..n
  if (kernel::resolved_variant() != Variant::kScalar) {
    orient_fast(g, arena, csr);
    return csr;
  }
  const auto lower = [&g](Vertex a, Vertex b) {
    const auto da = g.degree(a);
    const auto db = g.degree(b);
    return da != db ? da < db : a < b;
  };
  // Count pass (parallel, disjoint writes), serial prefix sum, fill pass
  // (parallel: each worker writes only its own rows' ranges). This is the
  // pre-PR build, kept verbatim as the kScalar reference.
  parallel_for(n, [&](std::size_t u) {
    std::uint32_t out = 0;
    for (const Vertex v : g.neighbors(static_cast<Vertex>(u))) {
      out += lower(static_cast<Vertex>(u), v) ? 1u : 0u;
    }
    csr.offsets[u + 1] = out;
  });
  for (std::size_t u = 0; u < n; ++u) csr.offsets[u + 1] += csr.offsets[u];
  parallel_for(n, [&](std::size_t u) {
    std::uint32_t w = csr.offsets[u];
    for (const Vertex v : g.neighbors(static_cast<Vertex>(u))) {
      if (lower(static_cast<Vertex>(u), v)) csr.cols[w++] = v;
    }
  });
  return csr;
}

/// Rows at least this long take the mark/bitmap path in count_triangles;
/// shorter rows use the merge (marking cost would dominate).
constexpr std::size_t kMarkThreshold = 8;

/// Packing pairs take the mark-shorter/probe-longer bitmap path only when
/// the shorter side is at least this long (and the longer side dwarfs it;
/// see greedy_triangle_packing); otherwise the merge wins.
constexpr std::size_t kPackBitmapThreshold = 32;

/// AVX2 byte-mark gathers index with signed 32-bit lanes; ids must stay
/// below 2^31 (the bitmap path shifts word indices and has no such limit).
constexpr std::uint64_t kGatherIdLimit = std::uint64_t{1} << 31;

/// Request every cache line of a row ahead of use. The candidate rows the
/// kernels scan are scattered over the whole CSR (tens of MB at bench
/// scale), so the hot loops are DRAM-latency-bound; a lookahead prefetch
/// overlaps those misses with current work. Only the SIMD strategies issue
/// prefetches — kScalar stays byte-for-byte the pre-PR kernel so the A/B
/// bench and the pinned baseline rows keep a stable reference.
inline void prefetch_row(const Vertex* p, std::size_t count) noexcept {
  const auto* c = reinterpret_cast<const char*>(p);
  const auto* end = reinterpret_cast<const char*>(p + count);
  for (; c < end; c += 64) __builtin_prefetch(c, 0, 3);
}

/// Lookahead distance (in loop iterations) for the prefetches above.
constexpr std::size_t kPrefetchDist = 8;
constexpr std::size_t kPackPrefetchDist = 12;

inline void set_bit(std::uint32_t* bits, Vertex w) noexcept {
  bits[w >> 5] |= std::uint32_t{1} << (w & 31);
}
inline void clear_bit(std::uint32_t* bits, Vertex w) noexcept {
  bits[w >> 5] &= ~(std::uint32_t{1} << (w & 31));
}

/// Column-tiling decision for the bitset count path. Auto mode blocks only
/// when the full bitmap would blow past L2 (~1 MiB at n = 2^23), tiling in
/// 2^22-vertex slices (512 KiB) so the hot slice stays resident;
/// kernel::set_block_bits forces a width for tests.
struct BlockPlan {
  bool blocked = false;
  std::uint64_t span = 0;  // vertices per tile
};

BlockPlan block_plan(std::size_t n) {
  const std::uint32_t bb = kernel::block_bits();
  if (bb != 0) {
    const std::uint64_t span = std::uint64_t{1} << std::min(bb, 31u);
    return span < n ? BlockPlan{true, span} : BlockPlan{};
  }
  constexpr std::size_t kAutoBitmapBits = std::size_t{8} << 20;  // 1 MiB of bitmap
  if (n > kAutoBitmapBits) return {true, std::uint64_t{1} << 22};
  return {};
}

/// Count contributions of one long-row vertex u via the blocked bitset path:
/// for each column tile [lo, hi), mark u's out-neighbors falling in the tile
/// into a slice-local bitmap and advance a per-v cursor over each N+(v),
/// counting set bits. Cursors are monotone (tiles ascend), so the total work
/// per pair is one extra pass over N+(v); integer sums make the block
/// decomposition exact — same count as the unblocked path, always.
std::uint64_t count_blocked(const OrientedCsr& out, std::span<const Vertex> row_u,
                            std::uint32_t* bits, const BlockPlan& plan, std::size_t n,
                            const Ops& ops) {
  ArenaScope scope;
  const std::span<std::uint32_t> cursors = scope.arena().alloc<std::uint32_t>(row_u.size());
  for (std::size_t i = 0; i < row_u.size(); ++i) cursors[i] = out.offsets[row_u[i]];
  std::uint64_t total = 0;
  std::size_t mark_lo = 0;
  for (std::uint64_t lo = 0; lo < n; lo += plan.span) {
    const std::uint64_t hi = std::min<std::uint64_t>(lo + plan.span, n);
    std::size_t mark_hi = mark_lo;
    while (mark_hi < row_u.size() && row_u[mark_hi] < hi) ++mark_hi;
    const bool any = mark_hi > mark_lo;
    if (any) {
      for (std::size_t j = mark_lo; j < mark_hi; ++j) {
        set_bit(bits, static_cast<Vertex>(row_u[j] - lo));
      }
    }
    for (std::size_t i = 0; i < row_u.size(); ++i) {
      std::uint32_t c = cursors[i];
      const std::uint32_t vend = out.offsets[row_u[i] + 1];
      std::uint32_t cend = c;
      while (cend < vend && out.cols[cend] < hi) ++cend;
      if (any && cend > c) {
        total += ops.bitmap_count(bits, out.cols.data() + c, cend - c,
                                  static_cast<Vertex>(lo));
      }
      cursors[i] = cend;
    }
    if (any) {
      for (std::size_t j = mark_lo; j < mark_hi; ++j) {
        clear_bit(bits, static_cast<Vertex>(row_u[j] - lo));
      }
    }
    mark_lo = mark_hi;
  }
  return total;
}

}  // namespace

std::uint64_t count_triangles(const Graph& g) {
  ArenaScope scope;
  const OrientedCsr out = orient(g, scope.arena());
  const Ops& ops = kernel::ops();
  const bool bitset = ops.strategy == Variant::kBitset;
  const BlockPlan plan = bitset ? block_plan(g.n()) : BlockPlan{};
  // The byte-mark gather path needs ids < 2^31; beyond that, probe scalar.
  auto* const marks_count =
      g.n() < kGatherIdLimit ? ops.marks_count : kernel::ops_for(Variant::kScalar).marks_count;
  const bool prefetch = ops.strategy != Variant::kScalar;
  // Integer sums are order-independent, and parallel_reduce folds chunk
  // partials in chunk order anyway, so the count is exact and identical at
  // any thread count — and across every kernel variant.
  return parallel_reduce(
      g.n(), std::uint64_t{0},
      [&](std::size_t begin, std::size_t end) {
        std::uint64_t total = 0;
        std::uint8_t* const marks = bitset ? nullptr : kernel::mark_bytes(g.n());
        std::uint32_t* const bits =
            bitset ? kernel::mark_bits(plan.blocked ? plan.span : g.n()) : nullptr;
        for (std::size_t u = begin; u < end; ++u) {
          const auto row_u = out.row(static_cast<Vertex>(u));
          if (row_u.size() < 2) continue;
          if (row_u.size() < kMarkThreshold) {
            for (const Vertex v : row_u) total += ops.merge_count(row_u, out.row(v));
            continue;
          }
          if (!bitset) {
            // Mark N+(u) once, then scan each N+(v) against the marks: a
            // branch-free byte probe per candidate instead of a
            // mispredicting merge step.
            for (const Vertex w : row_u) marks[w] = 1;
            for (std::size_t j = 0; j < row_u.size(); ++j) {
              if (prefetch && j + kPrefetchDist < row_u.size()) {
                const Vertex pv = row_u[j + kPrefetchDist];
                prefetch_row(out.cols.data() + out.offsets[pv],
                             out.offsets[pv + 1] - out.offsets[pv]);
              }
              const Vertex v = row_u[j];
              total += marks_count(marks, out.cols.data() + out.offsets[v],
                                   out.offsets[v + 1] - out.offsets[v]);
            }
            for (const Vertex w : row_u) marks[w] = 0;
          } else if (plan.blocked) {
            total += count_blocked(out, row_u, bits, plan, g.n(), ops);
          } else {
            // Bit-packed marks: 1 bit/vertex keeps the whole mark set
            // L1-resident at n = 1e5 (12.5 KB vs 100 KB of bytes).
            for (const Vertex w : row_u) set_bit(bits, w);
            for (std::size_t j = 0; j < row_u.size(); ++j) {
              if (j + kPrefetchDist < row_u.size()) {
                const Vertex pv = row_u[j + kPrefetchDist];
                prefetch_row(out.cols.data() + out.offsets[pv],
                             out.offsets[pv + 1] - out.offsets[pv]);
              }
              const Vertex v = row_u[j];
              total += ops.bitmap_count(bits, out.cols.data() + out.offsets[v],
                                        out.offsets[v + 1] - out.offsets[v], 0);
            }
            for (const Vertex w : row_u) clear_bit(bits, w);
          }
        }
        return total;
      },
      std::plus<>{});
}

std::optional<Triangle> find_triangle(const Graph& g) {
  // Serial: on triangle-rich inputs this exits almost immediately, and the
  // callers that need "some triangle" (referees, tests) want the cheap
  // first hit, not a parallel sweep. Never blocked: every variant visits
  // common neighbors in (v-in-row-order, w-ascending) order, so the
  // reported triangle is identical across scalar/AVX2/bitset.
  ArenaScope scope;
  const OrientedCsr out = orient(g, scope.arena());
  const Ops& ops = kernel::ops();
  for (Vertex u = 0; u < g.n(); ++u) {
    const auto row_u = out.row(u);
    for (const Vertex v : row_u) {
      Vertex w = 0;
      if (ops.merge_find(row_u, out.row(v), nullptr, nullptr, &w)) {
        return Triangle(u, v, w);
      }
    }
  }
  return std::nullopt;
}

std::optional<Triangle> close_vee(const Graph& g, const Vee& vee) {
  if (!g.contains(vee)) return std::nullopt;
  if (!g.has_edge(vee.x, vee.y)) return std::nullopt;
  return Triangle(vee.source, vee.x, vee.y);
}

namespace {

/// Flat edge-index lookup over the graph's sorted edge list: edges_ is
/// sorted by (u, v), so the edges with first endpoint u form a contiguous
/// range and a binary search over the v's inside it resolves the index.
struct EdgeIndex {
  std::span<const Edge> edges;
  std::vector<std::uint32_t> row_start;  // first edge index with .u >= u

  explicit EdgeIndex(const Graph& g) : edges(g.edges()) {
    row_start.assign(static_cast<std::size_t>(g.n()) + 1, 0);
    for (const Edge& e : edges) ++row_start[e.u + 1];
    for (std::size_t u = 1; u < row_start.size(); ++u) row_start[u] += row_start[u - 1];
  }

  [[nodiscard]] std::size_t of(Vertex a, Vertex b) const noexcept {
    const Edge e(a, b);
    const auto* first = edges.data() + row_start[e.u];
    const auto* last = edges.data() + row_start[e.u + 1];
    const auto* it = std::lower_bound(first, last, e);
    return static_cast<std::size_t>(it - edges.data());
  }
};

/// One bit per edge index; the allocation-free replacement for the packing
/// loop's used-edge hash set.
class EdgeBitmap {
 public:
  explicit EdgeBitmap(std::size_t edges) : words_((edges + 63) / 64, 0) {}

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) noexcept { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void prefetch(std::size_t i) const noexcept {
    __builtin_prefetch(&words_[i >> 6], 0, 3);
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Candidate filter for the packing search: accept the first common
/// neighbor w whose closing edges are both unused. Shared by the merge and
/// bitmap probes, which visit the same candidates in the same (ascending)
/// order — packings are identical across variants.
struct PackCtx {
  const EdgeIndex* index;
  const EdgeBitmap* used;
  Vertex u, v;
  std::size_t uw = 0, vw = 0;  // out: edge indices of the accepted closure
};

bool pack_accept(void* p, Vertex w) {
  auto* c = static_cast<PackCtx*>(p);
  const std::size_t uw = c->index->of(c->u, w);
  const std::size_t vw = c->index->of(c->v, w);
  if (c->used->test(uw) || c->used->test(vw)) return false;
  c->uw = uw;
  c->vw = vw;
  return true;
}

}  // namespace

std::vector<Triangle> greedy_triangle_packing(const Graph& g, Rng& rng) {
  // 32-bit edge indices (the CSR-width guard bounds m) halve the shuffle
  // footprint; the arena reuses the same blocks across calls.
  kernel::require_csr_offsets_fit(g.num_edges());
  ArenaScope scope;
  const std::size_t m = g.num_edges();
  const std::span<std::uint32_t> order = scope.arena().alloc<std::uint32_t>(m);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  // Fisher-Yates shuffle with our Rng (same value sequence as the original
  // size_t order array: rng.below draws are index-only).
  for (std::size_t i = m; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  const EdgeIndex index(g);
  EdgeBitmap used(m);
  const Ops& ops = kernel::ops();
  const bool bitset = ops.strategy == Variant::kBitset;
  std::uint32_t* const bits = bitset ? kernel::mark_bits(g.n()) : nullptr;

  // The shuffled edge order makes every iteration's row fetches a fresh
  // DRAM miss; a two-level lookahead (edge struct first, then its rows)
  // keeps several misses in flight. kScalar runs the pre-PR loop untouched.
  const bool prefetch = ops.strategy != Variant::kScalar;
  std::vector<Triangle> packing;
  for (std::size_t i = 0; i < m; ++i) {
    if (prefetch) {
      if (i + 2 * kPackPrefetchDist < m) {
        const std::uint32_t pidx = order[i + 2 * kPackPrefetchDist];
        __builtin_prefetch(&g.edge(pidx), 0, 3);
        used.prefetch(pidx);
      }
      if (i + kPackPrefetchDist < m) {
        const Edge pe = g.edge(order[i + kPackPrefetchDist]);
        const auto pnu = g.neighbors(pe.u);
        const auto pnv = g.neighbors(pe.v);
        prefetch_row(pnu.data(), pnu.size());
        prefetch_row(pnv.data(), pnv.size());
      }
    }
    const std::uint32_t idx = order[i];
    if (used.test(idx)) continue;
    const Edge e = g.edge(idx);
    // Search for a closing vertex w: common neighbors of u and v in id
    // order (the same candidate order as scanning N(u) and probing vs v).
    const auto nu = g.neighbors(e.u);
    const auto nv = g.neighbors(e.v);
    PackCtx ctx{&index, &used, e.u, e.v};
    Vertex w = 0;
    bool found;
    const auto shorter = nu.size() <= nv.size() ? nu : nv;
    const auto longer = nu.size() <= nv.size() ? nv : nu;
    // Mark-and-probe only pays when the longer row dwarfs the shorter one:
    // marking costs two extra passes over the shorter row, and on balanced
    // rows the 8-wide block merge beats per-candidate bitmap gathers. Both
    // paths visit commons in the same ascending order, so the packing is
    // identical either way.
    if (bitset && shorter.size() >= kPackBitmapThreshold &&
        longer.size() >= 8 * shorter.size()) {
      for (const Vertex x : shorter) set_bit(bits, x);
      found = ops.bitmap_find(bits, longer.data(), longer.size(), pack_accept, &ctx, &w);
      for (const Vertex x : shorter) clear_bit(bits, x);
    } else {
      found = ops.merge_find(nu, nv, pack_accept, &ctx, &w);
    }
    if (found) {
      used.set(idx);
      used.set(ctx.uw);
      used.set(ctx.vw);
      packing.emplace_back(e.u, e.v, w);
    }
  }
  return packing;
}

std::uint64_t distance_lower_bound(const Graph& g, Rng& rng) {
  return greedy_triangle_packing(g, rng).size();
}

bool certify_eps_far(const Graph& g, double eps, Rng& rng) {
  const double need = eps * static_cast<double>(g.num_edges());
  return static_cast<double>(distance_lower_bound(g, rng)) >= need;
}

std::vector<Triangle> triangles_through(const Graph& g, Vertex source, std::size_t limit) {
  std::vector<Triangle> out;
  const auto ns = g.neighbors(source);
  for (std::size_t i = 0; i < ns.size() && out.size() < limit; ++i) {
    for (std::size_t j = i + 1; j < ns.size() && out.size() < limit; ++j) {
      if (g.has_edge(ns[i], ns[j])) out.emplace_back(source, ns[i], ns[j]);
    }
  }
  return out;
}

std::uint64_t disjoint_vees_at(const Graph& g, Vertex source) {
  // Greedy matching on the "closing" graph over N(source): vees from the
  // same source are disjoint iff their endpoint pairs are disjoint
  // (Section 3.2). Greedy maximal matching is a 1/2-approximation of the
  // maximum, which is enough for the full-vertex tests that consume this.
  //
  // For each unmatched x (in neighbor order), the first eligible partner is
  // the first unmatched common element of N(source) and N(x) — a sorted
  // two-pointer intersection with flat matched flags indexed by position in
  // N(source), instead of the former O(deg^2) probe loop with a hash set.
  // Stays scalar: the matched-position bookkeeping keys on *positions* in
  // N(source), which the value-keyed kernel primitives don't expose.
  const auto ns = g.neighbors(source);
  std::vector<std::uint8_t> matched(ns.size(), 0);
  std::uint64_t count = 0;
  for (std::size_t ix = 0; ix < ns.size(); ++ix) {
    if (matched[ix]) continue;
    const Vertex x = ns[ix];
    const auto nx = g.neighbors(x);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ns.size() && j < nx.size()) {
      if (ns[i] < nx[j]) {
        ++i;
      } else if (nx[j] < ns[i]) {
        ++j;
      } else {
        if (i != ix && !matched[i]) {
          matched[ix] = 1;
          matched[i] = 1;
          ++count;
          break;
        }
        ++i;
        ++j;
      }
    }
  }
  return count;
}

}  // namespace tft
