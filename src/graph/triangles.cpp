#include "graph/triangles.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace tft {

namespace {

/// Rank used for degree orientation: lower (degree, id) first.
struct DegreeRank {
  const Graph& g;
  [[nodiscard]] bool lower(Vertex a, Vertex b) const {
    const auto da = g.degree(a);
    const auto db = g.degree(b);
    return da != db ? da < db : a < b;
  }
};

/// Out-neighbors of each vertex under degree orientation, sorted.
std::vector<std::vector<Vertex>> orient(const Graph& g) {
  DegreeRank rank{g};
  std::vector<std::vector<Vertex>> out(g.n());
  for (const Edge& e : g.edges()) {
    if (rank.lower(e.u, e.v)) {
      out[e.u].push_back(e.v);
    } else {
      out[e.v].push_back(e.u);
    }
  }
  for (auto& row : out) std::sort(row.begin(), row.end());
  return out;
}

std::uint64_t intersect_count(const std::vector<Vertex>& a, const std::vector<Vertex>& b) {
  std::uint64_t c = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++c;
      ++ia;
      ++ib;
    }
  }
  return c;
}

}  // namespace

std::uint64_t count_triangles(const Graph& g) {
  const auto out = orient(g);
  std::uint64_t total = 0;
  for (Vertex u = 0; u < g.n(); ++u) {
    for (Vertex v : out[u]) {
      total += intersect_count(out[u], out[v]);
    }
  }
  return total;
}

std::optional<Triangle> find_triangle(const Graph& g) {
  const auto out = orient(g);
  for (Vertex u = 0; u < g.n(); ++u) {
    for (Vertex v : out[u]) {
      const auto& a = out[u];
      const auto& b = out[v];
      auto ia = a.begin();
      auto ib = b.begin();
      while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          return Triangle(u, v, *ia);
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<Triangle> close_vee(const Graph& g, const Vee& vee) {
  if (!g.contains(vee)) return std::nullopt;
  if (!g.has_edge(vee.x, vee.y)) return std::nullopt;
  return Triangle(vee.source, vee.x, vee.y);
}

std::vector<Triangle> greedy_triangle_packing(const Graph& g, Rng& rng) {
  std::vector<std::size_t> order(g.num_edges());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher-Yates shuffle with our Rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  std::unordered_set<std::uint64_t> used;
  used.reserve(g.num_edges() / 2);
  const auto free_edge = [&](Vertex a, Vertex b) { return !used.contains(Edge(a, b).key()); };

  std::vector<Triangle> packing;
  for (const std::size_t idx : order) {
    const Edge e = g.edge(idx);
    if (!free_edge(e.u, e.v)) continue;
    // Search for a closing vertex w from the smaller neighborhood.
    Vertex u = e.u;
    Vertex v = e.v;
    if (g.degree(u) > g.degree(v)) std::swap(u, v);
    for (const Vertex w : g.neighbors(u)) {
      if (w == v) continue;
      if (!g.has_edge(v, w)) continue;
      if (!free_edge(u, w) || !free_edge(v, w)) continue;
      used.insert(Edge(u, v).key());
      used.insert(Edge(u, w).key());
      used.insert(Edge(v, w).key());
      packing.emplace_back(u, v, w);
      break;
    }
  }
  return packing;
}

std::uint64_t distance_lower_bound(const Graph& g, Rng& rng) {
  return greedy_triangle_packing(g, rng).size();
}

bool certify_eps_far(const Graph& g, double eps, Rng& rng) {
  const double need = eps * static_cast<double>(g.num_edges());
  return static_cast<double>(distance_lower_bound(g, rng)) >= need;
}

std::vector<Triangle> triangles_through(const Graph& g, Vertex source, std::size_t limit) {
  std::vector<Triangle> out;
  const auto ns = g.neighbors(source);
  for (std::size_t i = 0; i < ns.size() && out.size() < limit; ++i) {
    for (std::size_t j = i + 1; j < ns.size() && out.size() < limit; ++j) {
      if (g.has_edge(ns[i], ns[j])) out.emplace_back(source, ns[i], ns[j]);
    }
  }
  return out;
}

std::uint64_t disjoint_vees_at(const Graph& g, Vertex source) {
  // Greedy matching on the "closing" graph over N(source): vees from the
  // same source are disjoint iff their endpoint pairs are disjoint
  // (Section 3.2). Greedy maximal matching is a 1/2-approximation of the
  // maximum, which is enough for the full-vertex tests that consume this.
  const auto ns = g.neighbors(source);
  std::unordered_set<Vertex> matched;
  std::uint64_t count = 0;
  for (const Vertex x : ns) {
    if (matched.contains(x)) continue;
    for (const Vertex y : ns) {
      if (y == x || matched.contains(y)) continue;
      if (g.has_edge(x, y)) {
        matched.insert(x);
        matched.insert(y);
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace tft
