#include "graph/intersect.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cpu.h"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(TFT_DISABLE_AVX2)
#define TFT_HAVE_AVX2_IMPL 1
#include <immintrin.h>
#endif

namespace tft::kernel {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference implementations (always compiled; the identity anchor).
// ---------------------------------------------------------------------------

/// lower_bound with an exponential (galloping) probe from `first`: O(log gap)
/// instead of O(log len) when successive lookups advance monotonically.
const Vertex* gallop_lower_bound(const Vertex* first, const Vertex* last, Vertex x) noexcept {
  std::size_t step = 1;
  const Vertex* probe = first;
  while (probe < last && *probe < x) {
    first = probe + 1;
    probe += step;
    step <<= 1;
  }
  return std::lower_bound(first, std::min(probe, last), x);
}

/// Count when |a| << |b|: gallop through b once for each element of a.
std::uint64_t gallop_count(std::span<const Vertex> a, std::span<const Vertex> b) noexcept {
  std::uint64_t c = 0;
  const Vertex* lo = b.data();
  const Vertex* const end = b.data() + b.size();
  for (const Vertex x : a) {
    lo = gallop_lower_bound(lo, end, x);
    if (lo == end) break;
    if (*lo == x) {
      ++c;
      ++lo;
    }
  }
  return c;
}

/// Size-ratio at which galloping beats a linear merge.
constexpr std::size_t kGallopRatio = 32;

std::uint64_t merge_count_scalar(std::span<const Vertex> a, std::span<const Vertex> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (a.size() * kGallopRatio < b.size()) return gallop_count(a, b);
  std::uint64_t c = 0;
  const Vertex* ia = a.data();
  const Vertex* const ea = ia + a.size();
  const Vertex* ib = b.data();
  const Vertex* const eb = ib + b.size();
  while (ia != ea && ib != eb) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++c;
      ++ia;
      ++ib;
    }
  }
  return c;
}

/// Two-pointer find over [ia,ea) x [ib,eb); shared by the scalar path and
/// the AVX2 path's tail so candidate order is one definition.
bool merge_find_range(const Vertex* ia, const Vertex* ea, const Vertex* ib, const Vertex* eb,
                      Accept accept, void* ctx, Vertex* out) {
  while (ia != ea && ib != eb) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      if (accept == nullptr || accept(ctx, *ia)) {
        *out = *ia;
        return true;
      }
      ++ia;
      ++ib;
    }
  }
  return false;
}

bool merge_find_scalar(std::span<const Vertex> a, std::span<const Vertex> b, Accept accept,
                       void* ctx, Vertex* out) {
  return merge_find_range(a.data(), a.data() + a.size(), b.data(), b.data() + b.size(), accept,
                          ctx, out);
}

std::uint64_t marks_count_scalar(const std::uint8_t* marks, const Vertex* b, std::size_t len) {
  const Vertex* const end = b + len;
  std::uint64_t hits = 0;
  // 4-wide unroll: independent byte loads, no mispredicting merge branch.
  for (; b + 4 <= end; b += 4) {
    hits += static_cast<std::uint64_t>(marks[b[0]]) + marks[b[1]] + marks[b[2]] + marks[b[3]];
  }
  for (; b != end; ++b) hits += marks[*b];
  return hits;
}

std::uint64_t bitmap_count_scalar(const std::uint32_t* bits, const Vertex* b, std::size_t len,
                                  Vertex base) {
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const Vertex w = b[i] - base;
    hits += (bits[w >> 5] >> (w & 31)) & 1u;
  }
  return hits;
}

bool bitmap_find_scalar(const std::uint32_t* bits, const Vertex* b, std::size_t len,
                        Accept accept, void* ctx, Vertex* out) {
  for (std::size_t i = 0; i < len; ++i) {
    const Vertex w = b[i];
    if (((bits[w >> 5] >> (w & 31)) & 1u) != 0 && (accept == nullptr || accept(ctx, w))) {
      *out = w;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// AVX2 implementations. Compiled per-function (target attribute) so the
// translation unit builds without -mavx2; never called unless
// cpu::have_avx2() proved the host executes them.
// ---------------------------------------------------------------------------

#if defined(TFT_HAVE_AVX2_IMPL)

/// 8x8 all-pairs block compare: OR of cmpeq(va, rot^k(vb)) for k = 0..7.
/// A set bit in the movemask marks an a-lane whose value occurs in the
/// b-block; since rows are strictly increasing, each common value occupies
/// exactly one a-lane and lane order == value order.
__attribute__((target("avx2"))) inline __m256i block_compare(__m256i va, __m256i vb,
                                                             __m256i rot1) {
  __m256i cmp = _mm256_cmpeq_epi32(va, vb);
  __m256i r = vb;
  for (int k = 0; k < 7; ++k) {
    r = _mm256_permutevar8x32_epi32(r, rot1);
    cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, r));
  }
  return cmp;
}

__attribute__((target("avx2"))) std::uint64_t merge_count_avx2(std::span<const Vertex> a,
                                                               std::span<const Vertex> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (a.size() * kGallopRatio < b.size()) return gallop_count(a, b);
  const Vertex* pa = a.data();
  const Vertex* const ea = pa + a.size();
  const Vertex* pb = b.data();
  const Vertex* const eb = pb + b.size();
  std::uint64_t count = 0;
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (pa + 8 <= ea && pb + 8 <= eb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i cmp = block_compare(va, vb, rot1);
    count += static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)))));
    // Advance the block whose max is smaller; both on a tie. Discarded
    // elements can never match remaining ones (strictly increasing rows),
    // so every common value is compared exactly once.
    const Vertex amax = pa[7];
    const Vertex bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
  }
  // Scalar tail over the remainders.
  while (pa != ea && pb != eb) {
    if (*pa < *pb) {
      ++pa;
    } else if (*pb < *pa) {
      ++pb;
    } else {
      ++count;
      ++pa;
      ++pb;
    }
  }
  return count;
}

__attribute__((target("avx2"))) bool merge_find_avx2(std::span<const Vertex> a,
                                                     std::span<const Vertex> b, Accept accept,
                                                     void* ctx, Vertex* out) {
  const Vertex* pa = a.data();
  const Vertex* const ea = pa + a.size();
  const Vertex* pb = b.data();
  const Vertex* const eb = pb + b.size();
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (pa + 8 <= ea && pb + 8 <= eb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
    const __m256i cmp = block_compare(va, vb, rot1);
    unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
    // Matched a-lanes ascend in value, and block advancement only ever moves
    // to strictly larger values, so candidates arrive globally ascending —
    // the same order as the scalar two-pointer merge.
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
      const Vertex w = pa[lane];
      if (accept == nullptr || accept(ctx, w)) {
        *out = w;
        return true;
      }
      mask &= mask - 1;
    }
    const Vertex amax = pa[7];
    const Vertex bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
  }
  return merge_find_range(pa, ea, pb, eb, accept, ctx, out);
}

__attribute__((target("avx2"))) std::uint64_t marks_count_avx2(const std::uint8_t* marks,
                                                               const Vertex* b,
                                                               std::size_t len) {
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // Byte gather: loads 4 bytes at marks + id (the +32 tail pad of
    // mark_bytes() keeps the over-read in bounds), keep the low byte.
    const __m256i g =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(marks), idx, 1);
    acc = _mm256_add_epi32(acc, _mm256_and_si256(g, byte_mask));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  std::uint64_t hits = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  for (; i < len; ++i) hits += marks[b[i]];
  return hits;
}

__attribute__((target("avx2"))) std::uint64_t bitmap_count_avx2(const std::uint32_t* bits,
                                                                const Vertex* b,
                                                                std::size_t len, Vertex base) {
  const __m256i vbase = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i shift_mask = _mm256_set1_epi32(31);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i raw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i idx = _mm256_sub_epi32(raw, vbase);
    const __m256i word = _mm256_i32gather_epi32(reinterpret_cast<const int*>(bits),
                                                _mm256_srli_epi32(idx, 5), 4);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi32(word, _mm256_and_si256(idx, shift_mask)), one);
    acc = _mm256_add_epi32(acc, bit);
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  std::uint64_t hits = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  for (; i < len; ++i) {
    const Vertex w = b[i] - base;
    hits += (bits[w >> 5] >> (w & 31)) & 1u;
  }
  return hits;
}

__attribute__((target("avx2"))) bool bitmap_find_avx2(const std::uint32_t* bits,
                                                      const Vertex* b, std::size_t len,
                                                      Accept accept, void* ctx, Vertex* out) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i shift_mask = _mm256_set1_epi32(31);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i word = _mm256_i32gather_epi32(reinterpret_cast<const int*>(bits),
                                                _mm256_srli_epi32(idx, 5), 4);
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi32(word, _mm256_and_si256(idx, shift_mask)), one);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_slli_epi32(bit, 31))));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
      const Vertex w = b[i + lane];
      if (accept == nullptr || accept(ctx, w)) {
        *out = w;
        return true;
      }
      mask &= mask - 1;
    }
  }
  for (; i < len; ++i) {
    const Vertex w = b[i];
    if (((bits[w >> 5] >> (w & 31)) & 1u) != 0 && (accept == nullptr || accept(ctx, w))) {
      *out = w;
      return true;
    }
  }
  return false;
}

#endif  // TFT_HAVE_AVX2_IMPL

// ---------------------------------------------------------------------------
// Dispatch tables and variant selection.
// ---------------------------------------------------------------------------

std::atomic<Variant> g_variant{Variant::kAuto};
std::atomic<std::uint32_t> g_block_bits{0};

constexpr Ops kScalarOps = {Variant::kScalar,  merge_count_scalar, merge_find_scalar,
                            marks_count_scalar, bitmap_count_scalar, bitmap_find_scalar};
constexpr Ops kBitsetScalarOps = {Variant::kBitset,  merge_count_scalar, merge_find_scalar,
                                  marks_count_scalar, bitmap_count_scalar, bitmap_find_scalar};
#if defined(TFT_HAVE_AVX2_IMPL)
constexpr Ops kAvx2Ops = {Variant::kAvx2,  merge_count_avx2, merge_find_avx2,
                          marks_count_avx2, bitmap_count_avx2, bitmap_find_avx2};
constexpr Ops kBitsetSimdOps = {Variant::kBitset, merge_count_avx2, merge_find_avx2,
                                marks_count_avx2, bitmap_count_avx2, bitmap_find_avx2};
#endif

Variant resolve(Variant v) noexcept {
  switch (v) {
    case Variant::kScalar:
      return Variant::kScalar;
    case Variant::kAvx2:
      return avx2_available() ? Variant::kAvx2 : Variant::kScalar;
    case Variant::kBitset:
      return Variant::kBitset;
    case Variant::kAuto:
    default:
      return avx2_available() ? Variant::kBitset : Variant::kScalar;
  }
}

}  // namespace

void set_variant(Variant v) noexcept { g_variant.store(v, std::memory_order_relaxed); }

Variant variant() noexcept { return g_variant.load(std::memory_order_relaxed); }

Variant resolved_variant() noexcept { return resolve(variant()); }

const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::kAuto:
      return "auto";
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kBitset:
      return "bitset";
  }
  return "?";
}

std::optional<Variant> variant_from_name(std::string_view name) noexcept {
  if (name == "auto") return Variant::kAuto;
  if (name == "scalar") return Variant::kScalar;
  if (name == "avx2") return Variant::kAvx2;
  if (name == "bitset") return Variant::kBitset;
  return std::nullopt;
}

bool avx2_available() noexcept {
#if defined(TFT_HAVE_AVX2_IMPL)
  return cpu::have_avx2();
#else
  return false;
#endif
}

const Ops& ops_for(Variant v) noexcept {
  switch (resolve(v)) {
    case Variant::kScalar:
      return kScalarOps;
#if defined(TFT_HAVE_AVX2_IMPL)
    case Variant::kAvx2:
      return kAvx2Ops;
    case Variant::kBitset:
      return avx2_available() ? kBitsetSimdOps : kBitsetScalarOps;
#else
    case Variant::kAvx2:
      return kScalarOps;
    case Variant::kBitset:
      return kBitsetScalarOps;
#endif
    default:
      return kScalarOps;
  }
}

const Ops& ops() noexcept { return ops_for(variant()); }

// ---------------------------------------------------------------------------
// Thread-local mark scratch with cap-and-reallocate.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kDefaultRetainBytes = std::size_t{8} << 20;  // 8 MiB

std::atomic<std::size_t> g_retain_bytes{kDefaultRetainBytes};

struct Scratch {
  std::vector<std::uint8_t> bytes;   // byte marks, +32 gather pad
  std::vector<std::uint32_t> words;  // bitmap words, +1 guard word
};

Scratch& scratch() noexcept {
  thread_local Scratch s;
  return s;
}

/// Cap-and-reallocate: drop the buffer when its capacity exceeds both the
/// request and the retain threshold, so a one-off huge-n call doesn't pin
/// its scratch for the life of the thread.
template <typename T>
void fit(std::vector<T>& buf, std::size_t need_elems, std::size_t retain_bytes) {
  if (buf.capacity() * sizeof(T) > std::max(need_elems * sizeof(T), retain_bytes)) {
    std::vector<T>().swap(buf);
  }
  if (buf.size() < need_elems) buf.assign(need_elems, T{0});
}

}  // namespace

std::uint8_t* mark_bytes(std::size_t n) {
  auto& s = scratch();
  fit(s.bytes, n + 32, g_retain_bytes.load(std::memory_order_relaxed));
  return s.bytes.data();
}

std::uint32_t* mark_bits(std::size_t nbits) {
  auto& s = scratch();
  fit(s.words, (nbits >> 5) + 2, g_retain_bytes.load(std::memory_order_relaxed));
  return s.words.data();
}

std::size_t thread_scratch_bytes() noexcept {
  const auto& s = scratch();
  return s.bytes.capacity() + s.words.capacity() * sizeof(std::uint32_t);
}

void release_thread_scratch() noexcept {
  auto& s = scratch();
  std::vector<std::uint8_t>().swap(s.bytes);
  std::vector<std::uint32_t>().swap(s.words);
}

void set_scratch_retain_bytes(std::size_t bytes) noexcept {
  g_retain_bytes.store(bytes, std::memory_order_relaxed);
}

std::size_t scratch_retain_bytes() noexcept {
  return g_retain_bytes.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Blocking knob and CSR width guard.
// ---------------------------------------------------------------------------

void set_block_bits(std::uint32_t bits) noexcept {
  g_block_bits.store(bits, std::memory_order_relaxed);
}

std::uint32_t block_bits() noexcept { return g_block_bits.load(std::memory_order_relaxed); }

void require_csr_offsets_fit(std::size_t m) {
  if (m >= static_cast<std::size_t>(UINT32_MAX)) {
    throw std::length_error("oriented CSR uses 32-bit offsets: graph has m = " +
                            std::to_string(m) +
                            " >= 4294967295 edges; widen OrientedCsr::offsets to go larger");
  }
}

}  // namespace tft::kernel
