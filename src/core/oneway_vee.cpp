#include "core/oneway_vee.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "comm/shared_randomness.h"
#include "util/bits.h"

namespace tft {

namespace {

/// Alice's / Bob's per-hub message: the first `budget` neighbors of `hub`
/// on the player's side, ordered by the shared permutation `tag`.
std::vector<Vertex> hub_neighbors(const PlayerInput& player, const SharedRandomness& sr,
                                  SharedTag tag, Vertex hub, std::uint64_t budget) {
  std::vector<Vertex> ns(player.local.neighbors(hub).begin(), player.local.neighbors(hub).end());
  const std::size_t take = std::min<std::size_t>(budget, ns.size());
  std::partial_sort(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(take), ns.end(),
                    [&](Vertex a, Vertex b) { return sr.precedes(tag, a, b); });
  ns.resize(take);
  return ns;
}

}  // namespace

OneWayResult oneway_vee_find_edge(std::span<const PlayerInput> players,
                                  const TripartiteLayout& layout, const OneWayOptions& opts) {
  if (players.size() != 3) throw std::invalid_argument("oneway_vee_find_edge: need 3 players");
  const auto& alice = players[0];
  const auto& bob = players[1];
  const auto& charlie = players[2];
  const std::uint64_t n = alice.n();
  const SharedRandomness sr(opts.seed);

  OneWayResult result;
  const std::uint32_t hubs = std::max<std::uint32_t>(1, opts.hubs);
  const std::uint64_t per_hub = std::max<std::uint64_t>(1, opts.budget_edges_per_player / hubs);

  for (std::uint32_t h = 0; h < hubs; ++h) {
    // The hub is a shared random vertex of U — no communication needed.
    const auto hub =
        static_cast<Vertex>(sr.uniform_vertex(SharedTag{0x0B, h, 0}, 0, layout.side));
    const SharedTag perm_tag{0x0C, h, 0};

    const auto a_side = hub_neighbors(alice, sr, perm_tag, hub, per_hub);
    const auto b_side = hub_neighbors(bob, sr, perm_tag, hub, per_hub);
    // Each transmitted neighbor costs one vertex id (the hub is shared).
    result.total_bits += count_bits(a_side.size()) + a_side.size() * vertex_bits(n);
    result.total_bits += count_bits(b_side.size()) + b_side.size() * vertex_bits(n);

    if (result.triangle_edge) continue;  // keep charging remaining hubs' messages

    // Charlie scans his input restricted to A x B. For each v1 in A his
    // sorted neighbor list is intersected with B.
    std::vector<Vertex> b_sorted = b_side;
    std::sort(b_sorted.begin(), b_sorted.end());
    for (const Vertex v1 : a_side) {
      if (!layout.in_v1(v1)) continue;
      for (const Vertex v2 : charlie.local.neighbors(v1)) {
        if (!layout.in_v2(v2)) continue;
        if (std::binary_search(b_sorted.begin(), b_sorted.end(), v2)) {
          result.triangle_edge = Edge(v1, v2);
          break;
        }
      }
      if (result.triangle_edge) break;
    }
  }
  return result;
}

}  // namespace tft
