#include "core/oneway_vee.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "comm/conformance.h"
#include "comm/shared_randomness.h"
#include "util/bits.h"

namespace tft {

namespace {

/// Alice's / Bob's per-hub message: the first `budget` neighbors of `hub`
/// on the player's side, ordered by the shared permutation `tag`.
std::vector<Vertex> hub_neighbors(const PlayerInput& player, const SharedRandomness& sr,
                                  SharedTag tag, Vertex hub, std::uint64_t budget) {
  std::vector<Vertex> ns(player.local.neighbors(hub).begin(), player.local.neighbors(hub).end());
  const std::size_t take = std::min<std::size_t>(budget, ns.size());
  std::partial_sort(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(take), ns.end(),
                    [&](Vertex a, Vertex b) { return sr.precedes(tag, a, b); });
  ns.resize(take);
  return ns;
}

}  // namespace

OneWayResult oneway_vee_find_edge(std::span<const PlayerInput> players,
                                  const TripartiteLayout& layout, const OneWayOptions& opts) {
  if (players.size() != 3) throw std::invalid_argument("oneway_vee_find_edge: need 3 players");
  const auto& alice = players[0];
  const auto& bob = players[1];
  const auto& charlie = players[2];
  const std::uint64_t n = alice.n();

  return run_checked(CommModel::kOneWay, players.size(), n, [&](Channel t) {
    const SharedRandomness sr(opts.seed);
    OneWayResult result;
    const std::uint32_t hubs = std::max<std::uint32_t>(1, opts.hubs);
    const std::uint64_t per_hub = std::max<std::uint64_t>(1, opts.budget_edges_per_player / hubs);

    // One-way order: Alice speaks first (her whole message, one part per
    // hub), then Bob — who has seen Alice's message — then Charlie, who
    // only outputs. The hubs are shared random vertices of U, so naming
    // them costs nothing.
    std::vector<std::vector<Vertex>> a_sides(hubs);
    std::vector<std::vector<Vertex>> b_sides(hubs);
    for (std::uint32_t h = 0; h < hubs; ++h) {
      const auto hub =
          static_cast<Vertex>(sr.uniform_vertex(SharedTag{0x0B, h, 0}, 0, layout.side));
      a_sides[h] = hub_neighbors(alice, sr, SharedTag{0x0C, h, 0}, hub, per_hub);
      // Each transmitted neighbor costs one vertex id (the hub is shared).
      t.charge(0, Direction::kPlayerToCoordinator,
               count_bits(a_sides[h].size()) + a_sides[h].size() * vertex_bits(n), h);
    }
    for (std::uint32_t h = 0; h < hubs; ++h) {
      const auto hub =
          static_cast<Vertex>(sr.uniform_vertex(SharedTag{0x0B, h, 0}, 0, layout.side));
      b_sides[h] = hub_neighbors(bob, sr, SharedTag{0x0C, h, 0}, hub, per_hub);
      t.charge(1, Direction::kPlayerToCoordinator,
               count_bits(b_sides[h].size()) + b_sides[h].size() * vertex_bits(n), h);
    }
    result.total_bits = t.total_bits();

    for (std::uint32_t h = 0; h < hubs && !result.triangle_edge; ++h) {
      // Charlie scans his input restricted to A x B. For each v1 in A his
      // sorted neighbor list is intersected with B.
      std::vector<Vertex> b_sorted = b_sides[h];
      std::sort(b_sorted.begin(), b_sorted.end());
      for (const Vertex v1 : a_sides[h]) {
        if (!layout.in_v1(v1)) continue;
        for (const Vertex v2 : charlie.local.neighbors(v1)) {
          if (!layout.in_v2(v2)) continue;
          if (std::binary_search(b_sorted.begin(), b_sorted.end(), v2)) {
            result.triangle_edge = Edge(v1, v2);
            break;
          }
        }
        if (result.triangle_edge) break;
      }
    }
    return result;
  });
}

}  // namespace tft
