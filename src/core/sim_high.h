#pragma once

#include <cstdint>
#include <span>

#include "core/sim_common.h"

/// \file sim_high.h
/// Algorithm 7 / 9 (FindTriangleSimHigh): the simultaneous protocol for
/// average degree d = Omega(sqrt(n)), communication Õ(k (nd)^{1/3}).
///
/// A shared uniformly random vertex set S of size Θ((n²/(eps d))^{1/3}) is
/// sampled; every player sends its edges inside S x S, capped so that the
/// worst case stays at the expected message size times O(1/delta)
/// (Theorem 3.24). The referee looks for a triangle in the union.

namespace tft {

struct SimHighOptions {
  double eps = 0.1;
  double delta = 0.1;
  double c = 3.0;  ///< sample-size constant ("sufficiently large c" in Alg 7)
  std::uint64_t seed = 1;
  /// The average degree the protocol is tuned for (Theorem 3.24 assumes d
  /// is known; the oblivious wrapper passes per-guess values).
  double average_degree = 0.0;
  /// Per-player edge cap. kPaperCap = the Theorem 3.24 formula;
  /// kUncapped = no cap (Algorithm 9, used inside the oblivious protocol);
  /// any other value = explicit cap (used by the min-budget harness).
  static constexpr std::uint64_t kPaperCap = ~std::uint64_t{0};
  static constexpr std::uint64_t kUncapped = 0;
  std::uint64_t cap_edges_per_player = kPaperCap;
};

/// The sample-set size |S| = c * (n^2 / (eps d))^{1/3}, clamped to [1, n].
[[nodiscard]] double sim_high_sample_size(std::uint64_t n, const SimHighOptions& opts);

/// Build player j's single message (player-local computation only).
[[nodiscard]] SimMessage sim_high_message(const PlayerInput& player, const SimHighOptions& opts);

/// Full run: all messages + referee decision.
[[nodiscard]] SimResult sim_high_find_triangle(std::span<const PlayerInput> players,
                                               const SimHighOptions& opts);

}  // namespace tft
