#include "core/sim_high.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/shared_randomness.h"

namespace tft {

namespace {
constexpr SharedTag kSetTag{0x51, 0x94, 0};  // the shared vertex sample S
}

double sim_high_sample_size(std::uint64_t n, const SimHighOptions& opts) {
  const double d = std::max(1.0, opts.average_degree);
  const double s = opts.c * std::cbrt(static_cast<double>(n) * static_cast<double>(n) /
                                      (opts.eps * d));
  return std::clamp(s, 1.0, static_cast<double>(n));
}

SimMessage sim_high_message(const PlayerInput& player, const SimHighOptions& opts) {
  const std::uint64_t n = player.n();
  const SharedRandomness sr(opts.seed);
  const double s = sim_high_sample_size(n, opts);
  const double p = s / static_cast<double>(n);

  SimMessage msg;
  msg.player_id = player.player_id;
  const auto in_sample = [&](Vertex v) { return sr.bernoulli(kSetTag, v, p); };
  for (const Edge& e : player.local.edges()) {
    if (in_sample(e.u) && in_sample(e.v)) msg.edges.push_back(e);
  }

  std::uint64_t cap = opts.cap_edges_per_player;
  if (cap == SimHighOptions::kPaperCap) {
    // l = (|S|^2 / n^2) * (4/delta) * nd   (Algorithm 7 step 2)
    const double d = std::max(1.0, opts.average_degree);
    const double l = (s * s / (static_cast<double>(n) * static_cast<double>(n))) *
                     (4.0 / opts.delta) * static_cast<double>(n) * d;
    cap = static_cast<std::uint64_t>(std::ceil(l)) + 1;
  }
  apply_cap(msg, static_cast<std::size_t>(cap));
  return msg;
}

SimResult sim_high_find_triangle(std::span<const PlayerInput> players,
                                 const SimHighOptions& opts) {
  if (players.empty()) throw std::invalid_argument("sim_high_find_triangle: no players");
  std::vector<SimMessage> messages;
  messages.reserve(players.size());
  for (const auto& p : players) messages.push_back(sim_high_message(p, opts));
  return finalize_simultaneous(players.front().n(), std::move(messages));
}

}  // namespace tft
