#pragma once

#include <cstdint>
#include <span>

#include "core/sim_common.h"

/// \file sim_low.h
/// Algorithm 8 / 10 (FindTriangleSimLow): the simultaneous protocol for
/// average degree d = O(sqrt(n)), communication Õ(k sqrt(n)).
///
/// Two shared samples: S with per-vertex probability p1 = min(c/d, 1)
/// (catches rare high-degree triangle sources) and R with p2 = c/sqrt(n)
/// (the birthday-paradox set). Players send every edge with one endpoint in
/// R and the other in R ∪ S, capped at q = 2c²(sqrt(n)+d) * 2/delta
/// (Theorem 3.26). The referee searches the union.

namespace tft {

struct SimLowOptions {
  double eps = 0.1;
  double delta = 0.1;
  double c = 3.0;  ///< the constant c of Algorithm 8 (paper: c = 8/(9 delta))
  std::uint64_t seed = 1;
  double average_degree = 0.0;  ///< the d the protocol is tuned for
  static constexpr std::uint64_t kPaperCap = ~std::uint64_t{0};
  static constexpr std::uint64_t kUncapped = 0;
  std::uint64_t cap_edges_per_player = kPaperCap;
  /// Tag override so the oblivious wrapper can share one R across instances
  /// while giving each degree guess its own S.
  std::uint64_t s_tag = 0x105;
  std::uint64_t r_tag = 0x10F;
};

/// Build player j's single message (player-local computation only).
[[nodiscard]] SimMessage sim_low_message(const PlayerInput& player, const SimLowOptions& opts);

/// CSR-free variant: the message from a raw edge slice (graph/chunked.h
/// EdgeSlice). The protocol only streams the player's edges and evaluates
/// shared coins per endpoint, so it never needs local adjacency — which is
/// what lets a chunked player at n = 1e8 hold O(m/k) bytes instead of the
/// O(n) CSR offsets a Graph would carry.
[[nodiscard]] SimMessage sim_low_message_edges(std::span<const Edge> edges,
                                               std::size_t player_id, std::uint64_t n,
                                               const SimLowOptions& opts);

/// Full run: all messages + referee decision.
[[nodiscard]] SimResult sim_low_find_triangle(std::span<const PlayerInput> players,
                                              const SimLowOptions& opts);

}  // namespace tft
