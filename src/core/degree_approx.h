#pragma once

#include <cstdint>
#include <span>

#include "comm/shared_randomness.h"
#include "comm/channel.h"
#include "graph/partition.h"

/// \file degree_approx.h
/// Theorem 3.1 / Lemma 3.2: constant-factor approximation of a vertex
/// degree when the edge set is scattered (with duplication) across k
/// players, plus the distinct-elements generalization used to estimate |E|.
///
/// With duplication an exact count is as hard as set disjointness, so the
/// protocol returns an estimate d_hat with (w.h.p.)
///     d(v) <= d_hat <= alpha * d(v)
/// i.e. the protocol only over-estimates, by at most the configured factor.
/// Two phases:
///   1. MSB round: each player sends the bit-length of its local count;
///      the coordinator forms d' = sum_j 2^{I_j + 1}, a 2k-over-estimate.
///   2. Geometric guess descent: guesses d'' = d', d'/s, d'/s^2, ... with
///      s = sqrt(alpha). Per guess, m shared-sampling experiments: include
///      each potential neighbor iid w.p. 1/d''; each player reports one bit
///      ("my input hits the sample"); the empirical hit rate crosses a fixed
///      threshold exactly when d'' has descended to ~d(v).

namespace tft {

struct DegreeApproxOptions {
  double alpha = 3.0;          ///< approximation factor (> 1.5 recommended)
  double tau = 0.05;           ///< failure probability target
  std::uint32_t min_experiments = 8;   ///< floor on experiments per guess
  double experiments_scale = 1.0;      ///< multiplier (theory presets use >> 1)
  bool no_duplication = false;  ///< use the cheap Lemma 3.2 path
};

struct DegreeApproxResult {
  /// The estimate; 0 iff the vertex is isolated in every input.
  double estimate = 0.0;
  /// Coarse phase-1 upper bound d' (>= true degree, <= 2k * true degree).
  double msb_upper = 0.0;
  /// Guesses examined (round count of phase 2).
  std::uint32_t guesses = 0;
};

/// Approximate deg(v) of the union graph. See file comment for guarantees.
[[nodiscard]] DegreeApproxResult approx_degree(std::span<const PlayerInput> players,
                                               Channel t, const SharedRandomness& sr,
                                               SharedTag tag, Vertex v,
                                               const DegreeApproxOptions& opts = {});

/// Lemma 3.2 (no duplication): each player ships its local count truncated
/// to its top bits; the sum under-estimates by < alpha. Cost
/// O(k log log d). Returns an estimate with d/alpha <= d_hat <= d.
[[nodiscard]] DegreeApproxResult approx_degree_no_duplication(
    std::span<const PlayerInput> players, Channel t, Vertex v, double alpha = 1.25);

/// Distinct-elements generalization (closing remark of Section 3.1):
/// approximates |E| = # distinct edges across all inputs, using the same
/// two-phase scheme over the edge universe. Same guarantee shape:
/// |E| <= m_hat <= alpha |E| w.h.p.
[[nodiscard]] DegreeApproxResult approx_distinct_edges(std::span<const PlayerInput> players,
                                                       Channel t, const SharedRandomness& sr,
                                                       SharedTag tag,
                                                       const DegreeApproxOptions& opts = {});

}  // namespace tft
