#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/sim_common.h"
#include "graph/partition.h"
#include "util/rng.h"

/// \file subgraph_freeness.h
/// Extension (paper Section 5, future work): "generalizing our techniques
/// for detecting a wider class of subgraphs".
///
/// The induced-subgraph sampling protocol (AlgHigh) is pattern-agnostic:
/// players send their edges inside a shared random vertex sample S and the
/// referee searches the union for ANY fixed pattern H, not just a triangle.
/// One-sidedness carries over verbatim (all received edges are real). The
/// sample size must grow with the pattern: a graph eps-far from H-freeness
/// contains Omega(eps m / |E(H)|) edge-disjoint copies of H, and a copy
/// survives into S with probability ~ (|S|/n)^{|V(H)|}, so
/// |S| = Theta(n (|V(H)|! / eps T)^{1/|V(H)|}) for T copies; we expose the
/// scale as an option and validate the shape empirically (bench_subgraph).
///
/// This module provides:
///   * small pattern graphs (clique, cycle, path, arbitrary),
///   * a backtracking (non-induced) subgraph-isomorphism search with a work
///     budget, used by referees on their small received unions,
///   * planted H-far generators,
///   * the simultaneous H-freeness tester.

namespace tft {

/// Small named patterns.
[[nodiscard]] Graph pattern_clique(Vertex size);
[[nodiscard]] Graph pattern_cycle(Vertex length);
[[nodiscard]] Graph pattern_path(Vertex vertices);

/// Find a (non-induced) copy of `pattern` in `host`: a vertex mapping
/// [0, pattern.n()) -> host vertices, injective, preserving pattern edges.
/// Degree-ordered backtracking with a step budget; nullopt means "none
/// found within the budget" (exhaustive when the budget is not hit;
/// max_steps = 0 means unlimited).
[[nodiscard]] std::optional<std::vector<Vertex>> find_subgraph(const Graph& host,
                                                               const Graph& pattern,
                                                               std::uint64_t max_steps = 0);

[[nodiscard]] bool contains_subgraph(const Graph& host, const Graph& pattern,
                                     std::uint64_t max_steps = 0);

/// t vertex-disjoint copies of `pattern` planted on the first
/// t * pattern.n() vertices, plus a triangle-free noise matching on the
/// rest. eps-far from H-freeness with eps ~ t / |E|.
[[nodiscard]] Graph planted_copies(Vertex n, const Graph& pattern, std::uint32_t t, Rng& rng);

struct SimSubgraphOptions {
  double eps = 0.1;
  double c = 3.0;          ///< sample-size scale
  std::uint64_t seed = 1;
  double average_degree = 1.0;
  std::uint64_t cap_edges_per_player = 0;  ///< 0 = uncapped
  std::uint64_t search_budget = 50'000'000;  ///< referee search step cap
};

struct SimSubgraphResult {
  /// Host vertices of a certified copy (indexed by pattern vertex).
  std::optional<std::vector<Vertex>> witness;
  std::uint64_t total_bits = 0;
  std::size_t edges_received = 0;
};

/// The sample-set size used for the given pattern.
[[nodiscard]] double subgraph_sample_size(std::uint64_t n, Vertex pattern_vertices,
                                          const SimSubgraphOptions& opts);

/// Simultaneous H-freeness test: one message per player, referee searches
/// the union of received edges for `pattern`. One-sided.
[[nodiscard]] SimSubgraphResult sim_subgraph_find(std::span<const PlayerInput> players,
                                                  const Graph& pattern,
                                                  const SimSubgraphOptions& opts);

}  // namespace tft
