#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/partition.h"

/// \file oneway_vee.h
/// The one-way 3-player triangle-edge finder for the tripartite hard
/// distribution mu (Section 4.2.2), matching the Omega(n^{1/4}) lower bound
/// of Theorem 4.7 up to logarithmic factors.
///
/// Model: Alice holds the U x V1 edges, Bob the U x V2 edges, Charlie the
/// V1 x V2 edges; Alice and Bob send messages, Charlie outputs an edge of
/// his input that participates in a triangle.
///
/// Protocol (the "quadratic advantage" the lower-bound proof bounds):
/// shared randomness fixes a few hub vertices u in U. For each hub, Alice
/// sends her first b neighbors of u in V1 under a shared permutation and
/// Bob his first b neighbors in V2. That covers b^2 pairs of V1 x V2 per
/// hub; on mu each covered pair is an edge of Charlie's input independently
/// with probability gamma/sqrt(side), so b = Theta(n^{1/4}) makes some
/// covered pair land in E3 with constant probability — and Charlie, who sees
/// the transcript, outputs it. One-sided: the output edge is covered by a
/// real vee (Alice/Bob sent only real edges), so it is a triangle edge with
/// certainty whenever it is in E3.

namespace tft {

/// Vertex layout of the tripartite instance (matches gen::tripartite_mu).
struct TripartiteLayout {
  Vertex side = 0;
  [[nodiscard]] bool in_u(Vertex v) const noexcept { return v < side; }
  [[nodiscard]] bool in_v1(Vertex v) const noexcept { return v >= side && v < 2 * side; }
  [[nodiscard]] bool in_v2(Vertex v) const noexcept { return v >= 2 * side && v < 3 * side; }
};

struct OneWayOptions {
  std::uint64_t seed = 1;
  /// Per-player edge budget (Alice and Bob each send at most this many
  /// vertex ids). The knob the min-budget harness sweeps.
  std::uint64_t budget_edges_per_player = 64;
  /// Number of shared hub vertices; the per-hub budget is budget / hubs.
  std::uint32_t hubs = 4;
};

struct OneWayResult {
  /// An edge of Charlie's input certified (by the transcript) to close a
  /// triangle with some hub. nullopt if no covered pair hit E3.
  std::optional<Edge> triangle_edge;
  std::uint64_t total_bits = 0;  ///< Alice + Bob message bits
};

/// Run the protocol. `players` must be the canonical 3-player tripartite
/// partition: player 0 = Alice (U x V1), player 1 = Bob (U x V2),
/// player 2 = Charlie (V1 x V2).
[[nodiscard]] OneWayResult oneway_vee_find_edge(std::span<const PlayerInput> players,
                                                const TripartiteLayout& layout,
                                                const OneWayOptions& opts);

}  // namespace tft
