#include "core/exact_baseline.h"

#include <stdexcept>
#include <vector>

#include "comm/conformance.h"
#include "graph/triangles.h"
#include "util/bits.h"

namespace tft {

ExactResult exact_find_triangle(std::span<const PlayerInput> players) {
  if (players.empty()) throw std::invalid_argument("exact_find_triangle: no players");
  // Structurally a simultaneous protocol: each player ships its whole input
  // in one message, nothing flows back.
  return run_checked(CommModel::kSimultaneous, players.size(), players.front().n(),
                     [&](Channel t) {
                       ExactResult r;
                       std::vector<Edge> all;
                       for (const auto& p : players) {
                         const auto m = p.local.num_edges();
                         const std::uint64_t bits = count_bits(m) + m * edge_bits(p.n());
                         t.charge(p.player_id, Direction::kPlayerToCoordinator, bits);
                         r.total_bits += bits;
                         all.insert(all.end(), p.local.edges().begin(), p.local.edges().end());
                       }
                       const Graph g(players.front().n(), std::move(all));
                       r.triangle = find_triangle(g);
                       return r;
                     });
}

}  // namespace tft
