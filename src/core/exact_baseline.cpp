#include "core/exact_baseline.h"

#include <stdexcept>
#include <vector>

#include "graph/triangles.h"
#include "util/bits.h"

namespace tft {

ExactResult exact_find_triangle(std::span<const PlayerInput> players) {
  if (players.empty()) throw std::invalid_argument("exact_find_triangle: no players");
  ExactResult r;
  std::vector<Edge> all;
  for (const auto& p : players) {
    const auto m = p.local.num_edges();
    r.total_bits += count_bits(m) + m * edge_bits(p.n());
    all.insert(all.end(), p.local.edges().begin(), p.local.edges().end());
  }
  const Graph g(players.front().n(), std::move(all));
  r.triangle = find_triangle(g);
  return r;
}

}  // namespace tft
