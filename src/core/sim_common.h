#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"

/// \file sim_common.h
/// Shared machinery for simultaneous (one-round) protocols: each player
/// emits exactly one message — a list of edges — and the referee outputs a
/// triangle found in the union of the received edges.
///
/// All simultaneous protocols in Section 3.4 have this form; they differ
/// only in *which* edges a player selects and in the per-player caps.

namespace tft {

/// The single message a player sends to the referee.
struct SimMessage {
  std::size_t player_id = 0;
  std::vector<Edge> edges;
  bool truncated = false;  ///< the cap forced this player to drop edges

  /// Idealized bit cost of this message (the Transcript convention): a
  /// length header plus 2 ceil(log n) per edge.
  [[nodiscard]] std::uint64_t bits(std::uint64_t n) const noexcept;

  /// Size of the actual wire encoding (comm/wire.h delta coding). For the
  /// dense messages real protocols send (m^2 >~ n) this is <= bits(n), so
  /// the idealized accounting the paper's theorems are stated in does not
  /// understate a real implementation; sparse lists with spread-out
  /// endpoints can pay up to ~2 log(n)/m extra bits per edge in gamma
  /// deltas.
  [[nodiscard]] std::uint64_t encoded_bits(std::uint64_t n) const;
};

/// Outcome of a simultaneous run.
struct SimResult {
  std::optional<Triangle> triangle;
  std::uint64_t total_bits = 0;
  std::vector<std::uint64_t> per_player_bits;
  std::size_t edges_received = 0;  ///< distinct edges at the referee
  bool any_truncated = false;
};

/// Referee step: union the messages and search for a triangle. One-sided:
/// all received edges are real input edges, so any triangle found is real.
[[nodiscard]] std::optional<Triangle> referee_find_triangle(Vertex n,
                                                            std::span<const SimMessage> messages);

/// Assemble a SimResult (bit totals + referee decision) from messages.
[[nodiscard]] SimResult finalize_simultaneous(Vertex n, std::vector<SimMessage> messages);

/// finalize_simultaneous for huge sparse universes (the chunked n >= 1e8
/// sweeps): identical bit accounting and verdict, but the referee's union
/// graph is built over the compacted set of endpoints that actually appear
/// in the messages instead of [0, n) — a Graph's CSR offsets alone cost
/// 4 bytes/vertex, which at n = 1e8 would dwarf the O(m/k) player slices.
/// The monotone endpoint relabelling preserves sorted edge order, degrees
/// and adjacency, so the triangle found (mapped back to original vertex
/// ids) is the same one the dense referee reports; equality is locked in by
/// tests/test_sim_protocols.cpp.
[[nodiscard]] SimResult finalize_simultaneous_compact(Vertex n,
                                                      std::vector<SimMessage> messages);

/// Truncate msg.edges to `cap` edges if cap != 0, recording truncation.
void apply_cap(SimMessage& msg, std::size_t cap);

}  // namespace tft
