#pragma once

#include <cstdint>

#include "graph/graph.h"

/// \file buckets.h
/// Degree bucketing (Section 3.2 "Input analysis").
///
/// Vertices are partitioned into buckets by degree powers of 3:
///   B_0 = isolated vertices, and for i >= 1,
///   B_i = { v : 3^{i-1} <= deg(v) < 3^i }.
/// d-(B_i) = 3^{i-1} and d+(B_i) = 3^i are the degree bounds.
///
/// Because edges are split across k players, no player knows deg(v); player
/// j can only "reasonably suspect" v is in B_i when its local degree lies in
/// [d-(B_i)/k, d+(B_i)) — if v in B_i, some player sees >= deg(v)/k >=
/// d-(B_i)/k of its edges, and every player sees < d+(B_i). (The paper's
/// Section 3.3 states the window as [3^i/k, 3^{i+1}]; we use the bound that
/// actually follows from the pigeonhole argument. The slack only shifts the
/// neighborhood radius by a constant number of buckets.)
///
/// Full vertices / full buckets (Definitions 4-5) are implemented in tests
/// and the input-analysis helpers below; protocols never need them — they
/// only iterate buckets and sample.

namespace tft {

/// Index of the bucket containing degree `deg` (0 for isolated vertices).
[[nodiscard]] constexpr std::uint32_t bucket_of_degree(std::uint64_t deg) noexcept {
  if (deg == 0) return 0;
  std::uint32_t i = 1;
  std::uint64_t upper = 3;  // d+(B_1)
  while (deg >= upper) {
    ++i;
    upper *= 3;
  }
  return i;
}

/// d-(B_i): minimal degree in bucket i (0 for the singleton bucket).
[[nodiscard]] constexpr std::uint64_t bucket_min_degree(std::uint32_t i) noexcept {
  if (i == 0) return 0;
  std::uint64_t v = 1;
  for (std::uint32_t j = 1; j < i; ++j) v *= 3;
  return v;
}

/// d+(B_i): exclusive upper degree bound of bucket i.
[[nodiscard]] constexpr std::uint64_t bucket_max_degree(std::uint32_t i) noexcept {
  return i == 0 ? 1 : 3 * bucket_min_degree(i);
}

/// Number of buckets needed for degrees < n (indices 0..num-1).
[[nodiscard]] constexpr std::uint32_t num_buckets(std::uint64_t n) noexcept {
  return bucket_of_degree(n == 0 ? 0 : n - 1) + 1;
}

/// Player-side membership test for B~_i^j given the player's local degree.
[[nodiscard]] constexpr bool in_btilde(std::uint64_t local_degree, std::uint32_t bucket,
                                       std::uint64_t k) noexcept {
  if (bucket == 0) return false;  // isolated vertices never matter
  const std::uint64_t lo = bucket_min_degree(bucket);
  const std::uint64_t hi = bucket_max_degree(bucket);
  // ceil(lo / k) keeps the guarantee deg(v) >= lo => some player passes.
  const std::uint64_t lo_local = (lo + k - 1) / k;
  return local_degree >= lo_local && local_degree < hi;
}

/// --- Input-analysis quantities (used by tests of Section 3.2 lemmas) ---

/// Fraction threshold from Definition 5: a vertex is "full" when at least an
/// eps / (12 log n)-fraction of its adjacent edges form disjoint
/// triangle-vees. `disjoint_vees` is the vee count (each vee = 2 edges).
[[nodiscard]] bool is_full_vertex(std::uint64_t degree, std::uint64_t disjoint_vees, double eps,
                                  std::uint64_t n) noexcept;

/// Definition 7 thresholds.
[[nodiscard]] double degree_threshold_high(std::uint64_t n, double d, double eps) noexcept;
/// Definition 8.
[[nodiscard]] double degree_threshold_low(std::uint64_t n, double d, double eps) noexcept;

}  // namespace tft
