#include "core/sim_common.h"

#include <algorithm>

#include "comm/conformance.h"
#include "comm/wire.h"
#include "graph/triangles.h"
#include "util/bits.h"

namespace tft {

std::uint64_t SimMessage::bits(std::uint64_t n) const noexcept {
  return count_bits(edges.size()) + edges.size() * edge_bits(n);
}

std::uint64_t SimMessage::encoded_bits(std::uint64_t n) const {
  return encoded_edge_list_bits(static_cast<Vertex>(n), edges);
}

std::optional<Triangle> referee_find_triangle(Vertex n, std::span<const SimMessage> messages) {
  std::size_t total_edges = 0;
  for (const auto& m : messages) total_edges += m.edges.size();
  std::vector<Edge> all;
  all.reserve(total_edges);
  for (const auto& m : messages) all.insert(all.end(), m.edges.begin(), m.edges.end());
  const Graph g(n, std::move(all));
  return find_triangle(g);
}

SimResult finalize_simultaneous(Vertex n, std::vector<SimMessage> messages) {
  return run_checked(CommModel::kSimultaneous, messages.size(), n, [&](Channel t) {
    SimResult r;
    r.per_player_bits.resize(messages.size(), 0);
    std::size_t total_edges = 0;
    for (const auto& m : messages) total_edges += m.edges.size();
    std::vector<Edge> all;
    all.reserve(total_edges);
    for (const auto& m : messages) {
      const std::uint64_t b = m.bits(n);
      t.charge(m.player_id, Direction::kPlayerToCoordinator, b);
      r.per_player_bits[m.player_id] = b;
      r.total_bits += b;
      r.any_truncated = r.any_truncated || m.truncated;
      all.insert(all.end(), m.edges.begin(), m.edges.end());
    }
    const Graph g(n, std::move(all));
    r.edges_received = g.num_edges();
    r.triangle = find_triangle(g);
    return r;
  });
}

SimResult finalize_simultaneous_compact(Vertex n, std::vector<SimMessage> messages) {
  return run_checked(CommModel::kSimultaneous, messages.size(), n, [&](Channel t) {
    SimResult r;
    r.per_player_bits.resize(messages.size(), 0);
    std::size_t total_edges = 0;
    for (const auto& m : messages) total_edges += m.edges.size();
    std::vector<Edge> all;
    all.reserve(total_edges);
    for (const auto& m : messages) {
      // Bits are charged against the true universe size n (an edge costs
      // 2 ceil(log n) on the wire no matter how the referee stores it).
      const std::uint64_t b = m.bits(n);
      t.charge(m.player_id, Direction::kPlayerToCoordinator, b);
      r.per_player_bits[m.player_id] = b;
      r.total_bits += b;
      r.any_truncated = r.any_truncated || m.truncated;
      all.insert(all.end(), m.edges.begin(), m.edges.end());
    }
    // Compact: relabel endpoints onto [0, |endpoints|). The map is
    // monotone, so edge normalization (u < v) and sort order survive.
    std::vector<Vertex> verts;
    verts.reserve(all.size() * 2);
    for (const Edge& e : all) {
      verts.push_back(e.u);
      verts.push_back(e.v);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    const auto compact = [&](Vertex v) {
      return static_cast<Vertex>(std::lower_bound(verts.begin(), verts.end(), v) -
                                 verts.begin());
    };
    for (Edge& e : all) e = Edge(compact(e.u), compact(e.v));
    const Graph g(static_cast<Vertex>(std::max<std::size_t>(verts.size(), 1)), std::move(all));
    r.edges_received = g.num_edges();
    if (const auto t3 = find_triangle(g)) {
      r.triangle = Triangle(verts[t3->a], verts[t3->b], verts[t3->c]);
    }
    return r;
  });
}

void apply_cap(SimMessage& msg, std::size_t cap) {
  if (cap != 0 && msg.edges.size() > cap) {
    msg.edges.resize(cap);
    msg.truncated = true;
  }
}

}  // namespace tft
