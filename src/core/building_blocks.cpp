#include "core/building_blocks.h"

#include <algorithm>

#include "core/buckets.h"

namespace tft {

namespace {

constexpr auto kUp = Direction::kPlayerToCoordinator;
constexpr auto kDown = Direction::kCoordinatorToPlayer;

}  // namespace

bool query_edge(std::span<const PlayerInput> players, Channel t, const Edge& e) {
  bool present = false;
  for (const auto& p : players) {
    t.charge_flag(p.player_id, kUp, phase::kEdgeQuery);
    present = present || p.local.has_edge(e);
  }
  // The coordinator announces the answer to everyone (private channels).
  for (const auto& p : players) t.charge_flag(p.player_id, kDown, phase::kEdgeQuery);
  return present;
}

std::optional<Vertex> sample_uniform_btilde(std::span<const PlayerInput> players, Channel t,
                                            const SharedRandomness& sr, SharedTag tag,
                                            std::uint32_t bucket) {
  std::optional<Vertex> best;
  for (const auto& p : players) {
    // Player-local scan for the first accepted vertex under the shared
    // permutation. One flag bit + optionally one vertex id upstream.
    std::optional<Vertex> local_best;
    for (Vertex v = 0; v < p.n(); ++v) {
      if (!in_btilde(p.local_degree(v), bucket, p.k)) continue;
      if (!local_best || sr.precedes(tag, v, *local_best)) local_best = v;
    }
    t.charge_flag(p.player_id, kUp, phase::kSampleVertex);
    if (local_best) {
      t.charge_vertex(p.player_id, kUp, phase::kSampleVertex);
      if (!best || sr.precedes(tag, *local_best, *best)) best = *local_best;
    }
  }
  return best;
}

std::optional<Vertex> sample_uniform_where(std::span<const PlayerInput> players, Channel t,
                                           const SharedRandomness& sr, SharedTag tag,
                                           bool (*accept)(const PlayerInput&, Vertex)) {
  std::optional<Vertex> best;
  for (const auto& p : players) {
    std::optional<Vertex> local_best;
    for (Vertex v = 0; v < p.n(); ++v) {
      if (!accept(p, v)) continue;
      if (!local_best || sr.precedes(tag, v, *local_best)) local_best = v;
    }
    t.charge_flag(p.player_id, kUp, phase::kSampleVertex);
    if (local_best) {
      t.charge_vertex(p.player_id, kUp, phase::kSampleVertex);
      if (!best || sr.precedes(tag, *local_best, *best)) best = *local_best;
    }
  }
  return best;
}

std::optional<Edge> random_incident_edge(std::span<const PlayerInput> players, Channel t,
                                         const SharedRandomness& sr, SharedTag tag, Vertex v) {
  // Shared permutation over the n-1 potential endpoints; each player reports
  // its first incident edge under it. The permutation makes the choice
  // uniform over distinct edges regardless of duplication (Section 3.1).
  std::optional<Vertex> best;
  for (const auto& p : players) {
    std::optional<Vertex> local_best;
    for (const Vertex w : p.local.neighbors(v)) {
      if (!local_best || sr.precedes(tag, w, *local_best)) local_best = w;
    }
    t.charge_flag(p.player_id, kUp, phase::kIncidentEdge);
    if (local_best) {
      t.charge_vertex(p.player_id, kUp, phase::kIncidentEdge);
      if (!best || sr.precedes(tag, *local_best, *best)) best = *local_best;
    }
  }
  if (!best) return std::nullopt;
  // Coordinator posts the winner to all players.
  for (const auto& p : players) t.charge_vertex(p.player_id, kDown, phase::kIncidentEdge);
  return Edge(v, *best);
}

std::optional<Edge> random_edge(std::span<const PlayerInput> players, Channel t,
                                const SharedRandomness& sr, SharedTag tag) {
  std::optional<Edge> best;
  const auto edge_priority = [&](const Edge& e) { return sr.value(tag, e.key()); };
  for (const auto& p : players) {
    std::optional<Edge> local_best;
    for (const Edge& e : p.local.edges()) {
      if (!local_best || edge_priority(e) < edge_priority(*local_best)) local_best = e;
    }
    t.charge_flag(p.player_id, kUp, phase::kRandomEdge);
    if (local_best) {
      t.charge_edges(p.player_id, kUp, 1, phase::kRandomEdge);
      if (!best || edge_priority(*local_best) < edge_priority(*best)) best = *local_best;
    }
  }
  if (!best) return std::nullopt;
  for (const auto& p : players) t.charge_edges(p.player_id, kDown, 1, phase::kRandomEdge);
  return best;
}

std::vector<Vertex> random_walk(std::span<const PlayerInput> players, Channel t,
                                const SharedRandomness& sr, SharedTag tag, Vertex start,
                                std::uint32_t steps) {
  std::vector<Vertex> path{start};
  Vertex cur = start;
  for (std::uint32_t s = 0; s < steps; ++s) {
    SharedTag step_tag = tag;
    step_tag.c = mix_hash(step_tag.c, s + 1);
    const auto e = random_incident_edge(players, t, sr, step_tag, cur);
    if (!e) break;  // dead end
    cur = (e->u == cur) ? e->v : e->u;
    path.push_back(cur);
  }
  return path;
}

std::vector<Edge> collect_induced_subgraph(std::span<const PlayerInput> players, Channel t,
                                           std::span<const Vertex> sorted_s,
                                           std::size_t cap_per_player) {
  std::vector<Edge> collected;
  const auto in_s = [&](Vertex v) {
    return std::binary_search(sorted_s.begin(), sorted_s.end(), v);
  };
  for (const auto& p : players) {
    std::size_t sent = 0;
    for (const Edge& e : p.local.edges()) {
      if (!in_s(e.u) || !in_s(e.v)) continue;
      if (cap_per_player != 0 && sent >= cap_per_player) break;
      collected.push_back(e);
      ++sent;
    }
    t.charge_count(p.player_id, kUp, sent, phase::kInducedSubgraph);
    t.charge_edges(p.player_id, kUp, sent, phase::kInducedSubgraph);
  }
  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()), collected.end());
  return collected;
}

std::vector<Vertex> collect_sampled_neighbors(std::span<const PlayerInput> players, Channel t,
                                              const SharedRandomness& sr, SharedTag tag, Vertex v,
                                              double p, std::size_t cap) {
  std::vector<Vertex> collected;
  for (const auto& pl : players) {
    std::size_t sent = 0;
    for (const Vertex w : pl.local.neighbors(v)) {
      if (!sr.bernoulli(tag, w, p)) continue;
      if (cap != 0 && sent >= cap) break;
      collected.push_back(w);
      ++sent;
    }
    t.charge_count(pl.player_id, kUp, sent, phase::kVeeSample);
    // Sending {v} x S edges: v is implicit from the round, so each edge
    // costs one vertex id.
    t.charge(pl.player_id, kUp, sent * vertex_bits(pl.n()), phase::kVeeSample);
  }
  std::sort(collected.begin(), collected.end());
  collected.erase(std::unique(collected.begin(), collected.end()), collected.end());
  return collected;
}

namespace {

/// Collect the union of all players' neighbor lists of v, charging each
/// player its posting cost.
std::vector<Vertex> post_neighbors(std::span<const PlayerInput> players, Channel t,
                                   Vertex v) {
  std::vector<Vertex> all;
  for (const auto& p : players) {
    const auto ns = p.local.neighbors(v);
    t.charge_count(p.player_id, kUp, ns.size(), phase::kBfs);
    t.charge(p.player_id, kUp, ns.size() * vertex_bits(p.n()), phase::kBfs);
    all.insert(all.end(), ns.begin(), ns.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace

BfsResult distributed_bfs(std::span<const PlayerInput> players, Channel t, Vertex source,
                          std::size_t max_visits) {
  const Vertex n = players.front().n();
  BfsResult r;
  r.depth.assign(n, UINT32_MAX);
  r.parent.assign(n, source);
  r.depth[source] = 0;
  r.order.push_back(source);
  std::size_t head = 0;
  while (head < r.order.size()) {
    if (max_visits != 0 && r.order.size() >= max_visits) break;
    const Vertex v = r.order[head++];
    // The coordinator announces the examined vertex to everyone.
    for (const auto& p : players) t.charge_vertex(p.player_id, kDown, phase::kBfs);
    for (const Vertex w : post_neighbors(players, t, v)) {
      if (r.depth[w] != UINT32_MAX) continue;
      r.depth[w] = r.depth[v] + 1;
      r.parent[w] = v;
      r.order.push_back(w);
      if (max_visits != 0 && r.order.size() >= max_visits) break;
    }
  }
  return r;
}

std::optional<std::vector<Vertex>> distributed_odd_cycle(std::span<const PlayerInput> players,
                                                         Channel t, Vertex source) {
  const Vertex n = players.front().n();
  std::vector<std::uint32_t> depth(n, UINT32_MAX);
  std::vector<Vertex> parent(n, source);
  std::vector<Vertex> queue{source};
  depth[source] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const Vertex v = queue[head++];
    for (const auto& p : players) t.charge_vertex(p.player_id, kDown, phase::kBfs);
    for (const Vertex w : post_neighbors(players, t, v)) {
      if (depth[w] == UINT32_MAX) {
        depth[w] = depth[v] + 1;
        parent[w] = v;
        queue.push_back(w);
      } else if (depth[w] == depth[v]) {
        // Same-level edge: odd cycle through the lowest common ancestor.
        std::vector<Vertex> left{v};
        std::vector<Vertex> right{w};
        Vertex a = v;
        Vertex b = w;
        while (a != b) {
          a = parent[a];
          b = parent[b];
          left.push_back(a);
          right.push_back(b);
        }
        // left ends at the LCA; stitch: v .. lca .. w (reversed), excluding
        // the duplicated LCA on the right.
        std::vector<Vertex> cycle(left.begin(), left.end());
        for (auto it = right.rbegin() + 1; it != right.rend(); ++it) cycle.push_back(*it);
        return cycle;
      }
    }
  }
  return std::nullopt;
}

std::optional<Triangle> close_vee_round(std::span<const PlayerInput> players, Channel t,
                                        Vertex source, std::span<const Vertex> candidates) {
  // Coordinator posts the candidate set to every player.
  for (const auto& p : players) {
    t.charge(p.player_id, kDown, candidates.size() * vertex_bits(p.n()), phase::kCloseVee);
  }
  std::optional<Triangle> found;
  for (const auto& p : players) {
    t.charge_flag(p.player_id, kUp, phase::kCloseVee);
    if (found) continue;  // coordinator already satisfied; others answer "no"
    for (std::size_t i = 0; i < candidates.size() && !found; ++i) {
      const Vertex x = candidates[i];
      // Scan the smaller side: x's local neighbors intersected with the
      // candidate set.
      for (const Vertex y : p.local.neighbors(x)) {
        if (y == source) continue;
        if (!std::binary_search(candidates.begin(), candidates.end(), y)) continue;
        found = Triangle(source, x, y);
        t.charge_edges(p.player_id, kUp, 1, phase::kCloseVee);
        break;
      }
    }
  }
  return found;
}

}  // namespace tft
