#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "comm/transcript.h"
#include "graph/partition.h"

/// \file unrestricted.h
/// Section 3.3: the unrestricted-communication triangle finder
/// (Algorithms 1-6), with communication Õ(k (nd)^{1/4} + k²).
///
/// Strategy: iterate degree buckets from d_l up to d_h = sqrt(nd/eps); for
/// each bucket, sample Θ̃(k) candidate vertices uniformly from B~_i via a
/// shared random permutation (Algorithm 1), filter them by an approximate
/// degree check (Theorem 3.1), then for each surviving candidate sample its
/// incident edges with probability ~ sqrt(log n / (eps d)) — if the
/// candidate is a "full" vertex this exposes a triangle-vee w.h.p.
/// (Lemma 3.9, extended birthday paradox) — and let every player try to
/// close a vee from its own input. One-sided: any returned triangle is
/// assembled entirely from real input edges.

namespace tft {

/// All tunable constants of the Section 3 protocols. `theory()` uses the
/// paper's proof constants (correct for any input, infeasibly large for
/// benchmarking); `practical()` keeps every formula's *shape* but with small
/// leading constants (the factual default; validated empirically by the
/// test suite).
struct ProtocolConstants {
  double eps = 0.1;    ///< farness parameter
  double delta = 0.1;  ///< target error probability
  double alpha = 3.0;  ///< degree-approximation factor

  double q_scale = 1.0;            ///< multiplier on samples-per-bucket q
  double cand_scale = 1.0;         ///< multiplier on the candidate cap
  double edge_sample_scale = 1.0;  ///< multiplier on the edge-sample prob.
  double approx_scale = 1.0;       ///< multiplier on degree-approx experiments

  [[nodiscard]] static ProtocolConstants practical(double eps = 0.1, double delta = 0.1);
  [[nodiscard]] static ProtocolConstants theory(double eps = 0.1, double delta = 0.1);

  /// Samples per bucket: Θ(k log n) practical, ln(6/δ)·108·log²n·k/ε² theory.
  [[nodiscard]] std::uint64_t samples_per_bucket(std::uint64_t n, std::uint64_t k) const;
  /// Candidate cap per bucket: Θ(log n) practical, ln(6/δ)·312·log²n/ε² theory.
  [[nodiscard]] std::uint64_t candidate_cap(std::uint64_t n) const;
  /// Edge-sampling probability for a candidate of (under-)estimated degree d.
  [[nodiscard]] double edge_sample_probability(std::uint64_t n, double degree_low) const;

 private:
  bool theory_preset_ = false;
};

struct UnrestrictedOptions {
  ProtocolConstants consts{};
  std::uint64_t seed = 1;
  /// If >= 1, skip the distinct-edges estimation round and use this value
  /// as the exact average degree (the "d known in advance" variant).
  double known_average_degree = 0.0;
  /// No-duplication promise: use the cheap Lemma 3.2 degree approximation.
  bool no_duplication = false;
  /// Blackboard model (Theorem 3.23): broadcasts are charged once, posted
  /// edges are deduplicated across players — saves a factor of k.
  bool blackboard = false;
  /// Ablation switch: false = replace bucket sampling by naive uniform
  /// vertex sampling (demonstrably fails on hub-concentrated inputs).
  bool use_bucketing = true;
};

struct UnrestrictedResult {
  std::optional<Triangle> triangle;  ///< verified triangle of the union graph
  std::uint64_t total_bits = 0;
  std::uint32_t buckets_tried = 0;
  std::uint32_t candidates_examined = 0;
  std::uint32_t vee_rounds = 0;
  double degree_estimate = 0.0;  ///< the d the protocol worked with
  /// Bits spent shipping/closing sampled incident edges — the k (nd)^{1/4}
  /// term of Theorem 3.20.
  std::uint64_t edge_sampling_bits = 0;
  /// Everything else (degree estimation, bucket sampling, degree approx) —
  /// the k^2 polylog term.
  std::uint64_t overhead_bits = 0;
};

/// Run Algorithm 6 (FindTriangle). Requires a non-empty player vector over a
/// common vertex set. Never returns a triangle absent from the union graph.
[[nodiscard]] UnrestrictedResult find_triangle_unrestricted(std::span<const PlayerInput> players,
                                                            const UnrestrictedOptions& opts);

}  // namespace tft
