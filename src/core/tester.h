#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "graph/partition.h"

/// \file tester.h
/// Top-level public API: one façade over every protocol in the library.
///
/// Usage:
///   auto players = tft::partition_random(graph, k, rng);
///   tft::TesterOptions opts;
///   opts.protocol = tft::ProtocolKind::kSimOblivious;
///   auto report = tft::test_triangle_freeness(players, opts);
///   if (report.triangle) ...   // certified triangle of the union graph
///
/// All protocols are one-sided: a returned triangle is always real, and on a
/// triangle-free input the verdict is always "consistent with triangle-free".
/// On inputs that are eps-far from triangle-free, a triangle is found with
/// probability >= 1 - delta (for the theory constants; the practical
/// constants achieve this empirically across the test-suite workloads).

namespace tft {

enum class ProtocolKind {
  kUnrestricted,   ///< Section 3.3, Õ(k (nd)^{1/4} + k²) bits
  kSimLow,         ///< Section 3.4.2, Õ(k sqrt(n)) bits, d = O(sqrt n)
  kSimHigh,        ///< Section 3.4.1, Õ(k (nd)^{1/3}) bits, d = Omega(sqrt n)
  kSimOblivious,   ///< Section 3.4.3, no advance knowledge of d
  kExact,          ///< full-exchange baseline (zero error, Theta(k m log n))
};

[[nodiscard]] constexpr const char* to_string(ProtocolKind p) noexcept {
  switch (p) {
    case ProtocolKind::kUnrestricted: return "unrestricted";
    case ProtocolKind::kSimLow: return "sim-low";
    case ProtocolKind::kSimHigh: return "sim-high";
    case ProtocolKind::kSimOblivious: return "sim-oblivious";
    case ProtocolKind::kExact: return "exact";
  }
  assert(!"to_string(ProtocolKind): value outside the enum");
  return "?";
}

struct TesterOptions {
  ProtocolKind protocol = ProtocolKind::kSimOblivious;
  double eps = 0.1;
  double delta = 0.1;
  std::uint64_t seed = 1;
  /// Average degree if known (required by kSimLow / kSimHigh; optional for
  /// kUnrestricted; ignored by kSimOblivious / kExact).
  double known_average_degree = 0.0;
  /// No-duplication promise (enables the cheaper code paths).
  bool no_duplication = false;
};

struct TestReport {
  /// A certified triangle of the union graph, if one was found.
  std::optional<Triangle> triangle;
  /// Total communication in bits.
  std::uint64_t bits = 0;
  ProtocolKind protocol = ProtocolKind::kSimOblivious;
  /// Convenience verdict: triangle found => the graph is NOT triangle-free
  /// (with certainty); not found => consistent with triangle-free.
  [[nodiscard]] bool rejects_triangle_freeness() const noexcept { return triangle.has_value(); }
};

/// Run the selected protocol on the players' inputs.
[[nodiscard]] TestReport test_triangle_freeness(std::span<const PlayerInput> players,
                                                const TesterOptions& opts);

}  // namespace tft
