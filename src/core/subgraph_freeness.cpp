#include "core/subgraph_freeness.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "comm/shared_randomness.h"

namespace tft {

Graph pattern_clique(Vertex size) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < size; ++u) {
    for (Vertex v = u + 1; v < size; ++v) edges.emplace_back(u, v);
  }
  return Graph(size, std::move(edges));
}

Graph pattern_cycle(Vertex length) {
  if (length < 3) throw std::invalid_argument("pattern_cycle: length >= 3 required");
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < length; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(0, length - 1);
  return Graph(length, std::move(edges));
}

Graph pattern_path(Vertex vertices) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < vertices; ++v) edges.emplace_back(v, v + 1);
  return Graph(vertices, std::move(edges));
}

namespace {

/// Backtracking state for non-induced subgraph isomorphism.
class IsoSearch {
 public:
  IsoSearch(const Graph& host, const Graph& pattern, std::uint64_t max_steps)
      : host_(host), pattern_(pattern), max_steps_(max_steps) {
    // Order pattern vertices so each (after the first) has at least one
    // already-placed neighbor when possible: maximizes pruning. Greedy
    // "connected, highest-degree-first" order.
    order_.reserve(pattern.n());
    std::vector<bool> placed(pattern.n(), false);
    for (Vertex step = 0; step < pattern.n(); ++step) {
      Vertex best = pattern.n();
      int best_score = -1;
      for (Vertex v = 0; v < pattern.n(); ++v) {
        if (placed[v]) continue;
        int placed_neighbors = 0;
        for (const Vertex w : pattern.neighbors(v)) placed_neighbors += placed[w] ? 1 : 0;
        const int score = placed_neighbors * 1000 + static_cast<int>(pattern.degree(v));
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      placed[best] = true;
      order_.push_back(best);
    }
    mapping_.assign(pattern.n(), host.n());  // host.n() = unmapped sentinel
    used_.assign(host.n(), false);
  }

  [[nodiscard]] std::optional<std::vector<Vertex>> run() {
    if (pattern_.n() == 0) return std::vector<Vertex>{};
    if (extend(0)) return mapping_;
    return std::nullopt;
  }

 private:
  bool budget_exhausted() { return max_steps_ != 0 && ++steps_ > max_steps_; }

  /// Candidate host vertices for pattern vertex `pv`, restricted to the
  /// host-neighborhood of an already-mapped pattern neighbor if one exists.
  bool extend(std::size_t depth) {
    if (depth == order_.size()) return true;
    const Vertex pv = order_[depth];

    // Find a mapped pattern-neighbor with the smallest host neighborhood.
    Vertex anchor_host = host_.n();
    for (const Vertex pn : pattern_.neighbors(pv)) {
      if (mapping_[pn] == host_.n()) continue;
      if (anchor_host == host_.n() ||
          host_.degree(mapping_[pn]) < host_.degree(anchor_host)) {
        anchor_host = mapping_[pn];
      }
    }

    const auto try_candidate = [&](Vertex hv) -> bool {
      if (budget_exhausted()) return false;
      if (used_[hv]) return false;
      if (host_.degree(hv) < pattern_.degree(pv)) return false;
      // All mapped pattern neighbors must be host neighbors.
      for (const Vertex pn : pattern_.neighbors(pv)) {
        if (mapping_[pn] != host_.n() && !host_.has_edge(hv, mapping_[pn])) return false;
      }
      mapping_[pv] = hv;
      used_[hv] = true;
      if (extend(depth + 1)) return true;
      mapping_[pv] = host_.n();
      used_[hv] = false;
      return false;
    };

    if (anchor_host != host_.n()) {
      for (const Vertex hv : host_.neighbors(anchor_host)) {
        if (try_candidate(hv)) return true;
        if (max_steps_ != 0 && steps_ > max_steps_) return false;
      }
    } else {
      for (Vertex hv = 0; hv < host_.n(); ++hv) {
        if (try_candidate(hv)) return true;
        if (max_steps_ != 0 && steps_ > max_steps_) return false;
      }
    }
    return false;
  }

  const Graph& host_;
  const Graph& pattern_;
  std::uint64_t max_steps_;
  std::uint64_t steps_ = 0;
  std::vector<Vertex> order_;
  std::vector<Vertex> mapping_;
  std::vector<bool> used_;
};

}  // namespace

std::optional<std::vector<Vertex>> find_subgraph(const Graph& host, const Graph& pattern,
                                                 std::uint64_t max_steps) {
  if (pattern.n() > host.n()) return std::nullopt;
  IsoSearch search(host, pattern, max_steps);
  return search.run();
}

bool contains_subgraph(const Graph& host, const Graph& pattern, std::uint64_t max_steps) {
  return find_subgraph(host, pattern, max_steps).has_value();
}

Graph planted_copies(Vertex n, const Graph& pattern, std::uint32_t t, Rng& rng) {
  const Vertex pn = pattern.n();
  if (static_cast<std::uint64_t>(t) * pn > n) {
    throw std::invalid_argument("planted_copies: need n >= t * pattern.n()");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(t) * pattern.num_edges() + n / 2);
  for (std::uint32_t i = 0; i < t; ++i) {
    const Vertex base = i * pn;
    for (const Edge& e : pattern.edges()) edges.emplace_back(base + e.u, base + e.v);
  }
  // Noise: a random matching on the leftover vertices — it cannot create a
  // copy of any pattern with a vertex of degree >= 2.
  std::vector<Vertex> rest(n - t * pn);
  std::iota(rest.begin(), rest.end(), static_cast<Vertex>(t * pn));
  for (std::size_t i = rest.size(); i > 1; --i) std::swap(rest[i - 1], rest[rng.below(i)]);
  for (std::size_t i = 0; i + 1 < rest.size(); i += 2) edges.emplace_back(rest[i], rest[i + 1]);
  return Graph(n, std::move(edges));
}

double subgraph_sample_size(std::uint64_t n, Vertex pattern_vertices,
                            const SimSubgraphOptions& opts) {
  // A graph eps-far from H-freeness has T >= eps * m / |E(H)| edge-disjoint
  // copies (each deletion kills at most one disjoint copy); a copy lands in
  // S w.p. (s/n)^h. Solving (s/n)^h * T = Theta(1):
  //   s = c * n * (1 / (eps * m / h^2))^{1/h},   h = |V(H)|.
  const double h = static_cast<double>(pattern_vertices);
  const double m = std::max(1.0, static_cast<double>(n) * opts.average_degree / 2.0);
  const double copies = std::max(1.0, opts.eps * m / (h * h));
  const double s = opts.c * static_cast<double>(n) * std::pow(1.0 / copies, 1.0 / h);
  return std::clamp(s, 1.0, static_cast<double>(n));
}

SimSubgraphResult sim_subgraph_find(std::span<const PlayerInput> players, const Graph& pattern,
                                    const SimSubgraphOptions& opts) {
  if (players.empty()) throw std::invalid_argument("sim_subgraph_find: no players");
  const std::uint64_t n = players.front().n();
  const SharedRandomness sr(opts.seed);
  const SharedTag tag{0x5B6, 0x11, 0};
  const double s = subgraph_sample_size(n, pattern.n(), opts);
  const double p = s / static_cast<double>(n);

  std::vector<SimMessage> messages;
  messages.reserve(players.size());
  for (const auto& player : players) {
    SimMessage msg;
    msg.player_id = player.player_id;
    for (const Edge& e : player.local.edges()) {
      if (sr.bernoulli(tag, e.u, p) && sr.bernoulli(tag, e.v, p)) msg.edges.push_back(e);
    }
    apply_cap(msg, static_cast<std::size_t>(opts.cap_edges_per_player));
    messages.push_back(std::move(msg));
  }

  SimSubgraphResult result;
  std::vector<Edge> all;
  for (const auto& m : messages) {
    result.total_bits += m.bits(n);
    all.insert(all.end(), m.edges.begin(), m.edges.end());
  }
  const Graph received(static_cast<Vertex>(n), std::move(all));
  result.edges_received = received.num_edges();
  result.witness = find_subgraph(received, pattern, opts.search_budget);
  return result;
}

}  // namespace tft
