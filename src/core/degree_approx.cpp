#include "core/degree_approx.h"

#include <algorithm>
#include <cmath>

#include "core/building_blocks.h"
#include "util/bits.h"

namespace tft {

namespace {

constexpr auto kUp = Direction::kPlayerToCoordinator;
constexpr auto kDown = Direction::kCoordinatorToPlayer;

/// Exact per-guess acceptance threshold: midpoint between the expected hit
/// rate when the true count is d''/alpha (too-high guess, keep descending)
/// and when it is d''/sqrt(alpha) (guess has reached the target, stop).
double stop_threshold(double guess, double alpha) {
  const double q = 1.0 / guess;
  const double e_low = 1.0 - std::pow(1.0 - q, guess / alpha);
  const double e_high = 1.0 - std::pow(1.0 - q, guess / std::sqrt(alpha));
  return 0.5 * (e_low + e_high);
}

std::uint32_t experiments_per_guess(const DegreeApproxOptions& opts, std::uint32_t k) {
  const double base = 16.0 * std::log(2.0 * std::max<std::uint32_t>(2, k) / opts.tau);
  const double m = opts.experiments_scale * base;
  return std::max(opts.min_experiments, static_cast<std::uint32_t>(std::ceil(m)));
}

/// Shared two-phase estimator over an abstract item family.
/// `LocalCount(j)`  : player j's local item count (with multiplicity removed
///                    locally — our inputs are Graphs, so already distinct).
/// `LocalHit(j, tag, q)` : true iff any of player j's items is selected by
///                    the shared Bernoulli(q) sample named by `tag`.
template <typename LocalCount, typename LocalHit>
DegreeApproxResult two_phase_estimate(std::span<const PlayerInput> players, Channel t,
                                      SharedTag tag, const DegreeApproxOptions& opts,
                                      LocalCount&& local_count, LocalHit&& local_hit) {
  DegreeApproxResult result;
  const auto k = static_cast<std::uint32_t>(players.size());

  // --- Phase 1: MSB round. Each player ships the bit-length of its local
  // count; the coordinator forms d' = sum 2^{I_j+1} >= true count, and
  // d' <= 2k * true count.
  double d_prime = 0.0;
  for (const auto& p : players) {
    const std::uint64_t cj = local_count(p);
    const std::uint64_t msb = cj == 0 ? 0 : bit_width_of(cj);
    t.charge_count(p.player_id, kUp, msb, phase::kDegreeApprox);
    if (cj > 0) d_prime += std::pow(2.0, static_cast<double>(msb));  // 2^{I_j+1}
  }
  result.msb_upper = d_prime;
  if (d_prime == 0.0) return result;  // no player holds any item

  // Coordinator announces ceil(log2 d') so everyone derives the same guess
  // schedule; O(log log) bits per player.
  const double d_start = std::pow(2.0, std::ceil(std::log2(d_prime)));
  for (const auto& p : players) {
    t.charge_count(p.player_id, kDown, static_cast<std::uint64_t>(std::ceil(std::log2(d_start))),
                   phase::kDegreeApprox);
  }

  // --- Phase 2: geometric descent.
  const double s = std::sqrt(opts.alpha);
  const std::uint32_t m = experiments_per_guess(opts, k);
  // True count >= d'/2k, so guesses below d'/(4k) are never the right
  // answer; this bounds the descent to O(log_s k) rounds.
  const double floor_guess = std::max(1.5, d_prime / (4.0 * static_cast<double>(k)));

  double guess = d_start;
  for (;; guess /= s) {
    ++result.guesses;
    const bool last = guess / s < floor_guess;
    if (!last) {
      const double q = 1.0 / guess;
      const double threshold = stop_threshold(guess, opts.alpha);
      std::uint32_t hits = 0;
      for (std::uint32_t r = 0; r < m; ++r) {
        SharedTag exp_tag = tag;
        exp_tag.c = mix_hash(exp_tag.c, result.guesses, r + 1);
        bool any = false;
        for (const auto& p : players) {
          const bool h = local_hit(p, exp_tag, q);
          t.charge_flag(p.player_id, kUp, phase::kDegreeApprox);
          any = any || h;
        }
        hits += any ? 1 : 0;
      }
      // Coordinator announces continue/stop.
      for (const auto& p : players) t.charge_flag(p.player_id, kDown, phase::kDegreeApprox);
      if (static_cast<double>(hits) / static_cast<double>(m) < threshold) continue;
    }
    result.estimate = guess;
    return result;
  }
}

}  // namespace

DegreeApproxResult approx_degree(std::span<const PlayerInput> players, Channel t,
                                 const SharedRandomness& sr, SharedTag tag, Vertex v,
                                 const DegreeApproxOptions& opts) {
  if (opts.no_duplication) return approx_degree_no_duplication(players, t, v, opts.alpha);
  return two_phase_estimate(
      players, t, tag, opts,
      [v](const PlayerInput& p) -> std::uint64_t { return p.local_degree(v); },
      [v, &sr](const PlayerInput& p, SharedTag exp_tag, double q) {
        for (const Vertex w : p.local.neighbors(v)) {
          if (sr.bernoulli(exp_tag, w, q)) return true;
        }
        return false;
      });
}

DegreeApproxResult approx_degree_no_duplication(std::span<const PlayerInput> players,
                                                Channel t, Vertex v, double alpha) {
  // Lemma 3.2: ship the top bits of each local count; truncation
  // under-counts each player by a factor < alpha when keeping
  // ceil(log2(1/(alpha-1))) + 1 bits below the MSB.
  DegreeApproxResult result;
  const double frac = std::max(1e-6, alpha - 1.0);
  const auto keep_bits = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::max(0.0, std::ceil(std::log2(1.0 / frac)))) +
             1);
  double total = 0.0;
  for (const auto& p : players) {
    const std::uint64_t dj = p.local_degree(v);
    if (dj == 0) {
      t.charge_flag(p.player_id, Direction::kPlayerToCoordinator, phase::kDegreeApprox);
      continue;
    }
    const std::uint64_t width = bit_width_of(dj);
    const std::uint64_t drop = width > keep_bits ? width - keep_bits : 0;
    const std::uint64_t truncated = (dj >> drop) << drop;
    // Cost: the kept bits plus the MSB index (log log d_j).
    t.charge(p.player_id, Direction::kPlayerToCoordinator,
             keep_bits + count_bits(width), phase::kDegreeApprox);
    total += static_cast<double>(truncated);
    result.msb_upper += std::pow(2.0, static_cast<double>(width));
  }
  result.estimate = total;
  result.guesses = 0;
  return result;
}

DegreeApproxResult approx_distinct_edges(std::span<const PlayerInput> players, Channel t,
                                         const SharedRandomness& sr, SharedTag tag,
                                         const DegreeApproxOptions& opts) {
  return two_phase_estimate(
      players, t, tag, opts,
      [](const PlayerInput& p) -> std::uint64_t { return p.local.num_edges(); },
      [&sr](const PlayerInput& p, SharedTag exp_tag, double q) {
        for (const Edge& e : p.local.edges()) {
          if (sr.bernoulli(exp_tag, e.key(), q)) return true;
        }
        return false;
      });
}

}  // namespace tft
