#include "core/tester.h"

#include <stdexcept>

#include "core/exact_baseline.h"
#include "core/sim_high.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "core/unrestricted.h"

namespace tft {

TestReport test_triangle_freeness(std::span<const PlayerInput> players,
                                  const TesterOptions& opts) {
  if (players.empty()) throw std::invalid_argument("test_triangle_freeness: no players");
  TestReport report;
  report.protocol = opts.protocol;

  switch (opts.protocol) {
    case ProtocolKind::kUnrestricted: {
      UnrestrictedOptions o;
      o.consts = ProtocolConstants::practical(opts.eps, opts.delta);
      o.seed = opts.seed;
      o.known_average_degree = opts.known_average_degree;
      o.no_duplication = opts.no_duplication;
      const auto r = find_triangle_unrestricted(players, o);
      report.triangle = r.triangle;
      report.bits = r.total_bits;
      break;
    }
    case ProtocolKind::kSimLow: {
      if (opts.known_average_degree < 1.0) {
        throw std::invalid_argument("kSimLow requires known_average_degree");
      }
      SimLowOptions o;
      o.eps = opts.eps;
      o.delta = opts.delta;
      o.seed = opts.seed;
      o.average_degree = opts.known_average_degree;
      const auto r = sim_low_find_triangle(players, o);
      report.triangle = r.triangle;
      report.bits = r.total_bits;
      break;
    }
    case ProtocolKind::kSimHigh: {
      if (opts.known_average_degree < 1.0) {
        throw std::invalid_argument("kSimHigh requires known_average_degree");
      }
      SimHighOptions o;
      o.eps = opts.eps;
      o.delta = opts.delta;
      o.seed = opts.seed;
      o.average_degree = opts.known_average_degree;
      const auto r = sim_high_find_triangle(players, o);
      report.triangle = r.triangle;
      report.bits = r.total_bits;
      break;
    }
    case ProtocolKind::kSimOblivious: {
      SimObliviousOptions o;
      o.eps = opts.eps;
      o.delta = opts.delta;
      o.seed = opts.seed;
      const auto r = sim_oblivious_find_triangle(players, o);
      report.triangle = r.triangle;
      report.bits = r.total_bits;
      break;
    }
    case ProtocolKind::kExact: {
      const auto r = exact_find_triangle(players);
      report.triangle = r.triangle;
      report.bits = r.total_bits;
      break;
    }
  }
  return report;
}

}  // namespace tft
