#include "core/buckets.h"

#include <cmath>

namespace tft {

namespace {
double log2n(std::uint64_t n) noexcept {
  return std::log2(static_cast<double>(n < 2 ? 2 : n));
}
}  // namespace

bool is_full_vertex(std::uint64_t degree, std::uint64_t disjoint_vees, double eps,
                    std::uint64_t n) noexcept {
  if (degree == 0) return false;
  const double fraction =
      2.0 * static_cast<double>(disjoint_vees) / static_cast<double>(degree);
  return fraction >= eps / (12.0 * log2n(n));
}

double degree_threshold_high(std::uint64_t n, double d, double eps) noexcept {
  return std::sqrt(static_cast<double>(n) * d / eps);  // d_h = sqrt(nd/eps)
}

double degree_threshold_low(std::uint64_t n, double d, double eps) noexcept {
  return eps * d / (2.0 * log2n(n));  // d_l = eps*d / (2 log n)
}

}  // namespace tft
