#include "core/sim_low.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/shared_randomness.h"

namespace tft {

SimMessage sim_low_message_edges(std::span<const Edge> edges, std::size_t player_id,
                                 std::uint64_t n, const SimLowOptions& opts) {
  const SharedRandomness sr(opts.seed);
  const SharedTag s_tag{opts.s_tag, 0, 0};
  const SharedTag r_tag{opts.r_tag, 0, 0};

  const double d = std::max(1.0, opts.average_degree);
  const double p1 = std::min(opts.c / d, 1.0);
  const double p2 = std::min(opts.c / std::sqrt(static_cast<double>(n)), 1.0);

  const auto in_s = [&](Vertex v) { return sr.bernoulli(s_tag, v, p1); };
  const auto in_r = [&](Vertex v) { return sr.bernoulli(r_tag, v, p2); };

  SimMessage msg;
  msg.player_id = player_id;
  for (const Edge& e : edges) {
    const bool ru = in_r(e.u);
    const bool rv = in_r(e.v);
    // one endpoint in R, the other in R ∪ S.
    const bool keep = (ru && (rv || in_s(e.v))) || (rv && (ru || in_s(e.u)));
    if (keep) msg.edges.push_back(e);
  }

  std::uint64_t cap = opts.cap_edges_per_player;
  if (cap == SimLowOptions::kPaperCap) {
    // q = 2 c^2 (sqrt(n) + d) * 2/delta   (Algorithm 8 step 3)
    const double q =
        2.0 * opts.c * opts.c * (std::sqrt(static_cast<double>(n)) + d) * (2.0 / opts.delta);
    cap = static_cast<std::uint64_t>(std::ceil(q)) + 1;
  }
  apply_cap(msg, static_cast<std::size_t>(cap));
  return msg;
}

SimMessage sim_low_message(const PlayerInput& player, const SimLowOptions& opts) {
  return sim_low_message_edges(player.local.edges(), player.player_id, player.n(), opts);
}

SimResult sim_low_find_triangle(std::span<const PlayerInput> players, const SimLowOptions& opts) {
  if (players.empty()) throw std::invalid_argument("sim_low_find_triangle: no players");
  std::vector<SimMessage> messages;
  messages.reserve(players.size());
  for (const auto& p : players) messages.push_back(sim_low_message(p, opts));
  return finalize_simultaneous(players.front().n(), std::move(messages));
}

}  // namespace tft
