#include "core/unrestricted.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "comm/conformance.h"
#include "core/buckets.h"
#include "core/building_blocks.h"
#include "core/degree_approx.h"

namespace tft {

namespace {

constexpr auto kUp = Direction::kPlayerToCoordinator;
constexpr auto kDown = Direction::kCoordinatorToPlayer;

double log2n(std::uint64_t n) {
  return std::log2(static_cast<double>(std::max<std::uint64_t>(n, 2)));
}

/// Per-player, per-bucket candidate lists B~_i^j, precomputed locally (free:
/// a player may compute anything on its own input). A vertex belongs to
/// O(log_3 k) buckets, so total size is O(n log k) per player.
class BucketIndex {
 public:
  BucketIndex(std::span<const PlayerInput> players, std::uint32_t buckets) {
    lists_.resize(players.size());
    for (std::size_t j = 0; j < players.size(); ++j) {
      lists_[j].resize(buckets);
      const auto& p = players[j];
      for (Vertex v = 0; v < p.n(); ++v) {
        const auto dj = p.local_degree(v);
        if (dj == 0) continue;
        for (std::uint32_t i = 1; i < buckets; ++i) {
          if (in_btilde(dj, i, p.k)) lists_[j][i].push_back(v);
        }
      }
    }
  }

  [[nodiscard]] const std::vector<Vertex>& list(std::size_t player, std::uint32_t bucket) const {
    return lists_.at(player).at(bucket);
  }

 private:
  std::vector<std::vector<std::vector<Vertex>>> lists_;
};

/// Algorithm 1 batched: the first `q` distinct vertices of B~_i under the
/// shared permutation named by `tag` — a uniformly random (ordered) q-subset,
/// unbiased by duplication. Each player ships its local top-q; the
/// coordinator merges. Bit cost is identical to q single-sample rounds
/// (k * q vertex ids upstream) and the result is "sampling without
/// replacement", which only improves the hitting probabilities the protocol
/// relies on (Lemma 3.14).
std::vector<Vertex> topq_btilde(std::span<const PlayerInput> players, const BucketIndex& index,
                                Channel t, const SharedRandomness& sr, SharedTag tag,
                                std::uint32_t bucket, std::size_t q) {
  std::vector<Vertex> merged;
  for (const auto& p : players) {
    std::vector<Vertex> local = index.list(p.player_id, bucket);
    const std::size_t take = std::min(q, local.size());
    std::partial_sort(local.begin(), local.begin() + static_cast<std::ptrdiff_t>(take),
                      local.end(),
                      [&](Vertex a, Vertex b) { return sr.precedes(tag, a, b); });
    local.resize(take);
    t.charge_count(p.player_id, kUp, take, phase::kSampleVertex);
    t.charge(p.player_id, kUp, take * vertex_bits(p.n()), phase::kSampleVertex);
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end(),
            [&](Vertex a, Vertex b) { return sr.precedes(tag, a, b); });
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > q) merged.resize(q);
  return merged;
}

/// A candidate vertex that survived the degree filter.
struct Candidate {
  Vertex v = 0;
  double degree_low = 1.0;   ///< lower bound on deg(v) from the estimate
  double degree_high = 1.0;  ///< upper bound on deg(v)
};

/// Blackboard-aware collection of a candidate's sampled neighbors
/// (SampleEdges, Algorithm 4). In the coordinator model every player ships
/// its own copy; on a blackboard players post in turn and never repeat an
/// already-posted endpoint (Theorem 3.23).
std::vector<Vertex> sample_neighbors(std::span<const PlayerInput> players, Channel t,
                                     const SharedRandomness& sr, SharedTag tag, Vertex v,
                                     double p, std::size_t cap, bool blackboard) {
  if (!blackboard) return collect_sampled_neighbors(players, t, sr, tag, v, p, cap);
  std::vector<Vertex> posted;
  for (const auto& pl : players) {
    std::size_t sent = 0;
    for (const Vertex w : pl.local.neighbors(v)) {
      if (!sr.bernoulli(tag, w, p)) continue;
      if (std::find(posted.begin(), posted.end(), w) != posted.end()) continue;
      if (cap != 0 && sent >= cap) break;
      posted.push_back(w);
      ++sent;
    }
    t.charge_count(pl.player_id, kUp, sent, phase::kVeeSample);
    t.charge(pl.player_id, kUp, sent * vertex_bits(pl.n()), phase::kVeeSample);
  }
  std::sort(posted.begin(), posted.end());
  return posted;
}

/// Blackboard-aware vee-closing round: on a blackboard the candidate list is
/// posted once instead of once per player.
std::optional<Triangle> close_vee(std::span<const PlayerInput> players, Channel t,
                                  Vertex source, std::span<const Vertex> candidates,
                                  bool blackboard) {
  if (!blackboard) return close_vee_round(players, t, source, candidates);
  t.charge(0, kDown, candidates.size() * vertex_bits(players.front().n()), phase::kCloseVee);
  std::optional<Triangle> found;
  for (const auto& p : players) {
    t.charge_flag(p.player_id, kUp, phase::kCloseVee);
    if (found) continue;
    for (std::size_t i = 0; i < candidates.size() && !found; ++i) {
      for (const Vertex y : p.local.neighbors(candidates[i])) {
        if (y == source) continue;
        if (!std::binary_search(candidates.begin(), candidates.end(), y)) continue;
        found = Triangle(source, candidates[i], y);
        t.charge_edges(p.player_id, kUp, 1, phase::kCloseVee);
        break;
      }
    }
  }
  return found;
}

}  // namespace

ProtocolConstants ProtocolConstants::practical(double eps, double delta) {
  ProtocolConstants c;
  c.eps = eps;
  c.delta = delta;
  return c;
}

ProtocolConstants ProtocolConstants::theory(double eps, double delta) {
  ProtocolConstants c;
  c.eps = eps;
  c.delta = delta;
  c.edge_sample_scale = 4.0;
  c.approx_scale = 4.0;
  c.theory_preset_ = true;
  return c;
}

std::uint64_t ProtocolConstants::samples_per_bucket(std::uint64_t n, std::uint64_t k) const {
  const double ln6d = std::log(6.0 / delta);
  if (theory_preset_) {
    // q = ln(6/delta) * 108 * log^2 n * k / eps^2   (Lemma 3.14 with r = k)
    const double q = ln6d * 108.0 * log2n(n) * log2n(n) * static_cast<double>(k) / (eps * eps);
    return static_cast<std::uint64_t>(std::ceil(q));
  }
  const double q = q_scale * 2.0 * static_cast<double>(k) * log2n(n);
  return std::max<std::uint64_t>(4, static_cast<std::uint64_t>(std::ceil(q)));
}

std::uint64_t ProtocolConstants::candidate_cap(std::uint64_t n) const {
  const double ln6d = std::log(6.0 / delta);
  if (theory_preset_) {
    // ln(6/delta) * 312 * log^2 n / eps^2   (Lemma 3.15)
    const double c = ln6d * 312.0 * log2n(n) * log2n(n) / (eps * eps);
    return static_cast<std::uint64_t>(std::ceil(c));
  }
  const double c = cand_scale * 3.0 * log2n(n);
  return std::max<std::uint64_t>(3, static_cast<std::uint64_t>(std::ceil(c)));
}

double ProtocolConstants::edge_sample_probability(std::uint64_t n, double degree_low) const {
  const double d = std::max(1.0, degree_low);
  if (theory_preset_) {
    // p = c * sqrt(ln(6/delta)) * sqrt(12 log n / (eps * d))  (Corollary 3.10)
    const double base =
        std::sqrt(std::log(6.0 / delta)) * std::sqrt(12.0 * log2n(n) / (eps * d));
    return std::min(1.0, edge_sample_scale * base);
  }
  // Practical preset: same Theta(sqrt(log n / d)) shape with the worst-case
  // full-vertex fraction constants dropped (validated empirically by the
  // test suite; the shape is what the benches measure).
  return std::min(1.0, edge_sample_scale * std::sqrt(8.0 * log2n(n) / d));
}

namespace {

UnrestrictedResult find_triangle_unrestricted_impl(std::span<const PlayerInput> players,
                                                   const UnrestrictedOptions& opts,
                                                   Channel t) {
  const std::uint64_t n = players.front().n();
  const std::uint64_t k = players.size();
  const ProtocolConstants& C = opts.consts;

  SharedRandomness sr(opts.seed);
  UnrestrictedResult result;

  // --- Degree estimation round (Corollary 3.22: d need not be known).
  double d_low = 0.0;
  double d_high = 0.0;
  if (opts.known_average_degree >= 1.0) {
    d_low = d_high = opts.known_average_degree;
  } else {
    DegreeApproxOptions da;
    da.alpha = C.alpha;
    da.experiments_scale = C.approx_scale;
    const auto est = approx_distinct_edges(players, t, sr, SharedTag{0xE57, 0, 0}, da);
    if (est.estimate <= 0.0) {
      result.total_bits = t.total_bits();
      result.overhead_bits = result.total_bits;
      return result;  // empty graph: triangle-free, accept
    }
    // estimate in (M, alpha*M]; convert to average-degree bounds.
    d_high = 2.0 * est.estimate / static_cast<double>(n);
    d_low = d_high / C.alpha;
  }
  result.degree_estimate = d_high;

  // --- Bucket range: [d_l, d_h] with estimate slack (Lemma 3.12).
  const double dl = std::max(1.0, degree_threshold_low(n, d_low, C.eps) / 2.0);
  const double dh = degree_threshold_high(n, std::max(d_high, 1.0), C.eps) * 2.0;
  const std::uint32_t total_buckets = num_buckets(n);
  const std::uint32_t first_bucket = bucket_of_degree(static_cast<std::uint64_t>(dl));
  const std::uint32_t last_bucket =
      std::min(bucket_of_degree(static_cast<std::uint64_t>(std::ceil(dh))), total_buckets - 1);

  const std::uint64_t q = C.samples_per_bucket(n, k);
  const std::uint64_t cand_cap = C.candidate_cap(n);

  const BucketIndex index(players, total_buckets);

  DegreeApproxOptions da;
  da.alpha = C.alpha;
  da.experiments_scale = C.approx_scale;
  da.no_duplication = opts.no_duplication;

  for (std::uint32_t bucket = first_bucket; bucket <= last_bucket; ++bucket) {
    ++result.buckets_tried;

    // --- GetFullCandidates (Algorithm 3): q uniform samples from B~_i,
    // filtered by approximate degree, keeping at most cand_cap.
    std::vector<Vertex> sampled;
    if (opts.use_bucketing) {
      sampled = topq_btilde(players, index, t, sr, SharedTag{0x5A, bucket, 0}, bucket,
                            static_cast<std::size_t>(q));
    } else {
      // Ablation: naive shared uniform vertex sampling, ignoring degrees.
      sampled.reserve(static_cast<std::size_t>(q));
      for (std::uint64_t i = 0; i < q; ++i) {
        sampled.push_back(static_cast<Vertex>(sr.uniform_vertex(SharedTag{0x5B, bucket, i}, 0, n)));
      }
    }

    std::vector<Candidate> cands;
    for (std::size_t si = 0; si < sampled.size() && cands.size() < cand_cap; ++si) {
      const Vertex v = sampled[si];
      const auto est = approx_degree(players, t, sr, SharedTag{0xDE6, bucket, si}, v, da);
      if (est.estimate <= 0.0) continue;
      // With duplication the estimate only over-shoots: deg(v) lies in
      // (est/alpha, est]. Accept iff that range intersects the bucket
      // window widened by alpha (Algorithm 3 step 7, adapted to one-sided
      // estimates); all true members of B_i survive.
      const double lo = opts.no_duplication ? est.estimate : est.estimate / C.alpha;
      const double hi = opts.no_duplication ? est.estimate * C.alpha : est.estimate;
      if (hi < static_cast<double>(bucket_min_degree(bucket)) ||
          lo >= static_cast<double>(bucket_max_degree(bucket)) * C.alpha) {
        continue;
      }
      cands.push_back(Candidate{v, std::max(1.0, lo), std::max(1.0, hi)});
    }

    // --- SampleEdges + vee closing (Algorithms 4-5).
    for (std::size_t ci = 0; ci < cands.size(); ++ci) {
      const Candidate& cand = cands[ci];
      ++result.candidates_examined;
      const double p = C.edge_sample_probability(n, cand.degree_low);
      // Cap per player (Algorithm 4 step 2): constant slack above the
      // expected sample size.
      const auto cap = static_cast<std::size_t>(std::ceil(3.0 * cand.degree_high * p + 32.0));
      const SharedTag tag{0xED6, (static_cast<std::uint64_t>(bucket) << 32) | ci, 1};
      const auto neighbors = sample_neighbors(players, t, sr, tag, cand.v, p, cap, opts.blackboard);
      if (neighbors.size() < 2) continue;
      ++result.vee_rounds;
      const auto tri = close_vee(players, t, cand.v, neighbors, opts.blackboard);
      if (tri) {
        // One-sided guarantee: all three edges came from player inputs, so
        // the triangle is real.
        result.triangle = *tri;
        break;
      }
    }
    if (result.triangle) break;
  }

  result.total_bits = t.total_bits();
  result.edge_sampling_bits = t.phase_bits(phase::kVeeSample) + t.phase_bits(phase::kCloseVee);
  result.overhead_bits = result.total_bits - result.edge_sampling_bits;
  return result;
}

}  // namespace

UnrestrictedResult find_triangle_unrestricted(std::span<const PlayerInput> players,
                                              const UnrestrictedOptions& opts) {
  if (players.empty()) throw std::invalid_argument("find_triangle_unrestricted: no players");
  const CommModel model = opts.blackboard ? CommModel::kBlackboard : CommModel::kCoordinator;
  return run_checked(model, players.size(), players.front().n(), [&](Channel t) {
    return find_triangle_unrestricted_impl(players, opts, t);
  });
}

}  // namespace tft
