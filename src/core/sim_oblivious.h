#pragma once

#include <cstdint>
#include <span>

#include "core/sim_common.h"

/// \file sim_oblivious.h
/// Algorithm 11 (FindTriangleSimOblivious): the degree-oblivious
/// simultaneous protocol (Theorem 3.32).
///
/// No player knows the global average degree d and there is no second round
/// to learn it. Player j computes its local average degree d̄ʲ; if j is
/// "relevant" (d̄ʲ >= (eps/4k) d) then d lies in D_j = [d̄ʲ, (4k/eps) d̄ʲ],
/// so the player runs O(log k) parallel instances of the degree-aware
/// protocols — AlgHigh for guesses >= sqrt(n), AlgLow below — one per
/// power-of-two guess in D_j, each instance's message capped near *its own
/// d̄ʲ-based expectation* (Lemmas 3.30/3.31; this is what prevents the
/// k-factor blow-up). Irrelevant players send small or empty messages; the
/// graph restricted to relevant players is still (eps/2)-far.

namespace tft {

struct SimObliviousOptions {
  double eps = 0.1;
  double delta = 0.1;
  double c = 3.0;          ///< inner-protocol sample constant
  double cap_scale = 4.0;  ///< multiplier on the per-instance caps
  std::uint64_t seed = 1;
  /// 0 = per-instance paper caps. Nonzero = explicit per-player total edge
  /// cap (for the min-budget harness).
  std::uint64_t cap_edges_per_player = 0;
};

struct SimObliviousStats {
  std::size_t high_instances = 0;
  std::size_t low_instances = 0;
};

/// Build player j's single message. Purely local: uses only E_j and shared
/// randomness.
[[nodiscard]] SimMessage sim_oblivious_message(const PlayerInput& player,
                                               const SimObliviousOptions& opts,
                                               SimObliviousStats* stats = nullptr);

/// Full degree-oblivious run.
[[nodiscard]] SimResult sim_oblivious_find_triangle(std::span<const PlayerInput> players,
                                                    const SimObliviousOptions& opts);

}  // namespace tft
