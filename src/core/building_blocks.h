#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "comm/shared_randomness.h"
#include "comm/channel.h"
#include "graph/partition.h"

/// \file building_blocks.h
/// Section 3.1: property-testing primitives implemented as coordinator-model
/// sub-protocols, with exact bit accounting.
///
/// Every function takes the full player vector but reads only player-local
/// state plus shared randomness; all cross-boundary data is charged to the
/// transcript. Distinct invocations must pass distinct SharedTags so their
/// random choices are independent.

namespace tft {

/// Phase tags used by the building blocks when charging the transcript,
/// so callers can attribute cost (Transcript::phase_bits).
namespace phase {
inline constexpr std::uint64_t kEdgeQuery = 1;
inline constexpr std::uint64_t kSampleVertex = 2;
inline constexpr std::uint64_t kIncidentEdge = 3;
inline constexpr std::uint64_t kRandomEdge = 4;
inline constexpr std::uint64_t kInducedSubgraph = 5;
inline constexpr std::uint64_t kDegreeApprox = 6;
inline constexpr std::uint64_t kVeeSample = 7;
inline constexpr std::uint64_t kCloseVee = 8;
inline constexpr std::uint64_t kSetup = 9;
inline constexpr std::uint64_t kBfs = 10;
}  // namespace phase

/// Dense-model primitive: does edge e exist in the union graph?
/// Cost: k bits up + k bits down (answer broadcast). O(k).
[[nodiscard]] bool query_edge(std::span<const PlayerInput> players, Channel t, const Edge& e);

/// Algorithm 1 (SampleUniformFromB~_i): sample a uniformly random vertex of
/// bucket-candidate set B~_i = union_j B~_i^j using a shared random
/// permutation. Returns nullopt if the candidate set is empty.
/// Cost: k * (1 + log n) bits up.
[[nodiscard]] std::optional<Vertex> sample_uniform_btilde(std::span<const PlayerInput> players,
                                                          Channel t,
                                                          const SharedRandomness& sr,
                                                          SharedTag tag, std::uint32_t bucket);

/// Generalized Algorithm 1: uniform sample from { v : player j accepts v }
/// where acceptance is any player-local predicate evaluated on the local
/// degree. Used by tests and by sample_uniform_btilde.
[[nodiscard]] std::optional<Vertex> sample_uniform_where(
    std::span<const PlayerInput> players, Channel t, const SharedRandomness& sr,
    SharedTag tag, bool (*accept)(const PlayerInput&, Vertex));

/// Sparse-model primitive: uniformly random edge incident to v, unbiased by
/// edge duplication (shared permutation over the n-1 potential neighbors).
/// The chosen edge is broadcast back to all players.
/// Cost: k * (1 + log n) up + k * log n down.
[[nodiscard]] std::optional<Edge> random_incident_edge(std::span<const PlayerInput> players,
                                                       Channel t, const SharedRandomness& sr,
                                                       SharedTag tag, Vertex v);

/// Uniformly random edge of the union graph (shared permutation over all
/// potential edges), broadcast to all players. Cost: k*(1+2log n) up +
/// k*2log n down.
[[nodiscard]] std::optional<Edge> random_edge(std::span<const PlayerInput> players, Channel t,
                                              const SharedRandomness& sr, SharedTag tag);

/// Random walk of `steps` steps from `start` via random_incident_edge.
/// Returns the visited vertices (including start; stops early at a dead end).
[[nodiscard]] std::vector<Vertex> random_walk(std::span<const PlayerInput> players, Channel t,
                                              const SharedRandomness& sr, SharedTag tag,
                                              Vertex start, std::uint32_t steps);

/// All edges of the subgraph induced by S (sorted vertex list), collected at
/// the coordinator. Each player may send at most `cap_per_player` edges
/// (0 = unlimited). Cost: sum over players of (#sent * 2 log n) + k counts.
[[nodiscard]] std::vector<Edge> collect_induced_subgraph(std::span<const PlayerInput> players,
                                                         Channel t,
                                                         std::span<const Vertex> sorted_s,
                                                         std::size_t cap_per_player);

/// The edges {v} x S held by each player, collected at the coordinator
/// (SampleEdges step 2, Algorithm 4). S is given implicitly as the shared
/// Bernoulli(p) sample under `tag`; each player sends at most `cap` edges.
[[nodiscard]] std::vector<Vertex> collect_sampled_neighbors(std::span<const PlayerInput> players,
                                                            Channel t,
                                                            const SharedRandomness& sr,
                                                            SharedTag tag, Vertex v, double p,
                                                            std::size_t cap);

/// Distributed BFS (final bullet of Section 3.1): the coordinator examines
/// vertices in FIFO order; for each examined vertex every player posts its
/// local neighbor list (cost O(n log n) total over a component, regardless
/// of duplication — the coordinator dedups). `max_visits` truncates the
/// traversal (0 = whole component).
struct BfsResult {
  std::vector<Vertex> order;            ///< visit order, starting at source
  std::vector<std::uint32_t> depth;     ///< UINT32_MAX where unreached
  std::vector<Vertex> parent;           ///< parent[source] == source
};

[[nodiscard]] BfsResult distributed_bfs(std::span<const PlayerInput> players, Channel t,
                                        Vertex source, std::size_t max_visits = 0);

/// Odd-cycle detection via BFS 2-coloring (the classic sparse-model
/// bipartiteness primitive, runnable on our building blocks): returns the
/// vertex sequence of an odd cycle in source's component, or nullopt if the
/// component is bipartite.
[[nodiscard]] std::optional<std::vector<Vertex>> distributed_odd_cycle(
    std::span<const PlayerInput> players, Channel t, Vertex source);

/// Broadcast a vee candidate set A (neighbors of source v) to all players
/// and ask each to close a triangle from its own input. Returns the closing
/// triangle if any player finds one. Cost: k * |A| * log n down + k bits up
/// (+ 2 log n for the reported closing edge).
[[nodiscard]] std::optional<Triangle> close_vee_round(std::span<const PlayerInput> players,
                                                      Channel t, Vertex source,
                                                      std::span<const Vertex> candidates);

}  // namespace tft
