#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/partition.h"

/// \file exact_baseline.h
/// The exact triangle-detection baseline: every player ships its entire
/// input to the coordinator, which decides deterministically with zero
/// error. This is essentially optimal for the exact problem — Woodruff &
/// Zhang [38] prove Omega(nk d) bits are necessary — and is the comparator
/// the paper's Section 5 gap claim ("property testing is significantly
/// easier than exact testing") is measured against in bench_exact_gap.

namespace tft {

struct ExactResult {
  std::optional<Triangle> triangle;
  std::uint64_t total_bits = 0;
};

/// Deterministic full-exchange detection. With a no-duplication promise the
/// cost is Theta(m log n); with duplication it can reach k m log n.
[[nodiscard]] ExactResult exact_find_triangle(std::span<const PlayerInput> players);

}  // namespace tft
