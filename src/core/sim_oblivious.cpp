#include "core/sim_oblivious.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/sim_high.h"
#include "core/sim_low.h"

namespace tft {

namespace {

/// Deterministic per-guess tags so that all players' instances line up.
std::uint64_t high_tag(std::uint32_t guess_exp) { return 0xA100 + guess_exp; }
std::uint64_t low_s_tag(std::uint32_t guess_exp) { return 0xB100 + guess_exp; }
constexpr std::uint64_t kSharedRTag = 0xB0FF;  // one R across all low instances

}  // namespace

SimMessage sim_oblivious_message(const PlayerInput& player, const SimObliviousOptions& opts,
                                 SimObliviousStats* stats) {
  const std::uint64_t n = player.n();
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double dbar = player.local_average_degree();

  SimMessage msg;
  msg.player_id = player.player_id;
  if (player.local.num_edges() == 0) return msg;

  // Degree-guess ladder D_j = [d̄ʲ, (4k/eps) d̄ʲ], powers of two.
  const double k = static_cast<double>(player.k);
  const double guess_lo = std::max(1.0, dbar);
  const double guess_hi = std::min(static_cast<double>(n), (4.0 * k / opts.eps) * std::max(dbar, 1.0));

  const double logn = std::log2(static_cast<double>(std::max<std::uint64_t>(n, 2)));
  // Per-instance caps anchored to the player's own observed density
  // (Lemmas 3.30/3.31): O((n d̄ʲ)^{1/3} polylog) for high guesses,
  // O(sqrt(n) polylog) for low guesses.
  const auto cap_high = static_cast<std::uint64_t>(
      std::ceil(opts.cap_scale * std::cbrt(static_cast<double>(n) * std::max(1.0, dbar)) * logn));
  const auto cap_low =
      static_cast<std::uint64_t>(std::ceil(opts.cap_scale * sqrt_n * logn));

  std::vector<Edge> all;
  for (std::uint32_t e = 0; (1ULL << e) <= static_cast<std::uint64_t>(std::ceil(guess_hi)); ++e) {
    const double guess = static_cast<double>(1ULL << e);
    if (guess < guess_lo / 2.0) continue;  // below the ladder

    if (guess >= sqrt_n) {
      if (stats) ++stats->high_instances;
      SimHighOptions h;
      h.eps = opts.eps;
      h.delta = opts.delta;
      h.c = opts.c;
      h.seed = opts.seed ^ high_tag(e);  // instance-specific shared sample S
      h.average_degree = guess;
      h.cap_edges_per_player = cap_high;
      SimMessage part = sim_high_message(player, h);
      msg.truncated = msg.truncated || part.truncated;
      all.insert(all.end(), part.edges.begin(), part.edges.end());
    } else {
      if (stats) ++stats->low_instances;
      SimLowOptions l;
      l.eps = opts.eps;
      l.delta = opts.delta;
      l.c = opts.c;
      l.seed = opts.seed;  // tags distinguish instances; R is shared
      l.average_degree = guess;
      l.cap_edges_per_player = cap_low;
      l.s_tag = low_s_tag(e);
      l.r_tag = kSharedRTag;
      SimMessage part = sim_low_message(player, l);
      msg.truncated = msg.truncated || part.truncated;
      all.insert(all.end(), part.edges.begin(), part.edges.end());
    }
  }

  // The referee only needs the union of the instances' edges, so the player
  // deduplicates before sending.
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  msg.edges = std::move(all);

  if (opts.cap_edges_per_player != 0) {
    apply_cap(msg, static_cast<std::size_t>(opts.cap_edges_per_player));
  }
  return msg;
}

SimResult sim_oblivious_find_triangle(std::span<const PlayerInput> players,
                                      const SimObliviousOptions& opts) {
  if (players.empty()) throw std::invalid_argument("sim_oblivious_find_triangle: no players");
  std::vector<SimMessage> messages;
  messages.reserve(players.size());
  for (const auto& p : players) messages.push_back(sim_oblivious_message(p, opts));
  return finalize_simultaneous(players.front().n(), std::move(messages));
}

}  // namespace tft
