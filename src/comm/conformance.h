#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/channel.h"
#include "comm/model.h"
#include "comm/transcript.h"
#include "util/pool.h"

/// \file conformance.h
/// The model-conformance referee: replays a Transcript's MessageEvent
/// stream against a per-CommModel rule machine and reports every structural
/// violation. Protocols self-charge their transcripts, so a charging bug
/// would silently corrupt every measured exponent; the referee turns the
/// models' structural restrictions (Section 2 of the paper) into enforced
/// invariants instead of conventions.
///
/// Rules enforced per model (see PROTOCOLS.md "Model invariants"):
///   * simultaneous — exactly one player->referee message per speaking
///     player, zero referee->player bits;
///   * one-way      — sender indices non-decreasing (no back-edges), the
///     last player only outputs (sends nothing), zero downstream bits;
///   * coordinator  — downstream traffic occurs only as complete broadcast
///     sweeps: k consecutive coordinator->player events with identical
///     (bits, phase), one per player in index order (the private-channel
///     announcement convention every building block follows);
///   * blackboard   — no private downstream messages: a coordinator->player
///     event either targets player 0 (a board post, charged once) or is
///     part of a complete k-player sweep (a legacy private-channel
///     simulation, which never understates the blackboard cost).
/// All models additionally require the event stream to reproduce the
/// per-player / per-direction / per-phase tallies exactly (no unrecorded
/// charges), so a protocol cannot hide traffic by toggling event recording.
///
/// Every full-protocol entry point in src/core/ and src/streaming/ runs its
/// transcript through `run_checked`, so tests and benches execute under the
/// referee by default; benches may opt out with `--conformance=0` (next to
/// `--threads`).

namespace tft {

enum class ViolationKind {
  kEventsNotRecorded,    ///< bits were charged but the event stream is incomplete
  kTallyMismatch,        ///< events do not reproduce the per-player/phase tallies
  kBadPlayerIndex,       ///< event names a player outside [0, k)
  kMultipleUpMessages,   ///< simultaneous: a player sent more than one message
  kDownstreamForbidden,  ///< simultaneous/one-way: referee/downstream bits exist
  kOrderViolation,       ///< one-way: a back-edge (earlier player spoke after a later one)
  kSilentPlayerSpoke,    ///< one-way: the output player transmitted
  kBrokenBroadcast,      ///< coordinator: downstream event outside a complete sweep
  kPrivateDownstream,    ///< blackboard: private coordinator->player message
};

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kTallyMismatch;
  /// Index into Transcript::events() of the offending event (or the first
  /// event of the offending run); SIZE_MAX for stream-level violations.
  std::size_t event_index = SIZE_MAX;
  std::size_t player = SIZE_MAX;  ///< offending player, if one is implicated
  std::string detail;             ///< human-readable specifics
};

/// Typed outcome of replaying one transcript against one model's rules.
struct ConformanceReport {
  CommModel model = CommModel::kCoordinator;
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] bool has(ViolationKind k) const noexcept;
  [[nodiscard]] std::string to_string() const;
};

/// Replay `t`'s event stream against `model`'s rule machine. Pure function
/// of the transcript; never throws on violations (it reports them).
[[nodiscard]] ConformanceReport check_conformance(CommModel model, const Transcript& t);

/// Thrown by enforce_conformance / run_checked on a non-conforming run.
class ConformanceError : public std::logic_error {
 public:
  explicit ConformanceError(ConformanceReport r)
      : std::logic_error(r.to_string()), report(std::move(r)) {}
  ConformanceReport report;
};

/// Global referee switch (default on). Benches flip it via --conformance=0;
/// reads/writes are atomic so parallel trial engines may consult it freely.
void set_conformance_checking(bool on) noexcept;
[[nodiscard]] bool conformance_checking() noexcept;

/// Checks `t` against `model` and throws ConformanceError on any violation.
/// No-op when checking is globally disabled.
void enforce_conformance(CommModel model, const Transcript& t);

/// Canonical plain-text rendering of a transcript's event stream, used by
/// the golden-transcript regression files. One header line, one line per
/// event, one totals line; stable across platforms and thread counts.
[[nodiscard]] std::string format_transcript(CommModel model, const Transcript& t);

/// Scoped capture of every checked protocol run on the current thread:
/// while a TranscriptCapture is alive, run_checked records events even if
/// checking is disabled and appends a copy of each finished transcript.
/// Used by the golden-transcript tests and the conformance dump tool.
class TranscriptCapture {
 public:
  TranscriptCapture();
  ~TranscriptCapture();
  TranscriptCapture(const TranscriptCapture&) = delete;
  TranscriptCapture& operator=(const TranscriptCapture&) = delete;

  struct Run {
    CommModel model;
    Transcript transcript;
  };
  [[nodiscard]] const std::vector<Run>& runs() const noexcept { return runs_; }

 private:
  friend void detail_capture_run(CommModel, const Transcript&);
  std::vector<Run> runs_;
  TranscriptCapture* prev_ = nullptr;
};

namespace detail {
/// True iff a TranscriptCapture is active on this thread (events must then
/// be recorded regardless of the global switch).
[[nodiscard]] bool capture_active() noexcept;
}  // namespace detail

/// Hand the finished transcript to the active capture, if any.
void detail_capture_run(CommModel model, const Transcript& t);

/// The conformance wrapper every full-protocol entry point routes through:
/// builds the run's Transcript (event recording tied to the referee switch),
/// executes `body(Channel)`, replays the transcript against `model`'s rules
/// and throws ConformanceError on any violation. Returns body's result.
///
/// The body receives a Channel — the same charging API as the Transcript,
/// but routed through the thread's installed ChannelSink, so the identical
/// protocol code runs in legacy simulated mode (no sink: charges are pure
/// bookkeeping) or executed mode (net::NetSession sink: every charge ships
/// a real serialized frame, and the runtime cross-checks delivered wire
/// bits against this transcript).
/// The run's Transcript comes from the per-thread pool (util/pool.h): trial
/// loops reuse the retired transcript's tally and event storage instead of
/// reallocating per run. Pooled transcripts are reset to the
/// freshly-constructed state first, so results are byte-identical with
/// pooling on or off.
template <typename Fn>
auto run_checked(CommModel model, std::size_t num_players, std::uint64_t universe_n, Fn&& body) {
  auto lease = acquire_pooled<Transcript>(
      [&] { return std::make_unique<Transcript>(num_players, universe_n); },
      [&](Transcript& pooled) { pooled.reset(num_players, universe_n); });
  Transcript& t = *lease;
  t.set_record_events(conformance_checking() || detail::capture_active());
  static_assert(!std::is_void_v<std::invoke_result_t<Fn&, Channel>>,
                "run_checked bodies return the protocol result");
  auto result = body(Channel(t));
  enforce_conformance(model, t);
  detail_capture_run(model, t);
  return result;
}

}  // namespace tft
