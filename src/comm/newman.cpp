#include "comm/newman.h"

#include <cmath>
#include <stdexcept>

#include "util/bits.h"
#include "util/rng.h"

namespace tft {

NewmanTable::NewmanTable(std::uint64_t master_seed, std::uint64_t n, std::uint64_t k,
                         double delta, double scale)
    : master_seed_(master_seed) {
  if (delta <= 0.0 || delta >= 1.0) throw std::invalid_argument("NewmanTable: bad delta");
  const double logn = std::log2(static_cast<double>(std::max<std::uint64_t>(n, 2)));
  num_seeds_ = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(
             std::ceil(scale * static_cast<double>(k) * logn / (delta * delta))));
}

NewmanTable::NewmanTable(std::uint64_t master_seed, std::uint64_t num_seeds)
    : master_seed_(master_seed), num_seeds_(num_seeds) {
  if (num_seeds_ == 0) throw std::invalid_argument("NewmanTable: empty table");
}

std::uint64_t NewmanTable::seed(std::uint64_t index) const {
  if (index >= num_seeds_) throw std::out_of_range("NewmanTable::seed");
  return mix_hash(master_seed_, 0x4E574D4EULL, index);  // "NWMN"
}

std::uint64_t NewmanTable::announce_cost_bits(std::uint64_t k) const {
  // Up once, relayed down to the k-1 others.
  return count_bits(num_seeds_ - 1) * k;
}

SuccessRate NewmanTable::empirical_success(
    const std::function<bool(std::uint64_t)>& protocol) const {
  SuccessRate rate;
  rate.trials = num_seeds_;
  for (std::uint64_t i = 0; i < num_seeds_; ++i) {
    if (protocol(seed(i))) ++rate.successes;
  }
  return rate;
}

}  // namespace tft
