#include "comm/transcript.h"

#include <numeric>
#include <stdexcept>

namespace tft {

void Transcript::charge(std::size_t player, Direction dir, std::uint64_t bits,
                        std::uint64_t phase) {
  if (player >= up_bits_.size()) throw std::out_of_range("Transcript::charge: bad player index");
  total_bits_ += bits;
  if (dir == Direction::kPlayerToCoordinator) {
    up_bits_[player] += bits;
    ++up_msgs_[player];
  } else {
    down_bits_[player] += bits;
    ++down_msgs_[player];
  }
  if (phase >= phase_bits_.size()) phase_bits_.resize(phase + 1, 0);
  phase_bits_[phase] += bits;
  if (record_events_) events_.push_back({player, dir, bits, phase});
}

void Transcript::charge_broadcast(std::uint64_t bits_per_player, std::uint64_t phase) {
  for (std::size_t j = 0; j < up_bits_.size(); ++j) {
    charge(j, Direction::kCoordinatorToPlayer, bits_per_player, phase);
  }
}

std::uint64_t Transcript::upstream_bits() const noexcept {
  return std::accumulate(up_bits_.begin(), up_bits_.end(), std::uint64_t{0});
}

std::uint64_t Transcript::downstream_bits() const noexcept {
  return std::accumulate(down_bits_.begin(), down_bits_.end(), std::uint64_t{0});
}

std::uint64_t Transcript::phase_bits(std::uint64_t phase) const noexcept {
  return phase < phase_bits_.size() ? phase_bits_[phase] : 0;
}

void Transcript::merge(const Transcript& other) {
  if (other.up_bits_.size() != up_bits_.size() || other.universe_n_ != universe_n_) {
    throw std::invalid_argument("Transcript::merge: mismatched player count or universe");
  }
  total_bits_ += other.total_bits_;
  for (std::size_t j = 0; j < up_bits_.size(); ++j) {
    up_bits_[j] += other.up_bits_[j];
    down_bits_[j] += other.down_bits_[j];
    up_msgs_[j] += other.up_msgs_[j];
    down_msgs_[j] += other.down_msgs_[j];
  }
  if (other.phase_bits_.size() > phase_bits_.size()) {
    phase_bits_.reserve(other.phase_bits_.size());
    phase_bits_.resize(other.phase_bits_.size(), 0);
  }
  for (std::size_t ph = 0; ph < other.phase_bits_.size(); ++ph) {
    phase_bits_[ph] += other.phase_bits_[ph];
  }
  // One up-front reservation instead of O(log) doubling reallocations when
  // many partial transcripts are folded into one (parallel trial merges).
  events_.reserve(events_.size() + other.events_.size());
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

void Transcript::reset(std::size_t num_players, std::uint64_t universe_n) {
  universe_n_ = universe_n;
  total_bits_ = 0;
  up_bits_.assign(num_players, 0);
  down_bits_.assign(num_players, 0);
  up_msgs_.assign(num_players, 0);
  down_msgs_.assign(num_players, 0);
  events_.clear();
  phase_bits_.clear();
  record_events_ = true;
}

}  // namespace tft
