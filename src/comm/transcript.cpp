#include "comm/transcript.h"

#include <numeric>
#include <stdexcept>

namespace tft {

void Transcript::charge(std::size_t player, Direction dir, std::uint64_t bits,
                        std::uint64_t phase) {
  if (player >= up_bits_.size()) throw std::out_of_range("Transcript::charge: bad player index");
  total_bits_ += bits;
  if (dir == Direction::kPlayerToCoordinator) {
    up_bits_[player] += bits;
    ++up_msgs_[player];
  } else {
    down_bits_[player] += bits;
    ++down_msgs_[player];
  }
  if (phase >= phase_bits_.size()) phase_bits_.resize(phase + 1, 0);
  phase_bits_[phase] += bits;
  if (record_events_) events_.push_back({player, dir, bits, phase});
}

void Transcript::charge_broadcast(std::uint64_t bits_per_player, std::uint64_t phase) {
  for (std::size_t j = 0; j < up_bits_.size(); ++j) {
    charge(j, Direction::kCoordinatorToPlayer, bits_per_player, phase);
  }
}

std::uint64_t Transcript::upstream_bits() const noexcept {
  return std::accumulate(up_bits_.begin(), up_bits_.end(), std::uint64_t{0});
}

std::uint64_t Transcript::downstream_bits() const noexcept {
  return std::accumulate(down_bits_.begin(), down_bits_.end(), std::uint64_t{0});
}

std::uint64_t Transcript::phase_bits(std::uint64_t phase) const noexcept {
  return phase < phase_bits_.size() ? phase_bits_[phase] : 0;
}

}  // namespace tft
