#include "comm/cost.h"

// CostMeter is header-only; this translation unit exists so the comm module
// shows up as a distinct object in the library and to anchor the header's
// include-self-sufficiency in the build.

namespace tft {}
