#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.h"

/// \file wire.h
/// Concrete wire encoding for protocol messages.
///
/// The Transcript charges idealized bit costs (the measure the paper's
/// theorems are stated in). This codec backs those charges with an actual
/// serialization: a MSB-first bit stream with fixed-width fields, Elias-
/// gamma-coded counters, and delta-coded sorted edge lists. The test suite
/// checks that real encoded sizes track the charged costs (the edge-list
/// encoding is in fact slightly *smaller* than the charged 2⌈log n⌉ bits
/// per edge once lists are sorted, so the idealized accounting is honest).

namespace tft {

/// Typed decode failure: truncated input, a bit_size that overruns the
/// byte buffer, or a corrupt payload (impossible counts, out-of-universe
/// vertex ids). Derives from std::out_of_range so callers that only guard
/// against reading past the end keep working.
class WireError : public std::out_of_range {
 public:
  explicit WireError(const std::string& what) : std::out_of_range(what) {}
};

/// MSB-first bit writer.
class BitWriter {
 public:
  void put_bit(bool b);
  /// Lowest `width` bits of `value`, MSB first. width <= 64.
  void put_bits(std::uint64_t value, std::uint32_t width);
  /// Elias-gamma code for value >= 0 (stored as value + 1).
  void put_gamma(std::uint64_t value);

  [[nodiscard]] std::uint64_t bit_size() const noexcept { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t bits_ = 0;
};

/// MSB-first bit reader over a BitWriter's output. Every read is bounds-
/// checked: reading past `bit_size` — or past the actual byte buffer, if a
/// corrupt `bit_size` overstates it — throws WireError instead of touching
/// memory it does not own.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes, std::uint64_t bit_size) noexcept
      : bytes_(bytes),
        bit_size_(std::min<std::uint64_t>(bit_size, bytes.size() * std::uint64_t{8})) {}

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(std::uint32_t width);
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bit_size_; }
  /// Bits left before the reader runs dry.
  [[nodiscard]] std::uint64_t remaining() const noexcept { return bit_size_ - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::uint64_t bit_size_;
  std::uint64_t pos_ = 0;
};

/// Encode a list of edges over an n-vertex universe. The list is sorted and
/// delta-coded: a gamma-coded length, then per edge the (gamma-coded) delta
/// of u from the previous u and a fixed-width v.
void encode_edge_list(BitWriter& w, Vertex n, std::span<const Edge> edges);

/// Decode what encode_edge_list wrote. Throws WireError on truncated or
/// corrupt input (a length that cannot fit in the remaining bits, or an
/// endpoint outside the n-vertex universe) — it never reads past the
/// buffer and never trusts a corrupt count for allocation.
[[nodiscard]] std::vector<Edge> decode_edge_list(BitReader& r, Vertex n);

/// Encode a sorted vertex list (delta + gamma).
void encode_vertex_list(BitWriter& w, Vertex n, std::span<const Vertex> vertices);
/// Throws WireError on truncated/corrupt input (see decode_edge_list).
[[nodiscard]] std::vector<Vertex> decode_vertex_list(BitReader& r, Vertex n);

/// Size in bits that encode_edge_list would produce (without materializing).
[[nodiscard]] std::uint64_t encoded_edge_list_bits(Vertex n, std::span<const Edge> edges);

}  // namespace tft
