#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

/// \file wire.h
/// Concrete wire encoding for protocol messages.
///
/// The Transcript charges idealized bit costs (the measure the paper's
/// theorems are stated in). This codec backs those charges with an actual
/// serialization: a MSB-first bit stream with fixed-width fields, Elias-
/// gamma-coded counters, and delta-coded sorted edge lists. The test suite
/// checks that real encoded sizes track the charged costs (the edge-list
/// encoding is in fact slightly *smaller* than the charged 2⌈log n⌉ bits
/// per edge once lists are sorted, so the idealized accounting is honest).

namespace tft {

/// MSB-first bit writer.
class BitWriter {
 public:
  void put_bit(bool b);
  /// Lowest `width` bits of `value`, MSB first. width <= 64.
  void put_bits(std::uint64_t value, std::uint32_t width);
  /// Elias-gamma code for value >= 0 (stored as value + 1).
  void put_gamma(std::uint64_t value);

  [[nodiscard]] std::uint64_t bit_size() const noexcept { return bits_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t bits_ = 0;
};

/// MSB-first bit reader over a BitWriter's output.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes, std::uint64_t bit_size) noexcept
      : bytes_(bytes), bit_size_(bit_size) {}

  [[nodiscard]] bool get_bit();
  [[nodiscard]] std::uint64_t get_bits(std::uint32_t width);
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bit_size_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::uint64_t bit_size_;
  std::uint64_t pos_ = 0;
};

/// Encode a list of edges over an n-vertex universe. The list is sorted and
/// delta-coded: a gamma-coded length, then per edge the (gamma-coded) delta
/// of u from the previous u and a fixed-width v.
void encode_edge_list(BitWriter& w, Vertex n, std::span<const Edge> edges);

/// Decode what encode_edge_list wrote.
[[nodiscard]] std::vector<Edge> decode_edge_list(BitReader& r, Vertex n);

/// Encode a sorted vertex list (delta + gamma).
void encode_vertex_list(BitWriter& w, Vertex n, std::span<const Vertex> vertices);
[[nodiscard]] std::vector<Vertex> decode_vertex_list(BitReader& r, Vertex n);

/// Size in bits that encode_edge_list would produce (without materializing).
[[nodiscard]] std::uint64_t encoded_edge_list_bits(Vertex n, std::span<const Edge> edges);

}  // namespace tft
