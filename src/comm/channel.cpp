#include "comm/channel.h"

namespace tft {

namespace {
thread_local ChannelSink* t_sink = nullptr;
}  // namespace

ChannelSink* thread_channel_sink() noexcept { return t_sink; }

ChannelSinkScope::ChannelSinkScope(ChannelSink* sink) noexcept : prev_(t_sink) { t_sink = sink; }

ChannelSinkScope::~ChannelSinkScope() { t_sink = prev_; }

}  // namespace tft
