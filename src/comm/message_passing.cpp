#include "comm/message_passing.h"

#include <stdexcept>

#include "util/bits.h"

namespace tft {

void MessagePassingSimulator::deliver(const MpMessage& msg) {
  if (msg.from >= k_ || msg.to >= k_) {
    throw std::out_of_range("MessagePassingSimulator::deliver: bad player index");
  }
  if (msg.from == msg.to) {
    throw std::invalid_argument("MessagePassingSimulator::deliver: self message");
  }
  mp_bits_ += msg.bits;
  // Upstream: payload + recipient id header.
  transcript_.charge(msg.from, Direction::kPlayerToCoordinator,
                     msg.bits + vertex_bits(k_), /*phase=*/0);
  // Downstream: forwarded payload.
  transcript_.charge(msg.to, Direction::kCoordinatorToPlayer, msg.bits, /*phase=*/0);
}

double MessagePassingSimulator::overhead_bound(std::uint64_t payload_bits, std::size_t k) {
  if (payload_bits == 0) return 0.0;
  return 2.0 + static_cast<double>(vertex_bits(k)) / static_cast<double>(payload_bits);
}

double simulate_message_passing_overhead(std::size_t k, std::uint64_t universe_n,
                                         const std::vector<MpMessage>& messages) {
  MessagePassingSimulator sim(k, universe_n);
  for (const auto& m : messages) sim.deliver(m);
  return sim.overhead_factor();
}

}  // namespace tft
