#include "comm/conformance.h"

#include <atomic>
#include <cassert>
#include <sstream>

namespace tft {

namespace {

std::atomic<bool> g_checking{true};
thread_local TranscriptCapture* g_capture = nullptr;

constexpr auto kUp = Direction::kPlayerToCoordinator;
constexpr auto kDown = Direction::kCoordinatorToPlayer;

void add(ConformanceReport& r, ViolationKind kind, std::size_t event_index, std::size_t player,
         std::string detail) {
  r.violations.push_back(Violation{kind, event_index, player, std::move(detail)});
}

/// Stream-level accounting: the recorded events must reproduce every tally
/// the transcript reports (per player, per direction, per phase). A
/// protocol that charges bits while event recording is off — or mutates
/// tallies without events — fails here.
void check_accounting(const Transcript& t, ConformanceReport& r) {
  const auto& events = t.events();
  if (t.total_bits() > 0 && events.empty()) {
    add(r, ViolationKind::kEventsNotRecorded, SIZE_MAX, SIZE_MAX,
        "bits were charged but no events were recorded (set_record_events(false)?)");
    return;
  }
  const std::size_t k = t.num_players();
  std::vector<std::uint64_t> up(k, 0);
  std::vector<std::uint64_t> down(k, 0);
  std::vector<std::size_t> up_msgs(k, 0);
  std::vector<std::size_t> down_msgs(k, 0);
  std::vector<std::uint64_t> phases;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const MessageEvent& e = events[i];
    if (e.player >= k) {
      add(r, ViolationKind::kBadPlayerIndex, i, e.player,
          "event names player " + std::to_string(e.player) + " of " + std::to_string(k));
      return;
    }
    if (e.direction == kUp) {
      up[e.player] += e.bits;
      ++up_msgs[e.player];
    } else {
      down[e.player] += e.bits;
      ++down_msgs[e.player];
    }
    if (e.phase >= phases.size()) phases.resize(e.phase + 1, 0);
    phases[e.phase] += e.bits;
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (up[j] != t.upstream_bits(j) || down[j] != t.downstream_bits(j) ||
        up_msgs[j] != t.upstream_messages(j) || down_msgs[j] != t.downstream_messages(j)) {
      add(r, ViolationKind::kTallyMismatch, SIZE_MAX, j,
          "player " + std::to_string(j) + " events account for " + std::to_string(up[j]) + "up/" +
              std::to_string(down[j]) + "down bits but tallies say " +
              std::to_string(t.upstream_bits(j)) + "/" + std::to_string(t.downstream_bits(j)));
      return;
    }
  }
  const std::size_t num_phases = std::max(phases.size(), t.num_phases());
  for (std::size_t ph = 0; ph < num_phases; ++ph) {
    const std::uint64_t from_events = ph < phases.size() ? phases[ph] : 0;
    if (from_events != t.phase_bits(ph)) {
      add(r, ViolationKind::kTallyMismatch, SIZE_MAX, SIZE_MAX,
          "phase " + std::to_string(ph) + " events account for " + std::to_string(from_events) +
              " bits but the phase tally says " + std::to_string(t.phase_bits(ph)));
      return;
    }
  }
}

/// Simultaneous (Section 3.4): one player->referee message per speaking
/// player, nothing ever flows back.
void check_simultaneous(const Transcript& t, ConformanceReport& r) {
  std::vector<std::size_t> msgs(t.num_players(), 0);
  const auto& events = t.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const MessageEvent& e = events[i];
    if (e.direction == kDown) {
      add(r, ViolationKind::kDownstreamForbidden, i, e.player,
          "referee sent " + std::to_string(e.bits) + " bits to player " +
              std::to_string(e.player) + " in a simultaneous protocol");
      return;
    }
    if (++msgs[e.player] > 1) {
      add(r, ViolationKind::kMultipleUpMessages, i, e.player,
          "player " + std::to_string(e.player) + " sent a second message");
      return;
    }
  }
}

/// One-way (Section 4.2): players speak in index order — once player j+1
/// has spoken, player j is done (no back-edges) — and the last player only
/// announces the output (sends nothing). No downstream traffic.
void check_one_way(const Transcript& t, ConformanceReport& r) {
  const std::size_t k = t.num_players();
  const auto& events = t.events();
  std::size_t frontier = 0;  // highest player index that has spoken
  for (std::size_t i = 0; i < events.size(); ++i) {
    const MessageEvent& e = events[i];
    if (e.direction == kDown) {
      add(r, ViolationKind::kDownstreamForbidden, i, e.player,
          "downstream message to player " + std::to_string(e.player) + " in a one-way protocol");
      return;
    }
    if (k >= 1 && e.player == k - 1) {
      add(r, ViolationKind::kSilentPlayerSpoke, i, e.player,
          "output player " + std::to_string(e.player) + " transmitted " +
              std::to_string(e.bits) + " bits");
      return;
    }
    if (e.player < frontier) {
      add(r, ViolationKind::kOrderViolation, i, e.player,
          "player " + std::to_string(e.player) + " spoke after player " +
              std::to_string(frontier) + " (back-edge)");
      return;
    }
    frontier = e.player;
  }
}

/// True iff events[i .. i+k) is a complete broadcast sweep: k consecutive
/// coordinator->player events with identical bits and phase, covering the
/// players in index order.
bool is_broadcast_sweep(const std::vector<MessageEvent>& events, std::size_t i, std::size_t k) {
  if (i + k > events.size()) return false;
  for (std::size_t j = 0; j < k; ++j) {
    const MessageEvent& e = events[i + j];
    if (e.direction != kDown || e.player != j || e.bits != events[i].bits ||
        e.phase != events[i].phase) {
      return false;
    }
  }
  return true;
}

/// Coordinator: private channels, but every coordinator announcement in the
/// library is a broadcast, charged once per player (Section 2). The rule
/// machine therefore requires each downstream event to open a complete
/// k-player sweep; a lone "private hint" to one player is a charging bug.
void check_coordinator(const Transcript& t, ConformanceReport& r) {
  const std::size_t k = t.num_players();
  const auto& events = t.events();
  std::size_t i = 0;
  while (i < events.size()) {
    if (events[i].direction != kDown) {
      ++i;
      continue;
    }
    if (!is_broadcast_sweep(events, i, k)) {
      add(r, ViolationKind::kBrokenBroadcast, i, events[i].player,
          "downstream event is not the start of a complete " + std::to_string(k) +
              "-player broadcast sweep");
      return;
    }
    i += k;
  }
}

/// Blackboard: everything written is visible to every player, so a private
/// coordinator->player message cannot exist. A downstream event must either
/// be a board post (charged once, to player 0 by convention) or a complete
/// k-sweep (the coordinator-model simulation, which only over-charges).
void check_blackboard(const Transcript& t, ConformanceReport& r) {
  const std::size_t k = t.num_players();
  const auto& events = t.events();
  std::size_t i = 0;
  while (i < events.size()) {
    if (events[i].direction != kDown) {
      ++i;
      continue;
    }
    if (is_broadcast_sweep(events, i, k)) {
      i += k;
      continue;
    }
    if (events[i].player == 0) {
      ++i;
      continue;
    }
    add(r, ViolationKind::kPrivateDownstream, i, events[i].player,
        "private downstream message to player " + std::to_string(events[i].player) +
            " on a blackboard");
    return;
  }
}

}  // namespace

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kEventsNotRecorded: return "events-not-recorded";
    case ViolationKind::kTallyMismatch: return "tally-mismatch";
    case ViolationKind::kBadPlayerIndex: return "bad-player-index";
    case ViolationKind::kMultipleUpMessages: return "multiple-up-messages";
    case ViolationKind::kDownstreamForbidden: return "downstream-forbidden";
    case ViolationKind::kOrderViolation: return "order-violation";
    case ViolationKind::kSilentPlayerSpoke: return "silent-player-spoke";
    case ViolationKind::kBrokenBroadcast: return "broken-broadcast";
    case ViolationKind::kPrivateDownstream: return "private-downstream";
  }
  assert(!"to_string(ViolationKind): value outside the enum");
  return "?";
}

bool ConformanceReport::has(ViolationKind k) const noexcept {
  for (const Violation& v : violations) {
    if (v.kind == k) return true;
  }
  return false;
}

std::string ConformanceReport::to_string() const {
  std::ostringstream out;
  out << "conformance[" << tft::to_string(model) << "]: "
      << (ok() ? "ok" : std::to_string(violations.size()) + " violation(s)");
  for (const Violation& v : violations) {
    out << "\n  [" << tft::to_string(v.kind) << "]";
    if (v.event_index != SIZE_MAX) out << " event=" << v.event_index;
    if (v.player != SIZE_MAX) out << " player=" << v.player;
    if (!v.detail.empty()) out << " " << v.detail;
  }
  return out.str();
}

ConformanceReport check_conformance(CommModel model, const Transcript& t) {
  ConformanceReport r;
  r.model = model;
  check_accounting(t, r);
  if (!r.ok()) return r;  // the event stream is not trustworthy; stop here
  switch (model) {
    case CommModel::kSimultaneous: check_simultaneous(t, r); break;
    case CommModel::kOneWay: check_one_way(t, r); break;
    case CommModel::kCoordinator: check_coordinator(t, r); break;
    case CommModel::kBlackboard: check_blackboard(t, r); break;
  }
  return r;
}

void set_conformance_checking(bool on) noexcept {
  g_checking.store(on, std::memory_order_relaxed);
}

bool conformance_checking() noexcept { return g_checking.load(std::memory_order_relaxed); }

void enforce_conformance(CommModel model, const Transcript& t) {
  if (!conformance_checking()) return;
  ConformanceReport r = check_conformance(model, t);
  if (!r.ok()) throw ConformanceError(std::move(r));
}

std::string format_transcript(CommModel model, const Transcript& t) {
  std::ostringstream out;
  out << "transcript model=" << to_string(model) << " players=" << t.num_players()
      << " universe=" << t.universe() << " events=" << t.events().size() << "\n";
  for (const MessageEvent& e : t.events()) {
    out << "p" << e.player << " " << (e.direction == kUp ? "U" : "D") << " bits=" << e.bits
        << " phase=" << e.phase << "\n";
  }
  out << "totals up=" << t.upstream_bits() << " down=" << t.downstream_bits()
      << " total=" << t.total_bits() << "\n";
  return out.str();
}

TranscriptCapture::TranscriptCapture() : prev_(g_capture) { g_capture = this; }

TranscriptCapture::~TranscriptCapture() { g_capture = prev_; }

namespace detail {
bool capture_active() noexcept { return g_capture != nullptr; }
}  // namespace detail

void detail_capture_run(CommModel model, const Transcript& t) {
  if (g_capture != nullptr) g_capture->runs_.push_back({model, t});
}

}  // namespace tft
