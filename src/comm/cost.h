#pragma once

#include <cstdint>

#include "util/bits.h"

/// \file cost.h
/// Primitive bit-cost accounting. `CostMeter` is the single accumulation
/// point every protocol charges its communication to; the benchmark harness
/// reads `bits()` after a run. Costs follow the conventions documented in
/// util/bits.h.

namespace tft {

class CostMeter {
 public:
  void add_bits(std::uint64_t b) noexcept { bits_ += b; }
  void add_flag() noexcept { bits_ += 1; }
  void add_vertex(std::uint64_t n) noexcept { bits_ += vertex_bits(n); }
  void add_edge(std::uint64_t n) noexcept { bits_ += edge_bits(n); }
  void add_edges(std::uint64_t n, std::uint64_t m) noexcept { bits_ += m * edge_bits(n); }
  void add_count(std::uint64_t value) noexcept { bits_ += count_bits(value); }

  /// Absorbs another meter's total, for per-thread meters merged after a
  /// parallel region (bit totals are integers, so merge order is
  /// irrelevant to the result).
  void merge(const CostMeter& other) noexcept { bits_ += other.bits_; }

  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }
  void reset() noexcept { bits_ = 0; }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace tft
