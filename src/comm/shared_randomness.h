#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

/// \file shared_randomness.h
/// Shared (public) randomness, as assumed in Section 2 of the paper.
///
/// All parties hold the same seed and evaluate pure functions of
/// (seed, tag, index); no bits are ever exchanged to agree on random
/// choices. Tags identify the protocol step (phase, iteration, sub-step) so
/// distinct steps see independent streams.
///
/// The key primitive is `priority(tag, v)`: a pseudo-random 64-bit priority
/// per vertex that defines a common random permutation of V — "the first
/// vertex with respect to pi" (Algorithm 1) is the one minimizing
/// (priority, v). This avoids materializing pi while remaining identical
/// across players.

namespace tft {

/// A tag naming one use of shared randomness. Compose from protocol-specific
/// small integers; distinct tags yield (pseudo-)independent streams.
struct SharedTag {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class SharedRandomness {
 public:
  explicit SharedRandomness(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Raw 64 pseudo-random bits for (tag, index).
  [[nodiscard]] std::uint64_t value(SharedTag tag, std::uint64_t index = 0) const noexcept {
    return mix_hash(mix_hash(seed_, tag.a, tag.b), tag.c, index);
  }

  /// Uniform double in [0,1) for (tag, index).
  [[nodiscard]] double uniform(SharedTag tag, std::uint64_t index = 0) const noexcept {
    return static_cast<double>(value(tag, index) >> 11) * 0x1.0p-53;
  }

  /// Shared Bernoulli(p) coin for (tag, index) — e.g. "vertex v is in the
  /// public sample S" uses index = v.
  [[nodiscard]] bool bernoulli(SharedTag tag, std::uint64_t index, double p) const noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform(tag, index) < p;
  }

  /// Permutation priority of vertex v under the shared permutation named by
  /// `tag`. Lower priority = earlier in the permutation; ties broken by v.
  [[nodiscard]] std::uint64_t priority(SharedTag tag, std::uint64_t v) const noexcept {
    return value(tag, v);
  }

  /// True iff u precedes v in the shared permutation named by `tag`.
  [[nodiscard]] bool precedes(SharedTag tag, std::uint64_t u, std::uint64_t v) const noexcept {
    const std::uint64_t pu = priority(tag, u);
    const std::uint64_t pv = priority(tag, v);
    return pu != pv ? pu < pv : u < v;
  }

  /// Uniform vertex in [0, n) for (tag, index) — shared uniform sampling
  /// with replacement.
  [[nodiscard]] std::uint64_t uniform_vertex(SharedTag tag, std::uint64_t index,
                                             std::uint64_t n) const noexcept {
    // Multiply-shift map of 64 random bits into [0, n); bias <= n/2^64.
    const unsigned __int128 m = static_cast<unsigned __int128>(value(tag, index)) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Materialize the shared Bernoulli(p) vertex sample {v : coin(tag,v)=1}.
  /// Provided for referee-side checks and tests; players normally test
  /// membership lazily via `bernoulli`.
  [[nodiscard]] std::vector<std::uint32_t> sample_vertices(SharedTag tag, std::uint64_t n,
                                                           double p) const;

  /// A private Rng forked from the shared seed — for referee-side decisions
  /// that need a stateful stream (never used for player coordination).
  [[nodiscard]] Rng fork(SharedTag tag) const noexcept { return Rng(value(tag)); }

 private:
  std::uint64_t seed_;
};

}  // namespace tft
