#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/model.h"
#include "util/bits.h"

/// \file transcript.h
/// Per-run communication transcript. Beyond the raw bit total, the
/// transcript records per-player / per-direction tallies and message events
/// so tests can assert structural invariants of each model (e.g. a
/// simultaneous protocol sends exactly one player->referee message per
/// player and zero referee->player bits).

namespace tft {

struct MessageEvent {
  std::size_t player = 0;  ///< 0-based player index; coordinator is not a player
  Direction direction = Direction::kPlayerToCoordinator;
  std::uint64_t bits = 0;
  std::uint64_t phase = 0;  ///< protocol-defined phase tag
};

class Transcript {
 public:
  explicit Transcript(std::size_t num_players, std::uint64_t universe_n)
      : universe_n_(universe_n),
        up_bits_(num_players, 0),
        down_bits_(num_players, 0),
        up_msgs_(num_players, 0),
        down_msgs_(num_players, 0) {}

  /// Charge `bits` to one message between `player` and the coordinator.
  void charge(std::size_t player, Direction dir, std::uint64_t bits, std::uint64_t phase = 0);

  // Convenience charges using the universe size given at construction.
  void charge_flag(std::size_t player, Direction dir, std::uint64_t phase = 0) {
    charge(player, dir, 1, phase);
  }
  void charge_vertex(std::size_t player, Direction dir, std::uint64_t phase = 0) {
    charge(player, dir, vertex_bits(universe_n_), phase);
  }
  void charge_edges(std::size_t player, Direction dir, std::uint64_t m, std::uint64_t phase = 0) {
    charge(player, dir, m * edge_bits(universe_n_), phase);
  }
  void charge_count(std::size_t player, Direction dir, std::uint64_t value,
                    std::uint64_t phase = 0) {
    charge(player, dir, count_bits(value), phase);
  }

  /// A broadcast from the coordinator to every player (coordinator model:
  /// k separate private-channel messages, so cost is multiplied by k).
  void charge_broadcast(std::uint64_t bits_per_player, std::uint64_t phase = 0);

  [[nodiscard]] std::uint64_t total_bits() const noexcept { return total_bits_; }
  [[nodiscard]] std::uint64_t player_bits(std::size_t j) const {
    return up_bits_.at(j) + down_bits_.at(j);
  }
  [[nodiscard]] std::uint64_t upstream_bits() const noexcept;
  [[nodiscard]] std::uint64_t downstream_bits() const noexcept;
  [[nodiscard]] std::uint64_t upstream_bits(std::size_t j) const { return up_bits_.at(j); }
  [[nodiscard]] std::uint64_t downstream_bits(std::size_t j) const { return down_bits_.at(j); }
  [[nodiscard]] std::size_t upstream_messages(std::size_t j) const { return up_msgs_.at(j); }
  [[nodiscard]] std::size_t downstream_messages(std::size_t j) const { return down_msgs_.at(j); }
  [[nodiscard]] std::size_t num_players() const noexcept { return up_bits_.size(); }
  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_n_; }
  [[nodiscard]] const std::vector<MessageEvent>& events() const noexcept { return events_; }

  /// Bits charged with the given phase tag (all players, both directions).
  /// Tracked unconditionally (independent of event recording).
  [[nodiscard]] std::uint64_t phase_bits(std::uint64_t phase) const noexcept;
  /// One past the highest phase tag charged so far.
  [[nodiscard]] std::size_t num_phases() const noexcept { return phase_bits_.size(); }

  /// When true, each charge appends a MessageEvent (costs memory; default on —
  /// benches on very large runs may disable it).
  void set_record_events(bool on) noexcept { record_events_ = on; }
  [[nodiscard]] bool record_events() const noexcept { return record_events_; }

  /// Fold another transcript's charges into this one: tallies, per-phase
  /// totals and (recorded) events are summed / appended. Both transcripts
  /// must agree on the player count and universe. Partial transcripts that
  /// ran with set_record_events(false) still merge their tallies and phase
  /// totals exactly.
  void merge(const Transcript& other);

  /// Re-initialize to the freshly-constructed state for (num_players,
  /// universe_n) while keeping the vectors' capacity, so a pooled transcript
  /// (util/pool.h) reuses its event/tally storage across runs instead of
  /// reallocating. A reset transcript is indistinguishable from a
  /// newly-constructed one in every observable way.
  void reset(std::size_t num_players, std::uint64_t universe_n);

  /// Pre-reserve capacity for `hint` recorded events (no-op on the tallies).
  void reserve_events(std::size_t hint) { events_.reserve(hint); }
  /// Capacity currently backing the event vector (pool sizing/telemetry).
  [[nodiscard]] std::size_t event_capacity() const noexcept { return events_.capacity(); }

 private:
  std::uint64_t universe_n_;
  std::uint64_t total_bits_ = 0;
  std::vector<std::uint64_t> up_bits_;
  std::vector<std::uint64_t> down_bits_;
  std::vector<std::size_t> up_msgs_;
  std::vector<std::size_t> down_msgs_;
  std::vector<MessageEvent> events_;
  std::vector<std::uint64_t> phase_bits_;  // always-on per-phase accumulator
  bool record_events_ = true;
};

}  // namespace tft
