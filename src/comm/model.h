#pragma once

#include <cassert>

/// \file model.h
/// Communication-model tags (Section 2 of the paper).

namespace tft {

/// Who can talk to whom, and in how many rounds.
enum class CommModel {
  kCoordinator,   ///< unrestricted rounds, players <-> coordinator only
  kSimultaneous,  ///< one message per player to the referee
  kOneWay,        ///< Alice/Bob exchange freely, Charlie observes and outputs
  kBlackboard,    ///< every message is seen by all players
};

/// Direction of a message for transcript accounting.
enum class Direction {
  kPlayerToCoordinator,
  kCoordinatorToPlayer,
};

[[nodiscard]] constexpr const char* to_string(CommModel m) noexcept {
  switch (m) {
    case CommModel::kCoordinator: return "coordinator";
    case CommModel::kSimultaneous: return "simultaneous";
    case CommModel::kOneWay: return "one-way";
    case CommModel::kBlackboard: return "blackboard";
  }
  // Out-of-range values can only come from casts; make them loud in debug
  // builds instead of silently labelling transcripts "?".
  assert(!"to_string(CommModel): value outside the enum");
  return "?";
}

}  // namespace tft
