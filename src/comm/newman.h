#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.h"

/// \file newman.h
/// Newman's theorem (Section 2): any protocol using shared randomness can
/// be run with private randomness at an extra cost of O(log) bits — the
/// parties pre-agree (as part of the protocol description) on a table of
/// t = O(k log n / delta^2) seeds; one player privately picks a uniform
/// index and announces it, and everyone then runs the shared-randomness
/// protocol with the chosen table entry.
///
/// The library's protocols all take an explicit seed, so the transformation
/// is a wrapper: `NewmanTable` derives the seed table deterministically
/// from a master seed, `announce_cost_bits` is the extra communication, and
/// `empirical_success` lets tests check that success over the fixed table
/// concentrates around the true (fresh-randomness) success probability —
/// the content of the theorem, observed empirically.

namespace tft {

class NewmanTable {
 public:
  /// Table sized per the theorem: t = ceil(scale * k * log2(n) / delta^2).
  NewmanTable(std::uint64_t master_seed, std::uint64_t n, std::uint64_t k, double delta,
              double scale = 1.0);

  /// Explicit size.
  NewmanTable(std::uint64_t master_seed, std::uint64_t num_seeds);

  [[nodiscard]] std::uint64_t size() const noexcept { return num_seeds_; }
  [[nodiscard]] std::uint64_t seed(std::uint64_t index) const;

  /// Communication of announcing the chosen index in the coordinator model:
  /// the picking player sends it up and the coordinator relays it to the
  /// other k-1 players.
  [[nodiscard]] std::uint64_t announce_cost_bits(std::uint64_t k) const;

  /// Run `protocol(seed)` for every table entry and return the success
  /// rate — the private-randomness protocol's success probability.
  [[nodiscard]] SuccessRate empirical_success(
      const std::function<bool(std::uint64_t)>& protocol) const;

 private:
  std::uint64_t master_seed_;
  std::uint64_t num_seeds_;
};

}  // namespace tft
