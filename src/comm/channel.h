#pragma once

#include <cstddef>
#include <cstdint>

#include "comm/transcript.h"
#include "util/bits.h"

/// \file channel.h
/// The communication facade every protocol charges through.
///
/// A Channel is a two-pointer handle over the run's Transcript plus an
/// optional ChannelSink. In the legacy *simulated* mode the sink is null and
/// a Channel is exactly a Transcript: every charge_* call updates the same
/// tallies and message events as before. In *executed* mode (src/net/) the
/// driver thread installs a sink — the transport session — and every charge
/// additionally ships a real serialized frame across a thread or socket
/// boundary to the charged endpoint. Protocol bodies are written once
/// against this facade and run unmodified in either mode; the executed
/// runtime then cross-checks the bits that actually arrived on the wire
/// against the transcript the protocol charged (net::verify_accounting).
///
/// Channels convert implicitly from Transcript&, so call sites holding a
/// raw Transcript (tests, harnesses) keep working; the conversion picks up
/// the calling thread's installed sink, if any.

namespace tft {

/// Observer of every charge routed through a Channel. Implemented by the
/// executed-transport session (net::NetSession), which turns each charge
/// into a frame on the wire.
class ChannelSink {
 public:
  virtual ~ChannelSink() = default;
  /// Called after the transcript charge, with identical arguments. May
  /// throw (e.g. net::NetError on an unrecoverable link failure); the
  /// charge has already been recorded by then, mirroring a sender whose
  /// message died in flight after being paid for.
  virtual void on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                         std::uint64_t phase) = 0;
  /// Barrier: deliver everything charged so far before returning. A no-op
  /// by default (simulated mode has nothing in flight); the executed
  /// transport drains its ARQ pipeline end to end. Protocols call this via
  /// Channel::flush() at round boundaries where they need wire-level
  /// synchrony beyond what the automatic phase barrier provides.
  virtual void on_flush() {}
};

/// The calling thread's installed sink (null in simulated mode).
[[nodiscard]] ChannelSink* thread_channel_sink() noexcept;

/// RAII installer: while alive, Channels constructed on this thread route
/// their charges to `sink`. Nests (restores the previous sink on exit).
class ChannelSinkScope {
 public:
  explicit ChannelSinkScope(ChannelSink* sink) noexcept;
  ~ChannelSinkScope();
  ChannelSinkScope(const ChannelSinkScope&) = delete;
  ChannelSinkScope& operator=(const ChannelSinkScope&) = delete;

 private:
  ChannelSink* prev_;
};

/// Value-type facade: copy freely, pass by value. Mirrors the Transcript
/// charging API bit-for-bit (same util/bits.h widths) and forwards the
/// read-only accessors protocols consult mid-run.
class Channel {
 public:
  /*implicit*/ Channel(Transcript& t) noexcept  // NOLINT(google-explicit-constructor)
      : t_(&t), sink_(thread_channel_sink()) {}

  /// Charge `bits` to one message between `player` and the coordinator,
  /// and — in executed mode — ship a frame of exactly those bits.
  void charge(std::size_t player, Direction dir, std::uint64_t bits, std::uint64_t phase = 0) {
    t_->charge(player, dir, bits, phase);
    if (sink_ != nullptr) sink_->on_charge(player, dir, bits, phase);
  }

  void charge_flag(std::size_t player, Direction dir, std::uint64_t phase = 0) {
    charge(player, dir, 1, phase);
  }
  void charge_vertex(std::size_t player, Direction dir, std::uint64_t phase = 0) {
    charge(player, dir, vertex_bits(t_->universe()), phase);
  }
  void charge_edges(std::size_t player, Direction dir, std::uint64_t m, std::uint64_t phase = 0) {
    charge(player, dir, m * edge_bits(t_->universe()), phase);
  }
  void charge_count(std::size_t player, Direction dir, std::uint64_t value,
                    std::uint64_t phase = 0) {
    charge(player, dir, count_bits(value), phase);
  }

  /// A broadcast from the coordinator: k private-channel messages, one per
  /// player in index order (the sweep shape the conformance referee checks).
  void charge_broadcast(std::uint64_t bits_per_player, std::uint64_t phase = 0) {
    for (std::size_t j = 0; j < t_->num_players(); ++j) {
      charge(j, Direction::kCoordinatorToPlayer, bits_per_player, phase);
    }
  }

  /// Wire-level barrier: in executed mode, block until every charge so far
  /// is delivered and acknowledged. Free in simulated mode.
  void flush() {
    if (sink_ != nullptr) sink_->on_flush();
  }

  [[nodiscard]] std::uint64_t total_bits() const noexcept { return t_->total_bits(); }
  [[nodiscard]] std::uint64_t phase_bits(std::uint64_t phase) const noexcept {
    return t_->phase_bits(phase);
  }
  [[nodiscard]] std::uint64_t upstream_bits() const noexcept { return t_->upstream_bits(); }
  [[nodiscard]] std::uint64_t downstream_bits() const noexcept { return t_->downstream_bits(); }
  [[nodiscard]] std::size_t num_players() const noexcept { return t_->num_players(); }
  [[nodiscard]] std::uint64_t universe() const noexcept { return t_->universe(); }

  /// The underlying transcript (for harnesses and referees; protocol code
  /// must charge through the Channel so the executed transport sees it).
  [[nodiscard]] Transcript& transcript() const noexcept { return *t_; }

 private:
  Transcript* t_;
  ChannelSink* sink_;
};

}  // namespace tft
