#include "comm/wire.h"

#include <algorithm>
#include <stdexcept>

#include "util/bits.h"

namespace tft {

void BitWriter::put_bit(bool b) {
  const std::size_t byte = static_cast<std::size_t>(bits_ / 8);
  if (byte >= bytes_.size()) bytes_.push_back(0);
  if (b) bytes_[byte] |= static_cast<std::uint8_t>(0x80u >> (bits_ % 8));
  ++bits_;
}

void BitWriter::put_bits(std::uint64_t value, std::uint32_t width) {
  if (width > 64) throw std::invalid_argument("BitWriter::put_bits: width > 64");
  for (std::uint32_t i = width; i > 0; --i) {
    put_bit(((value >> (i - 1)) & 1) != 0);
  }
}

void BitWriter::put_gamma(std::uint64_t value) {
  const std::uint64_t v = value + 1;  // gamma codes positive integers
  const auto width = static_cast<std::uint32_t>(bit_width_of(v));
  for (std::uint32_t i = 1; i < width; ++i) put_bit(false);
  put_bits(v, width);
}

bool BitReader::get_bit() {
  if (pos_ >= bit_size_) throw WireError("BitReader: read past end of buffer");
  const std::size_t byte = static_cast<std::size_t>(pos_ / 8);
  const bool b = (bytes_[byte] & (0x80u >> (pos_ % 8))) != 0;
  ++pos_;
  return b;
}

std::uint64_t BitReader::get_bits(std::uint32_t width) {
  if (width > 64) throw WireError("BitReader::get_bits: width > 64");
  std::uint64_t v = 0;
  for (std::uint32_t i = 0; i < width; ++i) v = (v << 1) | (get_bit() ? 1 : 0);
  return v;
}

std::uint64_t BitReader::get_gamma() {
  std::uint32_t zeros = 0;
  while (!get_bit()) {
    // A legal gamma code stores value+1 in at most 64 significand bits, so
    // 64 leading zeros cannot come from any encoder: corrupt input.
    if (++zeros >= 64) throw WireError("BitReader::get_gamma: corrupt prefix");
  }
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < zeros; ++i) v = (v << 1) | (get_bit() ? 1 : 0);
  return v - 1;
}

namespace {

std::vector<Edge> sorted_copy(std::span<const Edge> edges) {
  std::vector<Edge> out(edges.begin(), edges.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

void encode_edge_list(BitWriter& w, Vertex n, std::span<const Edge> edges) {
  const auto sorted = sorted_copy(edges);
  const auto vbits = static_cast<std::uint32_t>(vertex_bits(n));
  w.put_gamma(sorted.size());
  Vertex prev_u = 0;
  for (const Edge& e : sorted) {
    w.put_gamma(e.u - prev_u);  // sorted by u: deltas are non-negative
    w.put_bits(e.v, vbits);
    prev_u = e.u;
  }
}

std::vector<Edge> decode_edge_list(BitReader& r, Vertex n) {
  const auto vbits = static_cast<std::uint32_t>(vertex_bits(n));
  const std::uint64_t count = r.get_gamma();
  // Every encoded edge takes at least 1 (delta) + vbits (endpoint) bits, so
  // a count the remaining payload cannot hold is corrupt. Checking before
  // reserving also keeps a corrupt count from forcing a huge allocation.
  if (count > r.remaining() / (1 + vbits)) {
    throw WireError("decode_edge_list: corrupt count " + std::to_string(count));
  }
  std::vector<Edge> out;
  out.reserve(count);
  Vertex prev_u = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t delta = r.get_gamma();
    const std::uint64_t u64 = static_cast<std::uint64_t>(prev_u) + delta;
    const std::uint64_t v64 = r.get_bits(vbits);
    if (u64 >= n || v64 >= n) {
      throw WireError("decode_edge_list: endpoint outside universe of " + std::to_string(n));
    }
    out.emplace_back(static_cast<Vertex>(u64), static_cast<Vertex>(v64));
    prev_u = static_cast<Vertex>(u64);
  }
  return out;
}

void encode_vertex_list(BitWriter& w, Vertex n, std::span<const Vertex> vertices) {
  std::vector<Vertex> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  (void)n;
  w.put_gamma(sorted.size());
  Vertex prev = 0;
  for (const Vertex v : sorted) {
    w.put_gamma(v - prev);
    prev = v;
  }
}

std::vector<Vertex> decode_vertex_list(BitReader& r, Vertex n) {
  const std::uint64_t count = r.get_gamma();
  // Each encoded vertex takes at least one delta bit.
  if (count > r.remaining()) {
    throw WireError("decode_vertex_list: corrupt count " + std::to_string(count));
  }
  std::vector<Vertex> out;
  out.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    prev += r.get_gamma();
    if (prev >= n) {
      throw WireError("decode_vertex_list: vertex outside universe of " + std::to_string(n));
    }
    out.push_back(static_cast<Vertex>(prev));
  }
  return out;
}

std::uint64_t encoded_edge_list_bits(Vertex n, std::span<const Edge> edges) {
  BitWriter w;
  encode_edge_list(w, n, edges);
  return w.bit_size();
}

}  // namespace tft
