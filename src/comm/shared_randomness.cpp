#include "comm/shared_randomness.h"

namespace tft {

std::vector<std::uint32_t> SharedRandomness::sample_vertices(SharedTag tag, std::uint64_t n,
                                                             double p) const {
  std::vector<std::uint32_t> out;
  if (p <= 0.0) return out;
  out.reserve(static_cast<std::size_t>(p * static_cast<double>(n)) + 16);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (bernoulli(tag, v, p)) out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

}  // namespace tft
