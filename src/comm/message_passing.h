#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/transcript.h"

/// \file message_passing.h
/// The coordinator <-> message-passing equivalence (Section 2).
///
/// Message-passing: every pair of players has a private channel. The paper
/// notes the two models simulate each other: a message-passing protocol runs
/// in the coordinator model by appending the recipient id (the coordinator
/// relays), costing at most a log k factor; conversely a coordinator
/// protocol runs in the message-passing model verbatim by electing player 0
/// as coordinator.
///
/// `MessagePassingSimulator` executes the first direction concretely: feed
/// it the point-to-point messages and it produces the coordinator-model
/// transcript of the simulation, so the overhead claim can be measured.

namespace tft {

struct MpMessage {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t bits = 0;
};

class MessagePassingSimulator {
 public:
  MessagePassingSimulator(std::size_t num_players, std::uint64_t universe_n)
      : k_(num_players), transcript_(num_players, universe_n) {}

  /// Simulate delivering one point-to-point message through the
  /// coordinator: sender ships payload + recipient id upstream, the
  /// coordinator forwards the payload downstream.
  void deliver(const MpMessage& msg);

  /// Total message-passing cost so far (sum of raw payloads).
  [[nodiscard]] std::uint64_t mp_bits() const noexcept { return mp_bits_; }
  /// Cost of the coordinator-model simulation.
  [[nodiscard]] std::uint64_t coordinator_bits() const noexcept {
    return transcript_.total_bits();
  }
  /// Measured overhead factor; the Section 2 claim is <= 2 + O(log k / b)
  /// for b-bit messages (the paper states the log k headline for the
  /// headers; forwarding also re-transmits the payload once).
  [[nodiscard]] double overhead_factor() const noexcept {
    return mp_bits_ > 0 ? static_cast<double>(coordinator_bits()) /
                              static_cast<double>(mp_bits_)
                        : 0.0;
  }
  [[nodiscard]] const Transcript& transcript() const noexcept { return transcript_; }

  /// Worst-case overhead bound for b-bit messages among k players.
  [[nodiscard]] static double overhead_bound(std::uint64_t payload_bits, std::size_t k);

 private:
  std::size_t k_;
  Transcript transcript_;
  std::uint64_t mp_bits_ = 0;
};

/// Run a batch and report the measured overhead.
[[nodiscard]] double simulate_message_passing_overhead(std::size_t k, std::uint64_t universe_n,
                                                       const std::vector<MpMessage>& messages);

}  // namespace tft
