#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/partition.h"
#include "util/rng.h"

/// \file boolean_matching.h
/// Section 4.4: the Boolean Matching problem BM_n and its reduction to
/// testing triangle-freeness in graphs of average degree O(1)
/// (Theorem 4.16), giving the Omega(sqrt(n)) one-way / simultaneous lower
/// bound in the constant-degree regime.
///
/// Alice holds x in {0,1}^{2n}; Bob holds a perfect matching M on [2n] and
/// w in {0,1}^n. The promise: Mx ⊕ w is either all-zeros (the reduction
/// graph then contains n edge-disjoint triangles, hence is Omega(1)-far
/// from triangle-free) or all-ones (the graph is exactly triangle-free).
///
/// Graph construction on V = {u} ∪ ([2n] x {0,1}):
///   Alice:  {u, (i, x_i)} for every i;
///   Bob:    per matching edge {j1, j2}: the parallel pair of rungs if
///           w_j = 0, the crossed pair if w_j = 1.
/// The gadget of matching edge j closes a triangle iff x_{j1} ⊕ x_{j2} = w_j.

namespace tft {

struct BmInstance {
  std::vector<std::uint8_t> x;                              ///< 2n bits
  std::vector<std::pair<std::uint32_t, std::uint32_t>> m;   ///< n matching edges over [2n]
  std::vector<std::uint8_t> w;                              ///< n bits
  bool zero_case = true;  ///< Mx ⊕ w == 0 (far) vs == 1 (triangle-free)

  [[nodiscard]] std::size_t pairs() const noexcept { return m.size(); }
};

/// Vertex id of (i, b) in the reduction graph; vertex 0 is the apex u.
[[nodiscard]] constexpr Vertex bm_vertex(std::uint32_t i, std::uint32_t b) noexcept {
  return 1 + 2 * i + b;
}

/// Sample a BM_n instance satisfying the promise for the requested case.
[[nodiscard]] BmInstance sample_bm(std::uint32_t n_pairs, bool zero_case, Rng& rng);

/// The Theorem 4.16 reduction graph (4n edges on 4n + 1 vertices).
[[nodiscard]] Graph bm_graph(const BmInstance& inst);

/// The natural two-player split: player 0 = Alice's star edges, player 1 =
/// Bob's gadget edges. No duplication.
[[nodiscard]] std::vector<PlayerInput> bm_two_players(const BmInstance& inst);

/// Mx ⊕ w, for verifying the promise in tests.
[[nodiscard]] std::vector<std::uint8_t> bm_mx_xor_w(const BmInstance& inst);

}  // namespace tft
