#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "core/sim_common.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/stats.h"

/// \file symmetrization.h
/// Theorem 4.15 (symmetrization, after Phillips-Verbin-Zhang): a k-player
/// simultaneous protocol for a symmetric 3-player input distribution mu
/// yields a 3-player one-way protocol of expected cost (2/k) * CC(Pi).
///
/// Construction: sample (X1, X2, X3) ~ mu; hand X1 and X2 to two uniformly
/// random players i != j (neither being player k), give X3 to everyone
/// else. Alice and Bob send exactly the messages players i and j would
/// send; Charlie can reproduce every other player's message from X3 and
/// simulate the referee with zero added error.
///
/// `run_symmetrization` executes the reduction empirically and reports the
/// measured one-way cost against (2/k) of the measured k-player cost — the
/// identity the lower-bound lifting rests on.

namespace tft {

/// A sampler for the symmetric 3-part distribution: returns the three
/// players' edge sets over a common vertex universe.
using ThreePartSampler = std::function<std::array<Graph, 3>(Rng&)>;

/// A k-player simultaneous protocol runner.
using SimProtocol = std::function<SimResult(std::span<const PlayerInput>)>;

struct SymmetrizationReport {
  std::size_t trials = 0;
  double avg_sim_total_bits = 0.0;  ///< E[ sum_j |Pi_j| ] over eta
  double avg_one_way_bits = 0.0;    ///< E[ |Pi_i| + |Pi_j| ] (the 3-player cost)
  SuccessRate sim_success;          ///< protocol found a triangle

  /// Measured ratio avg_one_way / avg_sim_total; Theorem 4.15 predicts 2/k.
  [[nodiscard]] double ratio() const noexcept {
    return avg_sim_total_bits > 0 ? avg_one_way_bits / avg_sim_total_bits : 0.0;
  }
};

/// Build the k-player embedded input embed(i, j, X): players i and j get
/// X1, X2; all others get X3.
[[nodiscard]] std::vector<PlayerInput> embed_three(const std::array<Graph, 3>& x, std::size_t k,
                                                   std::size_t i, std::size_t j);

/// Run the reduction `trials` times.
[[nodiscard]] SymmetrizationReport run_symmetrization(const ThreePartSampler& sampler,
                                                      const SimProtocol& protocol, std::size_t k,
                                                      std::size_t trials, std::uint64_t seed);

/// The Section 4.3 closing remark: for a DETERMINISTIC (fixed-seed)
/// protocol, the reduction yields a 3-player *simultaneous* protocol —
/// every Charlie-simulated player holds the same input X3 and therefore
/// sends the same message, so Charlie forwards just one of them. The
/// resulting expected cost identity is E[one-way] = bits(i) + bits(j) +
/// bits(one X3 player); `deterministic_ratio` reports the measured value of
/// avg_one_way / avg_sim_total, which is ~3/k for balanced messages.
struct DeterministicSymmetrizationReport {
  std::size_t trials = 0;
  double avg_sim_total_bits = 0.0;
  double avg_simultaneous3_bits = 0.0;  ///< Alice + Bob + one Charlie message
  [[nodiscard]] double ratio() const noexcept {
    return avg_sim_total_bits > 0 ? avg_simultaneous3_bits / avg_sim_total_bits : 0.0;
  }
};

[[nodiscard]] DeterministicSymmetrizationReport run_symmetrization_deterministic(
    const ThreePartSampler& sampler, const SimProtocol& protocol, std::size_t k,
    std::size_t trials, std::uint64_t seed);

}  // namespace tft
