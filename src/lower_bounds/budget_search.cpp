#include "lower_bounds/budget_search.h"

#include <algorithm>
#include <unordered_map>

#include "util/parallel.h"

namespace tft {

namespace {

/// Smallest success count whose rate passes the target, under exactly the
/// comparison the legacy search used (`SuccessRate::rate() >= target` in
/// double precision). May return trials + 1: the target is unreachable.
std::size_t needed_successes(double target, std::size_t trials) {
  for (std::size_t s = 0; s <= trials; ++s) {
    SuccessRate sr;
    sr.successes = s;
    sr.trials = trials;
    if (sr.rate() >= target) return s;
  }
  return trials + 1;
}

/// One budget's evaluation: the recorded curve point plus the pass/fail
/// decision. `pass` is carried explicitly because under early stopping the
/// stored rate can be partial while the decision is exact.
struct Eval {
  SuccessRate rate;
  bool pass = false;
};

/// Evaluates budgets for one find_min_budget call, carrying the memo and
/// the per-trial monotone state across probes.
class BudgetEvaluator {
 public:
  BudgetEvaluator(const BudgetTrial& trial, const BudgetSearchOptions& opts,
                  BudgetSearchResult& result)
      : trial_(trial),
        opts_(opts),
        result_(result),
        needed_(needed_successes(opts.target_success, opts.trials_per_budget)),
        pass_at_(opts.trials_per_budget, UINT64_MAX),
        fail_at_(opts.trials_per_budget, 0) {}

  Eval evaluate(std::uint64_t budget) {
    if (opts_.memoize_budgets) {
      const auto it = memo_.find(budget);
      if (it != memo_.end()) {
        ++result_.memo_hits;
        return it->second;
      }
    }
    const Eval e = run_budget(budget, /*allow_early_stop=*/true);
    if (opts_.memoize_budgets) memo_.emplace(budget, e);
    return e;
  }

  /// Curve-point evaluation: always reports the full trial count. A memoized
  /// search probe is reused only when it resolved every trial (early
  /// stopping stores partial counts, which must not masquerade as a full
  /// curve point); a fresh run suppresses early stopping.
  Eval evaluate_full(std::uint64_t budget) {
    if (opts_.memoize_budgets) {
      const auto it = memo_.find(budget);
      if (it != memo_.end() && it->second.rate.trials == opts_.trials_per_budget) {
        ++result_.memo_hits;
        return it->second;
      }
    }
    const Eval e = run_budget(budget, /*allow_early_stop=*/false);
    if (opts_.memoize_budgets) memo_[budget] = e;  // full eval supersedes partial
    return e;
  }

 private:
  Eval run_budget(std::uint64_t budget, bool allow_early_stop) {
    const std::size_t total = opts_.trials_per_budget;

    // Resolve what monotonicity already knows, collect the rest to run.
    std::size_t inferred_pass = 0;
    std::size_t inferred_fail = 0;
    std::vector<std::uint32_t> to_run;
    to_run.reserve(total);
    for (std::size_t t = 0; t < total; ++t) {
      if (opts_.monotone_reuse && pass_at_[t] <= budget) {
        ++inferred_pass;
      } else if (opts_.monotone_reuse && fail_at_[t] >= budget) {
        ++inferred_fail;
      } else {
        to_run.push_back(static_cast<std::uint32_t>(t));
      }
    }
    result_.trials_inferred += inferred_pass + inferred_fail;

    // Execute, in trial-index order. Chunks advance exactly to the next
    // index at which a decision could become forced; chunk boundaries
    // depend only on success counts, never on thread count or timing, so
    // the set of trials run (and hence every downstream byte) is
    // deterministic. Without early stopping this is a single chunk and
    // matches the seed implementation's one parallel_for.
    std::vector<std::uint8_t> ok(to_run.size(), 0);
    std::size_t run_successes = 0;
    std::size_t ran = 0;
    while (ran < to_run.size()) {
      const std::size_t successes = inferred_pass + run_successes;
      const std::size_t remaining = to_run.size() - ran;
      std::size_t chunk = remaining;
      if (opts_.early_stop && allow_early_stop) {
        if (successes >= needed_) break;                // pass already forced
        if (successes + remaining < needed_) break;     // fail already forced
        const std::size_t to_pass = needed_ - successes;
        const std::size_t to_fail = remaining - to_pass + 1;
        chunk = std::min(remaining, std::max<std::size_t>(1, std::min(to_pass, to_fail)));
      }
      parallel_for(
          chunk,
          [&](std::size_t i) {
            const std::uint32_t t = to_run[ran + i];
            ok[ran + i] = trial_(budget, t) ? 1 : 0;
          },
          /*grain=*/1);
      for (std::size_t i = 0; i < chunk; ++i) run_successes += ok[ran + i];
      ran += chunk;
    }
    result_.trials_run += ran;
    result_.trials_skipped += to_run.size() - ran;

    // Fold the fresh verdicts into the monotone state.
    if (opts_.monotone_reuse) {
      for (std::size_t i = 0; i < ran; ++i) {
        const std::uint32_t t = to_run[i];
        if (ok[i]) {
          pass_at_[t] = std::min(pass_at_[t], budget);
        } else {
          fail_at_[t] = std::max(fail_at_[t], budget);
        }
      }
    }

    Eval e;
    e.rate.successes = inferred_pass + run_successes;
    e.rate.trials = inferred_pass + inferred_fail + ran;  // == total unless early-stopped
    e.pass = e.rate.successes >= needed_;
    return e;
  }

  const BudgetTrial& trial_;
  const BudgetSearchOptions& opts_;
  BudgetSearchResult& result_;
  const std::size_t needed_;
  std::vector<std::uint64_t> pass_at_;  ///< per trial: min budget known to pass
  std::vector<std::uint64_t> fail_at_;  ///< per trial: max budget known to fail
  std::unordered_map<std::uint64_t, Eval> memo_;
};

}  // namespace

BudgetSearchResult find_min_budget(const BudgetTrial& trial, const BudgetSearchOptions& opts) {
  BudgetSearchResult result;
  BudgetEvaluator eval(trial, opts, result);

  // Doubling phase.
  std::uint64_t lo = 0;  // highest known-failing budget
  std::uint64_t hi = 0;  // lowest known-passing budget
  for (std::uint64_t b = opts.budget_lo; b <= opts.budget_hi; b *= 2) {
    const auto e = eval.evaluate(b);
    result.curve.push_back({b, e.rate});
    if (e.pass) {
      hi = b;
      break;
    }
    lo = b;
    if (b > opts.budget_hi / 2) break;  // avoid overflow past the cap
  }
  if (hi != 0) {
    // Bisection refinement.
    for (std::uint32_t step = 0; step < opts.refine_steps && hi > lo + 1; ++step) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      const auto e = eval.evaluate(mid);
      result.curve.push_back({mid, e.rate});
      if (e.pass) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    result.found = true;
    result.min_budget = hi;
  }

  // The requested success-curve grid rides on the same evaluator, so grid
  // points the search already measured in full come from the memo and the
  // rest reuse every monotone-resolved trial verdict.
  for (const std::uint64_t b : opts.curve_budgets) {
    result.curve.push_back({b, eval.evaluate_full(b).rate});
  }
  return result;
}

}  // namespace tft
