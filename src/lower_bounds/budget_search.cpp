#include "lower_bounds/budget_search.h"

#include "util/parallel.h"

namespace tft {

namespace {

SuccessRate evaluate(const BudgetTrial& trial, std::uint64_t budget, std::size_t trials) {
  // trial_index fully determines a run's randomness (see BudgetTrial), so
  // the trials at one budget are independent and fan across the pool; the
  // success count is an integer sum, identical at any thread count.
  std::vector<std::uint8_t> ok(trials, 0);
  parallel_for(
      trials, [&](std::size_t t) { ok[t] = trial(budget, t) ? 1 : 0; }, /*grain=*/1);
  SuccessRate r;
  r.trials = trials;
  for (const std::uint8_t o : ok) r.successes += o;
  return r;
}

}  // namespace

BudgetSearchResult find_min_budget(const BudgetTrial& trial, const BudgetSearchOptions& opts) {
  BudgetSearchResult result;

  // Doubling phase.
  std::uint64_t lo = 0;  // highest known-failing budget
  std::uint64_t hi = 0;  // lowest known-passing budget
  for (std::uint64_t b = opts.budget_lo; b <= opts.budget_hi; b *= 2) {
    const auto rate = evaluate(trial, b, opts.trials_per_budget);
    result.curve.push_back({b, rate});
    if (rate.rate() >= opts.target_success) {
      hi = b;
      break;
    }
    lo = b;
    if (b > opts.budget_hi / 2) break;  // avoid overflow past the cap
  }
  if (hi == 0) return result;  // never passed

  // Bisection refinement.
  for (std::uint32_t step = 0; step < opts.refine_steps && hi > lo + 1; ++step) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const auto rate = evaluate(trial, mid, opts.trials_per_budget);
    result.curve.push_back({mid, rate});
    if (rate.rate() >= opts.target_success) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.found = true;
  result.min_budget = hi;
  return result;
}

}  // namespace tft
