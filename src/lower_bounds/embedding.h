#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

/// \file embedding.h
/// Lemma 4.17: lower bounds (and worst-case upper-bound instances) for a
/// lower average degree d' are obtained by embedding a dense core of n'
/// vertices into a graph with n vertices, leaving n - n' vertices isolated.
/// Triangle structure and distance to triangle-freeness are preserved
/// exactly, while the average degree drops to core_edges * 2 / n.

namespace tft {

struct EmbeddedInstance {
  Graph graph;
  Vertex core_n = 0;       ///< vertices of the embedded core
  double core_degree = 0;  ///< average degree inside the core
};

/// Embed a dense random core G(n', p_core) so the overall graph has n
/// vertices and average degree ~ d_target: n' = sqrt(n d_target / p_core).
/// The core is Omega(1)-far from triangle-free w.h.p. for constant p_core.
[[nodiscard]] EmbeddedInstance embed_dense_core(Vertex n, double d_target, double p_core,
                                                Rng& rng);

/// Embed an arbitrary prebuilt core into n total vertices.
[[nodiscard]] EmbeddedInstance embed_core(const Graph& core, Vertex n);

/// embed_dense_core through the chunked generator (graph/chunked.h,
/// ChunkedFamily::kEmbedGnpCore): the same core geometry
/// n' = clamp(sqrt(n d_target / p_core), 3, n), but the core edges are
/// produced chunk-by-chunk from (spec, seed) with a two-pass exact reserve —
/// no generator-side scratch list, and the instance is reproducible from the
/// seed alone (no caller Rng state threading).
[[nodiscard]] EmbeddedInstance embed_dense_core_chunked(Vertex n, double d_target,
                                                        double p_core, std::uint64_t seed,
                                                        std::uint64_t num_chunks = 8);

}  // namespace tft
