#pragma once

#include <cstdint>
#include <vector>

#include "core/oneway_vee.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "util/rng.h"

/// \file mu_distribution.h
/// The hard input distribution mu of Section 4.2.1: a tripartite graph on
/// U ∪ V1 ∪ V2 (each side of size `side`), each cross edge present iid with
/// probability gamma / sqrt(side). Average degree Theta(sqrt(side)).
///
/// Lemma 4.5: for sufficiently small gamma, a sample of mu contains
/// Omega(side^{3/2}) edge-disjoint triangles — i.e. is Omega(1)-far from
/// triangle-free — with probability >= 1/2. `mu_farness_stats` verifies this
/// empirically (bench_mu_farness / tests).

namespace tft {

struct MuInstance {
  Graph graph;
  TripartiteLayout layout;
  double gamma = 0.0;
};

/// Sample G ~ mu.
[[nodiscard]] MuInstance sample_mu(Vertex side, double gamma, Rng& rng);

/// The canonical 3-player split the lower bounds use: Alice gets U x V1,
/// Bob U x V2, Charlie V1 x V2 (no duplication).
[[nodiscard]] std::vector<PlayerInput> partition_mu_three(const MuInstance& mu);

struct FarnessStats {
  std::size_t trials = 0;
  std::size_t far_count = 0;  ///< packing >= threshold_coefficient * side^{3/2}
  double mean_packing = 0.0;
  double threshold = 0.0;
  [[nodiscard]] double far_fraction() const noexcept {
    return trials > 0 ? static_cast<double>(far_count) / static_cast<double>(trials) : 0.0;
  }
};

/// Empirical check of Lemma 4.5: sample `trials` graphs from mu and count
/// how many have a greedy edge-disjoint triangle packing of size at least
/// threshold_coefficient * side^{3/2}. (The lemma's coefficient is
/// gamma^3/48; greedy gives at least 1/3 of optimum, so we test against
/// coefficient * gamma^3.)
[[nodiscard]] FarnessStats mu_farness_stats(Vertex side, double gamma, std::size_t trials,
                                            double threshold_coefficient, std::uint64_t seed);

/// mu_farness_stats over samples drawn through the chunked generator
/// (graph/chunked.h, ChunkedFamily::kTripartiteMu): each trial streams its
/// union graph chunk-by-chunk with a two-pass exact reserve instead of
/// holding a generator-side scratch edge list. Same mu distribution, a
/// different (equally valid) sample stream than gen::tripartite_mu, so the
/// statistics agree in distribution, not per-trial. num_chunks only controls
/// build granularity — the sampled graphs are chunk-count invariant.
[[nodiscard]] FarnessStats mu_farness_stats_chunked(Vertex side, double gamma,
                                                    std::size_t trials,
                                                    double threshold_coefficient,
                                                    std::uint64_t seed,
                                                    std::uint64_t num_chunks = 3);

/// True edge-level check used to verify one-way protocol outputs: is `e` an
/// edge of g that participates in some triangle? (Definition 3.)
[[nodiscard]] bool is_triangle_edge(const Graph& g, const Edge& e);

}  // namespace tft
