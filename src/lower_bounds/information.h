#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

/// \file information.h
/// Section 4.1: the information-theory toolkit behind the lower bounds —
/// entropy, KL divergence, mutual information, the super-additivity bound
/// I(X1..Xn; Y) >= sum_i I(Xi; Y) for independent Xi, and Lemma 4.3
/// (D(q || p) >= q - 2p for p < 1/2).
///
/// Everything is numeric (base-2 logs, bits). `empirical_edge_information`
/// instruments a deterministic protocol: it Monte-Carlo-estimates the
/// per-edge information sum_e I(M; X_e) revealed by a player's message and
/// checks it against the message length |M| — the inequality every
/// lower-bound argument in Section 4.2 runs through.

namespace tft {

/// Binary entropy H(p) in bits; 0 at the endpoints.
[[nodiscard]] double binary_entropy(double p);

/// Entropy of a discrete distribution (unnormalized weights accepted).
[[nodiscard]] double entropy(std::span<const double> dist);

/// KL divergence D(Bernoulli(q) || Bernoulli(p)) in bits. Infinite when
/// q puts mass where p has none; returns a large finite sentinel instead.
[[nodiscard]] double kl_bernoulli(double q, double p);

/// KL divergence between discrete distributions of equal support size.
[[nodiscard]] double kl_discrete(std::span<const double> mu, std::span<const double> eta);

/// Mutual information I(X; Y) in bits from a joint probability table
/// joint[x][y] (rows x, columns y; unnormalized accepted).
[[nodiscard]] double mutual_information(const std::vector<std::vector<double>>& joint);

/// Lemma 4.3: for p < 1/2 and any q, D(q || p) >= q - 2p (in the paper's
/// nat-free form; the bound holds a fortiori in bits... we check the exact
/// statement with natural logs). Returns the minimum slack
/// D(q||p) - (q - 2p) over a grid — tests assert it is >= 0.
[[nodiscard]] double lemma_4_3_min_slack(std::uint32_t grid = 200);

/// Monte-Carlo estimate of sum_e I(M; X_e) for a deterministic message
/// function over independently-sampled inputs.
///
/// `sample` is called `samples` times with trial index t; it must return
/// (message_fingerprint, per-edge indicator vector) where the indicator
/// vector has one entry per tracked edge slot and the slots are independent
/// across e under the input distribution (as in mu). The estimate is
/// sum_e I(fingerprint; X_e) from the empirical joint counts.
struct EdgeInformationEstimate {
  double total_information_bits = 0.0;  ///< sum_e I(M; X_e)
  double message_entropy_bits = 0.0;    ///< H(M) >= the sum, by super-additivity
  std::size_t distinct_messages = 0;
};

using InformationSample =
    std::function<std::pair<std::uint64_t, std::vector<std::uint8_t>>(std::size_t)>;

[[nodiscard]] EdgeInformationEstimate empirical_edge_information(const InformationSample& sample,
                                                                 std::size_t samples,
                                                                 std::size_t num_slots);

}  // namespace tft
