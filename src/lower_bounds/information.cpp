#include "lower_bounds/information.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <stdexcept>

namespace tft {

namespace {

constexpr double kInfSentinel = 1e18;

double xlogx(double x) { return x > 0 ? x * std::log2(x) : 0.0; }

}  // namespace

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double entropy(std::span<const double> dist) {
  double total = 0.0;
  for (const double w : dist) {
    if (w < 0) throw std::invalid_argument("entropy: negative weight");
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double w : dist) h -= xlogx(w / total);
  return h;
}

double kl_bernoulli(double q, double p) {
  if (q < 0 || q > 1 || p < 0 || p > 1) throw std::invalid_argument("kl_bernoulli: bad prob");
  double d = 0.0;
  if (q > 0) {
    if (p <= 0) return kInfSentinel;
    d += q * std::log2(q / p);
  }
  if (q < 1) {
    if (p >= 1) return kInfSentinel;
    d += (1 - q) * std::log2((1 - q) / (1 - p));
  }
  return d;
}

double kl_discrete(std::span<const double> mu, std::span<const double> eta) {
  if (mu.size() != eta.size()) throw std::invalid_argument("kl_discrete: size mismatch");
  double mu_total = 0.0;
  double eta_total = 0.0;
  for (const double w : mu) mu_total += w;
  for (const double w : eta) eta_total += w;
  if (mu_total <= 0 || eta_total <= 0) throw std::invalid_argument("kl_discrete: empty dist");
  double d = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double m = mu[i] / mu_total;
    const double e = eta[i] / eta_total;
    if (m > 0) {
      if (e <= 0) return kInfSentinel;
      d += m * std::log2(m / e);
    }
  }
  return d;
}

double mutual_information(const std::vector<std::vector<double>>& joint) {
  double total = 0.0;
  for (const auto& row : joint) {
    for (const double w : row) {
      if (w < 0) throw std::invalid_argument("mutual_information: negative weight");
      total += w;
    }
  }
  if (total <= 0.0) return 0.0;
  const std::size_t rows = joint.size();
  const std::size_t cols = rows ? joint[0].size() : 0;
  std::vector<double> px(rows, 0.0);
  std::vector<double> py(cols, 0.0);
  for (std::size_t x = 0; x < rows; ++x) {
    if (joint[x].size() != cols) throw std::invalid_argument("mutual_information: ragged table");
    for (std::size_t y = 0; y < cols; ++y) {
      px[x] += joint[x][y] / total;
      py[y] += joint[x][y] / total;
    }
  }
  double mi = 0.0;
  for (std::size_t x = 0; x < rows; ++x) {
    for (std::size_t y = 0; y < cols; ++y) {
      const double pxy = joint[x][y] / total;
      if (pxy > 0) mi += pxy * std::log2(pxy / (px[x] * py[y]));
    }
  }
  return std::max(0.0, mi);
}

double lemma_4_3_min_slack(std::uint32_t grid) {
  // The paper's statement (natural logs as in its Definition 1 with log =
  // log2 — the inequality holds in bits too since D only shrinks by the
  // 1/ln2 factor... we check the exact form used: D in bits, q - 2p RHS,
  // restricted to q >= 2p as in the proof's reduction).
  double min_slack = kInfSentinel;
  for (std::uint32_t i = 1; i < grid; ++i) {
    const double p = 0.5 * static_cast<double>(i) / grid;  // p in (0, 1/2)
    for (std::uint32_t j = 0; j <= grid; ++j) {
      const double q = static_cast<double>(j) / grid;
      if (q < 2.0 * p) continue;  // trivial regime (nonneg divergence covers it)
      const double slack = kl_bernoulli(q, p) - (q - 2.0 * p);
      min_slack = std::min(min_slack, slack);
    }
  }
  return min_slack;
}

EdgeInformationEstimate empirical_edge_information(const InformationSample& sample,
                                                   std::size_t samples, std::size_t num_slots) {
  // Joint counts per slot: message fingerprint -> [count with X_e = 0,
  // count with X_e = 1]; plus marginal message counts for H(M).
  std::map<std::uint64_t, std::size_t> message_counts;
  std::vector<std::map<std::uint64_t, std::array<double, 2>>> joint(num_slots);

  for (std::size_t t = 0; t < samples; ++t) {
    const auto [fingerprint, slots] = sample(t);
    if (slots.size() != num_slots) {
      throw std::invalid_argument("empirical_edge_information: slot count mismatch");
    }
    ++message_counts[fingerprint];
    for (std::size_t e = 0; e < num_slots; ++e) {
      ++joint[e][fingerprint][slots[e] ? 1 : 0];
    }
  }

  EdgeInformationEstimate est;
  est.distinct_messages = message_counts.size();
  std::vector<double> marginal;
  marginal.reserve(message_counts.size());
  for (const auto& [m, c] : message_counts) marginal.push_back(static_cast<double>(c));
  est.message_entropy_bits = entropy(marginal);

  for (std::size_t e = 0; e < num_slots; ++e) {
    std::vector<std::vector<double>> table;
    table.reserve(joint[e].size());
    for (const auto& [m, counts] : joint[e]) {
      table.push_back({counts[0], counts[1]});
    }
    // Miller-Madow bias correction: the plug-in MI estimator over-shoots by
    // ~ (rows-1)(cols-1) / (2 N ln 2); without it, summing hundreds of
    // per-slot estimates can spuriously exceed H(M).
    const double bias = static_cast<double>(table.size() - 1) /
                        (2.0 * static_cast<double>(samples) * std::log(2.0));
    est.total_information_bits += std::max(0.0, mutual_information(table) - bias);
  }
  return est;
}

}  // namespace tft
