#include "lower_bounds/symmetrization.h"

#include <stdexcept>

#include "util/parallel.h"

namespace tft {

std::vector<PlayerInput> embed_three(const std::array<Graph, 3>& x, std::size_t k, std::size_t i,
                                     std::size_t j) {
  if (k < 3) throw std::invalid_argument("embed_three: need k >= 3");
  if (i == j || i >= k - 1 || j >= k - 1) {
    throw std::invalid_argument("embed_three: i, j must be distinct and != player k-1");
  }
  const Vertex n = x[0].n();
  std::vector<PlayerInput> players;
  players.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    const Graph& src = (p == i) ? x[0] : (p == j) ? x[1] : x[2];
    std::vector<Edge> edges(src.edges().begin(), src.edges().end());
    players.push_back(PlayerInput{p, k, Graph(n, std::move(edges))});
  }
  return players;
}

SymmetrizationReport run_symmetrization(const ThreePartSampler& sampler,
                                        const SimProtocol& protocol, std::size_t k,
                                        std::size_t trials, std::uint64_t seed) {
  SymmetrizationReport report;
  report.trials = trials;
  // Each reduction run derives its stream from (seed, t) and fans across
  // the pool; the averages are folded in trial order afterwards, so the
  // report is identical at any thread count.
  struct TrialResult {
    double total_bits = 0.0;
    double one_way_bits = 0.0;
    bool found = false;
  };
  std::vector<TrialResult> results(trials);
  parallel_for(
      trials,
      [&](std::size_t t) {
        Rng rng = derive_rng(seed, t);
        const auto x = sampler(rng);
        // Two distinct uniform players, neither of which is player k-1.
        const auto i = static_cast<std::size_t>(rng.below(k - 1));
        std::size_t j = static_cast<std::size_t>(rng.below(k - 2));
        if (j >= i) ++j;
        const auto players = embed_three(x, k, i, j);
        const SimResult r = protocol(players);

        double total = 0.0;
        for (const auto b : r.per_player_bits) total += static_cast<double>(b);
        results[t] = {total,
                      static_cast<double>(r.per_player_bits.at(i) + r.per_player_bits.at(j)),
                      r.triangle.has_value()};
      },
      /*grain=*/1);
  for (const TrialResult& r : results) {
    report.avg_sim_total_bits += r.total_bits / static_cast<double>(trials);
    report.avg_one_way_bits += r.one_way_bits / static_cast<double>(trials);
    ++report.sim_success.trials;
    if (r.found) ++report.sim_success.successes;
  }
  return report;
}

DeterministicSymmetrizationReport run_symmetrization_deterministic(
    const ThreePartSampler& sampler, const SimProtocol& protocol, std::size_t k,
    std::size_t trials, std::uint64_t seed) {
  DeterministicSymmetrizationReport report;
  report.trials = trials;
  Rng rng(seed);
  for (std::size_t t = 0; t < trials; ++t) {
    const auto x = sampler(rng);
    const auto i = static_cast<std::size_t>(rng.below(k - 1));
    std::size_t j = static_cast<std::size_t>(rng.below(k - 2));
    if (j >= i) ++j;
    const auto players = embed_three(x, k, i, j);
    const SimResult r = protocol(players);

    double total = 0.0;
    for (const auto b : r.per_player_bits) total += static_cast<double>(b);
    report.avg_sim_total_bits += total / static_cast<double>(trials);
    // One representative among the k-2 identical X3 players: any index that
    // is neither i nor j nor the referee-designate k-1... player k-1 itself
    // holds X3, so use it (its message equals every other X3 player's
    // message because the protocol is deterministic in the input).
    report.avg_simultaneous3_bits +=
        static_cast<double>(r.per_player_bits.at(i) + r.per_player_bits.at(j) +
                            r.per_player_bits.at(k - 1)) /
        static_cast<double>(trials);
  }
  return report;
}

}  // namespace tft
