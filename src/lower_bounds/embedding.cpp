#include "lower_bounds/embedding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.h"

namespace tft {

EmbeddedInstance embed_dense_core(Vertex n, double d_target, double p_core, Rng& rng) {
  if (p_core <= 0.0 || p_core > 1.0) throw std::invalid_argument("embed_dense_core: bad p_core");
  // Overall average degree = n'^2 p / n  =>  n' = sqrt(n d / p).
  const double np = std::sqrt(static_cast<double>(n) * d_target / p_core);
  const auto core_n = static_cast<Vertex>(
      std::clamp(np, 3.0, static_cast<double>(n)));
  const Graph core = gen::gnp(core_n, p_core, rng);
  EmbeddedInstance inst;
  inst.core_n = core_n;
  inst.core_degree = core.average_degree();
  inst.graph = gen::embed_with_isolated(core, n);
  return inst;
}

EmbeddedInstance embed_core(const Graph& core, Vertex n) {
  EmbeddedInstance inst;
  inst.core_n = core.n();
  inst.core_degree = core.average_degree();
  inst.graph = gen::embed_with_isolated(core, n);
  return inst;
}

}  // namespace tft
