#include "lower_bounds/embedding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/chunked.h"
#include "graph/generators.h"

namespace tft {

EmbeddedInstance embed_dense_core(Vertex n, double d_target, double p_core, Rng& rng) {
  if (p_core <= 0.0 || p_core > 1.0) throw std::invalid_argument("embed_dense_core: bad p_core");
  // Overall average degree = n'^2 p / n  =>  n' = sqrt(n d / p).
  const double np = std::sqrt(static_cast<double>(n) * d_target / p_core);
  const auto core_n = static_cast<Vertex>(
      std::clamp(np, 3.0, static_cast<double>(n)));
  const Graph core = gen::gnp(core_n, p_core, rng);
  EmbeddedInstance inst;
  inst.core_n = core_n;
  inst.core_degree = core.average_degree();
  inst.graph = gen::embed_with_isolated(core, n);
  return inst;
}

EmbeddedInstance embed_dense_core_chunked(Vertex n, double d_target, double p_core,
                                          std::uint64_t seed, std::uint64_t num_chunks) {
  if (p_core <= 0.0 || p_core > 1.0) {
    throw std::invalid_argument("embed_dense_core_chunked: bad p_core");
  }
  const ChunkedSpec spec = ChunkedSpec::embed_gnp_core(n, d_target, p_core);
  const ChunkedView view(spec, seed, num_chunks);
  EmbeddedInstance inst;
  inst.core_n = static_cast<Vertex>(spec.embed_core_n());
  // The chunked universe is already [0, n) with the non-core vertices
  // isolated, so the embedding step is implicit.
  inst.graph = view.build_union();
  inst.core_degree = inst.core_n > 0 ? 2.0 * static_cast<double>(inst.graph.num_edges()) /
                                           static_cast<double>(inst.core_n)
                                     : 0.0;
  return inst;
}

EmbeddedInstance embed_core(const Graph& core, Vertex n) {
  EmbeddedInstance inst;
  inst.core_n = core.n();
  inst.core_degree = core.average_degree();
  inst.graph = gen::embed_with_isolated(core, n);
  return inst;
}

}  // namespace tft
