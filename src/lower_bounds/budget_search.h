#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.h"

/// \file budget_search.h
/// Min-budget estimation: the empirical counterpart of a lower bound.
///
/// A communication lower bound cannot be executed; what *can* be measured is
/// the smallest per-player budget at which a (capped) protocol still reaches
/// a target success probability on the hard distribution. Sweeping that
/// minimum budget across n and fitting the log-log slope reproduces the
/// lower bound's exponent whenever the matching upper bound is tight
/// (Section 4: the Theta((nd)^{1/3}) simultaneous and Theta~(n^{1/4})
/// one-way regimes).

namespace tft {

/// One protocol execution under a budget. `trial_index` must fully
/// determine the run's randomness (instance + protocol seed) so success
/// rates at different budgets are comparable.
using BudgetTrial = std::function<bool(std::uint64_t budget, std::uint64_t trial_index)>;

struct BudgetCurvePoint {
  std::uint64_t budget = 0;
  SuccessRate success;
};

struct BudgetSearchResult {
  bool found = false;             ///< a passing budget <= budget_hi exists
  std::uint64_t min_budget = 0;   ///< smallest passing budget located
  std::vector<BudgetCurvePoint> curve;  ///< every (budget, success) evaluated
};

struct BudgetSearchOptions {
  double target_success = 0.9;
  std::size_t trials_per_budget = 40;
  std::uint64_t budget_lo = 1;
  std::uint64_t budget_hi = 1ULL << 40;
  /// Bisection refinement steps after the doubling phase brackets the
  /// threshold (each step costs trials_per_budget runs).
  std::uint32_t refine_steps = 4;
};

/// Doubling from budget_lo until the success target is met, then bisection
/// between the last failing and first passing budgets.
[[nodiscard]] BudgetSearchResult find_min_budget(const BudgetTrial& trial,
                                                 const BudgetSearchOptions& opts);

}  // namespace tft
