#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.h"

/// \file budget_search.h
/// Min-budget estimation: the empirical counterpart of a lower bound.
///
/// A communication lower bound cannot be executed; what *can* be measured is
/// the smallest per-player budget at which a (capped) protocol still reaches
/// a target success probability on the hard distribution. Sweeping that
/// minimum budget across n and fitting the log-log slope reproduces the
/// lower bound's exponent whenever the matching upper bound is tight
/// (Section 4: the Theta((nd)^{1/3}) simultaneous and Theta~(n^{1/4})
/// one-way regimes).
///
/// The search is adaptive by default (see BudgetSearchOptions): duplicate
/// budget probes are memoized, per-trial verdicts are reused across budgets
/// via monotonicity, and a budget's trial loop stops as soon as the
/// pass/fail decision is statistically forced. The determinism contract and
/// exactly which bytes each switch preserves are spelled out in
/// EXPERIMENTS.md ("Sweep methodology") and enforced by
/// tests/test_sweep.cpp.

namespace tft {

/// One protocol execution under a budget. `trial_index` must fully
/// determine the run's randomness (instance + protocol seed) so success
/// rates at different budgets are comparable.
///
/// Monotone reuse additionally assumes the verdict is monotone in the
/// budget for a fixed trial_index — true for every capped protocol in this
/// repo, which truncate a shared-permutation-ordered candidate list, so a
/// larger budget sees a superset of the same candidates.
using BudgetTrial = std::function<bool(std::uint64_t budget, std::uint64_t trial_index)>;

struct BudgetCurvePoint {
  std::uint64_t budget = 0;
  SuccessRate success;
};

struct BudgetSearchResult {
  bool found = false;             ///< a passing budget <= budget_hi exists
  std::uint64_t min_budget = 0;   ///< smallest passing budget located
  std::vector<BudgetCurvePoint> curve;  ///< every (budget, success) evaluated

  // Work accounting for the adaptive switches. Diagnostics only — A/B
  // identity is over found/min_budget/curve, never these counters.
  std::uint64_t trials_run = 0;       ///< protocol executions actually performed
  std::uint64_t trials_inferred = 0;  ///< verdicts reused via per-trial monotonicity
  std::uint64_t trials_skipped = 0;   ///< trials left unresolved by early stopping
  std::uint64_t memo_hits = 0;        ///< budget probes answered from the memo
};

struct BudgetSearchOptions {
  double target_success = 0.9;
  std::size_t trials_per_budget = 40;
  std::uint64_t budget_lo = 1;
  std::uint64_t budget_hi = 1ULL << 40;
  /// Bisection refinement steps after the doubling phase brackets the
  /// threshold (each step costs at most trials_per_budget runs).
  std::uint32_t refine_steps = 4;

  /// Extra budgets to evaluate after the search, appended to `curve` in the
  /// given order (also when the search itself finds no passing budget).
  /// Curve points always report the full trials_per_budget count — they are
  /// never early-stopped — so a grid point that collides with a search probe
  /// is answered from the memo only when the stored evaluation is complete.
  /// This is how the benches print a success curve without re-running the
  /// budgets the search already measured.
  std::vector<std::uint64_t> curve_budgets;

  // Adaptive-search switches, all default on. Identity guarantees (locked
  // in by tests/test_sweep.cpp):
  //   * memoize_budgets — byte-identical result unconditionally (a repeated
  //     probe reproduces the stored point, which a re-run would equal by
  //     trial determinism);
  //   * monotone_reuse  — byte-identical result whenever the trial verdict
  //     is monotone in the budget (see BudgetTrial);
  //   * early_stop      — identical decisions, probe sequence, found and
  //     min_budget unconditionally; curve success counts may be partial
  //     (each point still reports the trials it resolved, so rates remain
  //     unbiased estimates of the same quantity).
  bool memoize_budgets = true;  ///< duplicate probes reuse the stored evaluation
  bool monotone_reuse = true;   ///< pass at b implies pass at b' >= b (dually for fail)
  bool early_stop = true;       ///< stop a budget's trials once the decision is forced

  /// The seed implementation, bit-for-bit: every adaptive switch off. Used
  /// as the A/B baseline by the sweep tests and bench_kernels.
  [[nodiscard]] static BudgetSearchOptions legacy() {
    BudgetSearchOptions o;
    o.memoize_budgets = false;
    o.monotone_reuse = false;
    o.early_stop = false;
    return o;
  }
};

/// Doubling from budget_lo until the success target is met, then bisection
/// between the last failing and first passing budgets.
[[nodiscard]] BudgetSearchResult find_min_budget(const BudgetTrial& trial,
                                                 const BudgetSearchOptions& opts);

}  // namespace tft
