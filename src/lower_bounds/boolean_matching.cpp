#include "lower_bounds/boolean_matching.h"

#include <numeric>

namespace tft {

BmInstance sample_bm(std::uint32_t n_pairs, bool zero_case, Rng& rng) {
  BmInstance inst;
  inst.zero_case = zero_case;
  const std::uint32_t two_n = 2 * n_pairs;

  inst.x.resize(two_n);
  for (auto& bit : inst.x) bit = static_cast<std::uint8_t>(rng.below(2));

  std::vector<std::uint32_t> perm(two_n);
  std::iota(perm.begin(), perm.end(), 0U);
  for (std::size_t i = perm.size(); i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);

  inst.m.reserve(n_pairs);
  inst.w.reserve(n_pairs);
  for (std::uint32_t j = 0; j < n_pairs; ++j) {
    const std::uint32_t j1 = perm[2 * j];
    const std::uint32_t j2 = perm[2 * j + 1];
    inst.m.emplace_back(j1, j2);
    const std::uint8_t mx = inst.x[j1] ^ inst.x[j2];
    inst.w.push_back(zero_case ? mx : static_cast<std::uint8_t>(mx ^ 1));
  }
  return inst;
}

Graph bm_graph(const BmInstance& inst) {
  const auto n_pairs = static_cast<std::uint32_t>(inst.pairs());
  const Vertex n = 1 + 4 * n_pairs;
  std::vector<Edge> edges;
  edges.reserve(4 * n_pairs);
  // Alice's star edges.
  for (std::uint32_t i = 0; i < 2 * n_pairs; ++i) {
    edges.emplace_back(Vertex{0}, bm_vertex(i, inst.x[i]));
  }
  // Bob's gadget edges.
  for (std::uint32_t j = 0; j < n_pairs; ++j) {
    const auto [j1, j2] = inst.m[j];
    if (inst.w[j] == 0) {
      edges.emplace_back(bm_vertex(j1, 0), bm_vertex(j2, 0));
      edges.emplace_back(bm_vertex(j1, 1), bm_vertex(j2, 1));
    } else {
      edges.emplace_back(bm_vertex(j1, 0), bm_vertex(j2, 1));
      edges.emplace_back(bm_vertex(j1, 1), bm_vertex(j2, 0));
    }
  }
  return Graph(n, std::move(edges));
}

std::vector<PlayerInput> bm_two_players(const BmInstance& inst) {
  const auto n_pairs = static_cast<std::uint32_t>(inst.pairs());
  const Vertex n = 1 + 4 * n_pairs;
  std::vector<Edge> alice;
  alice.reserve(2 * n_pairs);
  for (std::uint32_t i = 0; i < 2 * n_pairs; ++i) {
    alice.emplace_back(Vertex{0}, bm_vertex(i, inst.x[i]));
  }
  std::vector<Edge> bob;
  bob.reserve(2 * n_pairs);
  for (std::uint32_t j = 0; j < n_pairs; ++j) {
    const auto [j1, j2] = inst.m[j];
    if (inst.w[j] == 0) {
      bob.emplace_back(bm_vertex(j1, 0), bm_vertex(j2, 0));
      bob.emplace_back(bm_vertex(j1, 1), bm_vertex(j2, 1));
    } else {
      bob.emplace_back(bm_vertex(j1, 0), bm_vertex(j2, 1));
      bob.emplace_back(bm_vertex(j1, 1), bm_vertex(j2, 0));
    }
  }
  std::vector<PlayerInput> players;
  players.push_back(PlayerInput{0, 2, Graph(n, std::move(alice))});
  players.push_back(PlayerInput{1, 2, Graph(n, std::move(bob))});
  return players;
}

std::vector<std::uint8_t> bm_mx_xor_w(const BmInstance& inst) {
  std::vector<std::uint8_t> out;
  out.reserve(inst.pairs());
  for (std::size_t j = 0; j < inst.pairs(); ++j) {
    const auto [j1, j2] = inst.m[j];
    out.push_back(static_cast<std::uint8_t>((inst.x[j1] ^ inst.x[j2]) ^ inst.w[j]));
  }
  return out;
}

}  // namespace tft
