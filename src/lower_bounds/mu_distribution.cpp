#include "lower_bounds/mu_distribution.h"

#include <algorithm>
#include <cmath>

#include "graph/chunked.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/parallel.h"

namespace tft {

MuInstance sample_mu(Vertex side, double gamma, Rng& rng) {
  MuInstance mu;
  mu.graph = gen::tripartite_mu(side, gamma, rng);
  mu.layout.side = side;
  mu.gamma = gamma;
  return mu;
}

std::vector<PlayerInput> partition_mu_three(const MuInstance& mu) {
  const auto& layout = mu.layout;
  std::vector<std::vector<Edge>> parts(3);
  for (const Edge& e : mu.graph.edges()) {
    if (layout.in_u(e.u) && layout.in_v1(e.v)) {
      parts[0].push_back(e);
    } else if (layout.in_u(e.u) && layout.in_v2(e.v)) {
      parts[1].push_back(e);
    } else {
      parts[2].push_back(e);  // V1 x V2
    }
  }
  std::vector<PlayerInput> players;
  players.reserve(3);
  for (std::size_t j = 0; j < 3; ++j) {
    players.push_back(PlayerInput{j, 3, Graph(mu.graph.n(), std::move(parts[j]))});
  }
  return players;
}

FarnessStats mu_farness_stats(Vertex side, double gamma, std::size_t trials,
                              double threshold_coefficient, std::uint64_t seed) {
  FarnessStats stats;
  stats.trials = trials;
  stats.threshold = threshold_coefficient * std::pow(gamma, 3.0) *
                    std::pow(static_cast<double>(side), 1.5);
  // Trials fan across the pool; each derives its stream from (seed, t) and
  // the mean is folded in trial order, so the stats are thread-count
  // independent.
  std::vector<double> packings(trials, 0.0);
  parallel_for(
      trials,
      [&](std::size_t t) {
        Rng rng = derive_rng(seed, t);
        const auto mu = sample_mu(side, gamma, rng);
        packings[t] = static_cast<double>(distance_lower_bound(mu.graph, rng));
      },
      /*grain=*/1);
  for (const double packing : packings) {
    stats.mean_packing += packing / static_cast<double>(trials);
    if (packing >= stats.threshold) ++stats.far_count;
  }
  return stats;
}

FarnessStats mu_farness_stats_chunked(Vertex side, double gamma, std::size_t trials,
                                      double threshold_coefficient, std::uint64_t seed,
                                      std::uint64_t num_chunks) {
  FarnessStats stats;
  stats.trials = trials;
  stats.threshold = threshold_coefficient * std::pow(gamma, 3.0) *
                    std::pow(static_cast<double>(side), 1.5);
  const ChunkedSpec spec = ChunkedSpec::tripartite_mu(side, gamma);
  std::vector<double> packings(trials, 0.0);
  parallel_for(
      trials,
      [&](std::size_t t) {
        // Instance randomness is keyed to (spec, seed, t) inside the chunked
        // layer; the packing's own coin flips use the derived trial stream,
        // mirroring the monolithic path.
        const ChunkedView view(spec, mix_hash(seed, t), num_chunks);
        const Graph g = view.build_union();
        Rng rng = derive_rng(seed, t);
        packings[t] = static_cast<double>(distance_lower_bound(g, rng));
      },
      /*grain=*/1);
  for (const double packing : packings) {
    stats.mean_packing += packing / static_cast<double>(trials);
    if (packing >= stats.threshold) ++stats.far_count;
  }
  return stats;
}

bool is_triangle_edge(const Graph& g, const Edge& e) {
  if (!g.has_edge(e)) return false;
  Vertex u = e.u;
  Vertex v = e.v;
  if (g.degree(u) > g.degree(v)) std::swap(u, v);
  for (const Vertex w : g.neighbors(u)) {
    if (w != v && g.has_edge(v, w)) return true;
  }
  return false;
}

}  // namespace tft
