#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/runtime.h"
#include "net/servicer.h"
#include "service/spec.h"

/// \file coordinator.h
/// The multi-session service runtime: a ServiceCoordinator accepts session
/// requests (SessionSpec), schedules them onto a bounded worker pool, and
/// multiplexes every live session over ONE shared transport and ONE shared
/// servicer thread (net/servicer.h session table). Each session runs the
/// full executed-mode contract individually — wire/transcript accounting
/// verified exactly, model conformance refereed, failures typed — exactly
/// as a solo NetSession run would, and its frame bytes are identical to
/// that solo run (session-folded filler and fault keying).
///
/// Admission control: at most `max_live_sessions` sessions execute at once
/// (the worker pool), at most `max_pending` sit admitted in total; past
/// that, submit() throws NetError(kServiceBusy) — a typed, retryable
/// rejection, never a queue that grows without bound. Scheduling is FIFO or
/// fair-share (round-robin across tenants, FIFO within one). drain() stops
/// admission and waits for every admitted session to finish — the graceful
/// shutdown the daemon (service/daemon.h) calls on SIGTERM.

namespace tft::service {

enum class SchedulerKind : std::uint8_t {
  kFifo,       ///< strict submission order
  kFairShare,  ///< round-robin across tenants, FIFO within a tenant
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind s) noexcept {
  switch (s) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kFairShare: return "fair-share";
  }
  assert(!"to_string(SchedulerKind): value outside the enum");
  return "?";
}

struct ServiceConfig {
  /// Transport + ARQ + clock for the shared servicer. kSim is rejected —
  /// the service exists to multiplex executed sessions.
  net::NetConfig net;
  std::size_t max_live_sessions = 8;  ///< worker pool size
  std::size_t max_pending = 64;       ///< admitted (queued + running) cap
  SchedulerKind scheduler = SchedulerKind::kFifo;
};

/// One finished session, as the coordinator saw it.
struct SessionOutcome {
  std::uint32_t session_id = 0;  ///< wire session id (>= 1, submit order)
  ReplyStatus status = ReplyStatus::kTriangleFree;
  std::optional<Triangle> triangle;
  std::uint64_t charged_bits = 0;  ///< transcript total across the run
  net::WireStats wire;
  bool accounting_exact = false;
  bool conformance_ok = false;
  std::string error;  ///< non-empty iff status == kError

  [[nodiscard]] ServiceReply reply() const;
};

class ServiceCoordinator {
 public:
  explicit ServiceCoordinator(const ServiceConfig& cfg);
  ~ServiceCoordinator();  ///< drain() + stop

  ServiceCoordinator(const ServiceCoordinator&) = delete;
  ServiceCoordinator& operator=(const ServiceCoordinator&) = delete;

  /// Admit one session. The wire session id is allocated HERE, monotonically
  /// from 1 in submission order, so a fixed submission sequence names the
  /// same ids regardless of worker scheduling — the reproducibility anchor
  /// for fault keying. Throws NetError(kServiceBusy) when the admitted
  /// count is at max_pending, or NetError(kClosed) after drain().
  std::future<SessionOutcome> submit(const SessionSpec& spec);

  /// Stop admitting and wait until every admitted session has finished.
  /// Idempotent; called by the destructor.
  void drain();

  [[nodiscard]] std::size_t live_sessions() const;     ///< currently executing
  [[nodiscard]] std::size_t pending_sessions() const;  ///< admitted, not yet done
  [[nodiscard]] std::uint64_t sessions_completed() const;
  [[nodiscard]] std::uint64_t sessions_rejected() const;

 private:
  struct Pending {
    SessionSpec spec;
    std::uint32_t wire_id = 0;
    std::promise<SessionOutcome> promise;
  };

  void worker_loop();
  /// Pop the next admitted session per the scheduler, or nullopt to exit.
  [[nodiscard]] std::optional<Pending> next_locked(std::unique_lock<std::mutex>& lock);
  [[nodiscard]] SessionOutcome execute(const SessionSpec& spec, std::uint32_t wire_id);

  ServiceConfig cfg_;
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::SharedServicer> servicer_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   ///< drain(): admitted count fell
  std::deque<Pending> queue_;
  std::vector<std::string> tenant_rotation_;  ///< fair-share cursor state
  std::size_t rotation_next_ = 0;
  std::uint32_t next_wire_id_ = 1;  ///< 0 is reserved for solo NetSession
  std::size_t running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tft::service
