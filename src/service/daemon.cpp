#include "service/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/error.h"
#include "net/frame.h"

namespace tft::service {

using net::NetError;
using net::NetErrorKind;

namespace {

[[noreturn]] void throw_errno(NetErrorKind kind, const char* what) {
  throw NetError(kind, std::string(what) + ": " + std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(NetErrorKind::kClosed, "service write");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void read_exact(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(NetErrorKind::kClosed, "service read");
    }
    if (n == 0) {
      throw NetError(NetErrorKind::kClosed, "peer closed mid-blob");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Blob framing, the frame wire discipline applied to one byte string:
/// [u32 LE len] [bytes] [u32 LE crc32(bytes)].
void write_blob(int fd, const std::vector<std::uint8_t>& bytes) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes.size() + 8);
  const auto len = static_cast<std::uint32_t>(bytes.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.insert(out.end(), bytes.begin(), bytes.end());
  const std::uint32_t crc = net::crc32(bytes);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  write_all(fd, out.data(), out.size());
}

std::vector<std::uint8_t> read_blob(int fd) {
  std::uint8_t prefix[4];
  read_exact(fd, prefix, 4);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (len > net::kMaxBodyBytes) {
    throw NetError(NetErrorKind::kCorrupt, "service blob length exceeds the frame body cap");
  }
  std::vector<std::uint8_t> bytes(len);
  if (len > 0) read_exact(fd, bytes.data(), len);
  std::uint8_t trailer[4];
  read_exact(fd, trailer, 4);
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(trailer[i]) << (8 * i);
  if (crc != net::crc32(bytes)) {
    throw NetError(NetErrorKind::kCorrupt, "service blob failed its CRC");
  }
  return bytes;
}

}  // namespace

ServiceDaemon::ServiceDaemon(const ServiceConfig& cfg, std::uint16_t port)
    : coordinator_(std::make_unique<ServiceCoordinator>(cfg)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno(NetErrorKind::kSetup, "socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno(NetErrorKind::kSetup, "bind 127.0.0.1");
  }
  if (::listen(listen_fd_, 64) < 0) throw_errno(NetErrorKind::kSetup, "listen");

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    throw_errno(NetErrorKind::kSetup, "getsockname");
  }
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

ServiceDaemon::~ServiceDaemon() { shutdown(); }

void ServiceDaemon::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  // Waking the acceptor: shutdown() fails accept(2) with EINVAL on Linux,
  // and the loop's stop check does the rest.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  (void)::close(listen_fd_);
  listen_fd_ = -1;
  coordinator_->drain();
}

void ServiceDaemon::accept_loop() {
  // One thread per connection: a session can run for seconds, and the soak
  // test's whole point is concurrent clients making concurrent sessions.
  std::vector<std::thread> handlers;
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() closed the listener out from under us
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    handlers.emplace_back([this, fd] {
      serve_connection(fd);
      (void)::close(fd);
    });
  }
  for (auto& h : handlers) h.join();
}

void ServiceDaemon::serve_connection(int fd) {
  ServiceReply reply;
  try {
    const std::vector<std::uint8_t> blob = read_blob(fd);
    const SessionSpec spec = decode_spec(blob);
    std::future<SessionOutcome> future;
    try {
      future = coordinator_->submit(spec);
    } catch (const NetError& e) {
      // Admission refusal is an answer, not a dropped connection. Two typed
      // refusals, distinguished so clients back off correctly: kServiceBusy
      // (capacity — retry later) travels as kBusy, while kClosed (the
      // service is draining for shutdown) travels as kError — retrying a
      // draining daemon is pointless.
      reply.status =
          e.kind() == NetErrorKind::kServiceBusy ? ReplyStatus::kBusy : ReplyStatus::kError;
      reply.error = e.what();
      write_blob(fd, encode_reply(reply));
      return;
    }
    reply = future.get().reply();
    write_blob(fd, encode_reply(reply));
  } catch (const std::exception& e) {
    // Best effort: if the failure left the stream writable, say what broke.
    reply = ServiceReply{};
    reply.status = ReplyStatus::kError;
    reply.error = e.what();
    try {
      write_blob(fd, encode_reply(reply));
    } catch (...) {
    }
  }
}

ServiceReply request(std::uint16_t port, const SessionSpec& spec) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(NetErrorKind::kSetup, "socket");
  struct Closer {
    int fd;
    ~Closer() { (void)::close(fd); }
  } closer{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno(NetErrorKind::kSetup, "connect 127.0.0.1");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  write_blob(fd, encode_spec(spec));
  return decode_reply(read_blob(fd));
}

ServiceReply request_with_retry(std::uint16_t port, const SessionSpec& spec,
                                std::size_t retries, std::uint64_t backoff_ms) {
  ServiceReply reply = request(port, spec);
  std::uint64_t delay = backoff_ms;
  for (std::size_t attempt = 0; attempt < retries && reply.status == ReplyStatus::kBusy;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    // Bounded exponential: doubling capped at 32x the base, so a long retry
    // budget degrades to steady polling instead of hour-long sleeps.
    delay = std::min<std::uint64_t>(delay * 2, backoff_ms * 32);
    reply = request(port, spec);
  }
  return reply;
}

}  // namespace tft::service
