#pragma once

#include <cstdint>
#include <memory>
#include <thread>

#include "service/coordinator.h"
#include "service/spec.h"

/// \file daemon.h
/// The service's network face: a ServiceDaemon listens on a loopback TCP
/// port, reads one encoded SessionSpec per connection, hands it to its
/// ServiceCoordinator, and writes back one encoded ServiceReply. The blob
/// framing reuses the frame wire discipline — `[u32 LE len] [bytes]
/// [u32 LE crc32(bytes)]` — so a corrupted request dies to the same CRC
/// check a corrupted frame would, and a kServiceBusy rejection travels as
/// a well-formed kBusy reply, never a dropped connection.
///
/// request() is the matching client half: tft_client and the CI soak are
/// both this one call in a loop.

namespace tft::service {

class ServiceDaemon {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, read back via port())
  /// and starts the accept loop. The coordinator is constructed from `cfg`
  /// and owned by the daemon.
  ServiceDaemon(const ServiceConfig& cfg, std::uint16_t port = 0);
  ~ServiceDaemon();  ///< stop accepting, drain the coordinator

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ServiceCoordinator& coordinator() noexcept { return *coordinator_; }

  /// Stop accepting connections and drain in-flight sessions. Idempotent.
  void shutdown();

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::unique_ptr<ServiceCoordinator> coordinator_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  bool stopped_ = false;
};

/// Client half: connect to 127.0.0.1:`port`, send `spec`, wait for the
/// reply (the call blocks for the whole session). Throws net::NetError on
/// connection or codec failure; a busy service is NOT an error — it comes
/// back as a reply with status kBusy.
[[nodiscard]] ServiceReply request(std::uint16_t port, const SessionSpec& spec);

/// request() with bounded exponential backoff on kBusy replies: up to
/// `retries` re-requests, sleeping backoff_ms, 2*backoff_ms, 4*... (capped
/// at 32x) between attempts. Returns the first non-kBusy reply, or the last
/// kBusy reply once retries are exhausted — the caller still sees status
/// kBusy and can exit accordingly. Only kBusy is retried: errors, including
/// a draining daemon's kError reply, surface immediately.
[[nodiscard]] ServiceReply request_with_retry(std::uint16_t port, const SessionSpec& spec,
                                              std::size_t retries, std::uint64_t backoff_ms);

}  // namespace tft::service
