#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/tester.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "net/session.h"

/// \file spec.h
/// The service-layer request/reply vocabulary: a SessionSpec names one
/// testing session — which instance family to generate, how to partition
/// it, which protocol to run — compactly enough to travel a wire, and a
/// ServiceReply carries the verdict plus the accounting summary back.
///
/// Both sides use the canonical gamma byte codec (comm/wire.h), the same
/// dialect as frames and player checkpoints: a spec is a pure value, so two
/// decodes of the same bytes build byte-identical instances — the service's
/// determinism anchor. The instance itself is never shipped; the spec's
/// (family, n, seed, param) coordinates regenerate it on the server, which
/// keeps a request a few dozen bytes regardless of m.

namespace tft::service {

/// Instance families the service can generate (a subset of
/// graph/generators.h chosen to match the tft_cli families).
enum class InstanceFamily : std::uint8_t {
  kPlanted,    ///< planted_triangles(n, param, rng)
  kHub,        ///< hub_matching(n, param, rng)
  kGnp,        ///< gnp(n, param/100/n, rng) — param = 100 * average degree
  kMu,         ///< tripartite_mu(n/3, param/100, rng)
  kBipartite,  ///< bipartite_gnp(n, 2*(param/100)/n, rng)
};

[[nodiscard]] constexpr const char* to_string(InstanceFamily f) noexcept {
  switch (f) {
    case InstanceFamily::kPlanted: return "planted";
    case InstanceFamily::kHub: return "hub";
    case InstanceFamily::kGnp: return "gnp";
    case InstanceFamily::kMu: return "mu";
    case InstanceFamily::kBipartite: return "bipartite";
  }
  assert(!"to_string(InstanceFamily): value outside the enum");
  return "?";
}

[[nodiscard]] std::optional<InstanceFamily> parse_family(const std::string& s) noexcept;

/// One testing session, as submitted: everything needed to regenerate the
/// instance and run the protocol, nothing more.
struct SessionSpec {
  ProtocolKind protocol = ProtocolKind::kSimOblivious;
  InstanceFamily family = InstanceFamily::kPlanted;
  std::uint32_t n = 1024;     ///< vertex universe
  std::uint32_t k = 4;        ///< players
  std::uint64_t seed = 1;     ///< instance + protocol randomness root
  std::uint32_t eps_micro = 100000;  ///< eps in millionths (0.1 default)
  /// Family knob: triangles (planted), hubs (hub), 100*average degree
  /// (gnp / bipartite), 100*gamma (mu). 0 picks the family's default.
  std::uint64_t param = 0;
  /// Fair-share scheduling key; empty = the anonymous tenant.
  std::string tenant;
  /// Servicer shard placement hint (SharedServicer::SessionOptions::
  /// shard_affinity): 0 = route by session id, s >= 1 pins to shard
  /// (s-1) % num_shards. Placement never changes the session's bytes or
  /// accounting. Version-gated on the wire: a spec with the default 0
  /// encodes as v1, byte-identical to pre-shard clients; only a non-zero
  /// hint emits the v2 encoding.
  std::uint32_t shard_affinity = 0;

  bool operator==(const SessionSpec&) const = default;
};

/// Canonical byte encoding (versioned gamma codec).
[[nodiscard]] std::vector<std::uint8_t> encode_spec(const SessionSpec& spec);
/// Throws net::NetError(kCorrupt) on malformed bytes.
[[nodiscard]] SessionSpec decode_spec(std::span<const std::uint8_t> bytes);

/// Regenerate the spec's instance and partition it among its k players —
/// a pure function of (family, n, param, seed, k).
[[nodiscard]] std::vector<PlayerInput> build_players(const SessionSpec& spec);

/// TesterOptions a spec implies (seed folded, eps restored from micro).
[[nodiscard]] TesterOptions tester_options(const SessionSpec& spec);

/// The reply's outcome tag — doubles as the tft_client exit code.
enum class ReplyStatus : std::uint8_t {
  kTriangleFree = 0,  ///< consistent with triangle-free
  kTriangle = 1,      ///< certified triangle found
  kBusy = 2,          ///< admission refused (kServiceBusy): retry later
  kError = 3,         ///< typed failure; see `error`
};

/// What the service sends back: verdict + the accounting summary a client
/// would otherwise read off WireStats.
struct ServiceReply {
  ReplyStatus status = ReplyStatus::kTriangleFree;
  std::uint32_t session_id = 0;  ///< wire session id the coordinator assigned
  std::optional<Triangle> triangle;
  std::uint64_t charged_bits = 0;    ///< transcript total (the paper's cost)
  std::uint64_t payload_bits = 0;    ///< delivered on the wire
  std::uint64_t messages = 0;
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  bool accounting_exact = false;  ///< verify_accounting passed
  bool conformance_ok = false;    ///< per-run model referee passed
  std::string error;              ///< non-empty iff status == kError

  bool operator==(const ServiceReply&) const = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_reply(const ServiceReply& reply);
[[nodiscard]] ServiceReply decode_reply(std::span<const std::uint8_t> bytes);

}  // namespace tft::service
