#include "service/spec.h"

#include <algorithm>

#include "comm/wire.h"
#include "graph/generators.h"
#include "net/error.h"
#include "util/rng.h"

namespace tft::service {

namespace {

constexpr std::uint64_t kSpecVersion = 1;
/// v2 appends shard_affinity after tenant. Emitted only when the field is
/// non-zero, so every pre-shard spec (and every spec that doesn't pin a
/// shard) still produces the v1 bytes — the wire stays byte-identical at
/// the default.
constexpr std::uint64_t kSpecVersionShard = 2;
constexpr std::uint64_t kReplyVersion = 1;
/// Sanity bound on embedded strings (tenant, error): a spec is a request
/// header, not a payload channel.
constexpr std::uint64_t kMaxStringBytes = 4096;

void put_string(BitWriter& w, const std::string& s) {
  if (s.size() > kMaxStringBytes) {
    throw net::NetError(net::NetErrorKind::kSetup, "service string field too long to encode");
  }
  w.put_gamma(s.size());
  for (const char c : s) w.put_bits(static_cast<std::uint8_t>(c), 8);
}

std::string get_string(BitReader& r) {
  const std::uint64_t len = r.get_gamma();
  if (len > kMaxStringBytes || len * 8 > r.remaining()) {
    throw net::NetError(net::NetErrorKind::kCorrupt,
                        "service string longer than its enclosing bytes");
  }
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(r.get_bits(8)));
  }
  return s;
}

template <typename Enum>
Enum checked_enum(std::uint64_t raw, std::uint64_t last, const char* what) {
  if (raw > last) {
    throw net::NetError(net::NetErrorKind::kCorrupt, std::string(what) + " out of range");
  }
  return static_cast<Enum>(raw);
}

}  // namespace

std::optional<InstanceFamily> parse_family(const std::string& s) noexcept {
  if (s == "planted") return InstanceFamily::kPlanted;
  if (s == "hub") return InstanceFamily::kHub;
  if (s == "gnp") return InstanceFamily::kGnp;
  if (s == "mu") return InstanceFamily::kMu;
  if (s == "bipartite") return InstanceFamily::kBipartite;
  return std::nullopt;
}

std::vector<std::uint8_t> encode_spec(const SessionSpec& spec) {
  BitWriter w;
  w.put_gamma(spec.shard_affinity == 0 ? kSpecVersion : kSpecVersionShard);
  w.put_gamma(static_cast<std::uint64_t>(spec.protocol));
  w.put_gamma(static_cast<std::uint64_t>(spec.family));
  w.put_gamma(spec.n);
  w.put_gamma(spec.k);
  w.put_bits(spec.seed, 64);  // fixed width: gamma cannot carry UINT64_MAX
  w.put_gamma(spec.eps_micro);
  w.put_gamma(spec.param);
  put_string(w, spec.tenant);
  if (spec.shard_affinity != 0) w.put_gamma(spec.shard_affinity);
  return w.bytes();
}

SessionSpec decode_spec(std::span<const std::uint8_t> bytes) {
  try {
    BitReader r(bytes, bytes.size() * std::uint64_t{8});
    const std::uint64_t version = r.get_gamma();
    if (version != kSpecVersion && version != kSpecVersionShard) {
      throw net::NetError(net::NetErrorKind::kCorrupt, "unknown spec version");
    }
    SessionSpec spec;
    spec.protocol = checked_enum<ProtocolKind>(
        r.get_gamma(), static_cast<std::uint64_t>(ProtocolKind::kExact), "spec protocol");
    spec.family = checked_enum<InstanceFamily>(
        r.get_gamma(), static_cast<std::uint64_t>(InstanceFamily::kBipartite), "spec family");
    const std::uint64_t n = r.get_gamma();
    const std::uint64_t k = r.get_gamma();
    if (n > UINT32_MAX || k == 0 || k > n) {
      throw net::NetError(net::NetErrorKind::kCorrupt, "spec topology out of range");
    }
    spec.n = static_cast<std::uint32_t>(n);
    spec.k = static_cast<std::uint32_t>(k);
    spec.seed = r.get_bits(64);
    const std::uint64_t eps_micro = r.get_gamma();
    if (eps_micro == 0 || eps_micro > 1'000'000) {
      throw net::NetError(net::NetErrorKind::kCorrupt, "spec eps out of (0, 1]");
    }
    spec.eps_micro = static_cast<std::uint32_t>(eps_micro);
    spec.param = r.get_gamma();
    spec.tenant = get_string(r);
    if (version >= kSpecVersionShard) {
      const std::uint64_t aff = r.get_gamma();
      if (aff == 0 || aff > UINT32_MAX) {
        // A v2 spec with affinity 0 should have been encoded as v1; reject
        // the redundant form so the encoding stays canonical (one value,
        // one byte string).
        throw net::NetError(net::NetErrorKind::kCorrupt, "spec shard affinity out of range");
      }
      spec.shard_affinity = static_cast<std::uint32_t>(aff);
    }
    return spec;
  } catch (const WireError& e) {
    throw net::NetError(net::NetErrorKind::kCorrupt,
                        std::string("undecodable session spec: ") + e.what());
  }
}

std::vector<PlayerInput> build_players(const SessionSpec& spec) {
  Rng rng(spec.seed);
  const auto n = static_cast<Vertex>(spec.n);
  Graph g;
  switch (spec.family) {
    case InstanceFamily::kPlanted: {
      const auto t = static_cast<std::uint32_t>(spec.param != 0 ? spec.param : spec.n / 12);
      g = gen::planted_triangles(n, t, rng);
      break;
    }
    case InstanceFamily::kHub: {
      const auto hubs = static_cast<std::uint32_t>(spec.param != 0 ? spec.param : 3);
      g = gen::hub_matching(n, hubs, rng);
      break;
    }
    case InstanceFamily::kGnp: {
      const double d = spec.param != 0 ? static_cast<double>(spec.param) / 100.0 : 16.0;
      g = gen::gnp(n, d / static_cast<double>(spec.n), rng);
      break;
    }
    case InstanceFamily::kMu: {
      const double gamma = spec.param != 0 ? static_cast<double>(spec.param) / 100.0 : 0.9;
      g = gen::tripartite_mu(n / 3, gamma, rng);
      break;
    }
    case InstanceFamily::kBipartite: {
      const double d = spec.param != 0 ? static_cast<double>(spec.param) / 100.0 : 8.0;
      g = gen::bipartite_gnp(n, 2.0 * d / static_cast<double>(spec.n), rng);
      break;
    }
  }
  return partition_random(g, spec.k, rng);
}

TesterOptions tester_options(const SessionSpec& spec) {
  TesterOptions opts;
  opts.protocol = spec.protocol;
  opts.eps = static_cast<double>(spec.eps_micro) / 1e6;
  // The same fold tft_cli applies, so a serviced session and a CLI run of
  // the same spec draw identical protocol randomness.
  opts.seed = spec.seed * 7919;
  return opts;
}

std::vector<std::uint8_t> encode_reply(const ServiceReply& reply) {
  BitWriter w;
  w.put_gamma(kReplyVersion);
  w.put_gamma(static_cast<std::uint64_t>(reply.status));
  w.put_gamma(reply.session_id);
  w.put_bits(reply.triangle.has_value() ? 1 : 0, 1);
  if (reply.triangle) {
    w.put_gamma(reply.triangle->a);
    w.put_gamma(reply.triangle->b);
    w.put_gamma(reply.triangle->c);
  }
  w.put_gamma(reply.charged_bits);
  w.put_gamma(reply.payload_bits);
  w.put_gamma(reply.messages);
  w.put_gamma(reply.frames);
  w.put_gamma(reply.wire_bytes);
  w.put_bits(reply.accounting_exact ? 1 : 0, 1);
  w.put_bits(reply.conformance_ok ? 1 : 0, 1);
  put_string(w, reply.error);
  return w.bytes();
}

ServiceReply decode_reply(std::span<const std::uint8_t> bytes) {
  try {
    BitReader r(bytes, bytes.size() * std::uint64_t{8});
    if (r.get_gamma() != kReplyVersion) {
      throw net::NetError(net::NetErrorKind::kCorrupt, "unknown reply version");
    }
    ServiceReply reply;
    reply.status = checked_enum<ReplyStatus>(
        r.get_gamma(), static_cast<std::uint64_t>(ReplyStatus::kError), "reply status");
    const std::uint64_t sid = r.get_gamma();
    if (sid > UINT32_MAX) {
      throw net::NetError(net::NetErrorKind::kCorrupt, "reply session id out of range");
    }
    reply.session_id = static_cast<std::uint32_t>(sid);
    if (r.get_bits(1) != 0) {
      Triangle t{};
      const std::uint64_t a = r.get_gamma();
      const std::uint64_t b = r.get_gamma();
      const std::uint64_t c = r.get_gamma();
      if (a > UINT32_MAX || b > UINT32_MAX || c > UINT32_MAX) {
        throw net::NetError(net::NetErrorKind::kCorrupt, "reply triangle out of range");
      }
      t.a = static_cast<Vertex>(a);
      t.b = static_cast<Vertex>(b);
      t.c = static_cast<Vertex>(c);
      reply.triangle = t;
    }
    reply.charged_bits = r.get_gamma();
    reply.payload_bits = r.get_gamma();
    reply.messages = r.get_gamma();
    reply.frames = r.get_gamma();
    reply.wire_bytes = r.get_gamma();
    reply.accounting_exact = r.get_bits(1) != 0;
    reply.conformance_ok = r.get_bits(1) != 0;
    reply.error = get_string(r);
    return reply;
  } catch (const WireError& e) {
    throw net::NetError(net::NetErrorKind::kCorrupt,
                        std::string("undecodable service reply: ") + e.what());
  }
}

}  // namespace tft::service
