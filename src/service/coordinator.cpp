#include "service/coordinator.h"

#include <utility>

#include "comm/channel.h"
#include "comm/conformance.h"
#include "net/error.h"

namespace tft::service {

using net::NetError;
using net::NetErrorKind;

ServiceReply SessionOutcome::reply() const {
  ServiceReply r;
  r.status = status;
  r.session_id = session_id;
  r.triangle = triangle;
  r.charged_bits = charged_bits;
  r.payload_bits = wire.payload_bits();
  r.messages = wire.messages();
  r.frames = wire.frames_delivered;
  r.wire_bytes = wire.wire_bytes;
  r.accounting_exact = accounting_exact;
  r.conformance_ok = conformance_ok;
  r.error = error;
  return r;
}

ServiceCoordinator::ServiceCoordinator(const ServiceConfig& cfg) : cfg_(cfg) {
  if (cfg_.net.transport == net::TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup,
                   "the service multiplexes executed sessions; kSim has no wire");
  }
  if (cfg_.net.virtual_clock && cfg_.net.transport != net::TransportKind::kInProc) {
    throw NetError(NetErrorKind::kSetup,
                   "virtual clock needs the in-proc transport (kernel socket buffers "
                   "are invisible to the logical clock)");
  }
  if (cfg_.max_live_sessions == 0) {
    throw NetError(NetErrorKind::kSetup, "the service needs at least one worker");
  }
  if (cfg_.max_pending < cfg_.max_live_sessions) {
    throw NetError(NetErrorKind::kSetup,
                   "max_pending below max_live_sessions would idle admitted workers");
  }
  transport_ = net::make_transport(cfg_.net);

  net::SharedServicer::Options opts;
  opts.arq = cfg_.net.arq;
  opts.retry = cfg_.net.retry;
  opts.faults = cfg_.net.faults;
  opts.virtual_clock = cfg_.net.virtual_clock;
  opts.timed_recheck = cfg_.net.transport == net::TransportKind::kSocket;
  opts.crash_tolerance = cfg_.net.crash_tolerance;
  opts.num_shards = cfg_.net.num_shards;
  servicer_ = std::make_unique<net::SharedServicer>(opts);
  servicer_->start();

  workers_.reserve(cfg_.max_live_sessions);
  for (std::size_t i = 0; i < cfg_.max_live_sessions; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServiceCoordinator::~ServiceCoordinator() {
  drain();
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  servicer_->finish();
}

std::future<SessionOutcome> ServiceCoordinator::submit(const SessionSpec& spec) {
  const std::lock_guard lock(mu_);
  if (draining_ || stop_) {
    throw NetError(NetErrorKind::kClosed, "submit after the service began draining");
  }
  if (queue_.size() + running_ >= cfg_.max_pending) {
    ++rejected_;
    throw NetError(NetErrorKind::kServiceBusy,
                   "service at capacity: " + std::to_string(running_) + " running, " +
                       std::to_string(queue_.size()) + " queued (cap " +
                       std::to_string(cfg_.max_pending) + "); retry later");
  }
  Pending p;
  p.spec = spec;
  p.wire_id = next_wire_id_++;
  auto future = p.promise.get_future();
  if (cfg_.scheduler == SchedulerKind::kFairShare) {
    bool known = false;
    for (const auto& t : tenant_rotation_) known = known || t == spec.tenant;
    if (!known) tenant_rotation_.push_back(spec.tenant);
  }
  queue_.push_back(std::move(p));
  queue_cv_.notify_one();
  return future;
}

std::optional<ServiceCoordinator::Pending> ServiceCoordinator::next_locked(
    std::unique_lock<std::mutex>& lock) {
  queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // stop_ with nothing left
  std::size_t pick = 0;
  if (cfg_.scheduler == SchedulerKind::kFairShare && !tenant_rotation_.empty()) {
    // Round-robin across tenants: scan the rotation from the cursor for a
    // tenant with queued work, take its oldest item, park the cursor past
    // it. FIFO within a tenant falls out of taking the first match.
    for (std::size_t off = 0; off < tenant_rotation_.size(); ++off) {
      const std::size_t ti = (rotation_next_ + off) % tenant_rotation_.size();
      bool found = false;
      for (std::size_t qi = 0; qi < queue_.size(); ++qi) {
        if (queue_[qi].spec.tenant == tenant_rotation_[ti]) {
          pick = qi;
          found = true;
          break;
        }
      }
      if (found) {
        rotation_next_ = (ti + 1) % tenant_rotation_.size();
        break;
      }
    }
  }
  Pending p = std::move(queue_[pick]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
  return p;
}

void ServiceCoordinator::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    auto pending = next_locked(lock);
    if (!pending) return;
    ++running_;
    lock.unlock();
    SessionOutcome out = execute(pending->spec, pending->wire_id);
    // Release the admission slot BEFORE fulfilling the promise: a client
    // that resubmits the instant its future is ready must find room, or a
    // full-depth pipeline would bounce off kServiceBusy spuriously. Both
    // happen under one critical section so drain() — which waits on
    // running_ == 0 under the same mutex — can never observe the slot
    // released while the future is still unresolved.
    lock.lock();
    --running_;
    ++completed_;
    pending->promise.set_value(std::move(out));
    idle_cv_.notify_all();
  }
}

SessionOutcome ServiceCoordinator::execute(const SessionSpec& spec, std::uint32_t wire_id) {
  SessionOutcome out;
  out.session_id = wire_id;
  try {
    // Regenerate the instance BEFORE opening the session: generation is pure
    // compute, and an open-but-idle session would stall the virtual clock's
    // quiescence detection for every other live session.
    const std::vector<PlayerInput> players = build_players(spec);

    net::SharedServicer::SessionOptions so;
    so.num_players = spec.k;
    so.session_id = wire_id;
    so.seed = spec.seed;
    so.crash_tolerance = cfg_.net.crash_tolerance;
    so.shard_affinity = spec.shard_affinity;
    const std::size_t sidx = servicer_->open_session(*transport_, so);

    // Capture and sink are both thread-local, so concurrent workers each
    // observe exactly their own session's protocol runs.
    TranscriptCapture capture;
    try {
      net::SessionSink sink(servicer_.get(), sidx);
      const ChannelSinkScope scope(&sink);
      const TestReport report = test_triangle_freeness(players, tester_options(spec));
      out.triangle = report.triangle;
      out.charged_bits = report.bits;
      out.status = report.triangle ? ReplyStatus::kTriangle : ReplyStatus::kTriangleFree;
    } catch (...) {
      // close_session is idempotent and never throws the session's error:
      // the links and the driver slot must be released on every path.
      out.wire = servicer_->close_session(sidx);
      throw;
    }
    out.wire = servicer_->close_session(sidx);
    servicer_->rethrow_session_error(sidx);

    // The executed-mode contract, per session: delivered bytes equal the
    // charged transcript exactly, and every run obeys the model referee.
    net::ChargedTotals charged(spec.k);
    for (const auto& run : capture.runs()) charged.add(run.transcript);
    net::verify_accounting(charged, out.wire);
    out.accounting_exact = true;
    for (const auto& run : capture.runs()) {
      if (auto r = check_conformance(run.model, run.transcript); !r.ok()) {
        throw ConformanceError(std::move(r));
      }
    }
    out.conformance_ok = true;
  } catch (const std::exception& e) {
    out.status = ReplyStatus::kError;
    out.error = e.what();
  }
  return out;
}

void ServiceCoordinator::drain() {
  std::unique_lock lock(mu_);
  draining_ = true;
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ServiceCoordinator::live_sessions() const {
  const std::lock_guard lock(mu_);
  return running_;
}

std::size_t ServiceCoordinator::pending_sessions() const {
  const std::lock_guard lock(mu_);
  return queue_.size() + running_;
}

std::uint64_t ServiceCoordinator::sessions_completed() const {
  const std::lock_guard lock(mu_);
  return completed_;
}

std::uint64_t ServiceCoordinator::sessions_rejected() const {
  const std::lock_guard lock(mu_);
  return rejected_;
}

}  // namespace tft::service
