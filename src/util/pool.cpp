#include "util/pool.h"

#include <atomic>

namespace tft {

namespace {
std::atomic<bool> g_pooling{true};
std::atomic<std::uint64_t> g_acquires{0};
std::atomic<std::uint64_t> g_reuses{0};
}  // namespace

void set_buffer_pooling(bool on) noexcept { g_pooling.store(on, std::memory_order_relaxed); }

bool buffer_pooling() noexcept { return g_pooling.load(std::memory_order_relaxed); }

PoolStats pool_stats() noexcept {
  return {g_acquires.load(std::memory_order_relaxed), g_reuses.load(std::memory_order_relaxed)};
}

void reset_pool_stats() noexcept {
  g_acquires.store(0, std::memory_order_relaxed);
  g_reuses.store(0, std::memory_order_relaxed);
}

namespace detail {
void note_pool_acquire(bool reused) noexcept {
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  if (reused) g_reuses.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace tft
