#include "util/mem.h"

#include <atomic>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace tft {

namespace {

std::atomic<std::uint64_t> g_arena_bytes{0};
std::atomic<std::uint64_t> g_arena_hw{0};

void raise_high_water(std::uint64_t candidate) noexcept {
  std::uint64_t hw = g_arena_hw.load(std::memory_order_relaxed);
  while (candidate > hw &&
         !g_arena_hw.compare_exchange_weak(hw, candidate, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t peak_rss_kb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size = 0;
  long long resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  const auto page_kb = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE)) / 1024;
  return static_cast<std::uint64_t>(resident) * page_kb;
#else
  return peak_rss_kb();
#endif
}

void arena_charge(std::uint64_t bytes) noexcept {
  const std::uint64_t now =
      g_arena_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_high_water(now);
}

void arena_release(std::uint64_t bytes) noexcept {
  g_arena_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t arena_bytes() noexcept { return g_arena_bytes.load(std::memory_order_relaxed); }

std::uint64_t arena_high_water() noexcept {
  return g_arena_hw.load(std::memory_order_relaxed);
}

void arena_reset_high_water() noexcept {
  g_arena_hw.store(g_arena_bytes.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

}  // namespace tft
