#pragma once

/// \file cpu.h
/// Runtime CPU-feature detection for the kernel dispatch layer
/// (graph/intersect.h).
///
/// `features()` probes CPUID exactly once (thread-safe, first call wins) and
/// caches the result; the kernel layer reads it to fill its function-pointer
/// tables. A SIMD path is eligible only when the instruction set is present
/// AND the OS saves the extended register state (XGETBV), the same rule glibc
/// uses for its ifunc resolvers.
///
/// Compile-time gates compose with the runtime probe:
///   * building with -DTFT_DISABLE_AVX2 removes every AVX2 code path from the
///     binary; `features().avx2` then reports false regardless of the host,
///     so dispatch falls back to the always-compiled scalar reference (CI
///     builds one matrix cell this way);
///   * non-x86 targets compile to an all-false feature set.

namespace tft::cpu {

struct Features {
  bool avx2 = false;   ///< AVX2 usable: CPUID bit + OS YMM state support.
  bool bmi2 = false;   ///< BMI2 (pdep/pext) present.
  bool popcnt = false; ///< POPCNT present.
};

/// The host's feature set, probed once and cached. Never throws.
[[nodiscard]] const Features& features() noexcept;

/// True iff AVX2 kernels are both compiled in and usable on this host.
[[nodiscard]] bool have_avx2() noexcept;

}  // namespace tft::cpu
