#include "util/rng.h"

namespace tft {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection, giving an
  // exactly uniform result for any bound >= 1.
  if (bound <= 1) return 0;
  const std::uint64_t threshold = (0ULL - bound) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    // Use 128-bit multiply-shift to map r into [0, bound).
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace tft
