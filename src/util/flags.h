#pragma once

#include <cstdint>
#include <map>
#include <string>

/// \file flags.h
/// Minimal `--key=value` command-line parsing for examples and benches.
/// Not a general-purpose parser; just enough to make binaries scriptable.

namespace tft {

class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tft
