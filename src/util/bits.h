#pragma once

#include <cstdint>

/// \file bits.h
/// Bit-width helpers used for communication accounting.
///
/// The paper measures protocol cost in bits. Throughout the library a vertex
/// id out of a universe of size n is charged ceil(log2 n) bits, an edge is
/// charged two vertex ids, and a non-negative counter x is charged
/// ceil(log2(x+1)) + 1 bits (value plus a terminator/flag bit, matching the
/// usual self-delimiting convention used implicitly in the paper).

namespace tft {

/// Number of bits needed to represent values in [0, x], at least 1.
[[nodiscard]] constexpr std::uint64_t bit_width_of(std::uint64_t x) noexcept {
  std::uint64_t w = 1;
  while (x > 1) {
    x >>= 1;
    ++w;
  }
  return w;
}

/// Bits charged for one vertex id from a universe of n vertices.
[[nodiscard]] constexpr std::uint64_t vertex_bits(std::uint64_t n) noexcept {
  return bit_width_of(n > 0 ? n - 1 : 0);
}

/// Bits charged for one edge (two endpoints) from a universe of n vertices.
[[nodiscard]] constexpr std::uint64_t edge_bits(std::uint64_t n) noexcept {
  return 2 * vertex_bits(n);
}

/// Bits charged for transmitting a non-negative counter of value x.
[[nodiscard]] constexpr std::uint64_t count_bits(std::uint64_t x) noexcept {
  return bit_width_of(x) + 1;
}

/// ceil(log2 x) for x >= 1.
[[nodiscard]] constexpr std::uint64_t ceil_log2(std::uint64_t x) noexcept {
  std::uint64_t w = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++w;
  }
  return w;
}

}  // namespace tft
