#include "util/stats.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace tft {

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Summary::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::ci95() const noexcept {
  return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  if (sxx <= 0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
  }
  fit.r2 = syy > 0 ? 1.0 - ss_res / syy : 1.0;
  return fit;
}

LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i] > 0 && ys[i] > 0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

namespace {
// Wilson score interval bound for z = 1.96.
double wilson(double p, double n, int sign) {
  if (n <= 0) return sign < 0 ? 0.0 : 1.0;
  constexpr double z = 1.96;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  const double v = (center + sign * margin) / denom;
  return std::min(1.0, std::max(0.0, v));
}
}  // namespace

double SuccessRate::wilson_low() const noexcept {
  return wilson(rate(), static_cast<double>(trials), -1);
}

double SuccessRate::wilson_high() const noexcept {
  return wilson(rate(), static_cast<double>(trials), +1);
}

std::string format_row(const std::vector<std::pair<std::string, double>>& cells) {
  std::string out;
  char buf[96];
  for (const auto& [name, value] : cells) {
    std::snprintf(buf, sizeof(buf), "  %s=%-12.6g", name.c_str(), value);
    out += buf;
  }
  return out;
}

}  // namespace tft
