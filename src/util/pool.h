#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

/// \file pool.h
/// Per-thread object pooling for the sweep layer's hot trial loops.
///
/// Every protocol run builds a Transcript whose event vector grows by
/// reallocation; a min-budget sweep executes tens of thousands of such runs,
/// so the allocator churn dominates once the graph kernels are fast. The
/// pool keeps a small per-thread free list of retired objects and hands them
/// back (after a caller-supplied reset) instead of allocating fresh ones.
///
/// Determinism contract: pooling is invisible. A pooled object is reset to
/// the freshly-constructed state before reuse, so every observable output —
/// transcripts, bench rows, golden files — is byte-identical with pooling on
/// or off (tests/test_sweep.cpp locks this in). The free lists are
/// thread_local, so no locks sit on the trial path and the thread-count
/// byte-identity contract of util/parallel.h is untouched.
///
/// The global switch exists for A/B benchmarking (`--pool=0` in the bench
/// harness) and is read atomically; flipping it mid-run only changes where
/// memory comes from, never what is computed.

namespace tft {

/// Global pooling switch, default on. Reads/writes are atomic.
void set_buffer_pooling(bool on) noexcept;
[[nodiscard]] bool buffer_pooling() noexcept;

/// Aggregate pool telemetry (all threads, all pooled types).
struct PoolStats {
  std::uint64_t acquires = 0;  ///< total acquire_pooled calls
  std::uint64_t reuses = 0;    ///< acquires served from a free list
};
[[nodiscard]] PoolStats pool_stats() noexcept;
void reset_pool_stats() noexcept;

namespace detail {
void note_pool_acquire(bool reused) noexcept;

/// Retired objects awaiting reuse on this thread. One list per T; bounded so
/// a burst of nested leases cannot pin unbounded memory.
template <typename T>
[[nodiscard]] inline std::vector<std::unique_ptr<T>>& pool_free_list() {
  static thread_local std::vector<std::unique_ptr<T>> list;
  return list;
}

inline constexpr std::size_t kMaxFreeListSize = 8;
}  // namespace detail

/// RAII lease over a pooled object: returns it to the owning thread's free
/// list on destruction (or frees it outright when pooling is off). Leases
/// must be destroyed on the thread that acquired them — exactly the shape of
/// a trial body, which runs start-to-finish on one worker.
template <typename T>
class PoolLease {
 public:
  PoolLease(std::unique_ptr<T> obj, bool pooled) noexcept
      : obj_(std::move(obj)), pooled_(pooled) {}
  ~PoolLease() {
    if (!pooled_ || obj_ == nullptr) return;
    auto& list = detail::pool_free_list<T>();
    if (list.size() < detail::kMaxFreeListSize) list.push_back(std::move(obj_));
  }
  PoolLease(PoolLease&& other) noexcept
      : obj_(std::move(other.obj_)), pooled_(other.pooled_) {}
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
  PoolLease& operator=(PoolLease&&) = delete;

  [[nodiscard]] T& operator*() const noexcept { return *obj_; }
  [[nodiscard]] T* operator->() const noexcept { return obj_.get(); }
  [[nodiscard]] T* get() const noexcept { return obj_.get(); }

 private:
  std::unique_ptr<T> obj_;
  bool pooled_;
};

/// Acquire a T: reuse the most recently retired one on this thread (calling
/// reset(T&) to restore the freshly-made state) or invoke make() for a new
/// one. make: () -> std::unique_ptr<T>; reset: (T&) -> void.
template <typename T, typename Make, typename Reset>
[[nodiscard]] PoolLease<T> acquire_pooled(Make&& make, Reset&& reset) {
  if (buffer_pooling()) {
    auto& list = detail::pool_free_list<T>();
    if (!list.empty()) {
      std::unique_ptr<T> obj = std::move(list.back());
      list.pop_back();
      reset(*obj);
      detail::note_pool_acquire(/*reused=*/true);
      return PoolLease<T>(std::move(obj), /*pooled=*/true);
    }
    detail::note_pool_acquire(/*reused=*/false);
    return PoolLease<T>(make(), /*pooled=*/true);
  }
  detail::note_pool_acquire(/*reused=*/false);
  return PoolLease<T>(make(), /*pooled=*/false);
}

}  // namespace tft
