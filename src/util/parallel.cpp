#include "util/parallel.h"

#include <memory>

namespace tft {

namespace {

int g_default_threads = 0;  // 0 = all hardware threads
std::unique_ptr<ThreadPool> g_pool;
std::mutex g_pool_mutex;

thread_local bool t_in_parallel_region = false;

/// RAII flag so nested parallel primitives degrade to serial execution.
struct RegionGuard {
  RegionGuard() noexcept { t_in_parallel_region = true; }
  ~RegionGuard() noexcept { t_in_parallel_region = false; }
};

}  // namespace

int hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void set_default_threads(int threads) {
  std::lock_guard lk(g_pool_mutex);
  g_default_threads = threads < 0 ? 0 : threads;
}

int default_threads() noexcept {
  return g_default_threads > 0 ? g_default_threads : hardware_threads();
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

ThreadPool::ThreadPool(int threads) {
  const int extra = (threads < 1 ? 1 : threads) - 1;
  threads_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_on_workers(const std::function<void(int)>& job) {
  if (threads_.empty()) {
    RegionGuard guard;
    job(0);
    return;
  }
  {
    std::lock_guard lk(mutex_);
    job_ = &job;
    ++epoch_;
    running_ = static_cast<int>(threads_.size());
  }
  work_cv_.notify_all();
  {
    RegionGuard guard;
    job(0);
  }
  std::unique_lock lk(mutex_);
  done_cv_.wait(lk, [this] { return running_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(int index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock lk(mutex_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    {
      RegionGuard guard;
      (*job)(index);
    }
    {
      std::lock_guard lk(mutex_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard lk(g_pool_mutex);
  const int want = g_default_threads > 0 ? g_default_threads : hardware_threads();
  if (!g_pool || g_pool->size() != want) g_pool = std::make_unique<ThreadPool>(want);
  return *g_pool;
}

}  // namespace tft
