#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace tft {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

}  // namespace tft
