#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

/// \file parallel.h
/// Deterministic fixed-size thread pool with `parallel_for` /
/// `parallel_reduce`, the execution layer under the trial harnesses and the
/// triangle kernels.
///
/// Determinism contract: every result is bit-identical at any thread count,
/// including 1. Two mechanisms deliver this:
///   * chunk boundaries depend only on (n, grain), never on the thread
///     count or on scheduling — only *which worker* executes a chunk varies;
///   * `parallel_reduce` stores one partial per chunk and folds them
///     serially in chunk order, so even non-associative (floating-point)
///     combines reproduce exactly.
/// Randomized work must derive its stream counter-style from the work-item
/// index (see `derive_rng` in util/rng.h), not from a shared mutating Rng.
///
/// Nested parallel calls (a `parallel_for` body invoking another parallel
/// primitive) run the inner call serially on the calling worker; this keeps
/// the pool deadlock-free and the chunk decomposition — hence the results —
/// unchanged.

namespace tft {

/// Number of hardware threads, at least 1.
[[nodiscard]] int hardware_threads() noexcept;

/// Sets the default worker count for the global pool; 0 (the initial value)
/// means "all hardware threads". This is what the benches' `--threads` flag
/// plumbs through. Not safe to call concurrently with running parallel work.
void set_default_threads(int threads);

/// The resolved default worker count (>= 1).
[[nodiscard]] int default_threads() noexcept;

/// True while the current thread is executing inside a parallel region;
/// parallel primitives degrade to serial execution when set.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Fixed-size pool. Workers park on a condition variable between regions;
/// the calling thread always participates as worker 0, so `ThreadPool(1)`
/// spawns no threads at all.
class ThreadPool {
 public:
  /// `threads` is the total worker count including the caller; values < 1
  /// are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count including the calling thread.
  [[nodiscard]] int size() const noexcept { return static_cast<int>(threads_.size()) + 1; }

  /// Runs job(worker_index) once per worker, concurrently, and returns when
  /// all invocations have completed. The job must not throw.
  void run_on_workers(const std::function<void(int)>& job);

  /// The process-wide pool, sized to `default_threads()`. Rebuilt lazily if
  /// `set_default_threads` changed the size since the last use.
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop(int index);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int running_ = 0;
  bool stop_ = false;
};

namespace detail {

/// Grain resolution shared by all primitives. Auto grain (0) targets ~4
/// chunks per default worker but is computed from a fixed constant so the
/// decomposition never depends on the runtime thread count.
[[nodiscard]] constexpr std::size_t resolve_grain(std::size_t n, std::size_t grain) noexcept {
  constexpr std::size_t kMaxChunks = 64;
  if (grain == 0) grain = n > kMaxChunks ? (n + kMaxChunks - 1) / kMaxChunks : 1;
  return grain;
}

/// Dispatches chunk indices [0, num_chunks) to the global pool via an
/// atomic cursor. body(chunk) may run on any worker; each chunk runs
/// exactly once.
template <typename Body>
void for_chunks(std::size_t num_chunks, Body&& body) {
  if (num_chunks == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (num_chunks == 1 || pool.size() == 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }
  std::atomic<std::size_t> next{0};
  pool.run_on_workers([&](int) {
    for (std::size_t c = next.fetch_add(1, std::memory_order_relaxed); c < num_chunks;
         c = next.fetch_add(1, std::memory_order_relaxed)) {
      body(c);
    }
  });
}

}  // namespace detail

/// Invokes fn(i) for every i in [0, n), fanned across the global pool.
/// fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  const std::size_t g = detail::resolve_grain(n, grain);
  const std::size_t chunks = n == 0 ? 0 : (n + g - 1) / g;
  detail::for_chunks(chunks, [&](std::size_t c) {
    const std::size_t end = std::min(n, (c + 1) * g);
    for (std::size_t i = c * g; i < end; ++i) fn(i);
  });
}

/// Deterministic reduction: partials[c] = map(chunk_begin, chunk_end), then
/// acc = combine(acc, partials[c]) serially in chunk order starting from
/// `identity`. Bit-identical at any thread count, even for floating-point
/// combines.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine,
                                std::size_t grain = 0) {
  if (n == 0) return identity;
  const std::size_t g = detail::resolve_grain(n, grain);
  const std::size_t chunks = (n + g - 1) / g;
  std::vector<T> partial(chunks, identity);
  detail::for_chunks(chunks,
                     [&](std::size_t c) { partial[c] = map(c * g, std::min(n, (c + 1) * g)); });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partial[c]));
  return acc;
}

}  // namespace tft
