#pragma once

#include <cstdint>

/// \file mem.h
/// Process-memory instrumentation for the sweep layer.
///
/// Two complementary measurements back the O(m/k) memory claims of chunked
/// instance generation (graph/chunked.h):
///   * peak_rss_kb / current_rss_kb — OS truth: the resident-set high-water
///     of the whole process (getrusage / /proc/self/statm). Monotone within
///     a run, comparable across --chunked A/B runs of the same binary.
///   * the arena counter — allocator-level truth for the instance layer:
///     instance-cache entries and chunked slice/graph materializations
///     charge their byte sizes while alive, so `arena_high_water()` reports
///     the largest number of instance bytes ever simultaneously live,
///     independent of allocator/OS page accounting. Benches may reset the
///     high-water between sweep rows to get per-row numbers.
///
/// Both are observational only: no measurement feeds back into any protocol
/// or generator decision, so the determinism contract (bench/runner.h) is
/// untouched — memory fields are stripped by bench/check_baseline.py like
/// wall-clock fields.

namespace tft {

/// Lifetime peak resident set size in KiB (ru_maxrss). 0 if unavailable.
[[nodiscard]] std::uint64_t peak_rss_kb() noexcept;

/// Current resident set size in KiB (/proc/self/statm). 0 if unavailable.
[[nodiscard]] std::uint64_t current_rss_kb() noexcept;

/// Charge `bytes` to the instance arena (on allocation of a tracked value).
void arena_charge(std::uint64_t bytes) noexcept;
/// Release `bytes` from the instance arena (on destruction/eviction).
void arena_release(std::uint64_t bytes) noexcept;

/// Bytes currently charged to the arena.
[[nodiscard]] std::uint64_t arena_bytes() noexcept;
/// Largest value arena_bytes() has reached since the last reset.
[[nodiscard]] std::uint64_t arena_high_water() noexcept;
/// Reset the high-water mark to the current charge level.
void arena_reset_high_water() noexcept;

/// RAII charge for a transient allocation (e.g. a chunk slice being
/// materialized): charges on construction, releases on destruction.
class ArenaLease {
 public:
  explicit ArenaLease(std::uint64_t bytes) noexcept : bytes_(bytes) { arena_charge(bytes_); }
  ~ArenaLease() { arena_release(bytes_); }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  /// Re-charge to a new size (e.g. once the final slice size is known).
  void resize(std::uint64_t bytes) noexcept {
    arena_release(bytes_);
    bytes_ = bytes;
    arena_charge(bytes_);
  }

 private:
  std::uint64_t bytes_;
};

}  // namespace tft
