#include "util/cpu.h"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define TFT_CPU_X86 1
#include <cpuid.h>
#endif

namespace tft::cpu {

namespace {

#if defined(TFT_CPU_X86)
/// XGETBV without -mxsave: the raw instruction via inline asm (the _xgetbv
/// intrinsic is gated behind a target option we don't compile with).
unsigned long long read_xcr0() noexcept {
  unsigned lo = 0, hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<unsigned long long>(hi) << 32) | lo;
}
#endif

Features probe() noexcept {
  Features f;
#if defined(TFT_CPU_X86)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.popcnt = (ecx & bit_POPCNT) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool avx = (ecx & bit_AVX) != 0;
  // The OS must opt into saving YMM state (XCR0 bits 1|2) or AVX registers
  // are silently clobbered across context switches.
  bool os_ymm = false;
  if (osxsave && avx) {
    os_ymm = (read_xcr0() & 0x6) == 0x6;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.bmi2 = (ebx & bit_BMI2) != 0;
    f.avx2 = os_ymm && (ebx & bit_AVX2) != 0;
  }
#if defined(TFT_DISABLE_AVX2)
  f.avx2 = false;  // compiled out: dispatch must not select a missing path
#endif
#endif
  return f;
}

}  // namespace

const Features& features() noexcept {
  static const Features f = probe();
  return f;
}

bool have_avx2() noexcept {
#if defined(TFT_DISABLE_AVX2) || !defined(TFT_CPU_X86)
  return false;
#else
  return features().avx2;
#endif
}

}  // namespace tft::cpu
