#include "util/arena.h"

#include <cstdlib>

namespace tft {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  while (true) {
    if (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const std::size_t start = align_up(used_, align);
      if (start + bytes <= b.size) {
        used_ = start + bytes;
        return b.data + start;
      }
      // Active block exhausted: move to the next (pre-existing blocks are
      // reused after a rewind) or fall through to grow.
      if (active_ + 1 < blocks_.size() && blocks_[active_ + 1].size >= bytes + align) {
        ++active_;
        used_ = 0;
        continue;
      }
    }
    add_block(bytes + align);
    // After add_block the new block is last; make it active. Blocks between
    // the old active and the new one were too small for this request — skip
    // them (they'll serve later small requests after the next reset).
    active_ = blocks_.size() - 1;
    used_ = 0;
  }
}

void Arena::add_block(std::size_t min_bytes) {
  std::size_t size = blocks_.empty() ? kMinBlockBytes
                                     : std::min(blocks_.back().size * 2, kMaxBlockBytes);
  if (size < min_bytes) size = align_up(min_bytes, std::size_t{4} << 10);
  auto* data = static_cast<std::byte*>(::operator new(size, std::align_val_t{64}));
  arena_charge(size);
  blocks_.push_back({data, size});
}

void Arena::trim(std::size_t keep_bytes) {
  std::size_t kept = 0;
  std::size_t out = 0;
  for (Block& b : blocks_) {
    if (kept + b.size <= keep_bytes) {
      kept += b.size;
      blocks_[out++] = b;
    } else {
      arena_release(b.size);
      ::operator delete(b.data, std::align_val_t{64});
    }
  }
  blocks_.resize(out);
  active_ = 0;
  used_ = 0;
}

std::size_t Arena::capacity_bytes() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

std::size_t Arena::used_bytes() const noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < active_ && i < blocks_.size(); ++i) total += blocks_[i].size;
  return total + used_;
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace tft
