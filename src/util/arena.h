#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mem.h"

/// \file arena.h
/// Bump-pointer arena for kernel and generator hot loops.
///
/// Hot paths in orientation (`orient()`'s offsets/cols arrays), generator
/// edge staging, and chunked slice assembly used to allocate fresh
/// `std::vector`s per call — at n = 1e5, d = √n that is > 60 MB of
/// malloc + page-fault traffic per `find_triangle` call. The arena replaces
/// those with a per-thread block chain that is bump-allocated, rewound
/// between calls, and reused across calls, so steady-state hot loops touch
/// only warm pages.
///
/// Contracts:
///   * Trivially-destructible payloads only (`alloc<T>` static_asserts):
///     rewind/reset never run destructors.
///   * All block memory charges `arena_charge`/`arena_release` (util/mem.h),
///     so arena footprint shows up in the existing `arena_hw_bytes` bench
///     column with no new plumbing.
///   * `thread_arena()` hands each thread its own arena; `ArenaScope` is the
///     RAII mark/rewind pair hot loops wrap themselves in. Nesting scopes is
///     fine (stack discipline).
///   * Memory is uninitialized; `alloc<T>(count)` returns a span the caller
///     must fully write before reading.
///
/// This is deliberately NOT the accounting "arena" of util/mem.h (a pure
/// byte counter) — this one owns memory; it reports through those counters.

namespace tft {

class Arena {
 public:
  /// First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kMinBlockBytes = std::size_t{64} << 10;  // 64 KiB
  static constexpr std::size_t kMaxBlockBytes = std::size_t{64} << 20;  // 64 MiB

  Arena() = default;
  ~Arena() { release_all(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw bump allocation. Alignment must be a power of two (<= 64).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed allocation of `count` uninitialized T's.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is rewound without running destructors");
    if (count == 0) return {};
    return {static_cast<T*>(allocate(count * sizeof(T), alignof(T))), count};
  }

  /// Position marker for rewind(). Valid until the arena is reset/destroyed
  /// or an earlier marker is rewound past it.
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Marker mark() const noexcept { return {active_, used_}; }

  /// Return to a previous mark. Memory allocated since stays owned by the
  /// arena (capacity, not live bytes) and is reused by later allocations.
  void rewind(Marker m) noexcept {
    active_ = m.block;
    used_ = m.used;
  }

  /// Rewind everything; keep capacity.
  void reset() noexcept {
    active_ = 0;
    used_ = 0;
  }

  /// Free every block whose retention would push kept capacity above
  /// `keep_bytes`, and rewind. The footprint-control knob: a one-off huge
  /// call doesn't pin its blocks for the life of the thread.
  void trim(std::size_t keep_bytes);

  /// Free all blocks and rewind (trim(0)).
  void release_all() { trim(0); }

  [[nodiscard]] std::size_t capacity_bytes() const noexcept;
  [[nodiscard]] std::size_t used_bytes() const noexcept;

 private:
  struct Block {
    std::byte* data = nullptr;
    std::size_t size = 0;
  };

  void add_block(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // index of the block being bumped
  std::size_t used_ = 0;    // bytes used in blocks_[active_]
};

/// The calling thread's arena (created on first use, freed at thread exit).
[[nodiscard]] Arena& thread_arena();

/// RAII mark/rewind over an arena (default: the thread arena). Hot loops
/// open a scope, alloc freely, and the scope hands the memory back on exit.
class ArenaScope {
 public:
  ArenaScope() : ArenaScope(thread_arena()) {}
  explicit ArenaScope(Arena& arena) noexcept : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() noexcept { return arena_; }

 private:
  Arena& arena_;
  Arena::Marker mark_;
};

/// Growable staging buffer in an arena: push_back with doubling growth, then
/// `take()` copies into an exact-size std::vector for the long-lived result.
/// Replaces `std::vector<T> staging; ...; staging.shrink_to_fit()` patterns
/// in generator hot loops — growth churn stays inside reused arena blocks
/// and the escaping vector is allocated once at its final size.
template <typename T>
class ArenaBuf {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ArenaBuf(Arena& arena, std::size_t initial_capacity = 64) : arena_(arena) {
    grow(initial_capacity < 1 ? 1 : initial_capacity);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = value;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  /// Forget the contents, keep the storage (reuse across loop iterations).
  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  /// Copy out as an exactly-sized vector. The arena storage is reclaimed by
  /// the enclosing ArenaScope, not here.
  [[nodiscard]] std::vector<T> take() const { return std::vector<T>(data_, data_ + size_); }

 private:
  void grow(std::size_t new_capacity) {
    const std::span<T> bigger = arena_.alloc<T>(new_capacity);
    if (size_ != 0) std::copy(data_, data_ + size_, bigger.data());
    data_ = bigger.data();
    capacity_ = new_capacity;
  }

  Arena& arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace tft
