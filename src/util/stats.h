#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// \file stats.h
/// Summary statistics and log-log regression used by the benchmark harness
/// to recover empirical scaling exponents from communication measurements.

namespace tft {

/// Streaming mean/variance/min/max accumulator (Welford).
class Summary {
 public:
  void add(double x) noexcept;

  /// Absorbs another accumulator (Chan's parallel Welford update), for
  /// per-thread partials merged after a parallel region. Merging is exact
  /// for count/min/max; mean/variance are combined with the standard
  /// pairwise formula. For bit-identical output across thread counts,
  /// prefer folding per-trial values in trial order (bench/runner.h).
  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of a ~95% normal confidence interval on the mean.
  [[nodiscard]] double ci95() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Least-squares fit of y against x. Requires xs.size() == ys.size() >= 2.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Fit log(y) = a + b*log(x); `slope` is the empirical power-law exponent.
/// All xs and ys must be strictly positive.
[[nodiscard]] LinearFit loglog_fit(std::span<const double> xs, std::span<const double> ys);

/// Fraction of successes with a Wilson-score 95% interval, for reporting
/// empirical protocol success probabilities.
struct SuccessRate {
  std::size_t successes = 0;
  std::size_t trials = 0;
  [[nodiscard]] double rate() const noexcept {
    return trials > 0 ? static_cast<double>(successes) / static_cast<double>(trials) : 0.0;
  }
  [[nodiscard]] double wilson_low() const noexcept;
  [[nodiscard]] double wilson_high() const noexcept;
};

/// Render a fixed-width table row for bench output, e.g. "  n=4096  bits=1.2e4".
[[nodiscard]] std::string format_row(const std::vector<std::pair<std::string, double>>& cells);

}  // namespace tft
