#pragma once

#include <cstdint>
#include <limits>

/// \file rng.h
/// Deterministic pseudo-randomness for the whole library.
///
/// Two facilities:
///   * Rng        — a fast xoshiro256** stream for private randomness.
///   * mix_hash   — a keyed 64-bit mixer used to derive *shared* randomness:
///                  every party evaluates the same pure function of
///                  (seed, tag, index), so no bits ever need to be exchanged,
///                  matching the shared-randomness assumption of the paper.

namespace tft {

/// SplitMix64 step; also the canonical seeder for xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Full-avalanche 64-bit finalizer (splitmix64 / murmur3-style).
[[nodiscard]] constexpr std::uint64_t fmix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless keyed mixer: a pure pseudo-random function of its inputs.
/// Used to implement shared random permutations, vertex sampling and
/// Bernoulli coins that all players evaluate identically. Every input gets
/// a full finalizer round — protocol correctness leans on pairwise
/// independence of coins at *consecutive* indices (birthday-paradox
/// arguments), which a single multiply-avalanche does not deliver.
[[nodiscard]] constexpr std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c = 0) noexcept {
  std::uint64_t s = fmix64(a + 0x9e3779b97f4a7c15ULL);
  s = fmix64(s ^ (b + 0x9e3779b97f4a7c15ULL));
  s = fmix64(s ^ (c + 0x94d049bb133111ebULL));
  return s;
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the library mostly uses the
/// explicit helpers below for reproducibility across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be >= 1.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli coin with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Counter-based stream derivation: the Rng for work item `stream` of a run
/// seeded with `seed`. A pure function of its inputs, so a trial's
/// randomness is bit-identical no matter which thread (or how many threads)
/// executes it — the reproducibility contract of util/parallel.h and the
/// bench runner. Distinct (seed, stream) pairs give independent streams up
/// to mix_hash quality.
[[nodiscard]] inline Rng derive_rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  return Rng(mix_hash(0x7a617274ULL /* stream-domain tag */, seed, stream));
}

}  // namespace tft
