#include "streaming/streaming_triangle.h"

#include <algorithm>

#include "util/bits.h"
#include "util/rng.h"

namespace tft {

StreamingTriangleDetector::StreamingTriangleDetector(std::uint64_t memory_budget_bits, Vertex n,
                                                     std::uint64_t seed)
    : n_(n), budget_bits_(memory_budget_bits), seed_(seed) {}

bool StreamingTriangleDetector::retained(const Edge& e) const noexcept {
  // Identity-keyed coin: uniform in [0,1) per edge, so halving p_ keeps a
  // subset of the current sample.
  const double u =
      static_cast<double>(mix_hash(seed_, e.key()) >> 11) * 0x1.0p-53;
  return u < p_;
}

std::uint64_t StreamingTriangleDetector::memory_bits() const noexcept {
  return static_cast<std::uint64_t>(stored_edges_) * edge_bits(n_);
}

std::uint64_t StreamingTriangleDetector::state_bits() const noexcept {
  // Retained edges plus the current retention level (a small counter).
  return memory_bits() + count_bits(64);
}

void StreamingTriangleDetector::subsample() {
  p_ /= 2.0;
  std::size_t removed_edges = 0;
  for (auto& [v, ns] : adj_) {
    const auto keep_end = std::remove_if(ns.begin(), ns.end(), [&](Vertex w) {
      return !retained(Edge(v, w));
    });
    // Each removed adjacency entry is half an edge (edges appear twice).
    removed_edges += static_cast<std::size_t>(ns.end() - keep_end);
    ns.erase(keep_end, ns.end());
  }
  stored_edges_ -= removed_edges / 2;
}

bool StreamingTriangleDetector::offer(const Edge& e) {
  if (found_) return true;

  // Detection first: does some retained vee close over the arriving edge?
  const auto it_a = adj_.find(e.u);
  const auto it_b = adj_.find(e.v);
  if (it_a != adj_.end() && it_b != adj_.end()) {
    const auto& small = it_a->second.size() <= it_b->second.size() ? it_a->second : it_b->second;
    const auto& large = it_a->second.size() <= it_b->second.size() ? it_b->second : it_a->second;
    for (const Vertex w : small) {
      if (w == e.u || w == e.v) continue;
      if (std::find(large.begin(), large.end(), w) != large.end()) {
        found_ = Triangle(e.u, e.v, w);
        return true;
      }
    }
  }

  // Retention.
  if (retained(e)) {
    adj_[e.u].push_back(e.v);
    adj_[e.v].push_back(e.u);
    ++stored_edges_;
    while (memory_bits() > budget_bits_ && p_ > 1e-12) subsample();
    peak_bits_ = std::max(peak_bits_, memory_bits());
  }
  return false;
}

}  // namespace tft
