#include "streaming/stream_model.h"

#include <stdexcept>

namespace tft {

EdgeStream stream_of(const Graph& g) {
  return EdgeStream{g.n(), {g.edges().begin(), g.edges().end()}};
}

EdgeStream shuffled_stream_of(const Graph& g, Rng& rng) {
  EdgeStream s = stream_of(g);
  for (std::size_t i = s.edges.size(); i > 1; --i) {
    std::swap(s.edges[i - 1], s.edges[rng.below(i)]);
  }
  return s;
}

EdgeStream concat(const std::vector<EdgeStream>& parts) {
  EdgeStream out;
  for (const auto& p : parts) {
    if (out.n == 0) out.n = p.n;
    if (p.n != out.n) throw std::invalid_argument("concat: universe size mismatch");
    out.edges.insert(out.edges.end(), p.edges.begin(), p.edges.end());
  }
  return out;
}

}  // namespace tft
