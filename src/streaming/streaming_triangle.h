#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

/// \file streaming_triangle.h
/// A one-pass, bounded-memory triangle-edge detector.
///
/// Sampling scheme (the edge-sampling half of the Kallaugher-Price-style
/// hybrid the paper cites as [27]): every edge is retained with probability
/// p, determined by a hash of its identity so that lowering p keeps a
/// subset of the previous sample (adaptive "sticky" subsampling — the
/// detector starts with p = 1 and halves p whenever storage would exceed
/// the budget). An arriving edge {a, b} is reported as a triangle edge when
/// two retained edges {w, a}, {w, b} complete a vee over it; the report is
/// one-sided because all retained edges are real.
///
/// Success probability ~ p² per triangle, so memory M detects one of T
/// edge-disjoint triangles w.h.p. when (M/m)² · T = Omega(1) — the tradeoff
/// bench_streaming measures against the Omega(n^{1/4}) one-way bound that
/// Section 4.2.2 transfers to streaming space.

namespace tft {

class StreamingTriangleDetector {
 public:
  /// `memory_budget_bits`: peak storage allowed for retained edges (edge ids
  /// at 2 ceil(log n) bits each). `seed` keys the retention hash.
  StreamingTriangleDetector(std::uint64_t memory_budget_bits, Vertex n, std::uint64_t seed);

  /// Process the next stream element. Returns true once a triangle edge has
  /// been found (further offers are no-ops).
  bool offer(const Edge& e);

  [[nodiscard]] const std::optional<Triangle>& found() const noexcept { return found_; }
  [[nodiscard]] std::uint64_t memory_bits() const noexcept;
  [[nodiscard]] std::uint64_t peak_memory_bits() const noexcept { return peak_bits_; }
  [[nodiscard]] double retention_probability() const noexcept { return p_; }

  /// Size of the serialized state (what the one-way reduction ships when a
  /// player hands the computation over).
  [[nodiscard]] std::uint64_t state_bits() const noexcept;

 private:
  [[nodiscard]] bool retained(const Edge& e) const noexcept;
  void subsample();

  Vertex n_;
  std::uint64_t budget_bits_;
  std::uint64_t seed_;
  double p_ = 1.0;
  std::optional<Triangle> found_;
  std::uint64_t peak_bits_ = 0;
  std::size_t stored_edges_ = 0;
  /// Adjacency over retained edges, for O(min deg) vee closing.
  std::unordered_map<Vertex, std::vector<Vertex>> adj_;
};

}  // namespace tft
