#include "streaming/reduction.h"

#include <stdexcept>

#include "streaming/streaming_triangle.h"

namespace tft {

StreamingOneWayReport one_way_via_streaming(std::span<const PlayerInput> players,
                                            std::uint64_t memory_budget_bits,
                                            std::uint64_t seed) {
  if (players.empty()) throw std::invalid_argument("one_way_via_streaming: no players");
  StreamingOneWayReport report;
  StreamingTriangleDetector detector(memory_budget_bits, players.front().n(), seed);
  for (std::size_t j = 0; j < players.size(); ++j) {
    for (const Edge& e : players[j].local.edges()) detector.offer(e);
    if (j + 1 < players.size()) {
      // Hand the memory state to the next player.
      report.communication_bits += detector.state_bits();
    }
  }
  report.triangle = detector.found();
  report.peak_memory_bits = detector.peak_memory_bits();
  return report;
}

StreamingOneWayReport run_streaming(const EdgeStream& stream, std::uint64_t memory_budget_bits,
                                    std::uint64_t seed) {
  StreamingOneWayReport report;
  StreamingTriangleDetector detector(memory_budget_bits, stream.n, seed);
  for (const Edge& e : stream.edges) detector.offer(e);
  report.triangle = detector.found();
  report.peak_memory_bits = detector.peak_memory_bits();
  return report;
}

}  // namespace tft
