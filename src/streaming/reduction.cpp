#include "streaming/reduction.h"

#include <stdexcept>

#include "comm/conformance.h"
#include "streaming/streaming_triangle.h"

namespace tft {

StreamingOneWayReport one_way_via_streaming(std::span<const PlayerInput> players,
                                            std::uint64_t memory_budget_bits,
                                            std::uint64_t seed) {
  if (players.empty()) throw std::invalid_argument("one_way_via_streaming: no players");
  return run_checked(
      CommModel::kOneWay, players.size(), players.front().n(), [&](Channel t) {
        StreamingOneWayReport report;
        StreamingTriangleDetector detector(memory_budget_bits, players.front().n(), seed);
        for (std::size_t j = 0; j < players.size(); ++j) {
          for (const Edge& e : players[j].local.edges()) detector.offer(e);
          if (j + 1 < players.size()) {
            // Hand the memory state to the next player: one message, forward
            // only — exactly the one-way chain the reduction argues about.
            const std::uint64_t state = detector.state_bits();
            t.charge(j, Direction::kPlayerToCoordinator, state, j);
            report.communication_bits += state;
          }
        }
        report.triangle = detector.found();
        report.peak_memory_bits = detector.peak_memory_bits();
        return report;
      });
}

StreamingOneWayReport run_streaming(const EdgeStream& stream, std::uint64_t memory_budget_bits,
                                    std::uint64_t seed) {
  StreamingOneWayReport report;
  StreamingTriangleDetector detector(memory_budget_bits, stream.n, seed);
  for (const Edge& e : stream.edges) detector.offer(e);
  report.triangle = detector.found();
  report.peak_memory_bits = detector.peak_memory_bits();
  return report;
}

}  // namespace tft
