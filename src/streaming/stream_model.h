#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

/// \file stream_model.h
/// The one-pass edge-stream model referenced in Section 4.2.2 ("Streaming
/// Lower Bounds"): the input arrives as an ordered edge sequence read once;
/// the complexity measure is the peak memory (in bits) held between stream
/// elements.

namespace tft {

/// An ordered edge stream over a fixed vertex universe.
struct EdgeStream {
  Vertex n = 0;
  std::vector<Edge> edges;
};

/// Stream the graph's edges in (deterministic) sorted order.
[[nodiscard]] EdgeStream stream_of(const Graph& g);

/// Stream the graph's edges in uniformly random order.
[[nodiscard]] EdgeStream shuffled_stream_of(const Graph& g, Rng& rng);

/// Concatenate streams (e.g. the per-player segments of the one-way
/// reduction). All parts must share the universe size.
[[nodiscard]] EdgeStream concat(const std::vector<EdgeStream>& parts);

}  // namespace tft
