#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

/// \file wedge_counter.h
/// One-pass triangle *counting* via wedge sampling (Jha-Seshadhri-Pinar
/// style; the counting problem the paper's Section 4.4 reduction source
/// [27] studies).
///
/// The stream is consumed once. The counter maintains
///   * exact vertex degrees (O(n log) memory — the cheap part),
///   * a reservoir of `reservoir_size` uniformly random wedges among all
///     wedges formed so far (a wedge is created when an arriving edge
///     shares an endpoint with an already-seen edge).
/// Closure is evaluated at query time against the stored adjacency (as in
/// JSP), which avoids the eviction bias of flagging during the stream. The
/// estimate is T ≈ κ · W / 3: W = Σ_v d(v)(d(v)-1)/2 is the exact final
/// wedge count, κ the closed fraction of the reservoir, and every triangle
/// owns exactly three closed wedges.

namespace tft {

class WedgeSamplingCounter {
 public:
  WedgeSamplingCounter(Vertex n, std::size_t reservoir_size, std::uint64_t seed);

  void offer(const Edge& e);

  /// Estimated number of triangles given everything seen so far.
  [[nodiscard]] double triangle_estimate() const;

  /// Exact total wedge count from the tracked degrees.
  [[nodiscard]] double wedge_count() const;

  /// Fraction of reservoir wedges closed in the graph seen so far.
  [[nodiscard]] double closure_rate() const;

  [[nodiscard]] std::size_t reservoir_fill() const noexcept { return wedges_.size(); }

  /// Memory consumed: degrees + reservoir, in bits.
  [[nodiscard]] std::uint64_t memory_bits() const noexcept;

 private:
  struct Wedge {
    Vertex a = 0;
    Vertex center = 0;
    Vertex b = 0;
  };

  void maybe_sample_wedges(const Edge& e);

  Vertex n_;
  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t coins_ = 0;
  std::vector<std::uint32_t> degree_;
  std::vector<std::vector<Vertex>> adj_;  ///< full adjacency (degrees exact)
  std::vector<Wedge> wedges_;
  double wedges_seen_ = 0.0;  ///< total wedges formed so far (for reservoir math)
};

/// Convenience: run over a full stream and return the estimate.
[[nodiscard]] double estimate_triangles_streaming(const Graph& g, std::size_t reservoir_size,
                                                  std::uint64_t seed, std::uint64_t order_seed);

}  // namespace tft
