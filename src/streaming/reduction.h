#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/partition.h"
#include "streaming/stream_model.h"

/// \file reduction.h
/// The generic streaming <-> one-way reduction of Section 4.2.2 (after
/// Alon-Matias-Szegedy [4]): a one-pass algorithm with space S yields a
/// one-way multi-player protocol with communication (k-1) * S — each player
/// runs the algorithm over its own segment of the stream and ships the
/// memory state to the next. Consequently a one-way communication lower
/// bound of C implies a streaming space lower bound of C / (k-1).
///
/// `one_way_via_streaming` executes the reduction: the players' inputs are
/// laid out as consecutive stream segments, the detector's serialized state
/// is charged at every hand-off, and the final holder reports the result.

namespace tft {

struct StreamingOneWayReport {
  std::optional<Triangle> triangle;
  std::uint64_t communication_bits = 0;  ///< sum of shipped states
  std::uint64_t peak_memory_bits = 0;
};

/// Run the reduction over the players in index order.
[[nodiscard]] StreamingOneWayReport one_way_via_streaming(std::span<const PlayerInput> players,
                                                          std::uint64_t memory_budget_bits,
                                                          std::uint64_t seed);

/// Run the detector over a single stream (no hand-offs) — the plain
/// streaming side of the tradeoff.
[[nodiscard]] StreamingOneWayReport run_streaming(const EdgeStream& stream,
                                                  std::uint64_t memory_budget_bits,
                                                  std::uint64_t seed);

}  // namespace tft
