#include "streaming/wedge_counter.h"

#include <algorithm>

#include "streaming/stream_model.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {

WedgeSamplingCounter::WedgeSamplingCounter(Vertex n, std::size_t reservoir_size,
                                           std::uint64_t seed)
    : n_(n), capacity_(reservoir_size), seed_(seed), degree_(n, 0), adj_(n) {
  wedges_.reserve(reservoir_size);
}

void WedgeSamplingCounter::maybe_sample_wedges(const Edge& e) {
  // The arriving edge forms one new wedge per existing neighbor of each
  // endpoint (centered at that endpoint). Standard reservoir update.
  Rng rng(mix_hash(seed_, coins_++));
  const auto consider = [&](Vertex a, Vertex center, Vertex b) {
    wedges_seen_ += 1.0;
    if (wedges_.size() < capacity_) {
      wedges_.push_back(Wedge{a, center, b});
    } else if (capacity_ > 0 &&
               rng.uniform() < static_cast<double>(capacity_) / wedges_seen_) {
      wedges_[static_cast<std::size_t>(rng.below(capacity_))] = Wedge{a, center, b};
    }
  };
  for (const Vertex w : adj_[e.u]) {
    if (w != e.v) consider(w, e.u, e.v);
  }
  for (const Vertex w : adj_[e.v]) {
    if (w != e.u) consider(w, e.v, e.u);
  }
}

void WedgeSamplingCounter::offer(const Edge& e) {
  if (e.u >= n_ || e.v >= n_ || e.u == e.v) return;
  // Ignore duplicate arrivals (the stream of a simple graph).
  if (std::find(adj_[e.u].begin(), adj_[e.u].end(), e.v) != adj_[e.u].end()) return;

  maybe_sample_wedges(e);

  adj_[e.u].push_back(e.v);
  adj_[e.v].push_back(e.u);
  ++degree_[e.u];
  ++degree_[e.v];
}

double WedgeSamplingCounter::wedge_count() const {
  double w = 0.0;
  for (const auto d : degree_) {
    w += 0.5 * static_cast<double>(d) * static_cast<double>(d > 0 ? d - 1 : 0);
  }
  return w;
}

double WedgeSamplingCounter::closure_rate() const {
  if (wedges_.empty()) return 0.0;
  std::size_t closed = 0;
  for (const auto& w : wedges_) {
    const auto& ns = adj_[w.a];
    closed += std::find(ns.begin(), ns.end(), w.b) != ns.end() ? 1 : 0;
  }
  return static_cast<double>(closed) / static_cast<double>(wedges_.size());
}

double WedgeSamplingCounter::triangle_estimate() const {
  // Every triangle owns exactly three closed wedges (see header).
  return closure_rate() * wedge_count() / 3.0;
}

std::uint64_t WedgeSamplingCounter::memory_bits() const noexcept {
  // Degrees (n counters) + reservoir (3 vertex ids + flag each).
  return static_cast<std::uint64_t>(n_) * count_bits(n_) +
         static_cast<std::uint64_t>(wedges_.size()) * 3 * vertex_bits(n_);
}

double estimate_triangles_streaming(const Graph& g, std::size_t reservoir_size,
                                    std::uint64_t seed, std::uint64_t order_seed) {
  Rng order_rng(order_seed);
  const EdgeStream stream = shuffled_stream_of(g, order_rng);
  WedgeSamplingCounter counter(g.n(), reservoir_size, seed);
  for (const Edge& e : stream.edges) counter.offer(e);
  return counter.triangle_estimate();
}

}  // namespace tft
