#include "net/runtime.h"

#include <numeric>
#include <sstream>

#include "net/error.h"

namespace tft::net {

std::optional<TransportKind> parse_transport(std::string_view s) noexcept {
  if (s == "sim") return TransportKind::kSim;
  if (s == "inproc") return TransportKind::kInProc;
  if (s == "socket") return TransportKind::kSocket;
  return std::nullopt;
}

std::unique_ptr<Transport> make_transport(const NetConfig& cfg) {
  switch (cfg.transport) {
    case TransportKind::kInProc: return std::make_unique<InProcTransport>(cfg.ring_capacity);
    case TransportKind::kSocket: return std::make_unique<LoopbackSocketTransport>();
    case TransportKind::kSim: break;
  }
  throw NetError(NetErrorKind::kSetup, "simulated mode has no transport to build");
}

std::uint64_t WireStats::payload_bits() const noexcept {
  return std::accumulate(up_bits.begin(), up_bits.end(), std::uint64_t{0}) +
         std::accumulate(down_bits.begin(), down_bits.end(), std::uint64_t{0});
}

std::uint64_t WireStats::messages() const noexcept {
  return std::accumulate(up_msgs.begin(), up_msgs.end(), std::uint64_t{0}) +
         std::accumulate(down_msgs.begin(), down_msgs.end(), std::uint64_t{0});
}

std::string WireStats::summary() const {
  std::ostringstream os;
  os << messages() << " frames / " << payload_bits() << " payload bits / " << wire_bytes
     << " wire bytes (retransmits " << retransmissions << ", dups " << duplicates
     << ", corrupt " << corrupt_frames << ")";
  return os.str();
}

namespace {

void mismatch(const std::string& what, std::uint64_t charged, std::uint64_t delivered) {
  std::ostringstream os;
  os << what << ": charged " << charged << ", delivered " << delivered;
  throw AccountingError(os.str());
}

}  // namespace

void ChargedTotals::add(const Transcript& t) {
  if (t.num_players() != up_bits.size()) {
    throw AccountingError("transcript player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < up_bits.size(); ++j) {
    up_bits[j] += t.upstream_bits(j);
    down_bits[j] += t.downstream_bits(j);
    up_msgs[j] += t.upstream_messages(j);
    down_msgs[j] += t.downstream_messages(j);
  }
  if (phase_bits.size() < t.num_phases()) phase_bits.resize(t.num_phases());
  for (std::size_t ph = 0; ph < t.num_phases(); ++ph) phase_bits[ph] += t.phase_bits(ph);
}

void verify_accounting(const ChargedTotals& c, const WireStats& w) {
  const std::size_t k = c.up_bits.size();
  if (w.up_bits.size() != k || w.down_bits.size() != k) {
    throw AccountingError("player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (c.up_bits[j] != w.up_bits[j]) {
      mismatch("player " + std::to_string(j) + " upstream bits", c.up_bits[j], w.up_bits[j]);
    }
    if (c.down_bits[j] != w.down_bits[j]) {
      mismatch("player " + std::to_string(j) + " downstream bits", c.down_bits[j],
               w.down_bits[j]);
    }
    if (c.up_msgs[j] != w.up_msgs[j]) {
      mismatch("player " + std::to_string(j) + " upstream messages", c.up_msgs[j], w.up_msgs[j]);
    }
    if (c.down_msgs[j] != w.down_msgs[j]) {
      mismatch("player " + std::to_string(j) + " downstream messages", c.down_msgs[j],
               w.down_msgs[j]);
    }
  }
  const std::size_t phases = std::max(c.phase_bits.size(), w.phase_bits.size());
  for (std::size_t ph = 0; ph < phases; ++ph) {
    const std::uint64_t charged = ph < c.phase_bits.size() ? c.phase_bits[ph] : 0;
    const std::uint64_t delivered = ph < w.phase_bits.size() ? w.phase_bits[ph] : 0;
    if (charged != delivered) {
      mismatch("phase " + std::to_string(ph) + " bits", charged, delivered);
    }
  }
}

void verify_accounting(const Transcript& t, const WireStats& w) {
  ChargedTotals c(t.num_players());
  c.add(t);
  verify_accounting(c, w);
}

/// One directed link plus its two actors: the sender half lives with the
/// driving thread, the servicer half runs on its own thread.
struct NetSession::Endpoint {
  Endpoint(Transport& transport, std::uint32_t link_id, std::uint32_t src, std::uint32_t dst,
           const NetConfig& cfg)
      : link(transport.make_link()),
        sender(link, link_id, cfg.retry, cfg.faults),
        servicer(link, src, dst) {
    thread = std::thread([this] { servicer.run(); });
  }

  Link link;
  ReliableSender sender;
  LinkServicer servicer;
  std::thread thread;
};

NetSession::NetSession(std::size_t num_players, const NetConfig& cfg) : k_(num_players) {
  if (cfg.transport == TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires an executed transport");
  }
  if (k_ == 0) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires at least one player");
  }
  transport_ = make_transport(cfg);
  const std::uint32_t coord = static_cast<std::uint32_t>(k_);
  up_.reserve(k_);
  down_.reserve(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    const std::uint32_t pj = static_cast<std::uint32_t>(j);
    up_.push_back(
        std::make_unique<Endpoint>(*transport_, pj, pj, coord, cfg));
    down_.push_back(
        std::make_unique<Endpoint>(*transport_, coord + 1 + pj, coord, pj, cfg));
  }
}

NetSession::~NetSession() {
  try {
    finish();
  } catch (...) {
    // Destructor cleanup must not throw; finish() rethrows on explicit use.
  }
}

void NetSession::on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                           std::uint64_t phase) {
  if (finished_) {
    throw NetError(NetErrorKind::kClosed, "charge after the session finished");
  }
  if (player >= k_) {
    throw NetError(NetErrorKind::kProtocol, "charge names a player outside [0, k)");
  }
  const bool upstream = dir == Direction::kPlayerToCoordinator;
  Endpoint& ep = upstream ? *up_[player] : *down_[player];
  Frame f;
  f.header.type = FrameType::kData;
  f.header.src = upstream ? static_cast<std::uint32_t>(player) : static_cast<std::uint32_t>(k_);
  f.header.dst = upstream ? static_cast<std::uint32_t>(k_) : static_cast<std::uint32_t>(player);
  f.header.seq = ep.sender.next_seq();
  f.header.phase = phase;
  f.header.payload_bits = bits;
  f.payload = make_filler_payload(f.header);
  ep.sender.send(std::move(f));
}

WireStats NetSession::finish() {
  if (finished_) return result_;
  finished_ = true;

  for (auto& ep : up_) ep->link.close();
  for (auto& ep : down_) ep->link.close();
  for (auto& ep : up_) {
    if (ep->thread.joinable()) ep->thread.join();
  }
  for (auto& ep : down_) {
    if (ep->thread.joinable()) ep->thread.join();
  }

  WireStats w;
  w.up_bits.resize(k_);
  w.down_bits.resize(k_);
  w.up_msgs.resize(k_);
  w.down_msgs.resize(k_);
  std::optional<std::string> failure;
  const auto fold = [&](const Endpoint& ep, std::uint64_t& bits_slot, std::uint64_t& msgs_slot) {
    const ReceiverStats& r = ep.servicer.stats();
    const SenderStats& s = ep.sender.stats();
    bits_slot += r.payload_bits;
    msgs_slot += r.frames;
    if (w.phase_bits.size() < r.phase_bits.size()) w.phase_bits.resize(r.phase_bits.size());
    for (std::size_t ph = 0; ph < r.phase_bits.size(); ++ph) w.phase_bits[ph] += r.phase_bits[ph];
    w.wire_bytes += s.wire_bytes;
    w.retransmissions += s.retransmissions;
    w.duplicates += r.duplicates + s.duplicates_sent;
    w.corrupt_frames += r.corrupt;
    w.acks += s.acks_received;
    if (!failure && ep.servicer.error()) failure = ep.servicer.error();
  };
  for (std::size_t j = 0; j < k_; ++j) {
    fold(*up_[j], w.up_bits[j], w.up_msgs[j]);
    fold(*down_[j], w.down_bits[j], w.down_msgs[j]);
  }
  result_ = std::move(w);
  if (failure) {
    throw NetError(NetErrorKind::kProtocol, "link servicer failed: " + *failure);
  }
  return result_;
}

}  // namespace tft::net
