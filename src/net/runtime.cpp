#include "net/runtime.h"

#include <numeric>
#include <sstream>

#include "net/error.h"

namespace tft::net {

std::optional<TransportKind> parse_transport(std::string_view s) noexcept {
  if (s == "sim") return TransportKind::kSim;
  if (s == "inproc") return TransportKind::kInProc;
  if (s == "socket") return TransportKind::kSocket;
  return std::nullopt;
}

std::unique_ptr<Transport> make_transport(const NetConfig& cfg) {
  switch (cfg.transport) {
    case TransportKind::kInProc: return std::make_unique<InProcTransport>(cfg.ring_capacity);
    case TransportKind::kSocket: return std::make_unique<LoopbackSocketTransport>();
    case TransportKind::kSim: break;
  }
  throw NetError(NetErrorKind::kSetup, "simulated mode has no transport to build");
}

std::uint64_t WireStats::payload_bits() const noexcept {
  return std::accumulate(up_bits.begin(), up_bits.end(), std::uint64_t{0}) +
         std::accumulate(down_bits.begin(), down_bits.end(), std::uint64_t{0});
}

std::uint64_t WireStats::messages() const noexcept {
  return std::accumulate(up_msgs.begin(), up_msgs.end(), std::uint64_t{0}) +
         std::accumulate(down_msgs.begin(), down_msgs.end(), std::uint64_t{0});
}

std::string WireStats::summary() const {
  std::ostringstream os;
  os << messages() << " messages / " << frames_delivered << " frames / " << payload_bits()
     << " payload bits / " << wire_bytes << " wire bytes (retransmits " << retransmissions
     << ", dups " << duplicates << ", corrupt " << corrupt_frames << ", crashes " << crashes
     << ", replayed " << replayed_charges << ")";
  return os.str();
}

namespace {

void mismatch(const std::string& what, std::uint64_t charged, std::uint64_t delivered) {
  std::ostringstream os;
  os << what << ": charged " << charged << ", delivered " << delivered;
  throw AccountingError(os.str());
}

}  // namespace

void ChargedTotals::add(const Transcript& t) {
  if (t.num_players() != up_bits.size()) {
    throw AccountingError("transcript player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < up_bits.size(); ++j) {
    up_bits[j] += t.upstream_bits(j);
    down_bits[j] += t.downstream_bits(j);
    up_msgs[j] += t.upstream_messages(j);
    down_msgs[j] += t.downstream_messages(j);
  }
  if (phase_bits.size() < t.num_phases()) phase_bits.resize(t.num_phases());
  for (std::size_t ph = 0; ph < t.num_phases(); ++ph) phase_bits[ph] += t.phase_bits(ph);
}

void verify_accounting(const ChargedTotals& c, const WireStats& w) {
  const std::size_t k = c.up_bits.size();
  if (w.up_bits.size() != k || w.down_bits.size() != k) {
    throw AccountingError("player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (c.up_bits[j] != w.up_bits[j]) {
      mismatch("player " + std::to_string(j) + " upstream bits", c.up_bits[j], w.up_bits[j]);
    }
    if (c.down_bits[j] != w.down_bits[j]) {
      mismatch("player " + std::to_string(j) + " downstream bits", c.down_bits[j],
               w.down_bits[j]);
    }
    if (c.up_msgs[j] != w.up_msgs[j]) {
      mismatch("player " + std::to_string(j) + " upstream messages", c.up_msgs[j], w.up_msgs[j]);
    }
    if (c.down_msgs[j] != w.down_msgs[j]) {
      mismatch("player " + std::to_string(j) + " downstream messages", c.down_msgs[j],
               w.down_msgs[j]);
    }
  }
  const std::size_t phases = std::max(c.phase_bits.size(), w.phase_bits.size());
  for (std::size_t ph = 0; ph < phases; ++ph) {
    const std::uint64_t charged = ph < c.phase_bits.size() ? c.phase_bits[ph] : 0;
    const std::uint64_t delivered = ph < w.phase_bits.size() ? w.phase_bits[ph] : 0;
    if (charged != delivered) {
      mismatch("phase " + std::to_string(ph) + " bits", charged, delivered);
    }
  }
}

void verify_accounting(const Transcript& t, const WireStats& w) {
  ChargedTotals c(t.num_players());
  c.add(t);
  verify_accounting(c, w);
}

NetSession::NetSession(std::size_t num_players, const NetConfig& cfg)
    : k_(num_players),
      faults_(cfg.faults),
      session_seed_(cfg.session_seed),
      crash_tolerance_(cfg.crash_tolerance),
      ckpts_(num_players),
      charge_counts_(num_players) {
  if (cfg.transport == TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires an executed transport");
  }
  if (k_ == 0) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires at least one player");
  }
  if (cfg.virtual_clock && cfg.transport != TransportKind::kInProc) {
    throw NetError(NetErrorKind::kSetup,
                   "virtual clock needs the in-proc transport (kernel socket buffers "
                   "are invisible to the logical clock)");
  }
  transport_ = make_transport(cfg);

  SharedServicer::Options opts;
  opts.arq = cfg.arq;
  opts.retry = cfg.retry;
  opts.faults = cfg.faults;
  opts.virtual_clock = cfg.virtual_clock;
  opts.timed_recheck = cfg.transport == TransportKind::kSocket;
  opts.crash_tolerance = cfg.crash_tolerance;
  servicer_ = std::make_unique<SharedServicer>(opts);

  // Links must not reallocate once registered: the servicer keeps raw
  // pointers into this vector.
  links_.reserve(2 * k_);
  const std::uint32_t coord = static_cast<std::uint32_t>(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    links_.push_back(transport_->make_link());
  }
  for (std::size_t j = 0; j < k_; ++j) {
    links_.push_back(transport_->make_link());
  }
  for (std::size_t j = 0; j < k_; ++j) {
    const std::uint32_t pj = static_cast<std::uint32_t>(j);
    servicer_->add_link(&links_[j], /*link_id=*/pj, /*src=*/pj, /*dst=*/coord,
                        /*coalesce=*/true);
  }
  for (std::size_t j = 0; j < k_; ++j) {
    const std::uint32_t pj = static_cast<std::uint32_t>(j);
    servicer_->add_link(&links_[k_ + j], /*link_id=*/coord + 1 + pj, /*src=*/coord,
                        /*dst=*/pj, /*coalesce=*/true);
  }
  servicer_->start();
  // The start-of-run checkpoint: all-zero barriers, phase 0.
  if (crash_tolerance_) refresh_checkpoints();
}

void NetSession::refresh_checkpoints() {
  for (std::size_t j = 0; j < k_; ++j) {
    PlayerCheckpoint ck;
    ck.player = static_cast<std::uint32_t>(j);
    ck.seed = session_seed_;
    ck.phase = last_phase_;
    ck.up = servicer_->barrier_checkpoint(j);
    ck.down = servicer_->barrier_checkpoint(k_ + j);
    ckpts_.put(static_cast<std::uint32_t>(j), encode_checkpoint(ck));
  }
}

void NetSession::maybe_crash(std::size_t player, std::uint64_t phase) {
  auto& counts = charge_counts_[player];
  if (counts.size() <= phase) counts.resize(static_cast<std::size_t>(phase) + 1, 0);
  const std::uint64_t count = counts[static_cast<std::size_t>(phase)]++;
  const std::optional<std::uint64_t> off =
      crash_offset(faults_, static_cast<std::uint32_t>(player), phase);
  if (!off || *off != count) return;
  // The process dies between two charges — never mid-frame. The servicer
  // fences the corpse's lanes and announces the death...
  servicer_->crash_player(player, k_ + player, static_cast<std::uint32_t>(player), phase);
  ++crashes_;
  if (faults_.crash_resurrect) {
    // ...and the respawn recovers from the *stored bytes* of the last
    // barrier checkpoint — the serialized form is load-bearing, exactly as
    // it would be for a real process reading its checkpoint off disk.
    const std::vector<std::uint8_t>& bytes = ckpts_.bytes(static_cast<std::uint32_t>(player));
    servicer_->recover_player(player, k_ + player, decode_checkpoint(bytes), bytes);
  }
}

NetSession::~NetSession() {
  try {
    finish();
  } catch (...) {
    // Destructor cleanup must not throw; finish() rethrows on explicit use.
  }
}

void NetSession::on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                           std::uint64_t phase) {
  if (finished_) {
    throw NetError(NetErrorKind::kClosed, "charge after the session finished");
  }
  if (player >= k_) {
    throw NetError(NetErrorKind::kProtocol, "charge names a player outside [0, k)");
  }
  // Phase barrier: the pipeline drains completely before the first charge
  // of a new phase, so frames never mix phases and the executed run keeps
  // the round structure the Transcript records.
  if (phase != last_phase_) {
    servicer_->flush();
    last_phase_ = phase;
    if (crash_tolerance_) refresh_checkpoints();
  }
  if (crash_tolerance_ && faults_.has_crashes()) maybe_crash(player, phase);
  const bool upstream = dir == Direction::kPlayerToCoordinator;
  const std::size_t index = upstream ? player : k_ + player;
  servicer_->enqueue_charge(index, phase, bits);
}

void NetSession::on_flush() {
  if (finished_) return;
  servicer_->flush();
  if (crash_tolerance_) refresh_checkpoints();
}

WireStats NetSession::finish() {
  if (finished_) return result_;
  finished_ = true;

  servicer_->finish();

  WireStats w;
  w.up_bits.resize(k_);
  w.down_bits.resize(k_);
  w.up_msgs.resize(k_);
  w.down_msgs.resize(k_);
  const auto fold = [&](std::size_t index, std::uint64_t& bits_slot, std::uint64_t& msgs_slot) {
    const SharedServicer::LinkStats& st = servicer_->stats(index);
    const ReceiverStats& r = st.receiver;
    const SenderStats& s = st.sender;
    bits_slot += r.payload_bits;
    msgs_slot += r.messages;
    if (w.phase_bits.size() < r.phase_bits.size()) w.phase_bits.resize(r.phase_bits.size());
    for (std::size_t ph = 0; ph < r.phase_bits.size(); ++ph) w.phase_bits[ph] += r.phase_bits[ph];
    w.frames_delivered += r.frames;
    w.wire_bytes += s.wire_bytes;
    w.retransmissions += s.retransmissions;
    w.duplicates += r.duplicates + s.duplicates_sent;
    w.corrupt_frames += r.corrupt;
    w.acks += s.acks_received;
    w.player_down_frames += r.player_down_frames;
    w.resume_frames += r.resume_frames;
  };
  for (std::size_t j = 0; j < k_; ++j) {
    fold(j, w.up_bits[j], w.up_msgs[j]);
    fold(k_ + j, w.down_bits[j], w.down_msgs[j]);
  }
  w.virtual_time_us = servicer_->virtual_time_us();
  w.crashes = crashes_;
  w.replayed_charges = servicer_->replayed_charges();
  result_ = std::move(w);
  // Stats are folded before rethrow so a failed run still reports what
  // crossed the wire (matching the legacy engine's behavior).
  servicer_->rethrow_error();
  return result_;
}

}  // namespace tft::net
