#include "net/runtime.h"

#include <sstream>

#include "net/error.h"

namespace tft::net {

std::optional<TransportKind> parse_transport(std::string_view s) noexcept {
  if (s == "sim") return TransportKind::kSim;
  if (s == "inproc") return TransportKind::kInProc;
  if (s == "socket") return TransportKind::kSocket;
  return std::nullopt;
}

std::unique_ptr<Transport> make_transport(const NetConfig& cfg) {
  switch (cfg.transport) {
    case TransportKind::kInProc: return std::make_unique<InProcTransport>(cfg.ring_capacity);
    case TransportKind::kSocket: return std::make_unique<LoopbackSocketTransport>();
    case TransportKind::kSim: break;
  }
  throw NetError(NetErrorKind::kSetup, "simulated mode has no transport to build");
}

namespace {

void mismatch(const std::string& what, std::uint64_t charged, std::uint64_t delivered) {
  std::ostringstream os;
  os << what << ": charged " << charged << ", delivered " << delivered;
  throw AccountingError(os.str());
}

}  // namespace

void ChargedTotals::add(const Transcript& t) {
  if (t.num_players() != up_bits.size()) {
    throw AccountingError("transcript player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < up_bits.size(); ++j) {
    up_bits[j] += t.upstream_bits(j);
    down_bits[j] += t.downstream_bits(j);
    up_msgs[j] += t.upstream_messages(j);
    down_msgs[j] += t.downstream_messages(j);
  }
  if (phase_bits.size() < t.num_phases()) phase_bits.resize(t.num_phases());
  for (std::size_t ph = 0; ph < t.num_phases(); ++ph) phase_bits[ph] += t.phase_bits(ph);
}

void verify_accounting(const ChargedTotals& c, const WireStats& w) {
  const std::size_t k = c.up_bits.size();
  if (w.up_bits.size() != k || w.down_bits.size() != k) {
    throw AccountingError("player count disagrees with the wire topology");
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (c.up_bits[j] != w.up_bits[j]) {
      mismatch("player " + std::to_string(j) + " upstream bits", c.up_bits[j], w.up_bits[j]);
    }
    if (c.down_bits[j] != w.down_bits[j]) {
      mismatch("player " + std::to_string(j) + " downstream bits", c.down_bits[j],
               w.down_bits[j]);
    }
    if (c.up_msgs[j] != w.up_msgs[j]) {
      mismatch("player " + std::to_string(j) + " upstream messages", c.up_msgs[j], w.up_msgs[j]);
    }
    if (c.down_msgs[j] != w.down_msgs[j]) {
      mismatch("player " + std::to_string(j) + " downstream messages", c.down_msgs[j],
               w.down_msgs[j]);
    }
  }
  const std::size_t phases = std::max(c.phase_bits.size(), w.phase_bits.size());
  for (std::size_t ph = 0; ph < phases; ++ph) {
    const std::uint64_t charged = ph < c.phase_bits.size() ? c.phase_bits[ph] : 0;
    const std::uint64_t delivered = ph < w.phase_bits.size() ? w.phase_bits[ph] : 0;
    if (charged != delivered) {
      mismatch("phase " + std::to_string(ph) + " bits", charged, delivered);
    }
  }
}

void verify_accounting(const Transcript& t, const WireStats& w) {
  ChargedTotals c(t.num_players());
  c.add(t);
  verify_accounting(c, w);
}

NetSession::NetSession(std::size_t num_players, const NetConfig& cfg) : k_(num_players) {
  if (cfg.transport == TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires an executed transport");
  }
  if (k_ == 0) {
    throw NetError(NetErrorKind::kSetup, "NetSession requires at least one player");
  }
  if (cfg.virtual_clock && cfg.transport != TransportKind::kInProc) {
    throw NetError(NetErrorKind::kSetup,
                   "virtual clock needs the in-proc transport (kernel socket buffers "
                   "are invisible to the logical clock)");
  }
  transport_ = make_transport(cfg);

  SharedServicer::Options opts;
  opts.arq = cfg.arq;
  opts.retry = cfg.retry;
  opts.faults = cfg.faults;
  opts.virtual_clock = cfg.virtual_clock;
  opts.timed_recheck = cfg.transport == TransportKind::kSocket;
  opts.crash_tolerance = cfg.crash_tolerance;
  opts.num_shards = cfg.num_shards;
  servicer_ = std::make_unique<SharedServicer>(opts);

  SharedServicer::SessionOptions so;
  so.num_players = k_;
  so.session_id = 0;  // the reserved id: v1 frame headers, pre-session bytes
  so.seed = cfg.session_seed;
  so.crash_tolerance = cfg.crash_tolerance;
  sid_ = servicer_->open_session(*transport_, so);
  servicer_->start();
}

NetSession::~NetSession() {
  try {
    finish();
  } catch (...) {
    // Destructor cleanup must not throw; finish() rethrows on explicit use.
  }
}

void NetSession::on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                           std::uint64_t phase) {
  if (finished_) {
    throw NetError(NetErrorKind::kClosed, "charge after the session finished");
  }
  servicer_->session_charge(sid_, player, dir == Direction::kPlayerToCoordinator, bits, phase);
}

void NetSession::on_flush() {
  if (finished_) return;
  servicer_->session_flush(sid_);
}

WireStats NetSession::finish() {
  if (finished_) return result_;
  finished_ = true;

  // Stop the servicer before folding so every counter is final, then fold
  // before rethrow so a failed run still reports what crossed the wire
  // (matching the legacy engine's behavior).
  servicer_->finish();
  result_ = servicer_->close_session(sid_);
  servicer_->rethrow_error();
  servicer_->rethrow_session_error(sid_);
  return result_;
}

}  // namespace tft::net
