#pragma once

#include <stdexcept>
#include <string>

/// \file error.h
/// Typed failures of the executed transport (src/net/).
///
/// Transport failures are *expected* under fault injection, so they carry a
/// machine-checkable kind; accounting failures are *never* expected — they
/// mean the bits that actually crossed the wire disagree with the
/// Transcript the protocol charged, i.e. the paper's bit accounting was
/// violated — so they derive from std::logic_error and are not retried.

namespace tft::net {

enum class NetErrorKind {
  kTimeout,  ///< retries exhausted without an acknowledgement
  kClosed,   ///< the peer closed the link mid-operation
  kCorrupt,  ///< a frame failed structural validation beyond recovery
  kSetup,    ///< the transport could not be brought up (e.g. no loopback)
  kProtocol, ///< the peer violated the link protocol (e.g. future sequence)
  /// A peer was declared down (crash schedule) and never resumed within
  /// RetryPolicy::down_timeout. Distinct from kTimeout: a declared death
  /// fails fast instead of burning the exponential-backoff budget.
  kPlayerDown,
  /// The service coordinator refused admission: pending-session queue full
  /// (ServiceConfig::max_pending). A typed, retryable rejection — clients
  /// back off and resubmit; nothing about the session ever started.
  kServiceBusy,
};

[[nodiscard]] constexpr const char* to_string(NetErrorKind k) noexcept {
  switch (k) {
    case NetErrorKind::kTimeout: return "timeout";
    case NetErrorKind::kClosed: return "closed";
    case NetErrorKind::kCorrupt: return "corrupt";
    case NetErrorKind::kSetup: return "setup";
    case NetErrorKind::kProtocol: return "protocol";
    case NetErrorKind::kPlayerDown: return "player-down";
    case NetErrorKind::kServiceBusy: return "service-busy";
  }
  return "?";
}

/// Recoverable-in-principle transport failure (the channel layer already
/// retried; catching code may rerun the protocol or surface the verdict
/// "transport failed" — never a wrong protocol answer).
class NetError : public std::runtime_error {
 public:
  NetError(NetErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(to_string(kind)) + ": " + what), kind_(kind) {}

  [[nodiscard]] NetErrorKind kind() const noexcept { return kind_; }

 private:
  NetErrorKind kind_;
};

/// Hard error: delivered-on-the-wire bit totals do not equal the charged
/// Transcript totals. This is the executable form of the paper's cost
/// accounting; a mismatch is a bug, not a network condition.
class AccountingError : public std::logic_error {
 public:
  explicit AccountingError(const std::string& what)
      : std::logic_error("wire/transcript accounting mismatch: " + what) {}
};

}  // namespace tft::net
