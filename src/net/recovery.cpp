#include "net/recovery.h"

#include "comm/wire.h"
#include "net/error.h"

namespace tft::net {

Frame make_player_down_frame(std::uint32_t src, std::uint32_t dst, std::uint32_t ctrl_seq,
                             std::uint32_t player, std::uint64_t phase) {
  Frame f;
  f.header.type = FrameType::kPlayerDown;
  f.header.src = src;
  f.header.dst = dst;
  f.header.seq = ctrl_seq;
  f.header.phase = phase;
  BitWriter w;
  w.put_gamma(player);
  w.put_gamma(phase);
  f.header.payload_bits = w.bit_size();
  f.payload = w.bytes();
  return f;
}

PlayerDownNotice decode_player_down(const Frame& f) {
  if (f.header.type != FrameType::kPlayerDown) {
    throw NetError(NetErrorKind::kProtocol, "not a kPlayerDown frame");
  }
  try {
    BitReader r(f.payload, f.header.payload_bits);
    PlayerDownNotice notice;
    const std::uint64_t player = r.get_gamma();
    if (player > UINT32_MAX) {
      throw NetError(NetErrorKind::kCorrupt, "kPlayerDown player id out of range");
    }
    notice.player = static_cast<std::uint32_t>(player);
    notice.phase = r.get_gamma();
    if (!r.exhausted()) {
      throw NetError(NetErrorKind::kCorrupt, "trailing bits in kPlayerDown payload");
    }
    return notice;
  } catch (const WireError&) {
    throw NetError(NetErrorKind::kCorrupt, "truncated kPlayerDown payload");
  }
}

Frame make_resume_frame(std::uint32_t src, std::uint32_t dst, std::uint32_t ctrl_seq,
                        std::span<const std::uint8_t> checkpoint_bytes) {
  Frame f;
  f.header.type = FrameType::kResume;
  f.header.src = src;
  f.header.dst = dst;
  f.header.seq = ctrl_seq;
  f.header.payload_bits = checkpoint_bytes.size() * std::uint64_t{8};
  f.payload.assign(checkpoint_bytes.begin(), checkpoint_bytes.end());
  return f;
}

PlayerCheckpoint decode_resume(const Frame& f) {
  if (f.header.type != FrameType::kResume) {
    throw NetError(NetErrorKind::kProtocol, "not a kResume frame");
  }
  if (f.header.payload_bits != f.payload.size() * std::uint64_t{8}) {
    throw NetError(NetErrorKind::kCorrupt, "kResume payload must be whole bytes");
  }
  return decode_checkpoint(f.payload);
}

}  // namespace tft::net
