#include "net/checkpoint.h"

#include "comm/wire.h"
#include "net/error.h"

namespace tft::net {

namespace {

constexpr std::uint64_t kVersion = 1;

void put_lane(BitWriter& w, const LinkCheckpoint& lane) {
  w.put_gamma(lane.next_seq);
  w.put_gamma(lane.next_expected);
  w.put_gamma(lane.frames);
  w.put_gamma(lane.messages);
  w.put_gamma(lane.payload_bits);
  w.put_gamma(lane.phase_bits.size());
  for (const std::uint64_t b : lane.phase_bits) w.put_gamma(b);
}

LinkCheckpoint get_lane(BitReader& r) {
  LinkCheckpoint lane;
  const std::uint64_t next_seq = r.get_gamma();
  const std::uint64_t next_expected = r.get_gamma();
  if (next_seq > UINT32_MAX || next_expected > UINT32_MAX) {
    throw NetError(NetErrorKind::kCorrupt, "checkpoint sequence number out of range");
  }
  lane.next_seq = static_cast<std::uint32_t>(next_seq);
  lane.next_expected = static_cast<std::uint32_t>(next_expected);
  lane.frames = r.get_gamma();
  lane.messages = r.get_gamma();
  lane.payload_bits = r.get_gamma();
  const std::uint64_t phases = r.get_gamma();
  if (phases > r.remaining()) {  // >= 1 bit per recorded phase
    throw NetError(NetErrorKind::kCorrupt, "checkpoint names more phases than fit its bytes");
  }
  lane.phase_bits.reserve(static_cast<std::size_t>(phases));
  for (std::uint64_t i = 0; i < phases; ++i) lane.phase_bits.push_back(r.get_gamma());
  return lane;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const PlayerCheckpoint& ck) {
  BitWriter w;
  w.put_gamma(kVersion);
  w.put_gamma(ck.player);
  w.put_bits(ck.seed, 64);  // fixed width: gamma cannot carry UINT64_MAX
  w.put_gamma(ck.phase);
  put_lane(w, ck.up);
  put_lane(w, ck.down);
  return w.bytes();
}

PlayerCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  try {
    BitReader r(bytes, bytes.size() * std::uint64_t{8});
    if (r.get_gamma() != kVersion) {
      throw NetError(NetErrorKind::kCorrupt, "unknown checkpoint version");
    }
    PlayerCheckpoint ck;
    const std::uint64_t player = r.get_gamma();
    if (player > UINT32_MAX) {
      throw NetError(NetErrorKind::kCorrupt, "checkpoint player id out of range");
    }
    ck.player = static_cast<std::uint32_t>(player);
    ck.seed = r.get_bits(64);
    ck.phase = r.get_gamma();
    ck.up = get_lane(r);
    ck.down = get_lane(r);
    // Canonical form: what remains is exactly the sub-byte zero padding —
    // anything else (a whole spare byte, or a set pad bit) is corruption,
    // and rejecting it is what makes encode(decode(bytes)) == bytes total.
    if (r.remaining() >= 8) {
      throw NetError(NetErrorKind::kCorrupt, "trailing bytes after checkpoint");
    }
    while (!r.exhausted()) {
      if (r.get_bit()) {
        throw NetError(NetErrorKind::kCorrupt, "nonzero checkpoint pad bits");
      }
    }
    return ck;
  } catch (const WireError&) {
    throw NetError(NetErrorKind::kCorrupt, "truncated checkpoint");
  }
}

}  // namespace tft::net
