#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

/// \file mpsc.h
/// Bounded lock-free charge queue for the sharded servicer's fast path
/// (net/servicer.h): many driving threads push sealed charge commands, one
/// poller thread pops them. The layout is the classic bounded MPMC ring of
/// per-cell sequence numbers (Vyukov), used here in MPSC configuration —
/// producers claim slots with one fetch_add on the tail, the consumer
/// advances the head without any RMW contention against producers.
///
/// Ordering contract: pops observe pushes in tail-claim order, which for a
/// single producer equals its program order — exactly what the servicer
/// needs, since every session has one driving thread and the per-link frame
/// stream must be a pure function of the per-link charge order. Push/pop
/// are both non-blocking: a full ring fails the push (the caller falls back
/// to the locked slow path) and an empty ring fails the pop.
///
/// `approx_empty()` is the poller's quiescence probe. It may report
/// non-empty for a claimed-but-unpublished cell (the producer is between
/// its fetch_add and its release store), but never empty while a published
/// element remains — the conservative direction: the virtual clock must not
/// advance past charges that are already in flight.

namespace tft::net {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit BoundedMpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Any producer thread. False when the ring is full (caller takes the
  /// locked slow path; never spins).
  bool try_push(const T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed lap: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer thread only.
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1) < 0) {
      return false;  // nothing published at the head yet
    }
    out = cell.value;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Conservative emptiness: false while any push has claimed a slot, even
  /// if its value is not yet published. Safe for quiescence decisions.
  [[nodiscard]] bool approx_empty() const noexcept {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  /// Consumer and producers touch disjoint cursors; keep them on separate
  /// cache lines so pushes never steal the poller's head line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace tft::net
