#pragma once

#include <cstdint>
#include <span>

#include "net/checkpoint.h"
#include "net/frame.h"

/// \file recovery.h
/// The crash-recovery control plane: typed kPlayerDown / kResume frames and
/// their codecs.
///
/// Recovery protocol, end to end:
///
///   1. A player dies between two charges (net/fault.h crash schedule). Its
///      last checkpoint was written at the preceding phase barrier; the
///      charges it enqueued since then live in the per-link charge log.
///   2. The coordinator declares the death: a kPlayerDown frame travels the
///      down link, and the ARQ engine stops retransmitting to the corpse
///      (RetryPolicy::fail_fast_on_down). If nobody resumes within
///      down_timeout, the session fails with NetError(kPlayerDown).
///   3. The respawned player answers with kResume, whose payload is its
///      serialized PlayerCheckpoint (net/checkpoint.h). Both ends rewind
///      their lane halves to the barrier and the charge log is replayed.
///      Because the frame stream is a pure function of the charge stream,
///      the replayed bytes are bit-for-bit what the dead incarnation sent —
///      the receiver's window deduplicates anything already delivered.
///
/// Both frame types are out of band: they consume no ARQ sequence number
/// (their `seq` is a per-link control ordinal), are never acknowledged or
/// retransmitted, and contribute nothing to the charged-bit accounting —
/// `verify_accounting` holds unchanged on recovered runs. Epoch fencing
/// (the otherwise-unused `phase` header field of ack frames) keeps the dead
/// incarnation's stale acks from retiring rewound window entries.

namespace tft::net {

/// Decoded body of a kPlayerDown announcement.
struct PlayerDownNotice {
  std::uint32_t player = 0;  ///< who was declared dead
  std::uint64_t phase = 0;   ///< the phase the death was detected in
};

/// Build the coordinator -> player death announcement. `ctrl_seq` is the
/// link's control ordinal (independent of the ARQ window).
[[nodiscard]] Frame make_player_down_frame(std::uint32_t src, std::uint32_t dst,
                                           std::uint32_t ctrl_seq, std::uint32_t player,
                                           std::uint64_t phase);

/// Throws NetError(kCorrupt) on a malformed or trailing-garbage payload.
[[nodiscard]] PlayerDownNotice decode_player_down(const Frame& f);

/// Build the player -> coordinator resume announcement; the payload is the
/// encoded checkpoint verbatim (whole bytes, so payload_bits = 8 * size).
[[nodiscard]] Frame make_resume_frame(std::uint32_t src, std::uint32_t dst,
                                      std::uint32_t ctrl_seq,
                                      std::span<const std::uint8_t> checkpoint_bytes);

/// Throws NetError(kCorrupt) if the payload is not a valid checkpoint.
[[nodiscard]] PlayerCheckpoint decode_resume(const Frame& f);

}  // namespace tft::net
