#include "net/session.h"

#include <numeric>
#include <sstream>

namespace tft::net {

std::uint64_t WireStats::payload_bits() const noexcept {
  return std::accumulate(up_bits.begin(), up_bits.end(), std::uint64_t{0}) +
         std::accumulate(down_bits.begin(), down_bits.end(), std::uint64_t{0});
}

std::uint64_t WireStats::messages() const noexcept {
  return std::accumulate(up_msgs.begin(), up_msgs.end(), std::uint64_t{0}) +
         std::accumulate(down_msgs.begin(), down_msgs.end(), std::uint64_t{0});
}

std::string WireStats::summary() const {
  std::ostringstream os;
  os << messages() << " messages / " << frames_delivered << " frames / " << payload_bits()
     << " payload bits / " << wire_bytes << " wire bytes (retransmits " << retransmissions
     << ", dups " << duplicates << ", corrupt " << corrupt_frames << ", crashes " << crashes
     << ", replayed " << replayed_charges << ")";
  return os.str();
}

}  // namespace tft::net
