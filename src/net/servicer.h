#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <deque>

#include "comm/channel.h"
#include "net/arq.h"
#include "net/checkpoint.h"
#include "net/error.h"
#include "net/fault.h"
#include "net/recovery.h"
#include "net/reliable.h"
#include "net/session.h"
#include "net/transport.h"

/// \file servicer.h
/// The shared event-driven servicer: N poller threads (Options::num_shards,
/// default 1) drain every link of every live session — admitting sealed
/// frames into each link's ARQ window, writing wire bytes (never blocking:
/// partial writes park in per-link out-buffers), parsing arrivals,
/// acknowledging, delivering, and retransmitting on timeout. It replaces
/// the 2k LinkServicer threads of the stop-and-wait engine, and — since the
/// session table landed — also the one-servicer-per-NetSession topology:
/// many concurrent sessions multiplex over one servicer and one shared
/// transport.
///
/// ## Shards
///
/// Each shard is a self-contained copy of the original single-threaded
/// engine: its own mutex, condvars, link table, session table, free-slot
/// list, virtual clock and scratch buffers. A session is pinned to exactly
/// one shard at open_session (session_id % num_shards, or the explicit
/// SessionOptions::shard_affinity hint), and all 2k of its links live
/// there — so per-session determinism, phase-barrier flushing and
/// crash/replay logic are untouched by sharding: within a shard the code
/// IS the single-threaded servicer. `num_shards = 1` takes exactly the
/// legacy code paths (no charge ring, no hub, no spin) and is byte-identical
/// to the pre-shard servicer — the permanent A/B reference.
///
/// With num_shards > 1 the driving threads gain a lock-free fast path:
/// eligible charges (same phase, no crash schedule, queue below the
/// backpressure cap) are pushed onto the shard's bounded MPSC ring
/// (net/mpsc.h) and sealed by the poller in FIFO order — which, one driver
/// per session, equals the driver's program order, preserving the
/// "frame stream is a pure function of the charge stream" anchor. Anything
/// else (phase barriers, crash-tolerant sessions with a crash schedule,
/// backpressure, flush, close) takes the classic locked slow path, which
/// first waits for the session's in-flight ring entries to be consumed so
/// per-link charge order is never reordered across the two paths. Idle
/// pollers spin briefly on the ring before parking on their condvar; a
/// parked flag with a seq_cst fence makes the producer-side wakeup
/// race-free.
///
/// ## Virtual-clock mode (Options::virtual_clock, in-proc only)
///
/// No real timer ever fires. Logical time advances only at *quiescence* —
/// the sweep moved nothing and every live session's driving thread is
/// blocked — jumping straight to the earliest retransmit deadline. At
/// quiescence every delivered ack has been processed, so a frame is
/// retransmitted iff no attempt so far delivered; attempt fates are pure
/// functions of (session, link, seq, attempt); hence retransmission counts
/// are exactly reproducible run to run — what lets bench_net's fault grid
/// live in the committed baseline. With multiple shards, quiescence is
/// global: a VClockHub (net/vclock_hub.h) advances the one logical clock
/// only when every shard has published local quiescence (drivers blocked,
/// ring drained, sweep idle), to the minimum actionable deadline across
/// shards — so per-session fault counts stay bit-identical at any shard
/// count (only WireStats::virtual_time_us, which was never part of the
/// cross-config contract, may differ).
///
/// ## Sessions
///
/// A *session* (net/session.h) is a value-type row in its shard's table:
/// open_session registers 2k links for k players (up then down, the same
/// intra-session link-id numbering as a solo run), session_charge /
/// session_flush are the per-session forms of enqueue_charge / flush (with
/// the per-session phase barrier and crash controller folded in), and
/// close_session drains, folds that session's WireStats and retires its
/// links. Failures with link context (timeout, overrun, player-down) are
/// *contained*: they fail only the owning session — its links go inactive,
/// its driver's waits throw the session's typed error — while every other
/// session keeps draining. Only session-free failures (setup, legacy relay
/// lanes) abort the servicer globally.
///
/// Session handles returned by open_session encode the shard: handle =
/// local_index * num_shards + shard. At num_shards = 1 the handle equals
/// the table index, exactly as before. Legacy sessionless APIs (add_link,
/// enqueue_charge, enqueue_relay, the crash controller's link-index forms,
/// stats) operate on shard 0, where all add_link links live.

namespace tft::net {

class VClockHub;

class SharedServicer {
 public:
  struct Options {
    ArqPolicy arq;
    RetryPolicy retry;
    FaultPlan faults;
    bool virtual_clock = false;
    /// Kernel-buffered transport: the servicer cannot assume "nothing
    /// readable unless I wrote it", so quiescent waits recheck on a timer.
    bool timed_recheck = false;
    /// Crash-fault tolerance (net/recovery.h): log charges since the last
    /// flush barrier, snapshot per-link barrier state at every flush, and
    /// accept crash_player / recover_player calls. Off for relay lanes.
    bool crash_tolerance = false;
    /// Independent poller shards. 1 (the default) is the single-threaded
    /// servicer, byte for byte; N > 1 scales the service plane across N
    /// cores while keeping every session's transcript and accounting
    /// bit-exact (sessions never span shards). Values < 1 are clamped.
    std::size_t num_shards = 1;
  };

  explicit SharedServicer(const Options& opts);
  ~SharedServicer();  ///< stops and joins without draining (abandon)

  SharedServicer(const SharedServicer&) = delete;
  SharedServicer& operator=(const SharedServicer&) = delete;

  /// Register a directed link before start(). `link` must outlive the
  /// servicer. `coalesce` gates batching per link (relay lanes keep one
  /// message per frame so the overhead measurement stays per-message).
  /// `deliver` (optional) sees each unique accepted frame in sequence
  /// order, on the servicer thread; it may call enqueue_from_hook only.
  /// Legacy links always live on shard 0.
  std::size_t add_link(Link* link, std::uint32_t link_id, std::uint32_t src, std::uint32_t dst,
                       bool coalesce, std::function<void(const Frame&)> deliver = nullptr);

  void start();

  // ---- session table ------------------------------------------------------

  struct SessionOptions {
    std::size_t num_players = 0;
    /// Wire session id: 0 for the single-session runtime (v1 frames),
    /// >= 1 for multiplexed service sessions. Must be unique among the
    /// servicer's *open* sessions.
    std::uint32_t session_id = 0;
    std::uint64_t seed = 0;        ///< carried inside player checkpoints
    bool crash_tolerance = false;  ///< charge logs + barrier checkpoints
    /// Per-session fault plan; nullopt inherits Options::faults. Decisions
    /// key on (session, link, seq), so two sessions sharing a plan still
    /// draw independent fates.
    std::optional<FaultPlan> faults;
    /// Shard placement hint: 0 (default) routes by session_id % num_shards;
    /// s >= 1 pins the session to shard (s - 1) % num_shards. Placement
    /// never changes the session's bytes or accounting — only which poller
    /// core serves it.
    std::uint32_t shard_affinity = 0;
  };

  /// Register a session: mints 2k links from `transport` (outside the lock
  /// — socket transports may block) and appends a session row to the
  /// routed shard's table. Allowed before or after start(). Returns the
  /// session handle (shard-encoded; equal to the table index at
  /// num_shards = 1).
  std::size_t open_session(Transport& transport, const SessionOptions& so);

  /// Per-session enqueue_charge: runs the session's phase barrier when
  /// `phase` changes, evaluates its crash schedule, seals the charge onto
  /// the addressed link and applies backpressure. Throws the session's
  /// typed error if it failed. With num_shards > 1, eligible charges take
  /// the shard's lock-free ring instead of the mutex.
  void session_charge(std::size_t session, std::size_t player, bool upstream,
                      std::uint64_t bits, std::uint64_t phase);

  /// Per-session flush(): seal + drain only this session's links; under
  /// crash tolerance, snapshot its barrier checkpoints.
  void session_flush(std::size_t session);

  /// Drain (best effort), fold and return this session's WireStats, retire
  /// its links and free its driver slot. Idempotent; never throws a session
  /// error — a failed session folds whatever crossed the wire, and the
  /// caller surfaces the failure via rethrow_session_error.
  WireStats close_session(std::size_t session);

  /// Throws the session's recorded NetError, if any.
  void rethrow_session_error(std::size_t session) const;

  /// The player's latest barrier checkpoint bytes (crash tolerance only).
  [[nodiscard]] const std::vector<std::uint8_t>& session_checkpoint_bytes(
      std::size_t session, std::size_t player) const;

  [[nodiscard]] std::size_t num_sessions() const;

  // ---- driving-thread API (legacy sessionless links, shard 0) -------------

  /// Append one charged message to the link's open batch (or seal a solo
  /// frame when not coalescing). Blocks on queue backpressure; under
  /// block_per_frame, blocks until the frame is acknowledged.
  void enqueue_charge(std::size_t link_index, std::uint64_t phase, std::uint64_t bits);

  /// Seal one kRelay frame (recipient id + message filler) immediately.
  void enqueue_relay(std::size_t link_index, std::size_t k, std::size_t recipient,
                     std::uint64_t message_bits);

  /// Phase barrier: seal every open batch, then block until every queue,
  /// window and out-buffer is drained (acknowledged end to end) on every
  /// shard. Under crash_tolerance the barrier additionally snapshots every
  /// link's LinkCheckpoint and clears the charge logs — the checkpoint
  /// instant.
  void flush();

  // ---- crash controller (driving thread, crash_tolerance only) ------------

  /// Kill `player` between two charges: its up link (`up_index`) stops
  /// sending, its down link (`down_index`) stops receiving, the down link's
  /// ack epoch is fenced so the dead incarnation's stale acks cannot retire
  /// rewound window entries, and a kPlayerDown control frame is emitted on
  /// the down link. If no recover_player follows, the session fails with
  /// NetError(kPlayerDown) after RetryPolicy::down_timeout (fail-fast) or
  /// NetError(kTimeout) once the backoff budget burns out (legacy).
  /// Link indices are shard-0 scope (the legacy single-session layout).
  void crash_player(std::size_t up_index, std::size_t down_index, std::uint32_t player,
                    std::uint64_t phase);

  /// Resurrect a crashed player from its barrier checkpoint: both lane
  /// halves rewind to the checkpointed state, a kResume control frame
  /// carrying `checkpoint_bytes` travels the up link, and the charge logs
  /// accumulated since the barrier are replayed — regenerating the dead
  /// incarnation's outbound frame stream bit for bit (receivers deduplicate
  /// whatever was already delivered). Throws NetError(kProtocol) if more
  /// frames were sealed since the barrier than the sequence circle can
  /// replay unambiguously.
  void recover_player(std::size_t up_index, std::size_t down_index, const PlayerCheckpoint& ck,
                      std::span<const std::uint8_t> checkpoint_bytes);

  /// The link's state at the last flush barrier (all zeros before the
  /// first barrier — the start-of-run checkpoint). Shard-0 link indices.
  [[nodiscard]] LinkCheckpoint barrier_checkpoint(std::size_t link_index) const;

  /// Total charges re-sealed by recover_player calls so far (all shards).
  [[nodiscard]] std::uint64_t replayed_charges() const;

  /// Drain, stop and join every shard; never throws (failures stay in
  /// error() and are rethrown by rethrow_error()). Idempotent. Stats are
  /// valid after this.
  void finish() noexcept;

  /// Throws the first shard's recorded NetError, if any (shards checked in
  /// index order).
  void rethrow_error() const;

  // ---- servicer-thread API (deliver hooks only) ---------------------------

  /// Seal a solo kData frame from inside a deliver hook (the relay
  /// forwarding path). Lock already held; never blocks, ignores
  /// pending_cap — the servicer must never wait on itself.
  void enqueue_from_hook(std::size_t link_index, std::uint64_t phase, std::uint64_t bits);

  // ---- results (after finish) ---------------------------------------------

  struct LinkStats {
    SenderStats sender;
    ReceiverStats receiver;
  };

  /// Shard-0 (legacy) link stats.
  [[nodiscard]] const LinkStats& stats(std::size_t link_index) const;
  [[nodiscard]] std::uint64_t virtual_time_us() const noexcept;
  [[nodiscard]] std::size_t num_links() const noexcept;
  [[nodiscard]] std::size_t num_shards() const noexcept { return num_shards_; }

 private:
  struct LinkState;
  struct SessionRt;
  struct Shard;
  struct ChargeCmd;

  [[nodiscard]] std::size_t shard_for(std::uint32_t session_id,
                                      std::uint32_t affinity) const noexcept;

  void run(Shard& sh) noexcept;
  std::size_t drain_charges(Shard& sh);
  void wake_shard(Shard& sh);
  void park_and_wait(Shard& sh, std::unique_lock<std::mutex>& lock,
                     std::chrono::microseconds dur);
  bool sweep(Shard& sh, std::uint64_t now_us);
  void transmit(LinkState& link, ArqSenderWindow::Entry& entry, std::uint64_t now_us);
  bool retransmit_due(Shard& sh, std::uint64_t now_us);
  bool advance_virtual_clock(Shard& sh);
  [[nodiscard]] bool earliest_deadline(const Shard& sh, std::uint64_t& out) const noexcept;
  void check_down(Shard& sh, std::uint64_t now_us);
  void wait_for_space(Shard& sh, std::unique_lock<std::mutex>& lock, LinkState& link);
  void drain_session_ring_locked(Shard& sh, std::unique_lock<std::mutex>& lock, SessionRt& rt);
  void session_barrier_locked(Shard& sh, std::unique_lock<std::mutex>& lock, SessionState& ss);
  void refresh_session_checkpoints_locked(Shard& sh, SessionState& ss);
  void maybe_crash_locked(Shard& sh, SessionRt& rt, std::size_t player, std::uint64_t phase);
  void crash_player_locked(Shard& sh, std::size_t up_index, std::size_t down_index,
                           std::uint32_t player, std::uint64_t phase);
  void recover_player_locked(Shard& sh, std::size_t up_index, std::size_t down_index,
                             const PlayerCheckpoint& ck,
                             std::span<const std::uint8_t> checkpoint_bytes, SessionState* ss);
  void fail_session_locked(Shard& sh, SessionRt& rt, NetErrorKind kind,
                           std::string what) noexcept;
  /// Route a failure to its owner: the link's session if it has one, the
  /// global error otherwise.
  void link_failure(Shard& sh, LinkState& link, NetErrorKind kind, std::string what) noexcept;
  void throw_if_session_failed_locked(const SessionState& ss) const;
  [[nodiscard]] bool session_drained_locked(const Shard& sh,
                                            const SessionState& ss) const noexcept;
  void handle_data_frame(LinkState& link, Frame f);
  void handle_control_frame(LinkState& link, const Frame& f);
  void accept_frame(LinkState& link, const Frame& f);
  void seal_open_batch(LinkState& link);
  void seal_data_frame(LinkState& link, std::uint64_t phase, std::uint64_t bits);
  void seal_charge(LinkState& link, std::uint64_t phase, std::uint64_t bits);
  static void note_depth(LinkState& link) noexcept;
  void append_control_frame(LinkState& link, const Frame& f);
  void restore_sender(LinkState& link, const LinkCheckpoint& ck);
  void restore_receiver(LinkState& link, const LinkCheckpoint& ck);
  [[nodiscard]] bool suppressed_sender(const LinkState& link) const noexcept;
  [[nodiscard]] bool all_drained(const Shard& sh) const noexcept;
  [[nodiscard]] bool anything_unacked(const Shard& sh) const noexcept;
  [[nodiscard]] bool ring_drained(const Shard& sh) const noexcept;
  void record_error(Shard& sh, NetErrorKind kind, std::string what) noexcept;
  void throw_if_error_locked(const Shard& sh) const;
  [[nodiscard]] std::uint64_t now_us(const Shard& sh) const noexcept;
  void flush_shard(Shard& sh);

  Options opts_;
  std::size_t num_shards_ = 1;
  /// True iff num_shards_ > 1: gates the MPSC fast path, the poller spin
  /// and the hub, so a single-shard servicer takes exactly the legacy code
  /// paths.
  bool multi_shard_ = false;
  /// One engine per shard (pointer-stable; the Shard definition lives in
  /// servicer.cpp next to LinkState).
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Cross-shard virtual-clock barrier; only with virtual_clock and
  /// num_shards > 1.
  std::unique_ptr<VClockHub> hub_;
  bool started_ = false;
  bool finished_ = false;
  Clock::time_point epoch_;
};

/// ChannelSink view of one multiplexed session: a service worker installs
/// one (ChannelSinkScope) so its protocol body's charges flow into its own
/// session of the shared servicer. NetSession is the session-0 equivalent
/// with transport ownership and lifecycle folded in.
class SessionSink final : public ChannelSink {
 public:
  SessionSink(SharedServicer* servicer, std::size_t session) noexcept
      : servicer_(servicer), session_(session) {}

  void on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                 std::uint64_t phase) override {
    servicer_->session_charge(session_, player, dir == Direction::kPlayerToCoordinator, bits,
                              phase);
  }
  void on_flush() override { servicer_->session_flush(session_); }

 private:
  SharedServicer* servicer_;
  std::size_t session_;
};

}  // namespace tft::net
