#include "net/servicer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <utility>

#include "net/mpsc.h"
#include "net/vclock_hub.h"
#include "util/bits.h"

namespace tft::net {

namespace {

/// Compact an out-buffer once its consumed prefix dominates.
void compact(std::vector<std::uint8_t>& buf, std::size_t& pos) {
  if (pos == buf.size()) {
    buf.clear();
    pos = 0;
  } else if (pos > (std::size_t{1} << 16) && pos >= buf.size() / 2) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(pos));
    pos = 0;
  }
}

inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

}  // namespace

/// Everything one directed link owns: the driving side's open batch and
/// sealed-frame queue, the sender window with its pending out-bytes, and
/// the receiving state machine with its ack out-bytes. All of it guarded
/// by the owning shard's mutex.
struct SharedServicer::LinkState {
  static constexpr std::size_t kNoSession = static_cast<std::size_t>(-1);

  LinkState(Link* l, std::uint32_t id, std::uint32_t s, std::uint32_t d, bool co,
            std::function<void(const Frame&)> hook, const Options& opts,
            const FaultPlan& faults, std::uint32_t sess_id, std::size_t sess_index,
            bool log)
      : link(l),
        link_id(id),
        src(s),
        dst(d),
        coalesce(co),
        deliver(std::move(hook)),
        injector(faults, id, sess_id),
        session_id(sess_id),
        session(sess_index),
        log_charges(log),
        window(opts.arq),
        rcv(opts.arq) {}

  Link* link;
  std::uint32_t link_id;
  std::uint32_t src;
  std::uint32_t dst;
  bool coalesce;
  std::function<void(const Frame&)> deliver;
  FaultInjector injector;
  Link owned;  ///< session links: the servicer owns the transport link
  std::uint32_t session_id;  ///< wire session id stamped on every frame
  std::size_t session;       ///< shard-local session index, or kNoSession (legacy links)
  bool log_charges;          ///< append to charge_log (crash tolerance)
  /// Cleared when the owning session closes or fails: an inactive link
  /// counts as drained, is skipped by the sweep, and holds no deadlines.
  bool active = true;

  // Driving side (sealed under the shard mutex by the enqueue calls, or by
  // the poller draining the charge ring).
  std::vector<ChargeRec> open_batch;
  std::uint64_t open_batch_bits = 0;
  std::uint32_t next_seq = 0;
  std::deque<Frame> queue;  ///< sealed, awaiting window admission
  /// Fast-path backpressure mirror of queue.size(), published into the
  /// owning session's depth array so lock-free charges can respect
  /// pending_cap (approximately: entries still in the ring are not
  /// counted, so the true bound is pending_cap + ring capacity). Null on
  /// single-shard servicers and legacy links.
  std::atomic<std::uint32_t>* depth_slot = nullptr;

  // Sender half.
  ArqSenderWindow window;
  std::vector<std::uint8_t> out_data;  ///< bytes pending on link->data
  std::size_t out_data_pos = 0;
  std::vector<std::uint8_t> wire_scratch;  ///< pooled serialization buffer
  FrameParser ack_parser;
  SenderStats sstats;

  // Receiver half.
  ArqReceiverWindow rcv;
  FrameParser data_parser;
  std::vector<std::uint8_t> out_ack;  ///< bytes pending on link->ack
  std::size_t out_ack_pos = 0;
  ReceiverStats rstats;
  std::vector<ChargeRec> batch_scratch;
  LinkStats folded;  ///< snapshot taken at finish()

  // Crash tolerance (Options::crash_tolerance). `barrier` + `charge_log`
  // are the recovery pair: the lane state at the last flush and the charges
  // sealed since — replaying the log from the barrier regenerates the frame
  // stream bit for bit.
  LinkCheckpoint barrier;
  std::vector<ChargeRec> charge_log;
  bool src_down = false;   ///< this link's sender died (a dead player's up link)
  bool dst_down = false;   ///< this link's receiver died (a dead player's down link)
  std::uint64_t down_deadline_us = 0;  ///< resume-or-fail deadline while down
  std::uint32_t ctrl_seq = 0;          ///< out-of-band control frame ordinal
  std::uint64_t epoch = 0;  ///< ack fence: bumped each time the receiver dies

  [[nodiscard]] bool drained() const noexcept {
    return !active || (open_batch.empty() && queue.empty() && window.empty());
  }
};

/// One charge command on a shard's lock-free ring: the fast-path form of
/// session_charge, sealed by the poller in push order.
struct SharedServicer::ChargeCmd {
  std::uint32_t session = 0;  ///< shard-local session index
  std::uint32_t player = 0;
  bool upstream = false;
  std::uint64_t bits = 0;
  std::uint64_t phase = 0;
};

/// A session row plus the lock-free state its driver's fast path reads
/// without the shard mutex. Rows live in a deque and are never moved
/// (the atomics pin them), so pointers published in the shard's segment
/// table stay valid for the servicer's lifetime.
struct SharedServicer::SessionRt {
  SessionState st;
  /// Immutable after open_session: the session can ever use the ring at
  /// all (multi-shard, no per-frame blocking, no crash schedule).
  bool fast_eligible = false;
  /// Mirror of st.failed() || st.closed for lock-free rejection; set under
  /// the shard lock wherever the underlying state changes.
  std::atomic<bool> failed_or_closed{false};
  /// Ring accounting: cmds the driver pushed vs. cmds the poller sealed.
  /// Slow-path entries wait for consumed == pushed before touching link
  /// state, so the per-link charge order is identical to a lock-only run.
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> consumed{0};
  /// Per-link queue depths (2k slots), mirrored from LinkState::queue by
  /// the poller for fast-path backpressure.
  std::unique_ptr<std::atomic<std::uint32_t>[]> depth;
};

/// One self-contained servicer engine: the pre-shard SharedServicer's
/// entire mutable state, times num_shards. Sessions are pinned here for
/// life; nothing below is ever touched by another shard's poller.
struct SharedServicer::Shard {
  explicit Shard(std::size_t idx, std::size_t ring_capacity)
      : index(idx), charges(ring_capacity), read_buf(std::size_t{1} << 16) {}

  const std::size_t index;

  mutable std::mutex mu;
  std::condition_variable work_cv;   ///< wakes the poller (new work / stop)
  std::condition_variable space_cv;  ///< wakes driving waits (space / drain / error)
  /// Written under mu (condvar discipline) but atomic so the poller's
  /// lock-free spin can observe it.
  std::atomic<bool> stop{false};
  /// Lock-free mirror of error_kind for the charge fast path.
  std::atomic<bool> has_error{false};
  /// Poller-is-parked flag for the producer-side wakeup (Dekker with a
  /// seq_cst fence: producers push, fence, load parked; the poller stores
  /// parked, fence-equivalent, re-checks the ring).
  std::atomic<bool> parked{false};

  int driving_waiting = 0;  ///< driving threads blocked => quiescence may advance vclock
  /// Open sessions whose drivers may still act. The virtual clock advances
  /// only when every one of them is blocked (driving_waiting >=
  /// live_drivers): jumping while another session's driver is mid-compute
  /// would make retransmission fates depend on scheduling.
  int live_drivers = 0;
  std::optional<NetErrorKind> error_kind;
  std::string error_what;
  std::uint64_t replayed = 0;
  std::uint64_t vnow_us = 0;

  /// Link table. Slots are stable for the servicer's lifetime (link indices
  /// are handed out), but a closed session's slots are reset to null —
  /// reclaiming its rings and windows — and recorded in free_link_blocks
  /// for the next same-width session to reuse. Every scan must skip nulls.
  std::vector<std::unique_ptr<LinkState>> links;
  /// Reclaimed contiguous slot runs: (first slot, slot count). Bounds the
  /// link table by peak concurrency, not by total sessions ever served.
  std::vector<std::pair<std::size_t, std::size_t>> free_link_blocks;
  /// The session table (deque: rows never move, so checkpoint references
  /// and published SessionRt pointers stay valid). Guarded by mu.
  std::deque<SessionRt> sessions;

  /// Lock-free navigation from a shard-local session index to its row:
  /// a fixed two-level table of published pointers, so the charge fast
  /// path never walks the deque while open_session grows it. Segments are
  /// allocated under mu and published with release; a driver only ever
  /// looks up an index it received from open_session, which
  /// happens-before any of its charges.
  static constexpr std::size_t kSegShift = 9;
  static constexpr std::size_t kSegSize = std::size_t{1} << kSegShift;
  static constexpr std::size_t kMaxSegs = std::size_t{1} << 12;
  struct SessionSeg {
    SessionRt* rows[kSegSize] = {};
  };
  std::array<std::atomic<SessionSeg*>, kMaxSegs> segs{};
  std::vector<std::unique_ptr<SessionSeg>> seg_storage;  ///< under mu

  /// The MPSC charge ring (fast path; unused at num_shards = 1).
  BoundedMpscQueue<ChargeCmd> charges;

  /// Shard-local frame buffers: each poller reads, parses and scratches in
  /// its own arenas, so shards share no hot memory.
  std::vector<std::uint8_t> read_buf;
  std::vector<ArqSenderWindow::Entry*> due_scratch;

  std::thread thread;

  [[nodiscard]] SessionRt* lookup(std::size_t local) const noexcept {
    const SessionSeg* seg = segs[local >> kSegShift].load(std::memory_order_acquire);
    return seg == nullptr ? nullptr : seg->rows[local & (kSegSize - 1)];
  }
};

SharedServicer::SharedServicer(const Options& opts) : opts_(opts) {
  opts_.arq.validate();
  if (opts_.virtual_clock && opts_.timed_recheck) {
    throw NetError(NetErrorKind::kSetup,
                   "virtual clock requires an in-process transport (kernel-buffered "
                   "transports cannot reach quiescence deterministically)");
  }
  num_shards_ = std::max<std::size_t>(1, opts_.num_shards);
  multi_shard_ = num_shards_ > 1;
  shards_.reserve(num_shards_);
  for (std::size_t i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, /*ring_capacity=*/4096));
  }
  if (opts_.virtual_clock && multi_shard_) {
    hub_ = std::make_unique<VClockHub>(num_shards_);
    for (std::size_t i = 0; i < num_shards_; ++i) {
      hub_->attach(i, &shards_[i]->work_cv);
    }
  }
}

SharedServicer::~SharedServicer() {
  for (auto& shp : shards_) {
    {
      const std::lock_guard lock(shp->mu);
      shp->stop.store(true, std::memory_order_relaxed);
    }
    shp->work_cv.notify_all();
  }
  for (auto& shp : shards_) {
    if (shp->thread.joinable()) shp->thread.join();
  }
}

std::size_t SharedServicer::shard_for(std::uint32_t session_id,
                                      std::uint32_t affinity) const noexcept {
  if (affinity != 0) return (affinity - 1) % num_shards_;
  return session_id % num_shards_;
}

std::size_t SharedServicer::add_link(Link* link, std::uint32_t link_id, std::uint32_t src,
                                     std::uint32_t dst, bool coalesce,
                                     std::function<void(const Frame&)> deliver) {
  if (started_) {
    throw NetError(NetErrorKind::kSetup, "add_link after start");
  }
  Shard& sh = *shards_[0];
  sh.links.push_back(std::make_unique<LinkState>(
      link, link_id, src, dst, coalesce && opts_.arq.coalesce, std::move(deliver), opts_,
      opts_.faults, /*sess_id=*/0, LinkState::kNoSession,
      /*log=*/opts_.crash_tolerance));
  return sh.links.size() - 1;
}

std::size_t SharedServicer::open_session(Transport& transport, const SessionOptions& so) {
  if (so.num_players == 0) {
    throw NetError(NetErrorKind::kSetup, "open_session requires at least one player");
  }
  // Mint links outside the lock: socket transports block in connect/accept,
  // and the shard's poller must keep draining other sessions meanwhile.
  std::vector<Link> minted;
  minted.reserve(2 * so.num_players);
  for (std::size_t j = 0; j < 2 * so.num_players; ++j) {
    minted.push_back(transport.make_link());
  }

  const std::size_t shard_idx = shard_for(so.session_id, so.shard_affinity);
  Shard& sh = *shards_[shard_idx];
  const std::lock_guard lock(sh.mu);
  for (const SessionRt& other : sh.sessions) {
    if (!other.st.closed && other.st.id == so.session_id) {
      throw NetError(NetErrorKind::kSetup,
                     "session id " + std::to_string(so.session_id) + " already open");
    }
  }
  const std::size_t local = sh.sessions.size();
  if ((local >> Shard::kSegShift) >= Shard::kMaxSegs) {
    throw NetError(NetErrorKind::kSetup, "session table full on shard " +
                                             std::to_string(shard_idx));
  }
  sh.sessions.emplace_back();
  SessionRt& rt = sh.sessions.back();
  SessionState& ss = rt.st;
  ss.id = so.session_id;
  ss.k = so.num_players;
  // Prefer a reclaimed slot run of the same width over growing the table:
  // a service that opens and closes sessions forever stays at its peak
  // footprint, and the reused slots' pages are already hot.
  ss.link_base = sh.links.size();
  bool grow = true;
  for (std::size_t b = 0; b < sh.free_link_blocks.size(); ++b) {
    if (sh.free_link_blocks[b].second == 2 * so.num_players) {
      ss.link_base = sh.free_link_blocks[b].first;
      sh.free_link_blocks[b] = sh.free_link_blocks.back();
      sh.free_link_blocks.pop_back();
      grow = false;
      break;
    }
  }
  ss.seed = so.seed;
  ss.crash_tolerance = so.crash_tolerance;
  ss.faults = so.faults ? *so.faults : opts_.faults;
  ss.ckpts = CheckpointStore(so.num_players);
  ss.charge_counts.resize(so.num_players);

  rt.fast_eligible = multi_shard_ && !opts_.arq.block_per_frame &&
                     !(ss.crash_tolerance && ss.faults.has_crashes());
  if (multi_shard_) {
    rt.depth = std::make_unique<std::atomic<std::uint32_t>[]>(2 * so.num_players);
    for (std::size_t j = 0; j < 2 * so.num_players; ++j) {
      rt.depth[j].store(0, std::memory_order_relaxed);
    }
  }

  const std::uint32_t coord = static_cast<std::uint32_t>(so.num_players);
  // The solo-session numbering, per session: up link j has id j, down link
  // j has id k+1+j. Fault and filler keying add the session id on top, so
  // a multiplexed session's byte stream equals the same session run alone.
  for (std::size_t j = 0; j < 2 * so.num_players; ++j) {
    const bool up = j < so.num_players;
    const std::uint32_t pj = static_cast<std::uint32_t>(up ? j : j - so.num_players);
    auto ls = std::make_unique<LinkState>(
        nullptr, /*link_id=*/up ? pj : coord + 1 + pj, /*src=*/up ? pj : coord,
        /*dst=*/up ? coord : pj, /*coalesce=*/opts_.arq.coalesce, nullptr, opts_, ss.faults,
        ss.id, local,
        /*log=*/ss.crash_tolerance);
    ls->owned = std::move(minted[j]);
    ls->link = &ls->owned;
    if (multi_shard_) ls->depth_slot = &rt.depth[j];
    if (grow) {
      sh.links.push_back(std::move(ls));
    } else {
      sh.links[ss.link_base + j] = std::move(ls);
    }
  }

  // Publish the row for lock-free fast-path navigation.
  const std::size_t seg_idx = local >> Shard::kSegShift;
  Shard::SessionSeg* seg = sh.segs[seg_idx].load(std::memory_order_relaxed);
  if (seg == nullptr) {
    auto fresh = std::make_unique<Shard::SessionSeg>();
    fresh->rows[local & (Shard::kSegSize - 1)] = &rt;
    seg = fresh.get();
    sh.seg_storage.push_back(std::move(fresh));
    sh.segs[seg_idx].store(seg, std::memory_order_release);
  } else {
    seg->rows[local & (Shard::kSegSize - 1)] = &rt;
  }

  ++sh.live_drivers;
  // The start-of-run checkpoint: all-zero barriers, phase 0.
  if (ss.crash_tolerance) refresh_session_checkpoints_locked(sh, ss);
  if (hub_ != nullptr) hub_->publish_active(sh.index);
  sh.work_cv.notify_one();
  return local * num_shards_ + shard_idx;
}

std::size_t SharedServicer::num_sessions() const {
  std::size_t n = 0;
  for (const auto& shp : shards_) {
    const std::lock_guard lock(shp->mu);
    n += shp->sessions.size();
  }
  return n;
}

void SharedServicer::start() {
  if (started_) return;
  started_ = true;
  epoch_ = Clock::now();
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    sh.thread = std::thread([this, &sh] { run(sh); });
  }
}

std::uint64_t SharedServicer::now_us(const Shard& sh) const noexcept {
  if (opts_.virtual_clock) return sh.vnow_us;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch_).count());
}

std::uint64_t SharedServicer::virtual_time_us() const noexcept {
  if (hub_ != nullptr) return hub_->now();
  return shards_[0]->vnow_us;
}

std::size_t SharedServicer::num_links() const noexcept {
  std::size_t n = 0;
  for (const auto& shp : shards_) n += shp->links.size();
  return n;
}

void SharedServicer::record_error(Shard& sh, NetErrorKind kind, std::string what) noexcept {
  if (!sh.error_kind) {
    sh.error_kind = kind;
    sh.error_what = std::move(what);
    sh.has_error.store(true, std::memory_order_release);
  }
}

void SharedServicer::throw_if_error_locked(const Shard& sh) const {
  if (sh.error_kind) throw NetError(*sh.error_kind, sh.error_what);
}

void SharedServicer::rethrow_error() const {
  for (const auto& shp : shards_) {
    const std::lock_guard lock(shp->mu);
    throw_if_error_locked(*shp);
  }
}

bool SharedServicer::all_drained(const Shard& sh) const noexcept {
  for (const auto& link : sh.links) {
    if (link && !link->drained()) return false;
  }
  return true;
}

bool SharedServicer::anything_unacked(const Shard& sh) const noexcept {
  for (const auto& link : sh.links) {
    if (!link || !link->active) continue;
    if (!link->queue.empty() || !link->window.empty() ||
        link->out_data_pos < link->out_data.size() || link->out_ack_pos < link->out_ack.size()) {
      return true;
    }
  }
  return false;
}

bool SharedServicer::ring_drained(const Shard& sh) const noexcept {
  return !multi_shard_ || sh.charges.approx_empty();
}

// ---- sealing (driving thread or poller, under the shard mutex) --------------

void SharedServicer::note_depth(LinkState& link) noexcept {
  if (link.depth_slot != nullptr) {
    link.depth_slot->store(static_cast<std::uint32_t>(link.queue.size()),
                           std::memory_order_relaxed);
  }
}

void SharedServicer::seal_data_frame(LinkState& link, std::uint64_t phase, std::uint64_t bits) {
  Frame f;
  f.header.type = FrameType::kData;
  f.header.src = link.src;
  f.header.dst = link.dst;
  f.header.seq = link.next_seq;
  f.header.phase = phase;
  f.header.payload_bits = bits;
  f.header.session = link.session_id;
  f.payload = make_filler_payload(f.header);
  link.next_seq = (link.next_seq + 1) % opts_.arq.seq_modulus;
  link.queue.push_back(std::move(f));
  note_depth(link);
}

void SharedServicer::seal_open_batch(LinkState& link) {
  if (link.open_batch.empty()) return;
  if (link.open_batch.size() == 1) {
    // A batch of one is emitted as a plain kData frame: byte-identical to
    // the uncoalesced encoding, and a solo oversized charge keeps the
    // full kMaxPayloadBits headroom.
    seal_data_frame(link, link.open_batch.front().phase, link.open_batch.front().bits);
  } else {
    Frame f = make_batch_frame(link.src, link.dst, link.next_seq, link.open_batch,
                               link.session_id);
    link.next_seq = (link.next_seq + 1) % opts_.arq.seq_modulus;
    link.queue.push_back(std::move(f));
    note_depth(link);
  }
  link.open_batch.clear();
  link.open_batch_bits = 0;
}

void SharedServicer::seal_charge(LinkState& link, std::uint64_t phase, std::uint64_t bits) {
  if (link.coalesce) {
    const bool fits = link.open_batch.empty() ||
                      (link.open_batch.size() < opts_.arq.max_batch_msgs &&
                       link.open_batch_bits + bits <= opts_.arq.max_batch_bits &&
                       link.open_batch.front().phase == phase);
    if (!fits) seal_open_batch(link);
    link.open_batch.push_back({phase, bits});
    link.open_batch_bits += bits;
    if (link.open_batch.size() >= opts_.arq.max_batch_msgs ||
        link.open_batch_bits >= opts_.arq.max_batch_bits) {
      seal_open_batch(link);
    }
  } else {
    seal_data_frame(link, phase, bits);
  }
}

void SharedServicer::wait_for_space(Shard& sh, std::unique_lock<std::mutex>& lock,
                                    LinkState& link) {
  // Backpressure: cap the sealed-but-unadmitted queue. A session-owned
  // link's waits additionally break on *its own* session failing — another
  // session's trouble never wakes (or wedges) this driver.
  const auto dead = [&] {
    return sh.error_kind.has_value() ||
           (link.session != LinkState::kNoSession && sh.sessions[link.session].st.failed());
  };
  ++sh.driving_waiting;
  while (!dead() && link.queue.size() > opts_.arq.pending_cap) {
    sh.space_cv.wait_for(lock, std::chrono::seconds(1));
  }
  if (opts_.arq.block_per_frame) {
    // Stop-and-wait discipline: this charge's frame must be acknowledged
    // before the protocol continues.
    while (!dead() && !link.drained()) {
      sh.space_cv.wait_for(lock, std::chrono::seconds(1));
    }
  }
  --sh.driving_waiting;
  if (hub_ != nullptr) hub_->publish_active(sh.index);
  throw_if_error_locked(sh);
  if (link.session != LinkState::kNoSession) {
    throw_if_session_failed_locked(sh.sessions[link.session].st);
  }
}

void SharedServicer::enqueue_charge(std::size_t link_index, std::uint64_t phase,
                                    std::uint64_t bits) {
  Shard& sh = *shards_[0];
  std::unique_lock lock(sh.mu);
  throw_if_error_locked(sh);
  LinkState& link = *sh.links[link_index];
  const std::size_t sealed_before = link.queue.size();
  // The log, not the live queue, is recovery's source of truth: replaying
  // it through seal_charge reproduces the coalescing decisions and hence
  // the exact frame stream (which is a pure per-link function of the
  // per-link charge sequence).
  if (link.log_charges) link.charge_log.push_back({phase, bits});
  seal_charge(link, phase, bits);
  // Wake the servicer only when a frame was actually sealed: a charge that
  // merely grew the open batch gives it nothing to do, and the enqueue path
  // is the windowed pipeline's hot loop.
  if (link.queue.size() != sealed_before) sh.work_cv.notify_one();
  wait_for_space(sh, lock, link);
}

void SharedServicer::enqueue_relay(std::size_t link_index, std::size_t k, std::size_t recipient,
                                   std::uint64_t message_bits) {
  Shard& sh = *shards_[0];
  std::unique_lock lock(sh.mu);
  throw_if_error_locked(sh);
  LinkState& link = *sh.links[link_index];
  link.queue.push_back(
      make_relay_frame(link.src, link.next_seq, k, recipient, message_bits));
  link.next_seq = (link.next_seq + 1) % opts_.arq.seq_modulus;
  sh.work_cv.notify_one();
  wait_for_space(sh, lock, link);
}

void SharedServicer::enqueue_from_hook(std::size_t link_index, std::uint64_t phase,
                                       std::uint64_t bits) {
  // Already under the shard mutex on its poller thread; no cap, no waiting
  // — the servicer must never block on itself. Deliver hooks only exist on
  // legacy add_link links, which all live on shard 0.
  seal_data_frame(*shards_[0]->links[link_index], phase, bits);
}

void SharedServicer::flush() {
  for (auto& shp : shards_) flush_shard(*shp);
}

void SharedServicer::flush_shard(Shard& sh) {
  std::unique_lock lock(sh.mu);
  throw_if_error_locked(sh);
  // Any charges still in the ring must seal before the barrier seals the
  // open batches they would have joined.
  ++sh.driving_waiting;
  while (!sh.error_kind && !ring_drained(sh)) {
    sh.work_cv.notify_one();
    sh.space_cv.wait_for(lock, std::chrono::seconds(1));
  }
  --sh.driving_waiting;
  throw_if_error_locked(sh);
  for (auto& link : sh.links) {
    if (link) seal_open_batch(*link);
  }
  sh.work_cv.notify_one();
  ++sh.driving_waiting;
  while (!sh.error_kind && !(ring_drained(sh) && all_drained(sh))) {
    sh.work_cv.notify_one();
    sh.space_cv.wait_for(lock, std::chrono::seconds(1));
  }
  --sh.driving_waiting;
  if (hub_ != nullptr) hub_->publish_active(sh.index);
  throw_if_error_locked(sh);
  if (opts_.crash_tolerance) {
    // The checkpoint instant: every queue, window and out-buffer is drained
    // end to end, so each link's state is fully captured by this snapshot,
    // and the charge logs restart empty.
    for (auto& lp : sh.links) {
      if (!lp) continue;
      LinkState& link = *lp;
      link.barrier.next_seq = link.next_seq;
      link.barrier.next_expected = link.rcv.next_expected();
      link.barrier.frames = link.rstats.frames;
      link.barrier.messages = link.rstats.messages;
      link.barrier.payload_bits = link.rstats.payload_bits;
      link.barrier.phase_bits = link.rstats.phase_bits;
      link.charge_log.clear();
    }
  }
}

// ---- sessions (driving threads, one per session) ----------------------------

void SharedServicer::throw_if_session_failed_locked(const SessionState& ss) const {
  if (ss.error_kind) throw NetError(*ss.error_kind, ss.error_what);
}

bool SharedServicer::session_drained_locked(const Shard& sh,
                                            const SessionState& ss) const noexcept {
  for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
    if (sh.links[i] && !sh.links[i]->drained()) return false;
  }
  return true;
}

void SharedServicer::fail_session_locked(Shard& sh, SessionRt& rt, NetErrorKind kind,
                                         std::string what) noexcept {
  SessionState& ss = rt.st;
  if (ss.failed()) return;
  ss.error_kind = kind;
  ss.error_what = std::move(what);
  rt.failed_or_closed.store(true, std::memory_order_release);
  // Retire the session's links so the sweep skips them, their deadlines
  // stop driving the clock, and drained() holds — other sessions and the
  // global finish() never wait on a corpse.
  for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
    if (sh.links[i]) sh.links[i]->active = false;
  }
  if (!ss.driver_released) {
    ss.driver_released = true;
    --sh.live_drivers;
  }
  sh.space_cv.notify_all();
}

void SharedServicer::link_failure(Shard& sh, LinkState& link, NetErrorKind kind,
                                  std::string what) noexcept {
  if (link.session != LinkState::kNoSession) {
    fail_session_locked(sh, sh.sessions[link.session], kind, std::move(what));
  } else {
    record_error(sh, kind, std::move(what));
  }
}

void SharedServicer::drain_session_ring_locked(Shard& sh, std::unique_lock<std::mutex>& lock,
                                               SessionRt& rt) {
  // Order fence between the two charge paths: any ring entries this
  // session's driver pushed must seal before the slow path reads or
  // mutates link state, or the per-link charge order (and hence the frame
  // stream) would depend on timing.
  if (!multi_shard_) return;
  const std::uint64_t target = rt.pushed.load(std::memory_order_relaxed);
  if (rt.consumed.load(std::memory_order_acquire) >= target) return;
  ++sh.driving_waiting;
  while (!sh.error_kind && !rt.st.failed() &&
         rt.consumed.load(std::memory_order_acquire) < target) {
    sh.work_cv.notify_one();
    sh.space_cv.wait_for(lock, std::chrono::seconds(1));
  }
  --sh.driving_waiting;
  if (hub_ != nullptr) hub_->publish_active(sh.index);
}

void SharedServicer::session_barrier_locked(Shard& sh, std::unique_lock<std::mutex>& lock,
                                            SessionState& ss) {
  for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
    seal_open_batch(*sh.links[i]);
  }
  sh.work_cv.notify_one();
  ++sh.driving_waiting;
  while (!sh.error_kind && !ss.failed() && !session_drained_locked(sh, ss)) {
    sh.work_cv.notify_one();
    sh.space_cv.wait_for(lock, std::chrono::seconds(1));
  }
  --sh.driving_waiting;
  if (hub_ != nullptr) hub_->publish_active(sh.index);
  throw_if_error_locked(sh);
  throw_if_session_failed_locked(ss);
  if (ss.crash_tolerance) {
    // The checkpoint instant, scoped to this session: its queues, windows
    // and out-buffers are drained end to end, so each of its links' state
    // is fully captured by this snapshot, and its charge logs restart
    // empty. Other sessions' pipelines are none of our business.
    for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
      LinkState& link = *sh.links[i];
      link.barrier.next_seq = link.next_seq;
      link.barrier.next_expected = link.rcv.next_expected();
      link.barrier.frames = link.rstats.frames;
      link.barrier.messages = link.rstats.messages;
      link.barrier.payload_bits = link.rstats.payload_bits;
      link.barrier.phase_bits = link.rstats.phase_bits;
      link.charge_log.clear();
    }
  }
}

void SharedServicer::refresh_session_checkpoints_locked(Shard& sh, SessionState& ss) {
  for (std::size_t j = 0; j < ss.k; ++j) {
    PlayerCheckpoint ck;
    ck.player = static_cast<std::uint32_t>(j);
    ck.seed = ss.seed;
    ck.phase = ss.last_phase;
    ck.up = sh.links[ss.link_base + j]->barrier;
    ck.down = sh.links[ss.link_base + ss.k + j]->barrier;
    ss.ckpts.put(static_cast<std::uint32_t>(j), encode_checkpoint(ck));
  }
}

void SharedServicer::maybe_crash_locked(Shard& sh, SessionRt& rt, std::size_t player,
                                        std::uint64_t phase) {
  SessionState& ss = rt.st;
  auto& counts = ss.charge_counts[player];
  if (counts.size() <= phase) counts.resize(static_cast<std::size_t>(phase) + 1, 0);
  const std::uint64_t count = counts[static_cast<std::size_t>(phase)]++;
  const std::optional<std::uint64_t> off =
      crash_offset(ss.faults, static_cast<std::uint32_t>(player), phase, ss.id);
  if (!off || *off != count) return;
  // The process dies between two charges — never mid-frame. The servicer
  // fences the corpse's lanes and announces the death...
  const std::size_t up = ss.link_base + player;
  const std::size_t down = ss.link_base + ss.k + player;
  crash_player_locked(sh, up, down, static_cast<std::uint32_t>(player), phase);
  ++ss.crashes;
  if (ss.faults.crash_resurrect) {
    // ...and the respawn recovers from the *stored bytes* of the last
    // barrier checkpoint — the serialized form is load-bearing, exactly as
    // it would be for a real process reading its checkpoint off disk.
    const std::vector<std::uint8_t>& bytes = ss.ckpts.bytes(static_cast<std::uint32_t>(player));
    recover_player_locked(sh, up, down, decode_checkpoint(bytes), bytes, &ss);
  }
}

void SharedServicer::wake_shard(Shard& sh) {
  // Producer half of the park protocol: the fence orders our ring push
  // against the parked load; either we see parked (and deliver a locked
  // notify the poller cannot miss) or the poller's post-park ring re-check
  // sees our push.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sh.parked.load(std::memory_order_relaxed)) {
    const std::lock_guard lk(sh.mu);
    sh.work_cv.notify_one();
  }
}

void SharedServicer::session_charge(std::size_t session, std::size_t player, bool upstream,
                                    std::uint64_t bits, std::uint64_t phase) {
  const std::size_t shard_idx = session % num_shards_;
  const std::size_t local = session / num_shards_;
  Shard& sh = *shards_[shard_idx];
  if (multi_shard_) {
    // Lock-free fast path: same phase, healthy session, queue below the
    // cap — push the charge onto the shard's ring and return without ever
    // touching the mutex. `last_phase` and `closed` are driver-owned
    // (written only by this thread's slow-path calls), so reading them
    // unlocked is race-free; everything else is atomic.
    SessionRt* rt = sh.lookup(local);
    if (rt != nullptr && rt->fast_eligible && player < rt->st.k &&
        phase == rt->st.last_phase && !sh.has_error.load(std::memory_order_relaxed) &&
        !rt->failed_or_closed.load(std::memory_order_acquire)) {
      const std::size_t off = upstream ? player : rt->st.k + player;
      if (rt->depth[off].load(std::memory_order_relaxed) <= opts_.arq.pending_cap &&
          sh.charges.try_push(ChargeCmd{static_cast<std::uint32_t>(local),
                                        static_cast<std::uint32_t>(player), upstream, bits,
                                        phase})) {
        rt->pushed.fetch_add(1, std::memory_order_relaxed);
        wake_shard(sh);
        return;
      }
    }
  }
  std::unique_lock lock(sh.mu);
  SessionRt& rt = sh.sessions[local];
  drain_session_ring_locked(sh, lock, rt);
  SessionState& ss = rt.st;
  throw_if_error_locked(sh);
  throw_if_session_failed_locked(ss);
  if (ss.closed) {
    throw NetError(NetErrorKind::kClosed, "charge after the session closed");
  }
  if (player >= ss.k) {
    throw NetError(NetErrorKind::kProtocol, "charge names a player outside [0, k)");
  }
  // Phase barrier: the session's pipeline drains completely before the
  // first charge of a new phase, so frames never mix phases and the
  // executed run keeps the round structure the Transcript records.
  if (phase != ss.last_phase) {
    session_barrier_locked(sh, lock, ss);
    ss.last_phase = phase;
    if (ss.crash_tolerance) refresh_session_checkpoints_locked(sh, ss);
  }
  if (ss.crash_tolerance && ss.faults.has_crashes()) maybe_crash_locked(sh, rt, player, phase);
  LinkState& link = *sh.links[ss.link_base + (upstream ? player : ss.k + player)];
  const std::size_t sealed_before = link.queue.size();
  if (link.log_charges) link.charge_log.push_back({phase, bits});
  seal_charge(link, phase, bits);
  if (link.queue.size() != sealed_before) sh.work_cv.notify_one();
  wait_for_space(sh, lock, link);
}

void SharedServicer::session_flush(std::size_t session) {
  Shard& sh = *shards_[session % num_shards_];
  std::unique_lock lock(sh.mu);
  SessionRt& rt = sh.sessions[session / num_shards_];
  drain_session_ring_locked(sh, lock, rt);
  SessionState& ss = rt.st;
  throw_if_error_locked(sh);
  throw_if_session_failed_locked(ss);
  if (ss.closed) return;
  session_barrier_locked(sh, lock, ss);
  if (ss.crash_tolerance) refresh_session_checkpoints_locked(sh, ss);
}

WireStats SharedServicer::close_session(std::size_t session) {
  Shard& sh = *shards_[session % num_shards_];
  std::unique_lock lock(sh.mu);
  SessionRt& rt = sh.sessions[session / num_shards_];
  SessionState& ss = rt.st;
  if (ss.closed) return ss.result;
  drain_session_ring_locked(sh, lock, rt);
  // Best-effort drain: a healthy session flushes end to end so its fold is
  // complete; a failed one skips straight to folding what crossed the wire.
  if (!ss.failed() && !sh.error_kind) {
    for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
      seal_open_batch(*sh.links[i]);
    }
    ++sh.driving_waiting;
    while (!sh.error_kind && !ss.failed() && !session_drained_locked(sh, ss)) {
      sh.work_cv.notify_one();
      sh.space_cv.wait_for(lock, std::chrono::seconds(1));
    }
    --sh.driving_waiting;
    if (hub_ != nullptr) hub_->publish_active(sh.index);
  }

  WireStats w;
  w.up_bits.resize(ss.k);
  w.down_bits.resize(ss.k);
  w.up_msgs.resize(ss.k);
  w.down_msgs.resize(ss.k);
  const auto fold = [&](const LinkState& link, std::uint64_t& bits_slot,
                        std::uint64_t& msgs_slot) {
    const ReceiverStats& r = link.rstats;
    const SenderStats& s = link.sstats;
    bits_slot += r.payload_bits;
    msgs_slot += r.messages;
    if (w.phase_bits.size() < r.phase_bits.size()) w.phase_bits.resize(r.phase_bits.size());
    for (std::size_t ph = 0; ph < r.phase_bits.size(); ++ph) w.phase_bits[ph] += r.phase_bits[ph];
    w.frames_delivered += r.frames;
    w.wire_bytes += s.wire_bytes;
    w.retransmissions += s.retransmissions;
    w.duplicates += r.duplicates + s.duplicates_sent;
    w.corrupt_frames += r.corrupt + link.data_parser.corrupt_frames();
    w.acks += s.acks_received;
    w.player_down_frames += r.player_down_frames;
    w.resume_frames += r.resume_frames;
  };
  for (std::size_t j = 0; j < ss.k; ++j) {
    fold(*sh.links[ss.link_base + j], w.up_bits[j], w.up_msgs[j]);
    fold(*sh.links[ss.link_base + ss.k + j], w.down_bits[j], w.down_msgs[j]);
  }
  w.virtual_time_us = sh.vnow_us;
  w.crashes = ss.crashes;
  w.replayed_charges = ss.replayed;

  ss.result = std::move(w);
  ss.closed = true;
  rt.failed_or_closed.store(true, std::memory_order_release);
  if (!ss.driver_released) {
    ss.driver_released = true;
    --sh.live_drivers;
  }
  // Reclaim the session's link state — the rings, windows and scratch
  // buffers are the servicer's dominant per-session footprint, and the
  // stats they carried were just folded into ss.result. The slots go on
  // the free list so the next session of the same width reuses them.
  for (std::size_t i = ss.link_base; i < ss.link_base + 2 * ss.k; ++i) {
    sh.links[i]->active = false;
    sh.links[i]->link->close();
    sh.links[i].reset();
  }
  sh.free_link_blocks.emplace_back(ss.link_base, 2 * ss.k);
  sh.work_cv.notify_one();
  sh.space_cv.notify_all();
  return ss.result;
}

void SharedServicer::rethrow_session_error(std::size_t session) const {
  const Shard& sh = *shards_[session % num_shards_];
  const std::lock_guard lock(sh.mu);
  throw_if_session_failed_locked(sh.sessions[session / num_shards_].st);
}

const std::vector<std::uint8_t>& SharedServicer::session_checkpoint_bytes(
    std::size_t session, std::size_t player) const {
  const Shard& sh = *shards_[session % num_shards_];
  const std::lock_guard lock(sh.mu);
  return sh.sessions[session / num_shards_].st.ckpts.bytes(static_cast<std::uint32_t>(player));
}

LinkCheckpoint SharedServicer::barrier_checkpoint(std::size_t link_index) const {
  const Shard& sh = *shards_[0];
  const std::lock_guard lock(sh.mu);
  return sh.links[link_index]->barrier;
}

std::uint64_t SharedServicer::replayed_charges() const {
  std::uint64_t n = 0;
  for (const auto& shp : shards_) {
    const std::lock_guard lock(shp->mu);
    n += shp->replayed;
  }
  return n;
}

void SharedServicer::append_control_frame(LinkState& link, const Frame& f) {
  serialize_frame_into(f, link.wire_scratch);
  link.out_data.insert(link.out_data.end(), link.wire_scratch.begin(), link.wire_scratch.end());
  link.sstats.wire_bytes += link.wire_scratch.size();
}

void SharedServicer::crash_player(std::size_t up_index, std::size_t down_index,
                                  std::uint32_t player, std::uint64_t phase) {
  Shard& sh = *shards_[0];
  const std::lock_guard lock(sh.mu);
  if (!opts_.crash_tolerance && sh.links[up_index]->session == LinkState::kNoSession) {
    throw NetError(NetErrorKind::kSetup, "crash_player without Options::crash_tolerance");
  }
  crash_player_locked(sh, up_index, down_index, player, phase);
}

void SharedServicer::crash_player_locked(Shard& sh, std::size_t up_index,
                                         std::size_t down_index, std::uint32_t player,
                                         std::uint64_t phase) {
  LinkState& up = *sh.links[up_index];
  LinkState& down = *sh.links[down_index];
  up.src_down = true;    // the corpse sends nothing new and reads no acks
  down.dst_down = true;  // ...and consumes nothing from its data pipe
  const std::uint64_t deadline =
      now_us(sh) + static_cast<std::uint64_t>(opts_.retry.down_timeout.count());
  up.down_deadline_us = deadline;
  down.down_deadline_us = deadline;
  // Fence: acks the dead incarnation already emitted carry the old epoch;
  // the down-link sender drops them, because they acknowledge deliveries the
  // rewound receiver will no longer remember. The up link stays unfenced —
  // the coordinator's receiver is never rolled back, so its acks stay
  // truthful and correctly retire replayed entries.
  ++down.epoch;
  append_control_frame(
      down, make_player_down_frame(down.src, down.dst, down.ctrl_seq++, player, phase));
  sh.work_cv.notify_one();
}

void SharedServicer::restore_sender(LinkState& link, const LinkCheckpoint& ck) {
  // Replay aliasing guard: if the run sealed so many frames since the
  // barrier that replayed sequence numbers would fall into the receiver's
  // old-duplicate band, the rewound stream is ambiguous — refuse rather
  // than silently mis-deliver. (2^15 - window frames per link per phase
  // under the default modulus; a phase that big should raise max_batch
  // caps, not the modulus.)
  const std::uint32_t mod = opts_.arq.seq_modulus;
  const std::uint32_t since = seq_dist(ck.next_seq, link.next_seq, mod);
  if (since >= mod / 2 - opts_.arq.window) {
    throw NetError(NetErrorKind::kProtocol,
                   "too many frames since the last checkpoint to replay unambiguously");
  }
  link.open_batch.clear();
  link.open_batch_bits = 0;
  link.queue.clear();
  note_depth(link);
  link.window.reset(ck.next_seq);
  link.next_seq = ck.next_seq;
  // out_data survives deliberately: whole frames the dead incarnation
  // already handed to the transport ("bytes in the NIC") still arrive, and
  // the receiver's window deduplicates them against the replay.
}

void SharedServicer::restore_receiver(LinkState& link, const LinkCheckpoint& ck) {
  link.rcv.reset(ck.next_expected);
  // Roll the accounting tallies back to the barrier; the replay re-delivers
  // (and re-tallies) everything since. Wire-level counters (bytes_read,
  // duplicates, corrupt) stay monotonic — they describe the physical
  // channel, not the recovered state.
  link.rstats.frames = ck.frames;
  link.rstats.messages = ck.messages;
  link.rstats.payload_bits = ck.payload_bits;
  link.rstats.phase_bits = ck.phase_bits;
}

void SharedServicer::recover_player(std::size_t up_index, std::size_t down_index,
                                    const PlayerCheckpoint& ck,
                                    std::span<const std::uint8_t> checkpoint_bytes) {
  Shard& sh = *shards_[0];
  const std::lock_guard lock(sh.mu);
  throw_if_error_locked(sh);
  recover_player_locked(sh, up_index, down_index, ck, checkpoint_bytes, nullptr);
}

void SharedServicer::recover_player_locked(Shard& sh, std::size_t up_index,
                                           std::size_t down_index, const PlayerCheckpoint& ck,
                                           std::span<const std::uint8_t> checkpoint_bytes,
                                           SessionState* ss) {
  LinkState& up = *sh.links[up_index];
  LinkState& down = *sh.links[down_index];
  restore_sender(up, ck.up);      // the player's outbound lane rewinds...
  restore_sender(down, ck.down);  // ...and the coordinator rewinds its lane to match
  restore_receiver(down, ck.down);
  up.src_down = false;
  down.dst_down = false;
  up.down_deadline_us = 0;
  down.down_deadline_us = 0;
  append_control_frame(up, make_resume_frame(up.src, up.dst, up.ctrl_seq++, checkpoint_bytes));
  // Deterministic replay: re-seal the logged charges through the same
  // coalescing path that sealed them the first time. The logs are NOT
  // re-appended (seal_charge never touches them) and NOT cleared — a second
  // death in the same phase replays the same, still-growing log.
  sh.replayed += up.charge_log.size() + down.charge_log.size();
  if (ss != nullptr) ss->replayed += up.charge_log.size() + down.charge_log.size();
  for (const ChargeRec& rec : up.charge_log) seal_charge(up, rec.phase, rec.bits);
  for (const ChargeRec& rec : down.charge_log) seal_charge(down, rec.phase, rec.bits);
  sh.work_cv.notify_one();
}

void SharedServicer::finish() noexcept {
  if (finished_) return;
  try {
    flush();
  } catch (...) {
    // The failure is recorded; rethrow_error() surfaces it after stats fold.
  }
  for (auto& shp : shards_) {
    {
      const std::lock_guard lock(shp->mu);
      shp->stop.store(true, std::memory_order_relaxed);
    }
    shp->work_cv.notify_all();
  }
  for (auto& shp : shards_) {
    if (shp->thread.joinable()) shp->thread.join();
  }
  for (auto& shp : shards_) {
    for (auto& link : shp->links) {
      if (!link) continue;  // a closed session's slots; already folded at close
      link->link->close();
      link->folded.sender = link->sstats;
      link->folded.receiver = link->rstats;
      link->folded.receiver.corrupt += link->data_parser.corrupt_frames();
    }
  }
  finished_ = true;
}

const SharedServicer::LinkStats& SharedServicer::stats(std::size_t link_index) const {
  return shards_[0]->links[link_index]->folded;
}

// ---- servicer threads (one per shard) ---------------------------------------

std::size_t SharedServicer::drain_charges(Shard& sh) {
  // The single-consumer side of the fast path: seal ring charges in push
  // order under the shard lock. One driver per session means per-link
  // charge order equals driver program order — the same order the locked
  // path would have produced.
  std::size_t n = 0;
  ChargeCmd cmd;
  while (sh.charges.try_pop(cmd)) {
    ++n;
    SessionRt& rt = sh.sessions[cmd.session];
    SessionState& ss = rt.st;
    if (!ss.failed() && !ss.closed) {
      LinkState& link =
          *sh.links[ss.link_base + (cmd.upstream ? cmd.player : ss.k + cmd.player)];
      if (link.log_charges) link.charge_log.push_back({cmd.phase, cmd.bits});
      seal_charge(link, cmd.phase, cmd.bits);
    }
    // Count even skipped cmds: slow-path fences wait on consumed == pushed.
    rt.consumed.fetch_add(1, std::memory_order_release);
  }
  if (n > 0) sh.space_cv.notify_all();
  return n;
}

void SharedServicer::transmit(LinkState& link, ArqSenderWindow::Entry& entry,
                              std::uint64_t now) {
  const FaultDecision d = link.injector.decide(entry.seq, entry.attempts);
  if (entry.attempts > 0) ++link.sstats.retransmissions;
  entry.deadline_us =
      now + static_cast<std::uint64_t>(opts_.retry.timeout_for(entry.attempts).count());
  ++entry.attempts;
  if (d.delay && !opts_.virtual_clock) {
    // Wire latency: the sweep stalls exactly as a slow link would. Under
    // the virtual clock delays are no-ops (they change no delivery fate).
    std::this_thread::sleep_for(std::chrono::microseconds(link.injector.plan().delay_us));
  }
  if (d.drop) return;
  serialize_frame_into(entry.frame, link.wire_scratch);
  const std::size_t start = link.out_data.size();
  link.out_data.insert(link.out_data.end(), link.wire_scratch.begin(), link.wire_scratch.end());
  link.sstats.wire_bytes += link.wire_scratch.size();
  if (d.bit_flip) {
    // Flip one bit of the body/CRC region in place; the 4-byte length
    // prefix is sacred (the parser's resynchronization anchor).
    const std::uint64_t body_bits = (link.wire_scratch.size() - 4) * std::uint64_t{8};
    const std::uint64_t bit = 32 + d.flip_bit % body_bits;
    link.out_data[start + bit / 8] ^= static_cast<std::uint8_t>(1U << (7 - bit % 8));
  }
  if (d.duplicate) {
    link.out_data.insert(link.out_data.end(), link.wire_scratch.begin(),
                         link.wire_scratch.end());
    link.sstats.wire_bytes += link.wire_scratch.size();
    ++link.sstats.duplicates_sent;
  }
}

void SharedServicer::accept_frame(LinkState& link, const Frame& f) {
  ++link.rstats.frames;
  const auto tally = [&link](std::uint64_t phase, std::uint64_t bits) {
    ++link.rstats.messages;
    link.rstats.payload_bits += bits;
    if (link.rstats.phase_bits.size() <= phase) {
      link.rstats.phase_bits.resize(static_cast<std::size_t>(phase) + 1, 0);
    }
    link.rstats.phase_bits[static_cast<std::size_t>(phase)] += bits;
  };
  if (f.header.type == FrameType::kBatch) {
    if (!decode_batch_frame(f, link.batch_scratch)) {
      throw NetError(NetErrorKind::kProtocol, "verified batch failed to re-decode");
    }
    for (const ChargeRec& rec : link.batch_scratch) tally(rec.phase, rec.bits);
  } else {
    tally(f.header.phase, f.header.payload_bits);
  }
  if (link.deliver) link.deliver(f);
}

void SharedServicer::handle_control_frame(LinkState& link, const Frame& f) {
  // Out of band: no sequence number, no ack, no accounting — just validate
  // and tally, so chaos tests can assert the control plane actually spoke.
  try {
    if (f.header.type == FrameType::kPlayerDown) {
      (void)decode_player_down(f);
      ++link.rstats.player_down_frames;
    } else {
      (void)decode_resume(f);
      ++link.rstats.resume_frames;
    }
  } catch (const NetError&) {
    ++link.rstats.corrupt;
  }
}

void SharedServicer::handle_data_frame(LinkState& link, Frame f) {
  if (f.header.type == FrameType::kAck) return;  // not this pipe's traffic
  if (f.header.type == FrameType::kPlayerDown || f.header.type == FrameType::kResume) {
    handle_control_frame(link, f);
    return;
  }
  if (f.header.src != link.src || f.header.dst != link.dst ||
      f.header.session != link.session_id) {
    ++link.rstats.corrupt;  // CRC-valid but misaddressed (or cross-session): broken peer
    return;
  }
  // Integrity beyond the CRC before the frame can enter the window.
  if (f.header.type == FrameType::kData && !verify_filler_payload(f)) {
    ++link.rstats.corrupt;
    return;
  }
  if (f.header.type == FrameType::kBatch && !decode_batch_frame(f, link.batch_scratch)) {
    ++link.rstats.corrupt;
    return;
  }
  const auto verdict = link.rcv.on_frame(std::move(f));
  switch (verdict) {
    case ArqReceiverWindow::Verdict::kInOrder:
      for (const Frame& run : link.rcv.take_deliverable()) accept_frame(link, run);
      break;
    case ArqReceiverWindow::Verdict::kBuffered:
      break;
    case ArqReceiverWindow::Verdict::kDuplicate:
      ++link.rstats.duplicates;
      break;
    case ArqReceiverWindow::Verdict::kOverrun:
      throw NetError(NetErrorKind::kProtocol,
                     "sender overran its window (seq far ahead of next_expected)");
  }
  // One ack per intact arrival — duplicates included, so a lost ack can
  // never wedge the sender, and the ack count stays a pure function of
  // the fault plan (the virtual-clock determinism contract).
  Frame ack = make_ack_frame(link.dst, link.src, link.rcv.ack(), opts_.arq.seq_modulus);
  // Epoch stamp in the otherwise-unused phase field: 0 on every clean run
  // (byte-identical to the legacy ack), the incarnation fence after a crash.
  ack.header.phase = link.epoch;
  serialize_frame_into(ack, link.wire_scratch);
  link.out_ack.insert(link.out_ack.end(), link.wire_scratch.begin(), link.wire_scratch.end());
}

bool SharedServicer::suppressed_sender(const LinkState& link) const noexcept {
  // A dead sender emits nothing. A sender whose *peer* is declared dead
  // stops only under fail-fast; the legacy discipline keeps retransmitting
  // into the void until the backoff budget burns out as kTimeout.
  return link.src_down || (link.dst_down && opts_.retry.fail_fast_on_down);
}

bool SharedServicer::sweep(Shard& sh, std::uint64_t now) {
  bool progress = false;
  for (auto& lp : sh.links) {
    if (!lp) continue;  // reclaimed slot: its session closed
    LinkState& link = *lp;
    if (!link.active) continue;  // closed or failed session: nothing to move
    // Admit sealed frames into the window and transmit them.
    while (!suppressed_sender(link) && !link.queue.empty() && link.window.has_space()) {
      ArqSenderWindow::Entry& e = link.window.admit(std::move(link.queue.front()));
      link.queue.pop_front();
      transmit(link, e, now);
      progress = true;
    }
    note_depth(link);
    // Flush pending out-bytes (partial writes park here; never blocks).
    if (link.out_data_pos < link.out_data.size()) {
      const std::size_t n = link.link->data->write_some(std::span<const std::uint8_t>(
          link.out_data.data() + link.out_data_pos, link.out_data.size() - link.out_data_pos));
      link.out_data_pos += n;
      progress |= n > 0;
      compact(link.out_data, link.out_data_pos);
    }
    if (link.out_ack_pos < link.out_ack.size()) {
      const std::size_t n = link.link->ack->write_some(std::span<const std::uint8_t>(
          link.out_ack.data() + link.out_ack_pos, link.out_ack.size() - link.out_ack_pos));
      link.out_ack_pos += n;
      progress |= n > 0;
      compact(link.out_ack, link.out_ack_pos);
    }
    // Drain arrivals: data frames into the receiver, acks into the window.
    // A dead receiver (dst_down) reads nothing — the bytes wait in the pipe
    // and in the parser buffer until the player resumes; a dead sender
    // (src_down) likewise processes no acks.
    Frame f;
    if (!link.dst_down) {
      for (;;) {
        const int n = link.link->data->read_some(sh.read_buf, Clock::now());
        if (n <= 0) break;
        link.rstats.bytes_read += static_cast<std::uint64_t>(n);
        link.data_parser.feed(
            std::span<const std::uint8_t>(sh.read_buf.data(), static_cast<std::size_t>(n)));
        progress = true;
      }
      while (link.data_parser.next(f)) {
        progress = true;
        try {
          handle_data_frame(link, std::move(f));
        } catch (const NetError& e) {
          // A protocol violation (window overrun, undecodable verified
          // batch) is contained to the link's session; sessionless links
          // abort the servicer as before.
          link_failure(sh, link, e.kind(), e.what());
          break;
        }
      }
      if (!link.active) continue;  // the failure above retired this link
    }
    if (!link.src_down) {
      for (;;) {
        const int n = link.link->ack->read_some(sh.read_buf, Clock::now());
        if (n <= 0) break;
        link.ack_parser.feed(
            std::span<const std::uint8_t>(sh.read_buf.data(), static_cast<std::size_t>(n)));
        progress = true;
      }
      while (link.ack_parser.next(f)) {
        progress = true;
        if (f.header.type != FrameType::kAck) continue;
        if (f.header.phase != link.epoch) continue;  // a dead incarnation's stale ack
        ++link.sstats.acks_received;
        const std::size_t retired =
            link.window.on_ack(decode_ack_frame(f, opts_.arq.seq_modulus));
        link.sstats.frames_sent += retired;
        if (retired > 0) sh.space_cv.notify_all();
      }
    }
  }
  if (progress) sh.space_cv.notify_all();
  return progress;
}

bool SharedServicer::retransmit_due(Shard& sh, std::uint64_t now) {
  bool any = false;
  for (auto& lp : sh.links) {
    if (!lp) continue;
    LinkState& link = *lp;
    if (!link.active || suppressed_sender(link)) continue;
    link.window.due(now, sh.due_scratch);
    for (ArqSenderWindow::Entry* e : sh.due_scratch) {
      if (e->attempts > opts_.retry.max_retries) {
        link_failure(sh, link, NetErrorKind::kTimeout,
                     "no ack for seq " + std::to_string(e->seq) + " after " +
                         std::to_string(e->attempts) + " attempts");
        any = true;  // the failure acted: drivers woke, the link retired
        break;
      }
      transmit(link, *e, now);
      any = true;
    }
  }
  return any;
}

void SharedServicer::check_down(Shard& sh, std::uint64_t now) {
  // The fail-fast discipline only: a declared death that nobody resumed
  // within down_timeout is a typed session failure. Under the legacy
  // discipline the deadline is ignored and the dead link degrades to
  // kTimeout through the ordinary backoff budget.
  if (!opts_.retry.fail_fast_on_down) return;
  for (const auto& lp : sh.links) {
    if (!lp) continue;
    LinkState& link = *lp;
    if (!link.active) continue;
    if (link.down_deadline_us != 0 && now >= link.down_deadline_us) {
      link_failure(sh, link, NetErrorKind::kPlayerDown,
                   "player on link " + std::to_string(link.link_id) +
                       " declared down and did not resume within down_timeout");
    }
  }
}

bool SharedServicer::earliest_deadline(const Shard& sh, std::uint64_t& out) const noexcept {
  // The earliest *actionable* deadline: suppressed windows never act
  // (jumping to them would spin), and down deadlines only qualify when
  // check_down will actually throw at them.
  std::uint64_t earliest = 0;
  bool found = false;
  const auto consider = [&](std::uint64_t d) {
    if (!found || d < earliest) earliest = d;
    found = true;
  };
  for (const auto& link : sh.links) {
    if (!link || !link->active) continue;
    if (!suppressed_sender(*link)) {
      std::uint64_t d = 0;
      if (link->window.next_deadline(d)) consider(d);
    }
    if (opts_.retry.fail_fast_on_down && link->down_deadline_us != 0) {
      consider(link->down_deadline_us);
    }
  }
  out = earliest;
  return found;
}

bool SharedServicer::advance_virtual_clock(Shard& sh) {
  // Quiescence: every readable byte has been consumed, so ack knowledge is
  // complete and any still-unacked entry truly needs another attempt. Jump
  // logical time to the earliest actionable deadline and fire.
  std::uint64_t earliest = 0;
  if (!earliest_deadline(sh, earliest)) return false;
  sh.vnow_us = std::max(sh.vnow_us, earliest);
  retransmit_due(sh, sh.vnow_us);
  check_down(sh, sh.vnow_us);  // fails the owning session if the jump landed on a down deadline
  return true;                 // a jump always acted: a retransmit fired or a failure recorded
}

void SharedServicer::park_and_wait(Shard& sh, std::unique_lock<std::mutex>& lock,
                                   std::chrono::microseconds dur) {
  // Adaptive spin-then-park: poll the charge ring lock-free for a moment —
  // the overwhelmingly common service-plane wakeup — before paying for a
  // real park. Producers that find `parked` set take the mutex to notify,
  // so the wakeup can never be lost; the seq_cst store/fence pair closes
  // the push-vs-park race in the other direction.
  lock.unlock();
  bool work = false;
  for (int i = 0; i < 256; ++i) {
    if (!sh.charges.approx_empty() || sh.stop.load(std::memory_order_relaxed)) {
      work = true;
      break;
    }
    cpu_pause();
  }
  lock.lock();
  if (work) return;
  sh.parked.store(true, std::memory_order_seq_cst);
  if (!sh.charges.approx_empty()) {
    sh.parked.store(false, std::memory_order_relaxed);
    return;
  }
  sh.work_cv.wait_for(lock, dur);
  sh.parked.store(false, std::memory_order_relaxed);
}

void SharedServicer::run(Shard& sh) noexcept {
  std::unique_lock lock(sh.mu);
  // Whether this shard currently holds an idle slot at the hub; used to
  // withdraw it the moment local work reappears.
  bool idle_published = false;
  try {
    for (;;) {
      if (hub_ != nullptr) {
        // Another shard may have advanced the global clock while we slept;
        // act on the new time before anything else so our retransmits fire
        // at the same logical instant as everyone else's.
        const std::uint64_t t = hub_->now();
        if (t > sh.vnow_us) {
          sh.vnow_us = t;
          idle_published = false;  // the advance cleared every hub slot
          retransmit_due(sh, t);
          check_down(sh, t);
          if (sh.error_kind) break;
        }
      }
      bool progress = multi_shard_ && drain_charges(sh) > 0;
      const std::uint64_t now = now_us(sh);
      if (sweep(sh, now)) progress = true;
      if (sh.error_kind) break;
      if (!opts_.virtual_clock) {
        progress |= retransmit_due(sh, now);
        check_down(sh, now);
        if (sh.error_kind) break;
      }
      if (progress) {
        if (idle_published) {
          hub_->publish_active(sh.index);
          idle_published = false;
        }
        continue;
      }
      if (sh.stop.load(std::memory_order_relaxed) && all_drained(sh)) break;
      if (opts_.virtual_clock) {
        if (hub_ == nullptr) {
          // Single shard: the legacy quiescence rule, bit for bit. Every
          // live session's driver must be blocked (driving_waiting >=
          // live_drivers): a driver still computing may yet enqueue work or
          // acks that change retransmission fates, so jumping early would
          // make the clock scheduling-dependent.
          if (((sh.driving_waiting > 0 && sh.driving_waiting >= sh.live_drivers) ||
               sh.stop.load(std::memory_order_relaxed)) &&
              advance_virtual_clock(sh)) {
            continue;
          }
          sh.space_cv.notify_all();
          sh.work_cv.wait(lock);
          if (sh.stop.load(std::memory_order_relaxed) && all_drained(sh)) break;
        } else {
          // Sharded quiescence: locally idle means drivers blocked (or none
          // live — an empty shard must not hold up its siblings) and the
          // ring drained. Publish to the hub; whichever shard publishes the
          // last missing slot performs the global jump and pokes the rest.
          const bool quiescent =
              sh.charges.approx_empty() &&
              (sh.stop.load(std::memory_order_relaxed) || sh.live_drivers == 0 ||
               (sh.driving_waiting > 0 && sh.driving_waiting >= sh.live_drivers));
          if (quiescent) {
            // Publish every quiescent lap (idempotent): an advance or a
            // driver's publish_active clears our hub slot behind our back,
            // and skipping the re-publish would wedge the barrier.
            std::uint64_t dl = 0;
            const bool has_dl = earliest_deadline(sh, dl);
            if (hub_->publish_idle(sh.index, has_dl, dl)) {
              idle_published = false;
              sh.vnow_us = std::max(sh.vnow_us, hub_->now());
              retransmit_due(sh, sh.vnow_us);
              check_down(sh, sh.vnow_us);
              if (sh.error_kind) break;
              continue;
            }
            idle_published = true;
          }
          sh.space_cv.notify_all();
          // The hub notifies our condvar without holding our mutex, so this
          // wait must be bounded: a lost cross-shard wakeup costs one lap
          // of the timeout, never a hang (and never a count).
          park_and_wait(sh, lock, std::chrono::microseconds(200));
        }
      } else {
        sh.space_cv.notify_all();
        auto wake = Clock::now() + std::chrono::milliseconds(200);
        std::uint64_t d = 0;
        if (earliest_deadline(sh, d)) {
          wake = std::min(wake, epoch_ + std::chrono::microseconds(d));
        }
        if (opts_.timed_recheck && anything_unacked(sh)) {
          // Kernel-buffered transport: bytes may become readable without
          // any condvar signal; recheck soon.
          wake = std::min(wake, Clock::now() + std::chrono::microseconds(500));
        }
        if (multi_shard_) {
          sh.parked.store(true, std::memory_order_seq_cst);
          if (!sh.charges.approx_empty()) {
            sh.parked.store(false, std::memory_order_relaxed);
            continue;
          }
        }
        sh.work_cv.wait_until(lock, wake);
        if (multi_shard_) sh.parked.store(false, std::memory_order_relaxed);
      }
    }
  } catch (const NetError& e) {
    record_error(sh, e.kind(), e.what());
  } catch (const std::exception& e) {
    record_error(sh, NetErrorKind::kProtocol, e.what());
  }
  if (hub_ != nullptr) hub_->publish_exit(sh.index);
  sh.space_cv.notify_all();
}

}  // namespace tft::net
