#include "net/reliable.h"

#include <algorithm>
#include <thread>

#include "net/error.h"

namespace tft::net {

std::chrono::microseconds RetryPolicy::timeout_for(std::uint32_t attempt) const noexcept {
  const double cap = static_cast<double>(max_timeout.count());
  double us = static_cast<double>(base_timeout.count());
  // Exit once the value saturates (at the cap growing, below 1us shrinking,
  // fixed at backoff == 1): huge attempt counts neither overflow the double
  // nor loop 2^32 times.
  for (std::uint32_t i = 0; i < attempt; ++i) {
    if (backoff == 1.0 || (backoff > 1.0 && us >= cap) || (backoff < 1.0 && us < 1.0)) break;
    us *= backoff;
  }
  const double capped = std::min(us, cap);
  return std::chrono::microseconds(static_cast<std::int64_t>(capped));
}

bool ReliableSender::await_ack(std::uint32_t seq, Clock::time_point deadline) {
  for (;;) {
    // Drain anything already parsed (a late ack from a previous attempt of
    // this very frame counts — recovery via delayed delivery).
    Frame ack;
    while (ack_parser_.next(ack)) {
      if (ack.header.type != FrameType::kAck) continue;
      ++stats_.acks_received;
      if (ack.header.seq == seq) return true;
      // Stale ack for an already-completed frame: ignore.
    }
    const int n = link_.ack->read_some(ack_buf_, deadline);
    if (n < 0) throw NetError(NetErrorKind::kClosed, "ack stream closed");
    if (n == 0) return false;  // attempt deadline passed
    ack_parser_.feed(std::span<const std::uint8_t>(ack_buf_.data(), static_cast<std::size_t>(n)));
  }
}

void ReliableSender::send(Frame f) {
  f.header.seq = next_seq_++;
  const std::vector<std::uint8_t> wire = serialize_frame(f);

  for (std::uint32_t attempt = 0;; ++attempt) {
    const FaultDecision d = injector_.decide(f.header.seq, attempt);
    if (d.delay) {
      std::this_thread::sleep_for(std::chrono::microseconds(injector_.plan().delay_us));
    }
    const auto deadline = Clock::now() + policy_.timeout_for(attempt);
    if (!d.drop) {
      std::vector<std::uint8_t> bytes = wire;
      if (d.bit_flip) {
        // Flip one bit of the body/CRC region; the 4-byte length prefix is
        // sacred (it is the parser's resynchronization anchor).
        const std::uint64_t body_bits = (bytes.size() - 4) * std::uint64_t{8};
        const std::uint64_t bit = 32 + d.flip_bit % body_bits;
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1U << (7 - bit % 8));
      }
      link_.data->write(bytes, deadline);
      stats_.wire_bytes += bytes.size();
      if (d.duplicate) {
        link_.data->write(wire, deadline);
        stats_.wire_bytes += wire.size();
        ++stats_.duplicates_sent;
      }
    }
    if (await_ack(f.header.seq, deadline)) {
      ++stats_.frames_sent;
      return;
    }
    if (attempt >= policy_.max_retries) {
      throw NetError(NetErrorKind::kTimeout,
                     "no ack for seq " + std::to_string(f.header.seq) + " after " +
                         std::to_string(attempt + 1) + " attempts");
    }
    ++stats_.retransmissions;
  }
}

void LinkServicer::send_ack(std::uint32_t seq) {
  Frame ack;
  ack.header.type = FrameType::kAck;
  ack.header.src = dst_;  // the ack travels the reverse direction
  ack.header.dst = src_;
  ack.header.seq = seq;
  const std::vector<std::uint8_t> bytes = serialize_frame(ack);
  link_.ack->write(bytes, Clock::now() + std::chrono::seconds(5));
}

void LinkServicer::accept(const Frame& f) {
  stats_.payload_bits += f.header.payload_bits;
  ++stats_.frames;
  ++stats_.messages;  // stop-and-wait never coalesces: one charge per frame
  if (stats_.phase_bits.size() <= f.header.phase) {
    stats_.phase_bits.resize(static_cast<std::size_t>(f.header.phase) + 1, 0);
  }
  stats_.phase_bits[static_cast<std::size_t>(f.header.phase)] += f.header.payload_bits;
}

void LinkServicer::run() noexcept {
  std::vector<std::uint8_t> buf(4096);
  FrameParser parser;
  try {
    for (;;) {
      const int n = link_.data->read_some(buf, Clock::now() + std::chrono::milliseconds(200));
      if (n < 0) break;  // closed and drained
      if (n == 0) continue;
      stats_.bytes_read += static_cast<std::uint64_t>(n);
      parser.feed(std::span<const std::uint8_t>(buf.data(), static_cast<std::size_t>(n)));
      Frame f;
      while (parser.next(f)) {
        if (f.header.type == FrameType::kAck) continue;  // not ours
        if (f.header.src != src_ || f.header.dst != dst_) {
          ++stats_.corrupt;  // CRC-valid but misaddressed: broken peer
          continue;
        }
        if (f.header.seq < next_expected_) {
          // Retransmit of an already-accepted frame (our ack was lost or
          // late): discard, but re-ack so the sender can move on.
          ++stats_.duplicates;
          send_ack(f.header.seq);
          continue;
        }
        if (f.header.seq > next_expected_) {
          // Stop-and-wait cannot legally skip ahead.
          throw NetError(NetErrorKind::kProtocol,
                         "future seq " + std::to_string(f.header.seq) + " (expected " +
                             std::to_string(next_expected_) + ")");
        }
        if (f.header.type == FrameType::kData && !verify_filler_payload(f)) {
          ++stats_.corrupt;  // defense in depth behind the CRC
          continue;
        }
        accept(f);
        next_expected_ = f.header.seq + 1;
        // Ack first, then deliver: the sender is released while a relay
        // hook forwards, and a retransmit racing the hook is seq-deduped.
        send_ack(f.header.seq);
        if (deliver_) deliver_(f);
      }
    }
  } catch (const std::exception& e) {
    error_ = e.what();
    link_.close();  // unblock the peer; it sees a typed kClosed/kTimeout
  }
  stats_.corrupt += parser.corrupt_frames();
}

}  // namespace tft::net
