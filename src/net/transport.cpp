#include "net/transport.h"

#include <algorithm>
#include <cstring>

#include "net/error.h"

namespace tft::net {

ByteRing::ByteRing(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

void ByteRing::write(std::span<const std::uint8_t> bytes, Clock::time_point deadline) {
  std::unique_lock lock(mu_);
  while (!bytes.empty()) {
    if (!writable_.wait_until(lock, deadline, [&] { return closed_ || size_ < ring_.size(); })) {
      throw NetError(NetErrorKind::kTimeout, "pipe write: buffer full past deadline");
    }
    if (closed_) {
      throw NetError(NetErrorKind::kClosed, "pipe write: closed");
    }
    const std::size_t tail = (head_ + size_) % ring_.size();
    const std::size_t room = ring_.size() - size_;
    const std::size_t contiguous = std::min(room, ring_.size() - tail);
    const std::size_t take = std::min(bytes.size(), contiguous);
    std::memcpy(ring_.data() + tail, bytes.data(), take);
    size_ += take;
    bytes = bytes.subspan(take);
    readable_.notify_one();
  }
}

int ByteRing::read_some(std::span<std::uint8_t> buf, Clock::time_point deadline) {
  if (buf.empty()) return 0;
  std::unique_lock lock(mu_);
  // Poll fast path: an expired deadline must not reach the timed wait — a
  // futex wait with a past abstime still costs near a timer tick, and the
  // shared servicer polls every pipe once per sweep.
  if (size_ == 0 && !closed_ && Clock::now() < deadline) {
    readable_.wait_until(lock, deadline, [&] { return closed_ || size_ > 0; });
  }
  if (size_ == 0) {
    return closed_ ? -1 : 0;  // drained-and-closed vs deadline tick
  }
  const std::size_t contiguous = std::min(size_, ring_.size() - head_);
  const std::size_t take = std::min(buf.size(), contiguous);
  std::memcpy(buf.data(), ring_.data() + head_, take);
  head_ = (head_ + take) % ring_.size();
  size_ -= take;
  writable_.notify_one();
  return static_cast<int>(take);
}

std::size_t ByteRing::write_some(std::span<const std::uint8_t> bytes) {
  const std::lock_guard lock(mu_);
  if (closed_) {
    throw NetError(NetErrorKind::kClosed, "pipe write: closed");
  }
  std::size_t written = 0;
  while (!bytes.empty() && size_ < ring_.size()) {
    const std::size_t tail = (head_ + size_) % ring_.size();
    const std::size_t room = ring_.size() - size_;
    const std::size_t contiguous = std::min(room, ring_.size() - tail);
    const std::size_t take = std::min(bytes.size(), contiguous);
    std::memcpy(ring_.data() + tail, bytes.data(), take);
    size_ += take;
    written += take;
    bytes = bytes.subspan(take);
  }
  if (written > 0) readable_.notify_one();
  return written;
}

void ByteRing::close() {
  {
    const std::lock_guard lock(mu_);
    closed_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

Link InProcTransport::make_link() {
  Link link;
  link.data = std::make_unique<ByteRing>(ring_capacity_);
  link.ack = std::make_unique<ByteRing>(ring_capacity_);
  return link;
}

}  // namespace tft::net
