#include "net/arq.h"

#include <algorithm>

#include "comm/wire.h"
#include "net/error.h"
#include "util/rng.h"

namespace tft::net {

namespace {

/// Per-message filler inside a batch: same construction as the kData
/// filler, with the message index folded into the seed so two same-sized
/// charges in one frame carry different bits, and the session id folded in
/// (identity for session 0) so concurrent sessions never share a stream.
std::uint64_t batch_filler_seed(const FrameHeader& h, std::uint64_t index,
                                std::uint64_t bits) noexcept {
  return fold_session(mix_hash((std::uint64_t{h.src} << 32) | h.dst,
                               (std::uint64_t{h.seq} << 32) | index, bits),
                      h.session);
}

void append_filler(BitWriter& w, std::uint64_t seed, std::uint64_t bits) {
  std::uint64_t state = seed;
  while (bits > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(std::min<std::uint64_t>(bits, 64));
    w.put_bits(splitmix64(state) >> (64 - take), take);
    bits -= take;
  }
}

[[nodiscard]] bool check_filler(BitReader& r, std::uint64_t seed, std::uint64_t bits) {
  std::uint64_t state = seed;
  while (bits > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(std::min<std::uint64_t>(bits, 64));
    if (r.get_bits(take) != splitmix64(state) >> (64 - take)) return false;
    bits -= take;
  }
  return true;
}

}  // namespace

void ArqPolicy::validate() const {
  if (window == 0) {
    throw NetError(NetErrorKind::kSetup, "ArqPolicy: window must be positive");
  }
  if (seq_modulus < 2 * window) {
    throw NetError(NetErrorKind::kSetup,
                   "ArqPolicy: need 2*window <= seq_modulus so old duplicates and "
                   "new frames cannot alias");
  }
  if (coalesce && (max_batch_msgs == 0 || max_batch_bits == 0)) {
    throw NetError(NetErrorKind::kSetup, "ArqPolicy: empty batch limits");
  }
  if (pending_cap == 0) {
    throw NetError(NetErrorKind::kSetup, "ArqPolicy: pending_cap must be positive");
  }
}

Frame make_ack_frame(std::uint32_t src, std::uint32_t dst, const AckInfo& info,
                     std::uint32_t seq_modulus) {
  Frame ack;
  ack.header.type = FrameType::kAck;
  ack.header.src = src;
  ack.header.dst = dst;
  ack.header.seq = info.cumulative;
  if (!info.sacks.empty()) {
    BitWriter w;
    w.put_gamma(info.sacks.size());
    const std::uint32_t from = (info.cumulative + 1) % seq_modulus;
    for (const std::uint32_t s : info.sacks) {
      w.put_gamma(seq_dist(from, s, seq_modulus));
    }
    ack.header.payload_bits = w.bit_size();
    ack.payload = w.bytes();
  }
  return ack;
}

AckInfo decode_ack_frame(const Frame& f, std::uint32_t seq_modulus) {
  AckInfo info;
  info.cumulative = f.header.seq;
  if (f.header.payload_bits == 0) return info;
  try {
    BitReader r(f.payload, f.header.payload_bits);
    const std::uint64_t count = r.get_gamma();
    if (count > seq_modulus) {
      throw NetError(NetErrorKind::kCorrupt, "ack names more sacks than sequence numbers");
    }
    info.sacks.reserve(static_cast<std::size_t>(count));
    const std::uint32_t from = (info.cumulative + 1) % seq_modulus;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t dist = r.get_gamma();
      if (dist >= seq_modulus) {
        throw NetError(NetErrorKind::kCorrupt, "sack distance outside the sequence circle");
      }
      info.sacks.push_back((from + static_cast<std::uint32_t>(dist)) % seq_modulus);
    }
  } catch (const WireError&) {
    throw NetError(NetErrorKind::kCorrupt, "truncated sack payload");
  }
  return info;
}

Frame make_batch_frame(std::uint32_t src, std::uint32_t dst, std::uint32_t seq,
                       const std::vector<ChargeRec>& charges, std::uint32_t session) {
  Frame f;
  f.header.type = FrameType::kBatch;
  f.header.src = src;
  f.header.dst = dst;
  f.header.seq = seq;
  f.header.session = session;
  f.header.phase = charges.empty() ? 0 : charges.front().phase;
  BitWriter w;
  w.put_gamma(charges.size());
  for (std::size_t i = 0; i < charges.size(); ++i) {
    w.put_gamma(charges[i].phase);
    w.put_gamma(charges[i].bits);
    append_filler(w, batch_filler_seed(f.header, i, charges[i].bits), charges[i].bits);
  }
  f.header.payload_bits = w.bit_size();
  f.payload = w.bytes();
  return f;
}

bool decode_batch_frame(const Frame& f, std::vector<ChargeRec>& out) {
  out.clear();
  if (f.header.type != FrameType::kBatch) return false;
  try {
    BitReader r(f.payload, f.header.payload_bits);
    const std::uint64_t count = r.get_gamma();
    if (count == 0 || count > f.header.payload_bits) return false;  // >= 1 bit per record
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      ChargeRec rec;
      rec.phase = r.get_gamma();
      rec.bits = r.get_gamma();
      if (rec.bits > f.header.payload_bits) return false;
      if (!check_filler(r, batch_filler_seed(f.header, i, rec.bits), rec.bits)) return false;
      out.push_back(rec);
    }
    return r.position() == f.header.payload_bits;  // no trailing garbage
  } catch (const WireError&) {
    return false;
  }
}

ArqSenderWindow::Entry& ArqSenderWindow::admit(Frame f) {
  if (entries_.empty()) base_ = f.header.seq;
  Entry e;
  e.seq = f.header.seq;
  e.frame = std::move(f);
  entries_.push_back(std::move(e));
  return entries_.back();
}

std::size_t ArqSenderWindow::on_ack(const AckInfo& info) {
  if (entries_.empty()) return 0;
  // Cumulative advance: everything through info.cumulative is delivered.
  // seq_dist(base, cumulative+1) in [1, M/2) is news; the stale band (a
  // cumulative from before the window moved) wraps to >= M/2 and is
  // ignored. The news band deliberately extends PAST the admitted entries:
  // after a crash replay the receiver is ahead of the rewound sender — its
  // cumulative covers frames the window has not even re-admitted yet — so
  // the advance is clamped to what the window holds instead of being
  // mistaken for staleness (which would wedge the replay into kTimeout).
  const std::uint32_t adv = seq_dist(base_, (info.cumulative + 1) % modulus_, modulus_);
  std::size_t retired = 0;
  if (adv >= 1 && adv < modulus_ / 2) {
    const std::size_t take = std::min<std::size_t>(adv, entries_.size());
    for (std::size_t i = 0; i < take; ++i) {
      entries_.pop_front();
      ++retired;
    }
    base_ = (base_ + static_cast<std::uint32_t>(take)) % modulus_;
  }
  for (const std::uint32_t s : info.sacks) {
    const std::uint32_t d = seq_dist(base_, s, modulus_);
    if (d < entries_.size()) entries_[d].acked = true;  // duplicate SACKs are idempotent
  }
  return retired;
}

void ArqSenderWindow::due(std::uint64_t now_us, std::vector<Entry*>& out) {
  out.clear();
  for (Entry& e : entries_) {
    if (!e.acked && e.attempts > 0 && now_us >= e.deadline_us) out.push_back(&e);
  }
}

bool ArqSenderWindow::next_deadline(std::uint64_t& out) const noexcept {
  bool found = false;
  for (const Entry& e : entries_) {
    if (e.acked || e.attempts == 0) continue;
    if (!found || e.deadline_us < out) out = e.deadline_us;
    found = true;
  }
  return found;
}

ArqReceiverWindow::Verdict ArqReceiverWindow::on_frame(Frame f) {
  const std::uint32_t d = seq_dist(next_expected_, f.header.seq, modulus_);
  if (d == 0) {
    deliverable_.push_back(std::move(f));
    next_expected_ = (next_expected_ + 1) % modulus_;
    // Drain the buffered successors this acceptance released.
    for (auto it = buffered_.find(next_expected_); it != buffered_.end();
         it = buffered_.find(next_expected_)) {
      deliverable_.push_back(std::move(it->second));
      buffered_.erase(it);
      next_expected_ = (next_expected_ + 1) % modulus_;
    }
    return Verdict::kInOrder;
  }
  if (d < window_) {
    const auto [it, inserted] = buffered_.try_emplace(f.header.seq, std::move(f));
    (void)it;
    return inserted ? Verdict::kBuffered : Verdict::kDuplicate;
  }
  if (d >= modulus_ / 2) {
    return Verdict::kDuplicate;  // behind next_expected_: already delivered
  }
  return Verdict::kOverrun;
}

std::vector<Frame> ArqReceiverWindow::take_deliverable() {
  std::vector<Frame> run = std::move(deliverable_);
  deliverable_.clear();
  return run;
}

AckInfo ArqReceiverWindow::ack() const {
  AckInfo info;
  info.cumulative = (next_expected_ + modulus_ - 1) % modulus_;
  if (!buffered_.empty()) {
    info.sacks.reserve(buffered_.size());
    for (const auto& [seq, frame] : buffered_) info.sacks.push_back(seq);
    // Ascending forward distance from cumulative+1 (== next_expected_), not
    // ascending raw value: the SACK codec gamma-codes these distances.
    std::sort(info.sacks.begin(), info.sacks.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return seq_dist(next_expected_, a, modulus_) <
                       seq_dist(next_expected_, b, modulus_);
              });
  }
  return info;
}

}  // namespace tft::net
