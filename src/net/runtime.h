#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "comm/channel.h"
#include "comm/transcript.h"
#include "net/arq.h"
#include "net/checkpoint.h"
#include "net/reliable.h"
#include "net/servicer.h"
#include "net/session.h"
#include "net/transport.h"

/// \file runtime.h
/// The executed-mode session: one ChannelSink whose on_charge ships a real
/// frame per charged message (or coalesces several charges into one frame
/// under the windowed ARQ policy).
///
/// Topology: 2k directed links — player j -> coordinator (upstream, link id
/// j) and coordinator -> player j (downstream, link id k+1+j; the ids seed
/// the fault injector, so they are part of the reproducibility contract).
/// All 2k links are drained by ONE SharedServicer thread; on_charge is
/// enqueue-mostly and the driving thread blocks only at phase barriers
/// (every phase change flushes the pipeline end to end), on queue
/// backpressure, or at session close. The protocol itself stays
/// single-threaded on the driving thread, exactly as in simulated mode, so
/// transcripts and verdicts are bit-identical across transports, ArqPolicy
/// choices and thread counts.
///
/// NetSession is the *single-session* view of the multiplexed runtime: it
/// owns a private transport + servicer and opens exactly one session with
/// the reserved wire id 0, so its frames carry the v1 header and every
/// pre-session byte stream is reproduced exactly. The per-session state
/// itself (phase cursor, crash controller, error containment, folded
/// stats) lives in the servicer's SessionState table (net/session.h); the
/// service layer (src/service/) opens many such sessions, ids >= 1, over
/// one shared servicer.

namespace tft::net {

enum class TransportKind {
  kSim,     ///< legacy simulated mode: no frames, Transcript-only
  kInProc,  ///< ByteRing SPSC queues + condvars
  kSocket,  ///< TCP on 127.0.0.1
};

[[nodiscard]] constexpr const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::kSim: return "sim";
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kSocket: return "socket";
  }
  // Out-of-range values can only come from casts; make them loud in debug
  // builds instead of silently labelling runs "?".
  assert(!"to_string(TransportKind): value outside the enum");
  return "?";
}

[[nodiscard]] std::optional<TransportKind> parse_transport(std::string_view s) noexcept;

struct NetConfig {
  TransportKind transport = TransportKind::kInProc;
  FaultPlan faults;     ///< applied to every data link
  RetryPolicy retry;
  std::size_t ring_capacity = std::size_t{1} << 16;
  ArqPolicy arq = ArqPolicy::windowed();  ///< stop_and_wait() for the A/B reference
  /// Deterministic logical time for timeouts/backoff (in-proc only):
  /// retransmission counts become exactly reproducible under a fixed fault
  /// seed. Throws NetError(kSetup) when combined with kSocket.
  bool virtual_clock = false;
  /// Carried inside every PlayerCheckpoint so a respawned process could
  /// rebuild its inputs; otherwise inert.
  std::uint64_t session_seed = 0;
  /// Barrier checkpoints + the crash controller (net/recovery.h). On by
  /// default: a crash-free plan costs one charge-log append per charge and
  /// a per-player checkpoint refresh per phase. Crashes themselves come
  /// from faults.crash_schedule / faults.crash.
  bool crash_tolerance = true;
  /// Servicer poller shards (SharedServicer::Options::num_shards). 1 keeps
  /// the classic single-threaded servicer; a solo NetSession never benefits
  /// from more (all its links share one shard by design), so this mainly
  /// serves the service layer and A/B tests.
  std::size_t num_shards = 1;
};

[[nodiscard]] std::unique_ptr<Transport> make_transport(const NetConfig& cfg);

// WireStats lives in net/session.h (included above): it is the per-session
// result type of the multiplexed runtime, folded by close_session.

/// The charged side of the cross-check, summable over several transcripts
/// (an executed body may run more than one checked protocol).
struct ChargedTotals {
  std::vector<std::uint64_t> up_bits;
  std::vector<std::uint64_t> down_bits;
  std::vector<std::uint64_t> up_msgs;
  std::vector<std::uint64_t> down_msgs;
  std::vector<std::uint64_t> phase_bits;

  explicit ChargedTotals(std::size_t num_players)
      : up_bits(num_players), down_bits(num_players), up_msgs(num_players),
        down_msgs(num_players) {}

  /// Fold one transcript's tallies in. Throws AccountingError if it names
  /// a different player count than the wire topology.
  void add(const Transcript& t);
};

/// Throws AccountingError unless the delivered-on-wire totals equal the
/// charged totals exactly: per player, per direction, per message count,
/// and per phase. The paper's cost model, enforced at the byte level.
void verify_accounting(const ChargedTotals& charged, const WireStats& w);

/// Convenience: one transcript against the wire.
void verify_accounting(const Transcript& t, const WireStats& w);

/// The ChannelSink of executed mode. Single driving thread; on_charge
/// enqueues onto the shared servicer and blocks only at phase barriers,
/// queue backpressure, or (under ArqPolicy::block_per_frame) per frame.
///
/// Thin wrapper since the multi-session refactor: it owns a private
/// transport + servicer and forwards everything to session 0, whose v1
/// frame encoding keeps classic runs byte-identical to pre-session builds.
class NetSession final : public ChannelSink {
 public:
  NetSession(std::size_t num_players, const NetConfig& cfg);
  ~NetSession() override;

  NetSession(const NetSession&) = delete;
  NetSession& operator=(const NetSession&) = delete;

  void on_charge(std::size_t player, Direction dir, std::uint64_t bits,
                 std::uint64_t phase) override;

  /// Phase barrier: seal open batches and drain the pipeline end to end.
  /// Called automatically whenever a charge's phase differs from the
  /// previous charge's, and by Channel::flush().
  void on_flush() override;

  /// Drain the pipeline, stop the servicer, aggregate its tallies.
  /// Idempotent; a servicer-recorded failure rethrows as NetError.
  WireStats finish();

  [[nodiscard]] std::size_t num_players() const noexcept { return k_; }

  /// The player's latest barrier checkpoint, as stored: the exact bytes a
  /// recovery would decode. Refreshed at every phase barrier.
  [[nodiscard]] const std::vector<std::uint8_t>& checkpoint_bytes(std::size_t player) const {
    return servicer_->session_checkpoint_bytes(sid_, player);
  }
  /// Decoded convenience view of checkpoint_bytes.
  [[nodiscard]] PlayerCheckpoint checkpoint(std::size_t player) const {
    return decode_checkpoint(checkpoint_bytes(player));
  }

 private:
  std::size_t k_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<SharedServicer> servicer_;
  std::size_t sid_ = 0;  ///< servicer table index of our session (wire id 0)
  bool finished_ = false;
  WireStats result_;
};

}  // namespace tft::net
