#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/conformance.h"
#include "comm/message_passing.h"
#include "graph/chunked.h"
#include "net/runtime.h"

/// \file executed.h
/// Run any protocol body in executed mode: every Transcript charge inside
/// the body ships a real serialized frame, and when the body returns the
/// runtime proves three things or throws —
///   1. the bits delivered on the wire equal the charged Transcript totals
///      per player / direction / message count / phase (AccountingError on
///      any discrepancy),
///   2. every transport-captured transcript passes the PR 2 model-
///      conformance referee (ConformanceError otherwise),
///   3. transport failures surfaced as typed NetError — never a hang,
///      never a silently wrong verdict.

namespace tft::net {

struct ExecutedReport {
  bool executed = false;  ///< false under TransportKind::kSim (no frames)
  WireStats wire;
  /// Every checked protocol run the body performed, captured off the wire
  /// side: the referee has passed on each (re-checkable by callers).
  std::vector<TranscriptCapture::Run> runs;
};

/// Execute `body` (any code that reaches protocol entry points — they all
/// route through run_checked) with `num_players` live endpoints on `cfg`'s
/// transport. Under kSim this degrades to a plain call with capture.
template <typename Fn>
auto run_executed(std::size_t num_players, const NetConfig& cfg, Fn&& body)
    -> std::pair<std::invoke_result_t<Fn&>, ExecutedReport> {
  static_assert(!std::is_void_v<std::invoke_result_t<Fn&>>,
                "run_executed bodies return the protocol result");
  TranscriptCapture capture;
  ExecutedReport report;

  if (cfg.transport == TransportKind::kSim) {
    auto result = body();
    report.runs = capture.runs();
    return {std::move(result), std::move(report)};
  }

  NetSession session(num_players, cfg);
  auto result = [&] {
    const ChannelSinkScope scope(&session);
    return body();
  }();
  report.executed = true;
  report.wire = session.finish();

  ChargedTotals charged(num_players);
  for (const auto& run : capture.runs()) charged.add(run.transcript);
  verify_accounting(charged, report.wire);
  // The referee has already vetted each run inside run_checked unless the
  // global switch is off; executed mode re-checks unconditionally — a
  // transport run must never dodge the model rules.
  for (const auto& run : capture.runs()) {
    if (auto r = check_conformance(run.model, run.transcript); !r.ok()) {
      throw ConformanceError(std::move(r));
    }
  }
  report.runs = capture.runs();
  return {std::move(result), std::move(report)};
}

/// run_executed over a chunked instance (graph/chunked.h): player j's input
/// Graph is generated from ONLY its own chunk — partition = chunk, no
/// monolithic edge list on any endpoint — so executed-mode peak memory per
/// player is O(m/k) plus the shared vertex universe. `body` receives the
/// per-player inputs; accounting and conformance checks are those of
/// run_executed, unchanged.
template <typename Fn>
auto run_executed_chunked(const ChunkedSpec& spec, std::uint64_t seed, std::size_t num_players,
                          const NetConfig& cfg, Fn&& body)
    -> std::pair<std::invoke_result_t<Fn&, std::span<const PlayerInput>>, ExecutedReport> {
  const ChunkedView view(spec, seed, num_players);
  const std::vector<PlayerInput> players = view.build_players();
  return run_executed(players.size(), cfg,
                      [&] { return body(std::span<const PlayerInput>(players)); });
}

/// The Section 2 message-passing -> coordinator overhead, measured on real
/// relayed frames instead of synthetic MpMessage arithmetic: each message
/// is framed as payload + fixed-width recipient id, shipped player ->
/// coordinator, decoded and forwarded coordinator -> recipient by the
/// coordinator's servicer actors.
struct RelayReport {
  std::uint64_t mp_bits = 0;           ///< sum of raw message payloads
  std::uint64_t measured_bits = 0;     ///< charged bits delivered on the wire
  std::uint64_t simulated_bits = 0;    ///< MessagePassingSimulator on the same batch
  double measured_overhead = 0.0;      ///< measured_bits / mp_bits
  double bound = 0.0;                  ///< overhead_bound(min payload, k)
  WireStats wire;
};

/// Relay `messages` among k players over cfg's transport. Throws NetError
/// on transport failure; the returned measurement satisfies
/// measured_bits == simulated_bits by construction of the frame format
/// (tested), so the simulator's claim is backed by bytes.
[[nodiscard]] RelayReport relay_messages(std::size_t k, std::uint64_t universe_n,
                                         std::span<const MpMessage> messages,
                                         const NetConfig& cfg);

}  // namespace tft::net
