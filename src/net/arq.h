#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/frame.h"

/// \file arq.h
/// Sliding-window ARQ: the policy knobs, sequence-number arithmetic, the
/// cumulative + selective acknowledgement codec, the coalesced-batch frame
/// codec, and the pure per-link sender/receiver window state machines the
/// shared servicer (net/servicer.h) drives.
///
/// Everything here is single-threaded and I/O-free — the state machines
/// consume frames and emit verdicts, which makes the wraparound / ack-
/// reordering / duplicate-SACK edge cases unit-testable without threads,
/// pipes or clocks (test_net_arq.cpp).
///
/// Sequence numbers live on the circle [0, seq_modulus) and are compared
/// with serial arithmetic: `seq_dist(from, to)` is the forward distance.
/// A receiver classifies an arriving seq s against next_expected e by
/// d = seq_dist(e, s):
///   d == 0            in order: accept, advance, drain buffered successors
///   0 <  d < window   ahead but legal: buffer (duplicate if already there)
///   window <= d < M/2 protocol error: the sender overran its own window
///   d >= M/2          behind: an old duplicate — discard but re-ack
/// `validate()` enforces 2*window <= seq_modulus so the bands cannot
/// overlap.
///
/// ## Shard-locality audit (sharded servicer)
///
/// Nothing in this file is shared across servicer shards. The audit, kept
/// current whenever state is added here:
///   - ArqPolicy: immutable configuration, copied into each window at
///     construction — read-only after validate().
///   - ArqSenderWindow / ArqReceiverWindow: owned by exactly one
///     SharedServicer::LinkState; a link belongs to exactly one session and
///     a session is pinned to one shard for life, so every window is only
///     ever touched under its shard's mutex by its shard's poller (or by a
///     driving thread holding that same mutex).
///   - Entry/Frame deques and the SACK map: per-window containers, no
///     statics, no globals, no allocator state beyond the default heap.
///   - Free functions (seq_dist, codec helpers): pure; scratch buffers are
///     caller-provided (the shard's own).
/// Consequently the state machines need no atomics and no per-frame locks
/// regardless of num_shards — the shard boundary is the synchronization
/// domain, which is what keeps per-session byte streams bit-exact at any
/// shard count.

namespace tft::net {

struct ArqPolicy {
  std::uint32_t window = 32;        ///< max unacked frames in flight per link
  std::uint32_t seq_modulus = std::uint32_t{1} << 16;  ///< seq wraps mod this
  bool coalesce = true;             ///< pack several charges into one frame
  std::uint32_t max_batch_msgs = 64;           ///< charges per coalesced frame
  std::uint64_t max_batch_bits = std::uint64_t{1} << 20;  ///< payload cap per batch
  bool block_per_frame = false;     ///< enqueue waits for the ack (stop-and-wait)
  std::uint32_t pending_cap = 64;   ///< sealed frames queued past the window

  /// The pipelined default: window W, coalescing on.
  [[nodiscard]] static ArqPolicy windowed(std::uint32_t w = 32) noexcept {
    ArqPolicy p;
    p.window = w;
    return p;
  }

  /// The legacy discipline, byte-for-byte: one frame in flight, no
  /// coalescing, enqueue blocks for the ack. The huge modulus means seq
  /// never wraps, so frames carry the same gamma(seq) the legacy
  /// ReliableSender wrote.
  [[nodiscard]] static ArqPolicy stop_and_wait() noexcept {
    ArqPolicy p;
    p.window = 1;
    p.seq_modulus = std::uint32_t{1} << 30;
    p.coalesce = false;
    p.block_per_frame = true;
    p.pending_cap = 1;
    return p;
  }

  /// Throws NetError(kSetup) on an unusable combination (zero window,
  /// wraparound bands overlapping, empty batches).
  void validate() const;
};

/// Forward distance from `from` to `to` on the circle [0, modulus).
[[nodiscard]] constexpr std::uint32_t seq_dist(std::uint32_t from, std::uint32_t to,
                                               std::uint32_t modulus) noexcept {
  return (to >= from ? to - from : modulus - from + to) % modulus;
}

/// One acknowledgement as it travels the wire: `cumulative` is the highest
/// in-order sequence accepted so far (next_expected - 1 mod M; M - 1 before
/// anything arrived at next_expected == 0 — the sender's serial arithmetic
/// reads that as "no news"), `sacks` the out-of-order frames buffered above
/// it. A SACK-free ack is byte-identical to the legacy stop-and-wait ack.
struct AckInfo {
  std::uint32_t cumulative = 0;
  std::vector<std::uint32_t> sacks;  ///< ascending seq_dist from cumulative+1
};

/// Ack frame codec. Payload, present only when sacks exist: gamma(count),
/// then per sack the gamma-coded distance from cumulative+1.
[[nodiscard]] Frame make_ack_frame(std::uint32_t src, std::uint32_t dst, const AckInfo& info,
                                   std::uint32_t seq_modulus);
/// Throws NetError(kCorrupt) on a malformed SACK payload.
[[nodiscard]] AckInfo decode_ack_frame(const Frame& f, std::uint32_t seq_modulus);

/// One coalesced charge inside a kBatch frame.
struct ChargeRec {
  std::uint64_t phase = 0;
  std::uint64_t bits = 0;
};

/// Batch frame codec. Payload: gamma(count), then per charge gamma(phase)
/// gamma(bits) followed by `bits` of deterministic filler keyed by
/// ((src<<32)|dst, (seq<<32)|index, bits) — session-folded when the frame
/// belongs to a multiplexed session — the per-message analogue of the kData
/// filler, so receivers still verify every charged bit behind the CRC.
/// `payload_bits` is the exact encoded bit length.
[[nodiscard]] Frame make_batch_frame(std::uint32_t src, std::uint32_t dst, std::uint32_t seq,
                                     const std::vector<ChargeRec>& charges,
                                     std::uint32_t session = 0);
/// Decode + verify the filler inline. Returns false (corrupt) on any
/// malformed count/record/filler mismatch; never throws.
[[nodiscard]] bool decode_batch_frame(const Frame& f, std::vector<ChargeRec>& out);

/// Sender half of one link's window: sealed frames are admitted up to
/// `window` in flight, acknowledged cumulatively and selectively, and
/// reported back for retransmission when their (caller-managed) deadlines
/// expire. Time lives outside: entries carry an opaque deadline in
/// microseconds (real or virtual) the servicer assigns.
class ArqSenderWindow {
 public:
  struct Entry {
    std::uint32_t seq = 0;
    Frame frame;
    std::uint32_t attempts = 0;      ///< transmissions so far (>= 1 once sent)
    std::uint64_t deadline_us = 0;   ///< retransmit when now >= deadline
    bool acked = false;              ///< SACKed: delivered, awaiting cumulative
  };

  explicit ArqSenderWindow(const ArqPolicy& policy) noexcept
      : window_(policy.window), modulus_(policy.seq_modulus) {}

  [[nodiscard]] bool has_space() const noexcept { return entries_.size() < window_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t in_flight() const noexcept { return entries_.size(); }

  /// Admit a sealed frame (its header.seq already assigned in order).
  /// Caller must check has_space() first.
  Entry& admit(Frame f);

  /// Apply one acknowledgement. Returns the number of entries retired
  /// (cumulative advance); stale and duplicate acks return 0 harmlessly.
  std::size_t on_ack(const AckInfo& info);

  /// Entries whose deadline has passed and that are not SACKed — the
  /// retransmission set at `now_us`.
  void due(std::uint64_t now_us, std::vector<Entry*>& out);

  /// Earliest deadline among unacked entries; false when none in flight.
  [[nodiscard]] bool next_deadline(std::uint64_t& out) const noexcept;

  [[nodiscard]] std::uint32_t base() const noexcept { return base_; }

  /// Crash recovery (net/recovery.h): forget every in-flight entry and
  /// rebase the window at `base` — the checkpointed next_seq. The servicer
  /// replays the charge log afterwards, regenerating the same frames with
  /// the same sequence numbers, so the rewound window is indistinguishable
  /// from one that never advanced past the barrier.
  void reset(std::uint32_t base) noexcept {
    entries_.clear();
    base_ = base;
  }

 private:
  std::uint32_t window_;
  std::uint32_t modulus_;
  std::uint32_t base_ = 0;  ///< seq of the oldest in-flight entry
  std::deque<Entry> entries_;
};

/// Receiver half: classifies arrivals, buffers out-of-order frames, hands
/// back the in-order run to deliver, and describes the ack to send.
class ArqReceiverWindow {
 public:
  enum class Verdict {
    kInOrder,    ///< accept now; call take_deliverable() for the full run
    kBuffered,   ///< out of order, stashed; ack with a SACK
    kDuplicate,  ///< already delivered or already buffered; re-ack
    kOverrun,    ///< sender violated its window: protocol error
  };

  explicit ArqReceiverWindow(const ArqPolicy& policy) noexcept
      : window_(policy.window), modulus_(policy.seq_modulus) {}

  [[nodiscard]] Verdict on_frame(Frame f);

  /// Drain the in-order run (the just-accepted frame plus any buffered
  /// successors it released), in sequence order.
  [[nodiscard]] std::vector<Frame> take_deliverable();

  /// The acknowledgement describing the current state (send after every
  /// intact arrival, whatever the verdict).
  [[nodiscard]] AckInfo ack() const;

  [[nodiscard]] std::uint32_t next_expected() const noexcept { return next_expected_; }

  /// Crash recovery: drop buffered/undelivered frames and rewind to the
  /// checkpointed next_expected. Everything the rewound sender replays from
  /// that point is classified in order again, exactly as on first delivery.
  void reset(std::uint32_t next_expected) noexcept {
    buffered_.clear();
    deliverable_.clear();
    next_expected_ = next_expected;
  }

 private:
  std::uint32_t window_;
  std::uint32_t modulus_;
  std::uint32_t next_expected_ = 0;
  std::map<std::uint32_t, Frame> buffered_;  ///< keyed by absolute seq
  std::vector<Frame> deliverable_;
};

}  // namespace tft::net
