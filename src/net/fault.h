#pragma once

#include <cstdint>

/// \file fault.h
/// Deterministic seeded fault injection at the channel layer.
///
/// Every decision is a pure function of (plan.seed, link_id, seq, attempt):
/// the same plan corrupts the same attempts of the same frames no matter
/// how threads are scheduled or which transport carries the bytes. That is
/// the determinism contract the fault tests assert — delivered bit totals
/// and protocol verdicts are reproducible under a fixed seed at any thread
/// count (retransmission *counts* may additionally grow under scheduler
/// pressure; delivered frames never change, because the receiver
/// deduplicates by sequence number).

namespace tft::net {

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;       ///< P[attempt never reaches the wire]
  double duplicate = 0.0;  ///< P[attempt is written twice back-to-back]
  double bit_flip = 0.0;   ///< P[one body bit is flipped in flight]
  double delay = 0.0;      ///< P[attempt is delayed by delay_us]
  std::uint32_t delay_us = 0;
  /// Bit s set => attempt 0 of sequence number s (s < 64) is dropped on
  /// every link, unconditionally. A surgical knob for tests that want a
  /// loss at an exact window position rather than a seeded coin flip.
  std::uint64_t drop_first_attempt_mask = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || bit_flip > 0.0 || delay > 0.0 ||
           drop_first_attempt_mask != 0;
  }
};

struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool bit_flip = false;
  bool delay = false;
  /// Which body bit to flip (mod the frame's body size; the length prefix
  /// is never touched so the stream stays parseable).
  std::uint64_t flip_bit = 0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint32_t link_id) noexcept
      : plan_(plan), link_id_(link_id) {}

  /// The (pure, deterministic) fate of one send attempt.
  [[nodiscard]] FaultDecision decide(std::uint32_t seq, std::uint32_t attempt) const noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::uint32_t link_id_;
};

}  // namespace tft::net
