#pragma once

#include <cstdint>
#include <optional>
#include <vector>

/// \file fault.h
/// Deterministic seeded fault injection at the channel layer.
///
/// Every decision is a pure function of (plan.seed, session, link_id, seq,
/// attempt): the same plan corrupts the same attempts of the same frames no
/// matter how threads are scheduled or which transport carries the bytes —
/// and, in the multiplexed service runtime, no matter which other sessions
/// share the transport (the session id folds into the seed, identity for
/// session 0, so single-session decisions are bit-identical to pre-session
/// builds). That is
/// the determinism contract the fault tests assert — delivered bit totals
/// and protocol verdicts are reproducible under a fixed seed at any thread
/// count (retransmission *counts* may additionally grow under scheduler
/// pressure; delivered frames never change, because the receiver
/// deduplicates by sequence number).
///
/// ## Crash schedule grammar
///
/// Crashes are a third fault class next to the per-attempt coin flips and
/// the surgical drop mask, keyed on (player, phase, offset):
///
///   crash point := (player, phase, offset)
///   offset      := how many of that player's charges in that phase have
///                  been enqueued when the player dies. offset 0 kills the
///                  player AT the phase barrier (checkpoint fresh, replay
///                  empty); offset o > 0 kills it mid-window, after o
///                  charges of the phase are already in the pipeline.
///
/// Two schedule sources compose (surgical entries win):
///
///   * `crash_schedule` — an explicit list of crash points, the chaos
///     harness's scalpel: place exactly one death at an exact point.
///   * `crash` / `crash_max_offset` — the seeded coin: player p dies in
///     phase f with probability `crash`, at offset
///     mix_hash(seed, player, phase) % (crash_max_offset + 1). Like
///     drop/dup/flip, the whole schedule is a pure function of `seed` —
///     a chaos run is replayable from one integer.
///
/// `crash_resurrect` selects between the recovery path (the dead player
/// respawns from its checkpoint and the charge log is replayed — the
/// default) and a permanent death (the session must surface a typed
/// NetError — kPlayerDown under RetryPolicy::fail_fast_on_down, kTimeout
/// under the legacy backoff discipline). The decision function is
/// `crash_offset` below; the session runtime (net/runtime.h) evaluates it
/// between charges, so a crash never tears a frame in half — exactly the
/// failure model of a process killed between syscalls.

namespace tft::net {

/// One surgical crash point (see the schedule grammar above).
struct CrashEvent {
  std::uint32_t player = 0;
  std::uint64_t phase = 0;
  std::uint64_t offset = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;       ///< P[attempt never reaches the wire]
  double duplicate = 0.0;  ///< P[attempt is written twice back-to-back]
  double bit_flip = 0.0;   ///< P[one body bit is flipped in flight]
  double delay = 0.0;      ///< P[attempt is delayed by delay_us]
  std::uint32_t delay_us = 0;
  /// Bit s set => attempt 0 of sequence number s (s < 64) is dropped on
  /// every link, unconditionally. A surgical knob for tests that want a
  /// loss at an exact window position rather than a seeded coin flip.
  std::uint64_t drop_first_attempt_mask = 0;

  // -- crash schedule (grammar documented above) ----------------------------
  double crash = 0.0;                    ///< P[player p dies in phase f], per (seed,p,f)
  std::uint64_t crash_max_offset = 8;    ///< seeded deaths land at hash % (this+1)
  bool crash_resurrect = true;           ///< false: the dead stay dead (fail-fast tests)
  std::vector<CrashEvent> crash_schedule;  ///< surgical crash points (win over the coin)

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || bit_flip > 0.0 || delay > 0.0 ||
           drop_first_attempt_mask != 0;
  }

  [[nodiscard]] bool has_crashes() const noexcept {
    return crash > 0.0 || !crash_schedule.empty();
  }
};

/// The (pure) crash fate of (player, phase) under `plan`: the scheduled
/// offset if the player dies in that phase, nullopt otherwise. Surgical
/// `crash_schedule` entries take precedence; the seeded draw keys on
/// mix_hash(seed, player, phase) exactly like the per-attempt fault
/// classes, so chaos runs replay from the seed alone.
[[nodiscard]] std::optional<std::uint64_t> crash_offset(const FaultPlan& plan,
                                                        std::uint32_t player,
                                                        std::uint64_t phase,
                                                        std::uint32_t session = 0) noexcept;

struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool bit_flip = false;
  bool delay = false;
  /// Which body bit to flip (mod the frame's body size; the length prefix
  /// is never touched so the stream stays parseable).
  std::uint64_t flip_bit = 0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint32_t link_id,
                std::uint32_t session = 0) noexcept
      : plan_(plan), link_id_(link_id), session_(session) {}

  /// The (pure, deterministic) fate of one send attempt, keyed on
  /// (session, link, seq, attempt).
  [[nodiscard]] FaultDecision decide(std::uint32_t seq, std::uint32_t attempt) const noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint32_t session() const noexcept { return session_; }

 private:
  FaultPlan plan_;
  std::uint32_t link_id_;
  std::uint32_t session_ = 0;
};

}  // namespace tft::net
