#include "net/fault.h"

#include "net/frame.h"
#include "util/rng.h"

namespace tft::net {

namespace {

/// Uniform [0,1) from one hash draw (same construction as Rng::uniform).
double unit(std::uint64_t h) noexcept { return static_cast<double>(h >> 11) * 0x1.0p-53; }

}  // namespace

std::optional<std::uint64_t> crash_offset(const FaultPlan& plan, std::uint32_t player,
                                          std::uint64_t phase, std::uint32_t session) noexcept {
  for (const CrashEvent& e : plan.crash_schedule) {
    if (e.player == player && e.phase == phase) return e.offset;
  }
  if (plan.crash > 0.0) {
    // Own hash domain (tag 0xC) so the crash coin is independent of the
    // per-attempt fault draws that share plan.seed. The session fold keeps
    // concurrent sessions' crash schedules independent (identity for 0).
    const std::uint64_t seed = fold_session(plan.seed, session);
    const std::uint64_t key = mix_hash(seed, (std::uint64_t{player} << 1) | 1, phase);
    if (unit(mix_hash(key, 0xC1)) < plan.crash) {
      return mix_hash(key, 0xC2) % (plan.crash_max_offset + 1);
    }
  }
  return std::nullopt;
}

FaultDecision FaultInjector::decide(std::uint32_t seq, std::uint32_t attempt) const noexcept {
  FaultDecision d;
  if (!plan_.any()) return d;
  const std::uint64_t key = mix_hash(fold_session(plan_.seed, session_),
                                     (std::uint64_t{link_id_} << 32) | seq, attempt);
  // Independent sub-draws per fault class, each its own hash domain.
  d.drop = unit(mix_hash(key, 1)) < plan_.drop;
  if (attempt == 0 && seq < 64 && ((plan_.drop_first_attempt_mask >> seq) & 1) != 0) {
    d.drop = true;
  }
  d.duplicate = unit(mix_hash(key, 2)) < plan_.duplicate;
  d.bit_flip = unit(mix_hash(key, 3)) < plan_.bit_flip;
  d.delay = unit(mix_hash(key, 4)) < plan_.delay;
  d.flip_bit = mix_hash(key, 5);
  return d;
}

}  // namespace tft::net
