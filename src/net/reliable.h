#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/frame.h"
#include "net/transport.h"

/// \file reliable.h
/// Stop-and-wait ARQ over one directed Link, with deterministic fault
/// injection on the sending side.
///
/// This is the *legacy* one-thread-per-link engine. The executed runtime
/// now runs on the pipelined net/servicer.h engine; these classes survive
/// as the independent byte-for-byte reference that
/// `ArqPolicy::stop_and_wait()` is verified against (see test_net_arq.cpp),
/// and as the backing of tests that exercise one link in isolation.
///
/// `ReliableSender::send` blocks until the frame is acknowledged, retrying
/// with bounded exponential backoff; retries exhausted is a typed
/// NetError(kTimeout) — the channel layer never hangs and never lies.
/// `LinkServicer::run` is the receiving actor: it reassembles frames from
/// arbitrary byte chunks, discards CRC failures (the sender retransmits),
/// deduplicates by sequence number (re-acknowledging, so a lost ack cannot
/// wedge the sender), verifies the deterministic payload, acknowledges, and
/// tallies exactly the *charged* payload bits of each frame accepted —
/// the numbers net::verify_accounting later holds against the Transcript.

namespace tft::net {

struct RetryPolicy {
  std::chrono::microseconds base_timeout{50'000};
  double backoff = 2.0;
  std::uint32_t max_retries = 8;  ///< total attempts = max_retries + 1
  std::chrono::microseconds max_timeout{1'000'000};

  /// Crash-fault handling (net/recovery.h): a peer *declared* down is not a
  /// lossy link, so when true the sender stops retransmitting to it
  /// immediately — no exponential-backoff budget is burned — and if the peer
  /// has not resumed within `down_timeout` the session fails with a typed
  /// NetError(kPlayerDown) after ONE bounded wait. When false, a dead peer
  /// degrades to the legacy behavior: retries escalate until kTimeout.
  bool fail_fast_on_down = true;
  std::chrono::microseconds down_timeout{200'000};

  [[nodiscard]] std::chrono::microseconds timeout_for(std::uint32_t attempt) const noexcept;
};

struct SenderStats {
  std::uint64_t frames_sent = 0;       ///< distinct frames acknowledged
  std::uint64_t wire_bytes = 0;        ///< bytes written incl. retransmits/dups
  std::uint64_t retransmissions = 0;   ///< extra attempts beyond the first
  std::uint64_t duplicates_sent = 0;   ///< injected duplicate writes
  std::uint64_t acks_received = 0;
};

struct ReceiverStats {
  std::uint64_t frames = 0;        ///< unique data/relay/batch frames accepted
  std::uint64_t messages = 0;      ///< charged messages delivered (>= frames with coalescing)
  std::uint64_t payload_bits = 0;  ///< sum of accepted frames' charged bits
  std::uint64_t duplicates = 0;    ///< retransmits discarded by seq dedup
  std::uint64_t corrupt = 0;       ///< CRC/codec/filler failures discarded
  std::uint64_t bytes_read = 0;
  std::uint64_t player_down_frames = 0;  ///< out-of-band kPlayerDown notices seen
  std::uint64_t resume_frames = 0;       ///< out-of-band kResume notices seen
  std::vector<std::uint64_t> phase_bits;  ///< per-phase accepted bits
};

/// Sending half. Not thread-safe; one sender per link, one thread at a time
/// (the relay driver serializes access externally).
class ReliableSender {
 public:
  ReliableSender(Link& link, std::uint32_t link_id, const RetryPolicy& policy,
                 const FaultPlan& faults) noexcept
      : link_(link), injector_(faults, link_id), policy_(policy) {}

  /// Assigns the next sequence number, transmits, and blocks for the ack.
  /// Throws NetError(kTimeout) after max_retries, NetError(kClosed) if the
  /// link dies.
  void send(Frame f);

  [[nodiscard]] std::uint32_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] const SenderStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultInjector& injector() const noexcept { return injector_; }

 private:
  [[nodiscard]] bool await_ack(std::uint32_t seq, Clock::time_point deadline);

  Link& link_;
  FaultInjector injector_;
  RetryPolicy policy_;
  std::uint32_t next_seq_ = 0;
  SenderStats stats_;
  FrameParser ack_parser_;
  std::vector<std::uint8_t> ack_buf_ = std::vector<std::uint8_t>(512);
};

/// Receiving actor for one link: call run() on a dedicated thread; it
/// returns when the link is closed and drained. Never throws — a failure
/// (e.g. a deliver hook that cannot forward) is recorded in error() and the
/// link is closed, which surfaces at the blocked sender as a typed error.
class LinkServicer {
 public:
  /// `src`/`dst` are the endpoint ids frames on this link must carry.
  /// `deliver` (optional) sees each unique accepted frame, post-ack.
  LinkServicer(Link& link, std::uint32_t src, std::uint32_t dst,
               std::function<void(const Frame&)> deliver = nullptr) noexcept
      : link_(link), src_(src), dst_(dst), deliver_(std::move(deliver)) {}

  void run() noexcept;

  [[nodiscard]] const ReceiverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::optional<std::string>& error() const noexcept { return error_; }

 private:
  void accept(const Frame& f);
  void send_ack(std::uint32_t seq);

  Link& link_;
  std::uint32_t src_;
  std::uint32_t dst_;
  std::function<void(const Frame&)> deliver_;
  std::uint32_t next_expected_ = 0;
  ReceiverStats stats_;
  std::optional<std::string> error_;
};

}  // namespace tft::net
