#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file frame.h
/// The wire format of the executed transport: length-prefixed frames whose
/// headers are `comm/wire.h` bit streams (MSB-first, gamma-coded fields)
/// and whose payloads carry exactly the charged number of bits.
///
///   wire frame := [u32 LE body_len] [body] [u32 LE crc32(body)]
///   body       := header bits (BitWriter), padded to a byte boundary,
///                 then ceil(payload_bits / 8) payload bytes
///   header     := magic(16) type(3) src(γ) dst(γ) seq(γ) phase(γ)
///                 payload_bits(γ)                          (session id 0)
///   header v2  := magic2(16) session(γ, >= 1) type(3) src(γ) dst(γ)
///                 seq(γ) phase(γ) payload_bits(γ)          (session id > 0)
///
/// Session id 0 is *reserved* for the single-session runtime: a frame whose
/// session is 0 is encoded with the original magic and the original field
/// layout, so every pre-session golden frame, transcript and baseline byte
/// stream stays valid unchanged. Frames belonging to a multiplexed service
/// session (id >= 1) announce themselves with a distinct magic and carry the
/// gamma-coded id immediately after it; a v2 frame claiming session 0 is
/// corrupt (it must have used the v1 encoding).
///
/// `payload_bits` — not the padded byte count — is what the runtime tallies
/// against the Transcript, so the executed cost equals the charged cost
/// bit for bit. The CRC covers the whole body; receivers discard frames
/// that fail it (the ARQ layer retransmits). The length prefix is the
/// resynchronization anchor: the fault injector never corrupts it, so a
/// flipped body never desynchronizes the byte stream.

namespace tft::net {

enum class FrameType : std::uint8_t {
  kData = 0,   ///< one charged protocol message (payload = deterministic filler)
  kRelay = 1,  ///< message-passing payload: recipient id + payload filler
  kAck = 2,    ///< cumulative ack of `seq`; payload (optional) = selective acks
  kBatch = 3,  ///< several coalesced charged messages (see net/arq.h codec)
  /// Crash-recovery control plane (net/recovery.h). Both travel out of band:
  /// they consume no ARQ sequence number, are never acknowledged, and are
  /// excluded from the charged-bit accounting — `seq` is a per-link control
  /// ordinal, not a window position.
  kPlayerDown = 4,  ///< coordinator -> player: you were declared dead
  kResume = 5,      ///< player -> coordinator: respawned; payload = checkpoint
};

struct FrameHeader {
  FrameType type = FrameType::kData;
  std::uint32_t src = 0;  ///< sending endpoint (player id, or k for the coordinator)
  std::uint32_t dst = 0;  ///< receiving endpoint
  std::uint32_t seq = 0;  ///< per-link sequence number (stop-and-wait ARQ)
  std::uint64_t phase = 0;
  std::uint64_t payload_bits = 0;
  /// Multiplexed session the frame belongs to. 0 (the single-session
  /// runtime) selects the original v1 encoding; ids >= 1 select the v2
  /// header and key the filler stream, so concurrent sessions sharing a
  /// transport stay individually deterministic.
  std::uint32_t session = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;  ///< ceil(payload_bits/8) bytes, pad bits zero
};

/// Upper bound on a frame's payload (8 MiB of bits) and on the whole body;
/// anything larger in a length prefix or header is treated as corrupt.
inline constexpr std::uint64_t kMaxPayloadBits = std::uint64_t{1} << 26;
inline constexpr std::size_t kMaxBodyBytes = (kMaxPayloadBits / 8) + 64;

/// IEEE CRC-32 (reflected, poly 0xEDB88320), seedable for incremental use.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t crc = 0) noexcept;

/// Serialize to the on-the-wire byte string (prefix + body + CRC).
[[nodiscard]] std::vector<std::uint8_t> serialize_frame(const Frame& f);

/// Same encoding into a caller-owned buffer (cleared first) so hot paths
/// can reuse one allocation per link instead of allocating per frame.
void serialize_frame_into(const Frame& f, std::vector<std::uint8_t>& out);

/// Bytes `serialize_frame` produces for this frame (without materializing).
[[nodiscard]] std::size_t frame_wire_bytes(const Frame& f);

/// Deterministic payload for a charge-driven data frame: a splitmix64
/// stream keyed by (src, dst, seq, payload_bits) — with the session id
/// folded in when nonzero, so two sessions never share a filler stream —
/// truncated to payload_bits with zero pad bits. Receivers regenerate and
/// compare — corruption that slipped past the CRC (or a codec bug) is
/// caught here.
[[nodiscard]] std::vector<std::uint8_t> make_filler_payload(const FrameHeader& h);
[[nodiscard]] bool verify_filler_payload(const Frame& f);

/// Fold a nonzero session id into a keying seed; the identity for session 0,
/// so every single-session stream (filler, faults) is bit-identical to the
/// pre-session encoding. Shared by the filler generators and the fault
/// injector — the "(session, link, seq)" keying contract.
[[nodiscard]] std::uint64_t fold_session(std::uint64_t seed, std::uint32_t session) noexcept;

/// Build / decode a message-passing relay frame: the payload is the
/// recipient id in exactly vertex_bits(k) fixed-width bits — the header
/// the Section 2 simulation charges — followed by `message_bits` of filler.
/// `payload_bits` is therefore message_bits + vertex_bits(k).
[[nodiscard]] Frame make_relay_frame(std::uint32_t src, std::uint32_t seq, std::size_t k,
                                     std::size_t recipient, std::uint64_t message_bits);
[[nodiscard]] std::size_t decode_relay_recipient(const Frame& f, std::size_t k);

/// Incremental parser over an arbitrary chunking of the byte stream.
/// CRC-invalid or structurally invalid bodies are skipped (counted in
/// `corrupt_frames`) using the length prefix to resynchronize.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> bytes);
  /// Extract the next complete valid frame; false when none is buffered.
  [[nodiscard]] bool next(Frame& out);
  [[nodiscard]] std::uint64_t corrupt_frames() const noexcept { return corrupt_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::uint64_t corrupt_ = 0;
};

}  // namespace tft::net
