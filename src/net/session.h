#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/checkpoint.h"
#include "net/error.h"
#include "net/fault.h"

/// \file session.h
/// Per-session state of the multiplexed transport runtime, as a *value
/// type*: everything one testing session owns — its wire id, link range,
/// phase cursor, crash-controller state, error containment and folded
/// results — lives in a plain struct the SharedServicer keeps in a table.
/// No threads, no pipes, no references: a session is data, and "one
/// servicer thread drains all links of all live sessions" falls out of the
/// servicer iterating that table.
///
/// `NetSession` (net/runtime.h) is the single-session view: it opens one
/// session with the reserved wire id 0 and forwards charges to it, so the
/// classic one-protocol-per-transport runs are byte-identical to pre-session
/// builds. The service layer (src/service/) opens many sessions with ids
/// >= 1 over one shared servicer.

namespace tft::net {

/// What actually crossed the wire, per player and direction — the executed
/// counterpart of the Transcript's tallies, plus transport-level truth
/// (header/ack/retransmit bytes) the idealized accounting abstracts away.
struct WireStats {
  std::vector<std::uint64_t> up_bits;    ///< delivered charged bits, player j -> C
  std::vector<std::uint64_t> down_bits;  ///< delivered charged bits, C -> player j
  std::vector<std::uint64_t> up_msgs;
  std::vector<std::uint64_t> down_msgs;
  std::vector<std::uint64_t> phase_bits;
  std::uint64_t wire_bytes = 0;  ///< framed bytes written incl. retransmits
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates = 0;      ///< frames discarded by seq dedup
  std::uint64_t corrupt_frames = 0;  ///< frames discarded by CRC/codec checks
  std::uint64_t acks = 0;
  std::uint64_t frames_delivered = 0;  ///< unique wire frames accepted (<= messages when coalescing)
  std::uint64_t virtual_time_us = 0;   ///< final logical clock (virtual-clock mode only)
  std::uint64_t crashes = 0;            ///< players killed by the crash schedule
  std::uint64_t player_down_frames = 0; ///< out-of-band kPlayerDown notices delivered
  std::uint64_t resume_frames = 0;      ///< out-of-band kResume notices delivered
  std::uint64_t replayed_charges = 0;   ///< charges re-sealed by recovery replay

  /// Note: messages() counts *charged* messages delivered, so it equals the
  /// Transcript's message count even when several charges share one frame.
  [[nodiscard]] std::uint64_t payload_bits() const noexcept;
  [[nodiscard]] std::uint64_t messages() const noexcept;
  [[nodiscard]] std::string summary() const;
};

/// One live (or closed) session in the servicer's table. Owned under the
/// servicer's mutex; never aliased across sessions. Links
/// [link_base, link_base + 2k) belong to this session: up links first
/// (player j -> coordinator at link_base + j), then down links
/// (coordinator -> player j at link_base + k + j) — the same intra-session
/// link-id numbering as a solo NetSession, so a session multiplexed among
/// others sees byte-identical frames to the same session run alone.
struct SessionState {
  std::uint32_t id = 0;        ///< wire session id (0 reserved for NetSession)
  std::size_t k = 0;           ///< players in this session
  std::size_t link_base = 0;   ///< first index of this session's 2k links
  std::uint64_t seed = 0;      ///< carried inside player checkpoints
  std::uint64_t last_phase = 0;
  bool crash_tolerance = false;
  bool closed = false;           ///< close_session ran; `result` is final
  bool driver_released = false;  ///< no longer counted in live_drivers_

  /// Error containment: a failed session records its error here and stops,
  /// without touching the global error that aborts the whole servicer.
  /// Other sessions keep draining.
  std::optional<NetErrorKind> error_kind;
  std::string error_what;

  // Crash-controller state (the per-session half of net/recovery.h).
  std::uint64_t crashes = 0;
  std::uint64_t replayed = 0;  ///< charges re-sealed by recovery replay
  FaultPlan faults;            ///< this session's plan (crash schedule + link faults)
  CheckpointStore ckpts{0};
  /// Per (player, phase) enqueued-charge counts — the crash grammar's
  /// offset coordinate (net/fault.h).
  std::vector<std::vector<std::uint64_t>> charge_counts;

  WireStats result;  ///< folded at close_session

  [[nodiscard]] bool failed() const noexcept { return error_kind.has_value(); }
};

}  // namespace tft::net
