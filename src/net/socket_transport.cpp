#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>

#include "net/error.h"
#include "net/transport.h"

/// LoopbackSocketTransport: every link is a real TCP connection on
/// 127.0.0.1 — frames cross the kernel's loopback stack, not just a mutex.
/// Data flows client->server and acknowledgements server->client over the
/// same connection; both file descriptors are non-blocking and all waits go
/// through poll(2) so Pipe deadlines are honored exactly like ByteRing's.

namespace tft::net {

namespace {

[[noreturn]] void throw_errno(NetErrorKind kind, const char* what) {
  throw NetError(kind, std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno(NetErrorKind::kSetup, "fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Shrink both kernel buffers (clamped upward to the kernel floor; even the
/// floor forces a multi-KB frame through several short writes/reads).
void set_buffer_sizes(int fd, int bytes) {
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

/// Remaining deadline in milliseconds for poll(2); 0 when already past.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>(left.count(), 60'000));
}

/// One TCP connection shared by a link's data and ack pipes.
struct SocketDuplex {
  int client_fd = -1;  // connect() side: writes data, reads acks
  int server_fd = -1;  // accept() side: reads data, writes acks
  std::atomic<bool> closed{false};

  void shutdown_all() noexcept {
    if (!closed.exchange(true)) {
      (void)::shutdown(client_fd, SHUT_RDWR);
      (void)::shutdown(server_fd, SHUT_RDWR);
    }
  }

  ~SocketDuplex() {
    shutdown_all();
    if (client_fd >= 0) (void)::close(client_fd);
    if (server_fd >= 0) (void)::close(server_fd);
  }
};

class SocketPipe final : public Pipe {
 public:
  SocketPipe(std::shared_ptr<SocketDuplex> duplex, int write_fd, int read_fd)
      : duplex_(std::move(duplex)), write_fd_(write_fd), read_fd_(read_fd) {}

  void write(std::span<const std::uint8_t> bytes, Clock::time_point deadline) override {
    // Loop on short writes: with a shrunken SO_SNDBUF a frame routinely
    // needs several send() calls, each one landing a partial chunk.
    while (!bytes.empty()) {
      if (duplex_->closed.load(std::memory_order_relaxed)) {
        throw NetError(NetErrorKind::kClosed, "socket write: closed");
      }
      const ssize_t n =
          ::send(write_fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n > 0) {
        bytes = bytes.subspan(static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{write_fd_, POLLOUT, 0};
        const int rc = ::poll(&p, 1, remaining_ms(deadline));
        if (rc < 0 && errno != EINTR) {
          throw NetError(NetErrorKind::kClosed, std::string("socket poll: ") + std::strerror(errno));
        }
        if (rc == 0 && Clock::now() >= deadline) {
          throw NetError(NetErrorKind::kTimeout, "socket write: buffer full past deadline");
        }
        continue;  // writable, EINTR, or a deadline not actually reached
      }
      if (n < 0 && errno == EINTR) continue;
      throw NetError(NetErrorKind::kClosed, std::string("socket write: ") + std::strerror(errno));
    }
  }

  std::size_t write_some(std::span<const std::uint8_t> bytes) override {
    for (;;) {
      if (duplex_->closed.load(std::memory_order_relaxed)) {
        throw NetError(NetErrorKind::kClosed, "socket write: closed");
      }
      const ssize_t n = ::send(write_fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      if (errno == EINTR) continue;
      throw NetError(NetErrorKind::kClosed, std::string("socket write: ") + std::strerror(errno));
    }
  }

  int read_some(std::span<std::uint8_t> buf, Clock::time_point deadline) override {
    if (buf.empty()) return 0;
    for (;;) {
      const ssize_t n = ::recv(read_fd_, buf.data(), buf.size(), 0);
      if (n > 0) return static_cast<int>(n);
      if (n == 0) return -1;  // orderly shutdown, stream drained
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (duplex_->closed.load(std::memory_order_relaxed)) return -1;
        pollfd p{read_fd_, POLLIN, 0};
        const int rc = ::poll(&p, 1, remaining_ms(deadline));
        if (rc < 0 && errno != EINTR) return -1;
        if (rc == 0 && Clock::now() >= deadline) return 0;  // deadline tick
        continue;  // readable, EINTR, or poll rounded the deadline down
      }
      if (errno == EINTR) continue;
      return -1;  // reset by peer etc.: treat as closed
    }
  }

  void close() override { duplex_->shutdown_all(); }

 private:
  std::shared_ptr<SocketDuplex> duplex_;
  int write_fd_;
  int read_fd_;
};

int make_loopback_listener(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    (void)::close(fd);
    return -1;
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

}  // namespace

LoopbackSocketTransport::LoopbackSocketTransport(int socket_buffer_bytes)
    : socket_buffer_bytes_(socket_buffer_bytes) {
  listen_fd_ = make_loopback_listener(port_);
  if (listen_fd_ < 0) {
    throw_errno(NetErrorKind::kSetup, "loopback listener");
  }
  if (socket_buffer_bytes_ > 0) {
    // Buffer sizes must be in place *before* the handshake: the TCP window
    // scale is negotiated at SYN time from the receive buffer, and shrinking
    // SO_RCVBUF on an established connection can wedge the stream once the
    // originally-advertised window's worth of data is in flight. Accepted
    // sockets inherit these from the listener; the client side is set in
    // make_link before connect().
    set_buffer_sizes(listen_fd_, socket_buffer_bytes_);
  }
}

LoopbackSocketTransport::~LoopbackSocketTransport() {
  if (listen_fd_ >= 0) (void)::close(listen_fd_);
}

bool LoopbackSocketTransport::available() noexcept {
  std::uint16_t port = 0;
  const int fd = make_loopback_listener(port);
  if (fd < 0) return false;
  (void)::close(fd);
  return true;
}

Link LoopbackSocketTransport::make_link() {
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client < 0) throw_errno(NetErrorKind::kSetup, "socket");
  if (socket_buffer_bytes_ > 0) {
    set_buffer_sizes(client, socket_buffer_bytes_);  // before connect(): see ctor
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    (void)::close(client);
    throw_errno(NetErrorKind::kSetup, "connect(127.0.0.1)");
  }

  // The handshake already completed (loopback), so accept is immediate;
  // poll defensively so a broken stack cannot hang link construction.
  pollfd p{listen_fd_, POLLIN, 0};
  if (::poll(&p, 1, 5'000) <= 0) {
    (void)::close(client);
    throw NetError(NetErrorKind::kSetup, "accept: connection did not arrive");
  }
  const int server = ::accept(listen_fd_, nullptr, nullptr);
  if (server < 0) {
    (void)::close(client);
    throw_errno(NetErrorKind::kSetup, "accept");
  }

  auto duplex = std::make_shared<SocketDuplex>();
  duplex->client_fd = client;
  duplex->server_fd = server;
  set_nonblocking(client);
  set_nonblocking(server);
  set_nodelay(client);
  set_nodelay(server);

  Link link;
  link.data = std::make_unique<SocketPipe>(duplex, client, server);
  link.ack = std::make_unique<SocketPipe>(duplex, server, client);
  return link;
}

}  // namespace tft::net
