#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

/// \file vclock_hub.h
/// Cross-shard quiescence barrier for the sharded servicer's virtual clock.
///
/// With one shard the servicer advances `vnow_us_` the moment its own sweep
/// makes no progress and every driver is blocked — quiescence is a local
/// predicate. With N shards the clock is global: a shard that looks idle
/// must not jump time while a sibling shard still has deliverable frames,
/// or retransmit counts would depend on shard placement. The hub restores
/// the single-shard rule: time advances only when EVERY shard has published
/// local quiescence, and it jumps to the minimum actionable deadline across
/// all shards — the same value the monolithic servicer would have picked,
/// because deadlines of distinct sessions never interact beyond the max/min
/// (each session's retransmit decisions depend only on its own frame fates;
/// see PROTOCOLS.md "Sharded servicer").
///
/// Locking: strictly shard-lock → hub-lock. The hub never takes a shard
/// lock; it wakes sleeping shards by notifying their condvars without the
/// corresponding mutex, so hub-mode shard waits are bounded
/// (`wait_for` + generation check) rather than open-ended — a missed
/// notify costs microseconds of latency and zero determinism.
///
/// A shard that exits its run loop (stop + drained) publishes `exit`, a
/// permanently-idle state, so stragglers can still advance the clock.

namespace tft::net {

class VClockHub {
 public:
  explicit VClockHub(std::size_t num_shards) : slots_(num_shards) {}

  /// Register the condvar the hub should poke when shard `i` must re-check
  /// the clock. Called once per shard before any poller starts.
  void attach(std::size_t i, std::condition_variable* cv) { slots_[i].cv = cv; }

  [[nodiscard]] std::uint64_t now() const noexcept {
    return vnow_.load(std::memory_order_acquire);
  }

  /// Bumped on every clock advance; sleeping shards watch it to detect an
  /// advance that happened while they held no lock.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return gen_.load(std::memory_order_acquire);
  }

  /// Shard `i` reports local quiescence (drivers blocked or none live, ring
  /// drained, sweep made no progress). `deadline` is its earliest actionable
  /// retransmit/fail deadline, if any. Returns true iff THIS call advanced
  /// the global clock — the caller must then retransmit at `now()`. When it
  /// returns false the shard should sleep and re-check `generation()`.
  bool publish_idle(std::size_t i, bool has_deadline, std::uint64_t deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    Slot& s = slots_[i];
    s.idle = true;
    s.has_deadline = has_deadline;
    s.deadline = deadline;
    for (const Slot& t : slots_) {
      if (!t.idle && !t.exited) return false;
    }
    std::uint64_t earliest = std::numeric_limits<std::uint64_t>::max();
    for (const Slot& t : slots_) {
      if (!t.exited && t.has_deadline && t.deadline < earliest) earliest = t.deadline;
    }
    if (earliest == std::numeric_limits<std::uint64_t>::max()) return false;
    std::uint64_t now = vnow_.load(std::memory_order_relaxed);
    if (earliest > now) now = earliest;
    vnow_.store(now, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (slots_[j].exited) continue;
      slots_[j].idle = false;
      if (j != i && slots_[j].cv != nullptr) slots_[j].cv->notify_all();
    }
    return true;
  }

  /// Shard `i` woke up with real work (ring entries, driver activity); it is
  /// no longer quiescent.
  void publish_active(std::size_t i) {
    std::unique_lock<std::mutex> lock(mu_);
    slots_[i].idle = false;
  }

  /// Shard `i`'s poller is exiting: treat it as idle-forever with no
  /// deadlines so it never blocks the remaining shards.
  void publish_exit(std::size_t i) {
    std::unique_lock<std::mutex> lock(mu_);
    slots_[i].exited = true;
    slots_[i].idle = true;
    slots_[i].has_deadline = false;
    // The departing shard may have been the lone holdout; give the others a
    // chance to re-evaluate quiescence.
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (j != i && !slots_[j].exited && slots_[j].cv != nullptr) slots_[j].cv->notify_all();
    }
  }

 private:
  struct Slot {
    bool idle = false;
    bool has_deadline = false;
    bool exited = false;
    std::uint64_t deadline = 0;
    std::condition_variable* cv = nullptr;
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> vnow_{0};
  std::atomic<std::uint64_t> gen_{0};
};

}  // namespace tft::net
