#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

/// \file transport.h
/// Byte-stream transports for the executed runtime.
///
/// A `Pipe` is one direction of a link: an ordered, bounded byte stream
/// with blocking writes (backpressure) and deadline-aware reads. A `Link`
/// bundles the data direction with the reverse acknowledgement direction.
/// `Transport` mints links; the two implementations —
/// `InProcTransport` (lock-protected SPSC rings + condvars) and
/// `LoopbackSocketTransport` (TCP on 127.0.0.1) — sit behind the same API,
/// so the ARQ layer, the fault injector and the protocols above never know
/// which wire they are on.

namespace tft::net {

using Clock = std::chrono::steady_clock;

/// One direction of a link. Single producer, single consumer.
class Pipe {
 public:
  virtual ~Pipe() = default;

  /// Write all of `bytes`, blocking while the receiving buffer is full.
  /// Throws NetError(kClosed) if the pipe closes first, NetError(kTimeout)
  /// if the deadline passes with the buffer still full.
  virtual void write(std::span<const std::uint8_t> bytes, Clock::time_point deadline) = 0;

  /// Read up to `buf.size()` bytes. Returns the count read (> 0), 0 if the
  /// deadline passed with nothing available, or -1 once the pipe is closed
  /// *and* drained (buffered bytes are always delivered first).
  virtual int read_some(std::span<std::uint8_t> buf, Clock::time_point deadline) = 0;

  /// Write as many of `bytes` as fit *right now* without blocking; returns
  /// the count written (possibly 0 when the buffer is full). Throws
  /// NetError(kClosed) on a closed pipe. The shared servicer's only write
  /// path: a single thread draining every link must never block on one.
  virtual std::size_t write_some(std::span<const std::uint8_t> bytes) {
    write(bytes, Clock::now() + std::chrono::seconds(5));
    return bytes.size();
  }

  /// Close both ends: pending and future writers throw kClosed, readers
  /// drain what is buffered and then see -1. Idempotent, thread-safe.
  virtual void close() = 0;
};

/// A directed link: framed data one way, acknowledgements the other.
struct Link {
  std::unique_ptr<Pipe> data;  ///< sender -> receiver frame bytes
  std::unique_ptr<Pipe> ack;   ///< receiver -> sender acknowledgement bytes

  void close() {
    if (data) data->close();
    if (ack) ack->close();
  }
};

class Transport {
 public:
  virtual ~Transport() = default;
  [[nodiscard]] virtual Link make_link() = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Bounded SPSC byte ring: one mutex + two condvars per direction. The
/// in-process wire — bytes are memcpy'd through a fixed circular buffer,
/// so a frame really is serialized, chunked and reassembled even when both
/// actors live in one process.
class ByteRing final : public Pipe {
 public:
  explicit ByteRing(std::size_t capacity);

  void write(std::span<const std::uint8_t> bytes, Clock::time_point deadline) override;
  int read_some(std::span<std::uint8_t> buf, Clock::time_point deadline) override;
  std::size_t write_some(std::span<const std::uint8_t> bytes) override;
  void close() override;

 private:
  std::mutex mu_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::vector<std::uint8_t> ring_;
  std::size_t head_ = 0;  // next byte to read
  std::size_t size_ = 0;  // bytes buffered
  bool closed_ = false;
};

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::size_t ring_capacity = std::size_t{1} << 16)
      : ring_capacity_(ring_capacity) {}

  [[nodiscard]] Link make_link() override;
  [[nodiscard]] const char* name() const noexcept override { return "inproc"; }

 private:
  std::size_t ring_capacity_;
};

/// TCP over 127.0.0.1: one real kernel socket pair per link (data flows
/// client->server, acks server->client on the same connection, Nagle off).
/// Construction throws NetError(kSetup) when loopback networking is
/// unavailable; tests skip in that case.
class LoopbackSocketTransport final : public Transport {
 public:
  /// `socket_buffer_bytes` > 0 shrinks SO_SNDBUF/SO_RCVBUF on every link
  /// (clamped upward by the kernel minimum) — the partial-write/short-read
  /// regression surface; 0 keeps the kernel defaults.
  explicit LoopbackSocketTransport(int socket_buffer_bytes = 0);
  ~LoopbackSocketTransport() override;

  [[nodiscard]] Link make_link() override;
  [[nodiscard]] const char* name() const noexcept override { return "socket"; }

  /// True iff a LoopbackSocketTransport can be constructed here.
  [[nodiscard]] static bool available() noexcept;

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int socket_buffer_bytes_ = 0;
};

}  // namespace tft::net
