#include "net/frame.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "comm/wire.h"
#include "net/error.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft::net {

namespace {

constexpr std::uint64_t kMagic = 0xF7A7;   // "tft transport" (v1: session 0)
constexpr std::uint64_t kMagic2 = 0xF7B5;  // v2: session id follows the magic
constexpr std::uint32_t kMagicBits = 16;
constexpr std::uint32_t kTypeBits = 3;

/// Slice-by-8 CRC tables: table[0] is the classic byte-at-a-time table,
/// table[k][i] advances a byte through k+1 zero bytes, so eight input bytes
/// fold into the running CRC with eight independent table lookups per
/// iteration instead of eight dependent ones.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrcTables = make_crc_tables();

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::size_t payload_bytes(std::uint64_t payload_bits) {
  return static_cast<std::size_t>((payload_bits + 7) / 8);
}

/// Header bits as the serialized body carries them.
BitWriter write_header(const FrameHeader& h) {
  BitWriter w;
  if (h.session == 0) {
    // Reserved id 0: the v1 layout, bit for bit — golden frames and every
    // single-session byte stream are unchanged by the session extension.
    w.put_bits(kMagic, kMagicBits);
  } else {
    w.put_bits(kMagic2, kMagicBits);
    w.put_gamma(h.session);
  }
  w.put_bits(static_cast<std::uint64_t>(h.type), kTypeBits);
  w.put_gamma(h.src);
  w.put_gamma(h.dst);
  w.put_gamma(h.seq);
  w.put_gamma(h.phase);
  w.put_gamma(h.payload_bits);
  return w;
}

/// Decode one body into `out`. Returns false (corrupt) instead of throwing:
/// the parser treats every malformed body as line noise to resynchronize
/// past, not as a caller error.
bool decode_body(std::span<const std::uint8_t> body, Frame& out) {
  try {
    BitReader r(body, body.size() * std::uint64_t{8});
    const std::uint64_t magic = r.get_bits(kMagicBits);
    if (magic == kMagic) {
      out.header.session = 0;
    } else if (magic == kMagic2) {
      const std::uint64_t session = r.get_gamma();
      // A v2 header claiming session 0 is corrupt: id 0 must use the v1
      // magic (canonical encoding — one byte string per frame).
      if (session == 0 || session > UINT32_MAX) return false;
      out.header.session = static_cast<std::uint32_t>(session);
    } else {
      return false;
    }
    const std::uint64_t type = r.get_bits(kTypeBits);
    if (type > static_cast<std::uint64_t>(FrameType::kResume)) return false;
    out.header.type = static_cast<FrameType>(type);
    const std::uint64_t src = r.get_gamma();
    const std::uint64_t dst = r.get_gamma();
    const std::uint64_t seq = r.get_gamma();
    if (src > UINT32_MAX || dst > UINT32_MAX || seq > UINT32_MAX) return false;
    out.header.src = static_cast<std::uint32_t>(src);
    out.header.dst = static_cast<std::uint32_t>(dst);
    out.header.seq = static_cast<std::uint32_t>(seq);
    out.header.phase = r.get_gamma();
    out.header.payload_bits = r.get_gamma();
    if (out.header.payload_bits > kMaxPayloadBits) return false;
    const std::size_t header_bytes = static_cast<std::size_t>((r.position() + 7) / 8);
    const std::size_t want = payload_bytes(out.header.payload_bits);
    if (body.size() != header_bytes + want) return false;
    out.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(header_bytes), body.end());
    // Pad bits beyond payload_bits must be zero (canonical encoding).
    if (const std::uint32_t pad = static_cast<std::uint32_t>(want * 8 - out.header.payload_bits);
        pad != 0 && !out.payload.empty() &&
        (out.payload.back() & ((std::uint8_t{1} << pad) - 1)) != 0) {
      return false;
    }
    return true;
  } catch (const WireError&) {
    return false;
  }
}

/// Filler stream state for a header (pure function of the addressing,
/// session-folded so concurrent sessions never share a stream).
std::uint64_t filler_seed(const FrameHeader& h) {
  return fold_session(mix_hash((std::uint64_t{h.src} << 32) | h.dst, h.seq, h.payload_bits),
                      h.session);
}

void append_filler_bits(BitWriter& w, std::uint64_t seed, std::uint64_t bits) {
  std::uint64_t state = seed;
  while (bits > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(std::min<std::uint64_t>(bits, 64));
    w.put_bits(splitmix64(state) >> (64 - take), take);
    bits -= take;
  }
}

}  // namespace

std::uint64_t fold_session(std::uint64_t seed, std::uint32_t session) noexcept {
  // Identity for session 0 — the pre-session keying, bit for bit. The tag
  // keeps the fold out of the hash domains the fault classes already use.
  return session == 0 ? seed : mix_hash(seed, 0x5E55, session);
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t crc) noexcept {
  crc = ~crc;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  // Byte loads composed into u32s keep the 8-byte hot loop endian-safe.
  while (n >= 8) {
    const std::uint32_t lo = (static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24)) ^
                             crc;
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    crc = kCrcTables[7][lo & 0xFF] ^ kCrcTables[6][(lo >> 8) & 0xFF] ^
          kCrcTables[5][(lo >> 16) & 0xFF] ^ kCrcTables[4][lo >> 24] ^
          kCrcTables[3][hi & 0xFF] ^ kCrcTables[2][(hi >> 8) & 0xFF] ^
          kCrcTables[1][(hi >> 16) & 0xFF] ^ kCrcTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kCrcTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void serialize_frame_into(const Frame& f, std::vector<std::uint8_t>& out) {
  if (f.header.payload_bits > kMaxPayloadBits) {
    throw NetError(NetErrorKind::kProtocol, "frame payload exceeds kMaxPayloadBits");
  }
  if (f.payload.size() != payload_bytes(f.header.payload_bits)) {
    throw NetError(NetErrorKind::kProtocol, "frame payload size disagrees with payload_bits");
  }
  const BitWriter header = write_header(f.header);
  const std::size_t body_len = header.bytes().size() + f.payload.size();

  out.clear();
  out.reserve(body_len + 8);
  put_u32_le(out, static_cast<std::uint32_t>(body_len));
  out.insert(out.end(), header.bytes().begin(), header.bytes().end());
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  put_u32_le(out, crc32(std::span<const std::uint8_t>(out.data() + 4, body_len)));
}

std::vector<std::uint8_t> serialize_frame(const Frame& f) {
  std::vector<std::uint8_t> wire;
  serialize_frame_into(f, wire);
  return wire;
}

std::size_t frame_wire_bytes(const Frame& f) {
  const BitWriter header = write_header(f.header);
  return 8 + header.bytes().size() + f.payload.size();
}

std::vector<std::uint8_t> make_filler_payload(const FrameHeader& h) {
  BitWriter w;
  append_filler_bits(w, filler_seed(h), h.payload_bits);
  return w.bytes();
}

bool verify_filler_payload(const Frame& f) {
  return f.payload == make_filler_payload(f.header);
}

Frame make_relay_frame(std::uint32_t src, std::uint32_t seq, std::size_t k,
                       std::size_t recipient, std::uint64_t message_bits) {
  Frame f;
  f.header.type = FrameType::kRelay;
  f.header.src = src;
  f.header.dst = static_cast<std::uint32_t>(k);  // relays always go to the coordinator
  f.header.seq = seq;
  f.header.payload_bits = message_bits + vertex_bits(static_cast<std::uint64_t>(k));
  BitWriter w;
  w.put_bits(recipient, vertex_bits(static_cast<std::uint64_t>(k)));
  append_filler_bits(w, filler_seed(f.header), message_bits);
  f.payload = w.bytes();
  return f;
}

std::size_t decode_relay_recipient(const Frame& f, std::size_t k) {
  const std::uint32_t width = vertex_bits(static_cast<std::uint64_t>(k));
  if (f.header.type != FrameType::kRelay || f.header.payload_bits < width) {
    throw NetError(NetErrorKind::kProtocol, "not a relay frame");
  }
  BitReader r(f.payload, f.header.payload_bits);
  const std::uint64_t to = r.get_bits(width);
  if (to >= k) {
    throw NetError(NetErrorKind::kCorrupt, "relay recipient outside [0, k)");
  }
  return static_cast<std::size_t>(to);
}

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  // Compact lazily so long streams do not grow the buffer unboundedly.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

bool FrameParser::next(Frame& out) {
  for (;;) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4) return false;
    const std::uint32_t body_len = get_u32_le(buf_.data() + pos_);
    if (body_len > kMaxBodyBytes) {
      // A corrupt length prefix cannot be resynchronized past (we no longer
      // know where the next frame starts); drop the buffered stream. The
      // fault injector never corrupts prefixes, so reaching here means a
      // genuinely broken peer.
      ++corrupt_;
      buf_.clear();
      pos_ = 0;
      return false;
    }
    if (avail < std::size_t{4} + body_len + 4) return false;
    const std::span<const std::uint8_t> body(buf_.data() + pos_ + 4, body_len);
    const std::uint32_t want_crc = get_u32_le(buf_.data() + pos_ + 4 + body_len);
    pos_ += std::size_t{4} + body_len + 4;
    if (crc32(body) != want_crc || !decode_body(body, out)) {
      ++corrupt_;
      continue;  // resynchronized by the length prefix; try the next frame
    }
    return true;
  }
}

}  // namespace tft::net
