#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file checkpoint.h
/// Lightweight player checkpoints for crash-fault tolerance.
///
/// A player's entire protocol-visible transport state in the paper's models
/// is tiny — which phase it is in, how far its ARQ lanes have advanced, and
/// the per-phase bit/message tallies the accounting contract audits. So a
/// checkpoint is tens of bytes (FTPregel-style *lightweight* checkpointing:
/// persist compact state, regenerate everything bulky deterministically).
///
/// Barrier rule: a checkpoint is taken at every phase barrier — the
/// SharedServicer flush that drains every queue, window and out-buffer end
/// to end. At that instant no frame is in flight anywhere, so the snapshot
/// below fully determines the link-pair state, and recovery is the replay
/// of the charge log accumulated since (net/recovery.h): the frame stream
/// is a pure function of the charge stream, so the replayed bytes are
/// bit-identical to what the dead incarnation sent.
///
/// The encoding is canonical (gamma-coded counters, fixed-width seed, zero
/// pad bits, no trailing slack), so `encode(decode(bytes)) == bytes` holds
/// for every valid byte string — the serialization property test's claim.

namespace tft::net {

/// One directed lane's barrier snapshot: both halves of the link, because
/// recovery needs the pair — the respawned player restores its own half and
/// the surviving coordinator rewinds its matching lane to the same barrier.
struct LinkCheckpoint {
  std::uint32_t next_seq = 0;       ///< sender: next unassigned sequence number
  std::uint32_t next_expected = 0;  ///< receiver: next in-order sequence number
  std::uint64_t frames = 0;         ///< receiver tallies at the barrier…
  std::uint64_t messages = 0;
  std::uint64_t payload_bits = 0;
  std::vector<std::uint64_t> phase_bits;  ///< …the accounting contract's columns

  [[nodiscard]] bool operator==(const LinkCheckpoint&) const = default;
};

/// The compact serializable whole-player state written at every barrier:
/// identity, seed, phase, and the two lanes (up = player -> coordinator,
/// down = coordinator -> player).
struct PlayerCheckpoint {
  std::uint32_t player = 0;
  std::uint64_t seed = 0;   ///< session seed (NetConfig::session_seed), carried
                            ///< so a respawned process can rebuild its inputs
  std::uint64_t phase = 0;  ///< the phase this checkpoint resumes into
  LinkCheckpoint up;
  LinkCheckpoint down;

  [[nodiscard]] bool operator==(const PlayerCheckpoint&) const = default;
};

/// Canonical byte encoding (version tag, gamma counters, 64-bit seed,
/// zero-padded to a byte boundary).
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(const PlayerCheckpoint& ck);

/// Inverse of encode_checkpoint. Throws NetError(kCorrupt) on a truncated,
/// non-canonical or trailing-garbage input — a checkpoint that does not
/// round-trip must never silently seed a recovery.
[[nodiscard]] PlayerCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// The per-session checkpoint store: the latest encoded checkpoint of every
/// player, refreshed at each phase barrier. This is the artifact a real
/// deployment would persist; recovery decodes these bytes (not live memory),
/// so the serialized form is load-bearing on every recovered run.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::size_t num_players) : blobs_(num_players) {}

  void put(std::uint32_t player, std::vector<std::uint8_t> bytes) {
    blobs_.at(player) = std::move(bytes);
  }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes(std::uint32_t player) const {
    return blobs_.at(player);
  }
  [[nodiscard]] std::size_t num_players() const noexcept { return blobs_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> blobs_;
};

}  // namespace tft::net
