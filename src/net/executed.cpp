#include "net/executed.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "net/error.h"
#include "util/bits.h"

namespace tft::net {

namespace {

/// One coordinator->player forwarding lane. The mutex serializes forwards:
/// the coordinator's per-player servicer actors run concurrently and two of
/// them may relay to the same recipient at once.
struct DownLane {
  DownLane(Transport& transport, std::uint32_t link_id, std::uint32_t coord, std::uint32_t player,
           const NetConfig& cfg)
      : link(transport.make_link()),
        sender(link, link_id, cfg.retry, cfg.faults),
        servicer(link, coord, player) {}

  Link link;
  ReliableSender sender;
  LinkServicer servicer;
  std::mutex mu;
  std::thread thread;
};

struct UpLane {
  UpLane(Transport& transport, std::uint32_t link_id, std::uint32_t player, std::uint32_t coord,
         const NetConfig& cfg, std::function<void(const Frame&)> deliver)
      : link(transport.make_link()),
        sender(link, link_id, cfg.retry, cfg.faults),
        servicer(link, player, coord, std::move(deliver)) {}

  Link link;
  ReliableSender sender;
  LinkServicer servicer;
  std::thread thread;
};

}  // namespace

RelayReport relay_messages(std::size_t k, std::uint64_t universe_n,
                           std::span<const MpMessage> messages, const NetConfig& cfg) {
  if (cfg.transport == TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup, "relay_messages needs an executed transport");
  }
  if (k < 2) {
    throw NetError(NetErrorKind::kSetup, "message passing needs at least two players");
  }
  const std::uint32_t coord = static_cast<std::uint32_t>(k);
  const std::uint64_t header_bits = vertex_bits(static_cast<std::uint64_t>(k));
  auto transport = make_transport(cfg);

  std::vector<std::unique_ptr<DownLane>> downs;
  downs.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    downs.push_back(std::make_unique<DownLane>(*transport, coord + 1 + static_cast<std::uint32_t>(j),
                                               coord, static_cast<std::uint32_t>(j), cfg));
  }

  // The coordinator actor: each upstream servicer decodes the recipient id
  // out of the relay frame and forwards the payload downstream — a real
  // execution of the Section 2 simulation.
  const auto forward = [&](const Frame& fr) {
    const std::size_t to = decode_relay_recipient(fr, k);
    DownLane& lane = *downs[to];
    const std::lock_guard lock(lane.mu);
    Frame fwd;
    fwd.header.type = FrameType::kData;
    fwd.header.src = coord;
    fwd.header.dst = static_cast<std::uint32_t>(to);
    fwd.header.seq = lane.sender.next_seq();
    fwd.header.payload_bits = fr.header.payload_bits - header_bits;
    fwd.payload = make_filler_payload(fwd.header);
    lane.sender.send(std::move(fwd));
  };

  std::vector<std::unique_ptr<UpLane>> ups;
  ups.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    ups.push_back(std::make_unique<UpLane>(*transport, static_cast<std::uint32_t>(j),
                                           static_cast<std::uint32_t>(j), coord, cfg, forward));
  }

  for (auto& d : downs) d->thread = std::thread([&lane = *d] { lane.servicer.run(); });
  for (auto& u : ups) u->thread = std::thread([&lane = *u] { lane.servicer.run(); });

  const auto shutdown = [&]() noexcept {
    for (auto& u : ups) u->link.close();
    for (auto& u : ups) {
      if (u->thread.joinable()) u->thread.join();
    }
    // Up servicers (and their forwarding hooks) are quiescent now; the down
    // lanes can drain and close.
    for (auto& d : downs) d->link.close();
    for (auto& d : downs) {
      if (d->thread.joinable()) d->thread.join();
    }
  };

  MessagePassingSimulator sim(k, universe_n);
  try {
    for (const MpMessage& msg : messages) {
      sim.deliver(msg);  // validates indices; throws on self/out-of-range
      UpLane& lane = *ups[msg.from];
      lane.sender.send(make_relay_frame(static_cast<std::uint32_t>(msg.from),
                                        lane.sender.next_seq(), k, msg.to, msg.bits));
    }
  } catch (...) {
    shutdown();
    throw;
  }
  shutdown();

  RelayReport report;
  report.mp_bits = sim.mp_bits();
  report.simulated_bits = sim.coordinator_bits();

  WireStats& w = report.wire;
  w.up_bits.resize(k);
  w.down_bits.resize(k);
  w.up_msgs.resize(k);
  w.down_msgs.resize(k);
  std::optional<std::string> failure;
  const auto fold = [&](const ReceiverStats& r, const SenderStats& s, std::uint64_t& bits_slot,
                        std::uint64_t& msgs_slot) {
    bits_slot += r.payload_bits;
    msgs_slot += r.frames;
    if (w.phase_bits.size() < r.phase_bits.size()) w.phase_bits.resize(r.phase_bits.size());
    for (std::size_t ph = 0; ph < r.phase_bits.size(); ++ph) w.phase_bits[ph] += r.phase_bits[ph];
    w.wire_bytes += s.wire_bytes;
    w.retransmissions += s.retransmissions;
    w.duplicates += r.duplicates + s.duplicates_sent;
    w.corrupt_frames += r.corrupt;
    w.acks += s.acks_received;
  };
  for (std::size_t j = 0; j < k; ++j) {
    fold(ups[j]->servicer.stats(), ups[j]->sender.stats(), w.up_bits[j], w.up_msgs[j]);
    fold(downs[j]->servicer.stats(), downs[j]->sender.stats(), w.down_bits[j], w.down_msgs[j]);
    if (!failure && ups[j]->servicer.error()) failure = ups[j]->servicer.error();
    if (!failure && downs[j]->servicer.error()) failure = downs[j]->servicer.error();
  }
  if (failure) {
    throw NetError(NetErrorKind::kProtocol, "relay servicer failed: " + *failure);
  }

  report.measured_bits = w.payload_bits();
  report.measured_overhead =
      report.mp_bits > 0
          ? static_cast<double>(report.measured_bits) / static_cast<double>(report.mp_bits)
          : 0.0;
  std::uint64_t min_payload = UINT64_MAX;
  for (const MpMessage& msg : messages) min_payload = std::min(min_payload, msg.bits);
  report.bound = messages.empty()
                     ? 0.0
                     : MessagePassingSimulator::overhead_bound(min_payload, k);
  return report;
}

}  // namespace tft::net
