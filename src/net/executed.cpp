#include "net/executed.h"

#include <algorithm>
#include <memory>

#include "net/error.h"
#include "net/servicer.h"
#include "util/bits.h"

namespace tft::net {

RelayReport relay_messages(std::size_t k, std::uint64_t universe_n,
                           std::span<const MpMessage> messages, const NetConfig& cfg) {
  if (cfg.transport == TransportKind::kSim) {
    throw NetError(NetErrorKind::kSetup, "relay_messages needs an executed transport");
  }
  if (k < 2) {
    throw NetError(NetErrorKind::kSetup, "message passing needs at least two players");
  }
  if (cfg.virtual_clock && cfg.transport != TransportKind::kInProc) {
    throw NetError(NetErrorKind::kSetup,
                   "virtual clock needs the in-proc transport (kernel socket buffers "
                   "are invisible to the logical clock)");
  }
  const std::uint32_t coord = static_cast<std::uint32_t>(k);
  const std::uint64_t header_bits = vertex_bits(static_cast<std::uint64_t>(k));
  auto transport = make_transport(cfg);

  SharedServicer::Options opts;
  opts.arq = cfg.arq;
  opts.retry = cfg.retry;
  opts.faults = cfg.faults;
  opts.virtual_clock = cfg.virtual_clock;
  opts.timed_recheck = cfg.transport == TransportKind::kSocket;
  SharedServicer servicer(opts);

  std::vector<Link> links;
  links.reserve(2 * k);
  for (std::size_t j = 0; j < 2 * k; ++j) links.push_back(transport->make_link());

  // The coordinator actor, run inline on the servicer thread: decode the
  // recipient id out of each relay frame and seal the forwarded payload
  // onto the matching downstream lane — a real execution of the Section 2
  // simulation. Relay lanes keep one message per frame (coalesce=false) so
  // the overhead measurement stays per-message.
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint32_t pj = static_cast<std::uint32_t>(j);
    servicer.add_link(&links[j], /*link_id=*/pj, /*src=*/pj, /*dst=*/coord,
                      /*coalesce=*/false, [&servicer, k, header_bits](const Frame& fr) {
                        const std::size_t to = decode_relay_recipient(fr, k);
                        servicer.enqueue_from_hook(k + to, fr.header.phase,
                                                   fr.header.payload_bits - header_bits);
                      });
  }
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint32_t pj = static_cast<std::uint32_t>(j);
    servicer.add_link(&links[k + j], /*link_id=*/coord + 1 + pj, /*src=*/coord, /*dst=*/pj,
                      /*coalesce=*/false);
  }
  servicer.start();

  MessagePassingSimulator sim(k, universe_n);
  try {
    for (const MpMessage& msg : messages) {
      sim.deliver(msg);  // validates indices; throws on self/out-of-range
      servicer.enqueue_relay(msg.from, k, msg.to, msg.bits);
    }
  } catch (...) {
    servicer.finish();
    throw;
  }
  servicer.finish();

  RelayReport report;
  report.mp_bits = sim.mp_bits();
  report.simulated_bits = sim.coordinator_bits();

  WireStats& w = report.wire;
  w.up_bits.resize(k);
  w.down_bits.resize(k);
  w.up_msgs.resize(k);
  w.down_msgs.resize(k);
  const auto fold = [&](std::size_t index, std::uint64_t& bits_slot, std::uint64_t& msgs_slot) {
    const SharedServicer::LinkStats& st = servicer.stats(index);
    const ReceiverStats& r = st.receiver;
    const SenderStats& s = st.sender;
    bits_slot += r.payload_bits;
    msgs_slot += r.messages;
    if (w.phase_bits.size() < r.phase_bits.size()) w.phase_bits.resize(r.phase_bits.size());
    for (std::size_t ph = 0; ph < r.phase_bits.size(); ++ph) w.phase_bits[ph] += r.phase_bits[ph];
    w.frames_delivered += r.frames;
    w.wire_bytes += s.wire_bytes;
    w.retransmissions += s.retransmissions;
    w.duplicates += r.duplicates + s.duplicates_sent;
    w.corrupt_frames += r.corrupt;
    w.acks += s.acks_received;
  };
  for (std::size_t j = 0; j < k; ++j) {
    fold(j, w.up_bits[j], w.up_msgs[j]);
    fold(k + j, w.down_bits[j], w.down_msgs[j]);
  }
  w.virtual_time_us = servicer.virtual_time_us();
  servicer.rethrow_error();

  report.measured_bits = w.payload_bits();
  report.measured_overhead =
      report.mp_bits > 0
          ? static_cast<double>(report.measured_bits) / static_cast<double>(report.mp_bits)
          : 0.0;
  std::uint64_t min_payload = UINT64_MAX;
  for (const MpMessage& msg : messages) min_payload = std::min(min_payload, msg.bits);
  report.bound = messages.empty()
                     ? 0.0
                     : MessagePassingSimulator::overhead_bound(min_payload, k);
  return report;
}

}  // namespace tft::net
