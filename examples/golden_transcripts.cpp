// Golden-transcript dump: replays each model's smallest-config protocol run
// per trial under the parallel trial engine and prints every transcript in
// trial order.
//
//   build/examples/example_golden_transcripts [--trials=6] [--seed=1]
//                                             [--threads=N]
//
// The output is a pure function of (--trials, --seed): per-trial transcripts
// are captured on the worker thread that ran the trial and printed serially
// in trial order afterwards, so `--threads=1` and `--threads=64` diff clean
// byte for byte. CI runs exactly that diff; a mismatch means a protocol
// drew randomness from a shared stream or leaked state across trials.

#include <cstdio>
#include <string>

#include "../bench/runner.h"
#include "../tests/golden_cases.h"
#include "comm/conformance.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  tft::bench::configure_threads(flags);
  const auto trials = static_cast<std::size_t>(flags.get_int("trials", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const auto dumps = tft::bench::run_trials(trials, seed, [](tft::Rng& rng, std::size_t t) {
    tft::TranscriptCapture capture;
    const auto cs = tft::golden::cases(rng());
    for (const auto& c : cs) c.run();
    std::string out;
    for (std::size_t i = 0; i < capture.runs().size(); ++i) {
      const auto& run = capture.runs()[i];
      out += "=== trial " + std::to_string(t) + " case " + cs[i].name + " ===\n";
      out += tft::format_transcript(run.model, run.transcript);
    }
    return out;
  });

  for (const auto& d : dumps) std::fputs(d.c_str(), stdout);
  return 0;
}
