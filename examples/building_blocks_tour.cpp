// Building-blocks tour: the Section 3.1 toolkit on a live sharded graph.
//
//   build/examples/example_building_blocks_tour [--n=4000] [--k=5] [--dup=2]
//
// Shows each primitive with its exact bit cost: edge queries, uniform
// random edges (duplication-unbiased), random walks, degree approximation
// under duplication (Theorem 3.1) vs the no-duplication shortcut
// (Lemma 3.2), distinct-element estimation, distributed BFS, and odd-cycle
// detection — the pieces from which the triangle testers are assembled.

#include <cstdio>

#include "core/building_blocks.h"
#include "core/degree_approx.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const auto n = static_cast<tft::Vertex>(flags.get_int("n", 4000));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 5));
  const double dup = flags.get_double("dup", 2.0);

  tft::Rng rng(flags.get_int("seed", 1));
  const tft::Graph g = tft::gen::chung_lu(n, 10.0, 2.4, rng);
  const auto players = tft::partition_duplicated(g, k, dup, rng);
  const tft::SharedRandomness sr(99);
  std::printf("graph: n=%u m=%zu, %zu players, duplication %.1fx\n\n", g.n(), g.num_edges(), k,
              dup);

  {  // Edge queries.
    tft::Transcript t(k, g.n());
    const bool a = tft::query_edge(players, t, tft::Edge(0, 1));
    const bool b = tft::query_edge(players, t, tft::Edge(n - 2, n - 1));
    std::printf("edge queries: (0,1)=%d, (n-2,n-1)=%d           [%llu bits, 2k per query]\n", a,
                b, static_cast<unsigned long long>(t.total_bits()));
  }

  {  // Uniform random edge, unbiased despite duplication.
    tft::Transcript t(k, g.n());
    const auto e = tft::random_edge(players, t, sr, tft::SharedTag{1, 0, 0});
    std::printf("uniform random edge: (%u,%u)                   [%llu bits]\n", e->u, e->v,
                static_cast<unsigned long long>(t.total_bits()));
  }

  {  // Random walk.
    tft::Transcript t(k, g.n());
    const auto path = tft::random_walk(players, t, sr, tft::SharedTag{2, 0, 0}, 0, 6);
    std::printf("random walk from hub 0:");
    for (const auto v : path) std::printf(" %u", v);
    std::printf("                    [%llu bits]\n", static_cast<unsigned long long>(t.total_bits()));
  }

  {  // Degree approximation: Theorem 3.1 vs Lemma 3.2.
    tft::Transcript t_dup(k, g.n());
    const auto est =
        tft::approx_degree(players, t_dup, sr, tft::SharedTag{3, 0, 0}, 0);
    const auto nodup_players = tft::partition_random(g, k, rng);
    tft::Transcript t_nodup(k, g.n());
    const auto est2 = tft::approx_degree_no_duplication(nodup_players, t_nodup, 0, 1.25);
    std::printf("degree of hub 0: true=%u, Thm3.1 est=%.0f [%llu bits], "
                "Lem3.2 est=%.0f [%llu bits]\n",
                g.degree(0), est.estimate,
                static_cast<unsigned long long>(t_dup.total_bits()), est2.estimate,
                static_cast<unsigned long long>(t_nodup.total_bits()));
  }

  {  // Distinct elements: |E| under duplication.
    tft::Transcript t(k, g.n());
    const auto est = tft::approx_distinct_edges(players, t, sr, tft::SharedTag{4, 0, 0});
    std::printf("distinct edges: true=%zu, est=%.0f              [%llu bits]\n", g.num_edges(),
                est.estimate, static_cast<unsigned long long>(t.total_bits()));
  }

  {  // Distributed BFS.
    tft::Transcript t(k, g.n());
    const auto bfs = tft::distributed_bfs(players, t, 0, 200);
    std::printf("BFS from 0: visited %zu vertices, max depth %u  [%llu bits]\n",
                bfs.order.size(), bfs.depth[bfs.order.back()],
                static_cast<unsigned long long>(t.total_bits()));
  }

  {  // Odd-cycle detection (bipartiteness of the component).
    tft::Transcript t(k, g.n());
    const auto cyc = tft::distributed_odd_cycle(players, t, 0);
    if (cyc) {
      std::printf("odd cycle of length %zu found (component not bipartite)\n", cyc->size());
    } else {
      std::printf("component of 0 is bipartite\n");
    }
  }
  return 0;
}
