// Streaming triangles: the Section 4.2.2 connection in action.
//
//   build/examples/example_streaming_triangles [--n=50000] [--triangles=4000]
//
// Feeds an edge stream to the bounded-memory one-pass detector, shows the
// memory/success tradeoff, then runs the generic streaming -> one-way
// reduction: players process their own segment and ship the detector state,
// so one-way communication = (#players - 1) x state size.

#include <cstdio>

#include "graph/generators.h"
#include "graph/partition.h"
#include "streaming/reduction.h"
#include "streaming/stream_model.h"
#include "streaming/streaming_triangle.h"
#include "util/bits.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const auto n = static_cast<tft::Vertex>(flags.get_int("n", 50000));
  const auto t = static_cast<std::uint32_t>(flags.get_int("triangles", 4000));
  tft::Rng rng(flags.get_int("seed", 5));

  const tft::Graph graph = tft::gen::planted_triangles(n, t, rng);
  std::printf("stream: %zu edges, %u planted triangles, random arrival order\n",
              graph.num_edges(), t);

  std::printf("\nmemory/success tradeoff (20 random orders each):\n");
  const std::uint64_t eb = tft::edge_bits(n);
  for (const std::uint64_t mem_edges : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    int ok = 0;
    constexpr int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
      tft::Rng order_rng(100 + trial);
      const auto stream = tft::shuffled_stream_of(graph, order_rng);
      const auto r = tft::run_streaming(stream, mem_edges * eb, 1000 + trial);
      ok += r.triangle ? 1 : 0;
    }
    std::printf("  memory %6llu edges (%8llu bits) -> success %2d/%d\n",
                static_cast<unsigned long long>(mem_edges),
                static_cast<unsigned long long>(mem_edges * eb), ok, kTrials);
  }

  std::printf("\nstreaming -> one-way reduction (4 players, AMS-style hand-off):\n");
  const auto players = tft::partition_random(graph, 4, rng);
  for (const std::uint64_t mem_edges : {256u, 4096u}) {
    const auto r = tft::one_way_via_streaming(players, mem_edges * eb, 77);
    std::printf("  budget %5llu edges: shipped %llu bits over 3 hand-offs, %s\n",
                static_cast<unsigned long long>(mem_edges),
                static_cast<unsigned long long>(r.communication_bits),
                r.triangle ? "triangle found" : "no triangle found");
  }

  std::printf(
      "\n(the paper's Omega(n^{1/4}) one-way bound therefore forces\n"
      " Omega(n^{1/4}) streaming memory for triangle-edge detection on mu)\n");
  return 0;
}
