// Quickstart: test triangle-freeness of a graph whose edges are scattered
// across k players, with one call.
//
//   build/examples/example_quickstart [--n=20000] [--k=6] [--triangles=1500]
//                                     [--transport=sim|inproc|socket]
//
// Demonstrates the top-level API: build a graph, partition it (with edge
// duplication, as the paper's model allows), run the degree-oblivious
// simultaneous tester, and inspect the certified witness. With an executed
// transport the same call runs as k+1 concurrent actors exchanging real
// serialized frames, and the bits on the wire are verified against the
// charged transcript.

#include <cstdio>
#include <string>

#include "core/tester.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "net/executed.h"
#include "net/runtime.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const auto n = static_cast<tft::Vertex>(flags.get_int("n", 20000));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 6));
  const auto t = static_cast<std::uint32_t>(flags.get_int("triangles", 1500));

  tft::Rng rng(flags.get_int("seed", 1));

  // A graph that is eps-far from triangle-free: t disjoint triangles plus
  // triangle-free noise.
  const tft::Graph graph = tft::gen::planted_triangles(n, t, rng);
  std::printf("graph: n=%u, m=%zu, avg degree %.2f, %llu triangles\n", graph.n(),
              graph.num_edges(), graph.average_degree(),
              static_cast<unsigned long long>(tft::count_triangles(graph)));

  // Scatter the edges across k players, duplicating each edge ~1.5x.
  const auto players = tft::partition_duplicated(graph, k, 1.5, rng);

  // One round of simultaneous communication; no one knows the degree.
  tft::TesterOptions opts;
  opts.protocol = tft::ProtocolKind::kSimOblivious;
  opts.seed = 42;

  const std::string transport = flags.get_string("transport", "sim");
  const auto kind = tft::net::parse_transport(transport);
  if (!kind) {
    std::fprintf(stderr, "unknown transport '%s' (sim|inproc|socket)\n", transport.c_str());
    return 2;
  }
  tft::net::NetConfig net_cfg;
  net_cfg.transport = *kind;
  const auto [report, executed] = tft::net::run_executed(
      k, net_cfg, [&] { return tft::test_triangle_freeness(players, opts); });

  std::printf("protocol: %s (transport: %s)\n", tft::to_string(report.protocol),
              transport.c_str());
  if (executed.executed) {
    std::printf("wire: %s — delivered bits equal charged bits, verified\n",
                executed.wire.summary().c_str());
  }
  std::printf("communication: %llu bits (%.1f bits/player)\n",
              static_cast<unsigned long long>(report.bits),
              static_cast<double>(report.bits) / static_cast<double>(k));
  if (report.triangle) {
    const auto& tri = *report.triangle;
    std::printf("verdict: NOT triangle-free; certified witness (%u, %u, %u)\n", tri.a, tri.b,
                tri.c);
    std::printf("witness verified against ground truth: %s\n",
                graph.contains(tri) ? "yes" : "NO (bug!)");
  } else {
    std::printf("verdict: consistent with triangle-free\n");
  }

  // Compare against the naive exact baseline.
  tft::TesterOptions exact;
  exact.protocol = tft::ProtocolKind::kExact;
  const auto exact_report = tft::test_triangle_freeness(players, exact);
  std::printf("exact baseline would cost %llu bits (%.0fx more)\n",
              static_cast<unsigned long long>(exact_report.bits),
              static_cast<double>(exact_report.bits) / static_cast<double>(report.bits));
  return 0;
}
