// tft_serviced: the multi-session service daemon. One process hosts a
// ServiceCoordinator — one shared transport, one servicer thread — and
// serves concurrent testing sessions submitted over loopback TCP by
// tft_client, or generated in-process with --selftest.
//
//   # serve 6 sessions on an OS-assigned port, then exit
//   build/examples/example_tft_serviced --transport=socket --sessions=6
//
//   # in-process soak: 8 sessions through a 2-worker pool, no TCP
//   build/examples/example_tft_serviced --selftest=8 --max-live=2
//
// Flags:
//   --transport=inproc|socket    wire under the shared servicer (default inproc)
//   --port=P                     TCP port (default 0 = kernel-assigned; the
//                                chosen port is printed on the first line)
//   --sessions=N                 exit after N completed sessions (default:
//                                serve until stdin reaches EOF)
//   --selftest=N                 no TCP: submit N sessions in-process and
//                                print one accounting line per session
//   --max-live=W --max-pending=Q admission control (defaults 4 / 16)
//   --scheduler=fifo|fair-share  queue discipline (default fifo)
//   --shards=N                   servicer poller shards (default 1)
//   --vclock=1                   virtual clock (inproc only)
//   --n, --k, --seed             selftest session shape (seed is the base;
//                                session i uses seed+i)
//
// Every completed session prints
//   session=<id> status=<...> bits=<...> accounting=exact conformance=ok
// (the CI soak greps these lines for per-session accounting closure).
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops, in-flight
// sessions run to completion, and the daemon prints
//   graceful drain complete: served <N> sessions, rejected <M>
// before exiting 0 (the soak test kills the daemon and greps this line).

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/error.h"
#include "service/daemon.h"
#include "util/flags.h"

namespace {

/// Set by the SIGINT/SIGTERM handler; every serve loop polls it. A handler
/// may only touch lock-free sig_atomic_t state — the actual drain runs on
/// the main thread after the loop observes the flag.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_signal(int) { g_stop = 1; }

void print_outcome(const tft::service::SessionOutcome& out) {
  const char* status = "error";
  switch (out.status) {
    case tft::service::ReplyStatus::kTriangleFree: status = "triangle-free"; break;
    case tft::service::ReplyStatus::kTriangle: status = "triangle"; break;
    case tft::service::ReplyStatus::kBusy: status = "busy"; break;
    case tft::service::ReplyStatus::kError: status = "error"; break;
  }
  std::printf("session=%u status=%s bits=%llu accounting=%s conformance=%s\n", out.session_id,
              status, static_cast<unsigned long long>(out.charged_bits),
              out.accounting_exact ? "exact" : "VIOLATED",
              out.conformance_ok ? "ok" : "VIOLATED");
  if (!out.error.empty()) std::printf("session=%u error: %s\n", out.session_id, out.error.c_str());
  std::fflush(stdout);
}

tft::service::ServiceConfig parse_config(const tft::Flags& flags) {
  tft::service::ServiceConfig cfg;
  const std::string name = flags.get_string("transport", "inproc");
  const auto kind = tft::net::parse_transport(name);
  if (!kind || *kind == tft::net::TransportKind::kSim) {
    std::fprintf(stderr, "serviced transport must be inproc or socket, not '%s'\n", name.c_str());
    std::exit(2);
  }
  cfg.net.transport = *kind;
  cfg.net.virtual_clock = flags.get_bool("vclock", false);
  cfg.net.num_shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  cfg.max_live_sessions = static_cast<std::size_t>(flags.get_int("max-live", 4));
  cfg.max_pending = static_cast<std::size_t>(flags.get_int("max-pending", 16));
  const std::string sched = flags.get_string("scheduler", "fifo");
  if (sched == "fifo") {
    cfg.scheduler = tft::service::SchedulerKind::kFifo;
  } else if (sched == "fair-share") {
    cfg.scheduler = tft::service::SchedulerKind::kFairShare;
  } else {
    std::fprintf(stderr, "unknown scheduler '%s' (fifo|fair-share)\n", sched.c_str());
    std::exit(2);
  }
  return cfg;
}

int selftest(const tft::service::ServiceConfig& cfg, const tft::Flags& flags, std::size_t count) {
  tft::service::ServiceCoordinator coordinator(cfg);
  std::vector<std::future<tft::service::SessionOutcome>> futures;
  for (std::size_t i = 0; i < count; ++i) {
    tft::service::SessionSpec spec;
    spec.family = i % 2 == 0 ? tft::service::InstanceFamily::kPlanted
                             : tft::service::InstanceFamily::kHub;
    spec.n = static_cast<std::uint32_t>(flags.get_int("n", 600));
    spec.k = static_cast<std::uint32_t>(flags.get_int("k", 4));
    spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1)) + i;
    futures.push_back(coordinator.submit(spec));
  }
  bool all_ok = true;
  for (auto& f : futures) {
    const tft::service::SessionOutcome out = f.get();
    print_outcome(out);
    all_ok = all_ok && out.accounting_exact && out.conformance_ok &&
             out.status != tft::service::ReplyStatus::kError;
  }
  std::printf("selftest: %zu sessions, %s\n", count, all_ok ? "all closed exact" : "FAILURES");
  return all_ok ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const tft::service::ServiceConfig cfg = parse_config(flags);

  try {
    if (flags.has("selftest")) {
      return selftest(cfg, flags, static_cast<std::size_t>(flags.get_int("selftest", 4)));
    }

    // Graceful drain on SIGINT/SIGTERM: stop admitting, let in-flight
    // sessions finish, reply kError("draining") to anyone who connects
    // meanwhile, and print the drain line before exiting cleanly.
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    tft::service::ServiceDaemon daemon(cfg,
                                       static_cast<std::uint16_t>(flags.get_int("port", 0)));
    std::printf("listening on 127.0.0.1:%u max-live=%zu max-pending=%zu scheduler=%s shards=%zu\n",
                daemon.port(), cfg.max_live_sessions, cfg.max_pending, to_string(cfg.scheduler),
                cfg.net.num_shards == 0 ? std::size_t{1} : cfg.net.num_shards);
    std::fflush(stdout);

    if (flags.has("sessions")) {
      const auto target = static_cast<std::uint64_t>(flags.get_int("sessions", 1));
      while (g_stop == 0 && daemon.coordinator().sessions_completed() < target) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    } else {
      // Serve until our caller closes stdin or a signal arrives. poll(2)
      // instead of getchar: a blocking read would swallow the signal's
      // EINTR on some libcs and park forever; a bounded poll re-checks
      // g_stop every lap.
      for (;;) {
        if (g_stop != 0) break;
        struct pollfd pfd = {0, POLLIN, 0};  // fd 0: stdin
        const int r = ::poll(&pfd, 1, 200);
        if (r < 0 && errno != EINTR) break;
        if (r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if ((pfd.revents & POLLIN) != 0) {
            char buf[256];
            const ssize_t n = ::read(0, buf, sizeof(buf));
            if (n <= 0) break;  // EOF: the classic park-under-a-script exit
          } else {
            break;  // stdin hung up
          }
        }
      }
    }
    daemon.shutdown();
    const auto served =
        static_cast<unsigned long long>(daemon.coordinator().sessions_completed());
    const auto rejected =
        static_cast<unsigned long long>(daemon.coordinator().sessions_rejected());
    if (g_stop != 0) {
      std::printf("graceful drain complete: served %llu sessions, rejected %llu\n", served,
                  rejected);
    }
    std::printf("served %llu sessions, rejected %llu\n", served, rejected);
    return 0;
  } catch (const tft::net::NetError& e) {
    std::fprintf(stderr, "net error: %s\n", e.what());
    return 3;
  }
}
