// Lower-bound explorer: play with the paper's hard instances.
//
//   build/examples/example_lower_bound_explorer [--side=2048] [--pairs=4096]
//
// (1) Samples the tripartite distribution mu (Section 4.2.1), verifies it is
//     far from triangle-free, and shows the one-way birthday protocol's
//     success as its budget crosses the Theta(n^{1/4}) threshold.
// (2) Builds both promise cases of the Boolean Matching reduction
//     (Theorem 4.16) and shows that a budget-starved simultaneous protocol
//     cannot distinguish them, while an adequately budgeted one can.

#include <cmath>
#include <cstdio>

#include "core/oneway_vee.h"
#include "core/sim_low.h"
#include "graph/triangles.h"
#include "lower_bounds/boolean_matching.h"
#include "lower_bounds/mu_distribution.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const auto side = static_cast<tft::Vertex>(flags.get_int("side", 2048));
  const auto pairs = static_cast<std::uint32_t>(flags.get_int("pairs", 4096));
  tft::Rng rng(flags.get_int("seed", 3));

  std::printf("== the hard distribution mu (Section 4.2.1) ==\n");
  const auto mu = tft::sample_mu(side, 0.9, rng);
  std::printf("sampled: n=%u (3 sides of %u), m=%zu, avg degree %.1f (~sqrt side)\n",
              mu.graph.n(), side, mu.graph.num_edges(), mu.graph.average_degree());
  const auto packing = tft::distance_lower_bound(mu.graph, rng);
  std::printf("edge-disjoint triangle packing: %llu (>= %.3f of |E|: Omega(1)-far)\n",
              static_cast<unsigned long long>(packing),
              static_cast<double>(packing) / static_cast<double>(mu.graph.num_edges()));

  std::printf("\none-way birthday protocol, budget sweep (threshold ~ side^{1/4} = %.1f):\n",
              std::pow(static_cast<double>(side), 0.25));
  const auto players = tft::partition_mu_three(mu);
  for (std::uint64_t budget = 2; budget <= 256; budget *= 2) {
    int ok = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      tft::OneWayOptions o;
      o.seed = 1000 + static_cast<std::uint64_t>(t);
      o.hubs = 4;
      o.budget_edges_per_player = budget;
      const auto r = tft::oneway_vee_find_edge(players, mu.layout, o);
      if (r.triangle_edge) {
        ++ok;
        // One-sided: spot-check the certificate.
        if (!tft::is_triangle_edge(mu.graph, *r.triangle_edge)) {
          std::printf("BUG: reported non-triangle edge!\n");
          return 1;
        }
      }
    }
    std::printf("  budget %4llu edges/player -> success %2d/%d\n",
                static_cast<unsigned long long>(budget), ok, kTrials);
  }

  std::printf("\n== the Boolean Matching reduction (Theorem 4.16) ==\n");
  const auto far_inst = tft::sample_bm(pairs, /*zero_case=*/true, rng);
  const auto free_inst = tft::sample_bm(pairs, /*zero_case=*/false, rng);
  const tft::Graph far_g = tft::bm_graph(far_inst);
  const tft::Graph free_g = tft::bm_graph(free_inst);
  std::printf("zero case: %llu edge-disjoint triangles on %zu edges (1/4-far)\n",
              static_cast<unsigned long long>(tft::count_triangles(far_g)),
              far_g.num_edges());
  std::printf("one case:  %llu triangles (exactly triangle-free)\n",
              static_cast<unsigned long long>(tft::count_triangles(free_g)));

  std::printf("\ncapped simultaneous protocol on the zero case "
              "(threshold ~ sqrt(n) = %.0f):\n", std::sqrt(4.0 * pairs));
  for (std::uint64_t budget = 8; budget <= 8192; budget *= 4) {
    int ok = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      tft::SimLowOptions o;
      o.average_degree = 2.0;
      o.c = 4.0;
      o.seed = 2000 + static_cast<std::uint64_t>(t);
      o.cap_edges_per_player = budget;
      const auto r = tft::sim_low_find_triangle(tft::bm_two_players(far_inst), o);
      ok += r.triangle ? 1 : 0;
    }
    std::printf("  budget %5llu edges/player -> success %2d/%d\n",
                static_cast<unsigned long long>(budget), ok, kTrials);
  }
  std::printf("(the one case is never misclassified: one-sided error)\n");
  return 0;
}
