// tft_cli: run any of the library's protocols on a graph file.
//
//   # generate an instance and write it out
//   build/examples/example_tft_cli --generate=hub --n=20000 --out=/tmp/g.graph
//
//   # test it
//   build/examples/example_tft_cli --in=/tmp/g.graph --protocol=unrestricted --k=8
//
// Flags:
//   --generate=planted|hub|gnp|mu|bipartite   instance family (with --n, --d,
//                                             --triangles, --hubs, --gamma)
//   --out=PATH                                write generated graph and exit
//   --in=PATH                                 read a graph file
//   --protocol=unrestricted|sim-low|sim-high|sim-oblivious|exact
//   --k, --dup, --eps, --seed                 model parameters
//   --transport=sim|inproc|socket             sim charges a Transcript only;
//                                             inproc/socket execute the run as
//                                             k+1 actors exchanging real frames
//                                             and cross-check wire vs charged
//   --fault-drop, --fault-dup, --fault-flip   per-attempt fault probabilities
//   --fault-delay-us, --fault-seed            (executed transports only)
//   --crash-player/--crash-phase/--crash-offset
//                                             one surgical crash point
//   --crash-rate, --crash-max-offset          seeded crash coin per (player,
//                                             phase); replays from fault-seed
//   --crash-resurrect=0                       dead players stay dead (the run
//                                             must fail with a typed error)

#include <cstdio>
#include <string>
#include <tuple>

#include "core/tester.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "net/error.h"
#include "net/executed.h"
#include "net/runtime.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

tft::Graph generate(const tft::Flags& flags, tft::Rng& rng) {
  const std::string family = flags.get_string("generate", "planted");
  const auto n = static_cast<tft::Vertex>(flags.get_int("n", 10000));
  if (family == "planted") {
    const auto t = static_cast<std::uint32_t>(flags.get_int("triangles", n / 12));
    return tft::gen::planted_triangles(n, t, rng);
  }
  if (family == "hub") {
    const auto hubs = static_cast<std::uint32_t>(flags.get_int("hubs", 3));
    return tft::gen::hub_matching(n, hubs, rng);
  }
  if (family == "gnp") {
    const double d = flags.get_double("d", 16.0);
    return tft::gen::gnp(n, d / static_cast<double>(n), rng);
  }
  if (family == "mu") {
    const double gamma = flags.get_double("gamma", 0.9);
    return tft::gen::tripartite_mu(n / 3, gamma, rng);
  }
  if (family == "bipartite") {
    const double d = flags.get_double("d", 8.0);
    return tft::gen::bipartite_gnp(n, 2.0 * d / static_cast<double>(n), rng);
  }
  std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
  std::exit(2);
}

tft::ProtocolKind parse_protocol(const std::string& name) {
  if (name == "unrestricted") return tft::ProtocolKind::kUnrestricted;
  if (name == "sim-low") return tft::ProtocolKind::kSimLow;
  if (name == "sim-high") return tft::ProtocolKind::kSimHigh;
  if (name == "sim-oblivious") return tft::ProtocolKind::kSimOblivious;
  if (name == "exact") return tft::ProtocolKind::kExact;
  std::fprintf(stderr, "unknown protocol '%s'\n", name.c_str());
  std::exit(2);
}

tft::net::NetConfig parse_net_config(const tft::Flags& flags) {
  tft::net::NetConfig cfg;
  const std::string name = flags.get_string("transport", "sim");
  const auto kind = tft::net::parse_transport(name);
  if (!kind) {
    std::fprintf(stderr, "unknown transport '%s' (sim|inproc|socket)\n", name.c_str());
    std::exit(2);
  }
  cfg.transport = *kind;
  cfg.faults.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  cfg.faults.drop = flags.get_double("fault-drop", 0.0);
  cfg.faults.duplicate = flags.get_double("fault-dup", 0.0);
  cfg.faults.bit_flip = flags.get_double("fault-flip", 0.0);
  const auto delay_us = static_cast<std::uint32_t>(flags.get_int("fault-delay-us", 0));
  cfg.faults.delay_us = delay_us;
  cfg.faults.delay = delay_us > 0 ? flags.get_double("fault-delay", 0.5) : 0.0;
  // Crash schedule: a surgical point (all three flags), a seeded coin, or
  // both (surgical entries win — net/fault.h grammar).
  if (flags.has("crash-player")) {
    tft::net::CrashEvent e;
    e.player = static_cast<std::uint32_t>(flags.get_int("crash-player", 0));
    e.phase = static_cast<std::uint64_t>(flags.get_int("crash-phase", 0));
    e.offset = static_cast<std::uint64_t>(flags.get_int("crash-offset", 0));
    cfg.faults.crash_schedule.push_back(e);
  }
  cfg.faults.crash = flags.get_double("crash-rate", 0.0);
  cfg.faults.crash_max_offset =
      static_cast<std::uint64_t>(flags.get_int("crash-max-offset", 8));
  cfg.faults.crash_resurrect = flags.get_bool("crash-resurrect", true);
  const std::string arq = flags.get_string("arq", "windowed");
  if (arq == "windowed") {
    cfg.arq = tft::net::ArqPolicy::windowed(
        static_cast<std::uint32_t>(flags.get_int("window", 32)));
  } else if (arq == "stopwait") {
    cfg.arq = tft::net::ArqPolicy::stop_and_wait();
  } else {
    std::fprintf(stderr, "unknown arq policy '%s' (windowed|stopwait)\n", arq.c_str());
    std::exit(2);
  }
  cfg.virtual_clock = flags.get_bool("vclock", false);
  return cfg;
}

void print_help() {
  std::printf(
      "tft_cli: run any of the library's triangle-freeness protocols.\n"
      "\n"
      "  --generate=planted|hub|gnp|mu|bipartite   instance family\n"
      "      (with --n, --d, --triangles, --hubs, --gamma)\n"
      "  --out=PATH               write the generated graph and exit\n"
      "  --in=PATH                read a graph file instead of generating\n"
      "  --protocol=unrestricted|sim-low|sim-high|sim-oblivious|exact\n"
      "  --k, --dup, --eps, --seed                 model parameters\n"
      "  --transport=sim|inproc|socket             sim charges a Transcript\n"
      "      only; inproc/socket execute the run over real frames and\n"
      "      cross-check wire vs charged bits\n"
      "  --arq=windowed|stopwait --window=W        ARQ policy\n"
      "  --vclock=1               virtual clock (inproc only)\n"
      "  --fault-drop, --fault-dup, --fault-flip, --fault-delay-us,\n"
      "  --fault-seed             per-attempt fault probabilities\n"
      "  --crash-player/--crash-phase/--crash-offset, --crash-rate,\n"
      "  --crash-max-offset, --crash-resurrect=0   crash schedule\n"
      "  --list-transports        print the transport registry and exit\n"
      "  --help                   this text\n"
      "\n"
      "exit codes:\n"
      "  0  verdict: consistent with triangle-free\n"
      "  1  verdict: NOT triangle-free (a certified triangle was printed)\n"
      "  2  usage error (unknown flag value, unknown family/protocol)\n"
      "  3  typed net error (transport failure, exhausted retries, a player\n"
      "     crashed with --crash-resurrect=0, ...)\n");
}

void list_transports() {
  constexpr tft::net::TransportKind kinds[] = {
      tft::net::TransportKind::kSim,
      tft::net::TransportKind::kInProc,
      tft::net::TransportKind::kSocket,
  };
  for (const auto kind : kinds) {
    const char* what = "";
    switch (kind) {
      case tft::net::TransportKind::kSim:
        what = "Transcript charges only; no frames, no servicer";
        break;
      case tft::net::TransportKind::kInProc:
        what = "lock-free byte rings in one process; supports --vclock";
        break;
      case tft::net::TransportKind::kSocket:
        what = "real TCP connections over 127.0.0.1";
        break;
    }
    std::printf("%-8s %s\n", tft::net::to_string(kind), what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  if (flags.has("help")) {
    print_help();
    return 0;
  }
  if (flags.has("list-transports")) {
    list_transports();
    return 0;
  }
  tft::Rng rng(flags.get_int("seed", 1));

  tft::Graph graph;
  if (flags.has("in")) {
    graph = tft::load_graph(flags.get_string("in", ""));
  } else {
    graph = generate(flags, rng);
  }
  std::printf("graph: n=%u m=%zu avg-degree=%.2f\n", graph.n(), graph.num_edges(),
              graph.average_degree());

  if (flags.has("out")) {
    const std::string out = flags.get_string("out", "");
    tft::save_graph(out, graph);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }

  const auto k = static_cast<std::size_t>(flags.get_int("k", 4));
  const double dup = flags.get_double("dup", 1.0);
  const auto players = dup > 1.0 ? tft::partition_duplicated(graph, k, dup, rng)
                                 : tft::partition_random(graph, k, rng);

  tft::TesterOptions opts;
  opts.protocol = parse_protocol(flags.get_string("protocol", "sim-oblivious"));
  opts.eps = flags.get_double("eps", 0.1);
  opts.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1)) * 7919;
  opts.known_average_degree = std::max(1.0, graph.average_degree());

  const tft::net::NetConfig net_cfg = parse_net_config(flags);
  tft::TestReport report;
  tft::net::ExecutedReport executed;
  try {
    std::tie(report, executed) = tft::net::run_executed(
        k, net_cfg, [&] { return tft::test_triangle_freeness(players, opts); });
  } catch (const tft::net::NetError& e) {
    // A typed transport failure (e.g. a player down with --crash-resurrect=0)
    // is an expected outcome for fault-injection runs, not a crash.
    std::fprintf(stderr, "net error: %s\n", e.what());
    return 3;
  }
  std::printf("protocol=%s k=%zu dup=%.1f bits=%llu transport=%s\n",
              tft::to_string(report.protocol), k, dup,
              static_cast<unsigned long long>(report.bits),
              tft::net::to_string(net_cfg.transport));
  if (executed.executed) {
    std::printf("wire: %s\n", executed.wire.summary().c_str());
    std::printf("wire/transcript accounting: exact (verified)\n");
  }
  if (report.triangle) {
    std::printf("verdict: NOT triangle-free, witness (%u,%u,%u) [verified: %s]\n",
                report.triangle->a, report.triangle->b, report.triangle->c,
                graph.contains(*report.triangle) ? "yes" : "NO");
    return 1;
  }
  std::printf("verdict: consistent with triangle-free\n");
  return 0;
}
