// tft_client: submit one testing session to a running tft_serviced and
// print the verdict plus the accounting summary. The process exit code IS
// the ReplyStatus (service/spec.h):
//   0  consistent with triangle-free
//   1  triangle found (certified)
//   2  service busy (retryable; bad flags also exit 2)
//   3  session failed or the request itself failed (see the printed error)
//
//   build/examples/example_tft_client --port=7777 --family=planted --n=2000
//
// Flags:
//   --port=P                     tft_serviced's port (required)
//   --protocol=unrestricted|sim-low|sim-high|sim-oblivious|exact
//   --family=planted|hub|gnp|mu|bipartite
//   --n, --k, --seed, --eps     instance + model shape
//   --param=V                    family knob (triangles / hubs / 100*degree /
//                                100*gamma); 0 = family default
//   --tenant=NAME                fair-share scheduling key
//   --retry=R                    re-request up to R times on kBusy (default 0:
//                                one shot). Exit 2 only after the budget is
//                                exhausted and the service is still busy.
//   --backoff-ms=B               base backoff between busy retries (default
//                                100); doubles per attempt, capped at 32x
//   --shard=S                    pin the session to servicer shard (S-1) mod N
//                                (default 0 = hash placement)

#include <cstdio>
#include <string>

#include "net/error.h"
#include "service/daemon.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  if (!flags.has("port")) {
    std::fprintf(stderr, "usage: tft_client --port=P [--family=.. --n=.. --k=.. --seed=..]\n");
    return 2;
  }

  tft::service::SessionSpec spec;
  const std::string proto = flags.get_string("protocol", "sim-oblivious");
  if (proto == "unrestricted") spec.protocol = tft::ProtocolKind::kUnrestricted;
  else if (proto == "sim-low") spec.protocol = tft::ProtocolKind::kSimLow;
  else if (proto == "sim-high") spec.protocol = tft::ProtocolKind::kSimHigh;
  else if (proto == "sim-oblivious") spec.protocol = tft::ProtocolKind::kSimOblivious;
  else if (proto == "exact") spec.protocol = tft::ProtocolKind::kExact;
  else {
    std::fprintf(stderr, "unknown protocol '%s'\n", proto.c_str());
    return 2;
  }
  const auto family = tft::service::parse_family(flags.get_string("family", "planted"));
  if (!family) {
    std::fprintf(stderr, "unknown family '%s' (planted|hub|gnp|mu|bipartite)\n",
                 flags.get_string("family", "planted").c_str());
    return 2;
  }
  spec.family = *family;
  spec.n = static_cast<std::uint32_t>(flags.get_int("n", 1024));
  spec.k = static_cast<std::uint32_t>(flags.get_int("k", 4));
  spec.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  spec.eps_micro = static_cast<std::uint32_t>(flags.get_double("eps", 0.1) * 1e6);
  spec.param = static_cast<std::uint64_t>(flags.get_int("param", 0));
  spec.tenant = flags.get_string("tenant", "");
  spec.shard_affinity = static_cast<std::uint32_t>(flags.get_int("shard", 0));

  const auto retries = static_cast<std::size_t>(flags.get_int("retry", 0));
  const auto backoff_ms = static_cast<std::uint64_t>(flags.get_int("backoff-ms", 100));
  tft::service::ServiceReply reply;
  try {
    reply = tft::service::request_with_retry(
        static_cast<std::uint16_t>(flags.get_int("port", 0)), spec, retries, backoff_ms);
  } catch (const tft::net::NetError& e) {
    std::fprintf(stderr, "request failed: %s\n", e.what());
    return 3;
  }

  std::printf("session=%u bits=%llu payload-bits=%llu messages=%llu frames=%llu "
              "wire-bytes=%llu accounting=%s conformance=%s\n",
              reply.session_id, static_cast<unsigned long long>(reply.charged_bits),
              static_cast<unsigned long long>(reply.payload_bits),
              static_cast<unsigned long long>(reply.messages),
              static_cast<unsigned long long>(reply.frames),
              static_cast<unsigned long long>(reply.wire_bytes),
              reply.accounting_exact ? "exact" : "VIOLATED",
              reply.conformance_ok ? "ok" : "VIOLATED");
  switch (reply.status) {
    case tft::service::ReplyStatus::kTriangleFree:
      std::printf("verdict: consistent with triangle-free\n");
      return 0;
    case tft::service::ReplyStatus::kTriangle:
      std::printf("verdict: NOT triangle-free, witness (%u,%u,%u)\n", reply.triangle->a,
                  reply.triangle->b, reply.triangle->c);
      return 1;
    case tft::service::ReplyStatus::kBusy:
      std::printf("service busy: %s\n", reply.error.c_str());
      return 2;
    case tft::service::ReplyStatus::kError:
      std::printf("session failed: %s\n", reply.error.c_str());
      return 3;
  }
  return 2;  // unreachable: decode_reply bounds the status tag
}
