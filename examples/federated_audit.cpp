// Federated audit: the scenario the paper's introduction motivates.
//
// A social graph is sharded across k data centers (each holds the edges it
// observed; the same edge may be logged by several shards). A central
// auditor must check a structural policy — here: "the interaction graph is
// triangle-free, or flag a violating triangle" — without shipping the
// shards' logs.
//
//   build/examples/example_federated_audit [--n=30000] [--k=8] [--hubs=3]
//
// Runs the unrestricted coordinator protocol (Section 3.3) against the
// adversarial hub workload (a few celebrity accounts concentrate all
// triangles), prints the per-player transcript breakdown and compares the
// coordinator and blackboard variants.

#include <cstdio>

#include "core/exact_baseline.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const tft::Flags flags(argc, argv);
  const auto n = static_cast<tft::Vertex>(flags.get_int("n", 30000));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 8));
  const auto hubs = static_cast<std::uint32_t>(flags.get_int("hubs", 3));

  tft::Rng rng(flags.get_int("seed", 7));
  const tft::Graph graph = tft::gen::hub_matching(n, hubs, rng);
  std::printf("interaction graph: n=%u, m=%zu, avg degree %.1f, %u hub accounts\n", graph.n(),
              graph.num_edges(), graph.average_degree(), hubs);

  // Shards observe overlapping slices of the log (duplication factor 2).
  const auto shards = tft::partition_duplicated(graph, k, 2.0, rng);
  for (const auto& s : shards) {
    std::printf("  shard %zu holds %zu edges (local avg degree %.2f)\n", s.player_id,
                s.local.num_edges(), s.local_average_degree());
  }

  tft::UnrestrictedOptions opts;
  opts.consts = tft::ProtocolConstants::practical(0.1, 0.05);
  opts.seed = 99;
  const auto result = tft::find_triangle_unrestricted(shards, opts);

  std::printf("\naudit (coordinator model):\n");
  std::printf("  buckets probed: %u, candidates examined: %u, vee rounds: %u\n",
              result.buckets_tried, result.candidates_examined, result.vee_rounds);
  std::printf("  communication: %llu bits\n",
              static_cast<unsigned long long>(result.total_bits));
  if (result.triangle) {
    std::printf("  POLICY VIOLATION: triangle (%u, %u, %u)\n", result.triangle->a,
                result.triangle->b, result.triangle->c);
  } else {
    std::printf("  no violation found (graph consistent with triangle-free)\n");
  }

  tft::UnrestrictedOptions board = opts;
  board.blackboard = true;
  const auto board_result = tft::find_triangle_unrestricted(shards, board);
  std::printf("\nblackboard variant (shared bus between shards): %llu bits (%.1fx cheaper)\n",
              static_cast<unsigned long long>(board_result.total_bits),
              static_cast<double>(result.total_bits) /
                  static_cast<double>(board_result.total_bits));

  const auto exact = tft::exact_find_triangle(shards);
  std::printf("shipping all logs to the auditor would cost %llu bits (%.0fx more)\n",
              static_cast<unsigned long long>(exact.total_bits),
              static_cast<double>(exact.total_bits) /
                  static_cast<double>(result.total_bits));
  return 0;
}
