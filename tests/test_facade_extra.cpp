#include <gtest/gtest.h>

#include <sstream>

#include "comm/wire.h"
#include "core/tester.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(FacadeExtra, NoDuplicationFlagReducesUnrestrictedCost) {
  // The no-duplication promise switches the cheap Lemma 3.2 degree
  // estimation in, which must lower the cost on a duplication-free split.
  Rng rng(1);
  const Graph g = gen::planted_triangles(1500, 200, rng);
  const auto players = partition_random(g, 4, rng);  // duplication-free
  TesterOptions with_promise;
  with_promise.protocol = ProtocolKind::kUnrestricted;
  with_promise.no_duplication = true;
  with_promise.seed = 2;
  TesterOptions without;
  without.protocol = ProtocolKind::kUnrestricted;
  without.seed = 2;
  const auto a = test_triangle_freeness(players, with_promise);
  const auto b = test_triangle_freeness(players, without);
  EXPECT_LT(a.bits, b.bits);
}

TEST(FacadeExtra, EpsilonPropagates) {
  // Smaller eps widens the bucket range and raises sampling probabilities,
  // so the triangle-free full sweep costs more.
  Rng rng(2);
  const Graph g = gen::bipartite_gnp(1500, 0.005, rng);
  const auto players = partition_random(g, 4, rng);
  TesterOptions strict;
  strict.protocol = ProtocolKind::kUnrestricted;
  strict.eps = 0.02;
  strict.seed = 3;
  TesterOptions loose;
  loose.protocol = ProtocolKind::kUnrestricted;
  loose.eps = 0.4;
  loose.seed = 3;
  const auto a = test_triangle_freeness(players, strict);
  const auto b = test_triangle_freeness(players, loose);
  EXPECT_FALSE(a.triangle.has_value());
  EXPECT_FALSE(b.triangle.has_value());
  EXPECT_GE(a.bits, b.bits);
}

TEST(FacadeExtra, SeedsChangeOutcomeNotCorrectness) {
  Rng rng(3);
  const Graph g = gen::planted_triangles(800, 100, rng);
  const auto players = partition_random(g, 3, rng);
  std::uint64_t distinct_bits = 0;
  std::uint64_t last = 0;
  for (std::uint64_t s = 1; s <= 5; ++s) {
    TesterOptions o;
    o.protocol = ProtocolKind::kSimOblivious;
    o.seed = s;
    const auto r = test_triangle_freeness(players, o);
    if (r.triangle) {
      EXPECT_TRUE(g.contains(*r.triangle));
    }
    if (r.bits != last) ++distinct_bits;
    last = r.bits;
  }
  EXPECT_GE(distinct_bits, 2u);  // randomness actually varies the samples
}

TEST(FacadeExtra, GraphIoThenProtocolEndToEnd) {
  // Full pipeline: generate -> serialize -> parse -> partition -> test.
  Rng rng(4);
  const Graph g = gen::hub_matching(1000, 3, rng);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph loaded = read_graph(ss);
  const auto players = partition_duplicated(loaded, 4, 1.5, rng);
  TesterOptions o;
  o.protocol = ProtocolKind::kSimOblivious;
  o.seed = 5;
  const auto r = test_triangle_freeness(players, o);
  if (r.triangle) {
    EXPECT_TRUE(g.contains(*r.triangle));
  }
}

TEST(FacadeExtra, VertexListCodecHandlesExtremes) {
  BitWriter w;
  const std::vector<Vertex> vs{0, 0, 4294967294u};
  encode_vertex_list(w, 4294967295u, vs);
  BitReader r(w.bytes(), w.bit_size());
  const auto decoded = decode_vertex_list(r, 4294967295u);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], 0u);
  EXPECT_EQ(decoded[2], 4294967294u);
}

}  // namespace
}  // namespace tft
