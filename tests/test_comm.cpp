#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "comm/cost.h"
#include "comm/model.h"
#include "comm/shared_randomness.h"
#include "comm/transcript.h"

namespace tft {
namespace {

TEST(CostMeter, Accumulates) {
  CostMeter m;
  m.add_flag();
  m.add_vertex(1024);
  m.add_edge(1024);
  m.add_edges(1024, 3);
  m.add_count(7);
  EXPECT_EQ(m.bits(), 1u + 10 + 20 + 60 + 4);
  m.reset();
  EXPECT_EQ(m.bits(), 0u);
}

TEST(Transcript, PerPlayerAndDirectionTallies) {
  Transcript t(3, 1024);
  t.charge(0, Direction::kPlayerToCoordinator, 10, 1);
  t.charge(1, Direction::kPlayerToCoordinator, 20, 1);
  t.charge(0, Direction::kCoordinatorToPlayer, 5, 2);
  EXPECT_EQ(t.total_bits(), 35u);
  EXPECT_EQ(t.upstream_bits(), 30u);
  EXPECT_EQ(t.downstream_bits(), 5u);
  EXPECT_EQ(t.player_bits(0), 15u);
  EXPECT_EQ(t.player_bits(2), 0u);
  EXPECT_EQ(t.upstream_messages(0), 1u);
  EXPECT_EQ(t.downstream_messages(0), 1u);
  EXPECT_EQ(t.phase_bits(1), 30u);
  EXPECT_EQ(t.phase_bits(2), 5u);
  EXPECT_EQ(t.events().size(), 3u);
}

TEST(Transcript, BroadcastChargesEveryPlayer) {
  Transcript t(4, 16);
  t.charge_broadcast(7, 3);
  EXPECT_EQ(t.total_bits(), 28u);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(t.downstream_bits(j), 7u);
}

TEST(Transcript, ConvenienceChargesUseUniverse) {
  Transcript t(1, 1024);
  t.charge_vertex(0, Direction::kPlayerToCoordinator);
  EXPECT_EQ(t.total_bits(), 10u);
  t.charge_edges(0, Direction::kPlayerToCoordinator, 2);
  EXPECT_EQ(t.total_bits(), 50u);
}

TEST(Transcript, OutOfRangePlayerThrows) {
  Transcript t(2, 16);
  EXPECT_THROW(t.charge(2, Direction::kPlayerToCoordinator, 1), std::out_of_range);
}

TEST(Transcript, BroadcastEmitsOneEventPerPlayerInOrder) {
  Transcript t(3, 16);
  t.charge_broadcast(5, 2);
  ASSERT_EQ(t.events().size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(t.events()[j].player, j);
    EXPECT_EQ(t.events()[j].direction, Direction::kCoordinatorToPlayer);
    EXPECT_EQ(t.events()[j].bits, 5u);
    EXPECT_EQ(t.events()[j].phase, 2u);
    EXPECT_EQ(t.downstream_messages(j), 1u);
  }
  EXPECT_EQ(t.phase_bits(2), 15u);
}

TEST(Transcript, PhaseBitsTrackEveryTagIndependently) {
  Transcript t(2, 16);
  t.charge(0, Direction::kPlayerToCoordinator, 3, 0);
  t.charge(1, Direction::kPlayerToCoordinator, 4, 5);
  t.charge_broadcast(2, 5);
  EXPECT_EQ(t.phase_bits(0), 3u);
  EXPECT_EQ(t.phase_bits(5), 8u);   // 4 up + 2*2 broadcast
  EXPECT_EQ(t.phase_bits(1), 0u);   // untouched phase
  EXPECT_EQ(t.phase_bits(99), 0u);  // never-charged phase is 0, not UB
  EXPECT_EQ(t.num_phases(), 6u);
}

TEST(Transcript, DisablingEventRecordingKeepsTallies) {
  Transcript t(2, 16);
  t.set_record_events(false);
  EXPECT_FALSE(t.record_events());
  t.charge(0, Direction::kPlayerToCoordinator, 10, 1);
  t.charge_broadcast(3, 2);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.total_bits(), 16u);
  EXPECT_EQ(t.upstream_messages(0), 1u);
  EXPECT_EQ(t.phase_bits(1), 10u);
  EXPECT_EQ(t.phase_bits(2), 6u);
}

TEST(Transcript, MergeOfNonRecordingPartialsPreservesPhaseTotals) {
  // Parallel engines build partial transcripts with recording off and fold
  // them into one; every tally and per-phase total must survive the merge.
  Transcript a(2, 16);
  a.set_record_events(false);
  a.charge(0, Direction::kPlayerToCoordinator, 10, 1);
  a.charge(1, Direction::kCoordinatorToPlayer, 4, 3);

  Transcript b(2, 16);
  b.set_record_events(false);
  b.charge(0, Direction::kPlayerToCoordinator, 7, 1);
  b.charge(1, Direction::kPlayerToCoordinator, 2, 4);

  Transcript total(2, 16);
  total.merge(a);
  total.merge(b);
  EXPECT_EQ(total.total_bits(), 23u);
  EXPECT_EQ(total.upstream_bits(0), 17u);
  EXPECT_EQ(total.upstream_messages(0), 2u);
  EXPECT_EQ(total.downstream_bits(1), 4u);
  EXPECT_EQ(total.phase_bits(1), 17u);
  EXPECT_EQ(total.phase_bits(3), 4u);
  EXPECT_EQ(total.phase_bits(4), 2u);
  EXPECT_EQ(total.num_phases(), 5u);
  EXPECT_TRUE(total.events().empty());  // partials recorded nothing
}

TEST(Transcript, MergeAppendsRecordedEvents) {
  Transcript a(2, 16);
  a.charge(0, Direction::kPlayerToCoordinator, 1, 0);
  Transcript b(2, 16);
  b.charge(1, Direction::kPlayerToCoordinator, 2, 1);
  a.merge(b);
  ASSERT_EQ(a.events().size(), 2u);
  EXPECT_EQ(a.events()[1].player, 1u);
  EXPECT_EQ(a.events()[1].bits, 2u);
}

TEST(Transcript, MergeRejectsMismatchedShapes) {
  Transcript a(2, 16);
  const Transcript other_k(3, 16);
  const Transcript other_n(2, 32);
  EXPECT_THROW(a.merge(other_k), std::invalid_argument);
  EXPECT_THROW(a.merge(other_n), std::invalid_argument);
}

TEST(SharedRandomness, DeterministicAcrossInstances) {
  const SharedRandomness a(99);
  const SharedRandomness b(99);
  const SharedTag tag{1, 2, 3};
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.value(tag, i), b.value(tag, i));
    EXPECT_EQ(a.bernoulli(tag, i, 0.3), b.bernoulli(tag, i, 0.3));
  }
}

TEST(SharedRandomness, DifferentTagsDiffer) {
  const SharedRandomness sr(7);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (sr.value(SharedTag{1, 0, 0}, i) == sr.value(SharedTag{2, 0, 0}, i)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SharedRandomness, PermutationIsTotalOrder) {
  const SharedRandomness sr(13);
  const SharedTag tag{5, 0, 0};
  // Antisymmetry + totality on a sample of pairs.
  for (std::uint64_t u = 0; u < 20; ++u) {
    for (std::uint64_t v = 0; v < 20; ++v) {
      if (u == v) continue;
      EXPECT_NE(sr.precedes(tag, u, v), sr.precedes(tag, v, u));
    }
  }
}

TEST(SharedRandomness, PermutationMinIsUniform) {
  // The argmin of the priority over a fixed set should be uniform across
  // tags: the basis of Algorithm 1's unbiasedness.
  const SharedRandomness sr(21);
  std::vector<int> wins(8, 0);
  for (std::uint64_t trial = 0; trial < 8000; ++trial) {
    const SharedTag tag{trial, 1, 0};
    std::uint64_t best = 0;
    for (std::uint64_t v = 1; v < 8; ++v) {
      if (sr.precedes(tag, v, best)) best = v;
    }
    ++wins[best];
  }
  for (const int w : wins) EXPECT_NEAR(w, 1000, 150);
}

TEST(SharedRandomness, BernoulliRate) {
  const SharedRandomness sr(31);
  const SharedTag tag{9, 0, 0};
  int hits = 0;
  for (std::uint64_t v = 0; v < 20000; ++v) hits += sr.bernoulli(tag, v, 0.1) ? 1 : 0;
  EXPECT_NEAR(hits, 2000, 200);
  EXPECT_FALSE(sr.bernoulli(tag, 0, 0.0));
  EXPECT_TRUE(sr.bernoulli(tag, 0, 1.0));
}

TEST(SharedRandomness, UniformVertexInRange) {
  const SharedRandomness sr(41);
  std::vector<int> counts(5, 0);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const auto v = sr.uniform_vertex(SharedTag{3, 0, 0}, i, 5);
    ASSERT_LT(v, 5u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_NEAR(c, 2000, 220);
}

TEST(SharedRandomness, SampleVerticesMatchesBernoulli) {
  const SharedRandomness sr(51);
  const SharedTag tag{77, 0, 0};
  const auto sample = sr.sample_vertices(tag, 1000, 0.2);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  for (const auto v : sample) EXPECT_TRUE(sr.bernoulli(tag, v, 0.2));
  EXPECT_NEAR(static_cast<double>(sample.size()), 200.0, 60.0);
}

TEST(CommModel, EveryTagHasAName) {
  // Exhaustive: a new enumerator must get a string (the "?" fallthrough is
  // an assertion failure in debug builds, not a reachable return).
  EXPECT_STREQ(to_string(CommModel::kCoordinator), "coordinator");
  EXPECT_STREQ(to_string(CommModel::kSimultaneous), "simultaneous");
  EXPECT_STREQ(to_string(CommModel::kOneWay), "one-way");
  EXPECT_STREQ(to_string(CommModel::kBlackboard), "blackboard");
}

}  // namespace
}  // namespace tft
