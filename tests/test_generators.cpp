#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/pair_sampling.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft::gen {
namespace {

TEST(Gnp, EdgeCountConcentrates) {
  Rng rng(1);
  const Vertex n = 400;
  const double p = 0.05;
  const Graph g = gnp(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 5 * std::sqrt(expected));
}

TEST(Gnp, ExtremeProbabilities) {
  Rng rng(1);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gnp(50, 1.0, rng).num_edges(), 50u * 49 / 2);
}

TEST(Gnp, EdgesCoverAllPairsUniformly) {
  // Every unranked pair index must be a valid (u < v) pair; spot-check the
  // pair-unranking by generating a dense sample and verifying bounds.
  Rng rng(9);
  const Graph g = gnp(100, 0.5, rng);
  for (const Edge& e : g.edges()) {
    ASSERT_LT(e.u, e.v);
    ASSERT_LT(e.v, 100u);
  }
}

TEST(BipartiteGnp, TriangleFree) {
  Rng rng(2);
  const Graph g = bipartite_gnp(300, 0.1, rng);
  EXPECT_TRUE(is_triangle_free(g));
  EXPECT_GT(g.num_edges(), 1000u);
}

TEST(CompleteBipartite, StructureAndFreeness) {
  const Graph g = complete_bipartite(5, 7);
  EXPECT_EQ(g.num_edges(), 35u);
  EXPECT_TRUE(is_triangle_free(g));
  EXPECT_EQ(g.degree(0), 7u);
  EXPECT_EQ(g.degree(5), 5u);
}

TEST(RandomTree, IsConnectedAcyclic) {
  Rng rng(3);
  const Graph g = random_tree(200, rng);
  EXPECT_EQ(g.num_edges(), 199u);
  EXPECT_TRUE(is_triangle_free(g));
}

TEST(Star, Structure) {
  const Graph g = star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_TRUE(is_triangle_free(g));
}

TEST(Cycle, EvenCycleIsTriangleFree) {
  EXPECT_TRUE(is_triangle_free(cycle(100)));
  EXPECT_EQ(cycle(100).num_edges(), 100u);
  EXPECT_FALSE(is_triangle_free(cycle(3)));
}

TEST(RandomMatching, DegreeAtMostOne) {
  Rng rng(4);
  const Graph g = random_matching(100, rng);
  EXPECT_EQ(g.num_edges(), 50u);
  for (Vertex v = 0; v < g.n(); ++v) EXPECT_LE(g.degree(v), 1u);
}

TEST(C5Blowup, DenseAndTriangleFree) {
  const Graph g = c5_blowup(100);
  EXPECT_EQ(g.num_edges(), 5u * 20 * 20);
  EXPECT_TRUE(is_triangle_free(g));
  EXPECT_GT(g.average_degree(), 30.0);
}

TEST(PlantedTriangles, ExactTriangleCountAndFarness) {
  Rng rng(5);
  const Graph g = planted_triangles(300, 40, rng);
  EXPECT_EQ(count_triangles(g), 40u);
  // 40 disjoint triangles / (120 + 90) edges -> ~0.19-far.
  EXPECT_TRUE(certify_eps_far(g, 0.15, rng));
}

TEST(PlantedTriangles, RejectsTooMany) {
  Rng rng(5);
  EXPECT_THROW(planted_triangles(10, 4, rng), std::invalid_argument);
}

TEST(HubMatching, HubsHaveHighDegreeAndGraphIsFar) {
  Rng rng(6);
  const std::uint32_t hubs = 4;
  const Vertex n = 800;
  const Graph g = hub_matching(n, hubs, rng);
  for (Vertex h = 0; h < hubs; ++h) EXPECT_EQ(g.degree(h), n - hubs);
  // Average degree ~ 3 * hubs.
  EXPECT_NEAR(g.average_degree(), 3.0 * hubs, 1.5);
  // Theta(hubs * n / 2) edge-disjoint triangles out of ~1.5 hubs n edges.
  EXPECT_TRUE(certify_eps_far(g, 0.15, rng));
  // Every triangle goes through a hub: non-hub-only subgraph (the union of
  // matchings) must be triangle-free with overwhelming probability... it is
  // a union of `hubs` random matchings, which can in principle close a
  // triangle; just verify triangles exist and are plentiful instead.
  EXPECT_GT(count_triangles(g), static_cast<std::uint64_t>(hubs) * (n - hubs) / 2 - 200);
}

TEST(TripartiteMu, StructureAndDensity) {
  Rng rng(7);
  const Vertex side = 300;
  const double gamma = 0.5;
  const Graph g = tripartite_mu(side, gamma, rng);
  EXPECT_EQ(g.n(), 3 * side);
  const double p = gamma / std::sqrt(static_cast<double>(side));
  const double expected = 3.0 * p * side * side;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * std::sqrt(expected));
  // No edge inside a part.
  for (const Edge& e : g.edges()) {
    const auto part = [&](Vertex v) { return v / side; };
    EXPECT_NE(part(e.u), part(e.v));
  }
}

TEST(EmbedWithIsolated, PreservesStructure) {
  Rng rng(8);
  const Graph core = gnp(50, 0.3, rng);
  const Graph g = embed_with_isolated(core, 500);
  EXPECT_EQ(g.n(), 500u);
  EXPECT_EQ(g.num_edges(), core.num_edges());
  EXPECT_EQ(count_triangles(g), count_triangles(core));
  for (Vertex v = 50; v < 500; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_THROW(embed_with_isolated(core, 10), std::invalid_argument);
}

TEST(DisjointUnion, ShiftsSecondGraph) {
  const Graph a(3, {{0, 1}, {1, 2}, {0, 2}});
  const Graph b(2, {{0, 1}});
  const Graph u = disjoint_union(a, b);
  EXPECT_EQ(u.n(), 5u);
  EXPECT_EQ(u.num_edges(), 4u);
  EXPECT_TRUE(u.has_edge(3, 4));
  EXPECT_EQ(count_triangles(u), 1u);
}

TEST(Overlay, UnionsEdgeSets) {
  const Graph a(4, {{0, 1}, {1, 2}});
  const Graph b(4, {{1, 2}, {2, 3}});
  const Graph u = overlay(a, b);
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_THROW(overlay(a, Graph(5, {})), std::invalid_argument);
}

// --- generator edge cases -------------------------------------------------

TEST(BipartiteGnp, ExtremeProbabilities) {
  Rng rng(1);
  EXPECT_EQ(bipartite_gnp(60, 0.0, rng).num_edges(), 0u);
  // p = 1 gives the complete bipartite graph K_{30,30}.
  const Graph full = bipartite_gnp(60, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 30u * 30u);
  EXPECT_TRUE(is_triangle_free(full));
}

TEST(TripartiteMu, TinySides) {
  Rng rng(2);
  for (const Vertex side : {0u, 1u, 2u}) {
    const Graph g = tripartite_mu(side, 0.9, rng);
    EXPECT_EQ(g.n(), 3 * side);
    // Cross edges only; at side <= 2 the graph is tripartite on micro parts.
    for (const Edge& e : g.edges()) EXPECT_NE(e.u / std::max<Vertex>(side, 1),
                                              e.v / std::max<Vertex>(side, 1));
  }
}

TEST(HubMatching, ZeroHubsIsEmpty) {
  Rng rng(3);
  const Graph g = hub_matching(100, 0, rng);
  EXPECT_EQ(g.n(), 100u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EmbedWithIsolated, TotalEqualsCore) {
  Rng rng(4);
  const Graph core = gnp(40, 0.3, rng);
  const Graph g = embed_with_isolated(core, 40);
  EXPECT_EQ(g.n(), core.n());
  EXPECT_EQ(g.num_edges(), core.num_edges());
  EXPECT_EQ(count_triangles(g), count_triangles(core));
}

// --- Vertex-width boundary regressions (pair_count / unrank_pair) ---------
//
// Two hazards when n is a 32-bit Vertex: the raw product n*(n-1) overflows
// u32 already for n > 2^16, and the pair count n*(n-1)/2 itself exceeds u32
// for n >= 92683. Both must be evaluated in 64 bits (the chunked index
// spaces at n = 1e8 sit far above both boundaries).

TEST(PairSampling, CountCrossesThe32BitProductBoundary) {
  // n just past 2^16: the raw product n*(n-1) no longer fits in 32 bits.
  const std::uint64_t n = (1ull << 16) + 3;
  EXPECT_EQ(pair_count(n), n * (n - 1) / 2);
  EXPECT_GT(pair_count(n), std::uint64_t{1} << 31);
  // n = 92683: the pair count itself exceeds 2^32.
  EXPECT_GT(pair_count(92683), std::uint64_t{0xFFFFFFFF});
  EXPECT_EQ(pair_count(92683), 92683ull * 92682ull / 2);
}

TEST(PairSampling, UnrankAtBoundaries) {
  for (const std::uint64_t n : {2ull, 363ull, 65539ull, 92683ull, 200000ull}) {
    const std::uint64_t total = pair_count(n);
    const auto first = unrank_pair(0, n);
    EXPECT_EQ(first.first, 0u);
    EXPECT_EQ(first.second, 1u);
    const auto last = unrank_pair(total - 1, n);
    EXPECT_EQ(last.first, n - 2);
    EXPECT_EQ(last.second, n - 1);
    // Round-trip a few interior indices through the ranking formula
    // idx = r*n - r*(r+1)/2 + (c - r - 1).
    for (const std::uint64_t idx :
         {total / 7, total / 3, total / 2, total - total / 5 - 1}) {
      const auto [r, c] = unrank_pair(idx, n);
      ASSERT_LT(r, c);
      ASSERT_LT(static_cast<std::uint64_t>(c), n);
      const std::uint64_t rr = r;
      EXPECT_EQ(rr * n - rr * (rr + 1) / 2 + (c - rr - 1), idx);
    }
  }
}

TEST(PairSampling, UnrankPast32BitPairCount) {
  // Indices beyond 2^32 must unrank without truncation: take the very last
  // index of a space with > 2^32 pairs and one just above 2^32.
  const std::uint64_t n = 100000;
  const std::uint64_t total = pair_count(n);  // ~5e9 > 2^32
  ASSERT_GT(total, std::uint64_t{1} << 32);
  const std::uint64_t idx = (std::uint64_t{1} << 32) + 12345;
  const auto [r, c] = unrank_pair(idx, n);
  const std::uint64_t rr = r;
  EXPECT_EQ(rr * n - rr * (rr + 1) / 2 + (c - rr - 1), idx);
}

TEST(PairSampling, SkipSampleRangeSplitsCleanly) {
  // Splitting [0, total) into ranges with per-range streams yields exactly
  // the indices each range's stream would produce — the identity the
  // chunked generator's per-block sampling rests on.
  const std::uint64_t total = 10000;
  const double p = 0.03;
  std::vector<std::uint64_t> split;
  for (const auto& [lo, hi] : std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 4000}, {4000, 9000}, {9000, 10000}}) {
    Rng rng = derive_rng(99, lo);
    skip_sample_range(lo, hi, p, rng, [&](std::uint64_t i) { split.push_back(i); });
    for (std::size_t j = 1; j < split.size(); ++j) ASSERT_LT(split[j - 1], split[j]);
  }
  for (const std::uint64_t i : split) ASSERT_LT(i, total);
  EXPECT_NEAR(static_cast<double>(split.size()), p * total, 6 * std::sqrt(p * total));
}

}  // namespace
}  // namespace tft::gen
