#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/oneway_vee.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "lower_bounds/mu_distribution.h"
#include "streaming/reduction.h"
#include "util/rng.h"

/// \file golden_cases.h
/// The smallest-config protocol runs behind the golden-transcript
/// regression files. One case per communication model (plus the streaming
/// reduction), fully determined by `seed`: tests/test_golden_transcripts.cpp
/// replays them at seed 1 against the checked-in tests/golden/*.txt, and
/// examples/golden_transcripts.cpp replays them per trial under the
/// parallel trial engine so CI can diff `--threads 1` vs `--threads 64`
/// byte for byte. Shared by both so they can never drift apart.

namespace tft::golden {

struct GoldenCase {
  std::string name;
  /// Executes exactly one checked protocol run (the caller owns the
  /// TranscriptCapture that records it).
  std::function<void()> run;
};

[[nodiscard]] inline std::vector<GoldenCase> cases(std::uint64_t seed = 1) {
  std::vector<GoldenCase> out;

  out.push_back({"sim_low", [seed] {
                   Rng rng = derive_rng(seed, 0);
                   const Graph g = gen::planted_triangles(36, 4, rng);
                   const auto players = partition_random(g, 3, rng);
                   SimLowOptions o;
                   o.average_degree = std::max(1.0, g.average_degree());
                   o.seed = derive_rng(seed, 100)();
                   (void)sim_low_find_triangle(players, o);
                 }});

  out.push_back({"sim_oblivious", [seed] {
                   Rng rng = derive_rng(seed, 1);
                   const Graph g = gen::gnp(32, 0.2, rng);
                   const auto players = partition_random(g, 3, rng);
                   SimObliviousOptions o;
                   o.seed = derive_rng(seed, 101)();
                   (void)sim_oblivious_find_triangle(players, o);
                 }});

  out.push_back({"coordinator", [seed] {
                   Rng rng = derive_rng(seed, 2);
                   const Graph g = gen::planted_triangles(48, 5, rng);
                   const auto players = partition_random(g, 3, rng);
                   UnrestrictedOptions o;
                   o.seed = derive_rng(seed, 102)();
                   (void)find_triangle_unrestricted(players, o);
                 }});

  out.push_back({"blackboard", [seed] {
                   Rng rng = derive_rng(seed, 3);
                   const Graph g = gen::planted_triangles(48, 5, rng);
                   const auto players = partition_random(g, 3, rng);
                   UnrestrictedOptions o;
                   o.seed = derive_rng(seed, 103)();
                   o.blackboard = true;
                   (void)find_triangle_unrestricted(players, o);
                 }});

  out.push_back({"oneway_vee", [seed] {
                   Rng rng = derive_rng(seed, 4);
                   const auto mu = sample_mu(12, 0.9, rng);
                   const auto players = partition_mu_three(mu);
                   OneWayOptions o;
                   o.seed = derive_rng(seed, 104)();
                   o.budget_edges_per_player = 16;
                   (void)oneway_vee_find_edge(players, mu.layout, o);
                 }});

  out.push_back({"streaming_oneway", [seed] {
                   Rng rng = derive_rng(seed, 5);
                   const Graph g = gen::planted_triangles(30, 3, rng);
                   const auto players = partition_random(g, 3, rng);
                   (void)one_way_via_streaming(players, 512, derive_rng(seed, 105)());
                 }});

  return out;
}

}  // namespace tft::golden
