#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/partition.h"
#include "util/rng.h"

namespace tft {
namespace {

Graph make_test_graph(Rng& rng) { return gen::gnp(200, 0.05, rng); }

TEST(Partition, RandomPartitionCoversAllEdgesExactlyOnce) {
  Rng rng(1);
  const Graph g = make_test_graph(rng);
  const auto players = partition_random(g, 4, rng);
  ASSERT_EQ(players.size(), 4u);
  EXPECT_TRUE(is_duplication_free(players));
  std::size_t total = 0;
  for (const auto& p : players) {
    total += p.local.num_edges();
    EXPECT_EQ(p.n(), g.n());
    EXPECT_EQ(p.k, 4u);
  }
  EXPECT_EQ(total, g.num_edges());
  const Graph u = union_graph(players);
  EXPECT_EQ(u.num_edges(), g.num_edges());
}

TEST(Partition, UnionReconstructsGraph) {
  Rng rng(2);
  const Graph g = make_test_graph(rng);
  const auto players = partition_duplicated(g, 5, 2.5, rng);
  const Graph u = union_graph(players);
  ASSERT_EQ(u.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_EQ(u.edge(i), g.edge(i));
}

TEST(Partition, DuplicationFactorIsRespected) {
  Rng rng(3);
  const Graph g = make_test_graph(rng);
  const double dup = 2.0;
  const auto players = partition_duplicated(g, 8, dup, rng);
  EXPECT_FALSE(is_duplication_free(players));
  std::size_t total = 0;
  for (const auto& p : players) total += p.local.num_edges();
  const double expected = dup * static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(total), expected, 0.15 * expected);
}

TEST(Partition, EveryEdgeAppearsSomewhereUnderDuplication) {
  Rng rng(4);
  const Graph g = make_test_graph(rng);
  const auto players = partition_duplicated(g, 3, 1.7, rng);
  const Graph u = union_graph(players);
  EXPECT_EQ(u.num_edges(), g.num_edges());
}

TEST(Partition, ByVertexColocatesEdges) {
  Rng rng(5);
  const Graph g = gen::star(100);  // all edges share vertex 0
  PartitionOptions opts;
  opts.by_vertex = true;
  const auto players = partition_edges(g, 4, opts, rng);
  // All star edges have min endpoint 0, so exactly one player owns them all.
  std::size_t owners = 0;
  for (const auto& p : players) owners += p.local.num_edges() > 0 ? 1 : 0;
  EXPECT_EQ(owners, 1u);
}

TEST(Partition, HeavyFractionSkewsPlayerZero) {
  Rng rng(6);
  const Graph g = make_test_graph(rng);
  PartitionOptions opts;
  opts.heavy_fraction = 0.8;
  const auto players = partition_edges(g, 4, opts, rng);
  EXPECT_GT(players[0].local.num_edges(), g.num_edges() / 2);
}

TEST(Partition, SinglePlayerGetsEverything) {
  Rng rng(7);
  const Graph g = make_test_graph(rng);
  const auto players = partition_random(g, 1, rng);
  EXPECT_EQ(players[0].local.num_edges(), g.num_edges());
}

TEST(Partition, InvalidArguments) {
  Rng rng(8);
  const Graph g = make_test_graph(rng);
  EXPECT_THROW(partition_random(g, 0, rng), std::invalid_argument);
  PartitionOptions bad;
  bad.dup_factor = 0.5;
  EXPECT_THROW(partition_edges(g, 2, bad, rng), std::invalid_argument);
  bad.dup_factor = 1.0;
  bad.heavy_fraction = 1.0;
  EXPECT_THROW(partition_edges(g, 2, bad, rng), std::invalid_argument);
}

TEST(PlayerInput, LocalDegreeMatchesLocalGraph) {
  Rng rng(9);
  const Graph g = make_test_graph(rng);
  const auto players = partition_random(g, 3, rng);
  // Sum of local degrees equals the true degree (no duplication).
  for (Vertex v = 0; v < g.n(); ++v) {
    std::uint32_t sum = 0;
    for (const auto& p : players) sum += p.local_degree(v);
    EXPECT_EQ(sum, g.degree(v));
  }
}

}  // namespace
}  // namespace tft
