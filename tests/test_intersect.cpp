#include "graph/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "graph/triangles.h"
#include "proptest.h"
#include "util/arena.h"
#include "util/cpu.h"
#include "util/mem.h"
#include "util/rng.h"

namespace tft {
namespace {

using kernel::Variant;

/// Restore the process-global kernel knobs on scope exit so a test that
/// forces a variant/blocking/retain setting can't leak into its neighbors.
struct KernelKnobGuard {
  Variant variant = kernel::variant();
  std::uint32_t block_bits = kernel::block_bits();
  std::size_t retain = kernel::scratch_retain_bytes();
  ~KernelKnobGuard() {
    kernel::set_variant(variant);
    kernel::set_block_bits(block_bits);
    kernel::set_scratch_retain_bytes(retain);
  }
};

std::vector<Variant> all_variants() {
  return {Variant::kScalar, Variant::kAvx2, Variant::kBitset, Variant::kAuto};
}

// --- Arena ----------------------------------------------------------------

TEST(Arena, AllocatesAlignedAndDistinct) {
  Arena arena;
  auto a = arena.alloc<std::uint64_t>(100);
  auto b = arena.alloc<std::uint8_t>(3);
  auto c = arena.alloc<std::uint64_t>(5);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % alignof(std::uint64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(std::uint64_t), 0u);
  a[99] = 1;
  b[2] = 2;
  c[4] = 3;
  EXPECT_EQ(a[99], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(c[4], 3u);
}

TEST(Arena, RewindReusesMemoryWithoutGrowth) {
  Arena arena;
  (void)arena.alloc<std::uint8_t>(1000);
  const auto mark = arena.mark();
  const void* first = arena.alloc<std::uint8_t>(5000).data();
  const std::size_t cap = arena.capacity_bytes();
  for (int i = 0; i < 100; ++i) {
    arena.rewind(mark);
    const void* again = arena.alloc<std::uint8_t>(5000).data();
    EXPECT_EQ(again, first);
  }
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(Arena, GrowsAcrossBlocksAndServesLargeRequests) {
  Arena arena;
  // Far beyond the first 64 KiB block; spans several doubling blocks.
  for (int i = 0; i < 64; ++i) {
    auto s = arena.alloc<std::uint32_t>(16 << 10);
    s[0] = static_cast<std::uint32_t>(i);
    s[s.size() - 1] = static_cast<std::uint32_t>(i);
  }
  // A single request larger than any existing block.
  auto big = arena.alloc<std::uint8_t>(3u << 20);
  big[0] = 1;
  big[big.size() - 1] = 2;
  EXPECT_GE(arena.capacity_bytes(), 3u << 20);
}

TEST(Arena, ChargesTheProcessArenaCounters) {
  const std::uint64_t before = arena_bytes();
  {
    Arena arena;
    (void)arena.alloc<std::uint8_t>(1 << 20);
    EXPECT_GE(arena_bytes(), before + (1u << 20));
  }
  EXPECT_EQ(arena_bytes(), before);  // destructor released every block
}

TEST(Arena, TrimDropsExcessCapacity) {
  Arena arena;
  (void)arena.alloc<std::uint8_t>(8 << 20);
  const std::size_t grown = arena.capacity_bytes();
  ASSERT_GE(grown, 8u << 20);
  arena.trim(Arena::kMinBlockBytes);
  EXPECT_LE(arena.capacity_bytes(), Arena::kMinBlockBytes);
  // Still usable after the trim.
  auto s = arena.alloc<std::uint32_t>(128);
  s[127] = 7;
  EXPECT_EQ(s[127], 7u);
}

TEST(Arena, ScopeRewindsOnExit) {
  Arena arena;
  (void)arena.alloc<std::uint8_t>(64);
  const std::size_t used = arena.used_bytes();
  {
    ArenaScope outer(arena);
    (void)arena.alloc<std::uint8_t>(1000);
    {
      ArenaScope inner(arena);
      (void)arena.alloc<std::uint8_t>(1000);
    }
    EXPECT_GT(arena.used_bytes(), used);
  }
  EXPECT_EQ(arena.used_bytes(), used);
}

TEST(ArenaBuf, GrowsClearsAndTakesExact) {
  Arena arena;
  ArenaScope scope(arena);
  ArenaBuf<std::uint32_t> buf(arena, 4);
  for (std::uint32_t i = 0; i < 1000; ++i) buf.push_back(i * 3);
  ASSERT_EQ(buf.size(), 1000u);
  const std::vector<std::uint32_t> out = buf.take();
  ASSERT_EQ(out.size(), 1000u);
  EXPECT_EQ(out.capacity(), 1000u);  // exact-size: no doubling slack escapes
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * 3);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push_back(42);
  EXPECT_EQ(buf[0], 42u);
}

// --- CPU probe ------------------------------------------------------------

TEST(Cpu, FeaturesAreStableAndConsistent) {
  const cpu::Features& a = cpu::features();
  const cpu::Features& b = cpu::features();
  EXPECT_EQ(&a, &b);  // probed once
  EXPECT_EQ(cpu::have_avx2(), a.avx2);
  EXPECT_EQ(kernel::avx2_available(), cpu::have_avx2());
}

TEST(KernelDispatch, VariantNamesRoundTrip) {
  for (const Variant v : all_variants()) {
    const auto parsed = kernel::variant_from_name(kernel::to_string(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(kernel::variant_from_name("sse9").has_value());
}

TEST(KernelDispatch, ResolutionNeverYieldsAutoAndRespectsHost) {
  KernelKnobGuard guard;
  for (const Variant v : all_variants()) {
    kernel::set_variant(v);
    const Variant r = kernel::resolved_variant();
    EXPECT_NE(r, Variant::kAuto);
    EXPECT_EQ(kernel::ops().strategy, r);
    if (!kernel::avx2_available()) {
      EXPECT_NE(r, Variant::kAvx2);
    }
  }
  kernel::set_variant(Variant::kScalar);
  EXPECT_EQ(kernel::resolved_variant(), Variant::kScalar);
}

// --- Primitive-level identity against references --------------------------

std::vector<Vertex> sorted_unique(Rng& rng, std::size_t len, Vertex universe) {
  std::set<Vertex> s;
  while (s.size() < len && s.size() < universe) {
    s.insert(static_cast<Vertex>(rng.below(universe)));
  }
  return {s.begin(), s.end()};
}

std::vector<Vertex> reference_commons(const std::vector<Vertex>& a, const std::vector<Vertex>& b) {
  std::vector<Vertex> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

TEST(IntersectPrimitives, AllVariantsMatchReferenceOnRandomSets) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const Vertex universe = 16 + static_cast<Vertex>(rng.below(4000));
    // Lengths straddle the 8-lane block width and the gallop ratio.
    const std::size_t la = rng.below(80);
    const std::size_t lb = rng.below(3) == 0 ? rng.below(2000) : rng.below(90);
    const auto a = sorted_unique(rng, la, universe);
    const auto b = sorted_unique(rng, lb, universe);
    const auto expect = reference_commons(a, b);

    // Byte marks / bitmap of b's elements, probed with a's candidates.
    std::uint8_t* marks = kernel::mark_bytes(universe);
    std::uint32_t* bits = kernel::mark_bits(universe);
    for (const Vertex x : b) marks[x] = 1;
    for (const Vertex x : b) bits[x >> 5] |= 1u << (x & 31);

    for (const Variant v : all_variants()) {
      const kernel::Ops& ops = kernel::ops_for(v);
      EXPECT_EQ(ops.merge_count(a, b), expect.size());
      EXPECT_EQ(ops.merge_count(b, a), expect.size());
      EXPECT_EQ(ops.marks_count(marks, a.data(), a.size()), expect.size());
      EXPECT_EQ(ops.bitmap_count(bits, a.data(), a.size(), 0), expect.size());

      // find: visiting order must be the ascending commons, exactly.
      struct Collect {
        std::vector<Vertex> seen;
      } coll;
      const kernel::Accept never = [](void* ctx, Vertex w) {
        static_cast<Collect*>(ctx)->seen.push_back(w);
        return false;
      };
      Vertex w = 0;
      EXPECT_FALSE(ops.merge_find(a, b, never, &coll, &w));
      EXPECT_EQ(coll.seen, expect);
      coll.seen.clear();
      EXPECT_FALSE(ops.bitmap_find(bits, a.data(), a.size(), never, &coll, &w));
      EXPECT_EQ(coll.seen, expect);
      // First-accept returns the smallest common.
      if (!expect.empty()) {
        ASSERT_TRUE(ops.merge_find(a, b, nullptr, nullptr, &w));
        EXPECT_EQ(w, expect.front());
        ASSERT_TRUE(ops.bitmap_find(bits, a.data(), a.size(), nullptr, nullptr, &w));
        EXPECT_EQ(w, expect.front());
      }
    }

    for (const Vertex x : b) marks[x] = 0;
    for (const Vertex x : b) bits[x >> 5] &= ~(1u << (x & 31));
  }
}

TEST(IntersectPrimitives, BitmapCountHonorsBase) {
  Rng rng(7);
  const Vertex base = 1000;
  const Vertex span = 512;
  std::uint32_t* bits = kernel::mark_bits(span);
  std::vector<Vertex> candidates;
  std::vector<Vertex> marked;
  for (Vertex w = base; w < base + span; w += 3) {
    candidates.push_back(w);
    if (rng.below(2) == 0) {
      marked.push_back(w);
      bits[(w - base) >> 5] |= 1u << ((w - base) & 31);
    }
  }
  for (const Variant v : all_variants()) {
    EXPECT_EQ(kernel::ops_for(v).bitmap_count(bits, candidates.data(), candidates.size(), base),
              marked.size());
  }
  for (const Vertex w : marked) bits[(w - base) >> 5] &= ~(1u << ((w - base) & 31));
}

TEST(IntersectPrimitives, EmptyAndDisjointInputs) {
  const std::vector<Vertex> none;
  const std::vector<Vertex> some = {1, 5, 9, 12, 40, 41, 42, 43, 44, 45};
  const std::vector<Vertex> other = {0, 2, 6, 10, 13, 50, 51, 52, 53, 54};
  for (const Variant v : all_variants()) {
    const kernel::Ops& ops = kernel::ops_for(v);
    Vertex w = 0;
    EXPECT_EQ(ops.merge_count(none, none), 0u);
    EXPECT_EQ(ops.merge_count(none, some), 0u);
    EXPECT_EQ(ops.merge_count(some, other), 0u);
    EXPECT_FALSE(ops.merge_find(none, some, nullptr, nullptr, &w));
    EXPECT_FALSE(ops.merge_find(some, other, nullptr, nullptr, &w));
    EXPECT_EQ(ops.marks_count(kernel::mark_bytes(64), some.data(), some.size()), 0u);
    EXPECT_EQ(ops.bitmap_count(kernel::mark_bits(64), some.data(), some.size(), 0), 0u);
  }
}

// --- Degenerate graphs through every dispatch variant ---------------------

std::uint64_t brute_count(const Graph& g) {
  std::uint64_t c = 0;
  for (const Edge& e : g.edges()) {
    for (Vertex w = 0; w < g.n(); ++w) {
      if (w != e.u && w != e.v && g.has_edge(e.u, w) && g.has_edge(e.v, w)) ++c;
    }
  }
  return c / 3;
}

TEST(KernelDegenerate, EveryVariantHandlesEdgeCaseGraphs) {
  KernelKnobGuard guard;
  const std::vector<Graph> graphs = {
      Graph(0, {}),                     // n = 0
      Graph(1, {}),                     // single isolated vertex
      Graph(64, {}),                    // all-isolated
      gen::star(40),                    // one hub, no triangles
      gen::cycle(5),                    // odd cycle, no triangles
      gen::complete_bipartite(6, 7),    // dense, triangle-free
      [] {                              // complete K_9: C(9,3) = 84 triangles
        std::vector<Edge> edges;
        for (Vertex u = 0; u < 9; ++u) {
          for (Vertex v = u + 1; v < 9; ++v) edges.emplace_back(u, v);
        }
        return Graph(9, std::move(edges));
      }(),
      [] {  // two disjoint triangles plus isolated tail
        std::vector<Edge> e = {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}};
        return Graph(16, std::move(e));
      }(),
  };
  for (const Graph& g : graphs) {
    const std::uint64_t expect = brute_count(g);
    for (const Variant v : all_variants()) {
      kernel::set_variant(v);
      EXPECT_EQ(count_triangles(g), expect) << "variant=" << kernel::to_string(v);
      const auto t = find_triangle(g);
      EXPECT_EQ(t.has_value(), expect > 0) << "variant=" << kernel::to_string(v);
      if (t) {
        EXPECT_TRUE(g.contains(*t));
      }
      Rng rng(99);
      const auto packing = greedy_triangle_packing(g, rng);
      if (expect == 0) {
        EXPECT_TRUE(packing.empty());
      }
      for (const Triangle& tri : packing) EXPECT_TRUE(g.contains(tri));
    }
  }
}

// --- Cross-variant identity over the generator zoo ------------------------

TEST(KernelVariantIdentity, CountFindPackingAgreeAcrossVariantsProperty) {
  KernelKnobGuard guard;
  const auto result = proptest::check(0x51D0, 40, [](const proptest::GraphCase& c) {
    const Graph g = c.graph();
    kernel::set_variant(Variant::kScalar);
    const std::uint64_t count0 = count_triangles(g);
    const auto find0 = find_triangle(g);
    Rng r0(c.seed);
    const auto pack0 = greedy_triangle_packing(g, r0);
    for (const Variant v : {Variant::kAvx2, Variant::kBitset, Variant::kAuto}) {
      kernel::set_variant(v);
      if (count_triangles(g) != count0) {
        return proptest::PropOutcome{false,
                                     std::string("count diverged on ") + kernel::to_string(v)};
      }
      if (find_triangle(g) != find0) {
        return proptest::PropOutcome{false,
                                     std::string("find diverged on ") + kernel::to_string(v)};
      }
      Rng rv(c.seed);
      if (greedy_triangle_packing(g, rv) != pack0) {
        return proptest::PropOutcome{false,
                                     std::string("packing diverged on ") + kernel::to_string(v)};
      }
    }
    kernel::set_variant(Variant::kScalar);
    return proptest::PropOutcome{};
  });
  EXPECT_TRUE(result.ok) << result.to_string();
}

TEST(KernelVariantIdentity, BlockedEqualsUnblockedProperty) {
  KernelKnobGuard guard;
  kernel::set_variant(Variant::kBitset);
  const auto result = proptest::check(0xB10C, 30, [](const proptest::GraphCase& c) {
    const Graph g = c.graph();
    kernel::set_block_bits(0);
    const std::uint64_t plain = count_triangles(g);
    // Tiny forced tiles (8 and 64 vertices) exercise many-block traversal
    // and the empty-tile cursor advance on small graphs.
    for (const std::uint32_t bits : {3u, 6u}) {
      kernel::set_block_bits(bits);
      if (count_triangles(g) != plain) {
        kernel::set_block_bits(0);
        return proptest::PropOutcome{
            false, "blocked count diverged at block_bits=" + std::to_string(bits)};
      }
    }
    kernel::set_block_bits(0);
    return proptest::PropOutcome{};
  });
  EXPECT_TRUE(result.ok) << result.to_string();
}

// --- Scratch cap-and-reallocate -------------------------------------------

TEST(KernelScratch, OneOffLargeCallDoesNotPinMemory) {
  KernelKnobGuard guard;
  kernel::release_thread_scratch();
  kernel::set_scratch_retain_bytes(1 << 20);  // 1 MiB cap for the test
  (void)kernel::mark_bytes(16u << 20);        // one-off "huge n" call
  EXPECT_GE(kernel::thread_scratch_bytes(), 16u << 20);
  // The next small request must shrink the buffer back to its own size.
  std::uint8_t* marks = kernel::mark_bytes(1000);
  EXPECT_LT(kernel::thread_scratch_bytes(), 1u << 20);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(marks[i], 0) << i;  // still zeroed
  kernel::release_thread_scratch();
  EXPECT_EQ(kernel::thread_scratch_bytes(), 0u);
}

TEST(KernelScratch, RetainedCapacityIsReusedBelowTheCap) {
  KernelKnobGuard guard;
  kernel::release_thread_scratch();
  kernel::set_scratch_retain_bytes(64 << 20);
  (void)kernel::mark_bytes(1 << 20);
  const std::size_t held = kernel::thread_scratch_bytes();
  (void)kernel::mark_bytes(1000);  // far smaller, but under the retain cap
  EXPECT_EQ(kernel::thread_scratch_bytes(), held);
  kernel::release_thread_scratch();
}

TEST(KernelScratch, BitmapScratchShrinksLikeBytes) {
  KernelKnobGuard guard;
  kernel::release_thread_scratch();
  kernel::set_scratch_retain_bytes(1 << 16);
  (void)kernel::mark_bits(64u << 20);  // 8 MiB of words
  EXPECT_GE(kernel::thread_scratch_bytes(), 8u << 20);
  std::uint32_t* bits = kernel::mark_bits(1 << 10);
  EXPECT_LT(kernel::thread_scratch_bytes(), 1u << 16);
  for (std::size_t i = 0; i < (1u << 10) / 32; ++i) EXPECT_EQ(bits[i], 0u);
  kernel::release_thread_scratch();
}

// --- CSR offset-width guard -----------------------------------------------

TEST(KernelGuards, RejectsEdgeCountsThatWouldWrapCsrOffsets) {
  EXPECT_NO_THROW(kernel::require_csr_offsets_fit(0));
  EXPECT_NO_THROW(kernel::require_csr_offsets_fit(UINT32_MAX - 1));
  EXPECT_THROW(kernel::require_csr_offsets_fit(UINT32_MAX), std::length_error);
  EXPECT_THROW(kernel::require_csr_offsets_fit(std::size_t{UINT32_MAX} + 17), std::length_error);
}

}  // namespace
}  // namespace tft
