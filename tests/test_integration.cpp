#include <gtest/gtest.h>

#include "core/exact_baseline.h"
#include "core/tester.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

/// End-to-end: families x protocols x partition modes, verifying the
/// one-sided contract everywhere and success on far inputs with repetition.

struct Workload {
  const char* name;
  Graph graph;
  bool is_far;  ///< far from triangle-free (vs exactly triangle-free)
};

std::vector<Workload> make_workloads() {
  Rng rng(2024);
  std::vector<Workload> w;
  w.push_back({"planted", gen::planted_triangles(1200, 180, rng), true});
  w.push_back({"hub", gen::hub_matching(1200, 3, rng), true});
  w.push_back({"gnp-dense", gen::gnp(700, 0.08, rng), true});
  w.push_back({"bipartite", gen::bipartite_gnp(1000, 0.01, rng), false});
  w.push_back({"c5-blowup", gen::c5_blowup(400), false});
  w.push_back({"tree", gen::random_tree(900, rng), false});
  return w;
}

TEST(Integration, AllProtocolsHonorOneSidednessOnAllWorkloads) {
  Rng rng(1);
  for (const auto& w : make_workloads()) {
    for (const double dup : {1.0, 2.0}) {
      const auto players = dup > 1.0 ? partition_duplicated(w.graph, 4, dup, rng)
                                     : partition_random(w.graph, 4, rng);
      for (const auto kind : {ProtocolKind::kUnrestricted, ProtocolKind::kSimLow,
                              ProtocolKind::kSimHigh, ProtocolKind::kSimOblivious,
                              ProtocolKind::kExact}) {
        TesterOptions o;
        o.protocol = kind;
        o.seed = 17;
        o.known_average_degree = std::max(1.0, w.graph.average_degree());
        const auto report = test_triangle_freeness(players, o);
        if (!w.is_far) {
          EXPECT_FALSE(report.triangle.has_value())
              << w.name << " / " << to_string(kind) << " reported a triangle on a "
              << "triangle-free input";
        } else if (report.triangle) {
          EXPECT_TRUE(w.graph.contains(*report.triangle))
              << w.name << " / " << to_string(kind) << " fabricated a triangle";
        }
      }
    }
  }
}

TEST(Integration, RepeatedTrialsSucceedOnFarInputs) {
  // Each far workload must be rejected by its degree-appropriate protocol
  // in at least 8/10 independent runs.
  Rng rng(3);
  const auto workloads = make_workloads();
  for (const auto& w : workloads) {
    if (!w.is_far) continue;
    const double d = w.graph.average_degree();
    const bool dense = d * d >= static_cast<double>(w.graph.n());
    int ok = 0;
    for (int t = 0; t < 10; ++t) {
      const auto players = partition_random(w.graph, 4, rng);
      TesterOptions o;
      o.protocol = dense ? ProtocolKind::kSimHigh : ProtocolKind::kSimLow;
      o.seed = 1000 + static_cast<std::uint64_t>(t);
      o.known_average_degree = std::max(1.0, d);
      o.eps = 0.05;
      ok += test_triangle_freeness(players, o).triangle.has_value() ? 1 : 0;
    }
    EXPECT_GE(ok, 8) << w.name;
  }
}

TEST(Integration, TestersAreCheaperThanExactOnLargeDenseInputs) {
  // The paper's headline gap (Section 5): property testing beats the
  // Omega(k m) exact baseline.
  Rng rng(4);
  const Graph g = gen::gnp(3000, 0.04, rng);  // m ~ 180k, d ~ 120
  const auto players = partition_random(g, 4, rng);
  const auto exact = exact_find_triangle(players);
  ASSERT_TRUE(exact.triangle.has_value());

  TesterOptions o;
  o.protocol = ProtocolKind::kSimHigh;
  o.known_average_degree = g.average_degree();
  o.seed = 5;
  const auto sim = test_triangle_freeness(players, o);
  EXPECT_LT(sim.bits * 10, exact.total_bits);

  UnrestrictedOptions uo;
  uo.consts = ProtocolConstants::practical();
  uo.seed = 5;
  const auto unres = find_triangle_unrestricted(players, uo);
  EXPECT_LT(unres.total_bits * 10, exact.total_bits);
}

TEST(Integration, DuplicationDoesNotBreakCorrectness) {
  Rng rng(5);
  const Graph g = gen::planted_triangles(1500, 220, rng);
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto players = partition_duplicated(g, 6, 3.0, rng);
    TesterOptions o;
    o.protocol = ProtocolKind::kSimOblivious;
    o.seed = 50 + static_cast<std::uint64_t>(t);
    const auto report = test_triangle_freeness(players, o);
    if (report.triangle) {
      EXPECT_TRUE(g.contains(*report.triangle));
      ++ok;
    }
  }
  EXPECT_GE(ok, 8);
}

TEST(Integration, AdversarialPartitionSkewStillWorks) {
  Rng rng(6);
  const Graph g = gen::planted_triangles(1500, 220, rng);
  PartitionOptions popts;
  popts.heavy_fraction = 0.9;  // player 0 hoards 90% of the edges
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto players = partition_edges(g, 4, popts, rng);
    TesterOptions o;
    o.protocol = ProtocolKind::kSimOblivious;
    o.seed = 60 + static_cast<std::uint64_t>(t);
    ok += test_triangle_freeness(players, o).triangle.has_value() ? 1 : 0;
  }
  EXPECT_GE(ok, 8);
}

TEST(Integration, VertexLocalityPartitionStillWorks) {
  Rng rng(7);
  const Graph g = gen::hub_matching(1500, 3, rng);
  PartitionOptions popts;
  popts.by_vertex = true;
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto players = partition_edges(g, 4, popts, rng);
    UnrestrictedOptions o;
    o.consts = ProtocolConstants::practical();
    o.seed = 70 + static_cast<std::uint64_t>(t);
    const auto r = find_triangle_unrestricted(players, o);
    ok += r.triangle.has_value() ? 1 : 0;
  }
  EXPECT_GE(ok, 8);
}

}  // namespace
}  // namespace tft
