// The service layer (src/service/): spec/reply codecs, the coordinator's
// scheduling and admission control, graceful drain, and the TCP daemon.
// Plus the transport-name registry the service surfaces through its CLIs.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "comm/wire.h"
#include "net/error.h"
#include "net/runtime.h"
#include "net/transport.h"
#include "service/coordinator.h"
#include "service/daemon.h"
#include "service/spec.h"

namespace tft::service {
namespace {

using net::NetError;
using net::NetErrorKind;

SessionSpec small_spec(std::uint64_t seed, std::string tenant = "") {
  SessionSpec spec;
  spec.family = InstanceFamily::kPlanted;
  spec.n = 200;
  spec.k = 4;
  spec.seed = seed;
  spec.tenant = std::move(tenant);
  return spec;
}

ServiceConfig inproc_config(std::size_t live, std::size_t pending) {
  ServiceConfig cfg;
  cfg.net.transport = net::TransportKind::kInProc;
  cfg.net.virtual_clock = true;
  cfg.max_live_sessions = live;
  cfg.max_pending = pending;
  return cfg;
}

// ---- codecs -----------------------------------------------------------------

TEST(ServiceSpec, CodecRoundTripsEveryField) {
  SessionSpec spec;
  spec.protocol = ProtocolKind::kUnrestricted;
  spec.family = InstanceFamily::kMu;
  spec.n = 99'991;
  spec.k = 17;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.eps_micro = 250'000;
  spec.param = 85;
  spec.tenant = "team-rocket";
  EXPECT_EQ(decode_spec(encode_spec(spec)), spec);
  EXPECT_EQ(decode_spec(encode_spec(SessionSpec{})), SessionSpec{});
}

TEST(ServiceSpec, DecodeRejectsCorruptBytesTyped) {
  const std::vector<std::uint8_t> good = encode_spec(small_spec(1, "t"));
  const auto expect_corrupt = [](std::span<const std::uint8_t> bytes) {
    try {
      (void)decode_spec(bytes);
      FAIL() << "malformed spec bytes must throw";
    } catch (const NetError& e) {
      EXPECT_EQ(e.kind(), NetErrorKind::kCorrupt);
    }
  };
  expect_corrupt({});                                             // empty
  expect_corrupt(std::span(good).first(good.size() / 2));         // truncated
  std::vector<std::uint8_t> bad_version = good;
  bad_version[0] = 0xFF;                                          // unknown version
  expect_corrupt(bad_version);
}

TEST(ServiceReplyCodec, RoundTripsVerdictAndAccounting) {
  ServiceReply reply;
  reply.status = ReplyStatus::kTriangle;
  reply.session_id = 42;
  reply.triangle = Triangle{3, 7, 11};
  reply.charged_bits = 123'456;
  reply.payload_bits = 123'456;
  reply.messages = 78;
  reply.frames = 31;
  reply.wire_bytes = 20'000;
  reply.accounting_exact = true;
  reply.conformance_ok = true;
  EXPECT_EQ(decode_reply(encode_reply(reply)), reply);

  ServiceReply busy;
  busy.status = ReplyStatus::kBusy;
  busy.error = "service at capacity";
  EXPECT_EQ(decode_reply(encode_reply(busy)), busy);
}

TEST(ServiceSpec, BuildPlayersIsAPureFunctionOfTheSpec) {
  const SessionSpec spec = small_spec(7);
  const auto a = build_players(spec);
  const auto b = build_players(spec);
  ASSERT_EQ(a.size(), spec.k);
  ASSERT_EQ(b.size(), spec.k);
  for (std::size_t j = 0; j < a.size(); ++j) {
    const auto ea = a[j].local.edges();
    const auto eb = b[j].local.edges();
    ASSERT_EQ(ea.size(), eb.size()) << "player " << j;
    EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin())) << "player " << j;
  }
}

// ---- transport registry (CLI surface) ---------------------------------------

TEST(ServiceTransports, NameRegistryRoundTrips) {
  for (const auto kind : {net::TransportKind::kSim, net::TransportKind::kInProc,
                          net::TransportKind::kSocket}) {
    const auto parsed = net::parse_transport(net::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << net::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ServiceTransports, UnknownNamesParseToNullopt) {
  for (const char* bogus : {"", "tcp", "SIM", "in-proc", "socket "}) {
    EXPECT_FALSE(net::parse_transport(bogus).has_value()) << "'" << bogus << "'";
  }
}

// ---- coordinator ------------------------------------------------------------

TEST(ServiceCoordinatorTest, RunsConcurrentSessionsWithExactAccounting) {
  ServiceCoordinator coordinator(inproc_config(/*live=*/2, /*pending=*/8));
  std::vector<std::future<SessionOutcome>> futures;
  futures.reserve(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    futures.push_back(coordinator.submit(small_spec(100 + i)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SessionOutcome out = futures[i].get();
    SCOPED_TRACE(i);
    EXPECT_NE(out.status, ReplyStatus::kError) << out.error;
    EXPECT_TRUE(out.accounting_exact);
    EXPECT_TRUE(out.conformance_ok);
    // Wire ids are minted at submission, in submission order, from 1.
    EXPECT_EQ(out.session_id, static_cast<std::uint32_t>(i + 1));
  }
  EXPECT_EQ(coordinator.sessions_completed(), 4u);
  EXPECT_EQ(coordinator.sessions_rejected(), 0u);
}

TEST(ServiceCoordinatorTest, RejectsPastCapacityWithTypedBusy) {
  // One worker, one admitted slot total: the second immediate submit must
  // bounce while the first still occupies admission.
  ServiceCoordinator coordinator(inproc_config(/*live=*/1, /*pending=*/1));
  SessionSpec slow = small_spec(1);
  slow.n = 4000;  // keep the single slot occupied across the second submit
  auto first = coordinator.submit(slow);
  try {
    (void)coordinator.submit(small_spec(2));
    FAIL() << "submit past max_pending must throw kServiceBusy";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kServiceBusy);
  }
  EXPECT_GE(coordinator.sessions_rejected(), 1u);
  const SessionOutcome out = first.get();
  EXPECT_NE(out.status, ReplyStatus::kError) << out.error;
}

TEST(ServiceCoordinatorTest, FairShareRoundRobinsAcrossTenants) {
  ServiceConfig cfg = inproc_config(/*live=*/1, /*pending=*/8);
  cfg.scheduler = SchedulerKind::kFairShare;
  ServiceCoordinator coordinator(cfg);

  // Pin the single worker on a slow tenant-a session, then queue a, a, b.
  // Round-robin resumes after "a": the lone b runs before both queued a's.
  SessionSpec slow = small_spec(1, "a");
  slow.n = 6000;
  auto pin = coordinator.submit(slow);
  auto a1 = coordinator.submit(small_spec(2, "a"));
  auto a2 = coordinator.submit(small_spec(3, "a"));
  auto b1 = coordinator.submit(small_spec(4, "b"));

  (void)b1.get();  // b's turn comes first...
  using namespace std::chrono_literals;
  const bool a_done_before_b =
      a1.wait_for(0s) == std::future_status::ready && a2.wait_for(0s) == std::future_status::ready;
  EXPECT_FALSE(a_done_before_b) << "fair-share must not serve tenant a twice before b";
  for (auto* f : {&pin, &a1, &a2}) {
    const SessionOutcome out = f->get();
    EXPECT_NE(out.status, ReplyStatus::kError) << out.error;
    EXPECT_TRUE(out.accounting_exact);
  }
}

TEST(ServiceCoordinatorTest, DrainStopsAdmissionTyped) {
  ServiceCoordinator coordinator(inproc_config(/*live=*/1, /*pending=*/2));
  auto f = coordinator.submit(small_spec(5));
  coordinator.drain();
  EXPECT_TRUE(f.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
      << "drain must wait for admitted sessions";
  EXPECT_NE(f.get().status, ReplyStatus::kError);
  try {
    (void)coordinator.submit(small_spec(6));
    FAIL() << "submit after drain must throw kClosed";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kClosed);
  }
}

TEST(ServiceCoordinatorTest, RejectsSimTransportAndZeroWorkers) {
  ServiceConfig sim;
  sim.net.transport = net::TransportKind::kSim;
  EXPECT_THROW(ServiceCoordinator{sim}, NetError);
  ServiceConfig none = inproc_config(1, 1);
  none.max_live_sessions = 0;
  EXPECT_THROW(ServiceCoordinator{none}, NetError);
  ServiceConfig starved = inproc_config(4, 2);  // pending < live idles workers
  EXPECT_THROW(ServiceCoordinator{starved}, NetError);
}

// ---- daemon -----------------------------------------------------------------

TEST(ServiceDaemonTest, ServesSpecsOverLoopbackTcp) {
  if (!net::LoopbackSocketTransport::available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  ServiceDaemon daemon(inproc_config(/*live=*/2, /*pending=*/8));
  ASSERT_NE(daemon.port(), 0);

  const ServiceReply r1 = request(daemon.port(), small_spec(11));
  const ServiceReply r2 = request(daemon.port(), small_spec(12));
  for (const ServiceReply& r : {r1, r2}) {
    EXPECT_NE(r.status, ReplyStatus::kError) << r.error;
    EXPECT_NE(r.status, ReplyStatus::kBusy);
    EXPECT_TRUE(r.accounting_exact);
    EXPECT_TRUE(r.conformance_ok);
    EXPECT_GT(r.charged_bits, 0u);
    EXPECT_GT(r.wire_bytes, 0u);
  }
  EXPECT_NE(r1.session_id, r2.session_id);
  if (r1.status == ReplyStatus::kTriangle) {
    EXPECT_TRUE(r1.triangle.has_value()) << "a triangle verdict must carry its witness";
  }

  daemon.shutdown();
  EXPECT_EQ(daemon.coordinator().sessions_completed(), 2u);
  // Shutdown is idempotent and the port stops answering.
  daemon.shutdown();
  EXPECT_THROW((void)request(daemon.port(), small_spec(13)), NetError);
}

// ---- spec versioning: the shard-affinity field ------------------------------

/// The default (affinity 0) spec must stay byte-identical to the pre-shard
/// v1 wire: reconstruct the v1 encoder's byte string field by field and
/// demand equality. A pre-shard peer decodes today's default specs, and
/// vice versa.
TEST(ServiceSpec, AffinityZeroKeepsTheV1WireBytes) {
  const SessionSpec spec = small_spec(9, "acme");
  BitWriter w;
  w.put_gamma(1);  // the pre-shard version tag
  w.put_gamma(static_cast<std::uint64_t>(spec.protocol));
  w.put_gamma(static_cast<std::uint64_t>(spec.family));
  w.put_gamma(spec.n);
  w.put_gamma(spec.k);
  w.put_bits(spec.seed, 64);
  w.put_gamma(spec.eps_micro);
  w.put_gamma(spec.param);
  w.put_gamma(spec.tenant.size());
  for (const char c : spec.tenant) w.put_bits(static_cast<std::uint8_t>(c), 8);
  EXPECT_EQ(encode_spec(spec), w.bytes());
}

TEST(ServiceSpec, AffinityRoundTripsThroughTheV2Wire) {
  SessionSpec spec = small_spec(10, "acme");
  spec.shard_affinity = 3;
  EXPECT_EQ(decode_spec(encode_spec(spec)), spec);
  spec.shard_affinity = UINT32_MAX;
  EXPECT_EQ(decode_spec(encode_spec(spec)), spec);
}

/// Canonicality: one value, one byte string. A v2 encoding carrying
/// affinity 0 (which should have been v1) is rejected, so nobody can mint
/// two distinct byte strings for the same spec.
TEST(ServiceSpec, RejectsNonCanonicalV2WithZeroAffinity) {
  const SessionSpec spec;  // all defaults, affinity 0
  BitWriter w;
  w.put_gamma(2);  // v2 tag on a spec that must encode as v1
  w.put_gamma(static_cast<std::uint64_t>(spec.protocol));
  w.put_gamma(static_cast<std::uint64_t>(spec.family));
  w.put_gamma(spec.n);
  w.put_gamma(spec.k);
  w.put_bits(spec.seed, 64);
  w.put_gamma(spec.eps_micro);
  w.put_gamma(spec.param);
  w.put_gamma(0);  // empty tenant
  w.put_gamma(0);  // the non-canonical zero affinity
  try {
    (void)decode_spec(w.bytes());
    FAIL() << "a v2 spec with affinity 0 must be rejected as non-canonical";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kCorrupt);
  }
}

// ---- client retry -----------------------------------------------------------

/// request_with_retry against a capacity-1 daemon: a zero-budget call
/// surfaces the typed kBusy reply (the exit-2 path), while a budgeted call
/// outlasts the busy window and lands a real verdict once the slot frees.
TEST(ServiceDaemonTest, RetryOutlastsABusyWindow) {
  if (!net::LoopbackSocketTransport::available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  ServiceDaemon daemon(inproc_config(/*live=*/1, /*pending=*/1));

  // A slow occupant holds the only admission slot while we probe.
  SessionSpec slow = small_spec(31);
  slow.n = 4000;
  ServiceReply occupant_reply;
  std::thread occupant([&] { occupant_reply = request(daemon.port(), slow); });
  while (daemon.coordinator().live_sessions() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // retries=0 is a plain request: the busy window is observable, typed.
  const ServiceReply busy = request_with_retry(daemon.port(), small_spec(32), 0, 1);
  EXPECT_EQ(busy.status, ReplyStatus::kBusy);
  EXPECT_FALSE(busy.error.empty()) << "a busy reply should say what was full";

  // A budgeted retry converges once the occupant completes.
  const ServiceReply ok = request_with_retry(daemon.port(), small_spec(33), 400, 5);
  EXPECT_NE(ok.status, ReplyStatus::kBusy) << ok.error;
  EXPECT_NE(ok.status, ReplyStatus::kError) << ok.error;
  EXPECT_TRUE(ok.accounting_exact);

  occupant.join();
  EXPECT_NE(occupant_reply.status, ReplyStatus::kBusy) << occupant_reply.error;
  EXPECT_NE(occupant_reply.status, ReplyStatus::kError) << occupant_reply.error;
}

}  // namespace
}  // namespace tft::service
