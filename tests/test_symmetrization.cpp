#include <gtest/gtest.h>

#include "core/sim_low.h"
#include "graph/generators.h"
#include "lower_bounds/mu_distribution.h"
#include "lower_bounds/symmetrization.h"
#include "util/rng.h"

namespace tft {
namespace {

/// A symmetric 3-part sampler: each part is an independent sparse G(n, p)
/// edge set over a common universe (symmetric marginals by construction).
ThreePartSampler symmetric_gnp_sampler(Vertex n, double p) {
  return [n, p](Rng& rng) {
    return std::array<Graph, 3>{gen::gnp(n, p, rng), gen::gnp(n, p, rng), gen::gnp(n, p, rng)};
  };
}

SimProtocol sim_low_protocol(double avg_degree, std::uint64_t seed) {
  return [avg_degree, seed](std::span<const PlayerInput> players) {
    SimLowOptions o;
    o.average_degree = avg_degree;
    o.c = 4.0;
    o.seed = seed;
    return sim_low_find_triangle(players, o);
  };
}

TEST(EmbedThree, AssignsPartsCorrectly) {
  Rng rng(1);
  const std::array<Graph, 3> x{gen::star(20), gen::cycle(20), gen::random_matching(20, rng)};
  const auto players = embed_three(x, 6, 1, 3);
  ASSERT_EQ(players.size(), 6u);
  EXPECT_EQ(players[1].local.num_edges(), x[0].num_edges());
  EXPECT_EQ(players[3].local.num_edges(), x[1].num_edges());
  for (const std::size_t p : {0u, 2u, 4u, 5u}) {
    EXPECT_EQ(players[p].local.num_edges(), x[2].num_edges());
  }
}

TEST(EmbedThree, RejectsBadIndices) {
  const std::array<Graph, 3> x{Graph(5, {}), Graph(5, {}), Graph(5, {})};
  EXPECT_THROW(embed_three(x, 2, 0, 1), std::invalid_argument);
  EXPECT_THROW(embed_three(x, 5, 2, 2), std::invalid_argument);
  EXPECT_THROW(embed_three(x, 5, 4, 1), std::invalid_argument);  // i = k-1 forbidden
}

TEST(Symmetrization, RatioIsTwoOverK) {
  // Theorem 4.15's accounting identity: because a simultaneous player's
  // message distribution depends only on its input marginal, and the
  // embedded distribution is symmetric, the expected one-way cost equals
  // (2/k) * expected total cost.
  const Vertex n = 300;
  const double p = 4.0 / n;
  for (const std::size_t k : {4u, 8u}) {
    const auto report = run_symmetrization(symmetric_gnp_sampler(n, p),
                                           sim_low_protocol(4.0, 99), k, 60, 1234 + k);
    EXPECT_GT(report.avg_sim_total_bits, 0.0);
    const double expected = 2.0 / static_cast<double>(k);
    EXPECT_NEAR(report.ratio(), expected, 0.5 * expected) << "k = " << k;
  }
}

TEST(Symmetrization, RatioShrinksWithK) {
  const Vertex n = 300;
  const double p = 4.0 / n;
  const auto r4 = run_symmetrization(symmetric_gnp_sampler(n, p), sim_low_protocol(4.0, 5), 4,
                                     40, 77);
  const auto r12 = run_symmetrization(symmetric_gnp_sampler(n, p), sim_low_protocol(4.0, 5), 12,
                                      40, 78);
  EXPECT_GT(r4.ratio(), r12.ratio());
}

TEST(Symmetrization, MuSamplerWorksEndToEnd) {
  // Use the actual hard distribution's three parts as the symmetric inputs
  // (the parts have equal marginals up to relabeling; good enough for the
  // plumbing test — the bench uses it at scale).
  const ThreePartSampler mu_sampler = [](Rng& rng) {
    const auto mu = sample_mu(100, 0.8, rng);
    const auto players = partition_mu_three(mu);
    return std::array<Graph, 3>{players[0].local, players[1].local, players[2].local};
  };
  const auto report =
      run_symmetrization(mu_sampler, sim_low_protocol(10.0, 6), 5, 20, 99);
  EXPECT_EQ(report.trials, 20u);
  EXPECT_GT(report.avg_sim_total_bits, 0.0);
  EXPECT_GT(report.avg_one_way_bits, 0.0);
}

}  // namespace
}  // namespace tft
