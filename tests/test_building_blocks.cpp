#include <gtest/gtest.h>

#include <map>

#include "core/building_blocks.h"
#include "core/buckets.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

struct Setup {
  Graph g;
  std::vector<PlayerInput> players;
  SharedRandomness sr{77};
};

Setup make_setup(std::size_t k, double dup, std::uint64_t seed) {
  Rng rng(seed);
  Setup s;
  s.g = gen::gnp(150, 0.08, rng);
  s.players = dup > 1.0 ? partition_duplicated(s.g, k, dup, rng)
                        : partition_random(s.g, k, rng);
  return s;
}

TEST(QueryEdge, MatchesGroundTruthAndCostsK) {
  const auto s = make_setup(4, 2.0, 1);
  Transcript t(4, s.g.n());
  int checked = 0;
  for (Vertex u = 0; u < 30; ++u) {
    for (Vertex v = u + 1; v < 30; ++v) {
      EXPECT_EQ(query_edge(s.players, t, Edge(u, v)), s.g.has_edge(u, v));
      ++checked;
    }
  }
  // k bits up + k bits down per query.
  EXPECT_EQ(t.total_bits(), static_cast<std::uint64_t>(checked) * 8);
}

TEST(SampleUniformBtilde, ReturnsMembersOfTheWidenedBucket) {
  const auto s = make_setup(3, 1.0, 2);
  Transcript t(3, s.g.n());
  for (std::uint32_t bucket = 1; bucket <= 4; ++bucket) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      const auto v = sample_uniform_btilde(s.players, t, s.sr, SharedTag{1, bucket, i}, bucket);
      if (!v) continue;
      // Sampled vertex must be a B~ member for some player, which bounds its
      // true degree to [d-(B_i)/k, k*d+(B_i)).
      const auto deg = s.g.degree(*v);
      EXPECT_GE(deg * 3, bucket_min_degree(bucket) / 3);
      EXPECT_LT(deg, 3 * bucket_max_degree(bucket) * 3);
    }
  }
}

TEST(SampleUniformBtilde, CoversAllBucketMembersUniformly) {
  // A star partitioned across players: bucket of the leaves (degree 1).
  Rng rng(3);
  const Graph g = gen::random_matching(40, rng);  // 20 disjoint edges, all degree 1
  const auto players = partition_duplicated(g, 3, 2.0, rng);
  const SharedRandomness sr(5);
  Transcript t(3, g.n());
  std::map<Vertex, int> counts;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const auto v = sample_uniform_btilde(players, t, sr, SharedTag{2, 0, static_cast<std::uint64_t>(i)}, 1);
    ASSERT_TRUE(v.has_value());
    ++counts[*v];
  }
  // All 40 vertices have degree 1 and must be hit roughly equally despite
  // duplication (the shared-permutation trick removes multiplicity bias).
  EXPECT_EQ(counts.size(), 40u);
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, kTrials / 40, 60) << "vertex " << v;
  }
}

TEST(RandomIncidentEdge, UniformOverDistinctEdgesDespiteDuplication) {
  // Vertex 0 has 5 incident edges; give one of them to every player (heavy
  // duplication) and the rest to one player each. The sampled edge must
  // still be ~uniform over the 5 distinct edges.
  const Vertex n = 8;
  std::vector<Edge> base{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}};
  std::vector<PlayerInput> players;
  const std::size_t k = 4;
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<Edge> mine{{0, 1}};  // duplicated everywhere
    for (std::size_t idx = 1; idx < base.size(); ++idx) {
      if (idx % k == j) mine.push_back(base[idx]);
    }
    players.push_back(PlayerInput{j, k, Graph(n, std::move(mine))});
  }
  const SharedRandomness sr(9);
  Transcript t(k, n);
  std::map<std::uint64_t, int> counts;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    const auto e = random_incident_edge(players, t, sr, SharedTag{3, 0, static_cast<std::uint64_t>(i)}, 0);
    ASSERT_TRUE(e.has_value());
    ++counts[e->key()];
  }
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [key, c] : counts) {
    EXPECT_NEAR(c, kTrials / 5, 120) << "edge key " << key;
  }
}

TEST(RandomIncidentEdge, NoneForIsolatedVertex) {
  const auto s = make_setup(3, 1.0, 4);
  // Add an isolated vertex by using index n-1 of a graph where it is
  // (almost surely) isolated: use a fresh tiny instance instead.
  std::vector<PlayerInput> players;
  players.push_back(PlayerInput{0, 1, Graph(4, {{0, 1}})});
  Transcript t(1, 4);
  EXPECT_FALSE(random_incident_edge(players, t, s.sr, SharedTag{4, 0, 0}, 3).has_value());
}

TEST(RandomEdge, UniformOverEdges) {
  Rng rng(6);
  const Graph g = gen::cycle(12);
  const auto players = partition_duplicated(g, 3, 2.0, rng);
  const SharedRandomness sr(10);
  Transcript t(3, g.n());
  std::map<std::uint64_t, int> counts;
  constexpr int kTrials = 6000;
  for (int i = 0; i < kTrials; ++i) {
    const auto e = random_edge(players, t, sr, SharedTag{5, 0, static_cast<std::uint64_t>(i)});
    ASSERT_TRUE(e.has_value());
    ASSERT_TRUE(g.has_edge(*e));
    ++counts[e->key()];
  }
  EXPECT_EQ(counts.size(), g.num_edges());
  for (const auto& [key, c] : counts) EXPECT_NEAR(c, kTrials / 12, 140);
}

TEST(RandomWalk, StaysOnRealEdges) {
  const auto s = make_setup(4, 1.5, 7);
  Transcript t(4, s.g.n());
  // Find a non-isolated start.
  Vertex start = 0;
  while (s.g.degree(start) == 0) ++start;
  const auto path = random_walk(s.players, t, s.sr, SharedTag{6, 0, 0}, start, 12);
  ASSERT_GE(path.size(), 1u);
  EXPECT_EQ(path.front(), start);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(s.g.has_edge(path[i], path[i + 1]));
  }
}

TEST(CollectInducedSubgraph, ExactOnUncapped) {
  const auto s = make_setup(4, 2.0, 8);
  std::vector<Vertex> sub;
  for (Vertex v = 0; v < 60; v += 2) sub.push_back(v);
  Transcript t(4, s.g.n());
  const auto edges = collect_induced_subgraph(s.players, t, sub, 0);
  // Must equal the true induced edge set.
  std::size_t expected = 0;
  for (const Edge& e : s.g.edges()) {
    const bool in = std::binary_search(sub.begin(), sub.end(), e.u) &&
                    std::binary_search(sub.begin(), sub.end(), e.v);
    if (in) ++expected;
  }
  EXPECT_EQ(edges.size(), expected);
  for (const Edge& e : edges) EXPECT_TRUE(s.g.has_edge(e));
}

TEST(CollectInducedSubgraph, CapLimitsPerPlayer) {
  const auto s = make_setup(2, 1.0, 9);
  std::vector<Vertex> all;
  for (Vertex v = 0; v < s.g.n(); ++v) all.push_back(v);
  Transcript t(2, s.g.n());
  const auto edges = collect_induced_subgraph(s.players, t, all, 5);
  EXPECT_LE(edges.size(), 10u);
}

TEST(CollectSampledNeighbors, SubsetOfTrueNeighborsAndShared) {
  const auto s = make_setup(4, 2.0, 10);
  Vertex v = 0;
  for (Vertex u = 0; u < s.g.n(); ++u) {
    if (s.g.degree(u) > s.g.degree(v)) v = u;
  }
  Transcript t(4, s.g.n());
  const SharedTag tag{7, 0, 0};
  const auto ns = collect_sampled_neighbors(s.players, t, s.sr, tag, v, 0.5, 0);
  for (const Vertex w : ns) {
    EXPECT_TRUE(s.g.has_edge(v, w));
    EXPECT_TRUE(s.sr.bernoulli(tag, w, 0.5));
  }
  // Every sampled true neighbor must appear (no cap).
  for (const Vertex w : s.g.neighbors(v)) {
    if (s.sr.bernoulli(tag, w, 0.5)) {
      EXPECT_TRUE(std::binary_search(ns.begin(), ns.end(), w));
    }
  }
}

TEST(CloseVeeRound, FindsTriangleIffPresent) {
  // Triangle 0-1-2 plus a dangling vee 0-3, 0-4 with no closing edge.
  const Graph g(5, {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {0, 4}});
  Rng rng(11);
  const auto players = partition_random(g, 2, rng);
  Transcript t(2, g.n());
  const std::vector<Vertex> closing{1, 2};
  const auto tri = close_vee_round(players, t, 0, closing);
  ASSERT_TRUE(tri.has_value());
  EXPECT_EQ(*tri, Triangle(0, 1, 2));
  EXPECT_TRUE(g.contains(*tri));
  const std::vector<Vertex> open{3, 4};
  EXPECT_FALSE(close_vee_round(players, t, 0, open).has_value());
}

TEST(BuildingBlocks, CostsScaleWithK) {
  // Edge query cost is exactly 2k bits; incident-edge <= k(1+log n)+k log n.
  for (const std::size_t k : {2, 4, 8}) {
    const auto s = make_setup(k, 1.0, 12);
    Transcript t(k, s.g.n());
    (void)query_edge(s.players, t, Edge(0, 1));
    EXPECT_EQ(t.total_bits(), 2 * k);
  }
}

}  // namespace
}  // namespace tft
