#include <gtest/gtest.h>

#include <cmath>

#include "core/buckets.h"

namespace tft {
namespace {

TEST(Buckets, BucketOfDegreeBoundaries) {
  EXPECT_EQ(bucket_of_degree(0), 0u);
  EXPECT_EQ(bucket_of_degree(1), 1u);
  EXPECT_EQ(bucket_of_degree(2), 1u);
  EXPECT_EQ(bucket_of_degree(3), 2u);
  EXPECT_EQ(bucket_of_degree(8), 2u);
  EXPECT_EQ(bucket_of_degree(9), 3u);
  EXPECT_EQ(bucket_of_degree(27), 4u);
}

TEST(Buckets, MinMaxDegreeInvariants) {
  for (std::uint32_t i = 1; i < 20; ++i) {
    const auto lo = bucket_min_degree(i);
    const auto hi = bucket_max_degree(i);
    EXPECT_EQ(hi, 3 * lo);
    // Every degree in [lo, hi) maps back to bucket i.
    EXPECT_EQ(bucket_of_degree(lo), i);
    EXPECT_EQ(bucket_of_degree(hi - 1), i);
    EXPECT_EQ(bucket_of_degree(hi), i + 1);
  }
}

TEST(Buckets, NumBucketsCoversAllDegrees) {
  const auto n = std::uint64_t{10000};
  const auto b = num_buckets(n);
  // Max possible degree is n-1; its bucket must be < b.
  EXPECT_LT(bucket_of_degree(n - 1), b);
  EXPECT_LT(b, 12u);  // log_3(10000) + 2
}

TEST(Buckets, BtildeContainsTrueBucketMembers) {
  // If deg(v) is in bucket i, and a player holds at least deg(v)/k of its
  // edges, that player's membership test must pass.
  const std::uint64_t k = 4;
  for (std::uint32_t i = 1; i < 10; ++i) {
    const std::uint64_t deg = bucket_min_degree(i);
    const std::uint64_t local = (deg + k - 1) / k;  // pigeonhole share
    EXPECT_TRUE(in_btilde(local, i, k)) << "bucket " << i;
    // The full degree also passes (it is < d+).
    EXPECT_TRUE(in_btilde(deg, i, k));
  }
}

TEST(Buckets, BtildeRejectsFarDegrees) {
  const std::uint64_t k = 4;
  // A local degree >= d+(B_i) cannot belong (the global degree would be
  // at least that).
  EXPECT_FALSE(in_btilde(bucket_max_degree(3), 3, k));
  // A local degree far below d-(B_i)/k cannot certify membership.
  EXPECT_FALSE(in_btilde(0, 3, k));
  EXPECT_FALSE(in_btilde(1, 5, k));  // d-(B_5)/k = 81/4 > 1
  // Isolated-vertex bucket is never suspected.
  EXPECT_FALSE(in_btilde(5, 0, k));
}

TEST(Buckets, FullVertexThreshold) {
  // n = 1024 => 12 log n = 120; eps = 0.12 => threshold fraction 0.001.
  // Vertex of degree 1000 with 1 vee (2 edges, fraction 0.002) is full.
  EXPECT_TRUE(is_full_vertex(1000, 1, 0.12, 1024));
  // With zero vees it is not.
  EXPECT_FALSE(is_full_vertex(1000, 0, 0.12, 1024));
  EXPECT_FALSE(is_full_vertex(0, 0, 0.12, 1024));
  // Huge eps demands a larger fraction.
  EXPECT_FALSE(is_full_vertex(1000, 1, 1.0, 4));
}

TEST(Buckets, DegreeThresholds) {
  // d_h = sqrt(nd/eps), d_l = eps d / (2 log n).
  EXPECT_DOUBLE_EQ(degree_threshold_high(10000, 100.0, 0.1), std::sqrt(1e7));
  const double dl = degree_threshold_low(1024, 100.0, 0.2);
  EXPECT_DOUBLE_EQ(dl, 0.2 * 100.0 / (2.0 * 10.0));
  EXPECT_LT(dl, degree_threshold_high(1024, 100.0, 0.2));
}

}  // namespace
}  // namespace tft
