#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "net/arq.h"
#include "net/error.h"
#include "net/frame.h"
#include "net/reliable.h"
#include "net/servicer.h"
#include "net/transport.h"

namespace tft::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::unique_ptr<Transport>> all_transports() {
  std::vector<std::unique_ptr<Transport>> v;
  v.push_back(std::make_unique<InProcTransport>(std::size_t{1} << 12));
  if (LoopbackSocketTransport::available()) {
    v.push_back(std::make_unique<LoopbackSocketTransport>());
  }
  return v;
}

TEST(NetRing, WriteThenReadRoundTrips) {
  ByteRing ring(64);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  ring.write(data, Clock::now() + 1s);
  std::vector<std::uint8_t> buf(16);
  const int n = ring.read_some(buf, Clock::now() + 1s);
  ASSERT_EQ(n, 5);
  buf.resize(5);
  EXPECT_EQ(buf, data);
}

TEST(NetRing, ReadTimesOutEmptyAndDrainsAfterClose) {
  ByteRing ring(16);
  std::vector<std::uint8_t> buf(4);
  EXPECT_EQ(ring.read_some(buf, Clock::now() + 5ms), 0);  // deadline tick

  ring.write(std::vector<std::uint8_t>{9, 8}, Clock::now() + 1s);
  ring.close();
  EXPECT_EQ(ring.read_some(buf, Clock::now() + 1s), 2);   // buffered survives close
  EXPECT_EQ(ring.read_some(buf, Clock::now() + 1s), -1);  // then closed
}

TEST(NetRing, WriteBlocksOnBackpressureUntilReaderDrains) {
  ByteRing ring(8);
  std::vector<std::uint8_t> big(64);
  std::iota(big.begin(), big.end(), 0);

  std::vector<std::uint8_t> got;
  std::thread reader([&] {
    std::vector<std::uint8_t> buf(16);
    for (;;) {
      const int n = ring.read_some(buf, Clock::now() + 2s);
      if (n < 0) break;
      got.insert(got.end(), buf.begin(), buf.begin() + n);
      if (got.size() == big.size()) break;
    }
  });
  ring.write(big, Clock::now() + 2s);  // 64 bytes through an 8-byte ring
  reader.join();
  EXPECT_EQ(got, big);
}

TEST(NetRing, WriteIntoFullClosedRingIsTyped) {
  ByteRing ring(4);
  ring.write(std::vector<std::uint8_t>{1, 2, 3, 4}, Clock::now() + 1s);
  try {
    ring.write(std::vector<std::uint8_t>{5}, Clock::now() + 10ms);
    FAIL() << "write into a full ring did not time out";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kTimeout);
  }
  ring.close();
  try {
    ring.write(std::vector<std::uint8_t>{5}, Clock::now() + 1s);
    FAIL() << "write into a closed ring succeeded";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kClosed);
  }
}

TEST(NetTransport, SocketAvailabilityIsReported) {
  if (!LoopbackSocketTransport::available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  LoopbackSocketTransport transport;
  Link link = transport.make_link();
  const std::vector<std::uint8_t> probe = {42, 43};
  link.data->write(probe, Clock::now() + 1s);
  std::vector<std::uint8_t> buf(8);
  int n = 0;
  // TCP may deliver with latency; poll within the deadline.
  const auto deadline = Clock::now() + 2s;
  while ((n = link.data->read_some(buf, deadline)) == 0 && Clock::now() < deadline) {
  }
  ASSERT_EQ(n, 2);
  EXPECT_EQ(buf[0], 42);
  EXPECT_EQ(buf[1], 43);
  link.close();
}

/// One frame through the full ARQ stack (sender thread = this thread,
/// servicer on its own), for every transport.
TEST(NetTransport, ReliableDeliveryTalliesChargedBits) {
  for (const auto& transport : all_transports()) {
    SCOPED_TRACE(transport->name());
    Link link = transport->make_link();
    ReliableSender sender(link, /*link_id=*/7, RetryPolicy{}, FaultPlan{});
    LinkServicer servicer(link, /*src=*/1, /*dst=*/3);
    std::thread actor([&] { servicer.run(); });

    const std::uint64_t payloads[] = {0, 1, 13, 4096};
    for (std::uint64_t bits : payloads) {
      Frame f;
      f.header.src = 1;
      f.header.dst = 3;
      f.header.phase = 2;
      f.header.payload_bits = bits;
      f.header.seq = sender.next_seq();
      f.payload = make_filler_payload(f.header);
      sender.send(std::move(f));
    }
    link.close();
    actor.join();

    ASSERT_FALSE(servicer.error().has_value()) << *servicer.error();
    EXPECT_EQ(servicer.stats().frames, 4u);
    EXPECT_EQ(servicer.stats().payload_bits, 0u + 1 + 13 + 4096);
    ASSERT_EQ(servicer.stats().phase_bits.size(), 3u);
    EXPECT_EQ(servicer.stats().phase_bits[2], 0u + 1 + 13 + 4096);
    EXPECT_EQ(servicer.stats().duplicates, 0u);
    EXPECT_EQ(servicer.stats().corrupt, 0u);
    EXPECT_EQ(sender.stats().frames_sent, 4u);
    EXPECT_EQ(sender.stats().retransmissions, 0u);
    EXPECT_EQ(sender.stats().acks_received, 4u);
  }
}

TEST(NetTransport, LargeFrameCrossesSmallRing) {
  InProcTransport transport(/*ring_capacity=*/256);
  Link link = transport.make_link();
  ReliableSender sender(link, 0, RetryPolicy{}, FaultPlan{});
  LinkServicer servicer(link, 0, 1);
  std::thread actor([&] { servicer.run(); });

  Frame f;
  f.header.src = 0;
  f.header.dst = 1;
  f.header.payload_bits = 100'000;  // ~12.5 KB through a 256-byte ring
  f.payload = make_filler_payload(f.header);
  sender.send(std::move(f));
  link.close();
  actor.join();

  ASSERT_FALSE(servicer.error().has_value()) << *servicer.error();
  EXPECT_EQ(servicer.stats().frames, 1u);
  EXPECT_EQ(servicer.stats().payload_bits, 100'000u);
}

TEST(NetTransport, SenderTimesOutTypedWhenNobodyListens) {
  InProcTransport transport(/*ring_capacity=*/1 << 16);
  Link link = transport.make_link();  // no servicer: acks never come
  RetryPolicy fast;
  fast.base_timeout = 2ms;
  fast.max_retries = 3;
  ReliableSender sender(link, 0, fast, FaultPlan{});

  Frame f;
  f.header.payload_bits = 8;
  f.payload = make_filler_payload(f.header);
  const auto start = Clock::now();
  try {
    sender.send(std::move(f));
    FAIL() << "send without a receiver did not time out";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kTimeout);
  }
  EXPECT_LT(Clock::now() - start, 5s) << "timeout-and-retry must be bounded";
  EXPECT_EQ(sender.stats().retransmissions, 3u);
}

/// Partial-I/O regression: shrink SO_SNDBUF/SO_RCVBUF to the kernel floor so
/// a multi-KB frame is forced through many short send()/recv() calls in both
/// directions; the pipes must loop (EINTR/EAGAIN aware), never truncate, and
/// the ARQ stack on top must deliver and tally every charged bit.
TEST(NetTransport, LargeFramesSurviveTinySocketBuffers) {
  if (!LoopbackSocketTransport::available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  LoopbackSocketTransport transport(/*socket_buffer_bytes=*/4096);
  Link link = transport.make_link();
  ReliableSender sender(link, /*link_id=*/0, RetryPolicy{}, FaultPlan{});
  LinkServicer servicer(link, /*src=*/0, /*dst=*/1);
  std::thread actor([&] { servicer.run(); });

  const std::uint64_t payloads[] = {400'000, 7, 250'000};  // ~50 KB, tiny, ~31 KB
  std::uint64_t total = 0;
  for (const std::uint64_t bits : payloads) {
    Frame f;
    f.header.src = 0;
    f.header.dst = 1;
    f.header.payload_bits = bits;
    f.header.seq = sender.next_seq();
    f.payload = make_filler_payload(f.header);
    sender.send(std::move(f));
    total += bits;
  }
  link.close();
  actor.join();

  ASSERT_FALSE(servicer.error().has_value()) << *servicer.error();
  EXPECT_EQ(servicer.stats().frames, 3u);
  EXPECT_EQ(servicer.stats().payload_bits, total);
  EXPECT_EQ(servicer.stats().corrupt, 0u) << "short reads must reassemble, not corrupt";
  EXPECT_EQ(sender.stats().retransmissions, 0u) << "no timeout while a frame trickles";
}

/// The same squeezed buffers under the shared event-driven servicer: its
/// write path is non-blocking write_some with parked out-buffers, so a frame
/// larger than the socket buffer exercises the partial-write resume path.
TEST(NetTransport, SharedServicerDrainsPartialSocketWrites) {
  if (!LoopbackSocketTransport::available()) {
    GTEST_SKIP() << "no loopback networking in this environment";
  }
  LoopbackSocketTransport transport(/*socket_buffer_bytes=*/4096);
  Link link = transport.make_link();
  SharedServicer::Options opts;
  opts.arq = ArqPolicy::windowed(8);
  opts.arq.coalesce = false;
  opts.timed_recheck = true;  // kernel-buffered transport
  SharedServicer svc(opts);
  svc.add_link(&link, /*link_id=*/0, /*src=*/0, /*dst=*/1, /*coalesce=*/false);
  svc.start();
  std::uint64_t total = 0;
  for (const std::uint64_t bits : {300'000u, 64u, 300'000u, 1u}) {
    svc.enqueue_charge(0, /*phase=*/0, bits);
    total += bits;
  }
  svc.finish();
  svc.rethrow_error();
  EXPECT_EQ(svc.stats(0).receiver.frames, 4u);
  EXPECT_EQ(svc.stats(0).receiver.payload_bits, total);
  EXPECT_EQ(svc.stats(0).receiver.corrupt, 0u);
}

TEST(NetTransport, ServicerRejectsMisaddressedFrames) {
  InProcTransport transport;
  Link link = transport.make_link();
  RetryPolicy fast;
  fast.base_timeout = 5ms;
  fast.max_retries = 1;
  ReliableSender sender(link, 0, fast, FaultPlan{});
  LinkServicer servicer(link, /*src=*/0, /*dst=*/1);
  std::thread actor([&] { servicer.run(); });

  Frame f;
  f.header.src = 5;  // wrong endpoint for this link
  f.header.dst = 1;
  f.header.payload_bits = 4;
  f.payload = make_filler_payload(f.header);
  EXPECT_THROW(sender.send(std::move(f)), NetError);  // never acked
  link.close();
  actor.join();
  EXPECT_EQ(servicer.stats().frames, 0u);
  EXPECT_GE(servicer.stats().corrupt, 1u);
}

}  // namespace
}  // namespace tft::net
