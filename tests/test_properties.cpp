#include <gtest/gtest.h>

#include <tuple>

#include "core/buckets.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Parameterized property sweeps: invariants that must hold for every
/// (k, duplication factor) combination.

class ModelSweep : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ModelSweep, PartitionUnionAlwaysReconstructs) {
  const auto [k, dup] = GetParam();
  Rng rng(100 + k);
  const Graph g = gen::gnp(400, 0.03, rng);
  const auto players = partition_duplicated(g, k, dup, rng);
  ASSERT_EQ(players.size(), k);
  EXPECT_EQ(union_graph(players).num_edges(), g.num_edges());
  if (dup == 1.0) {
    EXPECT_TRUE(is_duplication_free(players));
  }
}

TEST_P(ModelSweep, SimLowNeverFabricatesTriangles) {
  const auto [k, dup] = GetParam();
  Rng rng(200 + k);
  const Graph g = gen::bipartite_gnp(600, 0.01, rng);
  const auto players = partition_duplicated(g, k, dup, rng);
  SimLowOptions o;
  o.average_degree = std::max(1.0, g.average_degree());
  o.seed = 7 * k + static_cast<std::uint64_t>(10 * dup);
  EXPECT_FALSE(sim_low_find_triangle(players, o).triangle.has_value());
}

TEST_P(ModelSweep, SimMessageBitsAreConsistent) {
  const auto [k, dup] = GetParam();
  Rng rng(300 + k);
  const Graph g = gen::planted_triangles(800, 100, rng);
  const auto players = partition_duplicated(g, k, dup, rng);
  SimObliviousOptions o;
  o.seed = 13;
  std::uint64_t expected = 0;
  std::vector<SimMessage> messages;
  for (const auto& p : players) {
    auto msg = sim_oblivious_message(p, o);
    // Bit cost formula: header + payload.
    EXPECT_EQ(msg.bits(g.n()), count_bits(msg.edges.size()) + msg.edges.size() * edge_bits(g.n()));
    // All sent edges are real input edges (no fabrication at message level).
    for (const Edge& e : msg.edges) EXPECT_TRUE(p.local.has_edge(e));
    expected += msg.bits(g.n());
    messages.push_back(std::move(msg));
  }
  const auto r = finalize_simultaneous(g.n(), std::move(messages));
  EXPECT_EQ(r.total_bits, expected);
  std::uint64_t per_player_sum = 0;
  for (const auto b : r.per_player_bits) per_player_sum += b;
  EXPECT_EQ(per_player_sum, expected);
}

TEST_P(ModelSweep, UnrestrictedTriangleIsAlwaysReal) {
  const auto [k, dup] = GetParam();
  Rng rng(400 + k);
  const Graph g = gen::planted_triangles(700, 110, rng);
  const auto players = partition_duplicated(g, k, dup, rng);
  UnrestrictedOptions o;
  o.consts = ProtocolConstants::practical();
  o.seed = 5 * k + 1;
  const auto r = find_triangle_unrestricted(players, o);
  if (r.triangle) {
    EXPECT_TRUE(g.contains(*r.triangle));
  }
}

std::string sweep_name(const ::testing::TestParamInfo<std::tuple<std::size_t, double>>& info) {
  return "k" + std::to_string(std::get<0>(info.param)) + "_dup" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
}

INSTANTIATE_TEST_SUITE_P(KAndDuplication, ModelSweep,
                         ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 8),
                                            ::testing::Values(1.0, 1.5, 3.0)),
                         sweep_name);

/// Bucket arithmetic properties over a degree sweep.
class BucketSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BucketSweep, DegreeRoundTripsThroughItsBucket) {
  const std::uint64_t deg = GetParam();
  const auto b = bucket_of_degree(deg);
  EXPECT_GE(deg, bucket_min_degree(b));
  EXPECT_LT(deg, bucket_max_degree(b));
}

INSTANTIATE_TEST_SUITE_P(Degrees, BucketSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 26, 27, 100, 1000, 59049, 1000000));

/// Success-probability sweep for the sim-low protocol as farness grows: more
/// planted triangles must not hurt.
class FarnessSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FarnessSweep, SimLowSuccessGrowsWithPlantedMass) {
  const std::uint32_t planted = GetParam();
  Rng rng(500 + planted);
  const Graph g = gen::planted_triangles(2000, planted, rng);
  int ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto players = partition_random(g, 4, rng);
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.c = 5.0;
    o.seed = 900 + static_cast<std::uint64_t>(t);
    ok += sim_low_find_triangle(players, o).triangle.has_value() ? 1 : 0;
  }
  if (planted >= 250) {
    EXPECT_GE(ok, 6) << "planted=" << planted;
  }
  // For any planted count, reported triangles were verified inside the run
  // implicitly by construction; nothing to assert on small counts (success
  // is legitimately probabilistic there).
}

INSTANTIATE_TEST_SUITE_P(PlantedCounts, FarnessSweep, ::testing::Values(50, 150, 250, 400, 600));

}  // namespace
}  // namespace tft
