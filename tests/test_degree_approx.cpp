#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/degree_approx.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Median of `runs` estimates of deg(v) under duplication.
double median_estimate(const Graph& g, Vertex v, std::size_t k, double dup, double alpha,
                       std::size_t runs, std::uint64_t seed) {
  std::vector<double> estimates;
  Rng rng(seed);
  for (std::size_t r = 0; r < runs; ++r) {
    const auto players = partition_duplicated(g, k, dup, rng);
    Transcript t(k, g.n());
    const SharedRandomness sr(seed * 1000 + r);
    DegreeApproxOptions opts;
    opts.alpha = alpha;
    opts.min_experiments = 96;
    const auto res = approx_degree(players, t, sr, SharedTag{0xAA, r, 0}, v, opts);
    estimates.push_back(res.estimate);
  }
  std::sort(estimates.begin(), estimates.end());
  return estimates[estimates.size() / 2];
}

TEST(DegreeApprox, IsolatedVertexGivesZero) {
  const Graph g(5, {{0, 1}});
  Rng rng(1);
  const auto players = partition_random(g, 3, rng);
  Transcript t(3, g.n());
  const SharedRandomness sr(2);
  const auto res = approx_degree(players, t, sr, SharedTag{1, 0, 0}, 4);
  EXPECT_EQ(res.estimate, 0.0);
  EXPECT_EQ(res.msb_upper, 0.0);
}

TEST(DegreeApprox, MsbUpperBrackets) {
  // Phase-1 invariant: true degree <= msb_upper <= 2k * true degree.
  const Graph g = gen::star(1000);
  Rng rng(3);
  for (const std::size_t k : {2, 4, 8}) {
    const auto players = partition_duplicated(g, k, 1.8, rng);
    Transcript t(k, g.n());
    const SharedRandomness sr(4);
    const auto res = approx_degree(players, t, sr, SharedTag{2, k, 0}, 0);
    EXPECT_GE(res.msb_upper, 999.0);
    EXPECT_LE(res.msb_upper, 2.0 * k * 999.0 * 2.0);  // extra 2 for rounding
  }
}

TEST(DegreeApprox, MedianEstimateWithinFactorAlpha) {
  const double alpha = 3.0;
  for (const Vertex hub_degree : {30u, 200u, 999u}) {
    const Graph g = gen::star(hub_degree + 1);
    const double med = median_estimate(g, 0, 4, 2.0, alpha, 9, hub_degree);
    const double d = static_cast<double>(hub_degree);
    EXPECT_GE(med, d * 0.55) << "degree " << hub_degree;     // > d up to one step slack
    EXPECT_LE(med, d * alpha * 1.9) << "degree " << hub_degree;
  }
}

TEST(DegreeApprox, OverEstimatesMoreOftenThanNot) {
  // The protocol's guarantee is one-sided (deg <= estimate w.h.p.); check
  // the direction statistically.
  const Graph g = gen::star(500);
  Rng rng(7);
  int over = 0;
  constexpr int kRuns = 15;
  for (int r = 0; r < kRuns; ++r) {
    const auto players = partition_duplicated(g, 4, 2.0, rng);
    Transcript t(4, g.n());
    const SharedRandomness sr(100 + r);
    DegreeApproxOptions opts;
    opts.min_experiments = 96;
    const auto res = approx_degree(players, t, sr, SharedTag{3, static_cast<std::uint64_t>(r), 0}, 0, opts);
    if (res.estimate >= 500.0 * 0.57) ++over;  // within one sqrt(alpha) step below d
  }
  EXPECT_GE(over, kRuns - 2);
}

TEST(DegreeApproxNoDup, UnderEstimatesWithinAlpha) {
  const Graph g = gen::star(777);
  Rng rng(9);
  for (const std::size_t k : {2, 4, 8}) {
    const auto players = partition_random(g, k, rng);
    Transcript t(k, g.n());
    const auto res = approx_degree_no_duplication(players, t, 0, 1.25);
    EXPECT_LE(res.estimate, 777.0);
    EXPECT_GE(res.estimate, 777.0 / 1.25);
  }
}

TEST(DegreeApproxNoDup, ExactForSmallCounts) {
  // Counts that fit in the kept bits are transmitted exactly.
  const Graph g = gen::star(6);  // center degree 5
  Rng rng(10);
  const auto players = partition_random(g, 2, rng);
  Transcript t(2, g.n());
  const auto res = approx_degree_no_duplication(players, t, 0, 1.25);
  EXPECT_DOUBLE_EQ(res.estimate, 5.0);
}

TEST(DegreeApproxNoDup, CheaperThanDuplicationPath) {
  const Graph g = gen::star(1 << 12);
  Rng rng(11);
  const auto players = partition_random(g, 4, rng);
  const SharedRandomness sr(12);

  Transcript t_dup(4, g.n());
  DegreeApproxOptions dup_opts;
  (void)approx_degree(players, t_dup, sr, SharedTag{4, 0, 0}, 0, dup_opts);

  Transcript t_nodup(4, g.n());
  (void)approx_degree_no_duplication(players, t_nodup, 0, 1.25);

  EXPECT_LT(t_nodup.total_bits(), t_dup.total_bits());
  // The no-dup path is O(k log log d): tiny.
  EXPECT_LT(t_nodup.total_bits(), 4 * 32u);
}

TEST(DegreeApprox, CostGrowsSubLinearlyInDegree) {
  // Cost should scale like k log k loglog + k loglog d — way below linear.
  Rng rng(13);
  std::uint64_t bits_small = 0;
  std::uint64_t bits_large = 0;
  {
    const Graph g = gen::star(64);
    const auto players = partition_duplicated(g, 4, 2.0, rng);
    Transcript t(4, g.n());
    const SharedRandomness sr(14);
    (void)approx_degree(players, t, sr, SharedTag{5, 0, 0}, 0);
    bits_small = t.total_bits();
  }
  {
    const Graph g = gen::star(1 << 14);
    const auto players = partition_duplicated(g, 4, 2.0, rng);
    Transcript t(4, g.n());
    const SharedRandomness sr(15);
    (void)approx_degree(players, t, sr, SharedTag{6, 0, 0}, 0);
    bits_large = t.total_bits();
  }
  // Degree grew by 256x; cost must grow by far less than 8x.
  EXPECT_LT(bits_large, bits_small * 8);
  EXPECT_LT(bits_large, std::uint64_t{1} << 14);  // far below deg(v) bits
}

TEST(DistinctEdges, EstimatesUnionSizeUnderDuplication) {
  Rng rng(17);
  const Graph g = gen::gnp(300, 0.05, rng);
  const double m = static_cast<double>(g.num_edges());
  std::vector<double> estimates;
  for (int r = 0; r < 9; ++r) {
    const auto players = partition_duplicated(g, 4, 2.5, rng);
    Transcript t(4, g.n());
    const SharedRandomness sr(18 + r);
    DegreeApproxOptions opts;
    opts.min_experiments = 96;
    const auto res = approx_distinct_edges(players, t, sr, SharedTag{7, static_cast<std::uint64_t>(r), 0}, opts);
    estimates.push_back(res.estimate);
  }
  std::sort(estimates.begin(), estimates.end());
  const double med = estimates[estimates.size() / 2];
  EXPECT_GE(med, m * 0.55);
  EXPECT_LE(med, m * 3.0 * 1.9);
}

TEST(DistinctEdges, EmptyInputs) {
  std::vector<PlayerInput> players;
  players.push_back(PlayerInput{0, 2, Graph(10, {})});
  players.push_back(PlayerInput{1, 2, Graph(10, {})});
  Transcript t(2, 10);
  const SharedRandomness sr(19);
  const auto res = approx_distinct_edges(players, t, sr, SharedTag{8, 0, 0});
  EXPECT_EQ(res.estimate, 0.0);
}

}  // namespace
}  // namespace tft
