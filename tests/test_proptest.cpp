#include <gtest/gtest.h>

#include <set>

#include "graph/triangles.h"
#include "proptest.h"

namespace tft {
namespace {

using proptest::CheckResult;
using proptest::GenOptions;
using proptest::GraphCase;
using proptest::PropOutcome;

// ---------------------------------------------------------------------------
// Generator sanity.

TEST(PropTest, GeneratedCasesRespectBounds) {
  Rng rng(3);
  GenOptions opts;
  opts.min_n = 3;
  opts.max_n = 120;
  opts.max_k = 4;
  for (int i = 0; i < 200; ++i) {
    const GraphCase c = proptest::gen_case(rng, opts);
    EXPECT_GE(c.n, opts.min_n);
    EXPECT_LT(c.n, opts.max_n);
    EXPECT_GE(c.k, 1u);
    EXPECT_LE(c.k, opts.max_k);
    for (const Edge& e : c.edges) {
      EXPECT_LT(e.u, c.n);
      EXPECT_LT(e.v, c.n);
      EXPECT_LT(e.u, e.v);  // Graph normalizes edges
    }
    const auto players = c.players();
    EXPECT_EQ(players.size(), c.k);
    std::size_t total = 0;
    for (const auto& p : players) total += p.local.num_edges();
    EXPECT_EQ(total, c.edges.size());  // partition, no duplication
  }
}

TEST(PropTest, CaseStreamIsDeterministicInSeed) {
  const auto render = [](std::uint64_t seed) {
    std::string out;
    for (std::size_t t = 0; t < 20; ++t) {
      Rng rng = derive_rng(seed, t);
      out += proptest::describe(proptest::gen_case(rng)) + "\n";
    }
    return out;
  };
  EXPECT_EQ(render(42), render(42));
  EXPECT_NE(render(42), render(43));
}

// ---------------------------------------------------------------------------
// check(): pass / fail / shrink behaviour.

TEST(PropTest, PassingPropertyReportsOk) {
  const CheckResult r = proptest::check(1, 50, [](const GraphCase& c) {
    return PropOutcome{c.edges.size() == c.graph().num_edges(), ""};
  });
  EXPECT_TRUE(r.ok) << r.to_string();
  EXPECT_EQ(r.trials, 50u);
}

TEST(PropTest, FalsePropertyShrinksToTinyWitness) {
  // "No graph has an edge" is falsified by almost every case and must
  // shrink to a single-edge witness on a compacted universe.
  const CheckResult r = proptest::check(2, 50, [](const GraphCase& c) {
    return PropOutcome{c.edges.empty(), "graph has edges"};
  });
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.witness.edges.size(), 1u);
  EXPECT_EQ(r.witness.k, 1u);
  EXPECT_LE(r.witness.n, 3u);  // two endpoints (universe floor is 2)
  EXPECT_GT(r.shrink_steps, 0u);
  EXPECT_NE(r.to_string().find("FALSIFIED"), std::string::npos);
}

TEST(PropTest, TriangleFreePropertyShrinksToOneTriangle) {
  // "Every generated graph is triangle-free" fails; the minimal witness is
  // a single triangle: exactly 3 edges over at most 3 + floor vertices.
  GenOptions opts;
  opts.max_n = 60;
  const CheckResult r = proptest::check(5, 200, [](const GraphCase& c) {
    return PropOutcome{count_triangles(c.graph()) == 0, "graph has a triangle"};
  }, opts);
  ASSERT_FALSE(r.ok) << "generator never produced a triangle in 200 cases";
  EXPECT_EQ(r.witness.edges.size(), 3u);
  EXPECT_EQ(count_triangles(r.witness.graph()), 1u);
  EXPECT_LE(r.witness.n, 4u);
}

TEST(PropTest, ThrowingPropertyCountsAsFalsified) {
  const CheckResult r = proptest::check(7, 20, [](const GraphCase& c) -> PropOutcome {
    if (!c.edges.empty()) throw std::runtime_error("boom");
    return {};
  });
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("boom"), std::string::npos);
  EXPECT_EQ(r.witness.edges.size(), 1u);  // shrinker still minimizes
}

TEST(PropTest, ShrinkRespectsEvaluationBudget) {
  std::size_t evals = 0;
  const CheckResult r = proptest::check(
      9, 10,
      [&](const GraphCase&) {
        ++evals;
        return PropOutcome{false, "always fails"};
      },
      GenOptions{}, /*max_shrink_evals=*/25);
  ASSERT_FALSE(r.ok);
  EXPECT_LE(evals, 1u + 25u + 4u);  // initial trial + budget + slack for loop exits
}

// --- chunked cases ---------------------------------------------------------

// The tentpole property: for ANY generated (spec, seed, k), the union of the
// k chunk slices is edge-multiset-identical to the monolithic k = 1 build.
TEST(PropTest, ChunkedUnionIdentityHoldsForAllCases) {
  const CheckResult r = proptest::check_chunked(
      2026, 80, [](const proptest::ChunkedCase& c) -> PropOutcome {
        const std::uint64_t hk = chunked_union_hash(c.spec, c.seed, c.k);
        const std::uint64_t h1 = chunked_union_hash(c.spec, c.seed, 1);
        if (hk != h1) return {false, "chunk union differs from monolithic build"};
        std::uint64_t total = 0;
        for (std::uint64_t chunk = 0; chunk < c.k; ++chunk) {
          total += count_chunk_edges(c.spec, c.seed, chunk, c.k);
        }
        if (total != count_chunk_edges(c.spec, c.seed, 0, 1)) {
          return {false, "chunk edge counts do not sum to the monolithic count"};
        }
        return {};
      });
  EXPECT_TRUE(r.ok) << r.to_string() << " " << r.message;
}

TEST(PropTest, ChunkedCheckShrinksAndReportsWitness) {
  // A deliberately false property (fails whenever any edges exist at k > 1):
  // the shrinker must drive size and chunk count down and name the witness.
  const CheckResult r = proptest::check_chunked(
      5, 40, [](const proptest::ChunkedCase& c) -> PropOutcome {
        if (c.k > 1 && count_chunk_edges(c.spec, c.seed, 0, 1) > 0) {
          return {false, "planted failure"};
        }
        return {};
      });
  ASSERT_FALSE(r.ok);
  EXPECT_GT(r.shrink_steps, 0u);
  EXPECT_NE(r.message.find("ChunkedCase{"), std::string::npos);
}

TEST(PropTest, CompactUniverseRelabelsOrderPreserving) {
  GraphCase c;
  c.n = 1000;
  c.edges = {Edge(10, 900), Edge(10, 500)};
  const GraphCase out = proptest::detail::compact_universe(c);
  EXPECT_EQ(out.n, 3u);
  const std::set<Edge> got(out.edges.begin(), out.edges.end());
  const std::set<Edge> want{Edge(0, 2), Edge(0, 1)};
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace tft
