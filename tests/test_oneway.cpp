#include <gtest/gtest.h>

#include <cmath>

#include "core/oneway_vee.h"
#include "lower_bounds/mu_distribution.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(OneWayVee, RequiresThreePlayers) {
  std::vector<PlayerInput> two;
  two.push_back(PlayerInput{0, 2, Graph(3, {})});
  two.push_back(PlayerInput{1, 2, Graph(3, {})});
  EXPECT_THROW({ (void)oneway_vee_find_edge(two, TripartiteLayout{1}, OneWayOptions{}); },
               std::invalid_argument);
}

TEST(OneWayVee, OutputIsAlwaysATriangleEdge) {
  // One-sidedness: whenever the protocol outputs an edge, that edge is in
  // Charlie's input and closes a triangle with the hub's vee.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto mu = sample_mu(400, 0.9, rng);
    const auto players = partition_mu_three(mu);
    OneWayOptions o;
    o.seed = 100 + static_cast<std::uint64_t>(trial);
    o.budget_edges_per_player = 160;
    const auto r = oneway_vee_find_edge(players, mu.layout, o);
    if (r.triangle_edge) {
      EXPECT_TRUE(is_triangle_edge(mu.graph, *r.triangle_edge));
    }
  }
}

TEST(OneWayVee, SucceedsWithAdequateBudgetOnMu) {
  // b ~ n^{1/4} per hub suffices (the birthday paradox); with budget
  // several times that, success should be near-certain.
  Rng rng(2);
  const Vertex side = 900;
  const double gamma = 0.9;
  int ok = 0;
  constexpr int kTrials = 15;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mu = sample_mu(side, gamma, rng);
    const auto players = partition_mu_three(mu);
    OneWayOptions o;
    o.seed = 200 + static_cast<std::uint64_t>(trial);
    o.hubs = 6;
    // ~6 hubs x 25 = 150 >> n^{1/4} ~ 5.5 per hub needed... use a budget
    // comfortably above the threshold regime.
    o.budget_edges_per_player = 6 * 24;
    const auto r = oneway_vee_find_edge(players, mu.layout, o);
    if (r.triangle_edge) ++ok;
  }
  EXPECT_GE(ok, kTrials - 3);
}

TEST(OneWayVee, FailsWithTinyBudget) {
  Rng rng(3);
  const Vertex side = 900;
  int ok = 0;
  constexpr int kTrials = 15;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mu = sample_mu(side, 0.9, rng);
    const auto players = partition_mu_three(mu);
    OneWayOptions o;
    o.seed = 300 + static_cast<std::uint64_t>(trial);
    o.hubs = 1;
    o.budget_edges_per_player = 1;  // a single neighbor each: ~gamma/sqrt(n) hit rate
    const auto r = oneway_vee_find_edge(players, mu.layout, o);
    if (r.triangle_edge) ++ok;
  }
  EXPECT_LE(ok, 4);
}

TEST(OneWayVee, BitsAreBudgetBounded) {
  Rng rng(4);
  const auto mu = sample_mu(500, 0.9, rng);
  const auto players = partition_mu_three(mu);
  OneWayOptions o;
  o.seed = 5;
  o.hubs = 4;
  o.budget_edges_per_player = 100;
  const auto r = oneway_vee_find_edge(players, mu.layout, o);
  // Alice + Bob each send at most budget vertex ids plus per-hub headers.
  const std::uint64_t per_player_max =
      100 * vertex_bits(mu.graph.n()) + 4 * count_bits(100);
  EXPECT_LE(r.total_bits, 2 * per_player_max);
  EXPECT_GT(r.total_bits, 0u);
}

TEST(OneWayVee, MoreBudgetNeverReducesSuccessMaterially) {
  // Success must be (statistically) monotone in budget: compare a small and
  // a large budget across common instances.
  Rng rng(6);
  int small_ok = 0;
  int large_ok = 0;
  constexpr int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mu = sample_mu(700, 0.9, rng);
    const auto players = partition_mu_three(mu);
    for (const bool large : {false, true}) {
      OneWayOptions o;
      o.seed = 700 + static_cast<std::uint64_t>(trial);
      o.hubs = 4;
      o.budget_edges_per_player = large ? 200 : 8;
      const auto r = oneway_vee_find_edge(players, mu.layout, o);
      (large ? large_ok : small_ok) += r.triangle_edge ? 1 : 0;
    }
  }
  EXPECT_GE(large_ok, small_ok);
  EXPECT_GE(large_ok, kTrials - 3);
}

}  // namespace
}  // namespace tft
