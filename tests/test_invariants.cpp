#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "core/building_blocks.h"
#include "core/sim_high.h"
#include "core/subgraph_freeness.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Cross-cutting invariants not tied to a single module.

TEST(Invariants, GreedyPackingIsMaximal) {
  // After greedy packing, no triangle with all three edges unused remains —
  // the property that makes it a 1/3-approximation and a valid distance
  // bound.
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::gnp(120, 0.1, rng);
    const auto packing = greedy_triangle_packing(g, rng);
    std::unordered_set<std::uint64_t> used;
    for (const Triangle& t : packing) {
      used.insert(t.e1().key());
      used.insert(t.e2().key());
      used.insert(t.e3().key());
    }
    for (Vertex a = 0; a < g.n(); ++a) {
      for (const Vertex b : g.neighbors(a)) {
        if (b <= a) continue;
        for (const Vertex c : g.neighbors(b)) {
          if (c <= b || !g.has_edge(a, c)) continue;
          const bool all_free = !used.contains(Edge(a, b).key()) &&
                                !used.contains(Edge(b, c).key()) &&
                                !used.contains(Edge(a, c).key());
          EXPECT_FALSE(all_free) << "unpacked triangle " << a << "," << b << "," << c;
        }
      }
    }
  }
}

TEST(Invariants, RandomWalkStepIsUniformOverNeighbors) {
  // One step from the star center must be ~uniform over leaves even when
  // leaves are duplicated unevenly across players.
  const Vertex n = 6;
  std::vector<PlayerInput> players;
  // Leaves 1..5; leaf 1 appears in all three inputs, others spread.
  players.push_back(PlayerInput{0, 3, Graph(n, {{0, 1}, {0, 2}})});
  players.push_back(PlayerInput{1, 3, Graph(n, {{0, 1}, {0, 3}, {0, 4}})});
  players.push_back(PlayerInput{2, 3, Graph(n, {{0, 1}, {0, 5}})});
  const SharedRandomness sr(7);
  Transcript t(3, n);
  std::map<Vertex, int> counts;
  constexpr int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    const auto path =
        random_walk(players, t, sr, SharedTag{11, static_cast<std::uint64_t>(i), 0}, 0, 1);
    ASSERT_EQ(path.size(), 2u);
    ++counts[path[1]];
  }
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) EXPECT_NEAR(c, kTrials / 5, 130) << "leaf " << v;
}

TEST(Invariants, BfsOnDisconnectedGraphLeavesOtherComponentsUntouched) {
  Rng rng(2);
  const Graph g = gen::disjoint_union(gen::cycle(10), gen::cycle(10));
  const auto players = partition_random(g, 2, rng);
  Transcript t(2, g.n());
  const auto bfs = distributed_bfs(players, t, 0);
  EXPECT_EQ(bfs.order.size(), 10u);
  for (Vertex v = 10; v < 20; ++v) EXPECT_EQ(bfs.depth[v], UINT32_MAX);
}

TEST(Invariants, SimHighSampleSizeMonotoneInDegree) {
  SimHighOptions o;
  o.eps = 0.1;
  o.c = 3.0;
  double prev = 1e18;
  for (const double d : {16.0, 64.0, 256.0, 1024.0}) {
    o.average_degree = d;
    const double s = sim_high_sample_size(1 << 16, o);
    EXPECT_LT(s, prev);  // denser graphs need smaller samples
    prev = s;
  }
}

TEST(Invariants, SubgraphSearchBudgetExhaustionIsSafe) {
  // A tiny step budget returns nullopt rather than crashing or spinning,
  // even when a copy exists.
  Rng rng(3);
  const Graph g = gen::gnp(300, 0.2, rng);
  ASSERT_TRUE(contains_subgraph(g, pattern_clique(3)));
  const auto limited = find_subgraph(g, pattern_clique(5), /*max_steps=*/3);
  // With 3 steps the search cannot place 5 vertices.
  EXPECT_FALSE(limited.has_value());
}

TEST(Invariants, EdgeAndTriangleOrderingConsistent) {
  // Comparison operators: lexicographic on normalized forms.
  EXPECT_LT(Edge(0, 1), Edge(0, 2));
  EXPECT_LT(Edge(0, 9), Edge(1, 2));
  EXPECT_LT(Triangle(0, 1, 2), Triangle(0, 1, 3));
  EXPECT_EQ(Triangle(2, 1, 0), Triangle(0, 2, 1));
}

TEST(Invariants, PartitionPreservesVertexUniverse) {
  Rng rng(4);
  const Graph g = gen::gnp(100, 0.05, rng);
  for (const std::size_t k : {1u, 3u, 7u}) {
    const auto players = partition_random(g, k, rng);
    for (const auto& p : players) {
      EXPECT_EQ(p.n(), g.n());
      EXPECT_EQ(p.k, k);
    }
  }
}

TEST(Invariants, CertifyEpsFarIsMonotoneInEps) {
  Rng rng(5);
  const Graph g = gen::planted_triangles(300, 60, rng);
  // If certified at eps, every smaller eps must certify too (same packing
  // randomness via fresh but statistically equivalent runs; use one packing).
  const auto packing = static_cast<double>(distance_lower_bound(g, rng));
  const double m = static_cast<double>(g.num_edges());
  for (double eps = 0.05; eps < 0.5; eps += 0.05) {
    const bool expected = packing >= eps * m;
    Rng r2(5);  // deterministic packing replay not guaranteed; recompute bound
    const bool got = static_cast<double>(distance_lower_bound(g, r2)) >= eps * m;
    // Allow greedy variance of one trial: both computed bounds are within
    // a factor ~1 of each other on this structured instance (planted
    // disjoint triangles are always fully recovered).
    EXPECT_EQ(expected, got) << "eps=" << eps;
  }
}

TEST(Invariants, HubMatchingDegreesBimodal) {
  Rng rng(6);
  const Graph g = gen::hub_matching(500, 4, rng);
  // Hubs huge, everyone else small — the bimodal profile the bucketing
  // machinery targets.
  for (Vertex h = 0; h < 4; ++h) EXPECT_GT(g.degree(h), 400u);
  std::size_t small = 0;
  for (Vertex v = 4; v < g.n(); ++v) small += g.degree(v) <= 12 ? 1 : 0;
  EXPECT_GT(small, 450u);
}

}  // namespace
}  // namespace tft
