#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/exact_baseline.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "net/error.h"
#include "net/executed.h"
#include "net/fault.h"
#include "net/runtime.h"
#include "util/rng.h"

namespace tft::net {
namespace {

using namespace std::chrono_literals;

std::vector<PlayerInput> small_instance(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = gen::planted_triangles(48, 5, rng);
  return partition_random(g, k, rng);
}

RetryPolicy snappy() {
  RetryPolicy p;
  p.base_timeout = 5ms;
  p.max_timeout = 100ms;
  p.max_retries = 12;
  return p;
}

/// Run the exact protocol in executed mode under `faults`; run_executed
/// itself enforces wire == charged and model conformance, so reaching the
/// return is already the recovery claim.
ExecutedReport run_under(const FaultPlan& faults) {
  const auto players = small_instance(3, 101);
  NetConfig cfg;
  cfg.faults = faults;
  cfg.retry = snappy();
  auto [result, report] =
      run_executed(3, cfg, [&] { return exact_find_triangle(players); });
  EXPECT_TRUE(result.triangle.has_value());
  return report;
}

TEST(NetFault, DropsAreRecoveredByRetransmission) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop = 0.4;
  const ExecutedReport report = run_under(plan);
  EXPECT_GT(report.wire.retransmissions, 0u) << "a 40% drop rate must cost retries";
  EXPECT_EQ(report.wire.corrupt_frames, 0u);
}

TEST(NetFault, BitFlipsAreCaughtByCrcAndRetransmitted) {
  FaultPlan plan;
  plan.seed = 13;
  plan.bit_flip = 0.7;
  const ExecutedReport report = run_under(plan);
  EXPECT_GT(report.wire.corrupt_frames, 0u) << "flipped frames must be detected, not accepted";
  EXPECT_GT(report.wire.retransmissions, 0u);
}

TEST(NetFault, DuplicatesAreDiscardedBySequenceNumbers) {
  FaultPlan plan;
  plan.seed = 19;
  plan.duplicate = 0.6;
  const ExecutedReport report = run_under(plan);
  EXPECT_GT(report.wire.duplicates, 0u);
}

TEST(NetFault, DelaysOnlySlowThingsDown) {
  FaultPlan plan;
  plan.seed = 23;
  plan.delay = 0.5;
  plan.delay_us = 300;
  const ExecutedReport report = run_under(plan);
  EXPECT_EQ(report.wire.corrupt_frames, 0u);
}

TEST(NetFault, CombinedFaultsStillVerifyExactAccounting) {
  FaultPlan plan;
  plan.seed = 29;
  plan.drop = 0.15;
  plan.duplicate = 0.15;
  plan.bit_flip = 0.15;
  plan.delay = 0.1;
  plan.delay_us = 100;
  const ExecutedReport report = run_under(plan);
  // Every fault class should have fired at least once somewhere.
  EXPECT_GT(report.wire.retransmissions + report.wire.duplicates + report.wire.corrupt_frames,
            0u);
}

TEST(NetFault, TotalLossIsATypedTimeoutNotAHang) {
  const auto players = small_instance(3, 101);
  NetConfig cfg;
  cfg.faults.seed = 31;
  cfg.faults.drop = 1.0;  // nothing ever reaches the wire
  cfg.retry.base_timeout = 2ms;
  cfg.retry.max_timeout = 10ms;
  cfg.retry.max_retries = 3;

  const auto start = Clock::now();
  try {
    (void)run_executed(3, cfg, [&] { return exact_find_triangle(players); });
    FAIL() << "a fully lossy link cannot deliver a protocol";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kTimeout);
  }
  EXPECT_LT(Clock::now() - start, 10s) << "retries must be bounded, never a hang";
}

TEST(NetFault, DecisionsArePureFunctionsOfTheKey) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop = 0.3;
  plan.duplicate = 0.3;
  plan.bit_flip = 0.3;
  plan.delay = 0.3;
  const FaultInjector a(plan, /*link_id=*/4);
  const FaultInjector b(plan, /*link_id=*/4);
  bool link_streams_differ = false;
  const FaultInjector other_link(plan, /*link_id=*/5);
  for (std::uint32_t seq = 0; seq < 64; ++seq) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const FaultDecision da = a.decide(seq, attempt);
      const FaultDecision db = b.decide(seq, attempt);
      EXPECT_EQ(da.drop, db.drop);
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.bit_flip, db.bit_flip);
      EXPECT_EQ(da.delay, db.delay);
      EXPECT_EQ(da.flip_bit, db.flip_bit);
      const FaultDecision dc = other_link.decide(seq, attempt);
      link_streams_differ |= da.drop != dc.drop || da.bit_flip != dc.bit_flip;
    }
  }
  EXPECT_TRUE(link_streams_differ) << "links must draw from independent fault streams";
}

TEST(NetFault, CleanPlanInjectsNothing) {
  const FaultInjector quiet(FaultPlan{}, 0);
  for (std::uint32_t seq = 0; seq < 32; ++seq) {
    const FaultDecision d = quiet.decide(seq, 0);
    EXPECT_FALSE(d.drop || d.duplicate || d.bit_flip || d.delay);
  }
  EXPECT_FALSE(FaultPlan{}.any());
}

/// The determinism contract: under a fixed seed the *delivered* totals and
/// the protocol verdict are reproducible run over run — only retransmission
/// counts may drift with scheduling.
TEST(NetFault, DeliveredTotalsAreReproducibleUnderAFixedSeed) {
  const auto players = small_instance(4, 131);
  UnrestrictedOptions opts;
  opts.seed = 3;
  opts.known_average_degree = 4.0;
  FaultPlan plan;
  plan.seed = 41;
  // Low rates: the protocol ships thousands of frames and every faulted
  // attempt costs one retry timeout; keep total wall time in check.
  plan.drop = 0.03;
  plan.bit_flip = 0.03;

  auto once = [&] {
    NetConfig cfg;
    cfg.faults = plan;
    cfg.retry = snappy();
    cfg.retry.base_timeout = std::chrono::milliseconds(2);
    return run_executed(4, cfg,
                        [&] { return find_triangle_unrestricted(players, opts); });
  };
  const auto [r1, w1] = once();
  const auto [r2, w2] = once();
  EXPECT_EQ(r1.triangle.has_value(), r2.triangle.has_value());
  EXPECT_EQ(r1.total_bits, r2.total_bits);
  EXPECT_EQ(w1.wire.up_bits, w2.wire.up_bits);
  EXPECT_EQ(w1.wire.down_bits, w2.wire.down_bits);
  EXPECT_EQ(w1.wire.phase_bits, w2.wire.phase_bits);
  EXPECT_EQ(w1.wire.messages(), w2.wire.messages());
}

/// Under the virtual clock even the retransmission arithmetic is exact:
/// logical time only advances at quiescence, so whether a retry fires is a
/// pure function of the fault seed, not of scheduling. Every counter —
/// including the ones the real-clock contract above exempts — must match
/// run over run, which is what lets bench_net's fault grid live in the
/// committed baseline.
TEST(NetFault, VirtualClockMakesEveryFaultCounterReproducible) {
  // The unrestricted protocol ships thousands of frames (the exact baseline
  // only ships k); under the virtual clock every retry timeout is logical,
  // so heavy traffic costs no wall-clock.
  const auto players = small_instance(4, 131);
  UnrestrictedOptions opts;
  opts.seed = 3;
  opts.known_average_degree = 4.0;
  auto once = [&] {
    NetConfig cfg;
    cfg.virtual_clock = true;
    cfg.arq.coalesce = false;  // one frame per charge: many targets for the plan
    cfg.faults.seed = 47;
    cfg.faults.drop = 0.1;
    cfg.faults.bit_flip = 0.05;
    cfg.faults.duplicate = 0.05;
    cfg.retry = snappy();
    return run_executed(4, cfg,
                        [&] { return find_triangle_unrestricted(players, opts); });
  };
  const auto [r1, w1] = once();
  const auto [r2, w2] = once();
  EXPECT_EQ(r1.triangle, r2.triangle);
  EXPECT_GT(w1.wire.retransmissions, 0u) << "the plan must actually bite";
  EXPECT_EQ(w1.wire.retransmissions, w2.wire.retransmissions);
  EXPECT_EQ(w1.wire.duplicates, w2.wire.duplicates);
  EXPECT_EQ(w1.wire.corrupt_frames, w2.wire.corrupt_frames);
  EXPECT_EQ(w1.wire.acks, w2.wire.acks);
  // The logical *timeline* is not part of the contract: a frame sealed just
  // before vs just after a clock jump transmits at a different vnow, and the
  // k+1 actors race the servicer for those jump points. Only the counters —
  // whose attempt fates key on (seed, link, seq, attempt) alone — are exact.
  EXPECT_GT(w1.wire.virtual_time_us, 0u) << "faults must cost logical time";
  EXPECT_EQ(w1.wire.up_bits, w2.wire.up_bits);
  EXPECT_EQ(w1.wire.down_bits, w2.wire.down_bits);
}

/// A/B across ARQ disciplines under the same fault seed: the fault stream
/// keys on (link, seq, attempt) and the receiver dedups by seq, so the
/// *delivered* totals and the verdict cannot depend on the window size or
/// on coalescing — only the recovery dynamics may.
TEST(NetFault, ArqPolicyVariantsAgreeOnDeliveredTotalsUnderFaults) {
  const auto players = small_instance(3, 101);
  FaultPlan plan;
  plan.seed = 53;
  plan.drop = 0.1;
  plan.bit_flip = 0.1;
  plan.duplicate = 0.1;
  auto with = [&](const ArqPolicy& arq) {
    NetConfig cfg;
    cfg.arq = arq;
    cfg.faults = plan;
    cfg.retry = snappy();
    return run_executed(3, cfg, [&] { return exact_find_triangle(players); });
  };
  const auto [r_sw, w_sw] = with(ArqPolicy::stop_and_wait());
  const auto [r_win, w_win] = with(ArqPolicy::windowed());
  EXPECT_EQ(r_sw.triangle, r_win.triangle);
  EXPECT_EQ(w_sw.wire.up_bits, w_win.wire.up_bits);
  EXPECT_EQ(w_sw.wire.down_bits, w_win.wire.down_bits);
  EXPECT_EQ(w_sw.wire.phase_bits, w_win.wire.phase_bits);
  EXPECT_EQ(w_sw.wire.messages(), w_win.wire.messages());
}

}  // namespace
}  // namespace tft::net
