#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/triangles.h"
#include "lower_bounds/boolean_matching.h"
#include "lower_bounds/budget_search.h"
#include "lower_bounds/embedding.h"
#include "lower_bounds/mu_distribution.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tft {
namespace {

// ---------- mu distribution ----------

TEST(Mu, PartitionIsCanonicalAndComplete) {
  Rng rng(1);
  const auto mu = sample_mu(200, 0.8, rng);
  const auto players = partition_mu_three(mu);
  ASSERT_EQ(players.size(), 3u);
  EXPECT_TRUE(is_duplication_free(players));
  EXPECT_EQ(union_graph(players).num_edges(), mu.graph.num_edges());
  // Alice only U x V1, Bob only U x V2, Charlie only V1 x V2.
  for (const Edge& e : players[0].local.edges()) {
    EXPECT_TRUE(mu.layout.in_u(e.u) && mu.layout.in_v1(e.v));
  }
  for (const Edge& e : players[1].local.edges()) {
    EXPECT_TRUE(mu.layout.in_u(e.u) && mu.layout.in_v2(e.v));
  }
  for (const Edge& e : players[2].local.edges()) {
    EXPECT_TRUE(mu.layout.in_v1(e.u) && mu.layout.in_v2(e.v));
  }
}

TEST(Mu, Lemma45FarnessHoldsEmpirically) {
  // Lemma 4.5: Omega(side^{3/2}) disjoint triangles with probability >= 1/2.
  // With gamma = 0.9 the packing is comfortably above c * gamma^3 * n^{3/2}
  // for a small c in almost every sample.
  const auto stats = mu_farness_stats(500, 0.9, 20, 1.0 / 48.0, 7);
  EXPECT_GE(stats.far_fraction(), 0.5);
  EXPECT_GT(stats.mean_packing, stats.threshold);
}

TEST(Mu, ExpectedTriangleScaling) {
  // E[#triangles] = side^3 * (gamma/sqrt(side))^3 = gamma^3 side^{3/2}.
  Rng rng(2);
  const Vertex side = 600;
  const double gamma = 0.8;
  Summary packs;
  for (int i = 0; i < 8; ++i) {
    const auto mu = sample_mu(side, gamma, rng);
    packs.add(static_cast<double>(count_triangles(mu.graph)));
  }
  const double expected = std::pow(gamma, 3.0) * std::pow(static_cast<double>(side), 1.5);
  EXPECT_NEAR(packs.mean(), expected, 0.5 * expected);
}

TEST(Mu, IsTriangleEdgeAgreesWithDefinition) {
  const Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  EXPECT_TRUE(is_triangle_edge(g, Edge(0, 1)));
  EXPECT_TRUE(is_triangle_edge(g, Edge(1, 2)));
  EXPECT_FALSE(is_triangle_edge(g, Edge(2, 3)));
  EXPECT_FALSE(is_triangle_edge(g, Edge(0, 3)));  // not even an edge
}

// ---------- Boolean Matching (Theorem 4.16) ----------

TEST(BooleanMatching, PromiseHoldsByConstruction) {
  Rng rng(3);
  for (const bool zero : {true, false}) {
    const auto inst = sample_bm(64, zero, rng);
    const auto v = bm_mx_xor_w(inst);
    for (const auto bit : v) EXPECT_EQ(bit, zero ? 0 : 1);
  }
}

TEST(BooleanMatching, ZeroCaseHasNDisjointTriangles) {
  Rng rng(4);
  const std::uint32_t n_pairs = 80;
  const auto inst = sample_bm(n_pairs, true, rng);
  const Graph g = bm_graph(inst);
  EXPECT_EQ(g.n(), 1u + 4 * n_pairs);
  EXPECT_EQ(g.num_edges(), 4u * n_pairs);
  EXPECT_EQ(count_triangles(g), n_pairs);
  // They are edge-disjoint: greedy packing recovers all of them.
  EXPECT_EQ(greedy_triangle_packing(g, rng).size(), n_pairs);
  // Constant farness: n triangles / 4n edges.
  EXPECT_TRUE(certify_eps_far(g, 0.2, rng));
}

TEST(BooleanMatching, OneCaseIsTriangleFree) {
  Rng rng(5);
  for (int t = 0; t < 5; ++t) {
    const auto inst = sample_bm(80, false, rng);
    EXPECT_TRUE(is_triangle_free(bm_graph(inst)));
  }
}

TEST(BooleanMatching, ConstantAverageDegree) {
  Rng rng(6);
  const auto g = bm_graph(sample_bm(500, true, rng));
  EXPECT_NEAR(g.average_degree(), 2.0, 0.1);
}

TEST(BooleanMatching, TwoPlayerSplitMatchesWholeGraph) {
  Rng rng(7);
  const auto inst = sample_bm(60, true, rng);
  const auto players = bm_two_players(inst);
  ASSERT_EQ(players.size(), 2u);
  EXPECT_TRUE(is_duplication_free(players));
  const Graph u = union_graph(players);
  const Graph g = bm_graph(inst);
  EXPECT_EQ(u.num_edges(), g.num_edges());
  // Alice's edges are all incident to the apex.
  for (const Edge& e : players[0].local.edges()) EXPECT_EQ(e.u, 0u);
  // Bob's never are.
  for (const Edge& e : players[1].local.edges()) EXPECT_NE(e.u, 0u);
}

// ---------- Embedding (Lemma 4.17) ----------

TEST(Embedding, TargetsRequestedAverageDegree) {
  Rng rng(8);
  const Vertex n = 20000;
  const double d_target = 4.0;
  const auto inst = embed_dense_core(n, d_target, 0.5, rng);
  EXPECT_NEAR(inst.graph.average_degree(), d_target, 0.2 * d_target);
  EXPECT_EQ(inst.graph.n(), n);
  // Core degree ~ n' p = sqrt(n d p): much denser than the average.
  EXPECT_GT(inst.core_degree, 10 * d_target);
}

TEST(Embedding, PreservesFarnessOfCore) {
  Rng rng(9);
  const auto inst = embed_dense_core(5000, 2.0, 0.5, rng);
  // Dense G(n', 1/2) cores are Omega(1)-far; distance is preserved exactly
  // by the embedding and |E| unchanged.
  EXPECT_TRUE(certify_eps_far(inst.graph, 0.1, rng));
}

TEST(Embedding, ArbitraryCore) {
  Rng rng(10);
  const Graph core = gen::gnp(40, 0.4, rng);
  const auto inst = embed_core(core, 400);
  EXPECT_EQ(inst.core_n, 40u);
  EXPECT_EQ(inst.graph.num_edges(), core.num_edges());
}

// ---------- Budget search ----------

TEST(BudgetSearch, FindsSyntheticThreshold) {
  // Trial succeeds iff budget >= 1000 (deterministic).
  const BudgetTrial trial = [](std::uint64_t budget, std::uint64_t) {
    return budget >= 1000;
  };
  BudgetSearchOptions opts;
  opts.budget_lo = 1;
  opts.trials_per_budget = 5;
  opts.refine_steps = 12;
  const auto r = find_min_budget(trial, opts);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.min_budget, 1000u);
}

TEST(BudgetSearch, HandlesNeverPassing) {
  const BudgetTrial trial = [](std::uint64_t, std::uint64_t) { return false; };
  BudgetSearchOptions opts;
  opts.budget_lo = 1;
  opts.budget_hi = 1 << 10;
  opts.trials_per_budget = 2;
  const auto r = find_min_budget(trial, opts);
  EXPECT_FALSE(r.found);
  EXPECT_FALSE(r.curve.empty());
}

TEST(BudgetSearch, NoisyThresholdWithinFactorTwo) {
  // Success probability ramps from 0 to 1 around budget 500.
  const BudgetTrial trial = [](std::uint64_t budget, std::uint64_t trial_index) {
    const double p = std::min(1.0, static_cast<double>(budget) / 500.0);
    const double u =
        static_cast<double>(mix_hash(trial_index, budget) >> 11) * 0x1.0p-53;
    return u < p * p;  // ~0.8 success needs budget ~ 450
  };
  BudgetSearchOptions opts;
  opts.budget_lo = 4;
  opts.target_success = 0.7;
  opts.trials_per_budget = 60;
  const auto r = find_min_budget(trial, opts);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.min_budget, 200u);
  EXPECT_LE(r.min_budget, 1100u);
}

}  // namespace
}  // namespace tft
