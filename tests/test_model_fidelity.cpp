#include <gtest/gtest.h>

#include "comm/wire.h"
#include "core/sim_high.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "lower_bounds/symmetrization.h"
#include "proptest.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Fidelity invariants of the simultaneous model that the lower-bound
/// reductions lean on. The structural invariants run as properties over the
/// proptest generator zoo (stars, planted triangles, soups, ...) so a
/// violation comes back as a minimal shrunk witness instead of one fixed
/// G(n,p) instance; the statistical tests keep their hand-tuned instances.

using proptest::GraphCase;
using proptest::PropOutcome;

TEST(ModelFidelity, IdenticalInputsProduceIdenticalMessages) {
  // A simultaneous player's message is a function of (its input, shared
  // randomness) only — the crux of Theorem 4.15's Charlie simulation. Two
  // players with different ids but the same input must send the same edges.
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    const Graph g = c.graph();
    const std::size_t k = c.k + 1;  // ensure two distinct ids exist
    const PlayerInput a{0, k, g};
    const PlayerInput b{k - 1, k, g};
    const double d = std::max(1.0, g.average_degree());

    SimLowOptions lo;
    lo.average_degree = d;
    lo.seed = c.seed;
    if (sim_low_message(a, lo).edges != sim_low_message(b, lo).edges) {
      return {false, "sim-low message depends on player id"};
    }
    SimHighOptions ho;
    ho.average_degree = 5 * d;
    ho.seed = c.seed;
    if (sim_high_message(a, ho).edges != sim_high_message(b, ho).edges) {
      return {false, "sim-high message depends on player id"};
    }
    SimObliviousOptions oo;
    oo.seed = c.seed;
    if (sim_oblivious_message(a, oo).edges != sim_oblivious_message(b, oo).edges) {
      return {false, "sim-oblivious message depends on player id"};
    }
    return {};
  };
  const auto r = proptest::check(101, 40, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(ModelFidelity, MessageDependsOnlyOnOwnInput) {
  // Changing the other players' inputs must not change this player's
  // message: the same player-0 input embedded in two different casts.
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    const auto players = c.players();
    SimLowOptions o;
    o.average_degree = std::max(1.0, c.graph().average_degree());
    o.seed = derive_rng(c.seed, 1)();
    const auto msg0 = sim_low_message(players[0], o);
    std::vector<PlayerInput> other_cast;
    other_cast.push_back(players[0]);
    other_cast.push_back(PlayerInput{1, c.k, Graph(c.n, {})});
    other_cast.push_back(PlayerInput{2, c.k, gen::star(c.n)});
    const auto msg0b = sim_low_message(other_cast[0], o);
    if (msg0.edges != msg0b.edges) {
      return {false, "player 0's message changed when the rest of the cast did"};
    }
    return {};
  };
  const auto r = proptest::check(102, 40, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(ModelFidelity, DeterministicSymmetrizationRatioIsThreeOverK) {
  const Vertex n = 300;
  const ThreePartSampler sampler = [n](Rng& rng) {
    const double p = 4.0 / n;
    return std::array<Graph, 3>{gen::gnp(n, p, rng), gen::gnp(n, p, rng),
                                gen::gnp(n, p, rng)};
  };
  // Fixed seed => deterministic protocol (a function of the input only).
  const SimProtocol protocol = [](std::span<const PlayerInput> players) {
    SimLowOptions o;
    o.average_degree = 4.0;
    o.c = 4.0;
    o.seed = 777;
    return sim_low_find_triangle(players, o);
  };
  for (const std::size_t k : {4u, 8u, 16u}) {
    const auto report = run_symmetrization_deterministic(sampler, protocol, k, 50, 5 * k);
    const double expected = 3.0 / static_cast<double>(k);
    EXPECT_NEAR(report.ratio(), expected, 0.4 * expected) << "k=" << k;
  }
}

TEST(ModelFidelity, AllProtocolMessagesSurviveWireRoundTrip) {
  // Every protocol's messages are legal wire payloads: encode + decode
  // reproduces the edge multiset (sorted). The charged-bit bound is NOT
  // checked here: delta coding only beats the idealized 2 ceil(log n) per
  // edge once messages are dense (m^2 >~ n) — the shrinker finds honest
  // 2-edge counterexamples — so that bound gets its own dense-regime test.
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    const Graph g = c.graph();
    std::string fail;
    const auto roundtrips = [&](SimMessage msg, const char* proto) {
      std::sort(msg.edges.begin(), msg.edges.end());
      BitWriter w;
      encode_edge_list(w, g.n(), msg.edges);
      BitReader r(w.bytes(), w.bit_size());
      if (decode_edge_list(r, g.n()) != msg.edges) {
        fail = std::string(proto) + ": decode != encode input";
      }
    };
    SimLowOptions lo;
    lo.average_degree = std::max(1.0, g.average_degree());
    lo.seed = c.seed;
    SimHighOptions ho;
    ho.average_degree = std::max(1.0, g.average_degree());
    ho.seed = c.seed;
    SimObliviousOptions oo;
    oo.seed = c.seed;
    for (const auto& p : c.players()) {
      roundtrips(sim_low_message(p, lo), "sim-low");
      roundtrips(sim_high_message(p, ho), "sim-high");
      roundtrips(sim_oblivious_message(p, oo), "sim-oblivious");
      if (!fail.empty()) return {false, fail};
    }
    return {};
  };
  const auto r = proptest::check(103, 30, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(ModelFidelity, DenseMessagesFitTheChargedBudget) {
  // In the dense regime the real encoding never exceeds the idealized
  // accounting, so the paper's upper bounds are honest about a concrete
  // implementation.
  Rng rng(3);
  const Graph g = gen::gnp(600, 0.04, rng);
  const auto players = partition_random(g, 4, rng);
  SimLowOptions lo;
  lo.average_degree = g.average_degree();
  lo.seed = 6;
  SimHighOptions ho;
  ho.average_degree = g.average_degree();
  ho.seed = 6;
  SimObliviousOptions oo;
  oo.seed = 6;
  const auto fits = [&](SimMessage msg) {
    std::sort(msg.edges.begin(), msg.edges.end());
    BitWriter w;
    encode_edge_list(w, g.n(), msg.edges);
    EXPECT_LE(w.bit_size(), msg.bits(g.n())) << "m=" << msg.edges.size();
  };
  for (const auto& p : players) {
    fits(sim_low_message(p, lo));
    fits(sim_high_message(p, ho));
    fits(sim_oblivious_message(p, oo));
  }
}

TEST(ModelFidelity, ObliviousInstancesAlignAcrossPlayers) {
  // Two players with similar local densities must use the SAME shared
  // samples for overlapping degree guesses — otherwise the referee's union
  // would not contain whole triangles. Witness: on a far graph where each
  // player alone holds no triangle, the referee still finds one.
  Rng rng(4);
  const Graph g = gen::planted_triangles(1200, 160, rng);
  int ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto players = partition_random(g, 3, rng);
    SimObliviousOptions o;
    o.c = 5.0;
    o.seed = 50 + static_cast<std::uint64_t>(t);
    const auto r = sim_oblivious_find_triangle(players, o);
    ok += r.triangle ? 1 : 0;
  }
  EXPECT_GE(ok, 6);
}

}  // namespace
}  // namespace tft
