#include <gtest/gtest.h>

#include "comm/wire.h"
#include "core/sim_high.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "lower_bounds/symmetrization.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Fidelity invariants of the simultaneous model that the lower-bound
/// reductions lean on.

TEST(ModelFidelity, IdenticalInputsProduceIdenticalMessages) {
  // A simultaneous player's message is a function of (its input, shared
  // randomness) only — the crux of Theorem 4.15's Charlie simulation.
  Rng rng(1);
  const Graph x = gen::gnp(400, 0.03, rng);
  PlayerInput a{2, 6, x};
  PlayerInput b{4, 6, x};  // different id, same input

  SimLowOptions lo;
  lo.average_degree = 6.0;
  lo.seed = 9;
  const auto ma = sim_low_message(a, lo);
  const auto mb = sim_low_message(b, lo);
  EXPECT_EQ(ma.edges, mb.edges);

  SimHighOptions ho;
  ho.average_degree = 30.0;
  ho.seed = 9;
  EXPECT_EQ(sim_high_message(a, ho).edges, sim_high_message(b, ho).edges);

  SimObliviousOptions oo;
  oo.seed = 9;
  EXPECT_EQ(sim_oblivious_message(a, oo).edges, sim_oblivious_message(b, oo).edges);
}

TEST(ModelFidelity, MessageDependsOnlyOnOwnInput) {
  // Changing another player's input must not change this player's message.
  Rng rng(2);
  const Graph g = gen::planted_triangles(500, 60, rng);
  const auto players_a = partition_random(g, 3, rng);
  SimLowOptions o;
  o.average_degree = g.average_degree();
  o.seed = 4;
  const auto msg0 = sim_low_message(players_a[0], o);
  // Same player-0 input inside a completely different cast.
  std::vector<PlayerInput> players_b;
  players_b.push_back(players_a[0]);
  players_b.push_back(PlayerInput{1, 3, Graph(g.n(), {})});
  players_b.push_back(PlayerInput{2, 3, gen::star(g.n())});
  const auto msg0b = sim_low_message(players_b[0], o);
  EXPECT_EQ(msg0.edges, msg0b.edges);
}

TEST(ModelFidelity, DeterministicSymmetrizationRatioIsThreeOverK) {
  const Vertex n = 300;
  const ThreePartSampler sampler = [n](Rng& rng) {
    const double p = 4.0 / n;
    return std::array<Graph, 3>{gen::gnp(n, p, rng), gen::gnp(n, p, rng),
                                gen::gnp(n, p, rng)};
  };
  // Fixed seed => deterministic protocol (a function of the input only).
  const SimProtocol protocol = [](std::span<const PlayerInput> players) {
    SimLowOptions o;
    o.average_degree = 4.0;
    o.c = 4.0;
    o.seed = 777;
    return sim_low_find_triangle(players, o);
  };
  for (const std::size_t k : {4u, 8u, 16u}) {
    const auto report = run_symmetrization_deterministic(sampler, protocol, k, 50, 5 * k);
    const double expected = 3.0 / static_cast<double>(k);
    EXPECT_NEAR(report.ratio(), expected, 0.4 * expected) << "k=" << k;
  }
}

TEST(ModelFidelity, AllProtocolMessagesSurviveWireRoundTrip) {
  // Every protocol's messages are legal wire payloads: encode + decode
  // reproduces the edge multiset (sorted).
  Rng rng(3);
  const Graph g = gen::gnp(600, 0.04, rng);
  const auto players = partition_random(g, 4, rng);
  const auto check = [&](SimMessage msg) {
    std::sort(msg.edges.begin(), msg.edges.end());
    BitWriter w;
    encode_edge_list(w, g.n(), msg.edges);
    BitReader r(w.bytes(), w.bit_size());
    const auto decoded = decode_edge_list(r, g.n());
    EXPECT_EQ(decoded, msg.edges);
    EXPECT_LE(w.bit_size(), msg.bits(g.n()));
  };
  SimLowOptions lo;
  lo.average_degree = g.average_degree();
  lo.seed = 6;
  SimHighOptions ho;
  ho.average_degree = g.average_degree();
  ho.seed = 6;
  SimObliviousOptions oo;
  oo.seed = 6;
  for (const auto& p : players) {
    check(sim_low_message(p, lo));
    check(sim_high_message(p, ho));
    check(sim_oblivious_message(p, oo));
  }
}

TEST(ModelFidelity, ObliviousInstancesAlignAcrossPlayers) {
  // Two players with similar local densities must use the SAME shared
  // samples for overlapping degree guesses — otherwise the referee's union
  // would not contain whole triangles. Witness: on a far graph where each
  // player alone holds no triangle, the referee still finds one.
  Rng rng(4);
  const Graph g = gen::planted_triangles(1200, 160, rng);
  int ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto players = partition_random(g, 3, rng);
    SimObliviousOptions o;
    o.c = 5.0;
    o.seed = 50 + static_cast<std::uint64_t>(t);
    const auto r = sim_oblivious_find_triangle(players, o);
    ok += r.triangle ? 1 : 0;
  }
  EXPECT_GE(ok, 6);
}

}  // namespace
}  // namespace tft
