#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Runs fn under a pool of `threads` workers, restoring the previous
/// default afterwards so tests don't leak pool configuration.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int prev = default_threads();
  set_default_threads(threads);
  auto result = fn();
  set_default_threads(prev);
  return result;
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    auto counts = with_threads(threads, [] {
      std::vector<std::atomic<int>> hit(1000);
      parallel_for(hit.size(), [&](std::size_t i) { hit[i].fetch_add(1); });
      std::vector<int> out;
      for (const auto& h : hit) out.push_back(h.load());
      return out;
    });
    for (const int c : counts) EXPECT_EQ(c, 1) << "threads=" << threads;
  }
}

TEST(Parallel, ReduceMatchesSerialSum) {
  const std::size_t n = 100000;
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < n; ++i) expect += i * i;
  for (const int threads : {1, 2, 8}) {
    const auto got = with_threads(threads, [&] {
      return parallel_reduce(
          n, std::uint64_t{0},
          [](std::size_t b, std::size_t e) {
            std::uint64_t s = 0;
            for (std::size_t i = b; i < e; ++i) s += static_cast<std::uint64_t>(i) * i;
            return s;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    });
    EXPECT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST(Parallel, FloatReduceIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract: chunking and fold order depend only on
  // (n, grain), so even non-associative float accumulation agrees bitwise.
  const std::size_t n = 37777;
  const auto run = [&](int threads) {
    return with_threads(threads, [&] {
      return parallel_reduce(
          n, 0.0,
          [](std::size_t b, std::size_t e) {
            double s = 0.0;
            for (std::size_t i = b; i < e; ++i) s += std::sin(static_cast<double>(i)) / 3.0;
            return s;
          },
          [](double a, double b) { return a + b; });
    });
  };
  const double at1 = run(1);
  EXPECT_EQ(at1, run(2));
  EXPECT_EQ(at1, run(8));
}

TEST(Parallel, DerivedRngStreamsAreThreadCountInvariant) {
  // Per-trial rngs are a pure function of (seed, trial), so the draws a
  // trial sees cannot depend on scheduling.
  const std::uint64_t seed = 0xFEED;
  std::vector<std::uint64_t> serial(64);
  for (std::size_t t = 0; t < serial.size(); ++t) {
    Rng rng = derive_rng(seed, t);
    serial[t] = rng() ^ rng();
  }
  for (const int threads : {2, 8}) {
    const auto par = with_threads(threads, [&] {
      std::vector<std::uint64_t> out(64);
      parallel_for(
          out.size(),
          [&](std::size_t t) {
            Rng rng = derive_rng(seed, t);
            out[t] = rng() ^ rng();
          },
          /*grain=*/1);
      return out;
    });
    EXPECT_EQ(par, serial) << "threads=" << threads;
  }
}

TEST(Parallel, DistinctTrialsGetDistinctStreams) {
  Rng a = derive_rng(1, 0);
  Rng b = derive_rng(1, 1);
  Rng c = derive_rng(2, 0);
  const std::uint64_t xa = a(), xb = b(), xc = c();
  EXPECT_NE(xa, xb);
  EXPECT_NE(xa, xc);
  EXPECT_NE(xb, xc);
}

TEST(Parallel, NestedParallelCallsDegradeToSerial) {
  const auto got = with_threads(8, [] {
    return parallel_reduce(
        16, std::uint64_t{0},
        [](std::size_t ob, std::size_t oe) {
          std::uint64_t s = 0;
          for (std::size_t i = ob; i < oe; ++i) {
            // Inner call from a worker must not deadlock; it runs serially.
            s += parallel_reduce(
                8, std::uint64_t{0},
                [i](std::size_t b, std::size_t e) {
                  std::uint64_t inner = 0;
                  for (std::size_t j = b; j < e; ++j) inner += i + j;
                  return inner;
                },
                [](std::uint64_t a, std::uint64_t b) { return a + b; });
          }
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  });
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 8; ++j) expect += i + j;
  EXPECT_EQ(got, expect);
}

TEST(Parallel, CountTrianglesMatchesAtEveryThreadCount) {
  Rng rng(5);
  const Graph random = gen::gnp(600, 0.05, rng);
  const Graph planted = gen::planted_triangles(900, 120, rng);
  const Graph hub = gen::hub_matching(500, 3, rng);
  const Graph dense = gen::gnp(120, 0.9, rng);  // adversarially dense rows
  for (const Graph* g : {&random, &planted, &hub, &dense}) {
    const auto serial = with_threads(1, [&] { return count_triangles(*g); });
    for (const int threads : {2, 8}) {
      EXPECT_EQ(with_threads(threads, [&] { return count_triangles(*g); }), serial)
          << "threads=" << threads;
    }
  }
}

TEST(Parallel, PackingIsThreadCountInvariant) {
  // greedy_triangle_packing is serial by design, but it runs on top of the
  // shared pool configuration; pin down that configuration cannot leak in.
  Rng g_rng(11);
  const Graph g = gen::planted_triangles(600, 150, g_rng);
  const auto at = [&](int threads) {
    return with_threads(threads, [&] {
      Rng rng(3);
      return greedy_triangle_packing(g, rng);
    });
  };
  const auto serial = at(1);
  for (const int threads : {2, 8}) {
    const auto par = at(threads);
    ASSERT_EQ(par.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(par[i].a, serial[i].a);
      EXPECT_EQ(par[i].b, serial[i].b);
      EXPECT_EQ(par[i].c, serial[i].c);
    }
  }
}

TEST(Parallel, ZeroAndTinySizes) {
  for (const int threads : {1, 8}) {
    with_threads(threads, [] {
      parallel_for(0, [](std::size_t) { FAIL() << "fn called for n=0"; });
      std::atomic<int> hits{0};
      parallel_for(1, [&](std::size_t) { hits.fetch_add(1); });
      EXPECT_EQ(hits.load(), 1);
      EXPECT_EQ(parallel_reduce(
                    0, 42, [](std::size_t, std::size_t) { return 0; },
                    [](int a, int b) { return a + b; }),
                42);
      return 0;
    });
  }
}

}  // namespace
}  // namespace tft
