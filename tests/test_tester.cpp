#include <gtest/gtest.h>

#include "core/tester.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(Tester, DispatchesEveryProtocolOnFarInput) {
  Rng rng(1);
  const Graph g = gen::gnp(800, 0.05, rng);  // d ~ 40 > sqrt(800) ~ 28
  const auto players = partition_random(g, 4, rng);
  for (const auto kind :
       {ProtocolKind::kUnrestricted, ProtocolKind::kSimLow, ProtocolKind::kSimHigh,
        ProtocolKind::kSimOblivious, ProtocolKind::kExact}) {
    TesterOptions o;
    o.protocol = kind;
    o.seed = 5;
    o.known_average_degree = g.average_degree();
    const auto report = test_triangle_freeness(players, o);
    EXPECT_EQ(report.protocol, kind);
    EXPECT_GT(report.bits, 0u);
    if (report.triangle) {
      EXPECT_TRUE(g.contains(*report.triangle));
      EXPECT_TRUE(report.rejects_triangle_freeness());
    }
  }
}

TEST(Tester, ExactAlwaysDecidesCorrectly) {
  Rng rng(2);
  const Graph far = gen::planted_triangles(300, 50, rng);
  const Graph free = gen::bipartite_gnp(300, 0.05, rng);
  TesterOptions o;
  o.protocol = ProtocolKind::kExact;
  EXPECT_TRUE(test_triangle_freeness(partition_random(far, 3, rng), o).triangle.has_value());
  EXPECT_FALSE(test_triangle_freeness(partition_random(free, 3, rng), o).triangle.has_value());
}

TEST(Tester, SimProtocolsRequireKnownDegree) {
  Rng rng(3);
  const Graph g = gen::gnp(200, 0.1, rng);
  const auto players = partition_random(g, 3, rng);
  TesterOptions o;
  o.protocol = ProtocolKind::kSimLow;
  EXPECT_THROW((void)test_triangle_freeness(players, o), std::invalid_argument);
  o.protocol = ProtocolKind::kSimHigh;
  EXPECT_THROW((void)test_triangle_freeness(players, o), std::invalid_argument);
}

TEST(Tester, ObliviousNeedsNoDegree) {
  Rng rng(4);
  const Graph g = gen::planted_triangles(1500, 220, rng);
  const auto players = partition_random(g, 4, rng);
  TesterOptions o;
  o.protocol = ProtocolKind::kSimOblivious;
  o.seed = 6;
  const auto report = test_triangle_freeness(players, o);
  EXPECT_GT(report.bits, 0u);
}

TEST(Tester, OneSidedAcrossAllProtocols) {
  Rng rng(5);
  const Graph g = gen::c5_blowup(300);  // dense, triangle-free
  const auto players = partition_duplicated(g, 4, 2.0, rng);
  for (const auto kind :
       {ProtocolKind::kUnrestricted, ProtocolKind::kSimLow, ProtocolKind::kSimHigh,
        ProtocolKind::kSimOblivious, ProtocolKind::kExact}) {
    TesterOptions o;
    o.protocol = kind;
    o.seed = 7;
    o.known_average_degree = g.average_degree();
    const auto report = test_triangle_freeness(players, o);
    EXPECT_FALSE(report.triangle.has_value()) << to_string(kind);
    EXPECT_FALSE(report.rejects_triangle_freeness());
  }
}

TEST(Tester, ToStringCoversAllKinds) {
  EXPECT_STREQ(to_string(ProtocolKind::kUnrestricted), "unrestricted");
  EXPECT_STREQ(to_string(ProtocolKind::kSimLow), "sim-low");
  EXPECT_STREQ(to_string(ProtocolKind::kSimHigh), "sim-high");
  EXPECT_STREQ(to_string(ProtocolKind::kSimOblivious), "sim-oblivious");
  EXPECT_STREQ(to_string(ProtocolKind::kExact), "exact");
}

TEST(Tester, ThrowsOnEmptyPlayers) {
  TesterOptions o;
  EXPECT_THROW((void)test_triangle_freeness({}, o), std::invalid_argument);
}

}  // namespace
}  // namespace tft
