#include <gtest/gtest.h>

#include "core/sim_oblivious.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "lower_bounds/boolean_matching.h"
#include "lower_bounds/mu_distribution.h"
#include "streaming/reduction.h"
#include "streaming/stream_model.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Cross-module behaviors: hard instances from lower_bounds driven through
/// protocols and streaming from other modules.

TEST(CrossModule, StreamingDetectorOnBooleanMatchingPromise) {
  Rng rng(1);
  const auto far_inst = sample_bm(2000, /*zero_case=*/true, rng);
  const auto free_inst = sample_bm(2000, /*zero_case=*/false, rng);
  const Graph far_g = bm_graph(far_inst);
  const Graph free_g = bm_graph(free_inst);
  const std::uint64_t mem = 4000 * edge_bits(far_g.n());  // generous

  int far_ok = 0;
  for (int t = 0; t < 6; ++t) {
    Rng order(10 + t);
    auto s = shuffled_stream_of(far_g, order);
    far_ok += run_streaming(s, mem, 100 + t).triangle ? 1 : 0;
  }
  EXPECT_GE(far_ok, 5);

  for (int t = 0; t < 6; ++t) {
    Rng order(20 + t);
    auto s = shuffled_stream_of(free_g, order);
    EXPECT_FALSE(run_streaming(s, mem, 200 + t).triangle.has_value());
  }
}

TEST(CrossModule, UnrestrictedProtocolOnMu) {
  // The unrestricted tester on the lower-bound distribution: mu at moderate
  // side is eps-far with overwhelming probability, so the protocol finds a
  // triangle — the hard distribution is only hard for *restricted* models.
  Rng rng(2);
  int ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto mu = sample_mu(400, 0.9, rng);
    const auto players = partition_mu_three(mu);
    UnrestrictedOptions o;
    o.consts = ProtocolConstants::practical(0.05, 0.1);
    o.seed = 30 + static_cast<std::uint64_t>(t);
    const auto r = find_triangle_unrestricted(players, o);
    if (r.triangle) {
      EXPECT_TRUE(mu.graph.contains(*r.triangle));
      ++ok;
    }
  }
  EXPECT_GE(ok, 6);
}

TEST(CrossModule, ObliviousOnMuThreePlayerSplit) {
  Rng rng(3);
  int ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto mu = sample_mu(400, 0.9, rng);
    const auto players = partition_mu_three(mu);
    SimObliviousOptions o;
    o.c = 3.0;
    o.seed = 40 + static_cast<std::uint64_t>(t);
    const auto r = sim_oblivious_find_triangle(players, o);
    if (r.triangle) {
      EXPECT_TRUE(mu.graph.contains(*r.triangle));
      ++ok;
    }
  }
  EXPECT_GE(ok, 6);
}

TEST(CrossModule, UnrestrictedScansAllBucketsOnTriangleFreeInput) {
  // On a triangle-free input the protocol cannot exit early: it must sweep
  // the whole bucket range (worst case of Theorem 3.20).
  Rng rng(4);
  const Graph g = gen::bipartite_gnp(2000, 0.01, rng);
  const auto players = partition_random(g, 4, rng);
  UnrestrictedOptions o;
  o.consts = ProtocolConstants::practical();
  o.seed = 5;
  const auto r = find_triangle_unrestricted(players, o);
  EXPECT_FALSE(r.triangle.has_value());
  EXPECT_GE(r.buckets_tried, 3u);
}

TEST(CrossModule, ObliviousDenseLocalViewRunsOnlyHighInstances) {
  // A player whose local average degree already exceeds sqrt(n) never
  // guesses below sqrt(n), so it runs zero AlgLow instances.
  const Vertex n = 400;  // sqrt(n) = 20
  Rng rng(5);
  const Graph dense = gen::gnp(n, 0.2, rng);  // local d ~ 80 > 20
  PlayerInput p{0, 2, dense};
  SimObliviousOptions o;
  o.seed = 6;
  SimObliviousStats stats;
  (void)sim_oblivious_message(p, o, &stats);
  EXPECT_EQ(stats.low_instances, 0u);
  EXPECT_GT(stats.high_instances, 0u);
}

TEST(CrossModule, ObliviousSparseLocalViewRunsBothKinds) {
  const Vertex n = 10000;  // sqrt(n) = 100
  Rng rng(6);
  const Graph sparse = gen::gnp(n, 3.0 / n, rng);  // local d ~ 3
  PlayerInput p{0, 8, sparse};
  SimObliviousOptions o;
  o.eps = 0.05;  // ladder top (4k/eps) d̄ = 640 d̄ > sqrt(n)
  o.seed = 7;
  SimObliviousStats stats;
  (void)sim_oblivious_message(p, o, &stats);
  EXPECT_GT(stats.low_instances, 0u);
  EXPECT_GT(stats.high_instances, 0u);
}

}  // namespace
}  // namespace tft
