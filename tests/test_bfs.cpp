#include <gtest/gtest.h>

#include <queue>

#include "core/building_blocks.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Reference single-machine BFS depths.
std::vector<std::uint32_t> reference_depths(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> depth(g.n(), UINT32_MAX);
  std::queue<Vertex> q;
  depth[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (const Vertex w : g.neighbors(v)) {
      if (depth[w] == UINT32_MAX) {
        depth[w] = depth[v] + 1;
        q.push(w);
      }
    }
  }
  return depth;
}

TEST(DistributedBfs, DepthsMatchReferenceUnderDuplication) {
  Rng rng(1);
  const Graph g = gen::gnp(200, 0.02, rng);
  const auto players = partition_duplicated(g, 4, 2.0, rng);
  Transcript t(4, g.n());
  const auto bfs = distributed_bfs(players, t, 0);
  const auto ref = reference_depths(g, 0);
  for (Vertex v = 0; v < g.n(); ++v) EXPECT_EQ(bfs.depth[v], ref[v]) << "vertex " << v;
  // Parent edges are real graph edges.
  for (const Vertex v : bfs.order) {
    if (v != 0) {
      EXPECT_TRUE(g.has_edge(v, bfs.parent[v]));
    }
  }
}

TEST(DistributedBfs, VisitOrderIsLevelMonotone) {
  Rng rng(2);
  const Graph g = gen::random_tree(300, rng);
  const auto players = partition_random(g, 3, rng);
  Transcript t(3, g.n());
  const auto bfs = distributed_bfs(players, t, 0);
  EXPECT_EQ(bfs.order.size(), g.n());  // tree is connected
  for (std::size_t i = 1; i < bfs.order.size(); ++i) {
    EXPECT_GE(bfs.depth[bfs.order[i]], bfs.depth[bfs.order[i - 1]]);
  }
}

TEST(DistributedBfs, MaxVisitsTruncates) {
  Rng rng(3);
  const Graph g = gen::random_tree(500, rng);
  const auto players = partition_random(g, 3, rng);
  Transcript t(3, g.n());
  const auto bfs = distributed_bfs(players, t, 0, 17);
  EXPECT_EQ(bfs.order.size(), 17u);
}

TEST(DistributedBfs, CostScalesWithComponentEdges) {
  // O(n log n) per the paper: charges are proportional to posted adjacency.
  Rng rng(4);
  const Graph small = gen::cycle(64);
  const Graph large = gen::cycle(1024);
  std::uint64_t small_bits = 0;
  std::uint64_t large_bits = 0;
  {
    const auto players = partition_random(small, 3, rng);
    Transcript t(3, small.n());
    (void)distributed_bfs(players, t, 0);
    small_bits = t.total_bits();
  }
  {
    const auto players = partition_random(large, 3, rng);
    Transcript t(3, large.n());
    (void)distributed_bfs(players, t, 0);
    large_bits = t.total_bits();
  }
  EXPECT_GT(large_bits, small_bits * 8);   // ~16x more vertices
  EXPECT_LT(large_bits, small_bits * 40);  // but only linearly + log factor
}

TEST(DistributedOddCycle, BipartiteComponentsReportNone) {
  Rng rng(5);
  for (const Graph& g : {gen::cycle(100), gen::random_tree(200, rng),
                         gen::complete_bipartite(20, 30)}) {
    const auto players = partition_duplicated(g, 3, 1.5, rng);
    Transcript t(3, g.n());
    EXPECT_FALSE(distributed_odd_cycle(players, t, 0).has_value());
  }
}

TEST(DistributedOddCycle, FindsRealOddCycle) {
  Rng rng(6);
  for (const Vertex len : {3u, 5u, 9u, 101u}) {
    const Graph g = gen::cycle(len);
    const auto players = partition_random(g, 3, rng);
    Transcript t(3, g.n());
    const auto cycle = distributed_odd_cycle(players, t, 0);
    ASSERT_TRUE(cycle.has_value()) << "len " << len;
    // Verify: odd length, consecutive vertices adjacent, closed.
    EXPECT_EQ(cycle->size() % 2, 1u);
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      const Vertex a = (*cycle)[i];
      const Vertex b = (*cycle)[(i + 1) % cycle->size()];
      EXPECT_TRUE(g.has_edge(a, b)) << "len " << len << " at " << i;
    }
  }
}

TEST(DistributedOddCycle, TriangleInsideLargerGraph) {
  Rng rng(7);
  // Even cycle plus one chord creating an odd cycle.
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < 20; ++v) edges.emplace_back(v, v + 1);
  edges.emplace_back(0, 19);
  edges.emplace_back(0, 2);  // creates triangle 0-1-2
  const Graph g(20, std::move(edges));
  const auto players = partition_random(g, 2, rng);
  Transcript t(2, g.n());
  const auto cycle = distributed_odd_cycle(players, t, 0);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size() % 2, 1u);
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

}  // namespace
}  // namespace tft
