#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

/// O(n^3) reference counter for cross-checking.
std::uint64_t brute_force_triangles(const Graph& g) {
  std::uint64_t c = 0;
  for (Vertex a = 0; a < g.n(); ++a) {
    for (Vertex b = a + 1; b < g.n(); ++b) {
      if (!g.has_edge(a, b)) continue;
      for (Vertex w = b + 1; w < g.n(); ++w) {
        if (g.has_edge(a, w) && g.has_edge(b, w)) ++c;
      }
    }
  }
  return c;
}

TEST(CountTriangles, SmallKnownGraphs) {
  EXPECT_EQ(count_triangles(Graph(3, {{0, 1}, {1, 2}, {0, 2}})), 1u);
  EXPECT_EQ(count_triangles(Graph(3, {{0, 1}, {1, 2}})), 0u);
  // K4 has 4 triangles.
  EXPECT_EQ(count_triangles(Graph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})), 4u);
}

TEST(CountTriangles, MatchesBruteForceOnRandomGraphs) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::gnp(40, 0.2, rng);
    EXPECT_EQ(count_triangles(g), brute_force_triangles(g));
  }
}

TEST(FindTriangle, ReturnsRealTriangle) {
  Rng rng(5);
  const Graph g = gen::gnp(60, 0.3, rng);
  const auto t = find_triangle(g);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(g.contains(*t));
}

TEST(FindTriangle, NoneOnTriangleFree) {
  Rng rng(5);
  EXPECT_FALSE(find_triangle(gen::bipartite_gnp(100, 0.3, rng)).has_value());
  EXPECT_FALSE(find_triangle(gen::random_tree(100, rng)).has_value());
  EXPECT_FALSE(find_triangle(gen::c5_blowup(50)).has_value());
  EXPECT_TRUE(is_triangle_free(gen::cycle(10)));
  EXPECT_FALSE(is_triangle_free(gen::cycle(3)));
}

TEST(CloseVee, ClosesOnlyRealVees) {
  const Graph g(4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}});
  const auto t = close_vee(g, Vee{0, 1, 2});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, Triangle(0, 1, 2));
  EXPECT_FALSE(close_vee(g, Vee{0, 1, 3}).has_value());  // closing edge missing
  EXPECT_FALSE(close_vee(g, Vee{3, 1, 2}).has_value());  // vee edges missing
}

TEST(GreedyPacking, TrianglesAreEdgeDisjointAndReal) {
  Rng rng(23);
  const Graph g = gen::gnp(120, 0.15, rng);
  const auto packing = greedy_triangle_packing(g, rng);
  ASSERT_FALSE(packing.empty());
  std::unordered_set<std::uint64_t> used;
  for (const Triangle& t : packing) {
    EXPECT_TRUE(g.contains(t));
    EXPECT_TRUE(used.insert(t.e1().key()).second);
    EXPECT_TRUE(used.insert(t.e2().key()).second);
    EXPECT_TRUE(used.insert(t.e3().key()).second);
  }
}

TEST(GreedyPacking, FindsAllPlantedDisjointTriangles) {
  // Planted vertex-disjoint triangles are themselves a maximum packing; the
  // greedy scan must recover every one of them (they don't share edges with
  // anything).
  Rng rng(31);
  const Graph g = gen::planted_triangles(600, 50, rng);
  EXPECT_EQ(greedy_triangle_packing(g, rng).size(), 50u);
}

TEST(DistanceLowerBound, ZeroOnTriangleFree) {
  Rng rng(3);
  EXPECT_EQ(distance_lower_bound(gen::bipartite_gnp(200, 0.1, rng), rng), 0u);
}

TEST(CertifyEpsFar, PlantedFamily) {
  Rng rng(41);
  const Graph g = gen::planted_triangles(300, 60, rng);
  // 60 triangles, |E| = 180 + 60 = 240; eps = 0.25.
  EXPECT_TRUE(certify_eps_far(g, 0.2, rng));
  EXPECT_FALSE(certify_eps_far(g, 0.5, rng));
}

TEST(TrianglesThrough, FindsLocalTriangles) {
  const Graph g(5, {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {0, 4}, {3, 4}});
  const auto ts = triangles_through(g, 0, 10);
  EXPECT_EQ(ts.size(), 2u);
  const auto limited = triangles_through(g, 0, 1);
  EXPECT_EQ(limited.size(), 1u);
}

TEST(DisjointVeesAt, CountsMatchingStructure) {
  // Vertex 0 adjacent to 1,2,3,4; closing edges {1,2} and {3,4}: two
  // disjoint vees.
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {3, 4}});
  EXPECT_EQ(disjoint_vees_at(g, 0), 2u);
  // Shared endpoint: {1,2} and {1,3} closing edges -> only one disjoint vee.
  const Graph h(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  EXPECT_EQ(disjoint_vees_at(h, 0), 1u);
  // N(3) = {0, 1} and {0,1} is an edge: exactly one vee at 3.
  EXPECT_EQ(disjoint_vees_at(h, 3), 1u);
  // A leaf-free vertex with no closing edges has none.
  const Graph star(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(disjoint_vees_at(star, 0), 0u);
}

}  // namespace
}  // namespace tft
