#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "streaming/reduction.h"
#include "streaming/stream_model.h"
#include "streaming/streaming_triangle.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(StreamModel, StreamOfPreservesEdges) {
  Rng rng(1);
  const Graph g = gen::gnp(100, 0.1, rng);
  const auto s = stream_of(g);
  EXPECT_EQ(s.n, g.n());
  EXPECT_EQ(s.edges.size(), g.num_edges());
}

TEST(StreamModel, ShuffledStreamIsPermutation) {
  Rng rng(2);
  const Graph g = gen::gnp(100, 0.1, rng);
  auto s = shuffled_stream_of(g, rng);
  std::sort(s.edges.begin(), s.edges.end());
  EXPECT_TRUE(std::equal(s.edges.begin(), s.edges.end(), g.edges().begin()));
}

TEST(StreamModel, ConcatChecksUniverse) {
  const EdgeStream a{10, {Edge(0, 1)}};
  const EdgeStream b{10, {Edge(2, 3)}};
  const auto c = concat({a, b});
  EXPECT_EQ(c.edges.size(), 2u);
  const EdgeStream bad{20, {}};
  EXPECT_THROW(concat({a, bad}), std::invalid_argument);
}

TEST(StreamingDetector, UnlimitedMemoryAlwaysDetects) {
  // With memory >> m the detector keeps everything; the last edge of any
  // triangle in stream order closes a retained vee.
  Rng rng(3);
  const Graph g = gen::planted_triangles(300, 40, rng);
  const auto s = shuffled_stream_of(g, rng);
  StreamingTriangleDetector det(1ULL << 40, g.n(), 7);
  bool hit = false;
  for (const Edge& e : s.edges) hit = det.offer(e) || hit;
  ASSERT_TRUE(det.found().has_value());
  EXPECT_TRUE(g.contains(*det.found()));
}

TEST(StreamingDetector, NeverDetectsOnTriangleFree) {
  Rng rng(4);
  const Graph g = gen::bipartite_gnp(400, 0.05, rng);
  const auto s = shuffled_stream_of(g, rng);
  StreamingTriangleDetector det(1ULL << 40, g.n(), 8);
  for (const Edge& e : s.edges) det.offer(e);
  EXPECT_FALSE(det.found().has_value());
}

TEST(StreamingDetector, RespectsMemoryBudget) {
  Rng rng(5);
  const Graph g = gen::gnp(500, 0.05, rng);
  const auto s = shuffled_stream_of(g, rng);
  const std::uint64_t budget = 200 * edge_bits(g.n());
  StreamingTriangleDetector det(budget, g.n(), 9);
  for (const Edge& e : s.edges) {
    det.offer(e);
    ASSERT_LE(det.memory_bits(), budget);
  }
  EXPECT_LE(det.peak_memory_bits(), budget);
  EXPECT_LT(det.retention_probability(), 1.0);  // must have subsampled
}

TEST(StreamingDetector, FoundTriangleIsReal) {
  Rng rng(6);
  const Graph g = gen::gnp(400, 0.08, rng);
  for (int t = 0; t < 5; ++t) {
    auto s = shuffled_stream_of(g, rng);
    StreamingTriangleDetector det(400 * edge_bits(g.n()), g.n(), 10 + t);
    for (const Edge& e : s.edges) {
      if (det.offer(e)) break;
    }
    if (det.found()) {
      EXPECT_TRUE(g.contains(*det.found()));
    }
  }
}

TEST(StreamingDetector, MoreMemoryDetectsMoreOften) {
  Rng rng(7);
  const Graph g = gen::planted_triangles(4000, 300, rng);
  int small_ok = 0;
  int large_ok = 0;
  for (int t = 0; t < 10; ++t) {
    auto s = shuffled_stream_of(g, rng);
    StreamingTriangleDetector small(60 * edge_bits(g.n()), g.n(), 50 + t);
    StreamingTriangleDetector large(3000 * edge_bits(g.n()), g.n(), 50 + t);
    for (const Edge& e : s.edges) {
      small.offer(e);
      large.offer(e);
    }
    small_ok += small.found() ? 1 : 0;
    large_ok += large.found() ? 1 : 0;
  }
  EXPECT_GT(large_ok, small_ok);
  EXPECT_GE(large_ok, 8);
}

TEST(Reduction, CommunicationEqualsShippedStates) {
  Rng rng(8);
  const Graph g = gen::planted_triangles(600, 80, rng);
  const auto players = partition_random(g, 4, rng);
  const auto report = one_way_via_streaming(players, 1ULL << 30, 11);
  // 3 hand-offs; communication is the sum of three state sizes, each at
  // most the peak memory plus the counter overhead.
  EXPECT_GT(report.communication_bits, 0u);
  EXPECT_LE(report.communication_bits, 3 * (report.peak_memory_bits + 16));
  ASSERT_TRUE(report.triangle.has_value());
  EXPECT_TRUE(g.contains(*report.triangle));
}

TEST(Reduction, MatchesPlainStreamingOutcome) {
  // Same seed, same edge order (players concatenated) => same detection
  // result as the single-stream run.
  Rng rng(9);
  const Graph g = gen::gnp(300, 0.06, rng);
  const auto players = partition_random(g, 3, rng);
  std::vector<EdgeStream> segments;
  for (const auto& p : players) segments.push_back(stream_of(p.local));
  const auto combined = concat(segments);

  const std::uint64_t budget = 150 * edge_bits(g.n());
  const auto a = one_way_via_streaming(players, budget, 13);
  const auto b = run_streaming(combined, budget, 13);
  EXPECT_EQ(a.triangle.has_value(), b.triangle.has_value());
  if (a.triangle) {
    EXPECT_EQ(*a.triangle, *b.triangle);
  }
  EXPECT_EQ(a.peak_memory_bits, b.peak_memory_bits);
}

TEST(Reduction, EmptyPlayersThrow) {
  EXPECT_THROW({ (void)one_way_via_streaming({}, 1024, 1); }, std::invalid_argument);
}

}  // namespace
}  // namespace tft
