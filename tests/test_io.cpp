#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(GraphIo, RoundTrip) {
  Rng rng(1);
  const Graph g = gen::gnp(300, 0.03, rng);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.n(), g.n());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_EQ(h.edge(i), g.edge(i));
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream ss;
  write_graph(ss, Graph(7, {}));
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.n(), 7u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(GraphIo, CommentsAndBlanksIgnored) {
  std::stringstream ss("# a comment\n\nn 4 m 2\n# another\n0 1\n\n2 3\n");
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.n(), 4u);
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(2, 3));
}

TEST(GraphIo, MalformedHeaderThrows) {
  std::stringstream ss("vertices 4 edges 2\n");
  EXPECT_THROW((void)read_graph(ss), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW((void)read_graph(empty), std::runtime_error);
}

TEST(GraphIo, OutOfRangeEndpointThrows) {
  std::stringstream ss("n 3 m 1\n0 3\n");
  EXPECT_THROW((void)read_graph(ss), std::runtime_error);
}

TEST(GraphIo, TruncatedEdgeListThrows) {
  std::stringstream ss("n 5 m 3\n0 1\n");
  EXPECT_THROW((void)read_graph(ss), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  Rng rng(2);
  const Graph g = gen::planted_triangles(120, 20, rng);
  const std::string path = testing::TempDir() + "/tft_io_test.graph";
  save_graph(path, g);
  const Graph h = load_graph(path);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_THROW((void)load_graph(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace tft
