// The session extension of the frame header (net/frame.h): session id 0 is
// reserved for the single-session runtime and keeps the v1 layout bit for
// bit, while multiplexed sessions (id >= 1) carry a v2 magic plus the
// gamma-coded id. Both halves of that contract are pinned here: the v1
// bytes against the exact pre-session wire (inlined hex, not regenerable),
// the v2 bytes against a golden file.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "comm/wire.h"
#include "net/arq.h"
#include "net/frame.h"

namespace tft::net {
namespace {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::ostringstream hex;
  for (const std::uint8_t b : bytes) {
    hex << std::hex << std::setw(2) << std::setfill('0') << unsigned{b};
  }
  return hex.str();
}

Frame data_frame(std::uint32_t src, std::uint32_t dst, std::uint32_t seq, std::uint64_t phase,
                 std::uint64_t payload_bits, std::uint32_t session = 0) {
  Frame f;
  f.header.type = FrameType::kData;
  f.header.src = src;
  f.header.dst = dst;
  f.header.seq = seq;
  f.header.phase = phase;
  f.header.payload_bits = payload_bits;
  f.header.session = session;
  f.payload = make_filler_payload(f.header);
  return f;
}

TEST(NetSessionFrame, FoldSessionIsTheIdentityAtZero) {
  for (const std::uint64_t seed : {0ull, 1ull, 0x9e3779b97f4a7c15ull}) {
    EXPECT_EQ(fold_session(seed, 0), seed);
    EXPECT_NE(fold_session(seed, 1), seed);
    EXPECT_NE(fold_session(seed, 1), fold_session(seed, 2));
  }
}

/// Session 0 must be byte-identical to the PRE-session wire format. These
/// hex strings were captured from the repository before the session field
/// existed; unlike a golden file they are deliberately inlined so no
/// regeneration flag can silently rewrite them. A mismatch means v1
/// compatibility broke.
TEST(NetSessionFrame, SessionZeroBytesMatchTheFrozenPreSessionWire) {
  EXPECT_EQ(to_hex(serialize_frame(data_frame(2, 5, 41, 3, 37))),
            "0c000000f7a70cc0a88098c2f99cf180c2ff5b4d");
  EXPECT_EQ(to_hex(serialize_frame(data_frame(0, 4, 0, 0, 64))),
            "0d000000f7a712e04189cb1bcb04ad82cb66e51d42");
  EXPECT_EQ(to_hex(serialize_frame(make_batch_frame(1, 0, 7, {{1, 17}, {1, 3}, {1, 64}}))),
            "16000000f7a76a2101f8220962c41102020b879865739a73747086715518");
  AckInfo ack;
  ack.cumulative = 12;
  ack.sacks = {14, 15};
  EXPECT_EQ(to_hex(serialize_frame(make_ack_frame(5, 2, ack, 1u << 16))),
            "08000000f7a7466362806980f0bc8e3c");
  EXPECT_EQ(to_hex(serialize_frame(make_relay_frame(1, 9, 6, 4, 50))),
            "0d000000f7a728e2a0d88c3dc27ebf88d01e990f0e");
}

TEST(NetSessionFrame, V2HeaderRoundTripsTheSessionId) {
  for (const std::uint32_t session : {1u, 2u, 63u, 100'000u}) {
    const Frame f = data_frame(2, 5, 41, 3, 37, session);
    FrameParser parser;
    parser.feed(serialize_frame(f));
    Frame out;
    ASSERT_TRUE(parser.next(out)) << "session " << session;
    EXPECT_EQ(out.header.session, session);
    EXPECT_EQ(out.header.src, f.header.src);
    EXPECT_EQ(out.header.seq, f.header.seq);
    EXPECT_EQ(out.header.payload_bits, f.header.payload_bits);
    EXPECT_EQ(out.payload, f.payload);
    EXPECT_TRUE(verify_filler_payload(out));
    EXPECT_EQ(parser.corrupt_frames(), 0u);
  }
}

TEST(NetSessionFrame, SessionsNeverShareAFillerStream) {
  // Identical addressing, different session: the filler must differ, or two
  // multiplexed sessions could alias each other's verified payload bytes.
  const Frame a = data_frame(2, 5, 41, 3, 512, 1);
  const Frame b = data_frame(2, 5, 41, 3, 512, 2);
  const Frame solo = data_frame(2, 5, 41, 3, 512, 0);
  EXPECT_NE(a.payload, b.payload);
  EXPECT_NE(a.payload, solo.payload);
  EXPECT_TRUE(verify_filler_payload(a));
  EXPECT_TRUE(verify_filler_payload(b));
}

/// Canonical encoding: id 0 has exactly one byte string (the v1 magic). A
/// handcrafted v2 body claiming session 0 is line noise, not an alias.
TEST(NetSessionFrame, V2FrameClaimingSessionZeroIsCorrupt) {
  BitWriter w;
  w.put_bits(0xF7B5, 16);  // the v2 magic
  w.put_gamma(0);          // the reserved session id
  w.put_bits(0, 3);        // kData
  w.put_gamma(2);          // src
  w.put_gamma(5);          // dst
  w.put_gamma(41);         // seq
  w.put_gamma(3);          // phase
  w.put_gamma(0);          // payload_bits
  const std::vector<std::uint8_t>& body = w.bytes();

  std::vector<std::uint8_t> wire;
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  wire.insert(wire.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32(body);
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));

  FrameParser parser;
  parser.feed(wire);
  Frame out;
  EXPECT_FALSE(parser.next(out));
  EXPECT_EQ(parser.corrupt_frames(), 1u);
}

/// Golden v2 bytes: the multiplexed header layout is load-bearing wire
/// format, pinned like the checkpoint encoding (TFT_UPDATE_GOLDEN=1
/// regenerates after a deliberate, versioned change).
TEST(NetSessionFrame, GoldenSessionFrameBytes) {
  std::vector<std::uint8_t> all;
  const auto append = [&all](const Frame& f) {
    const auto wire = serialize_frame(f);
    all.insert(all.end(), wire.begin(), wire.end());
  };
  append(data_frame(2, 5, 41, 3, 37, /*session=*/1));
  append(data_frame(0, 4, 0, 0, 64, /*session=*/7));
  append(make_batch_frame(1, 0, 7, {{1, 17}, {1, 3}, {1, 64}}, /*session=*/3));
  Frame big = data_frame(3, 1, 9, 2, 13, /*session=*/100'000);
  append(big);

  std::ostringstream hex;
  for (std::size_t i = 0; i < all.size(); ++i) {
    hex << (i ? (i % 16 == 0 ? "\n" : " ") : "")
        << std::hex << std::setw(2) << std::setfill('0') << unsigned{all[i]};
  }
  hex << "\n";
  const std::string got = hex.str();
  const std::string path = std::string(TFT_GOLDEN_DIR) + "/frame_session_v1.txt";
  if (std::getenv("TFT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with TFT_UPDATE_GOLDEN=1 to create it";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "session frame wire format drifted (TFT_UPDATE_GOLDEN=1 regenerates "
         "after a deliberate, versioned change)";
}

}  // namespace
}  // namespace tft::net
