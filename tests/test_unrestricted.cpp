#include <gtest/gtest.h>

#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

UnrestrictedOptions base_options(std::uint64_t seed) {
  UnrestrictedOptions o;
  o.consts = ProtocolConstants::practical(0.1, 0.1);
  o.seed = seed;
  return o;
}

/// Success count of the protocol over `trials` fresh partitions.
int successes(const Graph& g, std::size_t k, double dup, const UnrestrictedOptions& base,
              int trials, std::uint64_t seed) {
  Rng rng(seed);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto players =
        dup > 1.0 ? partition_duplicated(g, k, dup, rng) : partition_random(g, k, rng);
    UnrestrictedOptions o = base;
    o.seed = seed * 7919 + static_cast<std::uint64_t>(t);
    const auto r = find_triangle_unrestricted(players, o);
    if (r.triangle) {
      EXPECT_TRUE(g.contains(*r.triangle));  // one-sided: must be real
      ++ok;
    }
  }
  return ok;
}

TEST(Unrestricted, OneSidedOnTriangleFreeFamilies) {
  Rng rng(1);
  const Graph families[] = {
      gen::bipartite_gnp(400, 0.05, rng),
      gen::random_tree(400, rng),
      gen::c5_blowup(200),
      gen::star(300),
      gen::cycle(256),
  };
  for (const Graph& g : families) {
    for (std::uint64_t s = 1; s <= 3; ++s) {
      const auto players = partition_duplicated(g, 4, 1.6, rng);
      const auto r = find_triangle_unrestricted(players, base_options(s));
      EXPECT_FALSE(r.triangle.has_value());
    }
  }
}

TEST(Unrestricted, FindsPlantedTriangles) {
  Rng rng(2);
  const Graph g = gen::planted_triangles(900, 150, rng);
  const int ok = successes(g, 4, 1.0, base_options(3), 10, 42);
  EXPECT_GE(ok, 9);
}

TEST(Unrestricted, FindsHubConcentratedTriangles) {
  // The adversarial instance of Section 3.4.2: all triangles go through a
  // few hubs; bucket-targeted sampling must still find them.
  Rng rng(3);
  const Graph g = gen::hub_matching(1200, 3, rng);
  const int ok = successes(g, 4, 1.5, base_options(4), 10, 43);
  EXPECT_GE(ok, 9);
}

TEST(Unrestricted, FindsTrianglesInDenseRandomGraphs) {
  Rng rng(4);
  const Graph g = gen::gnp(500, 0.1, rng);
  const int ok = successes(g, 6, 2.0, base_options(5), 10, 44);
  EXPECT_GE(ok, 9);
}

TEST(Unrestricted, WorksWithKnownDegree) {
  Rng rng(5);
  const Graph g = gen::planted_triangles(600, 120, rng);
  UnrestrictedOptions o = base_options(6);
  o.known_average_degree = g.average_degree();
  const int ok = successes(g, 4, 1.0, o, 10, 45);
  EXPECT_GE(ok, 9);
}

TEST(Unrestricted, KnownDegreeSkipsEstimationCost) {
  Rng rng(6);
  const Graph g = gen::bipartite_gnp(600, 0.03, rng);  // triangle-free: full run
  const auto players = partition_random(g, 4, rng);
  UnrestrictedOptions unknown = base_options(7);
  UnrestrictedOptions known = base_options(7);
  known.known_average_degree = g.average_degree();
  const auto r_unknown = find_triangle_unrestricted(players, unknown);
  const auto r_known = find_triangle_unrestricted(players, known);
  EXPECT_LT(r_known.total_bits, r_unknown.total_bits);
}

TEST(Unrestricted, NoDuplicationPathWorks) {
  Rng rng(7);
  const Graph g = gen::planted_triangles(600, 120, rng);
  UnrestrictedOptions o = base_options(8);
  o.no_duplication = true;
  const int ok = successes(g, 4, 1.0, o, 10, 46);
  EXPECT_GE(ok, 9);
}

TEST(Unrestricted, BlackboardIsCheaperOnDuplicatedInputs) {
  Rng rng(8);
  const Graph g = gen::hub_matching(1200, 3, rng);
  const auto players = partition_duplicated(g, 8, 3.0, rng);
  UnrestrictedOptions coord = base_options(9);
  UnrestrictedOptions board = base_options(9);
  board.blackboard = true;
  const auto r_coord = find_triangle_unrestricted(players, coord);
  const auto r_board = find_triangle_unrestricted(players, board);
  ASSERT_TRUE(r_coord.triangle.has_value());
  ASSERT_TRUE(r_board.triangle.has_value());
  EXPECT_LT(r_board.total_bits, r_coord.total_bits);
}

TEST(Unrestricted, BucketingBeatsNaiveSamplingOnHubFamily) {
  // Ablation (DESIGN.md E-ABL): naive uniform vertex sampling cannot target
  // the degree band where the triangle sources live when they are few,
  // while bucketing finds them reliably.
  Rng rng(9);
  // Embedded dense core: all triangle activity on 24 of 80000 vertices, so
  // a uniform vertex sample almost never lands on the core, while the
  // core's degree bucket contains nothing else.
  const Graph core = gen::gnp(24, 0.6, rng);
  const Graph g = gen::embed_with_isolated(core, 80000);
  UnrestrictedOptions with_buckets = base_options(10);
  UnrestrictedOptions naive = base_options(10);
  naive.use_bucketing = false;

  const int bucket_ok = successes(g, 4, 1.0, with_buckets, 8, 47);
  const int naive_ok = successes(g, 4, 1.0, naive, 8, 47);
  EXPECT_GE(bucket_ok, 7);
  EXPECT_LE(naive_ok, bucket_ok - 3);  // naive misses most of the time
}

TEST(Unrestricted, EmptyGraphAcceptsCheaply) {
  std::vector<PlayerInput> players;
  for (std::size_t j = 0; j < 3; ++j) players.push_back(PlayerInput{j, 3, Graph(100, {})});
  const auto r = find_triangle_unrestricted(players, base_options(11));
  EXPECT_FALSE(r.triangle.has_value());
  EXPECT_LT(r.total_bits, 1000u);
}

TEST(Unrestricted, ThrowsOnNoPlayers) {
  EXPECT_THROW({ (void)find_triangle_unrestricted({}, base_options(1)); },
               std::invalid_argument);
}

TEST(Unrestricted, TheoryConstantsStillCorrectOnTinyInputs) {
  Rng rng(10);
  const Graph g = gen::planted_triangles(120, 30, rng);
  const auto players = partition_random(g, 3, rng);
  UnrestrictedOptions o;
  o.consts = ProtocolConstants::theory(0.2, 0.1);
  o.seed = 12;
  const auto r = find_triangle_unrestricted(players, o);
  ASSERT_TRUE(r.triangle.has_value());
  EXPECT_TRUE(g.contains(*r.triangle));
}

TEST(ProtocolConstantsTest, TheoryLargerThanPractical) {
  const auto prac = ProtocolConstants::practical();
  const auto theo = ProtocolConstants::theory();
  EXPECT_GT(theo.samples_per_bucket(4096, 8), prac.samples_per_bucket(4096, 8));
  EXPECT_GT(theo.candidate_cap(4096), prac.candidate_cap(4096));
  EXPECT_GE(theo.edge_sample_probability(4096, 100.0),
            prac.edge_sample_probability(4096, 100.0));
}

TEST(ProtocolConstantsTest, EdgeSampleProbabilityDecreasesWithDegree) {
  const auto c = ProtocolConstants::practical();
  EXPECT_GT(c.edge_sample_probability(4096, 10.0), c.edge_sample_probability(4096, 1000.0));
  EXPECT_LE(c.edge_sample_probability(4096, 1.0), 1.0);
}

}  // namespace
}  // namespace tft
