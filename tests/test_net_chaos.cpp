#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "chaos.h"
#include "net/fault.h"
#include "net/runtime.h"
#include "util/rng.h"

/// \file test_net_chaos.cpp
/// The phase-exhaustive chaos suite (ISSUE 7 headline): kill any player at
/// any (phase, offset) crash point and demand the recovered run is
/// indistinguishable from the clean one. Crash points are enumerated from
/// the clean run's actual per-(player, phase) charge counts — a scheduled
/// crash beyond a cell's count never fires, so sweeping declared grammar
/// bounds instead of observed counts would silently test nothing.
///
/// On divergence the harness shrinks to a minimal (model, arq, player,
/// phase, offset) witness (chaos.h), so a red run names one concrete
/// reproducer instead of a wall of failures.

namespace tft::net {
namespace {

using chaos::Baseline;
using chaos::Scenario;

TEST(NetChaos, OffsetEnumerationCoversBoundaryMidAndLast) {
  EXPECT_TRUE(chaos::interesting_offsets(0).empty());
  EXPECT_EQ(chaos::interesting_offsets(1), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(chaos::interesting_offsets(2), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(chaos::interesting_offsets(9), (std::vector<std::uint64_t>{0, 4, 8}));
}

/// The exhaustive core: every player, every phase it charges in, crash at
/// the phase boundary / mid-window / last charge. One model keeps the
/// cross product tractable; the coordinator model has the richest phase
/// structure (both directions, many rounds).
TEST(NetChaos, ExhaustiveCoordinatorSweep) {
  Scenario s;
  s.k = 3;
  s.model = CommModel::kCoordinator;
  const Baseline clean = chaos::clean_run(s);
  std::uint64_t cells = 0;
  for (const auto& per : clean.counts) {
    for (const std::uint64_t c : per) cells += c > 0;
  }
  ASSERT_GE(cells, 3u) << "instance too small to exercise the sweep";
  const auto witness = chaos::sweep(s, clean);
  EXPECT_FALSE(witness.has_value()) << "minimal witness: " << witness->what;
}

/// Every communication model recovers, under both ARQ disciplines, from a
/// crash at the first, middle and last charged phase of a fixed player.
TEST(NetChaos, AllFourModelsBothArqPolicies) {
  const CommModel models[] = {CommModel::kSimultaneous, CommModel::kCoordinator,
                              CommModel::kBlackboard, CommModel::kOneWay};
  const ArqPolicy policies[] = {ArqPolicy::windowed(), ArqPolicy::stop_and_wait()};
  for (const CommModel model : models) {
    for (const ArqPolicy& arq : policies) {
      Scenario s;
      s.model = model;
      s.arq = arq;
      SCOPED_TRACE(std::string(to_string(model)) + "/" + chaos::arq_name(arq));
      const Baseline clean = chaos::clean_run(s);

      // The charged phases of player 1, first/middle/last, mid-cell offset.
      const auto& per = clean.counts.at(1);
      std::vector<std::uint64_t> charged;
      for (std::uint64_t ph = 0; ph < per.size(); ++ph) {
        if (per[ph] > 0) charged.push_back(ph);
      }
      ASSERT_FALSE(charged.empty());
      std::vector<std::uint64_t> picks = {charged.front(), charged[charged.size() / 2],
                                          charged.back()};
      for (const std::uint64_t ph : picks) {
        const CrashEvent e{1, ph, per[ph] / 2};
        const auto d = chaos::run_with_crash(s, e, clean);
        EXPECT_FALSE(d.has_value()) << *d;
      }
    }
  }
}

/// Seeded property sweep: random scenario, random legal crash point drawn
/// from the clean run's counts. Failures shrink to a minimal witness.
TEST(NetChaos, SeededRandomCrashPoints) {
  const CommModel models[] = {CommModel::kSimultaneous, CommModel::kCoordinator,
                              CommModel::kBlackboard, CommModel::kOneWay};
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s;
    s.k = 3 + rng.below(3);
    s.instance_seed = 100 + rng.below(1000);
    s.model = models[rng.below(4)];
    s.arq = rng.below(2) ? ArqPolicy::stop_and_wait() : ArqPolicy::windowed();
    SCOPED_TRACE("trial " + std::to_string(trial) + ": model " + to_string(s.model) + " arq " +
                 chaos::arq_name(s.arq) + " k " + std::to_string(s.k) + " seed " +
                 std::to_string(s.instance_seed));
    const Baseline clean = chaos::clean_run(s);

    // A uniformly random charged (player, phase) cell, then a random offset.
    std::vector<CrashEvent> cells;
    for (std::uint32_t pl = 0; pl < clean.counts.size(); ++pl) {
      const auto& per = clean.counts[pl];
      for (std::uint64_t ph = 0; ph < per.size(); ++ph) {
        if (per[ph] > 0) cells.push_back({pl, ph, per[ph]});
      }
    }
    ASSERT_FALSE(cells.empty());
    CrashEvent e = cells[rng.below(cells.size())];
    e.offset = rng.below(e.offset);  // offset field held the cell's count
    if (auto d = chaos::run_with_crash(s, e, clean)) {
      const chaos::Witness w = chaos::shrink(s, e, std::move(*d), clean);
      ADD_FAILURE() << "minimal witness: " << w.what;
    }
  }
}

/// The seeded crash coin (crash / crash_max_offset) composes with recovery:
/// a plan with a high crash rate still completes with the clean verdict and
/// totals, and the whole schedule replays from the one seed.
TEST(NetChaos, SeededCrashCoinRecoversAndReplays) {
  Scenario s;
  const auto players = chaos::instance(s);
  const Baseline clean = chaos::clean_run(s);

  NetConfig cfg = chaos::make_config(s);
  cfg.faults.seed = 424242;
  cfg.faults.crash = 0.35;
  cfg.faults.crash_max_offset = 4;

  const auto once = [&] {
    return run_executed(s.k, cfg, [&] { return chaos::run_body(s, players); });
  };
  const auto [verdict, report] = once();
  EXPECT_EQ(verdict, clean.verdict);
  EXPECT_EQ(report.wire.up_bits, clean.wire.up_bits);
  EXPECT_EQ(report.wire.down_bits, clean.wire.down_bits);
  EXPECT_EQ(report.wire.phase_bits, clean.wire.phase_bits);
  EXPECT_GE(report.wire.crashes, 1u)
      << "a 35% per-(player,phase) coin should kill someone in this run";

  const auto [verdict2, report2] = once();
  EXPECT_EQ(verdict2, verdict);
  EXPECT_EQ(report2.wire.crashes, report.wire.crashes);
  EXPECT_EQ(report2.wire.replayed_charges, report.wire.replayed_charges);
  EXPECT_EQ(report2.wire.summary(), report.wire.summary());
}

}  // namespace
}  // namespace tft::net
