#include <gtest/gtest.h>

#include <cmath>

#include "comm/shared_randomness.h"
#include "core/sim_high.h"
#include "core/sim_low.h"
#include "core/sim_oblivious.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

template <typename RunFn>
int run_trials(const Graph& g, std::size_t k, int trials, std::uint64_t seed, RunFn&& run) {
  Rng rng(seed);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto players = partition_random(g, k, rng);
    const SimResult r = run(players, seed * 31 + static_cast<std::uint64_t>(t));
    if (r.triangle) {
      EXPECT_TRUE(g.contains(*r.triangle));
      ++ok;
    }
  }
  return ok;
}

// ---------- SimLow ----------

TEST(SimLow, OneSidedOnTriangleFree) {
  Rng rng(1);
  const Graph g = gen::bipartite_gnp(1000, 0.004, rng);
  const int ok = run_trials(g, 4, 5, 2, [&](auto players, std::uint64_t s) {
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.seed = s;
    return sim_low_find_triangle(players, o);
  });
  EXPECT_EQ(ok, 0);
}

TEST(SimLow, FindsTrianglesInSparseFarGraphs) {
  Rng rng(2);
  const Graph g = gen::planted_triangles(2000, 250, rng);
  const int ok = run_trials(g, 4, 10, 3, [&](auto players, std::uint64_t s) {
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.c = 5.0;
    o.seed = s;
    return sim_low_find_triangle(players, o);
  });
  EXPECT_GE(ok, 8);
}

TEST(SimLow, FindsHubConcentratedTriangles) {
  // The instance the S-set exists for: few high-degree triangle sources.
  Rng rng(3);
  const Graph g = gen::hub_matching(2000, 2, rng);
  const int ok = run_trials(g, 4, 10, 4, [&](auto players, std::uint64_t s) {
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.c = 5.0;
    o.seed = s;
    return sim_low_find_triangle(players, o);
  });
  EXPECT_GE(ok, 8);
}

TEST(SimLow, RespectsExplicitCap) {
  Rng rng(4);
  const Graph g = gen::planted_triangles(2000, 250, rng);
  const auto players = partition_random(g, 4, rng);
  SimLowOptions o;
  o.average_degree = g.average_degree();
  o.seed = 9;
  o.cap_edges_per_player = 7;
  const auto r = sim_low_find_triangle(players, o);
  for (const auto bits : r.per_player_bits) {
    EXPECT_LE(bits, count_bits(7) + 7 * edge_bits(g.n()));
  }
}

TEST(SimLow, PaperCapRarelyTruncates) {
  Rng rng(5);
  const Graph g = gen::planted_triangles(2000, 200, rng);
  const auto players = partition_random(g, 4, rng);
  SimLowOptions o;
  o.average_degree = g.average_degree();
  o.seed = 10;
  const auto r = sim_low_find_triangle(players, o);
  EXPECT_FALSE(r.any_truncated);
}

// ---------- SimHigh ----------

TEST(SimHigh, OneSidedOnTriangleFree) {
  const Graph g = gen::c5_blowup(600);  // dense triangle-free
  const int ok = run_trials(g, 3, 5, 6, [&](auto players, std::uint64_t s) {
    SimHighOptions o;
    o.average_degree = g.average_degree();
    o.seed = s;
    return sim_high_find_triangle(players, o);
  });
  EXPECT_EQ(ok, 0);
}

TEST(SimHigh, FindsTrianglesInDenseRandomGraphs) {
  Rng rng(7);
  const Vertex n = 1200;
  const double d = std::sqrt(static_cast<double>(n));
  const Graph g = gen::gnp(n, d / static_cast<double>(n), rng);
  const int ok = run_trials(g, 3, 10, 8, [&](auto players, std::uint64_t s) {
    SimHighOptions o;
    o.average_degree = g.average_degree();
    o.eps = 0.1;
    o.c = 3.0;
    o.seed = s;
    return sim_high_find_triangle(players, o);
  });
  EXPECT_GE(ok, 8);
}

TEST(SimHigh, SampleSizeFormula) {
  SimHighOptions o;
  o.average_degree = 64.0;
  o.eps = 0.1;
  o.c = 3.0;
  const double s = sim_high_sample_size(4096, o);
  EXPECT_NEAR(s, 3.0 * std::cbrt(4096.0 * 4096.0 / (0.1 * 64.0)), 1e-9);
  // Clamp to n.
  o.average_degree = 1e-9;
  EXPECT_LE(sim_high_sample_size(64, o), 64.0);
}

TEST(SimHigh, MessageContainsOnlySampledInducedEdges) {
  Rng rng(9);
  const Graph g = gen::gnp(500, 0.05, rng);
  const auto players = partition_random(g, 3, rng);
  SimHighOptions o;
  o.average_degree = g.average_degree();
  o.seed = 11;
  o.cap_edges_per_player = SimHighOptions::kUncapped;
  const SharedRandomness sr(o.seed);
  const double s = sim_high_sample_size(g.n(), o);
  const double p = s / static_cast<double>(g.n());
  const SharedTag tag{0x51, 0x94, 0};
  for (const auto& player : players) {
    const auto msg = sim_high_message(player, o);
    for (const Edge& e : msg.edges) {
      EXPECT_TRUE(player.local.has_edge(e));
      EXPECT_TRUE(sr.bernoulli(tag, e.u, p));
      EXPECT_TRUE(sr.bernoulli(tag, e.v, p));
    }
  }
}

// ---------- SimOblivious ----------

TEST(SimOblivious, OneSidedOnTriangleFree) {
  Rng rng(10);
  const Graph families[] = {
      gen::bipartite_gnp(800, 0.01, rng),
      gen::c5_blowup(400),
      gen::random_tree(500, rng),
  };
  for (const Graph& g : families) {
    const int ok = run_trials(g, 4, 3, 12, [&](auto players, std::uint64_t s) {
      SimObliviousOptions o;
      o.seed = s;
      return sim_oblivious_find_triangle(players, o);
    });
    EXPECT_EQ(ok, 0);
  }
}

TEST(SimOblivious, FindsTrianglesWithoutKnowingDegreeSparse) {
  Rng rng(11);
  const Graph g = gen::planted_triangles(2000, 250, rng);
  const int ok = run_trials(g, 4, 10, 13, [&](auto players, std::uint64_t s) {
    SimObliviousOptions o;
    o.c = 5.0;
    o.seed = s;
    return sim_oblivious_find_triangle(players, o);
  });
  EXPECT_GE(ok, 8);
}

TEST(SimOblivious, FindsTrianglesWithoutKnowingDegreeDense) {
  Rng rng(12);
  const Vertex n = 1000;
  const Graph g = gen::gnp(n, 0.06, rng);  // d ~ 60 > sqrt(n)
  const int ok = run_trials(g, 4, 10, 14, [&](auto players, std::uint64_t s) {
    SimObliviousOptions o;
    o.c = 3.0;
    o.seed = s;
    return sim_oblivious_find_triangle(players, o);
  });
  EXPECT_GE(ok, 8);
}

TEST(SimOblivious, RunsBothInstanceKinds) {
  Rng rng(13);
  const Vertex n = 900;
  const Graph g = gen::gnp(n, 0.05, rng);
  const auto players = partition_random(g, 4, rng);
  SimObliviousOptions o;
  o.seed = 15;
  SimObliviousStats stats;
  (void)sim_oblivious_message(players[0], o, &stats);
  // d ~ 45, sqrt(n) = 30: the ladder [d̄, 4k/eps d̄] must cross sqrt(n).
  EXPECT_GT(stats.high_instances, 0u);
  // Player's own d̄ < sqrt(n) can happen; low instances exist when the
  // ladder starts below sqrt(n).
  EXPECT_GT(stats.high_instances + stats.low_instances, 3u);
}

TEST(SimOblivious, EmptyPlayerSendsNothing) {
  PlayerInput empty{0, 4, Graph(100, {})};
  SimObliviousOptions o;
  const auto msg = sim_oblivious_message(empty, o);
  EXPECT_TRUE(msg.edges.empty());
}

TEST(SimOblivious, ExplicitTotalCapRespected) {
  Rng rng(14);
  const Graph g = gen::gnp(800, 0.05, rng);
  const auto players = partition_random(g, 4, rng);
  SimObliviousOptions o;
  o.seed = 16;
  o.cap_edges_per_player = 11;
  for (const auto& p : players) {
    const auto msg = sim_oblivious_message(p, o);
    EXPECT_LE(msg.edges.size(), 11u);
  }
}

// ---------- Structural invariants of the simultaneous model ----------

TEST(SimModel, ExactlyOneMessagePerPlayerAndBitsMatchPayload) {
  Rng rng(15);
  const Graph g = gen::planted_triangles(1000, 120, rng);
  const auto players = partition_random(g, 5, rng);
  SimLowOptions o;
  o.average_degree = g.average_degree();
  o.seed = 17;
  std::vector<SimMessage> messages;
  std::uint64_t expected_total = 0;
  for (const auto& p : players) {
    auto msg = sim_low_message(p, o);
    EXPECT_EQ(msg.player_id, p.player_id);
    expected_total += msg.bits(g.n());
    messages.push_back(std::move(msg));
  }
  const auto r = finalize_simultaneous(g.n(), std::move(messages));
  EXPECT_EQ(r.total_bits, expected_total);
  EXPECT_EQ(r.per_player_bits.size(), 5u);
}

TEST(SimModel, RefereeTriangleIsFromReceivedEdges) {
  const Graph g(4, {{0, 1}, {1, 2}, {0, 2}});
  std::vector<SimMessage> msgs(1);
  msgs[0].player_id = 0;
  msgs[0].edges = {Edge(0, 1), Edge(1, 2), Edge(0, 2)};
  const auto tri = referee_find_triangle(4, msgs);
  ASSERT_TRUE(tri.has_value());
  EXPECT_EQ(*tri, Triangle(0, 1, 2));
}

TEST(SimModel, ApplyCapMarksTruncation) {
  SimMessage m;
  m.edges = {Edge(0, 1), Edge(1, 2), Edge(2, 3)};
  apply_cap(m, 2);
  EXPECT_EQ(m.edges.size(), 2u);
  EXPECT_TRUE(m.truncated);
  SimMessage m2;
  m2.edges = {Edge(0, 1)};
  apply_cap(m2, 2);
  EXPECT_FALSE(m2.truncated);
  apply_cap(m2, 0);  // 0 = no cap
  EXPECT_EQ(m2.edges.size(), 1u);
}

}  // namespace
}  // namespace tft
