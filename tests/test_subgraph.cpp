#include <gtest/gtest.h>

#include "core/subgraph_freeness.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(Patterns, BasicShapes) {
  EXPECT_EQ(pattern_clique(4).num_edges(), 6u);
  EXPECT_EQ(pattern_cycle(5).num_edges(), 5u);
  EXPECT_EQ(pattern_path(4).num_edges(), 3u);
  EXPECT_THROW(pattern_cycle(2), std::invalid_argument);
}

/// Verify a witness mapping against host and pattern.
void check_witness(const Graph& host, const Graph& pattern,
                   const std::vector<Vertex>& witness) {
  ASSERT_EQ(witness.size(), pattern.n());
  for (const Edge& e : pattern.edges()) {
    EXPECT_TRUE(host.has_edge(witness[e.u], witness[e.v]))
        << "pattern edge (" << e.u << "," << e.v << ") unmapped";
  }
  // Injectivity.
  for (std::size_t i = 0; i < witness.size(); ++i) {
    for (std::size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_NE(witness[i], witness[j]);
    }
  }
}

TEST(FindSubgraph, TriangleAgreesWithDedicatedFinder) {
  Rng rng(1);
  for (int t = 0; t < 10; ++t) {
    const Graph g = gen::gnp(80, 0.08, rng);
    const auto tri = find_triangle(g);
    const auto iso = find_subgraph(g, pattern_clique(3));
    EXPECT_EQ(tri.has_value(), iso.has_value());
    if (iso) check_witness(g, pattern_clique(3), *iso);
  }
}

TEST(FindSubgraph, CliqueDetection) {
  // K5 planted inside noise.
  Rng rng(2);
  Graph k5 = pattern_clique(5);
  const Graph g = gen::overlay(gen::embed_with_isolated(k5, 200),
                               gen::bipartite_gnp(200, 0.05, rng));
  const auto found = find_subgraph(g, pattern_clique(5));
  ASSERT_TRUE(found.has_value());
  check_witness(g, pattern_clique(5), *found);
  // No K5 in the bipartite part alone.
  EXPECT_FALSE(contains_subgraph(gen::bipartite_gnp(200, 0.05, rng), pattern_clique(3)));
}

TEST(FindSubgraph, OddCyclesAbsentFromBipartite) {
  Rng rng(3);
  const Graph g = gen::bipartite_gnp(300, 0.05, rng);
  EXPECT_FALSE(contains_subgraph(g, pattern_cycle(5)));
  EXPECT_FALSE(contains_subgraph(g, pattern_cycle(7)));
  // Even cycles exist in dense bipartite graphs.
  EXPECT_TRUE(contains_subgraph(g, pattern_cycle(4)));
}

TEST(FindSubgraph, C5InBlowup) {
  const Graph g = gen::c5_blowup(50);
  const auto found = find_subgraph(g, pattern_cycle(5));
  ASSERT_TRUE(found.has_value());
  check_witness(g, pattern_cycle(5), *found);
  // The blow-up is triangle-free.
  EXPECT_FALSE(contains_subgraph(g, pattern_clique(3)));
}

TEST(FindSubgraph, PathAlwaysFoundInConnectedGraph) {
  Rng rng(4);
  const Graph g = gen::random_tree(50, rng);
  EXPECT_TRUE(contains_subgraph(g, pattern_path(2)));
  const auto p3 = find_subgraph(g, pattern_path(3));
  ASSERT_TRUE(p3.has_value());
  check_witness(g, pattern_path(3), *p3);
}

TEST(FindSubgraph, EmptyAndOversizedPatterns) {
  const Graph g(5, {{0, 1}});
  EXPECT_TRUE(find_subgraph(g, Graph(0, {})).has_value());
  EXPECT_FALSE(find_subgraph(g, pattern_clique(6)).has_value());
}

TEST(PlantedCopies, ExactCountAndNoExtras) {
  Rng rng(5);
  const Graph g = planted_copies(400, pattern_clique(4), 20, rng);
  // Exactly 20 K4s (the noise matching cannot form one).
  std::uint64_t k4s = 0;
  for (Vertex base = 0; base < 80; base += 4) {
    bool all = true;
    for (Vertex u = 0; u < 4; ++u) {
      for (Vertex v = u + 1; v < 4; ++v) all = all && g.has_edge(base + u, base + v);
    }
    k4s += all ? 1 : 0;
  }
  EXPECT_EQ(k4s, 20u);
  EXPECT_TRUE(contains_subgraph(g, pattern_clique(4)));
  EXPECT_THROW(planted_copies(10, pattern_clique(4), 5, rng), std::invalid_argument);
}

TEST(SimSubgraph, OneSidedOnPatternFreeInputs) {
  Rng rng(6);
  // Bipartite inputs: no C5 and no K3 can ever be reported.
  const Graph g = gen::bipartite_gnp(600, 0.04, rng);
  const auto players = partition_random(g, 4, rng);
  for (const Graph& pat : {pattern_cycle(5), pattern_clique(3)}) {
    SimSubgraphOptions o;
    o.average_degree = g.average_degree();
    o.seed = 7;
    const auto r = sim_subgraph_find(players, pat, o);
    EXPECT_FALSE(r.witness.has_value());
  }
}

TEST(SimSubgraph, FindsPlantedK4s) {
  Rng rng(7);
  const Graph g = planted_copies(1200, pattern_clique(4), 120, rng);
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto players = partition_random(g, 4, rng);
    SimSubgraphOptions o;
    o.average_degree = g.average_degree();
    o.c = 4.0;
    o.seed = 100 + static_cast<std::uint64_t>(t);
    const auto r = sim_subgraph_find(players, pattern_clique(4), o);
    if (r.witness) {
      check_witness(g, pattern_clique(4), *r.witness);
      ++ok;
    }
  }
  EXPECT_GE(ok, 8);
}

TEST(SimSubgraph, FindsPlantedC5s) {
  Rng rng(8);
  const Graph g = planted_copies(1500, pattern_cycle(5), 150, rng);
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto players = partition_random(g, 4, rng);
    SimSubgraphOptions o;
    o.average_degree = g.average_degree();
    o.c = 4.0;
    o.seed = 200 + static_cast<std::uint64_t>(t);
    const auto r = sim_subgraph_find(players, pattern_cycle(5), o);
    if (r.witness) {
      check_witness(g, pattern_cycle(5), *r.witness);
      ++ok;
    }
  }
  EXPECT_GE(ok, 8);
}

TEST(SimSubgraph, TriangleSpecialCaseMatchesSimHighShape) {
  // For H = K3 the sampler is AlgHigh; sample size formulas agree in shape.
  SimSubgraphOptions o;
  o.average_degree = 64.0;
  o.eps = 0.1;
  const double s3 = subgraph_sample_size(4096, 3, o);
  const double s5 = subgraph_sample_size(4096, 5, o);
  EXPECT_GT(s5, s3);  // bigger pattern needs a bigger sample
  EXPECT_LE(s5, 4096.0);
}

TEST(SimSubgraph, CapRespected) {
  Rng rng(9);
  const Graph g = planted_copies(800, pattern_clique(4), 80, rng);
  const auto players = partition_random(g, 3, rng);
  SimSubgraphOptions o;
  o.average_degree = g.average_degree();
  o.seed = 5;
  o.cap_edges_per_player = 3;
  const auto r = sim_subgraph_find(players, pattern_clique(4), o);
  EXPECT_LE(r.edges_received, 9u);
}

}  // namespace
}  // namespace tft
