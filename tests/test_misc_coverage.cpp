#include <gtest/gtest.h>

#include "core/oneway_vee.h"
#include "lower_bounds/mu_distribution.h"
#include "util/rng.h"
#include "util/stats.h"

namespace tft {
namespace {

TEST(MiscCoverage, FormatRowRendersAllCells) {
  const auto row = format_row({{"n", 4096.0}, {"bits", 1.25e4}});
  EXPECT_NE(row.find("n=4096"), std::string::npos);
  EXPECT_NE(row.find("bits=12500"), std::string::npos);
}

TEST(MiscCoverage, LinearFitDegenerateInputs) {
  // All-equal x: slope 0, intercept = mean(y).
  const std::vector<double> xs{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  const auto fit = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(MiscCoverage, OneWayHubsExceedBudget) {
  // hubs > budget: per-hub budget clamps to 1 instead of 0.
  Rng rng(1);
  const auto mu = sample_mu(200, 0.9, rng);
  const auto players = partition_mu_three(mu);
  OneWayOptions o;
  o.seed = 2;
  o.hubs = 16;
  o.budget_edges_per_player = 4;  // < hubs
  const auto r = oneway_vee_find_edge(players, mu.layout, o);
  if (r.triangle_edge) {
    EXPECT_TRUE(is_triangle_edge(mu.graph, *r.triangle_edge));
  }
  EXPECT_GT(r.total_bits, 0u);
}

TEST(MiscCoverage, OneWayOnEmptyInputs) {
  std::vector<PlayerInput> players;
  for (std::size_t j = 0; j < 3; ++j) players.push_back(PlayerInput{j, 3, Graph(30, {})});
  const TripartiteLayout layout{10};
  OneWayOptions o;
  o.budget_edges_per_player = 8;
  const auto r = oneway_vee_find_edge(players, layout, o);
  EXPECT_FALSE(r.triangle_edge.has_value());
}

TEST(MiscCoverage, TripartiteLayoutPredicates) {
  const TripartiteLayout layout{5};
  EXPECT_TRUE(layout.in_u(0));
  EXPECT_TRUE(layout.in_u(4));
  EXPECT_FALSE(layout.in_u(5));
  EXPECT_TRUE(layout.in_v1(5));
  EXPECT_TRUE(layout.in_v1(9));
  EXPECT_FALSE(layout.in_v1(10));
  EXPECT_TRUE(layout.in_v2(10));
  EXPECT_TRUE(layout.in_v2(14));
  EXPECT_FALSE(layout.in_v2(15));
}

TEST(MiscCoverage, SummarySingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

}  // namespace
}  // namespace tft
