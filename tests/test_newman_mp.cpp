#include <gtest/gtest.h>

#include "comm/message_passing.h"
#include "comm/newman.h"
#include "core/sim_low.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

// ---------- Newman's theorem ----------

TEST(Newman, TableIsDeterministicAndSized) {
  const NewmanTable a(42, /*n=*/4096, /*k=*/8, /*delta=*/0.1);
  const NewmanTable b(42, 4096, 8, 0.1);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 8u * 12u / 1u);  // k log n / delta^2 scale
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(a.seed(i), b.seed(i));
  EXPECT_NE(a.seed(0), a.seed(1));
  EXPECT_THROW((void)a.seed(a.size()), std::out_of_range);
  EXPECT_THROW(NewmanTable(1, 100, 2, 0.0), std::invalid_argument);
}

TEST(Newman, AnnounceCostIsLogarithmic) {
  const NewmanTable t(7, 1024);
  // index fits in count_bits(1023) bits, relayed to all k players.
  EXPECT_EQ(t.announce_cost_bits(4), count_bits(1023) * 4);
}

TEST(Newman, EmpiricalSuccessConcentrates) {
  // The derandomized protocol's success over the fixed table should be close
  // to the fresh-randomness success probability.
  Rng rng(3);
  const Graph g = gen::planted_triangles(1200, 160, rng);
  const auto players = partition_random(g, 4, rng);
  const auto protocol = [&](std::uint64_t seed) {
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.c = 5.0;
    o.seed = seed;
    return sim_low_find_triangle(players, o).triangle.has_value();
  };
  const NewmanTable table(99, g.n(), 4, 0.1, /*scale=*/0.25);  // keep test fast
  const auto rate = table.empirical_success(protocol);
  // Fresh-randomness success is ~1 on this instance; the table average must
  // be close (Newman: the loss is at most delta).
  EXPECT_GE(rate.rate(), 0.85);
}

TEST(Newman, TableAverageTracksTrueRateOnMarginalInstances) {
  // Use a protocol with interior success probability and compare the table
  // estimate against a fresh-seed estimate.
  Rng rng(4);
  const Graph g = gen::planted_triangles(2000, 120, rng);  // sparse successes
  const auto players = partition_random(g, 4, rng);
  const auto protocol = [&](std::uint64_t seed) {
    SimLowOptions o;
    o.average_degree = g.average_degree();
    o.c = 3.0;
    o.seed = seed;
    return sim_low_find_triangle(players, o).triangle.has_value();
  };
  SuccessRate fresh;
  fresh.trials = 200;
  Rng seeder(5);
  for (std::size_t i = 0; i < fresh.trials; ++i) {
    if (protocol(seeder())) ++fresh.successes;
  }
  const NewmanTable table(123, 200);
  const auto fixed = table.empirical_success(protocol);
  EXPECT_NEAR(fixed.rate(), fresh.rate(), 0.15);
}

// ---------- message passing <-> coordinator ----------

TEST(MessagePassing, DeliverChargesHeaderAndForwarding) {
  MessagePassingSimulator sim(8, 1024);
  sim.deliver({2, 5, 100});
  EXPECT_EQ(sim.mp_bits(), 100u);
  // Upstream: 100 + ceil(log2 8) = 103; downstream: 100.
  EXPECT_EQ(sim.coordinator_bits(), 100 + vertex_bits(8) + 100);
  EXPECT_EQ(sim.transcript().upstream_bits(2), 100 + vertex_bits(8));
  EXPECT_EQ(sim.transcript().downstream_bits(5), 100u);
}

TEST(MessagePassing, OverheadWithinBound) {
  Rng rng(6);
  for (const std::size_t k : {2u, 8u, 64u}) {
    MessagePassingSimulator sim(k, 4096);
    for (int i = 0; i < 200; ++i) {
      const auto from = static_cast<std::size_t>(rng.below(k));
      auto to = static_cast<std::size_t>(rng.below(k - 1));
      if (to >= from) ++to;
      const std::uint64_t bits = 1 + rng.below(64);
      sim.deliver({from, to, bits});
    }
    EXPECT_LE(sim.overhead_factor(), MessagePassingSimulator::overhead_bound(1, k));
    EXPECT_GE(sim.overhead_factor(), 2.0);  // forwarding at least doubles
  }
}

TEST(MessagePassing, RejectsBadMessages) {
  MessagePassingSimulator sim(3, 16);
  EXPECT_THROW(sim.deliver({0, 3, 1}), std::out_of_range);
  EXPECT_THROW(sim.deliver({1, 1, 1}), std::invalid_argument);
}

TEST(MessagePassing, OverheadBoundAtOneBitMessages) {
  // b = 1 is the worst case: 2 + vertex_bits(k) / 1.
  EXPECT_DOUBLE_EQ(MessagePassingSimulator::overhead_bound(1, 8),
                   2.0 + static_cast<double>(vertex_bits(8)));
  EXPECT_DOUBLE_EQ(MessagePassingSimulator::overhead_bound(1, 2), 3.0);
}

TEST(MessagePassing, OverheadBoundWithOnePlayer) {
  // k = 1 still needs one recipient bit (vertex_bits(1) = 1); the bound is
  // well-defined even though no message can legally be delivered.
  EXPECT_DOUBLE_EQ(MessagePassingSimulator::overhead_bound(4, 1),
                   2.0 + static_cast<double>(vertex_bits(1)) / 4.0);
}

TEST(MessagePassing, OverheadBoundAtZeroPayloadIsZero) {
  // Degenerate b = 0: no payload to amortize against, defined as 0.
  EXPECT_DOUBLE_EQ(MessagePassingSimulator::overhead_bound(0, 8), 0.0);
}

TEST(MessagePassing, ZeroPayloadDeliveryChargesOnlyTheHeader) {
  MessagePassingSimulator sim(4, 64);
  sim.deliver({1, 3, 0});
  EXPECT_EQ(sim.mp_bits(), 0u);
  EXPECT_EQ(sim.coordinator_bits(), vertex_bits(4));  // recipient id only
  EXPECT_EQ(sim.overhead_factor(), 0.0);              // guarded division
}

TEST(MessagePassing, FreshSimulatorReportsZeroOverhead) {
  const MessagePassingSimulator sim(5, 100);
  EXPECT_EQ(sim.mp_bits(), 0u);
  EXPECT_EQ(sim.coordinator_bits(), 0u);
  EXPECT_EQ(sim.overhead_factor(), 0.0);
}

TEST(MessagePassing, BatchHelper) {
  const double overhead = simulate_message_passing_overhead(
      4, 256, {{0, 1, 50}, {1, 2, 50}, {2, 3, 50}});
  EXPECT_GT(overhead, 2.0);
  EXPECT_LT(overhead, 2.1);  // 2 + 2/50
}

}  // namespace
}  // namespace tft
