#include <gtest/gtest.h>

#include <cmath>

#include "core/sim_oblivious.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(ChungLu, AverageDegreeNearTarget) {
  Rng rng(1);
  for (const double d : {4.0, 16.0}) {
    const Graph g = gen::chung_lu(5000, d, 2.5, rng);
    // Collisions (p capped at 1) lose a little mass; allow 25%.
    EXPECT_NEAR(g.average_degree(), d, 0.25 * d) << "d=" << d;
  }
}

TEST(ChungLu, HeavyTailedDegrees) {
  Rng rng(2);
  const Graph g = gen::chung_lu(8000, 8.0, 2.2, rng);
  // Vertex 0 carries the largest weight: its degree must dwarf the average.
  EXPECT_GT(g.degree(0), 12 * static_cast<std::uint32_t>(g.average_degree()));
  // Degrees are (statistically) decreasing with index: compare head vs tail
  // block averages.
  double head = 0;
  double tail = 0;
  for (Vertex v = 0; v < 100; ++v) head += g.degree(v);
  for (Vertex v = g.n() - 100; v < g.n(); ++v) tail += g.degree(v);
  EXPECT_GT(head, 4 * tail);
}

TEST(ChungLu, BetaControlsSkew) {
  Rng rng(3);
  const Graph flat = gen::chung_lu(4000, 8.0, 3.0, rng);
  const Graph skewed = gen::chung_lu(4000, 8.0, 2.1, rng);
  EXPECT_GT(skewed.max_degree(), flat.max_degree());
}

TEST(ChungLu, RejectsBadBeta) {
  Rng rng(4);
  EXPECT_THROW((void)gen::chung_lu(100, 4.0, 2.0, rng), std::invalid_argument);
}

TEST(ChungLu, ContainsTrianglesAtModerateDensity) {
  // Power-law graphs with beta < 3 and d >= ~8 have many triangles around
  // the hubs — the realistic far-from-triangle-free workload.
  Rng rng(5);
  const Graph g = gen::chung_lu(6000, 10.0, 2.3, rng);
  EXPECT_GT(count_triangles(g), 100u);
  EXPECT_TRUE(certify_eps_far(g, 0.005, rng));
}

TEST(ChungLu, ProtocolsFindTrianglesOnPowerLawWorkloads) {
  Rng rng(6);
  const Graph g = gen::chung_lu(6000, 10.0, 2.3, rng);
  int oblivious_ok = 0;
  int unrestricted_ok = 0;
  for (int t = 0; t < 8; ++t) {
    const auto players = partition_random(g, 4, rng);
    SimObliviousOptions so;
    so.c = 4.0;
    so.seed = 100 + static_cast<std::uint64_t>(t);
    const auto sr = sim_oblivious_find_triangle(players, so);
    if (sr.triangle) {
      EXPECT_TRUE(g.contains(*sr.triangle));
      ++oblivious_ok;
    }
    UnrestrictedOptions uo;
    uo.consts = ProtocolConstants::practical(0.02, 0.1);
    uo.seed = 200 + static_cast<std::uint64_t>(t);
    const auto ur = find_triangle_unrestricted(players, uo);
    if (ur.triangle) {
      EXPECT_TRUE(g.contains(*ur.triangle));
      ++unrestricted_ok;
    }
  }
  EXPECT_GE(oblivious_ok, 6);
  EXPECT_GE(unrestricted_ok, 6);
}

}  // namespace
}  // namespace tft
