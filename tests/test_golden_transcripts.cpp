#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "comm/conformance.h"
#include "golden_cases.h"

namespace tft {
namespace {

/// Golden-transcript regression: each model's smallest-config run, replayed
/// and rendered with format_transcript, must match the checked-in file byte
/// for byte. A diff means the protocol's *communication pattern* changed —
/// deliberately (rerun with TFT_UPDATE_GOLDEN=1 and review the diff like
/// code) or by accident (a charging bug the bit-total asserts would blur).

std::string golden_path(const std::string& name) {
  return std::string(TFT_GOLDEN_DIR) + "/" + name + ".txt";
}

std::string render(const golden::GoldenCase& c) {
  TranscriptCapture capture;
  c.run();
  EXPECT_EQ(capture.runs().size(), 1u) << c.name << ": expected exactly one checked run";
  if (capture.runs().size() != 1) return {};
  const auto& run = capture.runs().front();
  return format_transcript(run.model, run.transcript);
}

TEST(GoldenTranscripts, MatchCheckedInFiles) {
  const bool update = std::getenv("TFT_UPDATE_GOLDEN") != nullptr;
  for (const auto& c : golden::cases(/*seed=*/1)) {
    const std::string got = render(c);
    ASSERT_FALSE(got.empty()) << c.name;
    const std::string path = golden_path(c.name);
    if (update) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << got;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with TFT_UPDATE_GOLDEN=1 to create it";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << c.name << ": transcript drifted from " << path
        << " (TFT_UPDATE_GOLDEN=1 regenerates after a deliberate change)";
  }
}

TEST(GoldenTranscripts, RenderingIsDeterministic) {
  // The same seed must reproduce the same transcript within one process —
  // the in-process half of the cross-thread-count CI diff.
  for (const auto& c : golden::cases(/*seed=*/7)) {
    EXPECT_EQ(render(c), render(c)) << c.name;
  }
}

}  // namespace
}  // namespace tft
