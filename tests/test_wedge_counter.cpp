#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/triangles.h"
#include "streaming/wedge_counter.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(WedgeCounter, ExactOnTinyGraphsWithFullReservoir) {
  // Reservoir >= total wedges: the estimate is exact (kappa W / 3 = T).
  const Graph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  WedgeSamplingCounter c(4, 1000, 1);
  for (const Edge& e : k4.edges()) c.offer(e);
  EXPECT_DOUBLE_EQ(c.wedge_count(), 12.0);  // 4 vertices of degree 3: 4*3 = 12
  EXPECT_DOUBLE_EQ(c.closure_rate(), 1.0);  // every wedge of K4 is closed
  EXPECT_DOUBLE_EQ(c.triangle_estimate(), 4.0);
}

TEST(WedgeCounter, ZeroOnTriangleFree) {
  Rng rng(1);
  const Graph g = gen::bipartite_gnp(300, 0.05, rng);
  WedgeSamplingCounter c(g.n(), 500, 2);
  for (const Edge& e : g.edges()) c.offer(e);
  EXPECT_GT(c.wedge_count(), 0.0);
  EXPECT_DOUBLE_EQ(c.triangle_estimate(), 0.0);
}

TEST(WedgeCounter, EstimateWithinFactorTwoOnRandomGraphs) {
  Rng rng(2);
  const Graph g = gen::gnp(800, 0.03, rng);
  const double truth = static_cast<double>(count_triangles(g));
  ASSERT_GT(truth, 100.0);
  // Median of several independent runs for robustness.
  std::vector<double> estimates;
  for (int r = 0; r < 7; ++r) {
    estimates.push_back(estimate_triangles_streaming(g, 2000, 10 + r, 100 + r));
  }
  std::sort(estimates.begin(), estimates.end());
  const double med = estimates[estimates.size() / 2];
  EXPECT_GT(med, truth / 2.0);
  EXPECT_LT(med, truth * 2.0);
}

TEST(WedgeCounter, PlantedInstancesScaleLinearly) {
  // Doubling the planted triangles ~doubles the estimate.
  Rng rng(3);
  const Graph g1 = gen::planted_triangles(3000, 200, rng);
  const Graph g2 = gen::planted_triangles(3000, 400, rng);
  const double e1 = estimate_triangles_streaming(g1, 4000, 5, 6);
  const double e2 = estimate_triangles_streaming(g2, 4000, 5, 6);
  EXPECT_GT(e1, 100.0);
  EXPECT_NEAR(e2 / e1, 2.0, 0.8);
}

TEST(WedgeCounter, IgnoresDuplicatesAndLoops) {
  WedgeSamplingCounter c(5, 100, 4);
  c.offer(Edge(0, 1));
  c.offer(Edge(0, 1));  // duplicate
  c.offer(Edge(2, 2));  // loop (invalid, ignored)
  EXPECT_DOUBLE_EQ(c.wedge_count(), 0.0);
  c.offer(Edge(1, 2));
  EXPECT_DOUBLE_EQ(c.wedge_count(), 1.0);
}

TEST(WedgeCounter, ReservoirBoundedAndMemoryTracked) {
  Rng rng(5);
  const Graph g = gen::gnp(400, 0.05, rng);
  WedgeSamplingCounter c(g.n(), 64, 6);
  for (const Edge& e : g.edges()) {
    c.offer(e);
    ASSERT_LE(c.reservoir_fill(), 64u);
  }
  EXPECT_EQ(c.reservoir_fill(), 64u);
  EXPECT_GT(c.memory_bits(), 64u * 3 * 9);
}

}  // namespace
}  // namespace tft
