// The SharedServicer session table: many concurrent sessions over ONE
// transport and ONE servicer thread, each with its own links, accounting,
// fault fates and failure domain. Covers the service-runtime invariants the
// coordinator builds on: per-session exactness under concurrency, byte
// parity with a solo run, failure containment (no head-of-line blocking
// across sessions), and link-slot reclamation at close.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "net/error.h"
#include "net/runtime.h"
#include "net/servicer.h"
#include "net/transport.h"

namespace tft::net {
namespace {

SharedServicer::Options vclock_options() {
  SharedServicer::Options opts;
  opts.virtual_clock = true;
  return opts;
}

/// Drive one session through a fixed two-phase charge pattern whose totals
/// are a pure function of `salt`, then close it.
WireStats drive_session(SharedServicer& servicer, std::size_t sidx, std::uint64_t salt) {
  for (std::size_t player = 0; player < 2; ++player) {
    servicer.session_charge(sidx, player, /*upstream=*/true, 64 + salt, /*phase=*/0);
    servicer.session_charge(sidx, player, /*upstream=*/false, 32 + salt, /*phase=*/0);
  }
  servicer.session_charge(sidx, 0, /*upstream=*/true, 7 + salt, /*phase=*/1);
  servicer.session_flush(sidx);
  const WireStats w = servicer.close_session(sidx);
  servicer.rethrow_session_error(sidx);
  return w;
}

std::uint64_t expected_payload_bits(std::uint64_t salt) {
  return 2 * (64 + salt) + 2 * (32 + salt) + (7 + salt);
}

TEST(NetMultiSession, ConcurrentSessionsStayIndependentlyExact) {
  InProcTransport transport;
  SharedServicer servicer(vclock_options());
  servicer.start();

  constexpr std::size_t kSessions = 3;
  std::vector<std::size_t> sidx(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    SharedServicer::SessionOptions so;
    so.num_players = 2;
    so.session_id = static_cast<std::uint32_t>(s + 1);
    sidx[s] = servicer.open_session(transport, so);
  }

  std::vector<WireStats> stats(kSessions);
  std::vector<std::thread> drivers;
  drivers.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&, s] { stats[s] = drive_session(servicer, sidx[s], 10 * s); });
  }
  for (auto& t : drivers) t.join();
  servicer.finish();
  servicer.rethrow_error();

  for (std::size_t s = 0; s < kSessions; ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(stats[s].payload_bits(), expected_payload_bits(10 * s));
    EXPECT_EQ(stats[s].messages(), 5u);
    EXPECT_EQ(stats[s].retransmissions, 0u);
    EXPECT_EQ(stats[s].corrupt_frames, 0u);
  }
}

TEST(NetMultiSession, MultiplexedSessionMatchesItsSoloRunByteForByte) {
  const auto run_solo = [](std::uint32_t id) {
    InProcTransport transport;
    SharedServicer servicer(vclock_options());
    servicer.start();
    SharedServicer::SessionOptions so;
    so.num_players = 2;
    so.session_id = id;
    const std::size_t sidx = servicer.open_session(transport, so);
    const WireStats w = drive_session(servicer, sidx, /*salt=*/4);
    servicer.finish();
    return w;
  };
  const WireStats solo = run_solo(5);

  // The same session multiplexed next to a busy neighbor: its wire is keyed
  // by (session, link, seq), so the neighbor must not perturb a byte.
  InProcTransport transport;
  SharedServicer servicer(vclock_options());
  servicer.start();
  SharedServicer::SessionOptions so;
  so.num_players = 2;
  so.session_id = 5;
  const std::size_t five = servicer.open_session(transport, so);
  SharedServicer::SessionOptions other;
  other.num_players = 2;
  other.session_id = 9;
  const std::size_t nine = servicer.open_session(transport, other);

  WireStats five_w;
  WireStats nine_w;
  std::thread a([&] { five_w = drive_session(servicer, five, /*salt=*/4); });
  std::thread b([&] { nine_w = drive_session(servicer, nine, /*salt=*/21); });
  a.join();
  b.join();
  servicer.finish();
  servicer.rethrow_error();

  EXPECT_EQ(five_w.wire_bytes, solo.wire_bytes);
  EXPECT_EQ(five_w.payload_bits(), solo.payload_bits());
  EXPECT_EQ(five_w.up_bits, solo.up_bits);
  EXPECT_EQ(five_w.down_bits, solo.down_bits);
  EXPECT_EQ(five_w.phase_bits, solo.phase_bits);
  EXPECT_EQ(nine_w.payload_bits(), expected_payload_bits(21));
}

/// Failure containment — the no-head-of-line-blocking contract: a session
/// whose links black-hole every frame exhausts its retry budget and fails
/// with a typed error, while a clean session sharing the servicer completes
/// with exact accounting, never waiting behind the corpse.
TEST(NetMultiSession, TimeoutIsContainedToTheFaultySession) {
  InProcTransport transport;
  SharedServicer servicer(vclock_options());
  servicer.start();

  SharedServicer::SessionOptions faulty;
  faulty.num_players = 2;
  faulty.session_id = 1;
  FaultPlan black_hole;
  black_hole.seed = 7;
  black_hole.drop = 1.0;
  faulty.faults = black_hole;
  const std::size_t bad = servicer.open_session(transport, faulty);

  SharedServicer::SessionOptions clean;
  clean.num_players = 2;
  clean.session_id = 2;
  const std::size_t good = servicer.open_session(transport, clean);

  std::optional<NetErrorKind> bad_kind;
  WireStats good_w;
  std::thread a([&] {
    try {
      (void)drive_session(servicer, bad, 0);
    } catch (const NetError& e) {
      bad_kind = e.kind();
    }
    (void)servicer.close_session(bad);  // idempotent; releases the corpse's slots
  });
  std::thread b([&] { good_w = drive_session(servicer, good, /*salt=*/3); });
  a.join();
  b.join();
  servicer.finish();
  servicer.rethrow_error();  // the contained failure never went global

  ASSERT_TRUE(bad_kind.has_value()) << "a 100% lossy session must fail typed";
  EXPECT_EQ(*bad_kind, NetErrorKind::kTimeout);
  EXPECT_EQ(good_w.payload_bits(), expected_payload_bits(3));
  EXPECT_EQ(good_w.messages(), 5u);
}

/// close_session reclaims the session's link slots and the next same-width
/// session reuses them: a servicer that serves forever stays at its peak
/// link-table footprint instead of growing by 2k slots per session.
TEST(NetMultiSession, ClosedSessionsLinkSlotsAreReused) {
  InProcTransport transport;
  SharedServicer servicer(vclock_options());
  servicer.start();

  for (std::uint32_t i = 1; i <= 6; ++i) {
    SharedServicer::SessionOptions so;
    so.num_players = 2;
    so.session_id = i;
    const std::size_t sidx = servicer.open_session(transport, so);
    const WireStats w = drive_session(servicer, sidx, i);
    EXPECT_EQ(w.payload_bits(), expected_payload_bits(i));
    EXPECT_EQ(servicer.num_links(), 4u) << "slots must be reused, not appended";
  }

  // Two live sessions need two blocks; closing both leaves the peak.
  SharedServicer::SessionOptions so;
  so.num_players = 2;
  so.session_id = 10;
  const std::size_t s1 = servicer.open_session(transport, so);
  so.session_id = 11;
  const std::size_t s2 = servicer.open_session(transport, so);
  EXPECT_EQ(servicer.num_links(), 8u);
  (void)drive_session(servicer, s1, 1);
  (void)drive_session(servicer, s2, 2);
  so.session_id = 12;
  const std::size_t s3 = servicer.open_session(transport, so);
  EXPECT_EQ(servicer.num_links(), 8u);
  (void)drive_session(servicer, s3, 3);
  servicer.finish();
}

TEST(NetMultiSession, DuplicateOpenSessionIdIsTypedAndFreedAtClose) {
  InProcTransport transport;
  SharedServicer servicer(vclock_options());
  servicer.start();

  SharedServicer::SessionOptions so;
  so.num_players = 2;
  so.session_id = 5;
  const std::size_t sidx = servicer.open_session(transport, so);
  try {
    (void)servicer.open_session(transport, so);
    FAIL() << "a second open of a live session id must throw";
  } catch (const NetError& e) {
    EXPECT_EQ(e.kind(), NetErrorKind::kSetup);
  }
  (void)drive_session(servicer, sidx, 1);
  // The id is free again once the session closed.
  const std::size_t again = servicer.open_session(transport, so);
  const WireStats w = drive_session(servicer, again, 2);
  EXPECT_EQ(w.payload_bits(), expected_payload_bits(2));
  servicer.finish();
}

}  // namespace
}  // namespace tft::net
