#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/oneway_vee.h"
#include "core/sim_low.h"
#include "graph/chunked.h"
#include "graph/pair_sampling.h"
#include "graph/partition.h"
#include "graph/triangles.h"
#include "lower_bounds/embedding.h"
#include "lower_bounds/mu_distribution.h"
#include "util/rng.h"

namespace tft {
namespace {

std::vector<Edge> sorted_union(const ChunkedSpec& spec, std::uint64_t seed, std::uint64_t k) {
  std::vector<Edge> all;
  for (std::uint64_t c = 0; c < k; ++c) {
    const auto chunk = generate_chunk(spec, seed, c, k);
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Edge& a, const Edge& b) { return a.key() < b.key(); });
  return all;
}

std::vector<ChunkedSpec> small_specs() {
  return {
      ChunkedSpec::gnp(200, 0.05),
      ChunkedSpec::gnp(50, 1.0),
      ChunkedSpec::bipartite_gnp(300, 0.1),
      ChunkedSpec::tripartite_mu(64, 0.9),
      ChunkedSpec::hub_matching(200, 4),
      ChunkedSpec::bm_reduction(500, true),
      ChunkedSpec::bm_reduction(500, false),
      ChunkedSpec::embed_gnp_core(4000, 4.0, 0.5),
  };
}

// The load-bearing contract: the union of chunk slices is edge-multiset
// identical to the monolithic (k = 1) build for ANY chunk count.
TEST(Chunked, UnionInvariantUnderChunkCount) {
  for (const auto& spec : small_specs()) {
    const auto mono = sorted_union(spec, 42, 1);
    const std::uint64_t mono_hash = edge_multiset_hash(mono);
    for (const std::uint64_t k : {2ull, 3ull, 5ull, 8ull, 17ull}) {
      const auto chunked = sorted_union(spec, 42, k);
      ASSERT_EQ(chunked.size(), mono.size()) << "family " << static_cast<int>(spec.family)
                                             << " k=" << k;
      ASSERT_TRUE(std::equal(chunked.begin(), chunked.end(), mono.begin(),
                             [](const Edge& a, const Edge& b) { return a.key() == b.key(); }))
          << "family " << static_cast<int>(spec.family) << " k=" << k;
      EXPECT_EQ(chunked_union_hash(spec, 42, k), mono_hash);
    }
  }
}

// More chunks than micro-blocks: trailing chunks are empty, union unchanged.
TEST(Chunked, MoreChunksThanBlocksDegradesGracefully) {
  const ChunkedSpec spec = ChunkedSpec::gnp(100, 0.1);
  const std::uint64_t blocks = chunk_block_count(spec);
  const std::uint64_t k = blocks + 7;
  EXPECT_EQ(chunked_union_hash(spec, 3, k), chunked_union_hash(spec, 3, 1));
  std::uint64_t nonempty = 0;
  for (std::uint64_t c = 0; c < k; ++c) nonempty += count_chunk_edges(spec, 3, c, k) > 0;
  EXPECT_LE(nonempty, blocks);
}

TEST(Chunked, PureInAllArguments) {
  const ChunkedSpec spec = ChunkedSpec::tripartite_mu(32, 0.8);
  const auto a = generate_chunk(spec, 7, 1, 3);
  const auto b = generate_chunk(spec, 7, 1, 3);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(),
                         [](const Edge& x, const Edge& y) { return x.key() == y.key(); }));
  // Different seeds give different draws (overwhelmingly).
  EXPECT_NE(chunked_union_hash(spec, 7, 3), chunked_union_hash(spec, 8, 3));
}

TEST(Chunked, CountMatchesGenerate) {
  for (const auto& spec : small_specs()) {
    for (const std::uint64_t k : {1ull, 4ull}) {
      for (std::uint64_t c = 0; c < k; ++c) {
        EXPECT_EQ(count_chunk_edges(spec, 11, c, k), generate_chunk(spec, 11, c, k).size());
      }
    }
  }
}

TEST(Chunked, InvalidSpecsAndArgsThrow) {
  EXPECT_THROW((void)generate_chunk(ChunkedSpec{ChunkedFamily::kTripartiteMu, 10, 0.5, 0}, 1,
                                    0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)generate_chunk(ChunkedSpec{ChunkedFamily::kBmReduction, 6, 0.0, 0}, 1, 0,
                                    1),
               std::invalid_argument);
  EXPECT_THROW((void)generate_chunk(ChunkedSpec{ChunkedFamily::kHubMatching, 8, 0.0, 8}, 1, 0,
                                    1),
               std::invalid_argument);
  const ChunkedSpec ok = ChunkedSpec::gnp(10, 0.5);
  EXPECT_THROW((void)generate_chunk(ok, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)generate_chunk(ok, 1, 3, 3), std::invalid_argument);
  EXPECT_THROW(ChunkedView(ok, 1, 0), std::invalid_argument);
  EXPECT_THROW(SharedPermutation(1, 0), std::invalid_argument);
}

TEST(SharedPermutation, IsABijection) {
  for (const std::uint64_t domain : {1ull, 2ull, 7ull, 64ull, 1000ull, 65537ull}) {
    const SharedPermutation perm(0xFEEDu + domain, domain);
    std::vector<bool> hit(domain, false);
    for (std::uint64_t x = 0; x < domain; ++x) {
      const std::uint64_t y = perm(x);
      ASSERT_LT(y, domain);
      ASSERT_FALSE(hit[y]) << "collision in domain " << domain << " at " << x;
      hit[y] = true;
    }
  }
}

TEST(SharedPermutation, KeyedIndependently) {
  const SharedPermutation p1(1, 4096);
  const SharedPermutation p2(2, 4096);
  std::size_t diff = 0;
  for (std::uint64_t x = 0; x < 4096; ++x) diff += p1(x) != p2(x);
  EXPECT_GT(diff, 3000u);  // distinct keys give essentially unrelated maps
}

// mu blocks never straddle the three cross spaces, so the k = 3 chunking is
// exactly the canonical Alice (U x V1) / Bob (U x V2) / Charlie (V1 x V2)
// partition the lower bounds use.
TEST(Chunked, MuThreeChunksAreTheCanonicalPartition) {
  const Vertex side = 64;
  const ChunkedSpec spec = ChunkedSpec::tripartite_mu(side, 0.9);
  const ChunkedView view(spec, 5, 3);
  const TripartiteLayout layout{side};
  const auto players = view.build_players();
  ASSERT_EQ(players.size(), 3u);
  EXPECT_GT(players[0].local.num_edges(), 0u);
  for (const Edge& e : players[0].local.edges()) {
    EXPECT_TRUE(layout.in_u(e.u) && layout.in_v1(e.v));
  }
  for (const Edge& e : players[1].local.edges()) {
    EXPECT_TRUE(layout.in_u(e.u) && layout.in_v2(e.v));
  }
  for (const Edge& e : players[2].local.edges()) {
    EXPECT_TRUE(layout.in_v1(e.u) && layout.in_v2(e.v));
  }
  // The three players partition the union graph's edges exactly.
  const Graph g = view.build_union();
  EXPECT_EQ(players[0].local.num_edges() + players[1].local.num_edges() +
                players[2].local.num_edges(),
            g.num_edges());
  // And the zero-copy slice path carries the same partition.
  const auto slices = view.build_slices();
  ASSERT_EQ(slices.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(slices[j].edges.size(), players[j].local.num_edges());
    EXPECT_EQ(slices[j].n, g.n());
  }
}

// The chunked mu sample is a valid mu draw: edge count concentrates around
// 3 side^2 p and the one-way protocol machinery accepts the players.
TEST(Chunked, MuSampleLooksLikeMu) {
  const Vertex side = 256;
  const double gamma = 0.9;
  const ChunkedView view(ChunkedSpec::tripartite_mu(side, gamma), 21, 3);
  const double p = gamma / std::sqrt(static_cast<double>(side));
  const double expected = 3.0 * side * side * p;
  EXPECT_NEAR(static_cast<double>(view.count_edges()), expected, 6 * std::sqrt(expected));
}

// Boolean-Matching promise through the chunked builder: the zero case is
// far from triangle-free (one triangle per matching pair), the one case is
// exactly triangle-free.
TEST(Chunked, BmReductionPromise) {
  const std::uint64_t pairs = 600;
  const Graph zero = ChunkedView(ChunkedSpec::bm_reduction(pairs, true), 9, 4).build_union();
  const Graph one = ChunkedView(ChunkedSpec::bm_reduction(pairs, false), 9, 4).build_union();
  EXPECT_GE(count_triangles(zero), pairs);  // one triangle per gadget at least
  EXPECT_TRUE(is_triangle_free(one));
  EXPECT_EQ(zero.n(), 4 * pairs + 1);
}

// Same promise holds per chunk count (the w vector depends only on the
// seed-keyed x and M, not on chunking).
TEST(Chunked, BmPromiseInvariantUnderChunking) {
  const ChunkedSpec one_spec = ChunkedSpec::bm_reduction(300, false);
  for (const std::uint64_t k : {1ull, 2ull, 7ull}) {
    EXPECT_TRUE(is_triangle_free(ChunkedView(one_spec, 13, k).build_union()));
  }
}

TEST(Chunked, EmbedCoreConfinedToCoreVertices) {
  const ChunkedSpec spec = ChunkedSpec::embed_gnp_core(5000, 4.0, 0.5);
  const std::uint64_t core_n = spec.embed_core_n();
  ASSERT_GE(core_n, 3u);
  ASSERT_LE(core_n, 5000u);
  const Graph g = ChunkedView(spec, 3, 4).build_union();
  EXPECT_EQ(g.n(), 5000u);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.v, core_n);  // v >= u, so both endpoints inside the core
  }
  // Average degree lands near the target.
  EXPECT_NEAR(g.average_degree(), 4.0, 1.0);
}

TEST(Chunked, EmbedHelperMatchesSpecGeometry) {
  const auto inst = embed_dense_core_chunked(5000, 4.0, 0.5, 77, 4);
  EXPECT_EQ(inst.core_n, ChunkedSpec::embed_gnp_core(5000, 4.0, 0.5).embed_core_n());
  EXPECT_EQ(inst.graph.n(), 5000u);
  EXPECT_NEAR(inst.core_degree,
              0.5 * static_cast<double>(inst.core_n - 1), 0.1 * inst.core_n);
}

TEST(Chunked, HubMatchingStructure) {
  const std::uint32_t hubs = 3;
  const Vertex n = 101;
  const Graph g = ChunkedView(ChunkedSpec::hub_matching(n, hubs), 4, 5).build_union();
  // Each hub contributes (n - hubs)/2 triangles, edge-disjoint by
  // construction within a hub.
  EXPECT_GE(count_triangles(g), static_cast<std::size_t>(hubs) * ((n - hubs) / 2));
  for (Vertex h = 0; h < hubs; ++h) EXPECT_GE(g.degree(h), (n - hubs) / 2 * 2);
}

TEST(Chunked, SplitRangeCoversExactly) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 100ull, 101ull}) {
    for (const std::uint64_t parts : {1ull, 2ull, 7ull, 13ull}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_hi = 0;
      for (std::uint64_t i = 0; i < parts; ++i) {
        const IndexRange r = split_range(total, parts, i);
        EXPECT_EQ(r.lo, prev_hi);
        prev_hi = r.hi;
        covered += r.size();
        EXPECT_LE(r.size(), total / parts + 1);
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(prev_hi, total);
    }
  }
}

TEST(Chunked, ViewCountMatchesStreamedUnion) {
  for (const auto& spec : small_specs()) {
    const ChunkedView view(spec, 2, 6);
    std::uint64_t streamed = 0;
    view.for_each_edge([&](const Edge&) { ++streamed; });
    EXPECT_EQ(view.count_edges(), streamed);
    // Graph construction dedupes; chunked emission never produces more.
    EXPECT_LE(view.build_union().num_edges(), streamed);
  }
}

// The compact referee (sim_common.h) is decision- and accounting-identical
// to the dense one on the same messages.
TEST(Chunked, CompactFinalizeMatchesDense) {
  for (const bool zero_case : {true, false}) {
    const ChunkedSpec spec = ChunkedSpec::bm_reduction(400, zero_case);
    const ChunkedView view(spec, 6, 4);
    const auto slices = view.build_slices();
    SimLowOptions o;
    o.average_degree = 2.0;
    o.c = 4.0;
    o.seed = 0xBEE;
    std::vector<SimMessage> a, b;
    for (const auto& s : slices) {
      a.push_back(sim_low_message_edges(s.edges, s.player_id, spec.n, o));
      b.push_back(sim_low_message_edges(s.edges, s.player_id, spec.n, o));
    }
    const auto dense = finalize_simultaneous(static_cast<Vertex>(spec.n), std::move(a));
    const auto compact =
        finalize_simultaneous_compact(static_cast<Vertex>(spec.n), std::move(b));
    EXPECT_EQ(dense.triangle.has_value(), compact.triangle.has_value());
    if (dense.triangle && compact.triangle) {
      EXPECT_EQ(dense.triangle->a, compact.triangle->a);
      EXPECT_EQ(dense.triangle->b, compact.triangle->b);
      EXPECT_EQ(dense.triangle->c, compact.triangle->c);
    }
    EXPECT_EQ(dense.total_bits, compact.total_bits);
    EXPECT_EQ(dense.per_player_bits, compact.per_player_bits);
    EXPECT_EQ(dense.edges_received, compact.edges_received);
  }
}

// sim_low_message over a PlayerInput and over the equivalent raw slice are
// bit-identical (the CSR-free path is a pure refactor).
TEST(Chunked, SliceMessageMatchesPlayerMessage) {
  const ChunkedView view(ChunkedSpec::tripartite_mu(64, 0.9), 8, 3);
  const auto players = view.build_players();
  const auto slices = view.build_slices();
  SimLowOptions o;
  o.average_degree = 8.0;
  o.seed = 0x51;
  for (std::size_t j = 0; j < players.size(); ++j) {
    const auto mp = sim_low_message(players[j], o);
    const auto ms = sim_low_message_edges(slices[j].edges, j, view.spec().n, o);
    ASSERT_EQ(mp.edges.size(), ms.edges.size());
    EXPECT_TRUE(std::equal(mp.edges.begin(), mp.edges.end(), ms.edges.begin(),
                           [](const Edge& x, const Edge& y) { return x.key() == y.key(); }));
    EXPECT_EQ(mp.truncated, ms.truncated);
  }
}

// players_from_slices (graph/partition.h): the zero-copy fast path yields
// the same per-player graphs as build_players.
TEST(Chunked, PlayersFromSlicesMatchesBuildPlayers) {
  const ChunkedView view(ChunkedSpec::gnp(120, 0.2), 19, 4);
  const auto direct = view.build_players();
  std::vector<std::vector<Edge>> raw;
  for (auto& s : view.build_slices()) raw.push_back(std::move(s.edges));
  const auto fast = players_from_slices(view.n(), std::move(raw));
  ASSERT_EQ(fast.size(), direct.size());
  for (std::size_t j = 0; j < fast.size(); ++j) {
    EXPECT_EQ(fast[j].player_id, direct[j].player_id);
    EXPECT_EQ(fast[j].k, direct[j].k);
    EXPECT_EQ(fast[j].local.num_edges(), direct[j].local.num_edges());
    EXPECT_EQ(edge_multiset_hash(fast[j].local.edges()),
              edge_multiset_hash(direct[j].local.edges()));
  }
  EXPECT_THROW((void)players_from_slices(10, {}), std::invalid_argument);
}

TEST(Chunked, MuFarnessChunkedAgreesWithLemma) {
  const auto s = mu_farness_stats_chunked(128, 0.9, 6, 1.0 / 48.0, 123, 3);
  EXPECT_EQ(s.trials, 6u);
  EXPECT_GE(s.far_fraction(), 0.5);  // Lemma 4.5 w.p. >= 1/2; empirically ~1
  EXPECT_GT(s.mean_packing, s.threshold);
}

TEST(Chunked, MultisetHashIsOrderInvariant) {
  std::vector<Edge> edges{{1, 2}, {3, 4}, {0, 9}, {2, 5}};
  std::vector<Edge> shuffled{{2, 5}, {0, 9}, {1, 2}, {3, 4}};
  EXPECT_EQ(edge_multiset_hash(edges), edge_multiset_hash(shuffled));
  // Multiset, not set: duplicates count.
  std::vector<Edge> dup{{1, 2}, {1, 2}};
  std::vector<Edge> single{{1, 2}};
  EXPECT_NE(edge_multiset_hash(dup), edge_multiset_hash(single));
}

}  // namespace
}  // namespace tft
