#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "comm/channel.h"
#include "comm/conformance.h"
#include "core/exact_baseline.h"
#include "core/unrestricted.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "net/executed.h"
#include "net/fault.h"
#include "net/runtime.h"
#include "streaming/reduction.h"
#include "util/rng.h"

/// \file chaos.h
/// The crash-chaos harness: run a protocol clean, enumerate every legal
/// crash point (player, phase, offset) from the clean run's charge counts,
/// re-run with a surgical one-crash schedule at each point, and demand the
/// recovered run is indistinguishable — same verdict, same delivered
/// per-player / per-direction / per-phase totals, accounting and
/// conformance intact (run_executed enforces those two by throwing).
///
/// Runs are driven under the virtual clock on the in-proc transport, so a
/// divergence is a deterministic witness, and the harness shrinks it
/// greedily (offset down, then phase down, then player down) to a minimal
/// (model, arq, player, phase, offset) triple before reporting.
///
/// Only *delivered* state is compared. Wire overhead — wire_bytes,
/// retransmissions, duplicates, frames_delivered, acks — legitimately grows
/// under recovery: replay re-sends everything since the barrier and the
/// receiver discards the copies it already had.

namespace tft::chaos {

struct Scenario {
  std::size_t k = 4;
  std::uint64_t instance_seed = 19;
  CommModel model = CommModel::kCoordinator;
  net::ArqPolicy arq = net::ArqPolicy::windowed();
  /// Servicer poller shards. A solo session always lives on one shard, but
  /// > 1 routes it through the multi-shard machinery (MPSC fast path,
  /// cross-shard quiescence hub) — the shard-determinism suite reruns the
  /// chaos grammar at 4 shards against the 1-shard clean baseline.
  std::size_t num_shards = 1;
};

inline const char* arq_name(const net::ArqPolicy& arq) {
  return arq.block_per_frame ? "stopwait" : "windowed";
}

inline std::vector<PlayerInput> instance(const Scenario& s) {
  Rng rng(s.instance_seed);
  const Graph g = gen::planted_triangles(48, 5, rng);
  return partition_random(g, s.k, rng);
}

/// One protocol run in the scenario's model. Returns the verdict bit.
inline bool run_body(const Scenario& s, const std::vector<PlayerInput>& players) {
  UnrestrictedOptions coord;
  coord.seed = 5;
  coord.known_average_degree = 4.0;
  switch (s.model) {
    case CommModel::kSimultaneous:
      return exact_find_triangle(players).triangle.has_value();
    case CommModel::kCoordinator:
      return find_triangle_unrestricted(players, coord).triangle.has_value();
    case CommModel::kBlackboard: {
      UnrestrictedOptions board = coord;
      board.blackboard = true;
      return find_triangle_unrestricted(players, board).triangle.has_value();
    }
    case CommModel::kOneWay:
      return one_way_via_streaming(players, 1 << 14, 7).triangle.has_value();
  }
  return false;
}

/// Counts charges per (player, phase) — the offset coordinate of the crash
/// grammar — by observing the same ChannelSink stream NetSession sees.
class ChargeCounter final : public ChannelSink {
 public:
  explicit ChargeCounter(std::size_t k) : counts_(k) {}

  void on_charge(std::size_t player, Direction, std::uint64_t, std::uint64_t phase) override {
    auto& per = counts_[player];
    if (per.size() <= phase) per.resize(static_cast<std::size_t>(phase) + 1, 0);
    ++per[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::vector<std::uint64_t>> counts_;
};

inline net::NetConfig make_config(const Scenario& s) {
  net::NetConfig cfg;
  cfg.transport = net::TransportKind::kInProc;
  cfg.virtual_clock = true;  // deterministic witnesses
  cfg.arq = s.arq;
  cfg.num_shards = s.num_shards;
  return cfg;
}

struct Baseline {
  bool verdict = false;
  net::WireStats wire;
  /// counts[player][phase]: how many charges each (player, phase) cell has —
  /// the legal offsets at that cell are [0, count).
  std::vector<std::vector<std::uint64_t>> counts;
};

inline Baseline clean_run(const Scenario& s) {
  const auto players = instance(s);
  Baseline b;
  {
    // Probe pass (simulated mode): harvest the charge counts the crash
    // grammar's offsets index into.
    ChargeCounter counter(s.k);
    const ChannelSinkScope scope(&counter);
    b.verdict = run_body(s, players);
    b.counts = counter.counts();
  }
  auto [verdict, report] =
      net::run_executed(s.k, make_config(s), [&] { return run_body(s, players); });
  b.verdict = verdict;
  b.wire = report.wire;
  return b;
}

/// All distinct crash points of one (player, phase) cell worth sweeping:
/// the phase boundary (offset 0), mid-window, and the last charge.
inline std::vector<std::uint64_t> interesting_offsets(std::uint64_t count) {
  std::vector<std::uint64_t> offs;
  for (const std::uint64_t o : {std::uint64_t{0}, count / 2, count - 1}) {
    bool seen = false;
    for (const std::uint64_t prev : offs) seen |= prev == o;
    if (!seen && o < count) offs.push_back(o);
  }
  return offs;
}

/// Run the scenario with exactly one scheduled crash and compare the
/// recovered run against the clean baseline. Returns a divergence
/// description, or nullopt when the recovery is indistinguishable.
inline std::optional<std::string> run_with_crash(const Scenario& s, const net::CrashEvent& e,
                                                const Baseline& clean) {
  const auto players = instance(s);
  net::NetConfig cfg = make_config(s);
  cfg.faults.crash_schedule = {e};
  const auto diverged = [&](const std::string& what) -> std::optional<std::string> {
    std::ostringstream os;
    os << "model=" << to_string(s.model) << " arq=" << arq_name(s.arq) << " crash=(player "
       << e.player << ", phase " << e.phase << ", offset " << e.offset << "): " << what;
    return os.str();
  };
  try {
    // run_executed itself throws AccountingError / ConformanceError if the
    // recovered run cheats the cost model or the model rules.
    auto [verdict, report] =
        net::run_executed(s.k, cfg, [&] { return run_body(s, players); });
    const net::WireStats& w = report.wire;
    if (w.crashes != 1) return diverged("the scheduled crash never fired");
    if (w.resume_frames < 1) return diverged("no kResume control frame was delivered");
    if (verdict != clean.verdict) return diverged("protocol verdict flipped");
    if (w.up_bits != clean.wire.up_bits) return diverged("delivered upstream bits drifted");
    if (w.down_bits != clean.wire.down_bits) return diverged("delivered downstream bits drifted");
    if (w.up_msgs != clean.wire.up_msgs) return diverged("upstream message counts drifted");
    if (w.down_msgs != clean.wire.down_msgs) return diverged("downstream message counts drifted");
    if (w.phase_bits != clean.wire.phase_bits) return diverged("per-phase bits drifted");
  } catch (const std::exception& ex) {
    return diverged(std::string("threw: ") + ex.what());
  }
  return std::nullopt;
}

/// Greedy witness shrinking: prefer a smaller offset, then a lower phase,
/// then a lower player — re-validating that each candidate still diverges —
/// so the reported witness is minimal in lexicographic (player, phase,
/// offset) order among the still-failing neighbors.
struct Witness {
  net::CrashEvent point;
  std::string what;
};

inline Witness shrink(const Scenario& s, net::CrashEvent e, std::string what,
                      const Baseline& clean) {
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<net::CrashEvent> candidates;
    if (e.offset > 0) candidates.push_back({e.player, e.phase, 0});
    if (e.offset > 1) candidates.push_back({e.player, e.phase, e.offset / 2});
    for (std::uint64_t ph = 0; ph < e.phase; ++ph) {
      const auto& per = clean.counts[e.player];
      if (ph < per.size() && per[ph] > 0) {
        candidates.push_back({e.player, ph, std::min(e.offset, per[ph] - 1)});
        break;  // lowest charged phase only — one step at a time
      }
    }
    for (std::uint32_t pl = 0; pl < e.player; ++pl) {
      const auto& per = clean.counts[pl];
      if (e.phase < per.size() && per[e.phase] > 0) {
        candidates.push_back({pl, e.phase, std::min(e.offset, per[e.phase] - 1)});
        break;
      }
    }
    for (const net::CrashEvent& cand : candidates) {
      if (auto d = run_with_crash(s, cand, clean)) {
        e = cand;
        what = std::move(*d);
        improved = true;
        break;
      }
    }
  }
  return {e, std::move(what)};
}

/// Sweep every enumerated crash point of the scenario; the first divergence
/// is shrunk to a minimal witness. nullopt == full sweep survived.
inline std::optional<Witness> sweep(const Scenario& s, const Baseline& clean,
                                    std::size_t only_player = SIZE_MAX) {
  for (std::uint32_t player = 0; player < clean.counts.size(); ++player) {
    if (only_player != SIZE_MAX && player != only_player) continue;
    const auto& per = clean.counts[player];
    for (std::uint64_t phase = 0; phase < per.size(); ++phase) {
      for (const std::uint64_t off : interesting_offsets(per[phase])) {
        const net::CrashEvent e{player, phase, off};
        if (auto d = run_with_crash(s, e, clean)) {
          return shrink(s, e, std::move(*d), clean);
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace tft::chaos
