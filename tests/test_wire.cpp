#include <gtest/gtest.h>

#include "comm/wire.h"
#include "graph/generators.h"
#include "util/bits.h"
#include "util/rng.h"

namespace tft {
namespace {

TEST(BitStream, BitRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, false, true, true, true, false, true, false};
  for (const bool b : pattern) w.put_bit(b);
  BitReader r(w.bytes(), w.bit_size());
  for (const bool b : pattern) EXPECT_EQ(r.get_bit(), b);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, FixedWidthRoundTrip) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.put_bits(1023, 10);
  w.put_bits(0, 1);
  w.put_bits(0xFFFFFFFFFFFFFFFFULL, 64);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(10), 1023u);
  EXPECT_EQ(r.get_bits(1), 0u);
  EXPECT_EQ(r.get_bits(64), 0xFFFFFFFFFFFFFFFFULL);
}

TEST(BitStream, GammaRoundTrip) {
  BitWriter w;
  const std::uint64_t values[] = {0, 1, 2, 3, 7, 8, 100, 65535, 1000000};
  for (const auto v : values) w.put_gamma(v);
  BitReader r(w.bytes(), w.bit_size());
  for (const auto v : values) EXPECT_EQ(r.get_gamma(), v);
}

TEST(BitStream, GammaSizeIsLogarithmic) {
  // gamma(v) uses 2*floor(log2(v+1)) + 1 bits.
  BitWriter w;
  w.put_gamma(0);
  EXPECT_EQ(w.bit_size(), 1u);
  BitWriter w2;
  w2.put_gamma(1);  // encodes 2: "010"
  EXPECT_EQ(w2.bit_size(), 3u);
  BitWriter w3;
  w3.put_gamma(1023);  // encodes 1024: 21 bits
  EXPECT_EQ(w3.bit_size(), 21u);
}

TEST(BitStream, ReaderThrowsPastEnd) {
  BitWriter w;
  w.put_bit(true);
  BitReader r(w.bytes(), w.bit_size());
  (void)r.get_bit();
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(Wire, EdgeListRoundTrip) {
  Rng rng(1);
  const Graph g = gen::gnp(500, 0.02, rng);
  BitWriter w;
  encode_edge_list(w, g.n(), g.edges());
  BitReader r(w.bytes(), w.bit_size());
  const auto decoded = decode_edge_list(r, g.n());
  ASSERT_EQ(decoded.size(), g.num_edges());
  for (std::size_t i = 0; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], g.edge(i));
}

TEST(Wire, EmptyEdgeList) {
  BitWriter w;
  encode_edge_list(w, 100, {});
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_TRUE(decode_edge_list(r, 100).empty());
}

TEST(Wire, EncodedSizeBeatsChargedCost) {
  // The idealized Transcript charge for an m-edge message is
  // count_bits(m) + m * 2 ceil(log n); the delta coding should not exceed it
  // (so the idealized accounting never understates real protocols).
  Rng rng(2);
  for (const double p : {0.005, 0.02, 0.1}) {
    const Graph g = gen::gnp(400, p, rng);
    const std::uint64_t charged =
        count_bits(g.num_edges()) + g.num_edges() * edge_bits(g.n());
    const std::uint64_t actual = encoded_edge_list_bits(g.n(), g.edges());
    EXPECT_LE(actual, charged) << "p=" << p << " m=" << g.num_edges();
  }
}

TEST(Wire, VertexListRoundTrip) {
  std::vector<Vertex> vs{3, 17, 17, 254, 255, 1000};
  BitWriter w;
  encode_vertex_list(w, 1024, vs);
  BitReader r(w.bytes(), w.bit_size());
  const auto decoded = decode_vertex_list(r, 1024);
  // Encoder sorts; duplicates survive (delta 0).
  ASSERT_EQ(decoded.size(), vs.size());
  EXPECT_EQ(decoded.front(), 3u);
  EXPECT_EQ(decoded.back(), 1000u);
}

TEST(Wire, TruncatedEdgeListThrowsWireError) {
  Rng rng(4);
  const Graph g = gen::gnp(300, 0.03, rng);
  BitWriter w;
  encode_edge_list(w, g.n(), g.edges());
  // Cutting the payload anywhere strictly inside must yield a typed error
  // (the count no longer fits) — never a crash or a silent partial decode
  // beyond the buffer.
  for (const std::uint64_t cut : {w.bit_size() / 2, w.bit_size() - 1, std::uint64_t{5}}) {
    BitReader r(w.bytes(), cut);
    EXPECT_THROW((void)decode_edge_list(r, g.n()), WireError) << "cut=" << cut;
  }
}

TEST(Wire, CorruptCountDoesNotOverallocate) {
  // A huge gamma-coded count with no payload behind it must be rejected
  // before any reserve() — decoding 2^40 from a 7-byte buffer would
  // otherwise attempt a multi-terabyte allocation.
  BitWriter w;
  w.put_gamma((std::uint64_t{1} << 40) - 1);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_THROW((void)decode_edge_list(r, 1024), WireError);
  BitReader r2(w.bytes(), w.bit_size());
  EXPECT_THROW((void)decode_vertex_list(r2, 1024), WireError);
}

TEST(Wire, OutOfUniverseEndpointRejected) {
  // An edge list for a 1000-vertex universe decoded as a 10-vertex one:
  // every endpoint check must fire instead of wrapping into Vertex.
  BitWriter w;
  const std::vector<Edge> edges{Edge(500, 900)};
  encode_edge_list(w, 1000, edges);
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_THROW((void)decode_edge_list(r, 10), WireError);

  BitWriter wv;
  const std::vector<Vertex> vs{999};
  encode_vertex_list(wv, 1000, vs);
  BitReader rv(wv.bytes(), wv.bit_size());
  EXPECT_THROW((void)decode_vertex_list(rv, 10), WireError);
}

TEST(Wire, OverstatedBitSizeIsClampedToBuffer) {
  // Corrupt framing: a bit_size claiming more bits than the byte buffer
  // holds. The reader clamps to the real buffer, so reads fail cleanly at
  // the true end instead of touching memory past it.
  BitWriter w;
  w.put_bits(0b101, 3);
  BitReader r(w.bytes(), /*bit_size=*/1000);
  EXPECT_EQ(r.remaining(), 8u);  // one byte materialized
  (void)r.get_bits(8);
  EXPECT_THROW((void)r.get_bit(), WireError);
}

TEST(Wire, AllZeroGammaPrefixIsCorrupt) {
  // 64+ leading zeros cannot come from any encoder (a legal gamma code
  // stores value+1 in at most 64 significand bits): typed rejection, not an
  // unbounded shift.
  const std::vector<std::uint8_t> zeros(16, 0);
  BitReader r(zeros, zeros.size() * 8);
  EXPECT_THROW((void)r.get_gamma(), WireError);
}

TEST(Wire, WireErrorIsOutOfRange) {
  // Backward compatibility: callers that guard with std::out_of_range keep
  // working.
  BitWriter w;
  w.put_bit(true);
  BitReader r(w.bytes(), w.bit_size());
  (void)r.get_bit();
  EXPECT_THROW((void)r.get_bit(), std::out_of_range);
}

TEST(Wire, ConcatenatedMessagesDecodeIndependently) {
  Rng rng(3);
  const Graph g1 = gen::gnp(200, 0.05, rng);
  const Graph g2 = gen::cycle(64);
  BitWriter w;
  encode_edge_list(w, 200, g1.edges());
  encode_edge_list(w, 200, g2.edges());
  BitReader r(w.bytes(), w.bit_size());
  EXPECT_EQ(decode_edge_list(r, 200).size(), g1.num_edges());
  EXPECT_EQ(decode_edge_list(r, 200).size(), g2.num_edges());
}

}  // namespace
}  // namespace tft
