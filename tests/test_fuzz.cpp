#include <gtest/gtest.h>

#include "comm/wire.h"
#include "core/subgraph_freeness.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "proptest.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Randomized differential / round-trip sweeps ("fuzz-lite": deterministic
/// seeds, adversarially-shaped random inputs). The sweeps run as properties
/// over the proptest generator zoo, so any failure is reported as a minimal
/// shrunk (n, edges, k) witness.

using proptest::GenOptions;
using proptest::GraphCase;
using proptest::PropOutcome;

TEST(Fuzz, WireEdgeListRoundTripRandomShapes) {
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    std::vector<Edge> edges(c.edges.begin(), c.edges.end());
    // Adversarial shape: a duplicate edge (the codec allows multisets).
    if (c.seed % 3 == 0 && !edges.empty()) edges.push_back(edges.front());
    std::sort(edges.begin(), edges.end());
    BitWriter w;
    encode_edge_list(w, c.n, edges);
    BitReader r(w.bytes(), w.bit_size());
    if (decode_edge_list(r, c.n) != edges) return {false, "round trip mismatch"};
    return {};
  };
  const auto r = proptest::check(201, 60, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(Fuzz, TruncatedOrCorruptDecodeFailsCleanly) {
  // Decoding a truncated or bit-flipped encoding must either throw the
  // typed WireError or return edges inside the universe — never crash,
  // read out of bounds, or trust a corrupt count for allocation.
  const auto survives_decode = [](std::span<const std::uint8_t> bytes, std::uint64_t bit_size,
                                  Vertex n) -> const char* {
    BitReader r(bytes, bit_size);
    try {
      const auto decoded = decode_edge_list(r, n);
      for (const Edge& e : decoded) {
        if (e.u >= n || e.v >= n) return "decoded endpoint outside the universe";
      }
    } catch (const WireError&) {
      // Typed rejection is the expected path for mangled input.
    }
    return nullptr;
  };
  const auto prop = [&](const GraphCase& c) -> PropOutcome {
    BitWriter w;
    encode_edge_list(w, c.n, c.edges);
    Rng rng = derive_rng(c.seed, 0xF422);
    for (int i = 0; i < 8; ++i) {
      // Truncate to a random bit length (including 0 and full length).
      const std::uint64_t cut = rng.below(w.bit_size() + 1);
      if (const char* err = survives_decode(w.bytes(), cut, c.n)) return {false, err};
      // Flip one random bit of the payload.
      if (w.bit_size() > 0) {
        auto bytes = w.bytes();
        const std::uint64_t flip = rng.below(w.bit_size());
        bytes[static_cast<std::size_t>(flip / 8)] ^=
            static_cast<std::uint8_t>(0x80u >> (flip % 8));
        if (const char* err = survives_decode(bytes, w.bit_size(), c.n)) return {false, err};
      }
      // Overstate the bit length past the byte buffer (corrupt framing).
      if (const char* err = survives_decode(w.bytes(), w.bit_size() + 64, c.n)) {
        return {false, err};
      }
    }
    return {};
  };
  const auto r = proptest::check(202, 60, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(Fuzz, WireGammaRandomValues) {
  Rng rng(2);
  BitWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng() >> static_cast<int>(rng.below(60));
    values.push_back(v);
    w.put_gamma(v);
  }
  BitReader r(w.bytes(), w.bit_size());
  for (const auto v : values) ASSERT_EQ(r.get_gamma(), v);
}

TEST(Fuzz, SubgraphTriangleSearchMatchesCounterOnRandomGraphs) {
  // Differential: find_subgraph(K3) agrees with count_triangles > 0 across
  // generator shapes and sizes.
  const Graph k3 = pattern_clique(3);
  GenOptions opts;
  opts.max_n = 150;
  const auto prop = [&](const GraphCase& c) -> PropOutcome {
    const Graph g = c.graph();
    const bool has = count_triangles(g) > 0;
    if (contains_subgraph(g, k3) != has) {
      return {false, has ? "subgraph search missed a triangle"
                         : "subgraph search found a phantom triangle"};
    }
    return {};
  };
  const auto r = proptest::check(203, 40, prop, opts);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(Fuzz, GreedyPackingNeverExceedsTriangleCount) {
  GenOptions opts;
  opts.max_n = 200;
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    const Graph g = c.graph();
    Rng rng = derive_rng(c.seed, 0xACC);
    const auto packing = greedy_triangle_packing(g, rng);
    if (packing.size() > count_triangles(g)) {
      return {false, "packing larger than the triangle count"};
    }
    return {};
  };
  const auto r = proptest::check(204, 40, prop, opts);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(Fuzz, GraphConstructionIdempotent) {
  // Rebuilding a graph from its own edge list is the identity.
  const auto prop = [](const GraphCase& c) -> PropOutcome {
    const Graph g = c.graph();
    const Graph h(g.n(), {g.edges().begin(), g.edges().end()});
    if (h.num_edges() != g.num_edges()) return {false, "edge count changed"};
    for (Vertex v = 0; v < g.n(); ++v) {
      if (h.degree(v) != g.degree(v)) return {false, "degree changed"};
    }
    return {};
  };
  const auto r = proptest::check(205, 40, prop);
  EXPECT_TRUE(r.ok) << r.to_string();
}

TEST(Fuzz, BarabasiAlbertBasicInvariants) {
  Rng rng(6);
  for (const std::uint32_t m : {1u, 3u, 5u}) {
    const Graph g = gen::barabasi_albert(2000, m, rng);
    EXPECT_EQ(g.n(), 2000u);
    // ~m edges per arriving vertex.
    EXPECT_NEAR(static_cast<double>(g.num_edges()), 2000.0 * m, 2000.0 * m * 0.15);
    // Early vertices are hubs.
    EXPECT_GT(g.degree(0), 4 * m);
  }
  EXPECT_THROW((void)gen::barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(Fuzz, BarabasiAlbertIsTriangleRich) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(3000, 4, rng);
  EXPECT_GT(count_triangles(g), 50u);
}

}  // namespace
}  // namespace tft
