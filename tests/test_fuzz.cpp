#include <gtest/gtest.h>

#include "comm/wire.h"
#include "core/subgraph_freeness.h"
#include "graph/generators.h"
#include "graph/triangles.h"
#include "util/rng.h"

namespace tft {
namespace {

/// Randomized differential / round-trip sweeps ("fuzz-lite": deterministic
/// seeds, adversarially-shaped random inputs).

TEST(Fuzz, WireEdgeListRoundTripRandomShapes) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = 2 + static_cast<Vertex>(rng.below(2000));
    std::vector<Edge> edges;
    const std::size_t m = rng.below(200);
    for (std::size_t i = 0; i < m; ++i) {
      const auto u = static_cast<Vertex>(rng.below(n));
      auto v = static_cast<Vertex>(rng.below(n));
      if (u == v) v = (v + 1) % n;
      edges.emplace_back(u, v);
    }
    // Adversarial shapes: duplicates, clustered endpoints.
    if (trial % 3 == 0 && !edges.empty()) edges.push_back(edges.front());
    std::sort(edges.begin(), edges.end());
    BitWriter w;
    encode_edge_list(w, n, edges);
    BitReader r(w.bytes(), w.bit_size());
    const auto decoded = decode_edge_list(r, n);
    EXPECT_EQ(decoded, edges) << "trial " << trial << " n=" << n;
  }
}

TEST(Fuzz, WireGammaRandomValues) {
  Rng rng(2);
  BitWriter w;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng() >> static_cast<int>(rng.below(60));
    values.push_back(v);
    w.put_gamma(v);
  }
  BitReader r(w.bytes(), w.bit_size());
  for (const auto v : values) ASSERT_EQ(r.get_gamma(), v);
}

TEST(Fuzz, SubgraphTriangleSearchMatchesCounterOnRandomGraphs) {
  // Differential: find_subgraph(K3) agrees with count_triangles > 0 across
  // densities and sizes.
  Rng rng(3);
  const Graph k3 = pattern_clique(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Vertex n = 10 + static_cast<Vertex>(rng.below(120));
    const double p = rng.uniform() * 0.25;
    const Graph g = gen::gnp(n, p, rng);
    const bool has = count_triangles(g) > 0;
    EXPECT_EQ(contains_subgraph(g, k3), has) << "trial " << trial;
  }
}

TEST(Fuzz, GreedyPackingNeverExceedsTriangleCount) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = 20 + static_cast<Vertex>(rng.below(150));
    const Graph g = gen::gnp(n, rng.uniform() * 0.2, rng);
    const auto packing = greedy_triangle_packing(g, rng);
    EXPECT_LE(packing.size(), count_triangles(g));
  }
}

TEST(Fuzz, GraphConstructionIdempotent) {
  // Rebuilding a graph from its own edge list is the identity.
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = gen::gnp(200, rng.uniform() * 0.1, rng);
    const Graph h(g.n(), {g.edges().begin(), g.edges().end()});
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (Vertex v = 0; v < g.n(); ++v) ASSERT_EQ(h.degree(v), g.degree(v));
  }
}

TEST(Fuzz, BarabasiAlbertBasicInvariants) {
  Rng rng(6);
  for (const std::uint32_t m : {1u, 3u, 5u}) {
    const Graph g = gen::barabasi_albert(2000, m, rng);
    EXPECT_EQ(g.n(), 2000u);
    // ~m edges per arriving vertex.
    EXPECT_NEAR(static_cast<double>(g.num_edges()), 2000.0 * m, 2000.0 * m * 0.15);
    // Early vertices are hubs.
    EXPECT_GT(g.degree(0), 4 * m);
  }
  EXPECT_THROW((void)gen::barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(Fuzz, BarabasiAlbertIsTriangleRich) {
  Rng rng(7);
  const Graph g = gen::barabasi_albert(3000, 4, rng);
  EXPECT_GT(count_triangles(g), 50u);
}

}  // namespace
}  // namespace tft
